#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/table.hpp"

namespace {

using tt::Table;

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"beta", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t("demo");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), tt::Error);
}

TEST(Table, ColumnsAreAligned) {
  Table t("demo");
  t.header({"x", "y"});
  t.row({"longer-cell", "1"});
  const std::string s = t.str();
  // Header row must be padded to the widest cell.
  const auto header_pos = s.find("| x ");
  EXPECT_NE(header_pos, std::string::npos);
}

TEST(TableFmt, FixedPrecision) {
  EXPECT_EQ(tt::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(tt::fmt(2.0, 0), "2");
}

TEST(TableFmt, Scientific) {
  EXPECT_EQ(tt::fmt_sci(12345.0, 1), "1.2e+04");
}

TEST(TableFmt, ThousandsSeparators) {
  EXPECT_EQ(tt::fmt_int(32768), "32,768");
  EXPECT_EQ(tt::fmt_int(-1234567), "-1,234,567");
  EXPECT_EQ(tt::fmt_int(12), "12");
  EXPECT_EQ(tt::fmt_int(0), "0");
}

}  // namespace

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace {

// tt-lint: allow(check-macro) exercising the message-less form of the macro on purpose
TEST(Error, CheckPassesOnTrue) { EXPECT_NO_THROW(TT_CHECK(1 + 1 == 2)); }

TEST(Error, CheckThrowsOnFalse) {
  // tt-lint: allow(check-macro) exercising the message-less form of the macro on purpose
  EXPECT_THROW(TT_CHECK(false), tt::Error);
}

TEST(Error, CheckMessageContainsConditionAndDetail) {
  try {
    TT_CHECK(2 < 1, "two is not less than " << 1);
    FAIL() << "expected throw";
  } catch (const tt::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than 1"), std::string::npos);
  }
}

TEST(Error, FailAlwaysThrows) {
  EXPECT_THROW(TT_FAIL("unconditional"), tt::Error);
}

TEST(Error, ErrorIsARuntimeError) {
  try {
    TT_FAIL("x");
  } catch (const std::runtime_error&) {
    SUCCEED();
    return;
  }
  FAIL() << "tt::Error should derive from std::runtime_error";
}

TEST(Error, CheckWithoutMessageStillThrows) {
  try {
    // tt-lint: allow(check-macro) the message-less form is the behaviour under test
    TT_CHECK(false);
    FAIL() << "expected throw";
  } catch (const tt::Error& e) {
    EXPECT_NE(std::string(e.what()).find("false"), std::string::npos);
  }
}

}  // namespace

#include <gtest/gtest.h>

#include "support/cli.hpp"
#include "support/error.hpp"

namespace {

using tt::Cli;

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesSpaceSeparatedFlag) {
  Cli c = make({"--m", "4096"});
  EXPECT_EQ(c.get_int("m", 0), 4096);
}

TEST(Cli, ParsesEqualsSeparatedFlag) {
  Cli c = make({"--machine=stampede2"});
  EXPECT_EQ(c.get("machine", ""), "stampede2");
}

TEST(Cli, BooleanSwitch) {
  Cli c = make({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_FALSE(c.get_bool("absent", false));
}

TEST(Cli, BooleanExplicitValues) {
  EXPECT_TRUE(make({"--x", "yes"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x", "off"}).get_bool("x", true));
  EXPECT_THROW(make({"--x", "maybe"}).get_bool("x", true), tt::Error);
}

TEST(Cli, DefaultsWhenAbsent) {
  Cli c = make({});
  EXPECT_EQ(c.get_int("nodes", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("cutoff", 1e-12), 1e-12);
  EXPECT_EQ(c.get("name", "dflt"), "dflt");
}

TEST(Cli, PositionalArguments) {
  Cli c = make({"input.dat", "--m", "8", "output.dat"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "input.dat");
  EXPECT_EQ(c.positional()[1], "output.dat");
}

TEST(Cli, RejectsNonNumericInt) {
  Cli c = make({"--m", "abc"});
  EXPECT_THROW(c.get_int("m", 0), tt::Error);
}

TEST(Cli, DoubleParsing) {
  Cli c = make({"--cutoff", "1e-9"});
  EXPECT_DOUBLE_EQ(c.get_double("cutoff", 0.0), 1e-9);
}

TEST(Cli, HasDetectsPresence) {
  Cli c = make({"--present"});
  EXPECT_TRUE(c.has("present"));
  EXPECT_FALSE(c.has("absent"));
}

TEST(Cli, NegativeNumberAsValue) {
  Cli c = make({"--shift", "-3"});
  EXPECT_EQ(c.get_int("shift", 0), -3);
}

}  // namespace

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace {

using tt::Rng;

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i)
    if (a.uniform() != b.uniform()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, IntegerRespectsInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.integer(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasRoughlyZeroMean) {
  Rng r(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.normal();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

}  // namespace

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace {

using tt::index_t;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  tt::support::ThreadPool pool(3);
  const index_t n = 10000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.parallel_for(n, 4, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (index_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(ThreadPool, StealsWhenRangesAreImbalanced) {
  // Participant 0 stalls on its first iteration; the rest of its range must
  // be drained by stealing participants.
  tt::support::ThreadPool pool(3);
  std::atomic<int> slots_seen{0};
  std::vector<std::atomic<bool>> seen(8);
  pool.parallel_for(4000, 4, [&](index_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const int s = tt::support::execution_slot();
    if (!seen[static_cast<std::size_t>(s)].exchange(true))
      slots_seen.fetch_add(1);
  });
  EXPECT_GE(slots_seen.load(), 2);
}

TEST(ThreadPool, CallerParticipatesWithZeroWorkers) {
  tt::support::ThreadPool pool(0);
  std::atomic<index_t> sum{0};
  pool.parallel_for(100, 8, [&](index_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ThreadPool, EmptyAndSingleIterationRunInline) {
  tt::support::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, 4, [&](index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, 4, [&](index_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  tt::support::ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(1000, 4,
                                 [&](index_t i) {
                                   if (i == 137) throw tt::Error("boom");
                                 }),
               tt::Error);
  // Pool stays usable after an aborted loop.
  std::atomic<int> count{0};
  pool.parallel_for(64, 4, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, NestedCallsRunInline) {
  tt::support::ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, 4, [&](index_t) {
    EXPECT_TRUE(tt::support::in_parallel_region());
    // Nested parallel_for must not deadlock; it degrades to inline execution.
    tt::support::parallel_for(4, [&](index_t) { inner_total.fetch_add(1); }, 4);
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(tt::support::in_parallel_region());
}

TEST(ThreadPool, ExecutionSlotIsZeroOutsideRegions) {
  EXPECT_EQ(tt::support::execution_slot(), 0);
  EXPECT_FALSE(tt::support::in_parallel_region());
}

TEST(ThreadPool, SetNumThreadsOverridesAndRestores) {
  const int base = tt::support::num_threads();
  EXPECT_GE(base, 1);
  tt::support::set_num_threads(5);
  EXPECT_EQ(tt::support::num_threads(), 5);
  tt::support::set_num_threads(0);
  EXPECT_EQ(tt::support::num_threads(), base);
}

TEST(ThreadPool, GlobalParallelForHonorsThreadCap) {
  // threads=1 must run strictly serially on the calling thread.
  std::set<int> slots;
  tt::support::parallel_for(
      64, [&](index_t) { slots.insert(tt::support::execution_slot()); }, 1);
  EXPECT_EQ(slots.size(), 1u);

  std::atomic<index_t> sum{0};
  tt::support::parallel_for(256, [&](index_t i) { sum += i; }, 8);
  EXPECT_EQ(sum.load(), 256 * 255 / 2);
}

}  // namespace

#include <gtest/gtest.h>

#include "ed/lanczos.hpp"
#include "linalg/eigen.hpp"
#include "linalg/gemm.hpp"
#include "support/rng.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::linalg::Matrix;

tt::ed::MatVec matvec_of(const Matrix& a) {
  return [&a](const std::vector<double>& x, std::vector<double>& y) {
    y.assign(x.size(), 0.0);
    tt::linalg::gemv(a.rows(), a.cols(), 1.0, a.data(), x.data(), 0.0, y.data());
  };
}

Matrix random_symmetric(index_t n, unsigned seed) {
  Rng rng(seed);
  Matrix a = Matrix::random(n, n, rng);
  Matrix s(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));
  return s;
}

class LanczosParam : public ::testing::TestWithParam<index_t> {};

TEST_P(LanczosParam, MatchesDenseEigensolver) {
  const index_t n = GetParam();
  Matrix a = random_symmetric(n, static_cast<unsigned>(n));
  auto mv = matvec_of(a);
  auto r = tt::ed::lanczos_ground_state(n, mv);
  auto dense = tt::linalg::eigh(a);
  EXPECT_NEAR(r.eigenvalue, dense.values.front(), 1e-8 * (1.0 + std::abs(dense.values.front())));
  EXPECT_TRUE(r.converged);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LanczosParam, ::testing::Values<index_t>(1, 2, 5, 20, 100));

TEST(Lanczos, EigenvectorSatisfiesEigenEquation) {
  const index_t n = 40;
  Matrix a = random_symmetric(n, 77);
  auto mv = matvec_of(a);
  auto r = tt::ed::lanczos_ground_state(n, mv);
  std::vector<double> av(static_cast<std::size_t>(n));
  mv(r.eigenvector, av);
  // Eigenvalue stagnation at 1e-12 gives a residual ~√(tol·gap); the
  // eigenvalue itself is far more accurate than the vector.
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(av[static_cast<std::size_t>(i)],
                r.eigenvalue * r.eigenvector[static_cast<std::size_t>(i)], 1e-5);
}

TEST(Lanczos, DegenerateGroundState) {
  // diag(1,1,3): doubly degenerate minimum.
  Matrix a(3, 3);
  a(0, 0) = a(1, 1) = 1.0;
  a(2, 2) = 3.0;
  auto r = tt::ed::lanczos_ground_state(3, matvec_of(a));
  EXPECT_NEAR(r.eigenvalue, 1.0, 1e-10);
}

TEST(Lanczos, DimOneOperator) {
  auto mv = [](const std::vector<double>& x, std::vector<double>& y) {
    y = {4.2 * x[0]};
  };
  auto r = tt::ed::lanczos_ground_state(1, mv);
  EXPECT_DOUBLE_EQ(r.eigenvalue, 4.2);
}

TEST(Lanczos, RejectsEmptyOperator) {
  auto mv = [](const std::vector<double>&, std::vector<double>&) {};
  EXPECT_THROW(tt::ed::lanczos_ground_state(0, mv), tt::Error);
}

}  // namespace

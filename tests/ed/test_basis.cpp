#include <gtest/gtest.h>

#include <bit>

#include "ed/basis.hpp"
#include "support/error.hpp"

namespace {

using tt::ed::ElectronBasis;
using tt::ed::SpinBasis;

TEST(Masks, PopcountEnumeration) {
  auto m = tt::ed::masks_with_popcount(4, 2);
  EXPECT_EQ(m.size(), 6u);
  for (auto v : m) EXPECT_EQ(std::popcount(v), 2);
  // Ascending and unique.
  for (std::size_t i = 0; i + 1 < m.size(); ++i) EXPECT_LT(m[i], m[i + 1]);
}

TEST(Masks, EdgeCases) {
  EXPECT_EQ(tt::ed::masks_with_popcount(3, 0).size(), 1u);
  EXPECT_EQ(tt::ed::masks_with_popcount(3, 3).size(), 1u);
  EXPECT_THROW(tt::ed::masks_with_popcount(3, 4), tt::Error);
}

TEST(SpinBasis, DimensionMatchesBinomial) {
  SpinBasis b(8, 0);  // Sz = 0: C(8,4) = 70
  EXPECT_EQ(b.dim(), 70);
  SpinBasis b2(6, 2);  // #up = 4: C(6,4) = 15
  EXPECT_EQ(b2.dim(), 15);
}

TEST(SpinBasis, IndexRoundTrip) {
  SpinBasis b(6, 0);
  for (tt::index_t i = 0; i < b.dim(); ++i)
    EXPECT_EQ(b.index_of(b.state(i)), i);
}

TEST(SpinBasis, RejectsUnreachableSector) {
  EXPECT_THROW(SpinBasis(4, 1), tt::Error);   // odd 2Sz for even N
  EXPECT_THROW(SpinBasis(4, 6), tt::Error);   // beyond max
}

TEST(SpinBasis, LookupRejectsOutsideSector) {
  SpinBasis b(4, 0);
  EXPECT_THROW(b.index_of(0b1110), tt::Error);
}

TEST(ElectronBasis, DimensionIsProductOfBinomials) {
  ElectronBasis b(4, 2, 2);  // C(4,2)² = 36
  EXPECT_EQ(b.dim(), 36);
  ElectronBasis b2(4, 0, 4);  // C(4,0)*C(4,4) = 1
  EXPECT_EQ(b2.dim(), 1);
}

TEST(ElectronBasis, IndexRoundTrip) {
  ElectronBasis b(4, 2, 1);
  for (tt::index_t i = 0; i < b.dim(); ++i)
    EXPECT_EQ(b.index_of(b.up(i), b.dn(i)), i);
}

TEST(ElectronBasis, LookupRejectsOutsideSector) {
  ElectronBasis b(4, 2, 2);
  EXPECT_THROW(b.index_of(0b0001, 0b0011), tt::Error);  // wrong N_up
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "ed/ed.hpp"
#include "models/lattice.hpp"

namespace {

TEST(EdHeisenberg, TwoSiteSinglet) {
  // E0 of two coupled spins (J = 1) is the singlet: −3/4.
  auto lat = tt::models::chain(2);
  EXPECT_NEAR(tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0), -0.75, 1e-10);
}

TEST(EdHeisenberg, ThreeSiteChain) {
  // Open 3-site chain, Sz = ±1/2: E0 = −1 (exact).
  auto lat = tt::models::chain(3);
  EXPECT_NEAR(tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 1), -1.0, 1e-10);
}

TEST(EdHeisenberg, FourSiteChainExact) {
  // Open 4-site chain: E0 = (1 − √3)/2 − 3/4... use the known value
  // E0 = −(3/2 + √3)/2 + 1/4? — instead pin against the published numeric
  // value E0/J = −1.6160254 (= −(2√3 + 3)/4 ... ) obtained from independent
  // diagonalization of the 6-dim Sz=0 sector.
  auto lat = tt::models::chain(4);
  const double e = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0);
  // Exact: E0 = −(3 + 2√3)/4.
  EXPECT_NEAR(e, -(3.0 + 2.0 * std::sqrt(3.0)) / 4.0, 1e-9);
}

TEST(EdHeisenberg, GroundStateInZeroSectorForEvenChain) {
  auto lat = tt::models::chain(6);
  const double e0 = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0);
  const double e2 = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 2);
  EXPECT_LT(e0, e2);
}

TEST(EdHeisenberg, FerromagneticCouplingFlipsOrdering) {
  // J < 0: fully polarized sector is degenerate with the ground state.
  auto lat = tt::models::chain(4);
  const double e_pol = tt::ed::heisenberg_ground_energy(lat, -1.0, 0.0, 4);
  const double e_zero = tt::ed::heisenberg_ground_energy(lat, -1.0, 0.0, 0);
  EXPECT_NEAR(e_pol, -0.75, 1e-10);  // 3 bonds × (−1)·(1/4)... = −3/4
  EXPECT_NEAR(e_zero, e_pol, 1e-9);  // SU(2): same multiplet
}

TEST(EdHeisenberg, J2CouplingChangesEnergy) {
  auto lat = tt::models::square_cylinder(3, 2, true);
  const double e_j1 = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0);
  const double e_j1j2 = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.5, 0);
  EXPECT_NE(e_j1, e_j1j2);
}

TEST(EdHubbard, TwoSiteAnalytic) {
  // Half-filled 2-site Hubbard: E0 = (U − √(U² + 16t²))/2.
  auto lat = tt::models::chain(2);
  for (double u : {0.0, 1.0, 4.0, 8.5}) {
    const double want = 0.5 * (u - std::sqrt(u * u + 16.0));
    EXPECT_NEAR(tt::ed::hubbard_ground_energy(lat, 1.0, u, 1, 1), want, 1e-9)
        << "U = " << u;
  }
}

TEST(EdHubbard, AtomicLimit) {
  // t = 0: energy = U × (#doubly occupied) minimized to 0 at half filling.
  auto lat = tt::models::chain(3);
  EXPECT_NEAR(tt::ed::hubbard_ground_energy(lat, 0.0, 5.0, 1, 1), 0.0, 1e-10);
  // 4 electrons on 3 sites: at least one doublon.
  EXPECT_NEAR(tt::ed::hubbard_ground_energy(lat, 0.0, 5.0, 2, 2), 5.0, 1e-10);
}

TEST(EdHubbard, FreeFermionBandEnergy) {
  // U = 0, open chain: single-particle levels ε_k = −2t·cos(kπ/(N+1)).
  const int n = 4;
  auto lat = tt::models::chain(n);
  auto eps = [&](int k) { return -2.0 * std::cos(M_PI * k / (n + 1.0)); };
  // One up + one dn electron: both occupy the lowest level.
  EXPECT_NEAR(tt::ed::hubbard_ground_energy(lat, 1.0, 0.0, 1, 1), 2.0 * eps(1), 1e-9);
  // Two up electrons (Pauli): lowest two levels.
  EXPECT_NEAR(tt::ed::hubbard_ground_energy(lat, 1.0, 0.0, 2, 0), eps(1) + eps(2),
              1e-9);
}

TEST(EdHubbard, ParticleHoleSymmetricPoint) {
  // Bipartite chain at half filling: spectrum symmetric; energy below atomic.
  auto lat = tt::models::chain(4);
  const double e = tt::ed::hubbard_ground_energy(lat, 1.0, 8.0, 2, 2);
  EXPECT_LT(e, 0.0);
  EXPECT_GT(e, -8.0);
}

TEST(EdHubbard, TriangularFrustrationRaisesEnergy) {
  // Triangular 2x2 (with diagonals) is more frustrated than square 2x2 at
  // the same filling; the hopping gain shrinks.
  auto sq = tt::models::square_cylinder(2, 2, false);
  auto tr = tt::models::triangular_cylinder(2, 2);
  const double e_sq = tt::ed::hubbard_ground_energy(sq, 1.0, 8.5, 2, 2);
  const double e_tr = tt::ed::hubbard_ground_energy(tr, 1.0, 8.5, 2, 2);
  EXPECT_LT(e_sq, 0.0);
  EXPECT_GE(e_tr, e_sq - 1e-9);
}

TEST(EdApply, HeisenbergHermitian) {
  auto lat = tt::models::chain(4);
  tt::ed::SpinBasis basis(4, 0);
  const auto dim = basis.dim();
  // ⟨i|H|j⟩ == ⟨j|H|i⟩ by applying to unit vectors.
  std::vector<std::vector<double>> cols;
  for (tt::index_t j = 0; j < dim; ++j) {
    std::vector<double> x(static_cast<std::size_t>(dim), 0.0), y;
    x[static_cast<std::size_t>(j)] = 1.0;
    tt::ed::apply_heisenberg(lat, 1.0, 0.3, basis, x, y);
    cols.push_back(y);
  }
  for (tt::index_t i = 0; i < dim; ++i)
    for (tt::index_t j = 0; j < dim; ++j)
      EXPECT_NEAR(cols[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)],
                  cols[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1e-12);
}

TEST(EdApply, HubbardHermitian) {
  auto lat = tt::models::triangular_cylinder(2, 2);
  tt::ed::ElectronBasis basis(4, 2, 1);
  const auto dim = basis.dim();
  std::vector<std::vector<double>> cols;
  for (tt::index_t j = 0; j < dim; ++j) {
    std::vector<double> x(static_cast<std::size_t>(dim), 0.0), y;
    x[static_cast<std::size_t>(j)] = 1.0;
    tt::ed::apply_hubbard(lat, 1.0, 8.5, basis, x, y);
    cols.push_back(y);
  }
  for (tt::index_t i = 0; i < dim; ++i)
    for (tt::index_t j = 0; j < dim; ++j)
      EXPECT_NEAR(cols[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)],
                  cols[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], 1e-12);
}

}  // namespace

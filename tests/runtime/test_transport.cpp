// Transport faults and framing: echo round trips in both spawn modes, a peer
// killed mid-exchange surfaces as a clean tt::Error (no hang, no partial
// data), and corrupt or truncated streams are detected by the framing layer.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "runtime/transport.hpp"
#include "spawn_modes.hpp"
#include "runtime/wire.hpp"
#include "support/timer.hpp"

namespace {

using tt::Error;
using tt::Timer;
using tt::rt::Channel;
using tt::rt::Frame;
using tt::rt::SpawnMode;
using tt::rt::WireReader;
using tt::rt::WireWriter;
using tt::rt::WorkerGroup;

std::vector<std::byte> payload_of(const std::string& s) {
  // tt-lint: allow(raw-cast-audit) test helper builds raw byte frames from string payloads
  const auto* b = reinterpret_cast<const std::byte*>(s.data());
  return std::vector<std::byte>(b, b + s.size());
}

std::string text_of(const Frame& f) {
  // tt-lint: allow(raw-cast-audit) test helper views received frame bytes as text
  return std::string(reinterpret_cast<const char*>(f.payload.data()),
                     f.payload.size());
}

// Echo worker: bounces every frame back with tag+1 until told to stop.
void echo_worker(int /*rank*/, Channel& ch) {
  for (;;) {
    Frame f = ch.recv_frame(30.0);
    if (f.tag == 0) return;
    ch.send_frame(f.tag + 1, f.payload, 30.0);
  }
}

class TransportModes : public ::testing::TestWithParam<SpawnMode> {};

TEST_P(TransportModes, FramesRoundTripThroughWorkers) {
  WorkerGroup group(3, GetParam(), echo_worker);
  for (int rank = 1; rank < 3; ++rank) {
    Channel& ch = group.channel(rank);
    ch.send_frame(7, payload_of("hello rank " + std::to_string(rank)), 10.0);
    Frame f = ch.recv_frame(10.0);
    EXPECT_EQ(f.tag, 8u);
    EXPECT_EQ(text_of(f), "hello rank " + std::to_string(rank));
  }
  // Large frame (multi-MB: many socketpair buffer round trips).
  std::vector<std::byte> big(8 << 20);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::byte>(i * 2654435761u >> 5);
  group.channel(1).send_frame(9, big, 30.0);
  Frame f = group.channel(1).recv_frame(30.0);
  EXPECT_EQ(f.tag, 10u);
  ASSERT_EQ(f.payload.size(), big.size());
  EXPECT_EQ(std::memcmp(f.payload.data(), big.data(), big.size()), 0);

  for (int rank = 1; rank < 3; ++rank)
    group.channel(rank).send_frame(0, {}, 10.0);
  group.join(10.0);
}

TEST_P(TransportModes, CountersMeasureActualBytes) {
  WorkerGroup group(2, GetParam(), echo_worker);
  Channel& ch = group.channel(1);
  ch.send_frame(5, payload_of("count me"), 10.0);
  (void)ch.recv_frame(10.0);
  // 24-byte header (magic, tag, length, checksum) + 8-byte payload, each way.
  EXPECT_DOUBLE_EQ(ch.bytes_sent(), 32.0);
  EXPECT_DOUBLE_EQ(ch.bytes_received(), 32.0);
  EXPECT_GE(ch.send_seconds(), 0.0);
  EXPECT_GT(ch.recv_seconds(), 0.0);
  ch.send_frame(0, {}, 10.0);
  group.join(10.0);
}

INSTANTIATE_TEST_SUITE_P(Modes, TransportModes,
                         ::testing::ValuesIn(
                             tt::rt::testing::tested_spawn_modes()),
                         [](const auto& info) {
                           return std::string(tt::rt::spawn_mode_name(info.param));
                         });

TEST(TransportFault, KilledPeerMidExchangeThrowsCleanlyWithoutHanging) {
  // Worker dies (SIGKILL) while the root waits for its reply: the recv must
  // throw within the deadline — never hang, never deliver partial data.
  WorkerGroup group(2, SpawnMode::kProcess, [](int, Channel& ch) {
    (void)ch.recv_frame(30.0);  // swallow the request, then get killed
    ::pause();                  // never replies
  });
  group.channel(1).send_frame(1, payload_of("doomed"), 10.0);
  group.kill(1);
  Timer t;
  EXPECT_THROW((void)group.channel(1).recv_frame(5.0), Error);
  EXPECT_LT(t.seconds(), 5.0);  // EOF detection, not timeout expiry
  group.join(1.0);
}

TEST(TransportFault, SendToDeadPeerThrowsInsteadOfSigpipe) {
  WorkerGroup live(2, SpawnMode::kProcess, [](int, Channel& ch) {
    (void)ch.recv_frame(30.0);
  });
  live.kill(1);
  // Depending on buffering the first send may land in the kernel buffer, but
  // a multi-MB payload must hit EPIPE/ECONNRESET and throw (not SIGPIPE).
  std::vector<std::byte> big(8 << 20);
  EXPECT_THROW(
      {
        for (int i = 0; i < 4; ++i) live.channel(1).send_frame(2, big, 5.0);
      },
      Error);
  live.join(1.0);
}

TEST(TransportFault, TruncatedFrameAndBadMagicAreDetected) {
  // Raw socketpair so the test can tear the stream at arbitrary byte offsets.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Channel root(fds[0]);  // takes ownership; fds[1] stays raw for the test

  const std::uint32_t magic = 0x54544652u;
  const std::uint32_t tag = 3;
  std::uint64_t len = 64;
  std::uint64_t checksum = 0;  // wrong for any payload, but truncation hits first
  std::byte header[24];
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &tag, 4);
  std::memcpy(header + 8, &len, 8);
  std::memcpy(header + 16, &checksum, 8);

  // Header promises 64 bytes; only 10 arrive before the peer closes.
  ASSERT_EQ(::send(fds[1], header, sizeof header, 0),
            static_cast<ssize_t>(sizeof header));
  std::byte partial[10] = {};
  ASSERT_EQ(::send(fds[1], partial, sizeof partial, 0),
            static_cast<ssize_t>(sizeof partial));
  ::close(fds[1]);
  try {
    (void)root.recv_frame(5.0);
    FAIL() << "truncated frame was not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }

  // Garbage magic: stream desync must be flagged before any payload is read.
  int fds2[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds2), 0);
  Channel root2(fds2[0]);
  std::byte junk[24];
  std::memset(junk, 0xab, sizeof junk);
  ASSERT_EQ(::send(fds2[1], junk, sizeof junk, 0),
            static_cast<ssize_t>(sizeof junk));
  try {
    (void)root2.recv_frame(5.0);
    FAIL() << "bad frame magic was not detected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
  ::close(fds2[1]);
}

TEST(TransportFault, RecvTimesOutOnSilentPeer) {
  auto [root, peer] = Channel::make_pair();
  Timer t;
  try {
    (void)root.recv_frame(0.2);
    FAIL() << "recv on a silent peer did not time out";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
  EXPECT_GE(t.seconds(), 0.2);
  EXPECT_LT(t.seconds(), 5.0);
  (void)peer;
}

TEST(Transport, SpawnModeEnvKnobParses) {
  EXPECT_STREQ(tt::rt::spawn_mode_name(SpawnMode::kProcess), "process");
  EXPECT_STREQ(tt::rt::spawn_mode_name(SpawnMode::kThread), "thread");
}

}  // namespace

// Property tests of the bin partitioner: over random weight sets and random
// QN block structures, every bin lands on exactly one rank and no rank's load
// exceeds the documented total/R + w_max bound of the cyclic deal.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "runtime/partition.hpp"
#include "support/rng.hpp"
#include "symm/block_ops.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::rt::Partition;
using tt::rt::choose_replicated;
using tt::rt::partition_bins;
using tt::symm::BlockTensor;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;
using tt::symm::Sector;

// Random index: 1–4 sectors with distinct small charges, dims 1–4 (the
// tests/symm random-structure idiom).
Index random_index(Rng& rng, Dir dir) {
  const int nsec = static_cast<int>(rng.integer(1, 4));
  std::vector<Sector> sectors;
  std::vector<QN> used;
  while (static_cast<int>(sectors.size()) < nsec) {
    QN q(static_cast<int>(rng.integer(-2, 2)));
    bool fresh = true;
    for (const QN& u : used) fresh &= !(u == q);
    if (!fresh) continue;
    used.push_back(q);
    sectors.push_back({q, rng.integer(1, 4)});
  }
  return Index(sectors, dir);
}

// Invariants every partition must satisfy, for any weights and rank count.
void check_partition(const Partition& p, const std::vector<double>& weights,
                     int num_ranks) {
  ASSERT_EQ(p.rank_of.size(), weights.size());
  ASSERT_EQ(p.rank_load.size(), static_cast<std::size_t>(num_ranks));

  // Every bin assigned exactly once, to a valid rank.
  std::vector<double> recomputed(static_cast<std::size_t>(num_ranks), 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    ASSERT_GE(p.rank_of[i], 0);
    ASSERT_LT(p.rank_of[i], num_ranks);
    recomputed[static_cast<std::size_t>(p.rank_of[i])] += weights[i];
  }

  // Reported loads match the assignment, and each respects the bound.
  double total = 0.0, wmax = 0.0;
  for (double w : weights) {
    total += w;
    wmax = std::max(wmax, w);
  }
  const double bound = (num_ranks > 0 ? total / num_ranks : 0.0) + wmax;
  EXPECT_NEAR(p.load_bound(), bound, 1e-9 * (1.0 + bound));
  for (int r = 0; r < num_ranks; ++r) {
    EXPECT_NEAR(p.rank_load[static_cast<std::size_t>(r)],
                recomputed[static_cast<std::size_t>(r)], 1e-9 * (1.0 + total));
    EXPECT_LE(p.rank_load[static_cast<std::size_t>(r)],
              bound * (1.0 + 1e-12) + 1e-12);
  }
}

TEST(Partition, RandomWeightsStayWithinTheDocumentedBound) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const int nbins = static_cast<int>(rng.integer(0, 60));
    const int ranks = static_cast<int>(rng.integer(1, 8));
    std::vector<double> weights(static_cast<std::size_t>(nbins));
    for (double& w : weights) {
      // Heavy-tailed weights: the adversarial case for load balance.
      w = std::pow(10.0, rng.uniform(0.0, 4.0));
      if (rng.integer(0, 9) == 0) w = 0.0;  // empty-ish bins occur in practice
    }
    check_partition(partition_bins(weights, ranks), weights, ranks);
  }
}

TEST(Partition, RandomQnBlockStructuresStayWithinTheBound) {
  // The real workload: bins enumerated from random symmetric block structures,
  // weighted by estimated flops.
  Rng rng(202);
  int structures_checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Index shared = random_index(rng, Dir::Out);
    const BlockTensor a = BlockTensor::random(
        {random_index(rng, Dir::In), shared, random_index(rng, Dir::Out)},
        QN(static_cast<int>(rng.integer(-1, 1))), rng);
    const BlockTensor b = BlockTensor::random(
        {shared.reversed(), random_index(rng, Dir::In)},
        QN(static_cast<int>(rng.integer(-1, 1))), rng);
    if (a.num_blocks() == 0 || b.num_blocks() == 0) continue;

    const std::vector<std::pair<int, int>> pairs = {{1, 0}};
    const auto plan = tt::symm::make_contract_plan(a, b, pairs);
    const auto bins = tt::symm::enumerate_bins(a, b, pairs, plan);
    std::vector<double> weights(bins.size());
    for (std::size_t i = 0; i < bins.size(); ++i) {
      EXPECT_FALSE(bins[i].pairs.empty());  // a bin exists only if touched
      EXPECT_GT(bins[i].est_flops, 0.0);
      weights[i] = bins[i].est_flops;
    }
    for (int ranks : {1, 2, 3, 4, 7})
      check_partition(partition_bins(weights, ranks), weights, ranks);
    ++structures_checked;
  }
  EXPECT_GT(structures_checked, 10);  // the sweep must actually exercise bins
}

TEST(Partition, IsDeterministicIncludingTies) {
  const std::vector<double> weights = {5, 5, 5, 1, 1, 9, 9, 0, 3};
  const Partition first = partition_bins(weights, 3);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const Partition again = partition_bins(weights, 3);
    EXPECT_EQ(first.rank_of, again.rank_of);
    EXPECT_EQ(first.rank_load, again.rank_load);
  }
}

TEST(Partition, SingleRankGetsEverything) {
  const std::vector<double> weights = {2, 7, 1};
  const Partition p = partition_bins(weights, 1);
  EXPECT_EQ(p.rank_of, (std::vector<int>{0, 0, 0}));
  EXPECT_DOUBLE_EQ(p.rank_load[0], 10.0);
}

TEST(Partition, MoreRanksThanBinsLeavesSpareRanksIdle) {
  const std::vector<double> weights = {4, 2};
  const Partition p = partition_bins(weights, 5);
  check_partition(p, weights, 5);
  int loaded = 0;
  for (double l : p.rank_load) loaded += l > 0 ? 1 : 0;
  EXPECT_EQ(loaded, 2);
}

TEST(Partition, EmptyBinListIsFine) {
  const Partition p = partition_bins({}, 4);
  EXPECT_TRUE(p.rank_of.empty());
  EXPECT_DOUBLE_EQ(p.total_weight, 0.0);
}

TEST(Partition, RejectsInvalidInput) {
  EXPECT_THROW(partition_bins({1.0}, 0), tt::Error);
  EXPECT_THROW(partition_bins({-1.0}, 2), tt::Error);
}

TEST(Partition, ChooseReplicatedPicksTheSmallerOperand) {
  EXPECT_EQ(choose_replicated(10.0, 100.0), 0);
  EXPECT_EQ(choose_replicated(100.0, 10.0), 1);
  EXPECT_EQ(choose_replicated(50.0, 50.0), 0);  // ties replicate a
}

}  // namespace

// Deterministic fault injection and scheduler self-healing.
//
// Every fault in the catalog is armed against a live 2-rank (and, for the
// env-schedule acceptance test, 4-rank) scheduler; the contraction must come
// back bitwise identical to the serial reference, with the recovery counted
// in SchedulerStats and charged to Category::kRecovery. Root-evaluated
// faults (worker.*) have exact mode-agnostic counters; worker-evaluated ones
// (frame.*, payload.*, wire.*) have per-process counters in fork mode — a
// respawned worker starts fresh — so those assertions use >= where the two
// spawn modes legitimately differ (see fault.hpp's process-mode caveat).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/tracker.hpp"
#include "spawn_modes.hpp"
#include "support/rng.hpp"
#include "symm/block_ops.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::rt::FaultInjector;
using tt::rt::FaultSide;
using tt::rt::FaultSpec;
using tt::rt::Scheduler;
using tt::rt::SchedulerOptions;
using tt::rt::SpawnMode;
using tt::symm::BlockTensor;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;

Index wide_bond(Dir d, int nsec, int dim0) {
  std::vector<tt::symm::Sector> secs;
  for (int q = 0; q < nsec; ++q)
    secs.push_back({QN(q - nsec / 2), static_cast<index_t>(dim0 + q % 3)});
  return Index(secs, d);
}

Index phys(Dir d) { return Index({{QN(-1), 2}, {QN(1), 2}}, d); }

std::pair<BlockTensor, BlockTensor> many_block_pair(unsigned seed) {
  Rng rng(seed);
  const Index mid = wide_bond(Dir::Out, 11, 3);
  BlockTensor a = BlockTensor::random(
      {wide_bond(Dir::In, 9, 2), phys(Dir::In), mid}, QN::zero(1), rng);
  BlockTensor b = BlockTensor::random(
      {mid.reversed(), phys(Dir::In), wide_bond(Dir::Out, 9, 2)}, QN::zero(1), rng);
  return {std::move(a), std::move(b)};
}

void expect_bitwise_equal(const BlockTensor& x, const BlockTensor& y) {
  ASSERT_TRUE(x.same_structure(y));
  ASSERT_EQ(x.num_blocks(), y.num_blocks());
  for (const auto& [key, blk] : x.blocks()) {
    const tt::tensor::DenseTensor* other = y.find_block(key);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(std::memcmp(blk.data(), other->data(),
                          static_cast<std::size_t>(blk.size()) * sizeof(double)),
              0);
  }
}

// Every test arms the process-wide injector (the one transport/scheduler
// consult) and must leave it empty for the next test.
class FaultModes : public ::testing::TestWithParam<SpawnMode> {
 protected:
  void SetUp() override { FaultInjector::instance().clear(); }
  void TearDown() override { FaultInjector::instance().clear(); }
};

SchedulerOptions two_rank_opts(SpawnMode mode) {
  SchedulerOptions opts;
  opts.num_ranks = 2;
  opts.mode = mode;
  opts.root_threads = 1;
  opts.retry.base_delay_seconds = 0.001;  // keep backoff out of test wall time
  return opts;
}

// ---------------------------------------------------------------------------
// FaultInjector unit semantics (local instances, no scheduler involved).
// ---------------------------------------------------------------------------

TEST(FaultInjectorUnit, ParseEntryFieldsAndDefaults) {
  const FaultSpec d = FaultInjector::parse_entry("frame.delay");
  EXPECT_EQ(d.point, "frame.delay");
  EXPECT_EQ(d.nth, 0);
  EXPECT_EQ(d.rank, -1);
  EXPECT_EQ(d.side, FaultSide::kAny);
  EXPECT_EQ(d.count, 1);
  EXPECT_DOUBLE_EQ(d.prob, 1.0);
  EXPECT_DOUBLE_EQ(d.ms, 0.0);

  const FaultSpec f = FaultInjector::parse_entry(
      "payload.corrupt:nth=3;rank=2;side=worker;count=5;prob=0.25;seed=11;ms=7.5");
  EXPECT_EQ(f.point, "payload.corrupt");
  EXPECT_EQ(f.nth, 3);
  EXPECT_EQ(f.rank, 2);
  EXPECT_EQ(f.side, FaultSide::kWorker);
  EXPECT_EQ(f.count, 5);
  EXPECT_DOUBLE_EQ(f.prob, 0.25);
  EXPECT_EQ(f.seed, 11u);
  EXPECT_DOUBLE_EQ(f.ms, 7.5);
}

TEST(FaultInjectorUnit, RejectsUnknownFieldsAndBadValues) {
  EXPECT_THROW((void)FaultInjector::parse_entry("frame.delay:bogus=1"), tt::Error);
  EXPECT_THROW((void)FaultInjector::parse_entry("frame.delay:nth=abc"), tt::Error);
  EXPECT_THROW((void)FaultInjector::parse_entry("frame.delay:side=sideways"),
               tt::Error);
  EXPECT_THROW((void)FaultInjector::parse_entry(""), tt::Error);
}

TEST(FaultInjectorUnit, NthCountAndContextMatching) {
  FaultInjector inj;
  FaultSpec s;
  s.point = "p";
  s.nth = 2;   // fire on exactly the 2nd eligible hit
  s.count = 1;
  s.rank = 1;
  s.side = FaultSide::kWorker;
  inj.arm(s);

  // Contexts that do not state rank 1 / worker side are not eligible.
  EXPECT_FALSE(inj.should_fire("p"));
  EXPECT_FALSE(inj.should_fire("p", 2, FaultSide::kWorker));
  EXPECT_FALSE(inj.should_fire("p", 1, FaultSide::kRoot));
  EXPECT_EQ(inj.hits("p"), 0);

  EXPECT_FALSE(inj.should_fire("p", 1, FaultSide::kWorker));  // hit 1
  EXPECT_TRUE(inj.should_fire("p", 1, FaultSide::kWorker));   // hit 2: fires
  EXPECT_FALSE(inj.should_fire("p", 1, FaultSide::kWorker));  // spent
  EXPECT_EQ(inj.hits("p"), 3);
  EXPECT_EQ(inj.fires("p"), 1);

  // nth=0, count=2: fires on every eligible hit until the budget is spent.
  FaultInjector inj2;
  FaultSpec every;
  every.point = "q";
  every.nth = 0;
  every.count = 2;
  inj2.arm(every);
  EXPECT_TRUE(inj2.should_fire("q"));
  EXPECT_TRUE(inj2.should_fire("q"));
  EXPECT_FALSE(inj2.should_fire("q"));
  EXPECT_EQ(inj2.fires("q"), 2);
}

TEST(FaultInjectorUnit, ProbStreamIsDeterministic) {
  auto pattern = [](std::uint64_t seed) {
    FaultInjector inj;
    FaultSpec s;
    s.point = "p";
    s.nth = 0;
    s.count = 0;  // unlimited
    s.prob = 0.5;
    s.seed = seed;
    inj.arm(s);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(inj.should_fire("p"));
    return fired;
  };
  const std::vector<bool> a = pattern(7);
  EXPECT_EQ(a, pattern(7));  // same seed, same schedule — replayable
  EXPECT_NE(a, pattern(8));  // different stream
  // And genuinely probabilistic: neither all-fire nor never-fire in 64 draws.
  long fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST(FaultInjectorUnit, ConfigureArmsCommaSeparatedEntries) {
  FaultInjector inj;
  inj.configure("frame.delay:ms=5,worker.fail_task:nth=2;count=3");
  EXPECT_TRUE(inj.active());
  EXPECT_FALSE(inj.should_fire("worker.fail_task"));  // hit 1 of nth=2
  EXPECT_TRUE(inj.should_fire("worker.fail_task"));
  FaultSpec fired;
  EXPECT_TRUE(inj.should_fire("frame.delay", -1, FaultSide::kAny, &fired));
  EXPECT_DOUBLE_EQ(fired.ms, 5.0);
  inj.clear();
  EXPECT_FALSE(inj.active());
  EXPECT_FALSE(inj.should_fire("frame.delay"));
}

// ---------------------------------------------------------------------------
// Scheduler self-healing, one catalog fault at a time.
// ---------------------------------------------------------------------------

TEST_P(FaultModes, KillBeforeResultIsHealedBitwise) {
  auto [a, b] = many_block_pair(51);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});

  FaultInjector::instance().configure("worker.kill_before_result:nth=1;rank=1");
  Scheduler sched(two_rank_opts(GetParam()));
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));

  // Root-evaluated fault: counters are exact in both spawn modes.
  EXPECT_EQ(sched.stats().faults_detected, 1);
  EXPECT_EQ(sched.stats().retries, 1);
  EXPECT_EQ(sched.stats().respawns, 1);
  EXPECT_EQ(sched.stats().ranks_lost, 0);
  EXPECT_FALSE(sched.stats().degraded);
  EXPECT_EQ(sched.live_workers(), 1);
  EXPECT_GT(sched.last().recovery_seconds, 0.0);

  // Recovery is charged to its own tracker category, beside kComm.
  tt::rt::CostTracker t;
  sched.reduce_into(t);
  EXPECT_GT(t.time(tt::rt::Category::kRecovery), 0.0);

  // The respawned worker serves the next contraction cleanly (spec spent).
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_EQ(sched.stats().faults_detected, 1);
  sched.shutdown();
}

TEST_P(FaultModes, FailedTaskIsRedistributedWithoutRespawn) {
  auto [a, b] = many_block_pair(52);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});

  FaultInjector::instance().configure("worker.fail_task:nth=1;rank=1");
  Scheduler sched(two_rank_opts(GetParam()));
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));

  // An error frame is frame-aligned: the worker stays alive, its share is
  // simply re-executed on the root.
  EXPECT_EQ(sched.stats().faults_detected, 1);
  EXPECT_EQ(sched.stats().retries, 1);
  EXPECT_EQ(sched.stats().respawns, 0);
  EXPECT_EQ(sched.live_workers(), 1);

  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_EQ(sched.stats().faults_detected, 1);
  sched.shutdown();
}

TEST_P(FaultModes, CorruptResultPayloadIsDetectedAndHealed) {
  auto [a, b] = many_block_pair(53);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});

  FaultInjector::instance().configure("payload.corrupt:nth=1;rank=1;side=worker");
  Scheduler sched(two_rank_opts(GetParam()));
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_EQ(sched.stats().faults_detected, 1);
  EXPECT_EQ(sched.stats().retries, 1);
  EXPECT_EQ(sched.stats().respawns, 1);

  // Worker-evaluated fault: in process mode the respawned fork starts with
  // fresh counters and may re-fire, so later contractions assert bitwise
  // results and monotone counters only.
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_GE(sched.stats().faults_detected, 1);
  sched.shutdown();
}

TEST_P(FaultModes, TruncatedResultFrameIsDetectedAndHealed) {
  auto [a, b] = many_block_pair(54);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});

  FaultInjector::instance().configure("frame.truncate:nth=1;rank=1;side=worker");
  Scheduler sched(two_rank_opts(GetParam()));
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_EQ(sched.stats().faults_detected, 1);
  EXPECT_EQ(sched.stats().retries, 1);
  EXPECT_EQ(sched.stats().respawns, 1);

  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  sched.shutdown();
}

TEST_P(FaultModes, WireTruncatedPayloadIsDetectedAndHealed) {
  auto [a, b] = many_block_pair(55);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});

  // wire.truncate has no rank/side context (it fires where a wire payload is
  // *built*), so which frame it damages differs between spawn modes — task
  // frame at the root, or result/error frame in a fork's own counter space.
  // The healing contract is mode-independent: bitwise result, fault counted.
  FaultInjector::instance().configure("wire.truncate:nth=1");
  Scheduler sched(two_rank_opts(GetParam()));
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_EQ(sched.stats().faults_detected, 1);
  EXPECT_EQ(sched.stats().retries, 1);

  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  sched.shutdown();
}

TEST_P(FaultModes, WedgedWorkerIsTimedOutAndHealed) {
  auto [a, b] = many_block_pair(56);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});

  // The worker's result frame is delayed far past the transport deadline:
  // the root must observe a timeout (not hang), re-execute the share, and
  // heal the rank.
  FaultInjector::instance().configure(
      "frame.delay:ms=800;nth=1;rank=1;side=worker");
  SchedulerOptions opts = two_rank_opts(GetParam());
  opts.timeout_seconds = 0.25;
  Scheduler sched(opts);
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_GE(sched.stats().faults_detected, 1);
  EXPECT_GE(sched.stats().retries, 1);
  EXPECT_GT(sched.last().recovery_seconds, 0.0);
  sched.shutdown();
}

TEST_P(FaultModes, DegradesToSerialWhenWorkersKeepDying) {
  auto [a, b] = many_block_pair(57);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});

  // Kill the worker on every task. One respawn is allowed; the second death
  // retires the rank and the scheduler degrades to serial root execution.
  FaultInjector::instance().configure("worker.kill_before_result:nth=0;count=0");
  SchedulerOptions opts = two_rank_opts(GetParam());
  opts.retry.max_attempts = 1;
  Scheduler sched(opts);

  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));  // die + respawn
  EXPECT_EQ(sched.stats().respawns, 1);
  EXPECT_EQ(sched.live_workers(), 1);

  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));  // die + retire
  EXPECT_EQ(sched.stats().faults_detected, 2);
  EXPECT_EQ(sched.stats().retries, 2);
  EXPECT_EQ(sched.stats().ranks_lost, 1);
  EXPECT_TRUE(sched.stats().degraded);
  EXPECT_EQ(sched.live_workers(), 0);

  // Serial degraded mode: no workers left to fault, still correct.
  expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_EQ(sched.stats().faults_detected, 2);
  sched.shutdown();
}

TEST_P(FaultModes, HealingDisabledReproducesFailFast) {
  auto [a, b] = many_block_pair(58);
  FaultInjector::instance().configure("worker.kill_before_result:nth=1;rank=1");
  SchedulerOptions opts = two_rank_opts(GetParam());
  opts.retry.max_attempts = 0;  // legacy behaviour: first fault breaks it
  Scheduler sched(opts);
  EXPECT_THROW((void)sched.contract(a, b, {{2, 0}}), tt::Error);
  EXPECT_THROW((void)sched.contract(a, b, {{2, 0}}), tt::Error);
  sched.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Modes, FaultModes,
                         ::testing::ValuesIn(tt::rt::testing::tested_spawn_modes()),
                         [](const auto& info) {
                           return std::string(tt::rt::spawn_mode_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Acceptance: the TT_FAULTS-grammar schedule of the issue, at 2 and 4 ranks.
// ---------------------------------------------------------------------------

TEST(FaultEnvSchedule, WorkerKillPlusFrameTruncationHealBitwiseAt2And4Ranks) {
  auto [a, b] = many_block_pair(59);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});
  const std::string schedule =
      "worker.kill_before_result:nth=1;rank=1,"
      "frame.truncate:nth=1;rank=2;side=worker";

  for (SpawnMode mode : tt::rt::testing::tested_spawn_modes()) {
    for (int ranks : {2, 4}) {
      FaultInjector::instance().clear();
      FaultInjector::instance().configure(schedule);
      SchedulerOptions opts;
      opts.num_ranks = ranks;
      opts.mode = mode;
      opts.root_threads = 1;
      opts.retry.base_delay_seconds = 0.001;
      Scheduler sched(opts);

      expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
      // rank 2 only exists in the 4-rank run; the kill always fires.
      const long expect_faults = ranks == 4 ? 2 : 1;
      EXPECT_EQ(sched.stats().faults_detected, expect_faults)
          << ranks << " ranks, " << tt::rt::spawn_mode_name(mode);
      EXPECT_EQ(sched.stats().retries, expect_faults);
      EXPECT_EQ(sched.stats().respawns, expect_faults);
      EXPECT_EQ(sched.live_workers(), ranks - 1);  // everyone healed
      EXPECT_GT(sched.last().recovery_seconds, 0.0);

      // Healed group keeps serving, bitwise.
      expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
      sched.shutdown();
    }
  }
  FaultInjector::instance().clear();
}

}  // namespace

// Rank parity of the distributed block scheduler: results AND merged
// ContractStats at 2 and 4 ranks must be bitwise identical to the 1-rank run
// (which itself equals symm::contract) — the distributed extension of the
// TT_THREADS thread-count invariant. Plus measured-stats sanity and
// fault-injection behaviour of the scheduler itself.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dmrg/dmrg.hpp"
#include "dmrg/engines.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "runtime/machine.hpp"
#include "runtime/scheduler.hpp"
#include "spawn_modes.hpp"
#include "runtime/tracker.hpp"
#include "support/rng.hpp"
#include "symm/block_ops.hpp"
#include "symm/fuse.hpp"
#include "tensor/einsum.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::rt::DistStats;
using tt::rt::Scheduler;
using tt::rt::SchedulerOptions;
using tt::rt::SpawnMode;
using tt::symm::BlockTensor;
using tt::symm::ContractStats;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;

// A bond with many sectors so one contraction produces dozens of bins (the
// tests/symm parallel-contract workload).
Index wide_bond(Dir d, int nsec, int dim0) {
  std::vector<tt::symm::Sector> secs;
  for (int q = 0; q < nsec; ++q)
    secs.push_back({QN(q - nsec / 2), static_cast<index_t>(dim0 + q % 3)});
  return Index(secs, d);
}

Index phys(Dir d) { return Index({{QN(-1), 2}, {QN(1), 2}}, d); }

std::pair<BlockTensor, BlockTensor> many_block_pair(unsigned seed) {
  Rng rng(seed);
  const Index mid = wide_bond(Dir::Out, 11, 3);
  BlockTensor a = BlockTensor::random(
      {wide_bond(Dir::In, 9, 2), phys(Dir::In), mid}, QN::zero(1), rng);
  BlockTensor b = BlockTensor::random(
      {mid.reversed(), phys(Dir::In), wide_bond(Dir::Out, 9, 2)}, QN::zero(1), rng);
  return {std::move(a), std::move(b)};
}

void expect_bitwise_equal(const BlockTensor& x, const BlockTensor& y) {
  ASSERT_TRUE(x.same_structure(y));
  ASSERT_EQ(x.num_blocks(), y.num_blocks());
  for (const auto& [key, blk] : x.blocks()) {
    const tt::tensor::DenseTensor* other = y.find_block(key);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(blk.shape(), other->shape());
    ASSERT_EQ(std::memcmp(blk.data(), other->data(),
                          static_cast<std::size_t>(blk.size()) * sizeof(double)),
              0);
  }
}

void expect_identical_stats(const ContractStats& x, const ContractStats& y) {
  EXPECT_EQ(x.total_flops, y.total_flops);
  EXPECT_EQ(x.permuted_words, y.permuted_words);
  EXPECT_EQ(x.num_bins, y.num_bins);
  ASSERT_EQ(x.block_ops.size(), y.block_ops.size());
  for (std::size_t i = 0; i < x.block_ops.size(); ++i) {
    EXPECT_EQ(x.block_ops[i].flops, y.block_ops[i].flops);
    EXPECT_EQ(x.block_ops[i].words_a, y.block_ops[i].words_a);
    EXPECT_EQ(x.block_ops[i].words_b, y.block_ops[i].words_b);
    EXPECT_EQ(x.block_ops[i].words_c, y.block_ops[i].words_c);
  }
}

class SchedulerModes : public ::testing::TestWithParam<SpawnMode> {};

TEST_P(SchedulerModes, ResultsAndStatsBitwiseIdenticalAt1_2_4Ranks) {
  auto [a, b] = many_block_pair(41);
  const std::vector<std::pair<int, int>> pairs = {{2, 0}};

  // Serial reference: the existing thread executor at one thread.
  ContractStats ref_stats;
  tt::symm::ContractOptions serial;
  serial.num_threads = 1;
  const BlockTensor ref = tt::symm::contract(a, b, pairs, &ref_stats, serial);
  ASSERT_GT(ref.num_blocks(), 8);
  ASSERT_GT(ref_stats.block_ops.size(), 30u);

  for (int ranks : {1, 2, 4}) {
    SchedulerOptions opts;
    opts.num_ranks = ranks;
    opts.mode = GetParam();
    opts.root_threads = 1;
    Scheduler sched(opts);
    ContractStats st;
    const BlockTensor c = sched.contract(a, b, pairs, &st);
    expect_bitwise_equal(ref, c);
    expect_identical_stats(ref_stats, st);

    // Placement bookkeeping: every bin executed exactly once, somewhere.
    const DistStats& d = sched.last();
    ASSERT_EQ(d.ranks.size(), static_cast<std::size_t>(ranks));
    int bins = 0;
    double flops = 0.0;
    for (const auto& r : d.ranks) {
      bins += r.bins;
      flops += r.flops;
    }
    EXPECT_EQ(bins, st.num_bins);
    EXPECT_DOUBLE_EQ(flops, st.total_flops);
    if (ranks > 1) {
      for (std::size_t r = 1; r < d.ranks.size(); ++r) {
        EXPECT_GT(d.ranks[r].bins, 0);  // the deal spreads this many bins
        EXPECT_GT(d.ranks[r].bytes_sent, 0.0);      // operands were shipped
        EXPECT_GT(d.ranks[r].bytes_received, 0.0);  // results came back
      }
      EXPECT_GT(d.exchange_words, 0.0);
      EXPECT_GE(d.imbalance_seconds, 0.0);
    } else {
      EXPECT_EQ(d.total_bytes(), 0.0);  // fully local: nothing on the wire
    }
    sched.shutdown();
  }
}

TEST_P(SchedulerModes, RepeatedContractionsReuseWorkersAndAccumulate) {
  auto [a, b] = many_block_pair(42);
  SchedulerOptions opts;
  opts.num_ranks = 2;
  opts.mode = GetParam();
  Scheduler sched(opts);

  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}});
  for (int it = 0; it < 3; ++it)
    expect_bitwise_equal(ref, sched.contract(a, b, {{2, 0}}));
  EXPECT_EQ(sched.accumulated().contractions, 3);
  EXPECT_DOUBLE_EQ(sched.accumulated().total_bytes(),
                   3.0 * sched.last().total_bytes());

  // The measured record reduces into the cost tracker in fixed rank order.
  tt::rt::CostTracker t;
  sched.reduce_into(t);
  EXPECT_GT(t.time(tt::rt::Category::kGemm), 0.0);
  EXPECT_GT(t.time(tt::rt::Category::kComm), 0.0);
  EXPECT_GT(t.words(), 0.0);
  EXPECT_DOUBLE_EQ(t.supersteps(), 3.0);
  EXPECT_DOUBLE_EQ(t.flops(), sched.accumulated().total_flops());
}

TEST_P(SchedulerModes, MultiModeAndScalarOutputsStayDeterministic) {
  auto [a, b] = many_block_pair(43);
  (void)b;
  const BlockTensor adag = a.dagger();
  SchedulerOptions opts;
  opts.num_ranks = 3;
  opts.mode = GetParam();
  Scheduler sched(opts);
  // Overlap-style double contraction (order-2 output).
  expect_bitwise_equal(tt::symm::contract(a, adag, {{1, 1}, {2, 2}}),
                       sched.contract(a, adag, {{1, 1}, {2, 2}}));
  // Full contraction to a scalar: a single bin, so 2 of 3 ranks idle.
  expect_bitwise_equal(tt::symm::contract(a, adag, {{0, 0}, {1, 1}, {2, 2}}),
                       sched.contract(a, adag, {{0, 0}, {1, 1}, {2, 2}}));
  const DistStats& d = sched.last();
  EXPECT_EQ(d.ranks[0].bins + d.ranks[1].bins + d.ranks[2].bins, 1);
}

TEST_P(SchedulerModes, AgreesWithTheFusedDenseOracle) {
  auto [a, b] = many_block_pair(44);
  SchedulerOptions opts;
  opts.num_ranks = 2;
  opts.mode = GetParam();
  Scheduler sched(opts);
  const BlockTensor c = sched.contract(a, b, {{2, 0}});
  auto want = tt::tensor::einsum("lsr,rtm->lstm", tt::symm::fuse_dense(a),
                                 tt::symm::fuse_dense(b));
  EXPECT_LT(tt::tensor::max_abs_diff(tt::symm::fuse_dense(c), want),
            1e-10 * (1.0 + want.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(Modes, SchedulerModes,
                         ::testing::ValuesIn(
                             tt::rt::testing::tested_spawn_modes()),
                         [](const auto& info) {
                           return std::string(tt::rt::spawn_mode_name(info.param));
                         });

TEST(SchedulerDmrg, FullDmrgRunIsBitwiseIdenticalWithAndWithoutRanks) {
  // End-to-end wiring: a DMRG ground-state run whose list engine routes every
  // block contraction through a 2-rank scheduler must reproduce the local
  // run's energy trajectory bitwise, while the tracker carries the *measured*
  // communication of the real exchanges instead of the simulated BSP model.
  const int n = 6;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  std::vector<tt::dmrg::SweepParams> schedule(2);
  for (auto& p : schedule) p.max_m = 16;

  auto run = [&](tt::rt::Scheduler* sched) {
    auto engine = tt::dmrg::make_engine(tt::dmrg::EngineKind::kList,
                                        {tt::rt::localhost(), 1, 1});
    engine->set_scheduler(sched);
    tt::dmrg::Dmrg solver(tt::mps::Mps::product_state(sites, neel), h,
                          std::move(engine));
    const double e = solver.run(schedule);
    return std::make_pair(e, solver.engine().tracker());
  };

  const auto [e_local, t_local] = run(nullptr);

  SchedulerOptions opts;
  opts.num_ranks = 2;
  Scheduler sched(opts);
  const auto [e_dist, t_dist] = run(&sched);

  EXPECT_EQ(e_dist, e_local);  // bitwise: the whole trajectory must agree
  // Identical numerics on both paths...
  EXPECT_EQ(t_dist.flops(), t_local.flops());
  // ...but the distributed tracker is measured, not simulated: real bytes
  // moved and real time spent, including communication.
  EXPECT_GT(t_dist.time(tt::rt::Category::kComm), 0.0);
  EXPECT_GT(t_dist.time(tt::rt::Category::kGemm), 0.0);
  EXPECT_GT(t_dist.words(), 0.0);
  EXPECT_GT(sched.accumulated().contractions, 10);
  // The tracker also carries SVD flops, which never flow through the
  // scheduler — the scheduler's measured flops are the contraction share.
  EXPECT_GT(sched.accumulated().total_flops(), 0.0);
  EXPECT_LE(sched.accumulated().total_flops(), t_dist.flops());
}

TEST(SchedulerFault, KilledWorkerSurfacesAsCleanErrorAndSchedulerBreaks) {
  auto [a, b] = many_block_pair(45);
  SchedulerOptions opts;
  opts.num_ranks = 2;
  opts.mode = SpawnMode::kProcess;
  opts.timeout_seconds = 10.0;
  // Self-healing off: this test pins the legacy fail-fast contract (the
  // healing path is covered by tests/runtime/test_fault.cpp).
  opts.retry.max_attempts = 0;
  Scheduler sched(opts);
  // First exchange proves the pair works.
  (void)sched.contract(a, b, {{2, 0}});
  sched.kill_rank(1);
  EXPECT_THROW((void)sched.contract(a, b, {{2, 0}}), tt::Error);
  // Broken stays broken: the protocol state with the dead rank is unknown.
  EXPECT_THROW((void)sched.contract(a, b, {{2, 0}}), tt::Error);
  sched.shutdown();  // must not hang on the corpse
}

TEST(SchedulerFault, SingleRankNeedsNoWorkersAndCannotBreak) {
  auto [a, b] = many_block_pair(46);
  Scheduler sched;  // defaults: 1 rank
  EXPECT_EQ(sched.num_ranks(), 1);
  EXPECT_THROW(sched.kill_rank(1), tt::Error);
  expect_bitwise_equal(tt::symm::contract(a, b, {{2, 0}}),
                       sched.contract(a, b, {{2, 0}}));
}

}  // namespace

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "runtime/tracker.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace {

using tt::rt::Category;
using tt::rt::CostTracker;

TEST(Tracker, AccumulatesPerCategory) {
  CostTracker t;
  t.add_time(Category::kGemm, 1.0);
  t.add_time(Category::kGemm, 0.5);
  t.add_time(Category::kComm, 2.0);
  EXPECT_DOUBLE_EQ(t.time(Category::kGemm), 1.5);
  EXPECT_DOUBLE_EQ(t.time(Category::kComm), 2.0);
  EXPECT_DOUBLE_EQ(t.total_time(), 3.5);
}

TEST(Tracker, PercentagesSumToHundred) {
  CostTracker t;
  t.add_time(Category::kGemm, 3.0);
  t.add_time(Category::kSvd, 1.0);
  t.add_time(Category::kImbalance, 1.0);
  auto p = t.percentages();
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_NEAR(p[static_cast<int>(Category::kGemm)], 60.0, 1e-9);
}

TEST(Tracker, PercentagesOfEmptyTrackerAreZero) {
  CostTracker t;
  for (double v : t.percentages()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Tracker, RawBspQuantities) {
  CostTracker t;
  t.add_flops(100.0);
  t.add_words(7.0);
  t.add_supersteps(3.0);
  EXPECT_DOUBLE_EQ(t.flops(), 100.0);
  EXPECT_DOUBLE_EQ(t.words(), 7.0);
  EXPECT_DOUBLE_EQ(t.supersteps(), 3.0);
}

TEST(Tracker, DiffMeasuresSubRegion) {
  CostTracker t;
  t.add_time(Category::kGemm, 1.0);
  t.add_flops(10.0);
  CostTracker start = t;
  t.add_time(Category::kGemm, 2.0);
  t.add_flops(30.0);
  CostTracker d = t.diff(start);
  EXPECT_DOUBLE_EQ(d.time(Category::kGemm), 2.0);
  EXPECT_DOUBLE_EQ(d.flops(), 30.0);
}

TEST(Tracker, NegativeTimeRejected) {
  CostTracker t;
  EXPECT_THROW(t.add_time(Category::kGemm, -1.0), tt::Error);
}

TEST(Tracker, ResetClearsEverything) {
  CostTracker t;
  t.add_time(Category::kOther, 5.0);
  t.add_flops(1.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.total_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.flops(), 0.0);
}

TEST(Tracker, MergeAddsEverything) {
  CostTracker a, b;
  a.add_time(Category::kGemm, 1.0);
  a.add_flops(10.0);
  b.add_time(Category::kGemm, 2.0);
  b.add_time(Category::kComm, 4.0);
  b.add_words(3.0);
  b.add_supersteps(2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.time(Category::kGemm), 3.0);
  EXPECT_DOUBLE_EQ(a.time(Category::kComm), 4.0);
  EXPECT_DOUBLE_EQ(a.flops(), 10.0);
  EXPECT_DOUBLE_EQ(a.words(), 3.0);
  EXPECT_DOUBLE_EQ(a.supersteps(), 2.0);
}

TEST(TrackerShards, MergedEqualsSerialAccumulation) {
  tt::rt::CostTrackerShards shards(4);
  // The same charges applied shard-wise and serially must agree.
  CostTracker serial;
  for (int i = 0; i < 100; ++i) {
    const double t = 0.001 * i;
    shards.shard(i % 4).add_time(Category::kGemm, t);
    shards.shard(i % 4).add_flops(2.0 * i);
    serial.add_time(Category::kGemm, t);
    serial.add_flops(2.0 * i);
  }
  const CostTracker merged = shards.merged();
  EXPECT_NEAR(merged.time(Category::kGemm), serial.time(Category::kGemm), 1e-12);
  EXPECT_NEAR(merged.flops(), serial.flops(), 1e-9);

  CostTracker target;
  target.add_words(5.0);
  shards.merge_into(target);
  EXPECT_NEAR(target.flops(), serial.flops(), 1e-9);
  EXPECT_DOUBLE_EQ(target.words(), 5.0);

  shards.reset();
  EXPECT_DOUBLE_EQ(shards.merged().total_time(), 0.0);
}

TEST(TrackerShards, ConcurrentChargingIsSafe) {
  tt::rt::CostTrackerShards shards(8);
  tt::support::parallel_for(
      10000,
      [&](tt::index_t) {
        shards.shard(tt::support::execution_slot()).add_flops(1.0);
      },
      8);
  EXPECT_DOUBLE_EQ(shards.merged().flops(), 10000.0);
}

TEST(TrackerShards, RejectsBadShardCounts) {
  EXPECT_THROW(tt::rt::CostTrackerShards(0), tt::Error);
  tt::rt::CostTrackerShards s(2);
  EXPECT_THROW(s.shard(2), tt::Error);
  EXPECT_THROW(s.shard(-1), tt::Error);
}

TEST(Tracker, CategoryNames) {
  EXPECT_STREQ(tt::rt::category_name(Category::kGemm), "GEMM");
  EXPECT_STREQ(tt::rt::category_name(Category::kSvd), "SVD");
  EXPECT_STREQ(tt::rt::category_name(Category::kTranspose), "CTF transposition");
}

TEST(Tracker, EveryCategoryHasAName) {
  // A category added to the enum without a category_name entry would fall
  // through to the switch default; metrics keys ("pct.<name>") and breakdown
  // tables would silently share a label.
  std::set<std::string> names;
  for (int c = 0; c < tt::rt::kNumCategories; ++c) {
    const char* name = tt::rt::category_name(static_cast<Category>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
    EXPECT_STRNE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(tt::rt::kNumCategories));  // all distinct
}

TEST(Tracker, PercentagesAtZeroTotalStayFiniteAfterCharges) {
  // Zero-duration charges move flops/words but no time: percentages must not
  // divide by the zero total.
  CostTracker t;
  t.add_time(Category::kGemm, 0.0);
  t.add_flops(100.0);
  t.add_words(10.0);
  EXPECT_DOUBLE_EQ(t.total_time(), 0.0);
  for (double v : t.percentages()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Tracker, DiffAfterMergeIsolatesTheMergedCharges) {
  CostTracker t;
  t.add_time(Category::kGemm, 1.0);
  t.add_flops(5.0);
  const CostTracker before = t;

  CostTracker other;
  other.add_time(Category::kComm, 2.0);
  other.add_time(Category::kGemm, 0.5);
  other.add_words(4.0);
  other.add_supersteps(1.0);
  t.merge(other);

  const CostTracker d = t.diff(before);
  EXPECT_DOUBLE_EQ(d.time(Category::kGemm), 0.5);
  EXPECT_DOUBLE_EQ(d.time(Category::kComm), 2.0);
  EXPECT_DOUBLE_EQ(d.flops(), 0.0);
  EXPECT_DOUBLE_EQ(d.words(), 4.0);
  EXPECT_DOUBLE_EQ(d.supersteps(), 1.0);
  EXPECT_DOUBLE_EQ(d.total_time(), 2.5);
}

}  // namespace

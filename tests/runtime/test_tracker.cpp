#include <gtest/gtest.h>

#include "runtime/tracker.hpp"
#include "support/error.hpp"

namespace {

using tt::rt::Category;
using tt::rt::CostTracker;

TEST(Tracker, AccumulatesPerCategory) {
  CostTracker t;
  t.add_time(Category::kGemm, 1.0);
  t.add_time(Category::kGemm, 0.5);
  t.add_time(Category::kComm, 2.0);
  EXPECT_DOUBLE_EQ(t.time(Category::kGemm), 1.5);
  EXPECT_DOUBLE_EQ(t.time(Category::kComm), 2.0);
  EXPECT_DOUBLE_EQ(t.total_time(), 3.5);
}

TEST(Tracker, PercentagesSumToHundred) {
  CostTracker t;
  t.add_time(Category::kGemm, 3.0);
  t.add_time(Category::kSvd, 1.0);
  t.add_time(Category::kImbalance, 1.0);
  auto p = t.percentages();
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_NEAR(p[static_cast<int>(Category::kGemm)], 60.0, 1e-9);
}

TEST(Tracker, PercentagesOfEmptyTrackerAreZero) {
  CostTracker t;
  for (double v : t.percentages()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Tracker, RawBspQuantities) {
  CostTracker t;
  t.add_flops(100.0);
  t.add_words(7.0);
  t.add_supersteps(3.0);
  EXPECT_DOUBLE_EQ(t.flops(), 100.0);
  EXPECT_DOUBLE_EQ(t.words(), 7.0);
  EXPECT_DOUBLE_EQ(t.supersteps(), 3.0);
}

TEST(Tracker, DiffMeasuresSubRegion) {
  CostTracker t;
  t.add_time(Category::kGemm, 1.0);
  t.add_flops(10.0);
  CostTracker start = t;
  t.add_time(Category::kGemm, 2.0);
  t.add_flops(30.0);
  CostTracker d = t.diff(start);
  EXPECT_DOUBLE_EQ(d.time(Category::kGemm), 2.0);
  EXPECT_DOUBLE_EQ(d.flops(), 30.0);
}

TEST(Tracker, NegativeTimeRejected) {
  CostTracker t;
  EXPECT_THROW(t.add_time(Category::kGemm, -1.0), tt::Error);
}

TEST(Tracker, ResetClearsEverything) {
  CostTracker t;
  t.add_time(Category::kOther, 5.0);
  t.add_flops(1.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.total_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.flops(), 0.0);
}

TEST(Tracker, CategoryNames) {
  EXPECT_STREQ(tt::rt::category_name(Category::kGemm), "GEMM");
  EXPECT_STREQ(tt::rt::category_name(Category::kSvd), "SVD");
  EXPECT_STREQ(tt::rt::category_name(Category::kTranspose), "CTF transposition");
}

}  // namespace

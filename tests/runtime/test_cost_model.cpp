#include <gtest/gtest.h>

#include <cmath>

#include "runtime/cost_model.hpp"
#include "support/error.hpp"

namespace {

using tt::rt::Category;
using tt::rt::Cluster;
using tt::rt::ContractionCost;
using tt::rt::CostTracker;
using tt::rt::Layout;

Cluster cluster(int nodes, int ppn = 16) {
  return Cluster{tt::rt::blue_waters(), nodes, ppn};
}

ContractionCost big_cost() {
  ContractionCost c;
  c.flops = 1e12;
  c.words_a = 1e8;
  c.words_b = 1e8;
  c.words_c = 1e8;
  return c;
}

TEST(CostModel, GemmTimeInverselyProportionalToNodes) {
  CostTracker t1, t4;
  charge_contraction(cluster(1), t1, big_cost(), Layout::kBlockDense3D);
  charge_contraction(cluster(4), t4, big_cost(), Layout::kBlockDense3D);
  EXPECT_NEAR(t1.time(Category::kGemm) / t4.time(Category::kGemm), 4.0, 1e-6);
}

TEST(CostModel, CommScalingExponents) {
  // Table II: 3D block-wise -> words ~ p^(-2/3); fused 2D -> words ~ p^(-1/2).
  auto words_for = [&](Layout layout, int procs_nodes) {
    CostTracker t;
    charge_contraction(cluster(procs_nodes), t, big_cost(), layout);
    return t.words();
  };
  const double r3d = words_for(Layout::kBlockDense3D, 1) /
                     words_for(Layout::kBlockDense3D, 64);
  const double r2d = words_for(Layout::kFusedDense2D, 1) /
                     words_for(Layout::kFusedDense2D, 64);
  // p grows by 64x: 3D gives 64^(2/3)=16, 2D gives 64^(1/2)=8.
  EXPECT_NEAR(r3d, std::pow(64.0, 2.0 / 3.0), 1e-6);
  EXPECT_NEAR(r2d, std::pow(64.0, 0.5), 1e-6);
}

TEST(CostModel, SparseLayoutSlowerGemmThanDense) {
  CostTracker td, ts;
  charge_contraction(cluster(4), td, big_cost(), Layout::kFusedDense2D);
  charge_contraction(cluster(4), ts, big_cost(), Layout::kFusedSparse2D);
  EXPECT_GT(ts.time(Category::kGemm), td.time(Category::kGemm));
}

TEST(CostModel, SmallBlocksProduceImbalance) {
  ContractionCost small;
  small.flops = 1e5;  // below min_flops_per_proc — cannot fill 256 procs
  small.words_a = small.words_b = small.words_c = 1e3;
  CostTracker t;
  charge_contraction(cluster(16), t, small, Layout::kBlockDense3D);
  EXPECT_GT(t.time(Category::kImbalance), 0.0);
  // A huge contraction on the same cluster shows no imbalance.
  CostTracker t2;
  charge_contraction(cluster(16), t2, big_cost(), Layout::kBlockDense3D);
  EXPECT_DOUBLE_EQ(t2.time(Category::kImbalance), 0.0);
}

TEST(CostModel, LocalLayoutHasNoNetworkCost) {
  CostTracker t;
  charge_contraction(cluster(4), t, big_cost(), Layout::kLocal);
  EXPECT_DOUBLE_EQ(t.time(Category::kComm), 0.0);
  EXPECT_DOUBLE_EQ(t.words(), 0.0);
  EXPECT_GT(t.time(Category::kGemm), 0.0);
}

TEST(CostModel, SuperstepAccounting) {
  CostTracker t;
  for (int b = 0; b < 10; ++b)
    charge_contraction(cluster(4), t, big_cost(), Layout::kBlockDense3D);
  EXPECT_DOUBLE_EQ(t.supersteps(), 10.0);  // one per block contraction (list)
  CostTracker tf;
  charge_contraction(cluster(4), tf, big_cost(), Layout::kFusedSparse2D);
  EXPECT_DOUBLE_EQ(tf.supersteps(), 1.0);  // O(1) for fused formats
}

TEST(CostModel, FlopsRecordedVerbatim) {
  CostTracker t;
  charge_contraction(cluster(2), t, big_cost(), Layout::kFusedDense2D);
  EXPECT_DOUBLE_EQ(t.flops(), 1e12);
}

TEST(CostModel, SvdChargesSvdCategoryOnly) {
  CostTracker t;
  charge_svd(cluster(4), t, 512, 512);
  EXPECT_GT(t.time(Category::kSvd), 0.0);
  EXPECT_DOUBLE_EQ(t.time(Category::kGemm), 0.0);
  EXPECT_DOUBLE_EQ(t.time(Category::kComm), 0.0);  // pdgesvd MPI booked to SVD
}

TEST(CostModel, SvdScalesPoorlyBeyondPanelLimit) {
  // A tiny SVD cannot use many processes: time should saturate, not shrink.
  CostTracker t1, t256;
  charge_svd(cluster(1), t1, 64, 64);
  charge_svd(cluster(256), t256, 64, 64);
  EXPECT_GE(t256.time(Category::kSvd), 0.9 * t1.time(Category::kSvd) / 256.0);
  // And in fact the small problem gains almost nothing from 256 nodes.
  EXPECT_GT(t256.time(Category::kSvd), 0.1 * t1.time(Category::kSvd));
}

TEST(CostModel, TransposeChargesMemoryBandwidth) {
  CostTracker t;
  charge_transpose(cluster(2), t, 1e9);
  EXPECT_GT(t.time(Category::kTranspose), 0.0);
}

TEST(CostModel, RedistributionFreeOnSingleProc) {
  CostTracker t;
  charge_redistribution(Cluster{tt::rt::blue_waters(), 1, 1}, t, 1e9);
  EXPECT_DOUBLE_EQ(t.total_time(), 0.0);
}

TEST(CostModel, RedistributionCostsOnCluster) {
  CostTracker t;
  charge_redistribution(cluster(8), t, 1e9);
  EXPECT_GT(t.time(Category::kComm), 0.0);
  EXPECT_DOUBLE_EQ(t.supersteps(), 1.0);
}

TEST(CostModel, NegativeFlopsRejected) {
  ContractionCost c;
  c.flops = -1.0;
  CostTracker t;
  EXPECT_THROW(charge_contraction(cluster(1), t, c, Layout::kLocal), tt::Error);
}

}  // namespace

// rt::Trace contract tests: the disabled path costs nothing observable, the
// ring buffer drops newest-first and counts, Chrome JSON export is
// well-formed, worker events round-trip through serialize/absorb, spans
// arrive from every scheduler rank in both spawn modes, tracing does not
// perturb bitwise determinism, and the sweep-turn prefetch span overlaps the
// Davidson span it hides behind (the timeline fact the tracer exists to
// show).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "dmrg/dmrg.hpp"
#include "dmrg/engines.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "runtime/machine.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "runtime/wire.hpp"
#include "spawn_modes.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "symm/block_ops.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::rt::Scheduler;
using tt::rt::SchedulerOptions;
using tt::rt::SpawnMode;
using tt::rt::Trace;
using tt::rt::TraceCat;
using tt::rt::TraceOptions;
using tt::symm::BlockTensor;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;

// Every test leaves the process-wide tracer disabled and empty.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::instance().stop();
    Trace::instance().clear();
  }
  void TearDown() override {
    Trace::instance().stop();
    Trace::instance().clear();
  }
};

class TraceModes : public TraceTest,
                   public ::testing::WithParamInterface<SpawnMode> {};

std::string exported_json() {
  std::ostringstream os;
  Trace::instance().write_chrome_json(os);
  return os.str();
}

struct SpanIv {
  double ts = 0.0;   // µs
  double dur = 0.0;  // µs
  int pid = -1;
};

// Scan the line-per-event export for complete ("X") spans named `name`.
std::vector<SpanIv> spans(const std::string& json, const std::string& name) {
  std::vector<SpanIv> out;
  std::istringstream in(json);
  std::string line;
  const std::string needle = "\"name\":\"" + name + "\"";
  while (std::getline(in, line)) {
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    if (line.find(needle) == std::string::npos) continue;
    const auto tp = line.find("\"ts\":");
    const auto dp = line.find("\"dur\":");
    const auto pp = line.find("\"pid\":");
    EXPECT_NE(tp, std::string::npos) << line;
    EXPECT_NE(dp, std::string::npos) << line;
    EXPECT_NE(pp, std::string::npos) << line;
    if (tp == std::string::npos || dp == std::string::npos ||
        pp == std::string::npos)
      continue;
    SpanIv iv;
    iv.ts = std::atof(line.c_str() + tp + 5);
    iv.dur = std::atof(line.c_str() + dp + 6);
    iv.pid = std::atoi(line.c_str() + pp + 6);
    out.push_back(iv);
  }
  return out;
}

std::pair<BlockTensor, BlockTensor> block_pair(unsigned seed) {
  Rng rng(seed);
  std::vector<tt::symm::Sector> secs;
  for (int q = 0; q < 7; ++q)
    secs.push_back({QN(q - 3), static_cast<index_t>(2 + q % 3)});
  const Index mid(secs, Dir::Out);
  const Index phys({{QN(-1), 2}, {QN(1), 2}}, Dir::In);
  BlockTensor a = BlockTensor::random(
      {Index(secs, Dir::In), phys, mid}, QN::zero(1), rng);
  BlockTensor b = BlockTensor::random(
      {mid.reversed(), phys, Index(secs, Dir::Out)}, QN::zero(1), rng);
  return {std::move(a), std::move(b)};
}

void expect_bitwise_equal(const BlockTensor& x, const BlockTensor& y) {
  ASSERT_TRUE(x.same_structure(y));
  for (const auto& [key, blk] : x.blocks()) {
    const tt::tensor::DenseTensor* other = y.find_block(key);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(std::memcmp(blk.data(), other->data(),
                          static_cast<std::size_t>(blk.size()) * sizeof(double)),
              0);
  }
}

TEST_F(TraceTest, DisabledSpansRecordNothingAndCostNothingMeasurable) {
  ASSERT_FALSE(tt::rt::trace_enabled());
  const std::size_t before = Trace::instance().events_recorded();
  constexpr int kIters = 10'000'000;
  tt::Timer timer;
  for (int i = 0; i < kIters; ++i) {
    TT_TRACE_SPAN("overhead.probe", TraceCat::kOther);
    TT_TRACE_COUNTER("overhead.counter", 1.0);
  }
  const double secs = timer.seconds();
  EXPECT_EQ(Trace::instance().events_recorded(), before);
  // One relaxed load per macro. Even a sanitizer build clears 10M disabled
  // span+counter pairs in well under this; a clock read or allocation on the
  // disabled path would blow it.
  EXPECT_LT(secs, 5.0);
}

TEST_F(TraceTest, SpansCountersAndMetadataExportAsChromeJson) {
  Trace::instance().start();
  {
    TT_TRACE_SPAN("test.outer", TraceCat::kSweep);
    TT_TRACE_SPAN("test.inner", TraceCat::kDavidson);
    TT_TRACE_COUNTER("test.gauge", 42.0);
  }
  EXPECT_EQ(Trace::instance().events_recorded(), 3u);
  Trace::instance().stop();

  const std::string json = exported_json();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\",\"cat\":\"davidson\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"value\":42"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\":0"), std::string::npos);
  // Inner closes before outer and starts at-or-after it.
  const auto outer = spans(json, "test.outer");
  const auto inner = spans(json, "test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_GE(inner[0].ts, outer[0].ts);
  EXPECT_LE(inner[0].ts + inner[0].dur, outer[0].ts + outer[0].dur + 1e-3);
}

TEST_F(TraceTest, BufferDropsNewestEventsAndCountsThem) {
  TraceOptions opts;
  opts.buffer_capacity = 8;
  Trace::instance().start(opts);
  for (int i = 0; i < 20; ++i) {
    TT_TRACE_SPAN("drop.probe", TraceCat::kOther);
  }
  Trace::instance().stop();
  EXPECT_EQ(Trace::instance().events_recorded(), 8u);
  EXPECT_EQ(Trace::instance().events_dropped(), 12u);
  EXPECT_NE(exported_json().find("\"dropped_events\":12"), std::string::npos);
}

TEST_F(TraceTest, SerializeAbsorbRoundTripRetagsRank) {
  Trace::instance().start();
  {
    TT_TRACE_SPAN("ship.a", TraceCat::kComm);
    TT_TRACE_SPAN("ship.b", TraceCat::kRecovery);
  }
  const std::vector<std::byte> payload = Trace::instance().serialize_and_clear();
  EXPECT_EQ(Trace::instance().events_recorded(), 0u);
  ASSERT_FALSE(payload.empty());

  Trace::instance().absorb(payload, /*rank=*/7);
  Trace::instance().stop();
  EXPECT_EQ(Trace::instance().events_recorded(), 2u);
  const std::string json = exported_json();
  const auto a = spans(json, "ship.a");
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].pid, 7);
  EXPECT_NE(json.find("\"cat\":\"recovery\""), std::string::npos);
}

TEST_F(TraceTest, AbsorbRejectsMalformedPayloads) {
  std::vector<std::byte> junk(11, std::byte{0xfe});
  EXPECT_THROW(Trace::instance().absorb(junk, 1), tt::Error);
  // Truncated genuine payload.
  Trace::instance().start();
  { TT_TRACE_SPAN("trunc.probe", TraceCat::kOther); }
  std::vector<std::byte> payload = Trace::instance().serialize_and_clear();
  Trace::instance().stop();
  payload.resize(payload.size() / 2);
  EXPECT_THROW(Trace::instance().absorb(payload, 1), tt::Error);
}

TEST_F(TraceTest, AbsorbBoundsNameCountBeforeReserving) {
  // A torn trace frame can claim an absurd name-table size; absorb must
  // raise a clean Error from the TT_CHECK bound, not reserve gigabytes.
  tt::rt::WireWriter w;
  w.u32(1);                      // format version
  w.u32(3);                      // worker rank claim
  w.u64(0);                      // dropped
  w.u64(std::uint64_t{1} << 61); // names "table"
  EXPECT_THROW(Trace::instance().absorb(w.take(), 1), tt::Error);
}

TEST_P(TraceModes, SchedulerContractionYieldsSpansFromEveryRank) {
  auto [a, b] = block_pair(17);
  Trace::instance().start();
  {
    SchedulerOptions opts;
    opts.num_ranks = 2;
    opts.mode = GetParam();
    Scheduler sched(opts);
    (void)sched.contract(a, b, {{2, 0}});
  }  // process-mode workers ship their buffers at shutdown
  Trace::instance().stop();

  const std::string json = exported_json();
  // Rank 0 is the root: it runs its own bin share inline (sched.root_bins);
  // remote shares execute as sched.worker_task on rank >= 1.
  bool rank0 = false, rank1 = false;
  for (const SpanIv& s : spans(json, "sched.root_bins"))
    rank0 = rank0 || s.pid == 0;
  for (const SpanIv& s : spans(json, "sched.worker_task"))
    rank1 = rank1 || s.pid == 1;
  EXPECT_TRUE(rank0) << "no root-share spans from rank 0";
  EXPECT_TRUE(rank1) << "no worker spans from rank 1";
  EXPECT_FALSE(spans(json, "sched.contract").empty());
}

TEST_P(TraceModes, TracingDoesNotPerturbSchedulerResults) {
  auto [a, b] = block_pair(23);
  const std::vector<std::pair<int, int>> pairs = {{2, 0}};

  auto run = [&] {
    SchedulerOptions opts;
    opts.num_ranks = 2;
    opts.mode = GetParam();
    Scheduler sched(opts);
    return sched.contract(a, b, pairs);
  };
  const BlockTensor untraced = run();
  Trace::instance().start();
  const BlockTensor traced = run();
  Trace::instance().stop();
  EXPECT_GT(Trace::instance().events_recorded(), 0u);
  expect_bitwise_equal(untraced, traced);
}

INSTANTIATE_TEST_SUITE_P(Modes, TraceModes,
                         ::testing::ValuesIn(tt::rt::testing::tested_spawn_modes()),
                         [](const auto& info) {
                           return std::string(tt::rt::spawn_mode_name(info.param));
                         });

TEST_F(TraceTest, SweepTurnPrefetchSpanOverlapsDavidson) {
  const int n = 8;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  tt::dmrg::Dmrg solver(tt::mps::Mps::product_state(sites, neel), h,
                        tt::dmrg::make_engine(tt::dmrg::EngineKind::kReference,
                                              {tt::rt::localhost(), 1, 1}));
  // At this scale the extension outpaces theta; the stall holds the turn
  // future in flight into the Davidson window (same seam the TSan turn-race
  // test uses), making the overlap deterministic instead of a scheduling
  // coin flip.
  solver.environments().set_prefetch_delay_for_testing(
      std::chrono::milliseconds(50));

  Trace::instance().start();
  tt::dmrg::SweepParams params;
  params.max_m = 16;
  params.davidson_iter = 2;
  params.prefetch = true;
  const tt::dmrg::SweepRecord rec = solver.sweep(params);
  Trace::instance().stop();
  ASSERT_GT(rec.prefetch_launched, 0);

  const std::string json = exported_json();
  const auto prefetch = spans(json, "env.prefetch");
  const auto davidson = spans(json, "dmrg.davidson");
  ASSERT_FALSE(prefetch.empty());
  ASSERT_FALSE(davidson.empty());
  bool overlap = false;
  for (const SpanIv& p : prefetch)
    for (const SpanIv& d : davidson)
      overlap = overlap ||
                (p.ts < d.ts + d.dur && d.ts < p.ts + p.dur);
  EXPECT_TRUE(overlap)
      << "no env.prefetch span overlapped a dmrg.davidson span";
}

}  // namespace

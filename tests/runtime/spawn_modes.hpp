// Spawn modes exercised by the parameterized transport/scheduler suites.
//
// ThreadSanitizer cannot follow fork()ed children (the child inherits the
// parent's shadow state and TSan's runtime is not fork-safe once threads
// exist), so sanitizer builds pin the suites to the shared-memory thread
// transport — which is exactly the leg TSan can meaningfully race-check.
// Regular builds run both modes.
#pragma once

#include <vector>

#include "runtime/transport.hpp"

#if defined(__SANITIZE_THREAD__)
#define TT_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TT_TEST_UNDER_TSAN 1
#endif
#endif

namespace tt::rt::testing {

inline std::vector<SpawnMode> tested_spawn_modes() {
#ifdef TT_TEST_UNDER_TSAN
  return {SpawnMode::kThread};
#else
  return {SpawnMode::kProcess, SpawnMode::kThread};
#endif
}

}  // namespace tt::rt::testing

#include <gtest/gtest.h>

#include "runtime/machine.hpp"

namespace {

using tt::rt::Cluster;

TEST(Machine, PresetsHaveDistinctCharacters) {
  auto bw = tt::rt::blue_waters();
  auto s2 = tt::rt::stampede2();
  // KNL: higher node throughput, weaker serial cores (paper Fig 7b contrast).
  EXPECT_GT(s2.node_gflops, bw.node_gflops);
  EXPECT_LT(s2.core_gflops, bw.core_gflops);
  EXPECT_GT(s2.net_bandwidth_gbs, bw.net_bandwidth_gbs);
}

TEST(Machine, PresetsArePhysical) {
  for (const auto& m : {tt::rt::blue_waters(), tt::rt::stampede2(), tt::rt::localhost()}) {
    EXPECT_GT(m.node_gflops, 0.0) << m.name;
    EXPECT_GT(m.core_gflops, 0.0) << m.name;
    EXPECT_GT(m.mem_bandwidth_gbs, 0.0) << m.name;
    EXPECT_GT(m.net_bandwidth_gbs, 0.0) << m.name;
    EXPECT_GE(m.net_latency_us, 0.0) << m.name;
    EXPECT_GT(m.cores_per_node, 0) << m.name;
    EXPECT_GT(m.sparse_efficiency, 0.0) << m.name;
    EXPECT_LE(m.sparse_efficiency, 1.0) << m.name;
  }
}

TEST(Cluster, TotalProcs) {
  Cluster c{tt::rt::blue_waters(), 16, 32};
  EXPECT_EQ(c.total_procs(), 512);
}

TEST(Cluster, ThroughputScalesWithNodes) {
  Cluster c1{tt::rt::blue_waters(), 1, 16};
  Cluster c4{tt::rt::blue_waters(), 4, 16};
  EXPECT_NEAR(c4.cluster_gflops(), 4.0 * c1.cluster_gflops(), 1e-9);
}

TEST(Cluster, OversubscriptionPenalized) {
  // 32 procs on a 16-core XE6 node must not increase total throughput.
  Cluster c16{tt::rt::blue_waters(), 1, 16};
  Cluster c32{tt::rt::blue_waters(), 1, 32};
  EXPECT_LE(c32.cluster_gflops(), c16.cluster_gflops());
  EXPECT_GE(c32.cluster_gflops(), 0.5 * c16.cluster_gflops());
}

TEST(Cluster, PerProcessRate) {
  Cluster c{tt::rt::stampede2(), 2, 64};
  EXPECT_NEAR(c.proc_gflops() * c.total_procs(), c.cluster_gflops(), 1e-9);
}

}  // namespace

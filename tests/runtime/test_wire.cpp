// Wire encoding round trips: every field type survives write/read bitwise,
// and torn or oversized messages fail loudly instead of yielding garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "runtime/wire.hpp"
#include "support/rng.hpp"

namespace {

using tt::Error;
using tt::Rng;
using tt::rt::WireReader;
using tt::rt::WireWriter;
using tt::tensor::DenseTensor;

TEST(Wire, ScalarFieldsRoundTripInCallOrder) {
  WireWriter w;
  w.u32(0xdeadbeefu);
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.i64(-1234567890123456789LL);
  w.f64(3.141592653589793);
  w.str("block scheduler");
  w.i32_list({-3, 0, 7});

  WireReader r(w.bytes());
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.i64(), -1234567890123456789LL);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "block scheduler");
  EXPECT_EQ(r.i32_list(), (std::vector<int>{-3, 0, 7}));
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, DoublesTravelBitwiseIncludingSpecialValues) {
  // The scheduler's rank-parity invariant needs bit patterns, not values:
  // -0.0, denormals, and NaN payload bits must survive unchanged.
  const double values[] = {-0.0, std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity(),
                           std::nan("0x5bad"), 1.0 + 1e-16};
  WireWriter w;
  for (double v : values) w.f64(v);
  WireReader r(w.bytes());
  for (double v : values) {
    const double got = r.f64();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof v), 0);
  }
}

TEST(Wire, TensorRoundTripsBitwise) {
  Rng rng(7);
  for (const auto& shape :
       {std::vector<tt::index_t>{3, 4, 2}, {1}, {5, 1, 1, 2}}) {
    const DenseTensor t = DenseTensor::random(shape, rng);
    WireWriter w;
    w.tensor(t);
    WireReader r(w.bytes());
    const DenseTensor back = r.tensor();
    ASSERT_EQ(back.shape(), t.shape());
    EXPECT_EQ(std::memcmp(back.data(), t.data(),
                          static_cast<std::size_t>(t.size()) * sizeof(double)),
              0);
    EXPECT_TRUE(r.done());
  }
}

TEST(Wire, ScalarTensorRoundTrips) {
  WireWriter w;
  w.tensor(DenseTensor::scalar(-2.5));
  WireReader r(w.bytes());
  const DenseTensor back = r.tensor();
  EXPECT_EQ(back.order(), 0);
  EXPECT_EQ(back[0], -2.5);
}

TEST(Wire, ChecksumIsBytewiseFnv1aAtAnyAlignment) {
  // The frame checksum must be a pure function of the byte sequence — never
  // of the buffer's alignment or a word-at-a-time read width. Pin FNV-1a
  // against an independent byte-wise reference, including a deliberately
  // misaligned view one byte into the buffer (the ubsan leg would flag a
  // future vectorized rewrite that loads words through the unaligned
  // pointer).
  Rng rng(41);
  std::vector<std::byte> buf(129);
  for (auto& b : buf)
    b = static_cast<std::byte>(static_cast<unsigned char>(rng.integer(0, 255)));

  auto reference = [](const std::byte* p, std::size_t n) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint64_t>(std::to_integer<unsigned char>(p[i]));
      h *= 0x100000001b3ull;
    }
    return h;
  };

  EXPECT_EQ(tt::rt::wire_checksum(buf.data(), buf.size()),
            reference(buf.data(), buf.size()));
  EXPECT_EQ(tt::rt::wire_checksum(buf.data() + 1, buf.size() - 1),
            reference(buf.data() + 1, buf.size() - 1));
  EXPECT_EQ(tt::rt::wire_checksum(buf.data() + 7, 64),
            reference(buf.data() + 7, 64));
  // Golden value: the empty checksum is the FNV offset basis.
  EXPECT_EQ(tt::rt::wire_checksum(buf.data(), 0), 0xcbf29ce484222325ull);
}

TEST(Wire, TruncatedMessageThrowsOnEveryFieldType) {
  WireWriter w;
  w.u64(42);
  std::vector<std::byte> torn(w.bytes().begin(), w.bytes().end() - 3);
  WireReader r(torn);
  EXPECT_THROW(r.u64(), Error);

  // A string whose length prefix promises more bytes than the buffer holds.
  WireWriter ws;
  ws.str("abcdefgh");
  std::vector<std::byte> torn_str(ws.bytes().begin(), ws.bytes().end() - 4);
  WireReader rs(torn_str);
  EXPECT_THROW(rs.str(), Error);

  // A tensor whose payload was cut mid-block.
  Rng rng(8);
  WireWriter wt;
  wt.tensor(DenseTensor::random({4, 4}, rng));
  std::vector<std::byte> torn_t(wt.bytes().begin(), wt.bytes().end() - 8);
  WireReader rt(torn_t);
  EXPECT_THROW(rt.tensor(), Error);
}

TEST(Wire, OversizedLengthPrefixIsRejectedNotAllocated) {
  // A corrupted length prefix must throw, not attempt a huge allocation.
  WireWriter w;
  w.u64(std::numeric_limits<std::uint64_t>::max());  // bogus string length
  WireReader r(w.bytes());
  EXPECT_THROW(r.str(), Error);
}

TEST(Wire, TensorWithOverflowingDimProductIsRejected) {
  // A corrupt shape whose element count overflows 64 bits (64 dims of 2^40)
  // must throw cleanly before DenseTensor multiplies the dims or allocates.
  WireWriter w;
  w.u64(64);
  for (int i = 0; i < 64; ++i) w.i64(std::int64_t{1} << 40);
  WireReader r(w.bytes());
  EXPECT_THROW(r.tensor(), Error);

  // Non-overflowing product just past the payload cap (2^27 + 2^15 doubles
  // against the 2^27-element = 1 GiB limit): same clean rejection.
  WireWriter w2;
  w2.u64(2);
  w2.i64(std::int64_t{1} << 15);
  w2.i64((std::int64_t{1} << 12) + 1);
  WireReader r2(w2.bytes());
  EXPECT_THROW(r2.tensor(), Error);
}

TEST(Wire, ListLengthOverflowIsRejected) {
  // n * sizeof(uint32) wraps to a small value for n >= 2^62; the guard must
  // reject the length itself, not the wrapped product.
  WireWriter w;
  w.u64(std::uint64_t{1} << 62);
  WireReader r(w.bytes());
  EXPECT_THROW(r.i32_list(), Error);
}

TEST(Wire, TensorWithNegativeDimIsRejected) {
  WireWriter w;
  w.i64(2);   // order
  w.i64(-3);  // dims
  w.i64(4);
  WireReader r(w.bytes());
  EXPECT_THROW(r.tensor(), Error);
}

TEST(Wire, EmptyMessageIsDoneImmediately) {
  const std::vector<std::byte> empty;
  WireReader r(empty);
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u32(), Error);
}

}  // namespace

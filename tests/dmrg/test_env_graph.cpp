// EnvGraph invalidation/property tests: the incremental environments must be
// bitwise identical to a from-scratch rebuild after arbitrary site mutations
// and mixed-direction demands — the regression test the old EnvironmentStack
// never had.
#include <gtest/gtest.h>

#include "dmrg/env_graph.hpp"
#include "dmrg/environment.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/mps.hpp"
#include "support/rng.hpp"

namespace {

using tt::Rng;
using tt::dmrg::EnvGraph;
using tt::symm::BlockTensor;
using tt::symm::QN;

constexpr int kN = 8;

struct Fixture {
  tt::mps::SiteSetPtr sites = tt::models::spin_half_sites(kN);
  tt::models::Lattice lat = tt::models::chain(kN);
  tt::mps::Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  tt::mps::Mps psi;
  std::unique_ptr<tt::dmrg::ContractionEngine> eng = tt::dmrg::make_engine(
      tt::dmrg::EngineKind::kReference, {tt::rt::localhost(), 1, 1});

  explicit Fixture(unsigned seed = 7) {
    Rng rng(seed);
    psi = tt::mps::Mps::random(sites, QN(0), 8, rng);
    psi.canonicalize(0);
  }

  BlockTensor rebuild_left(int k) {
    BlockTensor e = tt::dmrg::left_boundary(1);
    for (int i = 0; i < k; ++i)
      e = tt::dmrg::extend_left(*eng, e, psi.site(i), h.site(i));
    return e;
  }
  BlockTensor rebuild_right(int k) {
    BlockTensor e = tt::dmrg::right_boundary(psi.total_qn());
    for (int i = kN - 1; i >= k; --i)
      e = tt::dmrg::extend_right(*eng, e, psi.site(i), h.site(i));
    return e;
  }
};

TEST(EnvGraph, InvalidationConesTrackSiteChanges) {
  Fixture f;
  EnvGraph g(*f.eng, f.psi, f.h);
  // Fresh graph: everything the eager construction builds is valid.
  for (int k = 0; k < kN; ++k)
    EXPECT_EQ(g.left_state(k), EnvGraph::NodeState::kValid) << k;
  for (int k = 1; k <= kN; ++k)
    EXPECT_EQ(g.right_state(k), EnvGraph::NodeState::kValid) << k;

  g.site_changed(3);
  for (int k = 0; k <= 3; ++k)
    EXPECT_EQ(g.left_state(k), EnvGraph::NodeState::kValid) << k;
  for (int k = 4; k <= kN; ++k)
    EXPECT_EQ(g.left_state(k), EnvGraph::NodeState::kInvalid) << k;
  for (int k = 0; k <= 3; ++k)
    EXPECT_EQ(g.right_state(k), EnvGraph::NodeState::kInvalid) << k;
  for (int k = 4; k <= kN; ++k)
    EXPECT_EQ(g.right_state(k), EnvGraph::NodeState::kValid) << k;

  // Demanding re-validates the chain it rebuilt.
  (void)g.left(6);
  for (int k = 0; k <= 6; ++k)
    EXPECT_EQ(g.left_state(k), EnvGraph::NodeState::kValid) << k;
}

TEST(EnvGraph, IncrementalMatchesRebuildUnderRandomPerturbations) {
  Fixture f;
  EnvGraph g(*f.eng, f.psi, f.h);
  Rng rng(21);
  for (int iter = 0; iter < 40; ++iter) {
    // Random single-site perturbation, structure-preserving.
    const int j = static_cast<int>(rng.integer(0, kN - 1));
    BlockTensor& site = f.psi.site(j);
    BlockTensor noise = BlockTensor::random(site.indices(), site.flux(), rng);
    site.axpy(0.25, noise);
    g.site_changed(j);

    // Occasionally wipe everything, as the drivers do after re-gauging.
    if (iter % 11 == 10) g.invalidate_all();

    // Mixed-direction demands at random cuts: bitwise vs from-scratch.
    const int kl = static_cast<int>(rng.integer(0, kN));
    const int kr = static_cast<int>(rng.integer(0, kN));
    if (rng.uniform() < 0.5) {
      EXPECT_EQ(tt::symm::max_abs_diff(g.left(kl), f.rebuild_left(kl)), 0.0)
          << "iter " << iter << " left " << kl;
      EXPECT_EQ(tt::symm::max_abs_diff(g.right(kr), f.rebuild_right(kr)), 0.0)
          << "iter " << iter << " right " << kr;
    } else {
      EXPECT_EQ(tt::symm::max_abs_diff(g.right(kr), f.rebuild_right(kr)), 0.0)
          << "iter " << iter << " right " << kr;
      EXPECT_EQ(tt::symm::max_abs_diff(g.left(kl), f.rebuild_left(kl)), 0.0)
          << "iter " << iter << " left " << kl;
    }
  }
}

TEST(EnvGraph, PrefetchMatchesDemandBitwise) {
  Fixture f;
  EnvGraph eager(*f.eng, f.psi, f.h);
  auto eng2 = tt::dmrg::make_engine(tt::dmrg::EngineKind::kReference,
                                    {tt::rt::localhost(), 1, 1});
  EnvGraph pre(*eng2, f.psi, f.h);

  // Same invalidation on both; one demands, one prefetches then joins.
  eager.site_changed(3);
  pre.site_changed(3);
  const tt::rt::CostTracker t0 = f.eng->tracker();
  const BlockTensor& want = eager.left(4);

  pre.prefetch_left(4);
  EXPECT_EQ(pre.left_state(4), EnvGraph::NodeState::kPending);
  const BlockTensor& got = pre.left(4);  // joins the future
  EXPECT_EQ(tt::symm::max_abs_diff(got, want), 0.0);
  EXPECT_EQ(pre.left_state(4), EnvGraph::NodeState::kValid);

  // Effectiveness counters and cost accounting: the charged flops match the
  // eager demand exactly; the simulated time lands in the prefetch slot.
  const EnvGraph::PrefetchStats& st = pre.prefetch_stats();
  EXPECT_EQ(st.launched, 1);
  EXPECT_EQ(st.hits + st.misses, 1);
  const tt::rt::CostTracker eager_cost = f.eng->tracker().diff(t0);
  EXPECT_EQ(eng2->tracker().flops(), f.eng->tracker().flops());
  // diff() re-sums per-category times, so allow last-bit rounding slack.
  EXPECT_NEAR(eng2->tracker().time(tt::rt::Category::kPrefetch),
              eager_cost.total_time(), 1e-12);
  EXPECT_GT(eng2->tracker().time(tt::rt::Category::kPrefetch), 0.0);
}

TEST(EnvGraph, PrefetchSurvivesInvalidationRaces) {
  // A prefetch whose target is invalidated before the join must neither leak
  // nor poison later demands.
  Fixture f;
  EnvGraph g(*f.eng, f.psi, f.h);
  Rng rng(5);
  g.site_changed(2);
  g.prefetch_left(3);
  // Invalidate the pending node: site_changed joins the future before the
  // state flip, so no stale write can land afterwards. Only then is the site
  // safe to mutate (the worker reads it while the future is in flight).
  g.site_changed(2);
  BlockTensor& site = f.psi.site(2);
  BlockTensor noise = BlockTensor::random(site.indices(), site.flux(), rng);
  site.axpy(0.25, noise);
  g.site_changed(2);
  EXPECT_EQ(tt::symm::max_abs_diff(g.left(3), f.rebuild_left(3)), 0.0);
  // And an abandoned in-flight prefetch is settled by sync(). Prefetch only
  // computes one edge off a valid parent, so validate left(4) first.
  g.site_changed(4);
  (void)g.left(4);
  g.prefetch_left(5);
  g.sync();
  EXPECT_EQ(g.left_state(5), EnvGraph::NodeState::kValid);
  EXPECT_EQ(tt::symm::max_abs_diff(g.left(5), f.rebuild_left(5)), 0.0);
}

}  // namespace

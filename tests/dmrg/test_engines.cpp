#include <gtest/gtest.h>

#include "dmrg/dmrg.hpp"
#include "dmrg/engine.hpp"
#include "models/heisenberg.hpp"
#include "models/hubbard.hpp"
#include "models/electron.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/mps.hpp"

namespace {

using tt::Rng;
using tt::dmrg::EngineKind;
using tt::dmrg::Role;
using tt::rt::Category;
using tt::symm::BlockTensor;
using tt::symm::QN;

const EngineKind kAllEngines[] = {EngineKind::kReference, EngineKind::kList,
                                  EngineKind::kSparseDense, EngineKind::kSparseSparse};

tt::rt::Cluster test_cluster() { return {tt::rt::blue_waters(), 4, 16}; }

// Random MPS-shaped operands for engine contraction equivalence.
struct Operands {
  BlockTensor a, b;
  Operands() {
    Rng rng(11);
    auto sites = tt::models::spin_half_sites(8);
    auto psi = tt::mps::Mps::random(sites, QN(0), 12, rng);
    a = psi.site(3);
    b = psi.site(4);
  }
};

class EngineParam : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineParam, ContractionMatchesReference) {
  Operands ops;
  auto ref = tt::dmrg::make_engine(EngineKind::kReference, test_cluster());
  auto eng = tt::dmrg::make_engine(GetParam(), test_cluster());
  BlockTensor want = ref->contract(ops.a, Role::kOperator, ops.b, Role::kOperator,
                                   {{2, 0}});
  for (auto ra : {Role::kOperator, Role::kIntermediate})
    for (auto rb : {Role::kOperator, Role::kIntermediate}) {
      BlockTensor got = eng->contract(ops.a, ra, ops.b, rb, {{2, 0}});
      EXPECT_LT(tt::symm::max_abs_diff(got, want), 1e-10 * (1.0 + want.norm2()))
          << tt::dmrg::engine_name(GetParam());
    }
}

TEST_P(EngineParam, SvdMatchesReferenceSingularValues) {
  Operands ops;
  BlockTensor theta = tt::symm::contract(ops.a, ops.b, {{2, 0}});
  auto ref = tt::dmrg::make_engine(EngineKind::kReference, test_cluster());
  auto eng = tt::dmrg::make_engine(GetParam(), test_cluster());
  tt::symm::TruncParams trunc;
  trunc.max_dim = 8;
  auto f1 = ref->svd(theta, {0, 1}, trunc);
  auto f2 = eng->svd(theta, {0, 1}, trunc);
  EXPECT_EQ(f1.kept, f2.kept);
  EXPECT_NEAR(f1.truncation_error, f2.truncation_error, 1e-12);
}

TEST_P(EngineParam, ChargesFlops) {
  Operands ops;
  auto eng = tt::dmrg::make_engine(GetParam(), test_cluster());
  eng->contract(ops.a, Role::kOperator, ops.b, Role::kOperator, {{2, 0}});
  EXPECT_GT(eng->tracker().flops(), 0.0);
  EXPECT_GT(eng->tracker().time(Category::kGemm), 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, EngineParam, ::testing::ValuesIn(kAllEngines),
                         [](const auto& info) {
                           std::string name = tt::dmrg::engine_name(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Engines, SuperstepAccountingMatchesTableII) {
  // Table II: list pays O(Nb) supersteps per contraction, fused formats O(1).
  Operands ops;
  auto list = tt::dmrg::make_engine(EngineKind::kList, test_cluster());
  auto ss = tt::dmrg::make_engine(EngineKind::kSparseSparse, test_cluster());
  list->contract(ops.a, Role::kOperator, ops.b, Role::kOperator, {{2, 0}});
  ss->contract(ops.a, Role::kOperator, ops.b, Role::kOperator, {{2, 0}});
  EXPECT_GT(list->tracker().supersteps(), ss->tracker().supersteps());
  EXPECT_DOUBLE_EQ(ss->tracker().supersteps(), 1.0);
}

TEST(Engines, ReferenceHasNoCommunication) {
  Operands ops;
  auto ref = tt::dmrg::make_engine(EngineKind::kReference, test_cluster());
  ref->contract(ops.a, Role::kOperator, ops.b, Role::kOperator, {{2, 0}});
  tt::symm::TruncParams trunc;
  BlockTensor theta = tt::symm::contract(ops.a, ops.b, {{2, 0}});
  ref->svd(theta, {0, 1}, trunc);
  EXPECT_DOUBLE_EQ(ref->tracker().time(Category::kComm), 0.0);
  EXPECT_DOUBLE_EQ(ref->tracker().words(), 0.0);
}

TEST(Engines, FusedSvdChargesRedistribution) {
  // Sparse engines must pay the block-extraction round trip around the SVD
  // (paper §IV-A); list/reference must not.
  Operands ops;
  BlockTensor theta = tt::symm::contract(ops.a, ops.b, {{2, 0}});
  tt::symm::TruncParams trunc;

  auto list = tt::dmrg::make_engine(EngineKind::kList, test_cluster());
  auto sd = tt::dmrg::make_engine(EngineKind::kSparseDense, test_cluster());
  list->svd(theta, {0, 1}, trunc);
  sd->svd(theta, {0, 1}, trunc);
  EXPECT_DOUBLE_EQ(list->tracker().time(Category::kComm), 0.0);
  EXPECT_GT(sd->tracker().time(Category::kComm), 0.0);
}

TEST(Engines, NameRoundTrip) {
  for (EngineKind k : kAllEngines) {
    auto eng = tt::dmrg::make_engine(k, test_cluster());
    EXPECT_EQ(eng->kind(), k);
    EXPECT_EQ(eng->name(), tt::dmrg::engine_name(k));
  }
}

TEST(Engines, FullSweepEquivalenceAcrossEngines) {
  // The headline invariant (paper §III: "We compute DMRG in the same way as
  // the best sequential approach"): every engine produces the same sweep
  // energies on the same problem.
  auto lat = tt::models::square_cylinder(3, 2, true);
  auto sites = tt::models::spin_half_sites(lat.num_sites);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.5);
  std::vector<int> neel;
  for (int i = 0; i < lat.num_sites; ++i) neel.push_back(i % 2);

  tt::dmrg::SweepParams params;
  params.max_m = 16;
  params.davidson_iter = 3;

  std::vector<double> energies;
  for (EngineKind k : kAllEngines) {
    auto psi = tt::mps::Mps::product_state(sites, neel);
    tt::dmrg::Dmrg solver(psi, h, tt::dmrg::make_engine(k, test_cluster()));
    auto rec1 = solver.sweep(params);
    auto rec2 = solver.sweep(params);
    energies.push_back(rec2.energy);
    EXPECT_LE(rec2.energy, rec1.energy + 1e-9) << tt::dmrg::engine_name(k);
  }
  for (std::size_t i = 1; i < energies.size(); ++i)
    EXPECT_NEAR(energies[i], energies[0], 1e-8)
        << "engine " << tt::dmrg::engine_name(kAllEngines[i]);
}

TEST(Engines, ElectronSweepEquivalence) {
  // Same invariant on the d = 4, two-charge system (much finer blocks).
  auto lat = tt::models::chain(4);
  auto sites = tt::models::electron_sites(4);
  auto h = tt::models::hubbard_mpo(sites, lat, 1.0, 8.5);
  std::vector<int> half{1, 2, 1, 2};

  tt::dmrg::SweepParams params;
  params.max_m = 24;
  params.davidson_iter = 3;

  std::vector<double> energies;
  for (EngineKind k : kAllEngines) {
    auto psi = tt::mps::Mps::product_state(sites, half);
    tt::dmrg::Dmrg solver(psi, h, tt::dmrg::make_engine(k, test_cluster()));
    solver.sweep(params);
    energies.push_back(solver.sweep(params).energy);
  }
  for (std::size_t i = 1; i < energies.size(); ++i)
    EXPECT_NEAR(energies[i], energies[0], 1e-8)
        << "engine " << tt::dmrg::engine_name(kAllEngines[i]);
}

}  // namespace

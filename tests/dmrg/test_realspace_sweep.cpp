// Real-space sweep-mode tests: regions=1 and prefetch must reproduce the
// serial sweep bitwise at any thread count; regions>1 must converge to the
// same ground state deterministically.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "dmrg/dmrg.hpp"
#include "ed/ed.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/measure.hpp"
#include "support/thread_pool.hpp"

namespace {

using tt::dmrg::Dmrg;
using tt::dmrg::EngineKind;
using tt::dmrg::SweepMode;
using tt::dmrg::SweepParams;
using tt::dmrg::SweepRecord;

tt::rt::Cluster local() { return {tt::rt::localhost(), 1, 1}; }

SweepParams params_for(tt::index_t m, SweepMode mode = SweepMode::kSerial,
                       int regions = 1, bool prefetch = false) {
  SweepParams p;
  p.max_m = m;
  p.davidson_iter = 3;
  p.mode = mode;
  p.regions = regions;
  p.prefetch = prefetch;
  return p;
}

Dmrg heisenberg_solver(int n, EngineKind kind = EngineKind::kReference) {
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  return Dmrg(tt::mps::Mps::product_state(sites, neel), h,
              tt::dmrg::make_engine(kind, local()));
}

std::vector<SweepRecord> run_sweeps(Dmrg& solver, const SweepParams& p, int sweeps) {
  std::vector<SweepRecord> out;
  for (int s = 0; s < sweeps; ++s) out.push_back(solver.sweep(p));
  return out;
}

void expect_bitwise_equal(const std::vector<SweepRecord>& a,
                          const std::vector<SweepRecord>& b, const Dmrg& sa,
                          const Dmrg& sb, const char* label) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].energy, b[i].energy) << label << " sweep " << i;
    EXPECT_EQ(a[i].truncation_error, b[i].truncation_error)
        << label << " sweep " << i;
    EXPECT_EQ(a[i].max_bond_dim, b[i].max_bond_dim) << label << " sweep " << i;
    EXPECT_EQ(a[i].costs.flops(), b[i].costs.flops()) << label << " sweep " << i;
    EXPECT_EQ(a[i].costs.words(), b[i].costs.words()) << label << " sweep " << i;
  }
  for (int j = 0; j < sa.psi().size(); ++j)
    EXPECT_EQ(tt::symm::max_abs_diff(sa.psi().site(j), sb.psi().site(j)), 0.0)
        << label << " site " << j;
}

TEST(PartitionRegions, ShapesAndClamping) {
  using tt::dmrg::partition_regions;
  auto even = partition_regions(8, 4);
  ASSERT_EQ(even.size(), 4u);
  EXPECT_EQ(even[0], std::make_pair(0, 1));
  EXPECT_EQ(even[3], std::make_pair(6, 7));

  auto uneven = partition_regions(8, 3);  // 3 + 3 + 2
  ASSERT_EQ(uneven.size(), 3u);
  EXPECT_EQ(uneven[0], std::make_pair(0, 2));
  EXPECT_EQ(uneven[1], std::make_pair(3, 5));
  EXPECT_EQ(uneven[2], std::make_pair(6, 7));

  // Every region holds at least one bond; the request clamps to n/2.
  EXPECT_EQ(partition_regions(8, 100).size(), 4u);
  EXPECT_EQ(partition_regions(5, 2)[0], std::make_pair(0, 2));
  EXPECT_EQ(partition_regions(2, 5).size(), 1u);
  EXPECT_EQ(partition_regions(8, 1).size(), 1u);
  for (auto [a, b] : partition_regions(9, 4)) EXPECT_GE(b - a + 1, 2);
}

TEST(RealSpaceSweep, RegionsOneIsBitwiseSerial) {
  const int n = 8, sweeps = 3;
  Dmrg serial = heisenberg_solver(n);
  auto ra = run_sweeps(serial, params_for(16), sweeps);
  Dmrg region1 = heisenberg_solver(n);
  auto rb = run_sweeps(region1, params_for(16, SweepMode::kRealSpace, 1), sweeps);
  expect_bitwise_equal(ra, rb, serial, region1, "regions=1");
  for (const auto& r : rb) EXPECT_EQ(r.mode, SweepMode::kSerial);
}

TEST(RealSpaceSweep, PrefetchIsBitwiseSerial) {
  const int n = 8, sweeps = 3;
  Dmrg eager = heisenberg_solver(n);
  auto ra = run_sweeps(eager, params_for(16), sweeps);
  Dmrg pre = heisenberg_solver(n);
  auto rb = run_sweeps(pre, params_for(16, SweepMode::kSerial, 1, true), sweeps);
  expect_bitwise_equal(ra, rb, eager, pre, "prefetch");
  // Overlap is accounted in the dedicated slot, not hidden.
  for (const auto& r : rb) {
    EXPECT_GT(r.prefetch_launched, 0);
    EXPECT_GT(r.costs.time(tt::rt::Category::kPrefetch), 0.0);
  }
  for (const auto& r : ra) {
    EXPECT_EQ(r.prefetch_launched, 0);
    EXPECT_EQ(r.costs.time(tt::rt::Category::kPrefetch), 0.0);
  }
}

TEST(RealSpaceSweep, SlowPrefetchStaysInFlightAcrossTheTurn) {
  // Regression for the sweep-turn race: the last L2R bond launches
  // prefetch_left(N-1), whose worker reads site N-2, and the first R2L bond
  // re-optimizes that same bond without ever demanding the pending node — so
  // the join must come from site_changed *before* set_site replaces the
  // tensor the worker is reading. The injected worker delay keeps the future
  // in flight across the turn, so under TSan a regressed ordering is a
  // deterministic report instead of scheduling luck.
  const int n = 6, sweeps = 2;
  Dmrg eager = heisenberg_solver(n);
  auto ra = run_sweeps(eager, params_for(12), sweeps);
  Dmrg slow = heisenberg_solver(n);
  slow.environments().set_prefetch_delay_for_testing(
      std::chrono::milliseconds(10));
  auto rb = run_sweeps(slow, params_for(12, SweepMode::kSerial, 1, true), sweeps);
  expect_bitwise_equal(ra, rb, eager, slow, "slow prefetch");
  long blocked = 0;
  for (const auto& r : rb) blocked += r.prefetch_launched - r.prefetch_hits;
  EXPECT_GT(blocked, 0);  // the delay really forced joins to block in flight
}

TEST(RealSpaceSweep, SerialSweepInvariantUnderThreadCount) {
  const int n = 8, sweeps = 2;
  Dmrg base = heisenberg_solver(n);
  auto ra = run_sweeps(base, params_for(16), sweeps);
  for (int threads : {2, 8}) {
    tt::support::set_num_threads(threads);
    Dmrg other = heisenberg_solver(n);
    auto rb = run_sweeps(other, params_for(16, SweepMode::kSerial, 1, true), sweeps);
    tt::support::set_num_threads(0);
    expect_bitwise_equal(ra, rb, base, other, "threads");
  }
}

TEST(RealSpaceSweep, TwoRegionsConvergeToEd) {
  const int n = 8;
  auto lat = tt::models::chain(n);
  Dmrg solver = heisenberg_solver(n);
  SweepRecord last;
  for (int s = 0; s < 10; ++s)
    last = solver.sweep(params_for(32, SweepMode::kRealSpace, 2));
  const double e_ed = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0);
  EXPECT_NEAR(last.energy, e_ed, 1e-6);
  EXPECT_EQ(last.mode, SweepMode::kRealSpace);
  EXPECT_EQ(last.regions, 2);
  EXPECT_EQ(last.boundary_bonds, 1);
}

TEST(RealSpaceSweep, FourRegionsConvergeAndRespectInvariants) {
  const int n = 12;
  auto lat = tt::models::chain(n);
  Dmrg solver = heisenberg_solver(n);
  SweepRecord last;
  for (int s = 0; s < 12; ++s)
    last = solver.sweep(params_for(48, SweepMode::kRealSpace, 4));
  const double e_ed = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0);
  EXPECT_NEAR(last.energy, e_ed, 1e-5);
  EXPECT_EQ(last.regions, 4);
  EXPECT_EQ(last.boundary_bonds, 3);

  const tt::mps::Mps& psi = solver.psi();
  psi.check_consistency();
  EXPECT_EQ(psi.total_qn(), tt::symm::QN(0));
  EXPECT_NEAR(tt::mps::overlap(psi, psi), 1.0, 1e-8);
  EXPECT_LE(psi.max_bond_dim(), 48);
  EXPECT_GT(last.costs.flops(), 0.0);
}

TEST(RealSpaceSweep, RegionSweepDeterministicAcrossThreadCounts) {
  const int n = 12, sweeps = 2;
  auto run_at = [&](int threads) {
    tt::support::set_num_threads(threads);
    Dmrg solver = heisenberg_solver(n);
    auto recs = run_sweeps(solver, params_for(24, SweepMode::kRealSpace, 3), sweeps);
    tt::support::set_num_threads(0);
    std::vector<tt::symm::BlockTensor> state;
    for (int j = 0; j < solver.psi().size(); ++j)
      state.push_back(solver.psi().site(j));
    return std::make_pair(recs, state);
  };
  auto [ra, sa] = run_at(1);
  auto [rb, sb] = run_at(8);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].energy, rb[i].energy) << "sweep " << i;
    EXPECT_EQ(ra[i].truncation_error, rb[i].truncation_error) << "sweep " << i;
    EXPECT_EQ(ra[i].costs.flops(), rb[i].costs.flops()) << "sweep " << i;
  }
  for (std::size_t j = 0; j < sa.size(); ++j)
    EXPECT_EQ(tt::symm::max_abs_diff(sa[j], sb[j]), 0.0) << "site " << j;
}

TEST(RealSpaceSweep, MixedScheduleLowersEnergy) {
  // A real-space burst followed by serial polishing is a legal schedule.
  Dmrg solver = heisenberg_solver(10);
  double prev = 1e30;
  for (int s = 0; s < 3; ++s)
    prev = solver.sweep(params_for(24, SweepMode::kRealSpace, 2)).energy;
  const double serial = solver.sweep(params_for(24)).energy;
  EXPECT_LE(serial, prev + 1e-9);
}

}  // namespace

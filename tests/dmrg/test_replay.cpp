#include <gtest/gtest.h>

#include "dmrg/dmrg.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/mps.hpp"

namespace {

using tt::Rng;
using tt::dmrg::EngineKind;
using tt::symm::QN;

// A logged run, replayed on the engine's own cluster, must reproduce the
// tracker exactly — the invariant the scaling benches rely on.
class ReplayParam : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ReplayParam, ReplayOnSameClusterMatchesLiveTracker) {
  auto lat = tt::models::chain(8);
  auto sites = tt::models::spin_half_sites(8);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  Rng rng(9);
  auto psi = tt::mps::Mps::random(sites, QN(0), 12, rng);

  tt::rt::Cluster cl{tt::rt::blue_waters(), 4, 16};
  auto engine = tt::dmrg::make_engine(GetParam(), cl);
  auto* eng = engine.get();
  tt::dmrg::Dmrg solver(std::move(psi), h, std::move(engine));

  eng->set_logging(true);
  eng->clear_log();
  const tt::rt::CostTracker before = eng->tracker();
  tt::dmrg::SweepParams p;
  p.max_m = 12;
  solver.optimize_bond(4, p, true);
  const tt::rt::CostTracker live = eng->tracker().diff(before);

  const tt::rt::CostTracker replayed = tt::dmrg::replay_log(eng->log(), cl);
  EXPECT_NEAR(replayed.total_time(), live.total_time(),
              1e-12 * (1.0 + live.total_time()));
  EXPECT_NEAR(replayed.flops(), live.flops(), 1e-6);
  EXPECT_NEAR(replayed.words(), live.words(), 1e-6);
  EXPECT_NEAR(replayed.supersteps(), live.supersteps(), 1e-12);
  for (int c = 0; c < tt::rt::kNumCategories; ++c)
    EXPECT_NEAR(replayed.time(static_cast<tt::rt::Category>(c)),
                live.time(static_cast<tt::rt::Category>(c)),
                1e-12 * (1.0 + live.total_time()))
        << tt::rt::category_name(static_cast<tt::rt::Category>(c));
}

TEST_P(ReplayParam, ReplayOnBiggerClusterIsFaster) {
  auto lat = tt::models::chain(8);
  auto sites = tt::models::spin_half_sites(8);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  Rng rng(10);
  auto psi = tt::mps::Mps::random(sites, QN(0), 16, rng);

  auto engine = tt::dmrg::make_engine(GetParam(), {tt::rt::blue_waters(), 1, 16});
  auto* eng = engine.get();
  tt::dmrg::Dmrg solver(std::move(psi), h, std::move(engine));
  eng->set_logging(true);
  eng->clear_log();
  tt::dmrg::SweepParams p;
  p.max_m = 16;
  solver.optimize_bond(4, p, true);

  if (GetParam() == EngineKind::kReference) {
    // The local layout ignores the cluster size.
    auto t1 = tt::dmrg::replay_log(eng->log(), {tt::rt::blue_waters(), 1, 16});
    auto t8 = tt::dmrg::replay_log(eng->log(), {tt::rt::blue_waters(), 8, 16});
    EXPECT_NEAR(t8.total_time(), t1.total_time(), 1e-12);
  } else {
    // At unit-test problem sizes fixed per-event costs can dominate the
    // total; the node-scalable component (GEMM) must strictly shrink.
    auto t1 = tt::dmrg::replay_log(eng->log(), {tt::rt::blue_waters(), 1, 16});
    auto t8 = tt::dmrg::replay_log(eng->log(), {tt::rt::blue_waters(), 8, 16});
    EXPECT_LT(t8.time(tt::rt::Category::kGemm), t1.time(tt::rt::Category::kGemm));
    // Comm volume shrinks with p, but for the list engine the per-block
    // synchronization latency grows with log p and dominates at unit-test
    // sizes — only the fused engines' comm must shrink here.
    if (GetParam() != EngineKind::kList) {
      EXPECT_LT(t8.time(tt::rt::Category::kComm), t1.time(tt::rt::Category::kComm));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, ReplayParam,
                         ::testing::Values(EngineKind::kReference, EngineKind::kList,
                                           EngineKind::kSparseDense,
                                           EngineKind::kSparseSparse),
                         [](const auto& info) {
                           std::string name = tt::dmrg::engine_name(info.param);
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(Replay, EmptyLogIsFree) {
  auto t = tt::dmrg::replay_log({}, {tt::rt::blue_waters(), 4, 16});
  EXPECT_DOUBLE_EQ(t.total_time(), 0.0);
}

}  // namespace

#include <gtest/gtest.h>

#include "dmrg/engine.hpp"
#include "dmrg/env_graph.hpp"
#include "dmrg/environment.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/measure.hpp"
#include "mps/mps.hpp"

namespace {

using tt::Rng;
using tt::dmrg::EnvGraph;
using tt::symm::BlockTensor;
using tt::symm::Dir;
using tt::symm::QN;

struct Fixture {
  tt::mps::SiteSetPtr sites = tt::models::spin_half_sites(6);
  tt::models::Lattice lat = tt::models::chain(6);
  tt::mps::Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  tt::mps::Mps psi;
  std::unique_ptr<tt::dmrg::ContractionEngine> eng =
      tt::dmrg::make_engine(tt::dmrg::EngineKind::kReference, {tt::rt::localhost(), 1, 1});

  Fixture() {
    Rng rng(7);
    psi = tt::mps::Mps::random(sites, QN(0), 8, rng);
    psi.canonicalize(0);
  }
};

TEST(Environment, BoundaryConventions) {
  BlockTensor l = tt::dmrg::left_boundary(1);
  EXPECT_EQ(l.index(0).dir(), Dir::In);
  EXPECT_EQ(l.index(1).dir(), Dir::Out);
  EXPECT_EQ(l.index(2).dir(), Dir::Out);
  BlockTensor r = tt::dmrg::right_boundary(QN(4));
  EXPECT_EQ(r.index(0).dir(), Dir::Out);
  EXPECT_EQ(r.index(0).sector(0).qn, QN(4));
  EXPECT_EQ(r.index(2).sector(0).qn, QN(4));
}

TEST(Environment, FullLeftContractionGivesExpectation) {
  Fixture f;
  // Extending the left environment across the whole chain and closing with
  // the right boundary reproduces ⟨ψ|H|ψ⟩.
  BlockTensor e = tt::dmrg::left_boundary(1);
  for (int j = 0; j < 6; ++j)
    e = tt::dmrg::extend_left(*f.eng, e, f.psi.site(j), f.h.site(j));
  BlockTensor closed =
      tt::symm::contract(e, tt::dmrg::right_boundary(QN(0)), {{0, 0}, {1, 1}, {2, 2}});
  double val = 0.0;
  for (const auto& [key, blk] : closed.blocks()) val += blk[0];
  EXPECT_NEAR(val, tt::mps::expectation(f.psi, f.h), 1e-9);
}

TEST(Environment, LeftRightMeetAnywhere) {
  Fixture f;
  const double want = tt::mps::expectation(f.psi, f.h);
  EnvGraph envs(*f.eng, f.psi, f.h);
  // For any cut j: L(j) ⋅ site_j ⋅ W_j ⋅ R(j+1) closes to ⟨H⟩.
  for (int j = 0; j < 6; ++j) {
    BlockTensor l = envs.left(j);
    l = tt::dmrg::extend_left(*f.eng, l, f.psi.site(j), f.h.site(j));
    BlockTensor closed =
        tt::symm::contract(l, envs.right(j + 1), {{0, 0}, {1, 1}, {2, 2}});
    double val = 0.0;
    for (const auto& [key, blk] : closed.blocks()) val += blk[0];
    EXPECT_NEAR(val, want, 1e-9) << "cut after site " << j;
  }
}

TEST(Environment, CanonicalFormMakesLeftEnvironmentIdentityFree) {
  // For a left-canonical prefix and the identity MPO-free overlap, the
  // environment would be the identity (paper fig 1c). Here, probe the
  // normalization: ⟨ψ|ψ⟩ through environments with H replaced by an
  // identity-like MPO is exactly the overlap; cheaper: check the two-site
  // effective matvec reproduces the energy quadratic form.
  Fixture f;
  f.psi.canonicalize(2);
  EnvGraph envs(*f.eng, f.psi, f.h);
  BlockTensor theta = tt::symm::contract(f.psi.site(2), f.psi.site(3), {{2, 0}});
  BlockTensor htheta = tt::dmrg::apply_two_site(*f.eng, envs.left(2), f.h.site(2),
                                                f.h.site(3), envs.right(4), theta);
  const double e = tt::symm::dot(theta, htheta) / tt::symm::dot(theta, theta);
  EXPECT_NEAR(e, tt::mps::expectation(f.psi, f.h), 1e-9);
}

TEST(Environment, MatvecIsSymmetric) {
  Fixture f;
  f.psi.canonicalize(1);
  EnvGraph envs(*f.eng, f.psi, f.h);
  Rng rng(9);
  BlockTensor theta = tt::symm::contract(f.psi.site(1), f.psi.site(2), {{2, 0}});
  BlockTensor x = BlockTensor::random(theta.indices(), theta.flux(), rng);
  BlockTensor y = BlockTensor::random(theta.indices(), theta.flux(), rng);
  auto apply = [&](const BlockTensor& t) {
    return tt::dmrg::apply_two_site(*f.eng, envs.left(1), f.h.site(1), f.h.site(2),
                                    envs.right(3), t);
  };
  // ⟨y|H|x⟩ = ⟨x|H|y⟩ for a symmetric H_eff.
  EXPECT_NEAR(tt::symm::dot(y, apply(x)), tt::symm::dot(x, apply(y)),
              1e-9 * (1.0 + std::abs(tt::symm::dot(x, apply(y)))));
}

TEST(Environment, UpdateMatchesRebuild) {
  Fixture f;
  EnvGraph envs(*f.eng, f.psi, f.h);
  // Demanding after invalidation recomputes exactly the update chain.
  envs.site_changed(0);
  envs.site_changed(1);
  BlockTensor direct = tt::dmrg::left_boundary(1);
  direct = tt::dmrg::extend_left(*f.eng, direct, f.psi.site(0), f.h.site(0));
  direct = tt::dmrg::extend_left(*f.eng, direct, f.psi.site(1), f.h.site(1));
  EXPECT_LT(tt::symm::max_abs_diff(envs.left(2), direct), 1e-12);
}

TEST(Environment, GraphRangeChecks) {
  Fixture f;
  EnvGraph envs(*f.eng, f.psi, f.h);
  EXPECT_THROW(envs.left(-1), tt::Error);
  EXPECT_THROW(envs.right(8), tt::Error);
  EXPECT_NO_THROW(envs.left(6));
  EXPECT_NO_THROW(envs.right(6));
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "dmrg/dmrg.hpp"
#include "ed/ed.hpp"
#include "models/electron.hpp"
#include "models/heisenberg.hpp"
#include "models/hubbard.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/measure.hpp"

namespace {

using tt::dmrg::Dmrg;
using tt::dmrg::EngineKind;
using tt::dmrg::SweepParams;

tt::rt::Cluster local() { return {tt::rt::localhost(), 1, 1}; }

std::vector<SweepParams> schedule(tt::index_t m, int sweeps, int dav = 3,
                                  int subspace = 2) {
  std::vector<SweepParams> out;
  for (int s = 0; s < sweeps; ++s) {
    SweepParams p;
    p.max_m = m;
    p.davidson_iter = dav;
    p.davidson_subspace = subspace;
    out.push_back(p);
  }
  return out;
}

TEST(DmrgGroundState, HeisenbergChainMatchesEd) {
  const int n = 8;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  Dmrg solver(tt::mps::Mps::product_state(sites, neel), h,
              tt::dmrg::make_engine(EngineKind::kReference, local()));
  const double e = solver.run(schedule(32, 6));
  const double e_ed = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0);
  EXPECT_NEAR(e, e_ed, 1e-8);
}

TEST(DmrgGroundState, J1J2CylinderMatchesEd) {
  // The paper's spins workload, shrunk to an ED-verifiable 4x2 cylinder.
  auto lat = tt::models::square_cylinder(4, 2, true);
  auto sites = tt::models::spin_half_sites(lat.num_sites);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.5);
  std::vector<int> neel;
  for (int x = 0; x < 4; ++x)
    for (int y = 0; y < 2; ++y) neel.push_back((x + y) % 2);
  Dmrg solver(tt::mps::Mps::product_state(sites, neel), h,
              tt::dmrg::make_engine(EngineKind::kList, {tt::rt::blue_waters(), 2, 16}));
  const double e = solver.run(schedule(48, 8));
  const double e_ed = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.5, 0);
  EXPECT_NEAR(e, e_ed, 1e-7);
}

TEST(DmrgGroundState, HubbardChainMatchesEd) {
  const int n = 4;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::electron_sites(n);
  auto h = tt::models::hubbard_mpo(sites, lat, 1.0, 8.5);
  Dmrg solver(tt::mps::Mps::product_state(sites, {1, 2, 1, 2}), h,
              tt::dmrg::make_engine(EngineKind::kReference, local()));
  // Strong-U Hubbard converges slowly out of the Néel-like product state:
  // give Davidson a deeper subspace than the paper's production setting.
  const double e = solver.run(schedule(40, 14, 8, 4));
  const double e_ed = tt::ed::hubbard_ground_energy(lat, 1.0, 8.5, 2, 2);
  EXPECT_NEAR(e, e_ed, 1e-7);
}

TEST(DmrgGroundState, TriangularHubbardMatchesEd) {
  // The paper's electrons workload, shrunk to a 3x2 triangular cylinder.
  auto lat = tt::models::triangular_cylinder(3, 2);
  auto sites = tt::models::electron_sites(lat.num_sites);
  auto h = tt::models::hubbard_mpo(sites, lat, 1.0, 8.5);
  Dmrg solver(tt::mps::Mps::product_state(sites, {1, 2, 1, 2, 1, 2}), h,
              tt::dmrg::make_engine(EngineKind::kSparseSparse,
                                    {tt::rt::stampede2(), 2, 32}));
  const double e = solver.run(schedule(64, 14, 8, 4));
  const double e_ed = tt::ed::hubbard_ground_energy(lat, 1.0, 8.5, 3, 3);
  EXPECT_NEAR(e, e_ed, 1e-6);
}

TEST(DmrgGroundState, HubbardFreeFermionLimit) {
  // U = 0: exact band energy, a qualitatively different regime.
  const int n = 6;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::electron_sites(n);
  auto h = tt::models::hubbard_mpo(sites, lat, 1.0, 0.0);
  Dmrg solver(tt::mps::Mps::product_state(sites, {1, 2, 1, 2, 1, 2}), h,
              tt::dmrg::make_engine(EngineKind::kReference, local()));
  const double e = solver.run(schedule(48, 8));
  double want = 0.0;
  for (int k = 1; k <= 3; ++k) want += 2.0 * -2.0 * std::cos(M_PI * k / (n + 1.0));
  EXPECT_NEAR(e, want, 1e-6);
}

TEST(Dmrg, EnergyMonotonicallyNonIncreasing) {
  const int n = 10;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  Dmrg solver(tt::mps::Mps::product_state(sites, neel), h,
              tt::dmrg::make_engine(EngineKind::kReference, local()));
  double prev = 1e30;
  for (int s = 0; s < 5; ++s) {
    const double e = solver.sweep(schedule(32, 1)[0]).energy;
    EXPECT_LE(e, prev + 1e-9) << "sweep " << s;
    prev = e;
  }
}

TEST(Dmrg, TruncationCapRaisesEnergy) {
  const int n = 8;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);

  auto run_at = [&](tt::index_t m) {
    Dmrg solver(tt::mps::Mps::product_state(sites, neel), h,
                tt::dmrg::make_engine(EngineKind::kReference, local()));
    return solver.run(schedule(m, 6));
  };
  const double e2 = run_at(2);
  const double e32 = run_at(32);
  EXPECT_GT(e2, e32 + 1e-6);  // m = 2 cannot represent the ground state
}

TEST(Dmrg, StatePropertiesAfterRun) {
  const int n = 8;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  Dmrg solver(tt::mps::Mps::product_state(sites, neel), h,
              tt::dmrg::make_engine(EngineKind::kReference, local()));
  solver.run(schedule(32, 4));

  const tt::mps::Mps& psi = solver.psi();
  psi.check_consistency();
  EXPECT_EQ(psi.total_qn(), tt::symm::QN(0));       // charge conserved
  EXPECT_NEAR(tt::mps::overlap(psi, psi), 1.0, 1e-8);  // normalized
  EXPECT_LE(psi.max_bond_dim(), 32);
  // The driver's environment-based energy agrees with a fresh contraction.
  EXPECT_NEAR(solver.energy_expectation(), tt::mps::expectation(psi, h), 1e-7);
  // Sweep records accumulated.
  EXPECT_EQ(solver.records().size(), 4u);
  EXPECT_GT(solver.records().back().costs.flops(), 0.0);
}

TEST(Dmrg, BondDimensionGrowsFromProductState) {
  const int n = 8;
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  Dmrg solver(tt::mps::Mps::product_state(sites, neel), h,
              tt::dmrg::make_engine(EngineKind::kReference, local()));
  EXPECT_EQ(solver.psi().max_bond_dim(), 1);
  solver.sweep(schedule(16, 1)[0]);
  EXPECT_GT(solver.psi().max_bond_dim(), 1);
}

TEST(Dmrg, StandardScheduleShape) {
  auto sched = tt::dmrg::standard_schedule(8, 64, 2);
  // m: 8,8,16,16,32,32,64,64.
  ASSERT_EQ(sched.size(), 8u);
  EXPECT_EQ(sched.front().max_m, 8);
  EXPECT_EQ(sched.back().max_m, 64);
  EXPECT_THROW(tt::dmrg::standard_schedule(0, 8), tt::Error);
  EXPECT_THROW(tt::dmrg::standard_schedule(8, 4), tt::Error);
}

TEST(Dmrg, RejectsBadConstruction) {
  auto sites = tt::models::spin_half_sites(4);
  auto lat = tt::models::chain(4);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  auto psi = tt::mps::Mps::product_state(sites, {0, 1, 0, 1});
  EXPECT_THROW(Dmrg(psi, h, nullptr), tt::Error);
  // Size mismatch.
  auto sites6 = tt::models::spin_half_sites(6);
  auto psi6 = tt::mps::Mps::product_state(sites6, {0, 1, 0, 1, 0, 1});
  EXPECT_THROW(Dmrg(psi6, h, tt::dmrg::make_engine(EngineKind::kReference, local())),
               tt::Error);
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "dmrg/davidson.hpp"
#include "dmrg/engine.hpp"
#include "dmrg/env_graph.hpp"
#include "dmrg/environment.hpp"
#include "ed/ed.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/mps.hpp"
#include "runtime/machine.hpp"

namespace {

using tt::Rng;
using tt::dmrg::DavidsonOptions;
using tt::dmrg::Role;
using tt::symm::BlockTensor;
using tt::symm::QN;

// Fixture: the full two-site effective problem of a 2-site Heisenberg chain.
// With boundary environments of dim 1, θ spans the complete Sz = 0 sector and
// Davidson must find the exact singlet energy −3/4.
struct TwoSiteProblem {
  std::unique_ptr<tt::dmrg::ContractionEngine> eng;
  tt::mps::Mps psi;
  tt::mps::Mpo h;
  BlockTensor left, right, theta;

  explicit TwoSiteProblem(unsigned seed = 3) {
    auto sites = tt::models::spin_half_sites(2);
    auto lat = tt::models::chain(2);
    h = tt::models::heisenberg_mpo(sites, lat, 1.0);
    psi = tt::mps::Mps::product_state(sites, {0, 1});
    eng = tt::dmrg::make_engine(tt::dmrg::EngineKind::kReference,
                                {tt::rt::localhost(), 1, 1});
    left = tt::dmrg::left_boundary(1);
    right = tt::dmrg::right_boundary(QN(0));
    Rng rng(seed);
    theta = tt::symm::contract(psi.site(0), psi.site(1), {{2, 0}});
    // Perturb so the guess is not an eigenvector.
    BlockTensor noise = BlockTensor::random(theta.indices(), theta.flux(), rng);
    theta.axpy(0.3, noise);
  }

  tt::dmrg::BlockMatVec matvec() {
    return [this](const BlockTensor& x) {
      return tt::dmrg::apply_two_site(*eng, left, h.site(0), h.site(1), right, x);
    };
  }
};

TEST(Davidson, ConvergesToSingletEnergy) {
  TwoSiteProblem p;
  DavidsonOptions opts;
  opts.max_iter = 20;
  opts.subspace = 4;
  auto r = tt::dmrg::davidson(p.matvec(), p.theta, opts);
  EXPECT_NEAR(r.eigenvalue, -0.75, 1e-9);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.vector.norm2(), 1.0, 1e-12);
}

TEST(Davidson, ResidualIsEigenEquation) {
  TwoSiteProblem p;
  DavidsonOptions opts;
  opts.max_iter = 30;
  opts.subspace = 4;
  auto r = tt::dmrg::davidson(p.matvec(), p.theta, opts);
  BlockTensor hv = p.matvec()(r.vector);
  hv.axpy(-r.eigenvalue, r.vector);
  EXPECT_LT(hv.norm2(), 1e-8);
}

TEST(Davidson, SubspaceTwoRestartStillConverges) {
  // The paper's production setting: subspace 2, restarting from the Ritz
  // vector. More iterations, same fixed point.
  TwoSiteProblem p;
  DavidsonOptions opts;
  opts.max_iter = 40;
  opts.subspace = 2;
  auto r = tt::dmrg::davidson(p.matvec(), p.theta, opts);
  EXPECT_NEAR(r.eigenvalue, -0.75, 1e-8);
}

TEST(Davidson, SingleIterationLowersRayleighQuotient) {
  TwoSiteProblem p;
  // Rayleigh quotient of the (normalized) guess.
  BlockTensor x = p.theta;
  x.scale(1.0 / x.norm2());
  const double rq0 = tt::symm::dot(x, p.matvec()(x));
  DavidsonOptions opts;
  opts.max_iter = 2;
  auto r = tt::dmrg::davidson(p.matvec(), p.theta, opts);
  EXPECT_LE(r.eigenvalue, rq0 + 1e-12);
}

TEST(Davidson, ExactGuessConvergesImmediately) {
  TwoSiteProblem p;
  DavidsonOptions opts;
  opts.max_iter = 30;
  opts.subspace = 4;
  auto r1 = tt::dmrg::davidson(p.matvec(), p.theta, opts);
  // Restart from the solution: one matvec, converged.
  auto r2 = tt::dmrg::davidson(p.matvec(), r1.vector, opts);
  EXPECT_TRUE(r2.converged);
  EXPECT_EQ(r2.matvecs, 1);
  EXPECT_NEAR(r2.eigenvalue, r1.eigenvalue, 1e-10);
}

TEST(Davidson, MatchesEdOnLargerChain) {
  // 4-site chain: optimize the middle bond of a random MPS with full-sector
  // bonds; θ spans the whole Sz=0 sector, so Davidson reaches the ED energy.
  auto sites = tt::models::spin_half_sites(4);
  auto lat = tt::models::chain(4);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  Rng rng(4);
  auto psi = tt::mps::Mps::random(sites, QN(0), 8, rng);
  psi.canonicalize(1);
  auto eng = tt::dmrg::make_engine(tt::dmrg::EngineKind::kReference,
                                   {tt::rt::localhost(), 1, 1});
  tt::dmrg::EnvGraph envs(*eng, psi, h);
  BlockTensor theta = tt::symm::contract(psi.site(1), psi.site(2), {{2, 0}});
  DavidsonOptions opts;
  opts.max_iter = 60;
  opts.subspace = 8;
  opts.tol = 1e-12;
  auto r = tt::dmrg::davidson(
      [&](const BlockTensor& x) {
        return tt::dmrg::apply_two_site(*eng, envs.left(1), h.site(1), h.site(2),
                                        envs.right(3), x);
      },
      theta, opts);
  const double e_ed = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0);
  EXPECT_NEAR(r.eigenvalue, e_ed, 1e-8);
}

TEST(Davidson, RejectsBadInputs) {
  TwoSiteProblem p;
  BlockTensor zero(p.theta.indices(), p.theta.flux());
  EXPECT_THROW(tt::dmrg::davidson(p.matvec(), zero, {}), tt::Error);
  DavidsonOptions bad;
  bad.max_iter = 0;
  EXPECT_THROW(tt::dmrg::davidson(p.matvec(), p.theta, bad), tt::Error);
  DavidsonOptions bad2;
  bad2.subspace = 1;
  EXPECT_THROW(tt::dmrg::davidson(p.matvec(), p.theta, bad2), tt::Error);
}

}  // namespace

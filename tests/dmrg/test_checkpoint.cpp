// Sweep-level checkpoint/restart (dmrg/checkpoint.hpp).
//
// The load-bearing test is the last one: a DMRG run killed mid-sweep by the
// dmrg.kill_sweep fault point, resumed from its latest snapshot in a fresh
// solver, must reach a final energy bitwise identical to the uninterrupted
// run — the restart contract the checkpoint format (hexfloat MPS, exact
// position) and the EnvGraph rebuild guarantee together.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dmrg/checkpoint.hpp"
#include "dmrg/dmrg.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "runtime/fault.hpp"
#include "support/rng.hpp"

namespace {

namespace fs = std::filesystem;
using tt::Rng;
using tt::dmrg::CheckpointData;
using tt::dmrg::CheckpointManager;
using tt::dmrg::Dmrg;
using tt::dmrg::EngineKind;
using tt::dmrg::SweepParams;
using tt::dmrg::SweepPosition;
using tt::dmrg::SweepRecord;
using tt::mps::Mps;
using tt::rt::FaultInjector;
using tt::symm::QN;

tt::rt::Cluster local() { return {tt::rt::localhost(), 1, 1}; }

// Fresh empty directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

void expect_bitwise_equal(const Mps& x, const Mps& y) {
  ASSERT_EQ(x.size(), y.size());
  for (int j = 0; j < x.size(); ++j) {
    const auto& tx = x.site(j);
    const auto& ty = y.site(j);
    ASSERT_TRUE(tx.same_structure(ty)) << "site " << j;
    for (const auto& [key, blk] : tx.blocks()) {
      const tt::tensor::DenseTensor* other = ty.find_block(key);
      ASSERT_NE(other, nullptr) << "site " << j;
      ASSERT_EQ(std::memcmp(blk.data(), other->data(),
                            static_cast<std::size_t>(blk.size()) * sizeof(double)),
                0)
          << "site " << j;
    }
  }
}

struct Problem {
  tt::mps::SiteSetPtr sites;
  tt::mps::Mpo h;
  std::vector<int> neel;
};

Problem heisenberg(int n) {
  auto lat = tt::models::chain(n);
  auto sites = tt::models::spin_half_sites(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  return {sites, std::move(h), std::move(neel)};
}

TEST(Checkpoint, SaveLoadRoundTripIsBitwise) {
  Problem p = heisenberg(6);
  Rng rng(11);
  Mps psi = Mps::random(p.sites, QN(0), 8, rng);
  psi.canonicalize(3);

  SweepPosition pos;
  pos.schedule_pos = 2;
  pos.sweep_count = 5;
  pos.phase = 1;
  pos.next_bond = 3;
  pos.center = 3;
  pos.energy = -2.718281828;
  pos.trunc_err = 1.25e-13;
  pos.max_trunc_partial = 3.5e-12;
  std::vector<SweepRecord> history(2);
  history[0].sweep = 4;
  history[0].energy = -2.5;
  history[0].max_bond_dim = 8;
  history[0].truncation_error = 2e-12;
  history[1].sweep = 5;
  history[1].energy = -2.7;

  CheckpointManager mgr(fresh_dir("ckpt_roundtrip"));
  EXPECT_FALSE(mgr.has_checkpoint());
  mgr.save(psi, pos, history);
  EXPECT_TRUE(mgr.has_checkpoint());
  EXPECT_EQ(mgr.sequence(), 1);

  CheckpointData data = mgr.load(p.sites);
  expect_bitwise_equal(psi, data.psi);
  EXPECT_EQ(data.pos.schedule_pos, pos.schedule_pos);
  EXPECT_EQ(data.pos.sweep_count, pos.sweep_count);
  EXPECT_EQ(data.pos.phase, pos.phase);
  EXPECT_EQ(data.pos.next_bond, pos.next_bond);
  EXPECT_EQ(data.pos.center, pos.center);
  EXPECT_EQ(data.pos.energy, pos.energy);  // bitwise, via hexfloat
  EXPECT_EQ(data.pos.trunc_err, pos.trunc_err);
  EXPECT_EQ(data.pos.max_trunc_partial, pos.max_trunc_partial);
  ASSERT_EQ(data.history.size(), 2u);
  EXPECT_EQ(data.history[0].energy, history[0].energy);
  EXPECT_EQ(data.history[1].sweep, 5);
}

TEST(Checkpoint, SequenceContinuesAndOldSnapshotsArePruned) {
  Problem p = heisenberg(4);
  Mps psi = Mps::product_state(p.sites, p.neel);
  const std::string dir = fresh_dir("ckpt_sequence");
  {
    CheckpointManager mgr(dir);
    for (int i = 0; i < 3; ++i) mgr.save(psi, SweepPosition{}, {});
    EXPECT_EQ(mgr.sequence(), 3);
  }
  // A new manager over the same directory continues, never overwrites.
  CheckpointManager mgr2(dir);
  EXPECT_EQ(mgr2.sequence(), 3);
  mgr2.save(psi, SweepPosition{}, {});
  EXPECT_EQ(mgr2.sequence(), 4);
  // Keep-last-two: snapshots 3 and 4 exist, 1 and 2 are gone.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "ckpt_4.tt"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "ckpt_3.tt"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "ckpt_2.tt"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "ckpt_1.tt"));
}

TEST(Checkpoint, RejectsMissingTruncatedAndCorruptSnapshots) {
  Problem p = heisenberg(4);
  Mps psi = Mps::product_state(p.sites, p.neel);

  // Empty directory: nothing to load.
  CheckpointManager empty(fresh_dir("ckpt_empty"));
  EXPECT_THROW((void)empty.load(p.sites), tt::Error);

  auto saved_dir = [&](const std::string& name) {
    const std::string dir = fresh_dir(name);
    CheckpointManager mgr(dir);
    mgr.save(psi, SweepPosition{}, {});
    return dir;
  };

  // Truncated snapshot: manifest byte count catches it.
  {
    const std::string dir = saved_dir("ckpt_trunc");
    const fs::path snap = fs::path(dir) / "ckpt_1.tt";
    fs::resize_file(snap, fs::file_size(snap) / 2);
    CheckpointManager mgr(dir);
    try {
      (void)mgr.load(p.sites);
      FAIL() << "truncated snapshot was not rejected";
    } catch (const tt::Error& e) {
      EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    }
  }

  // Flipped byte (same size): checksum catches it.
  {
    const std::string dir = saved_dir("ckpt_corrupt");
    const fs::path snap = fs::path(dir) / "ckpt_1.tt";
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(snap) / 2));
    f.put('!');
    f.close();
    CheckpointManager mgr(dir);
    try {
      (void)mgr.load(p.sites);
      FAIL() << "corrupt snapshot was not rejected";
    } catch (const tt::Error& e) {
      EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
    }
  }

  // Bad manifest magic / future version: rejected at manager construction.
  {
    const std::string dir = saved_dir("ckpt_badmanifest");
    std::ofstream(fs::path(dir) / "MANIFEST") << "BOGUS 1\n1 ckpt_1.tt 0 0\n";
    EXPECT_THROW(CheckpointManager{dir}, tt::Error);
    std::ofstream(fs::path(dir) / "MANIFEST") << "TTCKPT-MANIFEST 9\n1 x 0 0\n";
    EXPECT_THROW(CheckpointManager{dir}, tt::Error);
  }
}

TEST(Checkpoint, ResumeWithoutManagerOrSnapshotThrows) {
  Problem p = heisenberg(4);
  SweepParams sp;
  sp.max_m = 8;
  Dmrg solver(Mps::product_state(p.sites, p.neel), p.h,
              tt::dmrg::make_engine(EngineKind::kReference, local()));
  EXPECT_THROW((void)solver.resume({sp}), tt::Error);  // no manager attached
  CheckpointManager mgr(fresh_dir("ckpt_noresume"));
  solver.set_checkpointing(&mgr);
  EXPECT_THROW((void)solver.resume({sp}), tt::Error);  // nothing saved yet
}

// The acceptance test: kill mid-sweep, resume, bitwise-identical final energy.
TEST(Checkpoint, KillMidSweepThenResumeReachesBitwiseIdenticalEnergy) {
  const int n = 8;
  Problem p = heisenberg(n);
  std::vector<SweepParams> schedule(3);
  for (auto& sp : schedule) {
    sp.max_m = 16;
    sp.davidson_iter = 3;
    sp.checkpoint_every = 2;
  }

  // Reference: the uninterrupted run.
  Dmrg ref(Mps::product_state(p.sites, p.neel), p.h,
           tt::dmrg::make_engine(EngineKind::kReference, local()));
  const double e_ref = ref.run(schedule);

  // Interrupted run: checkpoint every 2 bonds, die at the 20th bond — in the
  // middle of the second sweep's left-to-right pass (14 bonds per sweep).
  const std::string dir = fresh_dir("ckpt_kill");
  CheckpointManager mgr(dir);
  FaultInjector::instance().clear();
  FaultInjector::instance().configure("dmrg.kill_sweep:nth=20");
  {
    Dmrg victim(Mps::product_state(p.sites, p.neel), p.h,
                tt::dmrg::make_engine(EngineKind::kReference, local()));
    victim.set_checkpointing(&mgr);
    EXPECT_THROW((void)victim.run(schedule), tt::Error);
  }
  FaultInjector::instance().clear();
  ASSERT_TRUE(mgr.has_checkpoint());
  ASSERT_GT(mgr.sequence(), 1);  // several snapshots were taken before death

  // Resume in a fresh solver (fresh process stand-in): bitwise-equal final
  // energy, continued sweep numbering, and identical per-sweep energies.
  CheckpointManager mgr2(dir);
  Dmrg revived(Mps::product_state(p.sites, p.neel), p.h,
               tt::dmrg::make_engine(EngineKind::kReference, local()));
  revived.set_checkpointing(&mgr2);
  const double e_res = revived.resume(schedule);

  EXPECT_EQ(e_res, e_ref);  // bitwise
  ASSERT_EQ(revived.records().size(), ref.records().size());
  for (std::size_t s = 0; s < ref.records().size(); ++s) {
    EXPECT_EQ(revived.records()[s].energy, ref.records()[s].energy)
        << "sweep " << s;
    EXPECT_EQ(revived.records()[s].sweep, ref.records()[s].sweep);
    EXPECT_EQ(revived.records()[s].truncation_error,
              ref.records()[s].truncation_error);
  }
  expect_bitwise_equal(ref.psi(), revived.psi());
}

}  // namespace

#include <gtest/gtest.h>

#include <set>

#include "models/lattice.hpp"
#include "support/error.hpp"

namespace {

using tt::models::Bond;
using tt::models::Lattice;

TEST(Lattice, ChainBasics) {
  Lattice c = tt::models::chain(5);
  EXPECT_EQ(c.num_sites, 5);
  EXPECT_EQ(c.bonds.size(), 4u);
  for (const Bond& b : c.bonds) EXPECT_EQ(b.type, 0);
  EXPECT_THROW(tt::models::chain(1), tt::Error);
}

TEST(Lattice, SiteOrderingColumnMajor) {
  Lattice lat = tt::models::square_cylinder(4, 3, false);
  EXPECT_EQ(lat.site(0, 0), 0);
  EXPECT_EQ(lat.site(0, 2), 2);
  EXPECT_EQ(lat.site(1, 0), 3);
  EXPECT_EQ(lat.site(3, 2), 11);
  // Periodic wrap in y.
  EXPECT_EQ(lat.site(2, 3), lat.site(2, 0));
  EXPECT_EQ(lat.site(2, -1), lat.site(2, 2));
}

TEST(Lattice, SquareCylinderBondCount) {
  // lx*ly vertical (periodic) + (lx-1)*ly horizontal.
  Lattice lat = tt::models::square_cylinder(4, 3, false);
  EXPECT_EQ(lat.num_sites, 12);
  EXPECT_EQ(lat.bonds.size(), static_cast<std::size_t>(4 * 3 + 3 * 3));
  EXPECT_EQ(lat.num_bonds(1), 0);
}

TEST(Lattice, J1J2CylinderDiagonalCount) {
  Lattice lat = tt::models::square_cylinder(4, 3, true);
  // Diagonals: 2 per (x,y) with x+1 < lx: 2*3*3 = 18.
  EXPECT_EQ(lat.num_bonds(1), 18);
  EXPECT_EQ(lat.num_bonds(0), 4 * 3 + 3 * 3);
}

TEST(Lattice, CircumferenceTwoDoesNotDuplicateBonds) {
  // With ly = 2, (x,0)-(x,1) and (x,1)-(x,0 mod 2) are the same bond.
  Lattice lat = tt::models::square_cylinder(3, 2, false);
  std::set<std::pair<int, int>> seen;
  for (const Bond& b : lat.bonds) {
    auto key = std::minmax(b.s1, b.s2);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate bond " << b.s1 << "-" << b.s2;
  }
  EXPECT_EQ(lat.num_bonds(0), 3 * 1 + 2 * 2);  // 3 rungs + 4 legs
}

TEST(Lattice, TriangularCoordinationIsSix) {
  // Away from the open edges every site has 6 neighbours.
  Lattice lat = tt::models::triangular_cylinder(6, 4);
  std::vector<int> degree(static_cast<std::size_t>(lat.num_sites), 0);
  for (const Bond& b : lat.bonds) {
    ++degree[static_cast<std::size_t>(b.s1)];
    ++degree[static_cast<std::size_t>(b.s2)];
  }
  for (int x = 1; x + 1 < lat.length; ++x)
    for (int y = 0; y < lat.circumference; ++y)
      EXPECT_EQ(degree[static_cast<std::size_t>(lat.site(x, y))], 6)
          << "site (" << x << "," << y << ")";
}

TEST(Lattice, TriangularAllBondsType0) {
  Lattice lat = tt::models::triangular_cylinder(4, 3);
  EXPECT_EQ(lat.num_bonds(1), 0);
  EXPECT_EQ(static_cast<int>(lat.bonds.size()), lat.num_bonds(0));
}

TEST(Lattice, BondEndpointsInRange) {
  for (const Lattice& lat :
       {tt::models::square_cylinder(5, 4, true), tt::models::triangular_cylinder(5, 4),
        tt::models::chain(9)}) {
    for (const Bond& b : lat.bonds) {
      EXPECT_GE(b.s1, 0);
      EXPECT_LT(b.s1, lat.num_sites);
      EXPECT_GE(b.s2, 0);
      EXPECT_LT(b.s2, lat.num_sites);
      EXPECT_NE(b.s1, b.s2);
    }
  }
}

TEST(Lattice, RenderMentionsShapeAndSites) {
  Lattice lat = tt::models::square_cylinder(4, 3, true);
  const std::string art = tt::models::render(lat);
  EXPECT_NE(art.find("4 columns"), std::string::npos);
  EXPECT_NE(art.find("12 sites"), std::string::npos);
  EXPECT_NE(art.find("11"), std::string::npos);  // last site id appears
}

TEST(Lattice, PaperGeometries) {
  // The paper's 20x10 J1-J2 cylinder and 6x6 triangular cylinder (XC6).
  Lattice spins = tt::models::square_cylinder(20, 10, true);
  EXPECT_EQ(spins.num_sites, 200);
  Lattice electrons = tt::models::triangular_cylinder(6, 6);
  EXPECT_EQ(electrons.num_sites, 36);
}

}  // namespace

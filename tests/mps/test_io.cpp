#include <gtest/gtest.h>

#include <sstream>

#include "models/electron.hpp"
#include "models/heisenberg.hpp"
#include "models/hubbard.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/io.hpp"
#include "mps/measure.hpp"

namespace {

using tt::Rng;
using tt::mps::Mpo;
using tt::mps::Mps;
using tt::symm::QN;

TEST(MpsIo, RoundTripPreservesStateExactly) {
  auto sites = tt::models::spin_half_sites(6);
  Rng rng(3);
  Mps psi = Mps::random(sites, QN(0), 10, rng);
  std::stringstream ss;
  tt::mps::write_mps(ss, psi);
  Mps back = tt::mps::read_mps(ss, sites);
  // Exact (hexfloat) round trip: overlap equals the squared norm to the bit.
  EXPECT_DOUBLE_EQ(tt::mps::overlap(psi, back), tt::mps::overlap(psi, psi));
  EXPECT_EQ(back.total_qn(), psi.total_qn());
  EXPECT_EQ(back.bond_dims(), psi.bond_dims());
}

TEST(MpsIo, ElectronStateRoundTrip) {
  auto sites = tt::models::electron_sites(5);
  Rng rng(4);
  Mps psi = Mps::random(sites, QN(5, 1), 8, rng);
  std::stringstream ss;
  tt::mps::write_mps(ss, psi);
  Mps back = tt::mps::read_mps(ss, sites);
  EXPECT_DOUBLE_EQ(tt::mps::overlap(psi, back), tt::mps::overlap(psi, psi));
}

TEST(MpsIo, RejectsWrongSiteCount) {
  auto sites = tt::models::spin_half_sites(4);
  Mps psi = Mps::product_state(sites, {0, 1, 0, 1});
  std::stringstream ss;
  tt::mps::write_mps(ss, psi);
  auto wrong = tt::models::spin_half_sites(6);
  EXPECT_THROW(tt::mps::read_mps(ss, wrong), tt::Error);
}

TEST(MpsIo, RejectsWrongSiteType) {
  auto sites = tt::models::spin_half_sites(4);
  Mps psi = Mps::product_state(sites, {0, 1, 0, 1});
  std::stringstream ss;
  tt::mps::write_mps(ss, psi);
  auto wrong = tt::models::electron_sites(4);
  EXPECT_THROW(tt::mps::read_mps(ss, wrong), tt::Error);
}

TEST(MpsIo, RejectsCorruptStream) {
  auto sites = tt::models::spin_half_sites(2);
  std::stringstream ss("GARBAGE 9");
  EXPECT_THROW(tt::mps::read_mps(ss, sites), tt::Error);
  std::stringstream truncated("TTMPS 1\n2 1\nTENSOR 3 ");
  EXPECT_THROW(tt::mps::read_mps(truncated, sites), tt::Error);
}

// The three header failure classes carry three distinct messages, so a
// reader pointed at the wrong file says what is wrong instead of a generic
// "corrupt" from deeper in the parse.
TEST(MpsIo, DistinguishesTruncationBadMagicAndBadVersion) {
  auto sites = tt::models::spin_half_sites(2);
  auto message_of = [&](const std::string& text) {
    std::stringstream ss(text);
    try {
      (void)tt::mps::read_mps(ss, sites);
    } catch (const tt::Error& e) {
      return std::string(e.what());
    }
    return std::string();
  };
  EXPECT_NE(message_of("").find("truncated"), std::string::npos);
  EXPECT_NE(message_of("TTMPO 1\n").find("magic"), std::string::npos);
  EXPECT_NE(message_of("TTMPS 7\n").find("version"), std::string::npos);
  EXPECT_NE(message_of("TTMPS 1\n").find("truncated"), std::string::npos);
}

TEST(MpsIo, TruncatedFileIsRejectedAtEveryCut) {
  // Chop a valid stream at several depths: header, index table, block
  // values. Every cut must surface as tt::Error, never a silent partial MPS.
  auto sites = tt::models::spin_half_sites(4);
  Rng rng(9);
  Mps psi = Mps::random(sites, QN(0), 6, rng);
  std::stringstream full;
  tt::mps::write_mps(full, psi);
  const std::string text = full.str();
  for (std::size_t cut :
       {text.size() / 8, text.size() / 3, text.size() / 2, 3 * text.size() / 4}) {
    std::stringstream part(text.substr(0, cut));
    EXPECT_THROW(tt::mps::read_mps(part, sites), tt::Error) << "cut " << cut;
  }
}

TEST(MpsIo, RejectsCorruptNumericToken) {
  auto sites = tt::models::spin_half_sites(2);
  Mps psi = Mps::product_state(sites, {0, 1});
  std::stringstream full;
  tt::mps::write_mps(full, psi);
  std::string text = full.str();
  // Damage the first hexfloat value token.
  const std::size_t pos = text.find("0x");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 2, "0z");
  std::stringstream bad(text);
  EXPECT_THROW(tt::mps::read_mps(bad, sites), tt::Error);
}

TEST(MpoIo, RejectsWrongMagicAndVersion) {
  auto sites = tt::models::spin_half_sites(2);
  std::stringstream wrong_kind("TTMPS 1\n");
  EXPECT_THROW(tt::mps::read_mpo(wrong_kind, sites), tt::Error);
  std::stringstream future("TTMPO 2\n");
  EXPECT_THROW(tt::mps::read_mpo(future, sites), tt::Error);
}

TEST(MpoIo, RoundTripPreservesMatrixElements) {
  auto lat = tt::models::chain(5);
  auto sites = tt::models::spin_half_sites(5);
  Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::stringstream ss;
  tt::mps::write_mpo(ss, h);
  Mpo back = tt::mps::read_mpo(ss, sites);
  EXPECT_EQ(back.bond_dims(), h.bond_dims());
  // Expectation on a probe state must be identical.
  Rng rng(5);
  Mps probe = Mps::random(sites, QN(1), 8, rng);
  EXPECT_DOUBLE_EQ(tt::mps::expectation(probe, back),
                   tt::mps::expectation(probe, h));
}

TEST(MpoIo, HubbardRoundTrip) {
  auto lat = tt::models::triangular_cylinder(2, 2);
  auto sites = tt::models::electron_sites(4);
  Mpo h = tt::models::hubbard_mpo(sites, lat, 1.0, 8.5);
  std::stringstream ss;
  tt::mps::write_mpo(ss, h);
  Mpo back = tt::mps::read_mpo(ss, sites);
  Mps probe = Mps::product_state(sites, {1, 2, 1, 2});
  EXPECT_DOUBLE_EQ(tt::mps::expectation(probe, back),
                   tt::mps::expectation(probe, h));
}

TEST(MpsIo, FileSaveLoad) {
  auto sites = tt::models::spin_half_sites(4);
  Rng rng(6);
  Mps psi = Mps::random(sites, QN(0), 6, rng);
  const std::string path = ::testing::TempDir() + "/tt_psi.mps";
  tt::mps::save_mps(path, psi);
  Mps back = tt::mps::load_mps(path, sites);
  EXPECT_DOUBLE_EQ(tt::mps::overlap(psi, back), tt::mps::overlap(psi, psi));
  EXPECT_THROW(tt::mps::load_mps("/nonexistent/dir/x.mps", sites), tt::Error);
}

}  // namespace

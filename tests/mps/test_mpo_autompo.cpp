#include <gtest/gtest.h>

#include <cmath>

#include "common/mpo_dense.hpp"
#include "models/electron.hpp"
#include "models/heisenberg.hpp"
#include "models/hubbard.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/autompo.hpp"

namespace {

using tt::index_t;
using tt::linalg::Matrix;
using tt::mps::AutoMpo;
using tt::mps::Mpo;

// Dense N-site Heisenberg chain Hamiltonian built by explicit Kronecker
// placement — an oracle independent of the MPO machinery.
Matrix dense_heisenberg_chain(int n, double j) {
  const index_t dim = index_t{1} << n;
  Matrix h(dim, dim);
  // basis: bit i (from the left / most significant) = site i; we use
  // state index p = Σ s_i 2^{n-1-i}, s_i = 0 for ↑, 1 for ↓.
  auto spin_of = [&](index_t p, int site) { return (p >> (n - 1 - site)) & 1; };
  for (index_t p = 0; p < dim; ++p) {
    for (int i = 0; i + 1 < n; ++i) {
      const auto si = spin_of(p, i);
      const auto sj = spin_of(p, i + 1);
      const double zi = si == 0 ? 0.5 : -0.5;
      const double zj = sj == 0 ? 0.5 : -0.5;
      h(p, p) += j * zi * zj;
      if (si != sj) {
        const index_t q = p ^ (index_t{1} << (n - 1 - i)) ^ (index_t{1} << (n - 2 - i));
        h(q, p) += 0.5 * j;
      }
    }
  }
  return h;
}

TEST(AutoMpo, HeisenbergChainMatrixElementsExact) {
  const int n = 5;
  auto sites = tt::models::spin_half_sites(n);
  auto lat = tt::models::chain(n);
  Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.0, /*rel_cutoff=*/0.0);
  Matrix got = tt::testing::mpo_to_dense_matrix(h);
  Matrix want = dense_heisenberg_chain(n, 1.0);
  EXPECT_LT(tt::linalg::max_abs_diff(got, want), 1e-12);
}

TEST(AutoMpo, CompressionPreservesMatrixElements) {
  const int n = 6;
  auto sites = tt::models::spin_half_sites(n);
  auto lat = tt::models::chain(n);
  Mpo exact = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.0, 0.0);
  Mpo comp = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.0, 1e-13);
  Matrix a = tt::testing::mpo_to_dense_matrix(exact);
  Matrix b = tt::testing::mpo_to_dense_matrix(comp);
  EXPECT_LT(tt::linalg::max_abs_diff(a, b), 1e-9);
}

TEST(AutoMpo, HeisenbergChainCompressesToBondDim5) {
  // The nearest-neighbour Heisenberg chain has the textbook k = 5 MPO; the
  // FSM construction already achieves it (terms cross each bond 3 at a time),
  // and compression must not grow it.
  const int n = 8;
  auto sites = tt::models::spin_half_sites(n);
  auto lat = tt::models::chain(n);
  Mpo exact = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.0, 0.0);
  EXPECT_EQ(exact.max_bond_dim(), 5);
  Mpo comp = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.0, 1e-13);
  EXPECT_EQ(comp.max_bond_dim(), 5);
}

TEST(AutoMpo, CompressionShrinksLongRangeFsm) {
  // On the J1–J2 cylinder many terms cross each bond; the FSM form is far
  // from optimal and compression must shrink it.
  auto lat = tt::models::square_cylinder(4, 3, true);
  auto sites = tt::models::spin_half_sites(lat.num_sites);
  Mpo exact = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.5, 0.0);
  Mpo comp = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.5, 1e-13);
  EXPECT_LT(comp.max_bond_dim(), exact.max_bond_dim());
}

TEST(AutoMpo, J1J2CylinderBondDimGrowsWithCircumference) {
  auto lat4 = tt::models::square_cylinder(4, 2, true);
  auto lat6 = tt::models::square_cylinder(4, 3, true);
  auto s4 = tt::models::spin_half_sites(lat4.num_sites);
  auto s6 = tt::models::spin_half_sites(lat6.num_sites);
  Mpo h4 = tt::models::heisenberg_mpo(s4, lat4, 1.0, 0.5);
  Mpo h6 = tt::models::heisenberg_mpo(s6, lat6, 1.0, 0.5);
  EXPECT_GT(h6.max_bond_dim(), h4.max_bond_dim());
}

TEST(AutoMpo, TwoSiteHubbardMatrixExact) {
  // 2-site Hubbard at t=1, U=4: compare every matrix element against the
  // explicit 16×16 construction in the product basis
  // {|0⟩,|↑⟩,|↓⟩,|↑↓⟩}⊗{...}, site-major JW ordering.
  auto sites = tt::models::electron_sites(2);
  auto lat = tt::models::chain(2);
  Mpo h = tt::models::hubbard_mpo(sites, lat, 1.0, 4.0, 0.0);
  Matrix got = tt::testing::mpo_to_dense_matrix(h);

  Matrix want(16, 16);
  // Diagonal U terms: states with a doubly-occupied site.
  for (index_t p = 0; p < 16; ++p) {
    const index_t s0 = p / 4, s1 = p % 4;
    want(p, p) += 4.0 * ((s0 == 3 ? 1 : 0) + (s1 == 3 ? 1 : 0));
  }
  // Hopping −t for each spin; signs from the JW ordering (1↑,1↓,2↑,2↓).
  // Enumerate with a tiny fermionic calculator: represent each product state
  // as 4 mode bits (m0=1↑, m1=1↓, m2=2↑, m3=2↓).
  auto state_bits = [](index_t s) {  // site state -> (up,dn)
    return std::pair<int, int>{(s == 1 || s == 3) ? 1 : 0, (s == 2 || s == 3) ? 1 : 0};
  };
  auto bits_state = [](int up, int dn) { return up && dn ? 3 : up ? 1 : dn ? 2 : 0; };
  for (index_t p = 0; p < 16; ++p) {
    const auto [u0, d0] = state_bits(p / 4);
    const auto [u1, d1] = state_bits(p % 4);
    int bits[4] = {u0, d0, u1, d1};
    // c†_a c_b with (a,b) mode pairs for up: (0,2),(2,0); dn: (1,3),(3,1).
    for (auto [a, b] : {std::pair<int, int>{0, 2}, {2, 0}, {1, 3}, {3, 1}}) {
      if (!bits[b] || bits[a]) continue;
      int sgn = 0;
      for (int m = 0; m < b; ++m) sgn += bits[m];
      int nb[4] = {bits[0], bits[1], bits[2], bits[3]};
      nb[b] = 0;
      for (int m = 0; m < a; ++m) sgn += nb[m];
      nb[a] = 1;
      const index_t q = bits_state(nb[0], nb[1]) * 4 + bits_state(nb[2], nb[3]);
      want(q, p) += (sgn % 2 ? 1.0 : -1.0);  // amplitude −t·(−1)^sgn, t = 1
    }
  }
  EXPECT_LT(tt::linalg::max_abs_diff(got, want), 1e-12);
}

TEST(AutoMpo, HubbardMpoIsSymmetric) {
  auto sites = tt::models::electron_sites(3);
  auto lat = tt::models::chain(3);
  Mpo h = tt::models::hubbard_mpo(sites, lat, 1.0, 8.5);
  Matrix m = tt::testing::mpo_to_dense_matrix(h);
  EXPECT_LT(tt::linalg::max_abs_diff(m, m.transposed()), 1e-10);
}

TEST(AutoMpo, FermionReorderingSign) {
  // Adding the h.c. partner in swapped factor order must produce the same
  // symmetric Hamiltonian (sign bookkeeping check).
  auto sites = tt::models::electron_sites(2);
  AutoMpo a(sites);
  a.add(-1.0, "Cdagup", 0, "Cup", 1);
  a.add(-1.0, "Cdagup", 1, "Cup", 0);  // sorted internally; sign applied
  Matrix m = tt::testing::mpo_to_dense_matrix(a.to_mpo(0.0));
  EXPECT_LT(tt::linalg::max_abs_diff(m, m.transposed()), 1e-13);
  // ⟨↑0|H|0↑⟩ = −t: states p=|↑⟩|0⟩ = 4·1, q=|0⟩|↑⟩ = 1.
  EXPECT_NEAR(m(4, 1), -1.0, 1e-13);
}

TEST(AutoMpo, LongRangeHoppingGetsJWString) {
  // Hopping across a middle site must insert the parity string: the sign of
  // the matrix element depends on the middle-site occupation.
  auto sites = tt::models::electron_sites(3);
  AutoMpo a(sites);
  a.add(-1.0, "Cdagup", 0, "Cup", 2);
  a.add(-1.0, "Cdagup", 2, "Cup", 0);
  Matrix m = tt::testing::mpo_to_dense_matrix(a.to_mpo(0.0));
  // |0, 0, ↑⟩ (p = 0*16+0*4+1 = 1) -> |↑,0,0⟩ (q = 16): middle empty: −t.
  EXPECT_NEAR(m(16, 1), -1.0, 1e-13);
  // Middle ↑-occupied: |0,↑,↑⟩ (p = 0*16+1*4+1 = 5) -> |↑,↑,0⟩ (q = 20): +t.
  EXPECT_NEAR(m(20, 5), +1.0, 1e-13);
  // Middle doubly-occupied: parity even again: −t. p = 0*16+3*4+1 = 13.
  EXPECT_NEAR(m(16 + 12, 13), -1.0, 1e-13);
}

TEST(AutoMpo, OnSiteProductsMerge) {
  // Two factors on the same site multiply: Sz·Sz = Id/4 for spin-1/2.
  auto sites = tt::models::spin_half_sites(2);
  AutoMpo a(sites);
  a.add(4.0, "Sz", 0, "Sz", 0);
  a.add(0.0, "Sz", 1);  // dropped
  EXPECT_EQ(a.num_terms(), 1u);
  Matrix m = tt::testing::mpo_to_dense_matrix(a.to_mpo(0.0));
  EXPECT_LT(tt::linalg::max_abs_diff(m, Matrix::identity(4)), 1e-13);
}

TEST(AutoMpo, RejectsInvalidTerms) {
  auto sites = tt::models::spin_half_sites(3);
  AutoMpo a(sites);
  a.add(1.0, "S+", 0, "S+", 1);  // raises total charge by 4
  EXPECT_THROW(a.to_mpo(0.0), tt::Error);
  AutoMpo b(sites);
  b.add(1.0, "Sz", 7);  // out of range
  EXPECT_THROW(b.to_mpo(0.0), tt::Error);
  AutoMpo c(sites);
  EXPECT_THROW(c.to_mpo(0.0), tt::Error);  // no terms
  auto esites = tt::models::electron_sites(3);
  AutoMpo d(esites);
  d.add(1.0, "Cdagup", 0, "Nup", 1);  // odd fermion parity (and charged)
  EXPECT_THROW(d.to_mpo(0.0), tt::Error);
}

TEST(Mpo, ConsistencyCheckedOnConstruction) {
  auto sites = tt::models::spin_half_sites(4);
  auto lat = tt::models::chain(4);
  Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  EXPECT_NO_THROW(h.check_consistency());
  EXPECT_EQ(h.size(), 4);
  EXPECT_EQ(h.bond_dims().size(), 3u);
}

TEST(Mpo, HubbardCompressionShrinksKSubstantially) {
  // Paper §VI.B: MPO compression matters for electrons. The triangular
  // cylinder MPO must compress well below its FSM size.
  auto lat = tt::models::triangular_cylinder(4, 3);
  auto sites = tt::models::electron_sites(lat.num_sites);
  Mpo exact = tt::models::hubbard_mpo(sites, lat, 1.0, 8.5, 0.0);
  Mpo comp = tt::models::hubbard_mpo(sites, lat, 1.0, 8.5, 1e-13);
  EXPECT_LT(comp.max_bond_dim(), exact.max_bond_dim() / 2);
}

}  // namespace

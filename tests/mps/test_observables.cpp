#include <gtest/gtest.h>

#include <cmath>

#include "dmrg/dmrg.hpp"
#include "ed/ed.hpp"
#include "models/electron.hpp"
#include "models/heisenberg.hpp"
#include "models/hubbard.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/observables.hpp"

namespace {

using tt::mps::Mps;
using tt::symm::QN;

// Ground state of the N-site Heisenberg chain via DMRG (tested elsewhere).
Mps heisenberg_ground(int n, tt::index_t m = 48) {
  auto sites = tt::models::spin_half_sites(n);
  auto lat = tt::models::chain(n);
  auto h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  tt::dmrg::Dmrg solver(Mps::product_state(sites, neel), h,
                        tt::dmrg::make_engine(tt::dmrg::EngineKind::kReference,
                                              {tt::rt::localhost(), 1, 1}));
  tt::dmrg::SweepParams p;
  p.max_m = m;
  p.davidson_iter = 4;
  p.davidson_subspace = 3;
  for (int s = 0; s < 6; ++s) solver.sweep(p);
  return solver.psi();
}

TEST(Correlation, TwoSiteSingletExactValues) {
  // Singlet (|↑↓⟩−|↓↑⟩)/√2: ⟨Sz_0 Sz_1⟩ = −1/4, ⟨S+_0 S-_1⟩ = −1/2.
  Mps psi = heisenberg_ground(2, 4);
  EXPECT_NEAR(tt::mps::correlation(psi, "Sz", 0, "Sz", 1), -0.25, 1e-9);
  EXPECT_NEAR(tt::mps::correlation(psi, "S+", 0, "S-", 1), -0.5, 1e-9);
  EXPECT_NEAR(tt::mps::correlation(psi, "S-", 0, "S+", 1), -0.5, 1e-9);
}

TEST(Correlation, SumOfBondCorrelatorsGivesEnergy) {
  // H = Σ SzSz + (S+S- + S-S+)/2: the bond correlators must sum to E.
  const int n = 8;
  Mps psi = heisenberg_ground(n);
  auto sites = psi.sites();
  auto lat = tt::models::chain(n);
  double e = 0.0;
  for (int i = 0; i + 1 < n; ++i) {
    e += tt::mps::correlation(psi, "Sz", i, "Sz", i + 1);
    e += 0.5 * tt::mps::correlation(psi, "S+", i, "S-", i + 1);
    e += 0.5 * tt::mps::correlation(psi, "S-", i, "S+", i + 1);
  }
  const double e_ed = tt::ed::heisenberg_ground_energy(lat, 1.0, 0.0, 0);
  EXPECT_NEAR(e, e_ed, 1e-6);
}

TEST(Correlation, OrderIndependentForCommutingOps) {
  Mps psi = heisenberg_ground(6);
  EXPECT_NEAR(tt::mps::correlation(psi, "Sz", 1, "Sz", 4),
              tt::mps::correlation(psi, "Sz", 4, "Sz", 1), 1e-10);
}

TEST(Correlation, AntiferromagneticSignStructure) {
  // Heisenberg ground state: ⟨Sz_i Sz_j⟩ alternates in sign with |i−j|.
  Mps psi = heisenberg_ground(8);
  const double c1 = tt::mps::correlation(psi, "Sz", 3, "Sz", 4);
  const double c2 = tt::mps::correlation(psi, "Sz", 3, "Sz", 5);
  EXPECT_LT(c1, 0.0);
  EXPECT_GT(c2, 0.0);
  EXPECT_GT(std::abs(c1), std::abs(c2));
}

TEST(Correlation, ProductStateFactorizes) {
  auto sites = tt::models::spin_half_sites(4);
  Mps neel = Mps::product_state(sites, {0, 1, 0, 1});
  EXPECT_NEAR(tt::mps::correlation(neel, "Sz", 0, "Sz", 1), -0.25, 1e-12);
  EXPECT_NEAR(tt::mps::connected_correlation(neel, "Sz", 0, "Sz", 1), 0.0, 1e-12);
}

TEST(Correlation, ChargedPairRequiresCancellingFluxes) {
  auto sites = tt::models::spin_half_sites(4);
  Mps neel = Mps::product_state(sites, {0, 1, 0, 1});
  EXPECT_THROW(tt::mps::correlation(neel, "S+", 0, "S+", 2), tt::Error);
  EXPECT_THROW(tt::mps::correlation(neel, "Sz", 1, "Sz", 1), tt::Error);  // i == j
}

TEST(Correlation, FermionHoppingMatchesFreeFermions) {
  // U = 0 Hubbard chain: ⟨c†_{iσ} c_{jσ}⟩ from the filled Fermi sea,
  // Σ_{k occ} φ_k(i)φ_k(j) with φ_k(i) = √(2/(N+1))·sin(kπ(i+1)/(N+1)).
  const int n = 4;
  auto sites = tt::models::electron_sites(n);
  auto lat = tt::models::chain(n);
  auto h = tt::models::hubbard_mpo(sites, lat, 1.0, 0.0);
  tt::dmrg::Dmrg solver(Mps::product_state(sites, {1, 2, 1, 2}), h,
                        tt::dmrg::make_engine(tt::dmrg::EngineKind::kReference,
                                              {tt::rt::localhost(), 1, 1}));
  tt::dmrg::SweepParams p;
  p.max_m = 64;
  p.davidson_iter = 6;
  p.davidson_subspace = 4;
  for (int s = 0; s < 10; ++s) solver.sweep(p);
  const Mps& psi = solver.psi();

  auto phi = [&](int k, int i) {
    return std::sqrt(2.0 / (n + 1)) * std::sin(M_PI * k * (i + 1) / (n + 1));
  };
  // Half filling: the two lowest ↑ levels are occupied,
  // ⟨c†_{i↑}c_{j↑}⟩ = Σ_{k=1,2} φ_k(i)φ_k(j).
  auto sea = [&](int i, int j) { return phi(1, i) * phi(1, j) + phi(2, i) * phi(2, j); };
  // Distance 1 (no string sites).
  EXPECT_NEAR(tt::mps::correlation(psi, "Cdagup", 0, "Cup", 1), sea(0, 1), 1e-5);
  // Distance 2 vanishes by momentum cancellation — a sign-sensitive zero.
  EXPECT_NEAR(tt::mps::correlation(psi, "Cdagup", 0, "Cup", 2), sea(0, 2), 1e-5);
  EXPECT_NEAR(sea(0, 2), 0.0, 1e-12);
  // Distance 3 crosses two string sites and is negative.
  const double got3 = tt::mps::correlation(psi, "Cdagup", 0, "Cup", 3);
  EXPECT_NEAR(got3, sea(0, 3), 1e-5);
  EXPECT_LT(got3, 0.0);
  // Hermiticity of the hopping correlator.
  EXPECT_NEAR(tt::mps::correlation(psi, "Cdagup", 3, "Cup", 0), got3, 1e-6);
}

TEST(Entanglement, ProductStateHasZeroEntropy) {
  auto sites = tt::models::spin_half_sites(6);
  Mps neel = Mps::product_state(sites, {0, 1, 0, 1, 0, 1});
  for (int b = 0; b + 1 < 6; ++b)
    EXPECT_NEAR(tt::mps::entanglement_entropy(neel, b), 0.0, 1e-12);
}

TEST(Entanglement, SingletHasLn2) {
  Mps psi = heisenberg_ground(2, 4);
  EXPECT_NEAR(tt::mps::entanglement_entropy(psi, 0), std::log(2.0), 1e-8);
}

TEST(Entanglement, SpectrumNormalizedAndSorted) {
  Mps psi = heisenberg_ground(8);
  auto spec = tt::mps::entanglement_spectrum(psi, 3);
  double total = 0.0;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    if (i) {
      EXPECT_LE(spec[i], spec[i - 1] + 1e-12);
    }
    total += spec[i] * spec[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-8);  // normalized state
}

TEST(Entanglement, MidChainLargestForCriticalChain) {
  // The Heisenberg chain is critical: entropy peaks at the center bond.
  Mps psi = heisenberg_ground(10);
  const double mid = tt::mps::entanglement_entropy(psi, 4);
  const double edge = tt::mps::entanglement_entropy(psi, 0);
  EXPECT_GT(mid, edge);
}

TEST(Entanglement, BondRangeChecked) {
  auto sites = tt::models::spin_half_sites(4);
  Mps neel = Mps::product_state(sites, {0, 1, 0, 1});
  EXPECT_THROW(tt::mps::entanglement_entropy(neel, 3), tt::Error);
  EXPECT_THROW(tt::mps::entanglement_entropy(neel, -1), tt::Error);
}

}  // namespace

#include <gtest/gtest.h>

#include "models/heisenberg.hpp"
#include "models/hubbard.hpp"
#include "models/electron.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/measure.hpp"

namespace {

using tt::Rng;
using tt::mps::Mpo;
using tt::mps::Mps;
using tt::symm::QN;

TEST(Measure, NeelStateHeisenbergEnergy) {
  // ⟨Néel|H|Néel⟩ on an open chain = −J/4 per bond (only SzSz contributes).
  const int n = 6;
  auto sites = tt::models::spin_half_sites(n);
  auto lat = tt::models::chain(n);
  Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  Mps neel = Mps::product_state(sites, {0, 1, 0, 1, 0, 1});
  EXPECT_NEAR(tt::mps::expectation(neel, h), -0.25 * (n - 1), 1e-12);
}

TEST(Measure, FerromagnetHeisenbergEnergy) {
  // All-up: +J/4 per bond.
  const int n = 5;
  auto sites = tt::models::spin_half_sites(n);
  auto lat = tt::models::chain(n);
  Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  Mps ferro = Mps::product_state(sites, std::vector<int>(n, 0));
  EXPECT_NEAR(tt::mps::expectation(ferro, h), 0.25 * (n - 1), 1e-12);
}

TEST(Measure, HubbardProductStateEnergies) {
  const int n = 4;
  auto sites = tt::models::electron_sites(n);
  auto lat = tt::models::chain(n);
  Mpo h = tt::models::hubbard_mpo(sites, lat, 1.0, 8.5);
  // Singly-occupied alternating state: no double occupancy, hopping has zero
  // diagonal expectation.
  Mps half = Mps::product_state(sites, {1, 2, 1, 2});
  EXPECT_NEAR(tt::mps::expectation(half, h), 0.0, 1e-11);
  // Two doublons: 2U.
  Mps doublons = Mps::product_state(sites, {3, 0, 3, 0});
  EXPECT_NEAR(tt::mps::expectation(doublons, h), 2.0 * 8.5, 1e-11);
}

TEST(Measure, ExpectationScalesWithNormSquared) {
  auto sites = tt::models::spin_half_sites(6);
  auto lat = tt::models::chain(6);
  Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0);
  Rng rng(3);
  Mps psi = Mps::random(sites, QN(0), 8, rng);
  const double e1 = tt::mps::expectation(psi, h);
  psi.site(2).scale(2.0);
  psi.set_center(-1);
  EXPECT_NEAR(tt::mps::expectation(psi, h), 4.0 * e1, 1e-9 * (1.0 + std::abs(e1)));
}

TEST(Measure, ExpectationInvariantUnderCanonicalization) {
  auto sites = tt::models::spin_half_sites(6);
  auto lat = tt::models::chain(6);
  Mpo h = tt::models::heisenberg_mpo(sites, lat, 1.0, 0.0);
  Rng rng(4);
  Mps psi = Mps::random(sites, QN(0), 8, rng);
  const double e0 = tt::mps::expectation(psi, h);
  psi.canonicalize(4);
  EXPECT_NEAR(tt::mps::expectation(psi, h), e0, 1e-9 * (1.0 + std::abs(e0)));
}

TEST(Measure, LocalSzOnProductState) {
  auto sites = tt::models::spin_half_sites(4);
  Mps psi = Mps::product_state(sites, {0, 1, 0, 1});
  EXPECT_NEAR(tt::mps::expect_local(psi, "Sz", 0), 0.5, 1e-12);
  EXPECT_NEAR(tt::mps::expect_local(psi, "Sz", 1), -0.5, 1e-12);
}

TEST(Measure, LocalDensityOnElectronState) {
  auto sites = tt::models::electron_sites(3);
  Mps psi = Mps::product_state(sites, {3, 1, 0});  // |↑↓⟩|↑⟩|0⟩
  EXPECT_NEAR(tt::mps::expect_local(psi, "Ntot", 0), 2.0, 1e-12);
  EXPECT_NEAR(tt::mps::expect_local(psi, "Ntot", 1), 1.0, 1e-12);
  EXPECT_NEAR(tt::mps::expect_local(psi, "Ntot", 2), 0.0, 1e-12);
  EXPECT_NEAR(tt::mps::expect_local(psi, "Nupdn", 0), 1.0, 1e-12);
}

TEST(Measure, LocalChargedOperatorRejected) {
  auto sites = tt::models::spin_half_sites(2);
  Mps psi = Mps::product_state(sites, {0, 1});
  EXPECT_THROW(tt::mps::expect_local(psi, "S+", 0), tt::Error);
}

TEST(Measure, SumOfLocalSzEqualsTotalCharge) {
  auto sites = tt::models::spin_half_sites(6);
  Rng rng(5);
  Mps psi = Mps::random(sites, QN(2), 6, rng);  // 2Sz_tot = 2
  double total = 0.0;
  for (int j = 0; j < 6; ++j) total += tt::mps::expect_local(psi, "Sz", j);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "models/electron.hpp"
#include "models/spin_half.hpp"
#include "mps/measure.hpp"
#include "mps/mps.hpp"
#include "symm/block_ops.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::mps::Mps;
using tt::symm::BlockTensor;
using tt::symm::QN;

TEST(MpsProductState, StructureAndNorm) {
  auto sites = tt::models::spin_half_sites(6);
  // Néel state ↑↓↑↓↑↓.
  Mps psi = Mps::product_state(sites, {0, 1, 0, 1, 0, 1});
  psi.check_consistency();
  EXPECT_EQ(psi.size(), 6);
  EXPECT_EQ(psi.max_bond_dim(), 1);
  EXPECT_EQ(psi.total_qn(), QN(0));
  EXPECT_NEAR(psi.norm(), 1.0, 1e-14);
}

TEST(MpsProductState, TotalChargeAccumulates) {
  auto sites = tt::models::spin_half_sites(4);
  Mps psi = Mps::product_state(sites, {0, 0, 0, 1});  // ↑↑↑↓: 2Sz = 2
  EXPECT_EQ(psi.total_qn(), QN(2));
}

TEST(MpsProductState, ElectronFilling) {
  auto sites = tt::models::electron_sites(4);
  // |↑⟩|↓⟩|↑⟩|↓⟩: N = 4, 2Sz = 0.
  Mps psi = Mps::product_state(sites, {1, 2, 1, 2});
  EXPECT_EQ(psi.total_qn(), QN(4, 0));
  psi.check_consistency();
}

TEST(MpsProductState, OverlapOrthogonality) {
  auto sites = tt::models::spin_half_sites(4);
  Mps a = Mps::product_state(sites, {0, 1, 0, 1});
  Mps b = Mps::product_state(sites, {0, 1, 1, 0});  // same sector, different state
  EXPECT_NEAR(tt::mps::overlap(a, a), 1.0, 1e-14);
  EXPECT_NEAR(tt::mps::overlap(a, b), 0.0, 1e-14);
}

TEST(MpsProductState, CrossSectorOverlapRejected) {
  auto sites = tt::models::spin_half_sites(2);
  Mps a = Mps::product_state(sites, {0, 1});
  Mps b = Mps::product_state(sites, {0, 0});
  EXPECT_THROW(tt::mps::overlap(a, b), tt::Error);
}

TEST(MpsRandom, RespectsBondCapAndSector) {
  auto sites = tt::models::spin_half_sites(8);
  Rng rng(5);
  Mps psi = Mps::random(sites, QN(0), 8, rng);
  psi.check_consistency();
  EXPECT_EQ(psi.total_qn(), QN(0));
  EXPECT_LE(psi.max_bond_dim(), 8 + 4);  // proportional rounding slack
  EXPECT_GT(psi.max_bond_dim(), 1);
  EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
}

TEST(MpsRandom, ElectronTwoChargeSector) {
  auto sites = tt::models::electron_sites(6);
  Rng rng(6);
  Mps psi = Mps::random(sites, QN(6, 0), 12, rng);
  psi.check_consistency();
  EXPECT_EQ(psi.total_qn(), QN(6, 0));
  EXPECT_NEAR(psi.norm(), 1.0, 1e-12);
  // Two U(1) charges should make middle bonds multi-sector (cf. paper Fig 2a).
  const BlockTensor& mid = psi.site(3);
  EXPECT_GT(mid.index(0).num_sectors(), 2);
}

TEST(MpsRandom, UnreachableSectorThrows) {
  auto sites = tt::models::spin_half_sites(3);
  Rng rng(7);
  EXPECT_THROW(Mps::random(sites, QN(0), 4, rng), tt::Error);  // odd N: 2Sz=0 unreachable
}

TEST(MpsCanonicalize, LeftSitesAreIsometries) {
  auto sites = tt::models::spin_half_sites(6);
  Rng rng(8);
  Mps psi = Mps::random(sites, QN(0), 10, rng);
  psi.canonicalize(3);
  EXPECT_EQ(psi.center(), 3);
  // Sites left of the center: contracting with own dagger over (l,s) gives 1.
  for (int j = 0; j < 3; ++j) {
    BlockTensor g =
        tt::symm::contract(psi.site(j).dagger(), psi.site(j), {{0, 0}, {1, 1}});
    for (const auto& [key, blk] : g.blocks()) {
      ASSERT_EQ(key[0], key[1]);
      for (index_t a = 0; a < blk.dim(0); ++a)
        for (index_t b = 0; b < blk.dim(1); ++b)
          EXPECT_NEAR(blk.at({a, b}), a == b ? 1.0 : 0.0, 1e-10) << "site " << j;
    }
  }
  // Sites right of the center: contraction over (s,r) gives 1.
  for (int j = 4; j < 6; ++j) {
    BlockTensor g =
        tt::symm::contract(psi.site(j), psi.site(j).dagger(), {{1, 1}, {2, 2}});
    for (const auto& [key, blk] : g.blocks()) {
      ASSERT_EQ(key[0], key[1]);
      for (index_t a = 0; a < blk.dim(0); ++a)
        for (index_t b = 0; b < blk.dim(1); ++b)
          EXPECT_NEAR(blk.at({a, b}), a == b ? 1.0 : 0.0, 1e-10) << "site " << j;
    }
  }
}

TEST(MpsCanonicalize, PreservesTheState) {
  auto sites = tt::models::spin_half_sites(6);
  Rng rng(9);
  Mps psi = Mps::random(sites, QN(0), 10, rng);
  Mps orig = psi;
  psi.canonicalize(0);
  psi.canonicalize(5);
  psi.canonicalize(2);
  // ⟨orig|psi⟩ should remain |orig|² (= 1 after normalization).
  EXPECT_NEAR(tt::mps::overlap(orig, psi), tt::mps::overlap(orig, orig), 1e-10);
}

TEST(MpsCanonicalize, NormFromCenterMatchesFullContraction) {
  auto sites = tt::models::spin_half_sites(5);
  Rng rng(10);
  Mps psi = Mps::random(sites, QN(1), 6, rng);
  psi.site(2).scale(1.7);  // denormalize
  psi.set_center(-1);
  const double full = psi.norm();
  psi.canonicalize(2);
  EXPECT_NEAR(psi.norm(), full, 1e-10 * (1.0 + full));
}

TEST(MpsNormalize, MakesUnitNorm) {
  auto sites = tt::models::spin_half_sites(4);
  Rng rng(11);
  Mps psi = Mps::random(sites, QN(0), 4, rng);
  psi.site(1).scale(3.0);
  psi.set_center(-1);
  psi.normalize();
  EXPECT_NEAR(std::sqrt(tt::mps::overlap(psi, psi)), 1.0, 1e-10);
}

TEST(Mps, BondDimsReporting) {
  auto sites = tt::models::spin_half_sites(5);
  Rng rng(12);
  Mps psi = Mps::random(sites, QN(1), 6, rng);
  auto dims = psi.bond_dims();
  EXPECT_EQ(dims.size(), 4u);
  for (std::size_t j = 0; j < dims.size(); ++j)
    EXPECT_EQ(dims[j], psi.bond_dim(static_cast<int>(j)));
}

}  // namespace

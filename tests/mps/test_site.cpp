#include <gtest/gtest.h>

#include "linalg/gemm.hpp"
#include "models/electron.hpp"
#include "models/spin_half.hpp"
#include "support/error.hpp"

namespace {

using tt::linalg::Matrix;
using tt::linalg::matmul;
using tt::linalg::max_abs_diff;
using tt::mps::LocalOp;

TEST(SpinHalfSites, BasicStructure) {
  auto s = tt::models::spin_half_sites(4);
  EXPECT_EQ(s->size(), 4);
  EXPECT_EQ(s->phys_dim(), 2);
  EXPECT_EQ(s->qn_rank(), 1);
  EXPECT_TRUE(s->has_op("Sz"));
  EXPECT_TRUE(s->has_op("Id"));
  EXPECT_FALSE(s->has_op("Sx"));  // violates U(1); deliberately absent
  EXPECT_THROW(s->op("Sx"), tt::Error);
}

TEST(SpinHalfSites, StateCharges) {
  auto s = tt::models::spin_half_sites(2);
  EXPECT_EQ(s->qn_of_state(0), tt::symm::QN(1));   // ↑
  EXPECT_EQ(s->qn_of_state(1), tt::symm::QN(-1));  // ↓
  EXPECT_THROW(s->qn_of_state(2), tt::Error);
}

TEST(SpinHalfSites, SpinAlgebra) {
  auto s = tt::models::spin_half_sites(2);
  const Matrix& sp = s->op("S+").mat;
  const Matrix& sm = s->op("S-").mat;
  const Matrix& sz = s->op("Sz").mat;
  // [S+, S-] = 2 Sz
  Matrix comm = matmul(sp, sm);
  comm -= matmul(sm, sp);
  Matrix two_sz = sz;
  two_sz *= 2.0;
  EXPECT_LT(max_abs_diff(comm, two_sz), 1e-14);
  // [Sz, S+] = +S+
  Matrix comm2 = matmul(sz, sp);
  comm2 -= matmul(sp, sz);
  EXPECT_LT(max_abs_diff(comm2, sp), 1e-14);
  // Casimir: Sz² + (S+S- + S-S+)/2 = 3/4.
  Matrix casimir = matmul(sz, sz);
  Matrix pm = matmul(sp, sm);
  pm += matmul(sm, sp);
  pm *= 0.5;
  casimir += pm;
  Matrix expect(2, 2);
  expect(0, 0) = expect(1, 1) = 0.75;
  EXPECT_LT(max_abs_diff(casimir, expect), 1e-14);
}

TEST(ElectronSites, BasicStructure) {
  auto s = tt::models::electron_sites(3);
  EXPECT_EQ(s->phys_dim(), 4);
  EXPECT_EQ(s->qn_rank(), 2);
  for (const char* op : {"Cup", "Cdn", "Cdagup", "Cdagdn"})
    EXPECT_TRUE(s->op(op).fermionic) << op;
  for (const char* op : {"Nup", "Ndn", "F", "Id", "Sz"})
    EXPECT_FALSE(s->op(op).fermionic) << op;
}

TEST(ElectronSites, NumberOperatorsFromLadders) {
  auto s = tt::models::electron_sites(2);
  // c†σ cσ = nσ
  Matrix nup = matmul(s->op("Cdagup").mat, s->op("Cup").mat);
  EXPECT_LT(max_abs_diff(nup, s->op("Nup").mat), 1e-14);
  Matrix ndn = matmul(s->op("Cdagdn").mat, s->op("Cdn").mat);
  EXPECT_LT(max_abs_diff(ndn, s->op("Ndn").mat), 1e-14);
}

TEST(ElectronSites, OnSiteAnticommutation) {
  auto s = tt::models::electron_sites(2);
  // {cσ, c†σ} = 1 on site.
  for (const char* pair : {"up", "dn"}) {
    const std::string c = std::string("C") + pair;
    const std::string cd = std::string("Cdag") + pair;
    Matrix anti = matmul(s->op(c).mat, s->op(cd).mat);
    anti += matmul(s->op(cd).mat, s->op(c).mat);
    EXPECT_LT(max_abs_diff(anti, s->op("Id").mat), 1e-14) << pair;
  }
  // {c↑, c↓} = 0 and {c↑, c†↓} = 0 with the intra-site string in Cdn.
  Matrix a1 = matmul(s->op("Cup").mat, s->op("Cdn").mat);
  a1 += matmul(s->op("Cdn").mat, s->op("Cup").mat);
  EXPECT_LT(a1.max_abs(), 1e-14);
  Matrix a2 = matmul(s->op("Cup").mat, s->op("Cdagdn").mat);
  a2 += matmul(s->op("Cdagdn").mat, s->op("Cup").mat);
  EXPECT_LT(a2.max_abs(), 1e-14);
}

TEST(ElectronSites, ParityAnticommutesWithLadders) {
  auto s = tt::models::electron_sites(2);
  for (const char* name : {"Cup", "Cdn", "Cdagup", "Cdagdn"}) {
    Matrix fc = matmul(s->op("F").mat, s->op(name).mat);
    Matrix cf = matmul(s->op(name).mat, s->op("F").mat);
    fc += cf;
    EXPECT_LT(fc.max_abs(), 1e-14) << name;  // {F, c} = 0
  }
}

TEST(SiteSet, MultiplyComposesFluxAndParity) {
  auto s = tt::models::electron_sites(2);
  LocalOp prod = s->multiply(s->op("Cdagup"), s->op("Cup"));
  EXPECT_TRUE(prod.flux.is_zero());
  EXPECT_FALSE(prod.fermionic);
  LocalOp odd = s->multiply(s->op("Cdagup"), s->op("Nup"));
  EXPECT_TRUE(odd.fermionic);
  EXPECT_EQ(odd.flux, tt::symm::QN(1, 1));
}

TEST(SiteSet, RejectsFluxViolatingOperator) {
  // An operator whose matrix does not match its declared flux must be caught.
  using tt::symm::Dir;
  using tt::symm::Index;
  using tt::symm::QN;
  Index phys({{QN(1), 1}, {QN(-1), 1}}, Dir::In);
  Matrix bad(2, 2);
  bad(0, 1) = 1.0;  // raises charge by 2
  std::map<std::string, LocalOp> ops;
  ops["Bad"] = {bad, QN(0), false};  // declared neutral — wrong
  EXPECT_THROW(tt::mps::SiteSet(2, phys, std::move(ops)), tt::Error);
}

}  // namespace

// Scope fixture: ordered-iteration and no-wallclock-random are src/-only
// contracts — tests may shuffle and sample freely, so nothing here flags for
// those rules. check-macro still applies everywhere. Never compiled.
#include <random>
#include <unordered_map>

#include "support/error.hpp"

namespace fixture {

double tests_may_do_this() {
  std::unordered_map<int, double> m;  // no finding: tests scope
  std::random_device rd;              // no finding: tests scope
  double total = static_cast<double>(rd());
  for (const auto& kv : m) total += kv.second;  // no finding: tests scope
  TT_CHECK(total >= 0.0);  // EXPECT(check-macro)
  return total;
}

}  // namespace fixture

// Seeded violation for the raw-cast-audit rule: reinterpret_cast outside the
// serialization layer. Never compiled.
#include <cstdint>

namespace fixture {

double type_pun(const std::uint64_t* bits) {
  return *reinterpret_cast<const double*>(bits);  // EXPECT(raw-cast-audit)
}

}  // namespace fixture

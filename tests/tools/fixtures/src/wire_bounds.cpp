// Seeded violations for the wire-bounds rule: lengths read off the wire must
// be TT_CHECK-bounded before they size an allocation. Never compiled.
#include <cstdint>
#include <vector>

#include "runtime/wire.hpp"
#include "support/error.hpp"

namespace fixture {

void parse(const std::vector<std::byte>& payload) {
  tt::rt::WireReader r(payload);

  const std::uint64_t bad_n = r.u64();
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(bad_n));  // EXPECT(wire-bounds)

  const std::uint64_t bad_m = r.u64();
  v.resize(static_cast<std::size_t>(bad_m));  // EXPECT(wire-bounds)

  // Validated first: this is the pattern the rule wants, and must NOT flag.
  const std::uint64_t good_n = r.u64();
  TT_CHECK(good_n <= r.remaining() / 8, "frame claims " << good_n << " entries");
  std::vector<double> ok;
  ok.reserve(static_cast<std::size_t>(good_n));
}

}  // namespace fixture

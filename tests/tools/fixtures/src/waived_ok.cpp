// One properly waived instance of each rule: this file must lint clean, and
// every waiver below must count as used (no unused-waiver findings either).
// Never compiled.
#include <cstdint>
#include <random>
#include <unordered_map>

#include "runtime/wire.hpp"
#include "support/error.hpp"

namespace fixture {

struct Interner {
  // tt-lint: allow(ordered-iteration) lookup-only: never iterated, order cannot leak
  std::unordered_map<std::uint64_t, int> index;
};

double waived(const Interner& in, const std::uint64_t* bits) {
  // tt-lint: allow(ordered-iteration) drained into a sorted vector by the caller
  for (const auto& kv : in.index) (void)kv;

  // tt-lint: allow(no-wallclock-random) fixture demonstrating the waiver form
  std::mt19937_64 unseeded;

  // tt-lint: allow(raw-cast-audit) fixture demonstrating the waiver form
  const double d = *reinterpret_cast<const double*>(bits);

  // tt-lint: allow(check-macro) fixture demonstrating the waiver form
  TT_CHECK(d > 0.0);
  return d + static_cast<double>(unseeded());
}

}  // namespace fixture

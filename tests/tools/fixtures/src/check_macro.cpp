// Seeded violations for the check-macro rule. Never compiled.
#include "support/error.hpp"

namespace fixture {

int compute();

void checks(int n, int limit) {
  TT_CHECK(n < limit);  // EXPECT(check-macro)
  TT_CHECK(n < limit, "");  // EXPECT(check-macro)
  TT_CHECK(n++ < limit, "post-increment in the condition");  // EXPECT(check-macro)
  TT_CHECK(n = compute(), "assignment in the condition");  // EXPECT(check-macro)
  TT_FAIL();  // EXPECT(check-macro)

  // Clean forms that must NOT flag: comparison operators and compound
  // conditions are not side effects, and multi-line messages are fine.
  TT_CHECK(n <= limit && n >= -limit, "n " << n << " outside [-" << limit
                                           << ", " << limit << "]");
  TT_ASSERT(n != limit, "boundary value " << n);
}

}  // namespace fixture

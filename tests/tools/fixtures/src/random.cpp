// Seeded violations for the no-wallclock-random rule. Never compiled.
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

double noise() {
  std::random_device rd;                         // EXPECT(no-wallclock-random)
  std::mt19937_64 unseeded;                      // EXPECT(no-wallclock-random)
  std::default_random_engine meh(1);             // EXPECT(no-wallclock-random)
  srand(static_cast<unsigned>(time(nullptr)));   // EXPECT(no-wallclock-random) EXPECT(no-wallclock-random)
  const int r = rand();                          // EXPECT(no-wallclock-random)
  const auto t = std::chrono::system_clock::now();  // EXPECT(no-wallclock-random)
  (void)t;
  return static_cast<double>(r) + static_cast<double>(rd()) +
         static_cast<double>(unseeded());

  // Explicitly seeded engines are the sanctioned pattern and must NOT flag.
  // std::mt19937_64 good(0x5eedULL);
}

}  // namespace fixture

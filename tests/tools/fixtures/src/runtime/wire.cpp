// Mirrors the real serialization layer's path (src/runtime/wire.cpp), which
// is on the raw-cast-audit allowlist: casts here must NOT flag. Never compiled.
#include <cstddef>
#include <cstdint>

namespace fixture {

const std::byte* as_bytes(const double* p) {
  return reinterpret_cast<const std::byte*>(p);  // allowlisted: no finding
}

}  // namespace fixture

// Seeded violations for the ordered-iteration rule. Each flagged line carries
// an inline expectation marker consumed by tests/tools/test_tt_lint.py; this
// file is lint fodder, never compiled.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Stats {
  std::unordered_map<int, double> per_bin;  // EXPECT(ordered-iteration)
};

double sum_in_hash_order(const Stats& s) {
  std::unordered_set<int> seen;  // EXPECT(ordered-iteration)
  double total = 0.0;
  for (const auto& kv : s.per_bin) {  // EXPECT(ordered-iteration)
    total += kv.second;
  }
  auto it = seen.begin();  // EXPECT(ordered-iteration)
  (void)it;
  return total;
}

}  // namespace fixture

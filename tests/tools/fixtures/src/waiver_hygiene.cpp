// Waiver-hygiene violations: waivers must name real rules, carry a reason,
// and actually suppress something. EXPECT-NEXT markers anchor a finding to
// the following line (the waiver comment itself). Never compiled.
#include <cstdint>

namespace fixture {

const double* suppressed_but_unjustified(const std::uint64_t* bits) {
  // EXPECT-NEXT(bare-waiver)
  // tt-lint: allow(raw-cast-audit)
  return reinterpret_cast<const double*>(bits);
}

// EXPECT-NEXT(unknown-rule)
// tt-lint: allow(made-up-rule) reasons do not legitimize unknown rules
int unknown_rule_waiver();

// EXPECT-NEXT(unused-waiver)
// tt-lint: allow(check-macro) suppresses nothing below
int unused_waiver();

}  // namespace fixture

#!/usr/bin/env python3
"""Golden tests for tools/tt_lint.py, run as the `tools/tt_lint` ctest entry.

Three layers:
  1. The real tree lints clean (exit 0) — the determinism contract holds on
     every commit, not just the one that introduced the linter.
  2. The fixture mini-repo under tests/tools/fixtures/ (its own src/ and
     tests/ so per-rule scoping is exercised) produces EXACTLY the findings
     marked inline: `EXPECT(rule)` anchors a finding to its own line,
     `EXPECT-NEXT(rule)` to the following line. Extra or missing findings
     both fail.
  3. Each violating fixture, linted alone, exits non-zero — seeded
     violations cannot pass individually either.

Usage: test_tt_lint.py <repo-root>
"""

import os
import re
import subprocess
import sys
from collections import Counter

EXPECT_RE = re.compile(r"EXPECT\(([a-z\-]+)\)")
EXPECT_NEXT_RE = re.compile(r"EXPECT-NEXT\(([a-z\-]+)\)")
FINDING_RE = re.compile(r"^(.*?):(\d+): \[([a-z\-]+)\]")


def run_lint(repo_root, args):
    tool = os.path.join(repo_root, "tools", "tt_lint.py")
    return subprocess.run(
        [sys.executable, tool, "--repo-root"] + args,
        capture_output=True, text=True)


def collect_expected(fixture_root):
    expected = Counter()
    for dirpath, _, filenames in os.walk(fixture_root):
        for fn in sorted(filenames):
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, fixture_root)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    for m in EXPECT_RE.finditer(line):
                        expected[(rel, lineno, m.group(1))] += 1
                    for m in EXPECT_NEXT_RE.finditer(line):
                        expected[(rel, lineno + 1, m.group(1))] += 1
    return expected


def parse_findings(stdout):
    found = Counter()
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found[(m.group(1), int(m.group(2)), m.group(3))] += 1
    return found


def fail(msg):
    print("FAIL:", msg)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: test_tt_lint.py <repo-root>")
    repo_root = os.path.abspath(sys.argv[1])
    fixture_root = os.path.join(repo_root, "tests", "tools", "fixtures")

    # 1. The real tree is clean.
    res = run_lint(repo_root, [repo_root, "src", "tests"])
    if res.returncode != 0:
        fail("real tree should lint clean but exited %d:\n%s"
             % (res.returncode, res.stdout + res.stderr))
    print("PASS: real tree lints clean")

    # 2. Fixture findings match the inline EXPECT markers exactly.
    expected = collect_expected(fixture_root)
    if not expected:
        fail("no EXPECT markers found under %s" % fixture_root)
    res = run_lint(repo_root, [fixture_root, "src", "tests"])
    if res.returncode == 0:
        fail("fixture tree should produce findings but linted clean")
    found = parse_findings(res.stdout)
    if found != expected:
        missing = expected - found
        extra = found - expected
        lines = []
        for key, n in sorted(missing.items()):
            lines.append("  missing (%dx): %s:%d [%s]" % (n, *key))
        for key, n in sorted(extra.items()):
            lines.append("  unexpected (%dx): %s:%d [%s]" % (n, *key))
        fail("fixture findings diverge from EXPECT markers:\n" + "\n".join(lines))
    print("PASS: fixture findings match %d EXPECT markers exactly"
          % sum(expected.values()))

    # 3. Every violating fixture fails on its own.
    violating = sorted({rel for (rel, _, _) in expected})
    for rel in violating:
        res = run_lint(repo_root, [fixture_root, rel])
        if res.returncode == 0:
            fail("fixture %s should exit non-zero when linted alone" % rel)
    print("PASS: each of %d violating fixtures fails individually"
          % len(violating))

    # 4. Clean fixtures (waived/allowlisted) pass alone: waivers suppress.
    for rel in ("src/waived_ok.cpp", os.path.join("src", "runtime", "wire.cpp")):
        res = run_lint(repo_root, [fixture_root, rel])
        if res.returncode != 0:
            fail("fixture %s should lint clean:\n%s" % (rel, res.stdout))
    print("PASS: waived and allowlisted fixtures lint clean")

    print("OK")


if __name__ == "__main__":
    main()

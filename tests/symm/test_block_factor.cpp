#include <gtest/gtest.h>

#include <cmath>

#include "symm/block_factor.hpp"
#include "symm/block_ops.hpp"
#include "symm/fuse.hpp"
#include "tensor/einsum.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::symm::BlockTensor;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;
using tt::symm::TruncParams;

Index even_bond(Dir d) { return Index({{QN(-2), 2}, {QN(0), 3}, {QN(2), 1}}, d); }
Index odd_bond(Dir d) { return Index({{QN(-1), 2}, {QN(1), 2}, {QN(3), 1}}, d); }
Index phys(Dir d) { return Index({{QN(-1), 1}, {QN(1), 1}}, d); }

BlockTensor site(Rng& rng) {
  return BlockTensor::random({even_bond(Dir::In), phys(Dir::In), odd_bond(Dir::Out)},
                             QN::zero(1), rng);
}

// Two-site tensor theta(l, s1, s2, r).
BlockTensor theta(Rng& rng) {
  BlockTensor a = site(rng);
  BlockTensor b = BlockTensor::random(
      {odd_bond(Dir::In), phys(Dir::In), even_bond(Dir::Out)}, QN::zero(1), rng);
  return tt::symm::contract(a, b, {{2, 0}});
}

// Checks Q†Q = 1 on the bond: contract Q's dagger with Q over the row modes.
void expect_isometry_columns(const BlockTensor& q, const std::vector<int>& row_modes) {
  std::vector<std::pair<int, int>> pairs;
  for (int m : row_modes) pairs.emplace_back(m, m);
  BlockTensor g = tt::symm::contract(q.dagger(), q, pairs);
  ASSERT_EQ(g.order(), 2);
  for (const auto& [key, blk] : g.blocks()) {
    ASSERT_EQ(key[0], key[1]);  // charge-diagonal
    for (index_t i = 0; i < blk.dim(0); ++i)
      for (index_t j = 0; j < blk.dim(1); ++j)
        EXPECT_NEAR(blk.at({i, j}), i == j ? 1.0 : 0.0, 1e-10);
  }
}

// Checks QQ† = 1: orthonormal rows over the trailing col modes.
void expect_isometry_rows(const BlockTensor& q, const std::vector<int>& col_modes) {
  std::vector<std::pair<int, int>> pairs;
  for (int m : col_modes) pairs.emplace_back(m, m);
  BlockTensor g = tt::symm::contract(q, q.dagger(), pairs);
  ASSERT_EQ(g.order(), 2);
  for (const auto& [key, blk] : g.blocks()) {
    ASSERT_EQ(key[0], key[1]);
    for (index_t i = 0; i < blk.dim(0); ++i)
      for (index_t j = 0; j < blk.dim(1); ++j)
        EXPECT_NEAR(blk.at({i, j}), i == j ? 1.0 : 0.0, 1e-10);
  }
}

TEST(BlockQr, ReconstructsInput) {
  Rng rng(31);
  BlockTensor a = site(rng);
  auto f = tt::symm::block_qr(a, {0, 1});
  BlockTensor qr = tt::symm::contract(f.q, f.r, {{2, 0}});
  EXPECT_LT(tt::symm::max_abs_diff(qr, a), 1e-10 * (1.0 + a.norm2()));
}

TEST(BlockQr, QIsIsometry) {
  Rng rng(32);
  BlockTensor a = site(rng);
  auto f = tt::symm::block_qr(a, {0, 1});
  expect_isometry_columns(f.q, {0, 1});
}

TEST(BlockQr, StructurePreservesMpsConvention) {
  Rng rng(33);
  BlockTensor a = site(rng);
  auto f = tt::symm::block_qr(a, {0, 1});
  // Q keeps (l In, s In, bond Out) and flux 0 — a valid MPS site.
  EXPECT_EQ(f.q.index(0).dir(), Dir::In);
  EXPECT_EQ(f.q.index(1).dir(), Dir::In);
  EXPECT_EQ(f.q.index(2).dir(), Dir::Out);
  EXPECT_TRUE(f.q.flux().is_zero());
  // R carries the original flux and a bond In leg.
  EXPECT_EQ(f.r.index(0).dir(), Dir::In);
  EXPECT_EQ(f.r.flux(), a.flux());
}

TEST(BlockLq, ReconstructsInput) {
  Rng rng(34);
  BlockTensor a = site(rng);
  auto f = tt::symm::block_lq(a, {0});
  BlockTensor lq = tt::symm::contract(f.l, f.q, {{1, 0}});
  EXPECT_LT(tt::symm::max_abs_diff(lq, a), 1e-10 * (1.0 + a.norm2()));
}

TEST(BlockLq, QHasOrthonormalRowsAndMpsConvention) {
  Rng rng(35);
  BlockTensor a = site(rng);
  auto f = tt::symm::block_lq(a, {0});
  expect_isometry_rows(f.q, {1, 2});
  // Q = (bond In, s In, r Out), flux 0 — valid MPS site.
  EXPECT_EQ(f.q.index(0).dir(), Dir::In);
  EXPECT_TRUE(f.q.flux().is_zero());
}

TEST(BlockSvd, FullRankReconstructs) {
  Rng rng(36);
  BlockTensor t = theta(rng);
  auto f = tt::symm::block_svd(t, {0, 1});
  BlockTensor usv = tt::symm::contract(f.u_times_s(), f.vt, {{2, 0}});
  EXPECT_LT(tt::symm::max_abs_diff(usv, t), 1e-9 * (1.0 + t.norm2()));
  EXPECT_NEAR(f.truncation_error, 0.0, 1e-18);
}

TEST(BlockSvd, FactorsAreIsometries) {
  Rng rng(37);
  BlockTensor t = theta(rng);
  auto f = tt::symm::block_svd(t, {0, 1});
  expect_isometry_columns(f.u, {0, 1});
  expect_isometry_rows(f.vt, {1, 2});
}

TEST(BlockSvd, SingularValuesSortedWithinSectors) {
  Rng rng(38);
  BlockTensor t = theta(rng);
  auto f = tt::symm::block_svd(t, {0, 1});
  for (const auto& sv : f.singular_values) {
    for (std::size_t i = 0; i + 1 < sv.size(); ++i) EXPECT_GE(sv[i], sv[i + 1]);
    for (double s : sv) EXPECT_GE(s, 0.0);
  }
}

TEST(BlockSvd, BondCapRespectedGlobally) {
  Rng rng(39);
  BlockTensor t = theta(rng);
  TruncParams tr;
  tr.max_dim = 3;
  auto f = tt::symm::block_svd(t, {0, 1}, tr);
  EXPECT_EQ(f.kept, 3);
  EXPECT_EQ(f.bond.dim(), 3);
  EXPECT_GT(f.truncation_error, 0.0);
}

TEST(BlockSvd, GlobalTruncationKeepsLargestAcrossSectors) {
  Rng rng(40);
  BlockTensor t = theta(rng);
  auto full = tt::symm::block_svd(t, {0, 1});
  // Pool all singular values, find the 3 largest.
  std::vector<double> all;
  for (const auto& sv : full.singular_values) all.insert(all.end(), sv.begin(), sv.end());
  std::sort(all.rbegin(), all.rend());

  TruncParams tr;
  tr.max_dim = 3;
  auto cut = tt::symm::block_svd(t, {0, 1}, tr);
  std::vector<double> kept;
  for (const auto& sv : cut.singular_values) kept.insert(kept.end(), sv.begin(), sv.end());
  std::sort(kept.rbegin(), kept.rend());
  ASSERT_EQ(kept.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(kept[static_cast<std::size_t>(i)],
                                          all[static_cast<std::size_t>(i)], 1e-10);
}

TEST(BlockSvd, TruncationErrorEqualsDiscardedWeight) {
  Rng rng(41);
  BlockTensor t = theta(rng);
  auto full = tt::symm::block_svd(t, {0, 1});
  std::vector<double> all;
  for (const auto& sv : full.singular_values) all.insert(all.end(), sv.begin(), sv.end());
  std::sort(all.rbegin(), all.rend());

  TruncParams tr;
  tr.max_dim = 4;
  auto cut = tt::symm::block_svd(t, {0, 1}, tr);
  double want = 0.0;
  for (std::size_t i = 4; i < all.size(); ++i) want += all[i] * all[i];
  EXPECT_NEAR(cut.truncation_error, want, 1e-9 * (1.0 + want));
}

TEST(BlockSvd, TruncationErrorBoundsReconstruction) {
  Rng rng(42);
  BlockTensor t = theta(rng);
  TruncParams tr;
  tr.max_dim = 2;
  auto f = tt::symm::block_svd(t, {0, 1}, tr);
  BlockTensor approx = tt::symm::contract(f.u_times_s(), f.vt, {{2, 0}});
  approx.axpy(-1.0, t);
  EXPECT_NEAR(approx.norm2(), std::sqrt(f.truncation_error),
              1e-8 * (1.0 + t.norm2()));
}

TEST(BlockSvd, CutoffDropsSmallValues) {
  Rng rng(43);
  BlockTensor t = theta(rng);
  t.scale(1e-3);
  TruncParams tr;
  tr.cutoff = 1e-2;  // larger than any singular value after scaling? keep >= 1
  auto f = tt::symm::block_svd(t, {0, 1}, tr);
  EXPECT_GE(f.kept, 1);  // never truncates to an empty bond
}

TEST(BlockSvd, AbsorbLeftVsRightConsistent) {
  Rng rng(44);
  BlockTensor t = theta(rng);
  auto f = tt::symm::block_svd(t, {0, 1});
  BlockTensor left = tt::symm::contract(f.u_times_s(), f.vt, {{2, 0}});
  BlockTensor right = tt::symm::contract(f.u, f.s_times_vt(), {{2, 0}});
  EXPECT_LT(tt::symm::max_abs_diff(left, right), 1e-10 * (1.0 + t.norm2()));
}

TEST(BlockSvd, ShapesReportedForCostModel) {
  Rng rng(45);
  BlockTensor t = theta(rng);
  auto f = tt::symm::block_svd(t, {0, 1});
  EXPECT_FALSE(f.shapes.empty());
  for (const auto& s : f.shapes) {
    EXPECT_GT(s.rows, 0);
    EXPECT_GT(s.cols, 0);
  }
}

TEST(BlockFactor, RejectsDegenerateBipartitions) {
  Rng rng(46);
  BlockTensor a = site(rng);
  EXPECT_THROW(tt::symm::block_qr(a, {}), tt::Error);
  EXPECT_THROW(tt::symm::block_qr(a, {0, 1, 2}), tt::Error);
  EXPECT_THROW(tt::symm::block_qr(a, {0, 0}), tt::Error);
  EXPECT_THROW(tt::symm::block_svd(a, {5}), tt::Error);
}

TEST(BlockFactor, RejectsEmptyTensor) {
  BlockTensor empty({even_bond(Dir::In), phys(Dir::In), odd_bond(Dir::Out)},
                    QN::zero(1));
  EXPECT_THROW(tt::symm::block_qr(empty, {0, 1}), tt::Error);
  EXPECT_THROW(tt::symm::block_svd(empty, {0, 1}), tt::Error);
}

}  // namespace

#include <gtest/gtest.h>

#include "symm/block_ops.hpp"
#include "symm/fuse.hpp"
#include "tensor/einsum.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::symm::BlockTensor;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;

Index even_bond(Dir d) { return Index({{QN(-2), 2}, {QN(0), 3}, {QN(2), 1}}, d); }
Index odd_bond(Dir d) { return Index({{QN(-1), 2}, {QN(1), 2}, {QN(3), 1}}, d); }
Index phys(Dir d) { return Index({{QN(-1), 1}, {QN(1), 1}}, d); }

BlockTensor site(Rng& rng) {
  return BlockTensor::random({even_bond(Dir::In), phys(Dir::In), odd_bond(Dir::Out)},
                             QN::zero(1), rng);
}

TEST(Fuse, DenseShapeIsFusedDims) {
  Rng rng(51);
  BlockTensor t = site(rng);
  auto d = tt::symm::fuse_dense(t);
  EXPECT_EQ(d.shape(), (std::vector<index_t>{6, 2, 5}));
}

TEST(Fuse, DenseRoundTrip) {
  Rng rng(52);
  BlockTensor t = site(rng);
  auto d = tt::symm::fuse_dense(t);
  BlockTensor back = tt::symm::split_dense(d, t.indices(), t.flux());
  EXPECT_LT(tt::symm::max_abs_diff(back, t), 1e-15);
}

TEST(Fuse, SparseRoundTrip) {
  Rng rng(53);
  BlockTensor t = site(rng);
  auto s = tt::symm::fuse_sparse(t);
  BlockTensor back = tt::symm::split_sparse(s, t.indices(), t.flux());
  EXPECT_LT(tt::symm::max_abs_diff(back, t), 1e-15);
}

TEST(Fuse, SparseNnzEqualsStoredElements) {
  Rng rng(54);
  BlockTensor t = site(rng);
  auto s = tt::symm::fuse_sparse(t);
  // Random normal entries are never exactly zero in practice.
  EXPECT_EQ(s.nnz(), t.num_elements());
  EXPECT_NEAR(s.density(), t.fill_fraction(), 1e-12);
}

TEST(Fuse, DenseAndSparseAgree) {
  Rng rng(55);
  BlockTensor t = site(rng);
  auto d = tt::symm::fuse_dense(t);
  auto s = tt::symm::fuse_sparse(t);
  EXPECT_LT(tt::tensor::max_abs_diff(s.to_dense(), d), 1e-15);
}

TEST(Fuse, BlockValuesLandAtSectorOffsets) {
  Rng rng(56);
  BlockTensor t = site(rng);
  auto d = tt::symm::fuse_dense(t);
  // Block (l=0 sector id 1, s=+1 id 1, r=+1 id 1): offsets l:2, s:1, r:2.
  const auto* blk = t.find_block({1, 1, 1});
  ASSERT_NE(blk, nullptr);
  EXPECT_DOUBLE_EQ(d.at({2, 1, 2}), blk->at({0, 0, 0}));
  EXPECT_DOUBLE_EQ(d.at({4, 1, 3}), blk->at({2, 0, 1}));
}

TEST(Fuse, SplitDensePrunesZeroBlocks) {
  Rng rng(57);
  BlockTensor t = site(rng);
  auto d = tt::symm::fuse_dense(t);
  // Zero out one block's region in the fused tensor.
  for (index_t l = 2; l < 5; ++l)
    for (index_t r = 2; r < 4; ++r) d.at({l, 1, r}) = 0.0;
  BlockTensor back = tt::symm::split_dense(d, t.indices(), t.flux());
  EXPECT_EQ(back.find_block({1, 1, 1}), nullptr);
  EXPECT_EQ(back.num_blocks(), t.num_blocks() - 1);
}

TEST(Fuse, SplitSparseRejectsSymmetryViolation) {
  Rng rng(58);
  BlockTensor t = site(rng);
  auto s = tt::symm::fuse_sparse(t);
  // Inject an entry outside every admissible block: position (l=0 [q=-2],
  // s=0 [q=-1], r=2 [q=+1]) has charge -2-1-1 = -4 ≠ 0... compute flat.
  tt::tensor::SparseTensor bad(s.shape());
  for (std::size_t i = 0; i < s.indices().size(); ++i) bad.add(s.indices()[i], s.values()[i]);
  bad.add(0 * (2 * 5) + 0 * 5 + 2, 0.5);  // (0,0,2)
  bad.finalize();
  EXPECT_THROW(tt::symm::split_sparse(bad, t.indices(), t.flux()), tt::Error);
}

TEST(Fuse, StructureMaskCoversAllAdmissibleBlocks) {
  Rng rng(59);
  BlockTensor t = site(rng);
  auto mask = tt::symm::structure_mask(t.indices(), t.flux());
  // The mask covers exactly the union of admissible block positions — the
  // same count as a fully-populated tensor's elements.
  EXPECT_EQ(mask.nnz(), t.num_elements());
  // Every stored element of a fused tensor is inside the mask.
  auto s = tt::symm::fuse_sparse(t);
  for (index_t f : s.indices()) EXPECT_TRUE(mask.contains(f));
}

TEST(Fuse, MaskMatchesFillFraction) {
  Rng rng(60);
  BlockTensor t = site(rng);
  auto mask = tt::symm::structure_mask(t.indices(), t.flux());
  EXPECT_NEAR(mask.density(), t.fill_fraction(), 1e-12);
}

TEST(Fuse, ShapeMismatchThrows) {
  Rng rng(61);
  BlockTensor t = site(rng);
  tt::tensor::DenseTensor wrong({6, 2, 4});
  EXPECT_THROW(tt::symm::split_dense(wrong, t.indices(), t.flux()), tt::Error);
}

TEST(Fuse, FusedContractionEqualsBlockContraction) {
  // The sparse-dense algorithm's core identity: contract fused tensors with a
  // single dense einsum and split back — must equal Algorithm 2 block-wise.
  Rng rng(62);
  BlockTensor a = site(rng);
  BlockTensor b = BlockTensor::random(
      {odd_bond(Dir::In), phys(Dir::In), even_bond(Dir::Out)}, QN::zero(1), rng);
  BlockTensor want = tt::symm::contract(a, b, {{2, 0}});

  auto dc = tt::tensor::einsum("lsr,rtm->lstm", tt::symm::fuse_dense(a),
                               tt::symm::fuse_dense(b));
  BlockTensor got = tt::symm::split_dense(dc, want.indices(), want.flux());
  EXPECT_LT(tt::symm::max_abs_diff(got, want), 1e-10 * (1.0 + want.norm2()));
}

TEST(Fuse, SparseContractionWithMaskEqualsBlockContraction) {
  // The sparse-sparse algorithm's core identity, with precomputed output
  // sparsity restricting the accumulation.
  Rng rng(63);
  BlockTensor a = site(rng);
  BlockTensor b = BlockTensor::random(
      {odd_bond(Dir::In), phys(Dir::In), even_bond(Dir::Out)}, QN::zero(1), rng);
  BlockTensor want = tt::symm::contract(a, b, {{2, 0}});

  auto mask = tt::symm::structure_mask(want.indices(), want.flux());
  auto sc = tt::tensor::einsum_ss("lsr,rtm->lstm", tt::symm::fuse_sparse(a),
                                  tt::symm::fuse_sparse(b), nullptr, &mask);
  BlockTensor got = tt::symm::split_sparse(sc, want.indices(), want.flux());
  EXPECT_LT(tt::symm::max_abs_diff(got, want), 1e-10 * (1.0 + want.norm2()));
}

}  // namespace

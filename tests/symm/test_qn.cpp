#include <gtest/gtest.h>

#include "support/error.hpp"
#include "symm/qn.hpp"

namespace {

using tt::symm::QN;

TEST(QN, RankAndComponents) {
  QN a(3);
  EXPECT_EQ(a.rank(), 1);
  EXPECT_EQ(a[0], 3);
  QN b(1, -2);
  EXPECT_EQ(b.rank(), 2);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], -2);
}

TEST(QN, ZeroFactory) {
  QN z = QN::zero(2);
  EXPECT_EQ(z.rank(), 2);
  EXPECT_TRUE(z.is_zero());
  EXPECT_THROW(QN::zero(3), tt::Error);
  EXPECT_THROW(QN::zero(-1), tt::Error);
}

TEST(QN, Addition) {
  QN a(1, 2), b(3, -5);
  QN c = a + b;
  EXPECT_EQ(c[0], 4);
  EXPECT_EQ(c[1], -3);
}

TEST(QN, NegationAndSubtraction) {
  QN a(2, -1);
  QN n = -a;
  EXPECT_EQ(n[0], -2);
  EXPECT_EQ(n[1], 1);
  QN d = a - a;
  EXPECT_TRUE(d.is_zero());
}

TEST(QN, RankMismatchThrows) {
  QN a(1), b(1, 2);
  EXPECT_THROW(a + b, tt::Error);
  EXPECT_THROW(a - b, tt::Error);
}

TEST(QN, ComparisonOperators) {
  EXPECT_TRUE(QN(1) == QN(1));
  EXPECT_TRUE(QN(1) != QN(2));
  EXPECT_TRUE(QN(1) < QN(2));
  EXPECT_TRUE(QN(1, 0) < QN(1, 5));
  EXPECT_FALSE(QN(2, 0) < QN(1, 5));
  // Distinct ranks never compare equal.
  EXPECT_TRUE(QN(1) != QN(1, 0));
}

TEST(QN, ComponentOutOfRangeThrows) {
  QN a(1);
  EXPECT_THROW(a[1], tt::Error);
  EXPECT_THROW(a[-1], tt::Error);
}

TEST(QN, StringForm) {
  EXPECT_EQ(QN(3).str(), "(3)");
  EXPECT_EQ(QN(1, -2).str(), "(1,-2)");
  EXPECT_EQ(QN().str(), "()");
}

TEST(QN, MapOrderingIsStrictWeak) {
  // QN is used as a std::map key: antisymmetry sanity.
  QN a(0, 1), b(0, 1);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
}

}  // namespace

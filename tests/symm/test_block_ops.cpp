#include <gtest/gtest.h>

#include "symm/block_ops.hpp"
#include "symm/fuse.hpp"
#include "tensor/einsum.hpp"

namespace {

using tt::Rng;
using tt::symm::BlockTensor;
using tt::symm::ContractStats;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;

Index even_bond(Dir d) { return Index({{QN(-2), 2}, {QN(0), 3}, {QN(2), 1}}, d); }
Index odd_bond(Dir d) { return Index({{QN(-1), 2}, {QN(1), 2}, {QN(3), 1}}, d); }
Index phys(Dir d) { return Index({{QN(-1), 1}, {QN(1), 1}}, d); }

BlockTensor site_a(Rng& rng) {
  return BlockTensor::random({even_bond(Dir::In), phys(Dir::In), odd_bond(Dir::Out)},
                             QN::zero(1), rng);
}
BlockTensor site_b(Rng& rng) {
  return BlockTensor::random({odd_bond(Dir::In), phys(Dir::In), even_bond(Dir::Out)},
                             QN::zero(1), rng);
}

TEST(BlockContract, MatchesFusedDenseEinsum) {
  Rng rng(21);
  BlockTensor a = site_a(rng);
  BlockTensor b = site_b(rng);
  // Contract a's right bond with b's left bond: theta(l,s1,s2,r).
  BlockTensor c = tt::symm::contract(a, b, {{2, 0}});
  // Reference: fused dense einsum.
  auto da = tt::symm::fuse_dense(a);
  auto db = tt::symm::fuse_dense(b);
  auto want = tt::tensor::einsum("lsr,rtm->lstm", da, db);
  auto got = tt::symm::fuse_dense(c);
  EXPECT_LT(tt::tensor::max_abs_diff(got, want), 1e-10 * (1.0 + want.max_abs()));
}

TEST(BlockContract, OutputStructure) {
  Rng rng(22);
  BlockTensor a = site_a(rng);
  BlockTensor b = site_b(rng);
  BlockTensor c = tt::symm::contract(a, b, {{2, 0}});
  EXPECT_EQ(c.order(), 4);
  EXPECT_TRUE(c.index(0).same_space(a.index(0)));
  EXPECT_TRUE(c.index(1).same_space(a.index(1)));
  EXPECT_TRUE(c.index(2).same_space(b.index(1)));
  EXPECT_TRUE(c.index(3).same_space(b.index(2)));
  EXPECT_EQ(c.flux(), QN(0));
  for (const auto& [key, blk] : c.blocks()) EXPECT_TRUE(c.key_allowed(key));
}

TEST(BlockContract, MultiModeContraction) {
  Rng rng(23);
  BlockTensor a = site_a(rng);
  // Contract over both bond AND phys: overlap-style double contraction with
  // the dagger of an identically-structured tensor.
  BlockTensor b = site_a(rng).dagger();
  BlockTensor c = tt::symm::contract(a, b, {{1, 1}, {2, 2}});
  auto want = tt::tensor::einsum("lsr,msr->lm", tt::symm::fuse_dense(a),
                                 tt::symm::fuse_dense(b));
  EXPECT_LT(tt::tensor::max_abs_diff(tt::symm::fuse_dense(c), want),
            1e-10 * (1.0 + want.max_abs()));
}

TEST(BlockContract, FullContractionToScalar) {
  Rng rng(24);
  BlockTensor a = site_a(rng);
  BlockTensor adag = a.dagger();
  BlockTensor c = tt::symm::contract(a, adag, {{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(c.order(), 0);
  ASSERT_EQ(c.num_blocks(), 1);
  const double norm2 = a.norm2() * a.norm2();
  EXPECT_NEAR(c.blocks().begin()->second[0], norm2, 1e-9 * (1.0 + norm2));
}

TEST(BlockContract, StatsCountBlockPairsAndFlops) {
  Rng rng(25);
  BlockTensor a = site_a(rng);
  BlockTensor b = site_b(rng);
  ContractStats st;
  tt::symm::contract(a, b, {{2, 0}}, &st);
  EXPECT_GT(st.block_ops.size(), 0u);
  double sum = 0.0;
  for (const auto& op : st.block_ops) {
    EXPECT_GT(op.flops, 0.0);
    EXPECT_GT(op.words_a, 0.0);
    sum += op.flops;
  }
  EXPECT_DOUBLE_EQ(sum, st.total_flops);
}

TEST(BlockContract, RejectsNonContractibleLegs) {
  Rng rng(26);
  BlockTensor a = site_a(rng);
  BlockTensor b = site_b(rng);
  // a mode 2 (odd Out) against b mode 2 (even Out): same dir and different
  // sectors — both violations.
  EXPECT_THROW(tt::symm::contract(a, b, {{2, 2}}), tt::Error);
  // a phys (In) against b phys (In): same direction.
  EXPECT_THROW(tt::symm::contract(a, b, {{1, 1}}), tt::Error);
}

TEST(BlockContract, RejectsOutOfRangeAndDuplicateModes) {
  Rng rng(27);
  BlockTensor a = site_a(rng);
  BlockTensor b = site_b(rng);
  EXPECT_THROW(tt::symm::contract(a, b, {{3, 0}}), tt::Error);
  EXPECT_THROW(tt::symm::contract(a, b, {{2, 0}, {2, 0}}), tt::Error);
}

TEST(BlockContract, FluxAddsThroughContraction) {
  // Give one operand a nonzero flux and check the output flux.
  Rng rng(28);
  Index l({{QN(0), 2}}, Dir::In);
  BlockTensor a = BlockTensor::random({l, phys(Dir::In)}, QN(1), rng);
  BlockTensor b =
      BlockTensor::random({phys(Dir::Out), odd_bond(Dir::Out)}, QN(-1), rng);
  BlockTensor c = tt::symm::contract(a, b, {{1, 0}});
  EXPECT_EQ(c.flux(), QN(0));
  // And the contraction matches the fused reference.
  auto want = tt::tensor::einsum("ls,sr->lr", tt::symm::fuse_dense(a),
                                 tt::symm::fuse_dense(b));
  EXPECT_LT(tt::tensor::max_abs_diff(tt::symm::fuse_dense(c), want), 1e-10);
}

TEST(BlockContract, EmptyOperandGivesEmptyResult) {
  Rng rng(29);
  BlockTensor a(
      {even_bond(Dir::In), phys(Dir::In), odd_bond(Dir::Out)}, QN::zero(1));
  BlockTensor b = site_b(rng);
  BlockTensor c = tt::symm::contract(a, b, {{2, 0}});
  EXPECT_EQ(c.num_blocks(), 0);
}

}  // namespace

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "symm/index.hpp"

namespace {

using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;
using tt::symm::Sector;

Index spin_bond(Dir d = Dir::In) {
  return Index({{QN(-2), 2}, {QN(0), 3}, {QN(2), 1}}, d);
}

TEST(Index, DimIsSumOfSectors) {
  EXPECT_EQ(spin_bond().dim(), 6);
  EXPECT_EQ(spin_bond().num_sectors(), 3);
}

TEST(Index, SectorOffsets) {
  Index i = spin_bond();
  EXPECT_EQ(i.sector_offset(0), 0);
  EXPECT_EQ(i.sector_offset(1), 2);
  EXPECT_EQ(i.sector_offset(2), 5);
  EXPECT_THROW(i.sector_offset(3), tt::Error);
}

TEST(Index, FindSector) {
  Index i = spin_bond();
  EXPECT_EQ(i.find_sector(QN(0)), 1);
  EXPECT_EQ(i.find_sector(QN(2)), 2);
  EXPECT_EQ(i.find_sector(QN(4)), -1);
}

TEST(Index, ReversedFlipsDirectionOnly) {
  Index i = spin_bond(Dir::In);
  Index r = i.reversed();
  EXPECT_EQ(r.dir(), Dir::Out);
  EXPECT_EQ(r.sectors(), i.sectors());
  EXPECT_EQ(r.reversed().dir(), Dir::In);
}

TEST(Index, Contractibility) {
  Index in = spin_bond(Dir::In);
  Index out = spin_bond(Dir::Out);
  EXPECT_TRUE(in.contractible_with(out));
  EXPECT_FALSE(in.contractible_with(in));
  // Different sector content is not contractible.
  Index other({{QN(-2), 2}, {QN(0), 4}}, Dir::Out);
  EXPECT_FALSE(in.contractible_with(other));
}

TEST(Index, SameSpace) {
  EXPECT_TRUE(spin_bond(Dir::In).same_space(spin_bond(Dir::In)));
  EXPECT_FALSE(spin_bond(Dir::In).same_space(spin_bond(Dir::Out)));
}

TEST(Index, SingleSectorFactory) {
  Index d = Index::single(QN(4), 1, Dir::Out);
  EXPECT_EQ(d.dim(), 1);
  EXPECT_EQ(d.num_sectors(), 1);
  EXPECT_EQ(d.sector(0).qn, QN(4));
}

TEST(Index, RejectsEmptySectorList) {
  EXPECT_THROW(Index({}, Dir::In), tt::Error);
}

TEST(Index, RejectsNonPositiveDims) {
  EXPECT_THROW(Index({{QN(0), 0}}, Dir::In), tt::Error);
  EXPECT_THROW(Index({{QN(0), -3}}, Dir::In), tt::Error);
}

TEST(Index, RejectsDuplicateCharges) {
  EXPECT_THROW(Index({{QN(1), 2}, {QN(1), 3}}, Dir::In), tt::Error);
}

TEST(Index, RejectsMixedRanks) {
  EXPECT_THROW(Index({{QN(1), 2}, {QN(1, 0), 3}}, Dir::In), tt::Error);
}

TEST(Index, DirSign) {
  EXPECT_EQ(tt::symm::sign(Dir::In), 1);
  EXPECT_EQ(tt::symm::sign(Dir::Out), -1);
  EXPECT_EQ(tt::symm::reverse(Dir::In), Dir::Out);
}

}  // namespace

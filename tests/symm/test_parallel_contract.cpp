// Determinism and correctness of the thread-parallel block-contraction
// executor: bitwise-identical outputs and ContractStats at any thread count,
// agreement with the fused dense oracle, and the concurrent per-block hook.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "dmrg/engines.hpp"
#include "runtime/machine.hpp"
#include "runtime/tracker.hpp"
#include "support/thread_pool.hpp"
#include "symm/block_ops.hpp"
#include "symm/fuse.hpp"
#include "tensor/einsum.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::symm::BlockTensor;
using tt::symm::ContractOptions;
using tt::symm::ContractStats;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;

// A bond with many sectors so a single contraction produces dozens of bins.
Index wide_bond(Dir d, int nsec, int dim0) {
  std::vector<tt::symm::Sector> secs;
  for (int q = 0; q < nsec; ++q)
    secs.push_back({QN(q - nsec / 2), static_cast<index_t>(dim0 + q % 3)});
  return Index(secs, d);
}

Index phys(Dir d) { return Index({{QN(-1), 2}, {QN(1), 2}}, d); }

// Many-block operand pair sharing a contractible middle bond.
std::pair<BlockTensor, BlockTensor> many_block_pair(unsigned seed) {
  Rng rng(seed);
  const Index mid = wide_bond(Dir::Out, 11, 3);
  BlockTensor a = BlockTensor::random(
      {wide_bond(Dir::In, 9, 2), phys(Dir::In), mid}, QN::zero(1), rng);
  BlockTensor b = BlockTensor::random(
      {mid.reversed(), phys(Dir::In), wide_bond(Dir::Out, 9, 2)}, QN::zero(1), rng);
  return {std::move(a), std::move(b)};
}

// Bitwise block-tensor equality (not tolerance-based: the executor promises
// identical floating-point reductions at every thread count).
void expect_bitwise_equal(const BlockTensor& x, const BlockTensor& y) {
  ASSERT_TRUE(x.same_structure(y));
  ASSERT_EQ(x.num_blocks(), y.num_blocks());
  for (const auto& [key, blk] : x.blocks()) {
    const tt::tensor::DenseTensor* other = y.find_block(key);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(blk.shape(), other->shape());
    ASSERT_EQ(std::memcmp(blk.data(), other->data(),
                          static_cast<std::size_t>(blk.size()) * sizeof(double)),
              0);
  }
}

void expect_identical_stats(const ContractStats& x, const ContractStats& y) {
  // Bitwise: the cross-bin merge order is fixed, so even the floating-point
  // reductions must agree exactly.
  EXPECT_EQ(x.total_flops, y.total_flops);
  EXPECT_EQ(x.permuted_words, y.permuted_words);
  EXPECT_EQ(x.num_bins, y.num_bins);
  ASSERT_EQ(x.block_ops.size(), y.block_ops.size());
  for (std::size_t i = 0; i < x.block_ops.size(); ++i) {
    EXPECT_EQ(x.block_ops[i].flops, y.block_ops[i].flops);
    EXPECT_EQ(x.block_ops[i].words_a, y.block_ops[i].words_a);
    EXPECT_EQ(x.block_ops[i].words_b, y.block_ops[i].words_b);
    EXPECT_EQ(x.block_ops[i].words_c, y.block_ops[i].words_c);
  }
}

TEST(ParallelContract, BitwiseIdenticalAcrossThreadCounts) {
  auto [a, b] = many_block_pair(31);
  ContractOptions serial;
  serial.num_threads = 1;
  ContractStats st1;
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}}, &st1, serial);
  ASSERT_GT(ref.num_blocks(), 8);  // the workload must actually have many bins
  EXPECT_GT(st1.block_ops.size(), 30u);

  for (int threads : {2, 8}) {
    ContractOptions opts;
    opts.num_threads = threads;
    ContractStats st;
    const BlockTensor c = tt::symm::contract(a, b, {{2, 0}}, &st, opts);
    expect_bitwise_equal(ref, c);
    expect_identical_stats(st1, st);
  }
}

TEST(ParallelContract, TtThreadsGlobalKnobIsUsedByDefault) {
  auto [a, b] = many_block_pair(32);
  ContractStats st1, st8;
  tt::support::set_num_threads(1);
  const BlockTensor ref = tt::symm::contract(a, b, {{2, 0}}, &st1);
  tt::support::set_num_threads(8);
  const BlockTensor c = tt::symm::contract(a, b, {{2, 0}}, &st8);
  tt::support::set_num_threads(0);
  expect_bitwise_equal(ref, c);
  expect_identical_stats(st1, st8);
}

TEST(ParallelContract, MatchesFusedDenseOracle) {
  auto [a, b] = many_block_pair(33);
  ContractOptions opts;
  opts.num_threads = 4;
  const BlockTensor c = tt::symm::contract(a, b, {{2, 0}}, nullptr, opts);
  auto want = tt::tensor::einsum("lsr,rtm->lstm", tt::symm::fuse_dense(a),
                                 tt::symm::fuse_dense(b));
  auto got = tt::symm::fuse_dense(c);
  EXPECT_LT(tt::tensor::max_abs_diff(got, want), 1e-10 * (1.0 + want.max_abs()));
}

TEST(ParallelContract, MultiModeAndScalarOutputsStayDeterministic) {
  auto [a, b] = many_block_pair(34);
  (void)b;
  const BlockTensor adag = a.dagger();
  ContractOptions serial, par;
  serial.num_threads = 1;
  par.num_threads = 8;
  // Overlap-style double contraction (order-2 output).
  expect_bitwise_equal(tt::symm::contract(a, adag, {{1, 1}, {2, 2}}, nullptr, serial),
                       tt::symm::contract(a, adag, {{1, 1}, {2, 2}}, nullptr, par));
  // Full contraction to a scalar (single bin).
  expect_bitwise_equal(
      tt::symm::contract(a, adag, {{0, 0}, {1, 1}, {2, 2}}, nullptr, serial),
      tt::symm::contract(a, adag, {{0, 0}, {1, 1}, {2, 2}}, nullptr, par));
}

TEST(ParallelContract, BlockHookFiresOncePerPairConcurrently) {
  auto [a, b] = many_block_pair(35);
  ContractStats st;
  ContractOptions opts;
  opts.num_threads = 8;
  std::atomic<int> calls{0};
  std::atomic<double> flops{0.0};
  opts.block_hook = [&](const tt::symm::BlockOpCost& op) {
    calls.fetch_add(1);
    double cur = flops.load();
    while (!flops.compare_exchange_weak(cur, cur + op.flops)) {
    }
  };
  tt::symm::contract(a, b, {{2, 0}}, &st, opts);
  EXPECT_EQ(calls.load(), static_cast<int>(st.block_ops.size()));
  EXPECT_NEAR(flops.load(), st.total_flops, 1e-6 * (1.0 + st.total_flops));
}

TEST(ParallelContract, HookShardsMergeIntoTracker) {
  // The documented pattern: charge per-block costs from the concurrent hook
  // into per-slot tracker shards, merge deterministically afterwards.
  auto [a, b] = many_block_pair(36);
  tt::rt::CostTrackerShards shards(8);
  ContractStats st;
  ContractOptions opts;
  opts.num_threads = 8;
  opts.block_hook = [&](const tt::symm::BlockOpCost& op) {
    shards.shard(tt::support::execution_slot()).add_flops(op.flops);
  };
  tt::symm::contract(a, b, {{2, 0}}, &st, opts);
  EXPECT_NEAR(shards.merged().flops(), st.total_flops,
              1e-6 * (1.0 + st.total_flops));
}

TEST(ParallelContract, EnginesProduceIdenticalResultsAtAnyThreadCount) {
  auto [a, b] = many_block_pair(37);
  const tt::rt::Cluster local{tt::rt::localhost(), 1, 1};
  for (auto kind : {tt::dmrg::EngineKind::kReference, tt::dmrg::EngineKind::kList}) {
    auto serial = tt::dmrg::make_engine(kind, local);
    serial->set_num_threads(1);
    auto par = tt::dmrg::make_engine(kind, local);
    par->set_num_threads(8);
    using tt::dmrg::Role;
    const BlockTensor c1 = serial->contract(a, Role::kOperator, b,
                                            Role::kIntermediate, {{2, 0}});
    const BlockTensor c8 =
        par->contract(a, Role::kOperator, b, Role::kIntermediate, {{2, 0}});
    expect_bitwise_equal(c1, c8);
    // The charged simulated cost must not depend on the thread count either.
    EXPECT_EQ(serial->tracker().flops(), par->tracker().flops());
    EXPECT_EQ(serial->tracker().total_time(), par->tracker().total_time());
  }
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "symm/block_tensor.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::symm::BlockKey;
using tt::symm::BlockTensor;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;

Index bond(Dir d) { return Index({{QN(-1), 2}, {QN(1), 3}}, d); }
Index phys(Dir d) { return Index({{QN(-1), 1}, {QN(1), 1}}, d); }

// Order-3 MPS-like structure: (left In, phys In, right Out), flux 0.
BlockTensor mps_like(Rng& rng) {
  return BlockTensor::random({bond(Dir::In), phys(Dir::In), bond(Dir::Out)}, QN::zero(1),
                             rng);
}

TEST(BlockTensor, AdmissibleKeysObeyConservation) {
  Rng rng(1);
  BlockTensor t = mps_like(rng);
  // q_l + q_s - q_r = 0: (-1)+(-1)-(-2)? -2 not a sector; valid combos:
  // (-1,+1,0)? 0 absent. Sectors are ±1 only: l+s ∈ {-2,0,2}, r ∈ {-1,1}.
  // So admissible keys require q_l + q_s = q_r: impossible parity ⇒ none!
  // Wait: l,s ∈ {-1,1} so l+s ∈ {-2,0,2}, r ∈ {-1,1}: indeed empty.
  EXPECT_TRUE(t.admissible_keys().empty());
}

// A structure that does have admissible blocks: left bond carries even
// charges, physical ±1, right bond odd charges.
BlockTensor workable(Rng& rng) {
  Index l({{QN(-2), 2}, {QN(0), 3}, {QN(2), 1}}, Dir::In);
  Index s = phys(Dir::In);
  Index r({{QN(-1), 2}, {QN(1), 2}, {QN(3), 1}}, Dir::Out);
  return BlockTensor::random({l, s, r}, QN::zero(1), rng);
}

TEST(BlockTensor, WorkableStructureHasExpectedBlocks) {
  Rng rng(2);
  BlockTensor t = workable(rng);
  // Conservation q_l + q_s = q_r over l∈{-2,0,2}, s∈{-1,1}, r∈{-1,1,3}:
  // (-2,+1,-1),(0,-1,-1),(0,+1,1),(2,-1,1),(2,+1,3) = 5 blocks.
  EXPECT_EQ(t.num_blocks(), 5);
  for (const auto& [key, blk] : t.blocks()) {
    EXPECT_TRUE(t.key_allowed(key));
    EXPECT_EQ(blk.shape(), t.block_shape(key));
  }
}

TEST(BlockTensor, BlockCreationRejectsViolatingKey) {
  Rng rng(3);
  BlockTensor t = workable(rng);
  EXPECT_THROW(t.block({0, 0, 0}), tt::Error);  // -2 -1 != -1
  EXPECT_THROW(t.block({9, 0, 0}), tt::Error);  // sector out of range
}

TEST(BlockTensor, NumElementsAndDenseSize) {
  Rng rng(4);
  BlockTensor t = workable(rng);
  // Block sizes: (2·1·2)+(3·1·2)+(3·1·2)+(1·1·2)+(1·1·1) = 4+6+6+2+1 = 19.
  EXPECT_EQ(t.num_elements(), 19);
  EXPECT_EQ(t.dense_size(), 6 * 2 * 5);
  EXPECT_NEAR(t.fill_fraction(), 19.0 / 60.0, 1e-12);
}

TEST(BlockTensor, LargestBlockDim) {
  Rng rng(5);
  BlockTensor t = workable(rng);
  EXPECT_EQ(t.largest_block_dim(0), 3);
  EXPECT_EQ(t.largest_block_dim(2), 2);
}

TEST(BlockTensor, PartialCharge) {
  Rng rng(6);
  BlockTensor t = workable(rng);
  const BlockKey key{2, 1, 2};  // l=+2 (In), s=+1 (In), r=+3 (Out)
  EXPECT_EQ(t.partial_charge(key, {0, 1}), QN(3));
  EXPECT_EQ(t.partial_charge(key, {2}), QN(-3));
  EXPECT_EQ(t.partial_charge(key, {0, 1, 2}), QN(0));
}

TEST(BlockTensor, AccumulateAddsIntoExistingBlock) {
  Rng rng(7);
  BlockTensor t = workable(rng);
  const BlockKey key{1, 1, 1};  // l=0,s=+1,r=+1
  const double before = t.find_block(key)->at({0, 0, 0});
  tt::tensor::DenseTensor add(t.block_shape(key));
  add.fill(2.0);
  t.accumulate(key, add);
  EXPECT_DOUBLE_EQ(t.find_block(key)->at({0, 0, 0}), before + 2.0);
}

TEST(BlockTensor, AccumulateRejectsWrongShape) {
  Rng rng(8);
  BlockTensor t = workable(rng);
  tt::tensor::DenseTensor wrong({1, 1, 1});
  EXPECT_THROW(t.accumulate({1, 1, 1}, wrong), tt::Error);
}

TEST(BlockTensor, DotAndNormConsistency) {
  Rng rng(9);
  BlockTensor t = workable(rng);
  EXPECT_NEAR(std::sqrt(tt::symm::dot(t, t)), t.norm2(), 1e-12);
}

TEST(BlockTensor, AxpyLinearity) {
  Rng rng(10);
  BlockTensor a = workable(rng);
  BlockTensor b = workable(rng);
  const double ab = tt::symm::dot(a, b);
  const double aa = tt::symm::dot(a, a);
  const double bb = tt::symm::dot(b, b);
  BlockTensor c = a;
  c.axpy(3.0, b);
  EXPECT_NEAR(tt::symm::dot(c, c), aa + 6.0 * ab + 9.0 * bb, 1e-9);
}

TEST(BlockTensor, ScaleScalesNorm) {
  Rng rng(11);
  BlockTensor t = workable(rng);
  const double n = t.norm2();
  t.scale(-0.5);
  EXPECT_NEAR(t.norm2(), 0.5 * n, 1e-12);
}

TEST(BlockTensor, DaggerFlipsStructureKeepsData) {
  Rng rng(12);
  BlockTensor t = workable(rng);
  BlockTensor d = t.dagger();
  EXPECT_EQ(d.flux(), -t.flux());
  for (int m = 0; m < t.order(); ++m) {
    EXPECT_EQ(d.index(m).dir(), tt::symm::reverse(t.index(m).dir()));
    EXPECT_EQ(d.index(m).sectors(), t.index(m).sectors());
  }
  EXPECT_EQ(d.num_blocks(), t.num_blocks());
  EXPECT_NEAR(d.norm2(), t.norm2(), 0.0);
}

TEST(BlockTensor, PruneDropsZeroBlocks) {
  Rng rng(13);
  BlockTensor t = workable(rng);
  const BlockKey key{1, 1, 1};
  t.block(key).fill(0.0);
  const int before = t.num_blocks();
  t.prune();
  EXPECT_EQ(t.num_blocks(), before - 1);
  EXPECT_EQ(t.find_block(key), nullptr);
}

TEST(BlockTensor, NonzeroFluxShiftsAdmissibleKeys) {
  Index l({{QN(0), 2}}, Dir::In);
  Index s = phys(Dir::In);
  BlockTensor t({l, s}, QN(1));
  // q_l + q_s = flux=1 ⇒ only s=+1 sector admissible.
  auto keys = t.admissible_keys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (BlockKey{0, 1}));
}

TEST(BlockTensor, DotStructureMismatchThrows) {
  Rng rng(14);
  BlockTensor a = workable(rng);
  BlockTensor b = a.dagger();
  EXPECT_THROW(tt::symm::dot(a, b), tt::Error);
}

TEST(BlockTensor, MaxAbsDiffSeesMissingBlocks) {
  Rng rng(15);
  BlockTensor a = workable(rng);
  BlockTensor b = a;
  // Remove one block from b by pruning after zeroing.
  b.block({1, 1, 1}).fill(0.0);
  b.prune();
  const double diff = tt::symm::max_abs_diff(a, b);
  EXPECT_DOUBLE_EQ(diff, a.find_block({1, 1, 1})->max_abs());
}

}  // namespace

// Property sweep over randomized block structures: for arbitrary sector
// layouts, directions, and fluxes, the algebraic identities of the symmetric
// tensor layer must hold — contraction against the fused-dense oracle,
// factorization invariants, and format round trips.
#include <gtest/gtest.h>

#include <cmath>

#include "symm/block_factor.hpp"
#include "symm/block_ops.hpp"
#include "symm/fuse.hpp"
#include "tensor/einsum.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::symm::BlockTensor;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;
using tt::symm::Sector;

// Random index: 1–4 sectors with distinct small charges, dims 1–4.
Index random_index(Rng& rng, int qn_rank, Dir dir) {
  const int nsec = static_cast<int>(rng.integer(1, 4));
  std::vector<Sector> sectors;
  std::vector<QN> used;
  while (static_cast<int>(sectors.size()) < nsec) {
    QN q = qn_rank == 1
               ? QN(static_cast<int>(rng.integer(-2, 2)))
               : QN(static_cast<int>(rng.integer(-1, 2)),
                    static_cast<int>(rng.integer(-1, 1)));
    bool fresh = true;
    for (const QN& u : used) fresh &= !(u == q);
    if (!fresh) continue;
    used.push_back(q);
    sectors.push_back({q, rng.integer(1, 4)});
  }
  return Index(sectors, dir);
}

QN random_flux(Rng& rng, int qn_rank) {
  return qn_rank == 1 ? QN(static_cast<int>(rng.integer(-1, 1)))
                      : QN(static_cast<int>(rng.integer(-1, 1)), 0);
}

class RandomStructure : public ::testing::TestWithParam<int> {};

TEST_P(RandomStructure, ContractionMatchesFusedOracle) {
  Rng rng(static_cast<unsigned>(GetParam()) * 1234 + 1);
  const int rank = GetParam() % 2 + 1;
  // a(x, c, y): contract c with b(c̄, z).
  BlockTensor a, b;
  for (int attempt = 0; attempt < 50; ++attempt) {
    Index shared = random_index(rng, rank, Dir::Out);
    a = BlockTensor::random(
        {random_index(rng, rank, Dir::In), shared, random_index(rng, rank, Dir::Out)},
        random_flux(rng, rank), rng);
    b = BlockTensor::random({shared.reversed(), random_index(rng, rank, Dir::In)},
                            random_flux(rng, rank), rng);
    if (a.num_blocks() > 0 && b.num_blocks() > 0) break;
  }
  ASSERT_GT(a.num_blocks(), 0);
  ASSERT_GT(b.num_blocks(), 0);

  BlockTensor c = tt::symm::contract(a, b, {{1, 0}});
  auto want = tt::tensor::einsum("xcy,cz->xyz", tt::symm::fuse_dense(a),
                                 tt::symm::fuse_dense(b));
  EXPECT_LT(tt::tensor::max_abs_diff(tt::symm::fuse_dense(c), want),
            1e-10 * (1.0 + want.max_abs()));
}

TEST_P(RandomStructure, SparseMaskedContractionMatchesOracle) {
  Rng rng(static_cast<unsigned>(GetParam()) * 1234 + 2);
  const int rank = GetParam() % 2 + 1;
  BlockTensor a, b;
  for (int attempt = 0; attempt < 50; ++attempt) {
    Index shared = random_index(rng, rank, Dir::Out);
    a = BlockTensor::random({random_index(rng, rank, Dir::In), shared},
                            random_flux(rng, rank), rng);
    b = BlockTensor::random({shared.reversed(), random_index(rng, rank, Dir::Out)},
                            random_flux(rng, rank), rng);
    if (a.num_blocks() > 0 && b.num_blocks() > 0) break;
  }
  ASSERT_GT(a.num_blocks(), 0);
  ASSERT_GT(b.num_blocks(), 0);

  BlockTensor want = tt::symm::contract(a, b, {{1, 0}});
  auto mask = tt::symm::structure_mask(want.indices(), want.flux());
  auto fused = tt::tensor::einsum_ss("xc,cz->xz", tt::symm::fuse_sparse(a),
                                     tt::symm::fuse_sparse(b), nullptr, &mask);
  BlockTensor got = tt::symm::split_sparse(fused, want.indices(), want.flux());
  EXPECT_LT(tt::symm::max_abs_diff(got, want), 1e-10 * (1.0 + want.norm2()));
}

TEST_P(RandomStructure, SvdReconstructsChargedTensors) {
  Rng rng(static_cast<unsigned>(GetParam()) * 1234 + 3);
  const int rank = GetParam() % 2 + 1;
  BlockTensor a;
  for (int attempt = 0; attempt < 50 && a.num_blocks() == 0; ++attempt)
    a = BlockTensor::random(
        {random_index(rng, rank, Dir::In), random_index(rng, rank, Dir::In),
         random_index(rng, rank, Dir::Out)},
        random_flux(rng, rank), rng);
  ASSERT_GT(a.num_blocks(), 0);

  // Try both bipartitions, including a non-contiguous one.
  for (const std::vector<int>& rows : {std::vector<int>{0}, {0, 2}}) {
    auto f = tt::symm::block_svd(a, rows);
    // U carries flux 0, Vt the original flux; both are isometries and the
    // product reconstructs a (no truncation).
    EXPECT_TRUE(f.u.flux().is_zero());
    EXPECT_EQ(f.vt.flux(), a.flux());
    BlockTensor usv = tt::symm::contract(f.u_times_s(), f.vt,
                                         {{f.u.order() - 1, 0}});
    // Output mode order is rows-then-cols; bring the comparison onto fused
    // matrices of the same bipartition to stay order-agnostic.
    EXPECT_NEAR(usv.norm2(), a.norm2(), 1e-9 * (1.0 + a.norm2()));
    EXPECT_NEAR(f.truncation_error, 0.0, 1e-16);
  }
}

TEST_P(RandomStructure, QrIsometryOnChargedTensors) {
  Rng rng(static_cast<unsigned>(GetParam()) * 1234 + 4);
  const int rank = GetParam() % 2 + 1;
  BlockTensor a;
  for (int attempt = 0; attempt < 50 && a.num_blocks() == 0; ++attempt)
    a = BlockTensor::random(
        {random_index(rng, rank, Dir::In), random_index(rng, rank, Dir::Out),
         random_index(rng, rank, Dir::Out)},
        random_flux(rng, rank), rng);
  ASSERT_GT(a.num_blocks(), 0);

  auto f = tt::symm::block_qr(a, {0, 1});
  BlockTensor qr = tt::symm::contract(f.q, f.r, {{2, 0}});
  EXPECT_LT(tt::symm::max_abs_diff(qr, a), 1e-9 * (1.0 + a.norm2()));
  BlockTensor g = tt::symm::contract(f.q.dagger(), f.q, {{0, 0}, {1, 1}});
  for (const auto& [key, blk] : g.blocks()) {
    ASSERT_EQ(key[0], key[1]);
    for (index_t i = 0; i < blk.dim(0); ++i)
      for (index_t j = 0; j < blk.dim(1); ++j)
        EXPECT_NEAR(blk.at({i, j}), i == j ? 1.0 : 0.0, 1e-10);
  }
}

TEST_P(RandomStructure, FuseRoundTripsPreserveEverything) {
  Rng rng(static_cast<unsigned>(GetParam()) * 1234 + 5);
  const int rank = GetParam() % 2 + 1;
  BlockTensor a;
  for (int attempt = 0; attempt < 50 && a.num_blocks() == 0; ++attempt)
    a = BlockTensor::random(
        {random_index(rng, rank, Dir::In), random_index(rng, rank, Dir::Out)},
        random_flux(rng, rank), rng);
  ASSERT_GT(a.num_blocks(), 0);

  BlockTensor via_dense =
      tt::symm::split_dense(tt::symm::fuse_dense(a), a.indices(), a.flux());
  BlockTensor via_sparse =
      tt::symm::split_sparse(tt::symm::fuse_sparse(a), a.indices(), a.flux());
  EXPECT_LT(tt::symm::max_abs_diff(via_dense, a), 1e-15);
  EXPECT_LT(tt::symm::max_abs_diff(via_sparse, a), 1e-15);
  // Parseval: fused norms equal the block norm.
  EXPECT_NEAR(tt::symm::fuse_dense(a).norm2(), a.norm2(), 1e-12);
  EXPECT_NEAR(tt::symm::fuse_sparse(a).norm2(), a.norm2(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStructure, ::testing::Range(0, 12));

}  // namespace

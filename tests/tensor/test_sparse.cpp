#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/naive_einsum.hpp"
#include "support/error.hpp"
#include "tensor/einsum.hpp"
#include "tensor/sparse.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::tensor::DenseTensor;
using tt::tensor::EinsumStats;
using tt::tensor::SparseTensor;

// Random tensor with a given fill fraction of nonzeros.
DenseTensor random_sparse_dense(std::vector<index_t> shape, double fill, unsigned seed) {
  Rng rng(seed);
  DenseTensor t(std::move(shape));
  for (index_t i = 0; i < t.size(); ++i)
    if (rng.uniform() < fill) t[i] = rng.normal();
  return t;
}

TEST(SparseTensor, FromDenseRoundTrip) {
  DenseTensor d = random_sparse_dense({4, 5, 3}, 0.3, 1);
  SparseTensor s = SparseTensor::from_dense(d);
  EXPECT_LT(tt::tensor::max_abs_diff(s.to_dense(), d), 1e-15);
  EXPECT_GT(s.nnz(), 0);
  EXPECT_LT(s.nnz(), d.size());
}

TEST(SparseTensor, FinalizeMergesDuplicates) {
  SparseTensor s({4});
  s.add(2, 1.0);
  s.add(2, 2.5);
  s.add(0, -1.0);
  s.finalize();
  EXPECT_EQ(s.nnz(), 2);
  EXPECT_DOUBLE_EQ(s.value_at(2), 3.5);
  EXPECT_DOUBLE_EQ(s.value_at(0), -1.0);
  EXPECT_DOUBLE_EQ(s.value_at(1), 0.0);
}

TEST(SparseTensor, FinalizeDropsCancelledEntries) {
  SparseTensor s({3});
  s.add(1, 2.0);
  s.add(1, -2.0);
  s.finalize();
  EXPECT_EQ(s.nnz(), 0);
  EXPECT_FALSE(s.contains(1));
}

TEST(SparseTensor, ContainsAndDensity) {
  SparseTensor s({2, 5});
  s.add(3, 1.0);
  s.add(7, 2.0);
  s.finalize();
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  EXPECT_DOUBLE_EQ(s.density(), 0.2);
}

TEST(SparseTensor, IndexOutOfRangeThrows) {
  SparseTensor s({2, 2});
  EXPECT_THROW(s.add(4, 1.0), tt::Error);
  EXPECT_THROW(s.add(-1, 1.0), tt::Error);
}

TEST(SparseTensor, NormMatchesDense) {
  DenseTensor d = random_sparse_dense({6, 6}, 0.4, 2);
  SparseTensor s = SparseTensor::from_dense(d);
  EXPECT_NEAR(s.norm2(), d.norm2(), 1e-12);
}

struct Case {
  std::string spec;
  std::vector<index_t> sa, sb;
};

class SparseEinsumParam : public ::testing::TestWithParam<Case> {};

TEST_P(SparseEinsumParam, SparseSparseMatchesDense) {
  const Case& c = GetParam();
  DenseTensor da = random_sparse_dense(c.sa, 0.35, 11);
  DenseTensor db = random_sparse_dense(c.sb, 0.35, 13);
  SparseTensor sa = SparseTensor::from_dense(da);
  SparseTensor sb = SparseTensor::from_dense(db);
  SparseTensor got = tt::tensor::einsum_ss(c.spec, sa, sb);
  DenseTensor want = tt::testing::naive_einsum(c.spec, da, db);
  EXPECT_LT(tt::tensor::max_abs_diff(got.to_dense(), want),
            1e-10 * (1.0 + want.max_abs()))
      << c.spec;
}

TEST_P(SparseEinsumParam, SparseDenseMatchesDense) {
  const Case& c = GetParam();
  DenseTensor da = random_sparse_dense(c.sa, 0.35, 17);
  Rng rng(19);
  DenseTensor db = DenseTensor::random(c.sb, rng);
  SparseTensor sa = SparseTensor::from_dense(da);
  DenseTensor got = tt::tensor::einsum_sd(c.spec, sa, db);
  DenseTensor want = tt::testing::naive_einsum(c.spec, da, db);
  EXPECT_LT(tt::tensor::max_abs_diff(got, want), 1e-10 * (1.0 + want.max_abs()))
      << c.spec;
}

TEST_P(SparseEinsumParam, DenseSparseMatchesDense) {
  const Case& c = GetParam();
  Rng rng(23);
  DenseTensor da = DenseTensor::random(c.sa, rng);
  DenseTensor db = random_sparse_dense(c.sb, 0.35, 29);
  SparseTensor sb = SparseTensor::from_dense(db);
  DenseTensor got = tt::tensor::einsum_ds(c.spec, da, sb);
  DenseTensor want = tt::testing::naive_einsum(c.spec, da, db);
  EXPECT_LT(tt::tensor::max_abs_diff(got, want), 1e-10 * (1.0 + want.max_abs()))
      << c.spec;
}

INSTANTIATE_TEST_SUITE_P(
    Specs, SparseEinsumParam,
    ::testing::Values(Case{"ik,kj->ij", {6, 8}, {8, 7}},
                      Case{"ik,kj->ji", {6, 8}, {8, 7}},
                      Case{"akb,bsc->aksc", {3, 4, 5}, {5, 2, 6}},
                      Case{"akb,asc->kbsc", {3, 4, 5}, {3, 2, 6}},
                      Case{"abcd,bcde->ae", {2, 3, 4, 2}, {3, 4, 2, 5}},
                      Case{"ab,ab->", {5, 6}, {5, 6}},
                      Case{"ab,cd->abcd", {2, 3}, {3, 2}},
                      Case{"kslm,mtun->kslntu", {2, 3, 2, 4}, {4, 3, 2, 2}}));

TEST(SparseEinsum, OutputMaskRestrictsEntries) {
  DenseTensor da = random_sparse_dense({6, 8}, 0.5, 31);
  DenseTensor db = random_sparse_dense({8, 7}, 0.5, 37);
  SparseTensor sa = SparseTensor::from_dense(da);
  SparseTensor sb = SparseTensor::from_dense(db);

  // Mask admits only the even flat indices of the output.
  SparseTensor mask({6, 7});
  for (index_t f = 0; f < 42; f += 2) mask.add(f, 1.0);
  mask.finalize();

  SparseTensor got = tt::tensor::einsum_ss("ik,kj->ij", sa, sb, nullptr, &mask);
  DenseTensor full = tt::testing::naive_einsum("ik,kj->ij", da, db);
  for (index_t f = 0; f < 42; ++f) {
    if (f % 2 == 0) {
      EXPECT_NEAR(got.value_at(f), full[f], 1e-10);
    } else {
      EXPECT_FALSE(got.contains(f));
    }
  }
}

TEST(SparseEinsum, StatsCountActualSparseFlops) {
  // One nonzero in each operand, matching on the contracted index:
  // exactly one multiply-add = 2 flops.
  SparseTensor a({2, 2}), b({2, 2});
  a.add(1, 3.0);  // a[0,1]
  a.finalize();
  b.add(2, 4.0);  // b[1,0]
  b.finalize();
  EinsumStats st;
  SparseTensor c = tt::tensor::einsum_ss("ik,kj->ij", a, b, &st);
  EXPECT_DOUBLE_EQ(st.flops, 2.0);
  EXPECT_DOUBLE_EQ(c.value_at(0), 12.0);  // c[0,0]
}

TEST(SparseEinsum, EmptyOperandsYieldEmptyOutput) {
  SparseTensor a({3, 4}), b({4, 5});
  a.finalize();
  b.finalize();
  SparseTensor c = tt::tensor::einsum_ss("ik,kj->ij", a, b);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.shape(), (std::vector<index_t>{3, 5}));
}

TEST(SparseEinsum, MaskShapeMismatchThrows) {
  SparseTensor a({3, 4}), b({4, 5});
  a.finalize();
  b.finalize();
  SparseTensor mask({3, 4});
  mask.finalize();
  EXPECT_THROW(tt::tensor::einsum_ss("ik,kj->ij", a, b, nullptr, &mask), tt::Error);
}

}  // namespace

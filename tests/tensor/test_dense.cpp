#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/error.hpp"
#include "tensor/dense.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::tensor::DenseTensor;

TEST(DenseTensor, ShapeAndSize) {
  DenseTensor t({2, 3, 4});
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.dim(1), 3);
}

TEST(DenseTensor, ScalarTensor) {
  DenseTensor s = DenseTensor::scalar(2.5);
  EXPECT_EQ(s.order(), 0);
  EXPECT_EQ(s.size(), 1);
  EXPECT_DOUBLE_EQ(s[0], 2.5);
}

TEST(DenseTensor, StridesRowMajor) {
  DenseTensor t({2, 3, 4});
  auto s = t.strides();
  EXPECT_EQ(s, (std::vector<index_t>{12, 4, 1}));
}

TEST(DenseTensor, MultiIndexMatchesFlat) {
  DenseTensor t({2, 3, 4});
  std::iota(t.data(), t.data() + t.size(), 0.0);
  EXPECT_DOUBLE_EQ(t.at({1, 2, 3}), 1 * 12 + 2 * 4 + 3);
  EXPECT_DOUBLE_EQ(t.at({0, 1, 0}), 4.0);
}

TEST(DenseTensor, OutOfBoundsIndexThrows) {
  DenseTensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), tt::Error);
  EXPECT_THROW(t.at({0, 0, 0}), tt::Error);
}

TEST(DenseTensor, ReshapePreservesData) {
  Rng rng(1);
  DenseTensor t = DenseTensor::random({3, 4}, rng);
  DenseTensor r = t.reshaped({2, 6});
  EXPECT_EQ(r.order(), 2);
  for (index_t i = 0; i < 12; ++i) EXPECT_DOUBLE_EQ(t[i], r[i]);
  EXPECT_THROW(t.reshaped({5, 5}), tt::Error);
}

TEST(DenseTensor, PermuteMatrixTranspose) {
  Rng rng(2);
  DenseTensor t = DenseTensor::random({3, 5}, rng);
  DenseTensor p = t.permuted({1, 0});
  EXPECT_EQ(p.dim(0), 5);
  EXPECT_EQ(p.dim(1), 3);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(p.at({j, i}), t.at({i, j}));
}

TEST(DenseTensor, PermuteOrder4AgainstDirectIndexing) {
  Rng rng(3);
  DenseTensor t = DenseTensor::random({2, 3, 4, 5}, rng);
  DenseTensor p = t.permuted({2, 0, 3, 1});
  for (index_t a = 0; a < 2; ++a)
    for (index_t b = 0; b < 3; ++b)
      for (index_t c = 0; c < 4; ++c)
        for (index_t d = 0; d < 5; ++d)
          EXPECT_DOUBLE_EQ(p.at({c, a, d, b}), t.at({a, b, c, d}));
}

class PermuteRoundTrip : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(PermuteRoundTrip, InversePermutationRestoresTensor) {
  const std::vector<int>& perm = GetParam();
  Rng rng(7);
  DenseTensor t = DenseTensor::random({3, 4, 2, 5}, rng);
  DenseTensor p = t.permuted(perm);
  std::vector<int> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    inv[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);
  DenseTensor back = p.permuted(inv);
  EXPECT_DOUBLE_EQ(tt::tensor::max_abs_diff(back, t), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Perms, PermuteRoundTrip,
                         ::testing::Values(std::vector<int>{0, 1, 2, 3},
                                           std::vector<int>{3, 2, 1, 0},
                                           std::vector<int>{1, 0, 3, 2},
                                           std::vector<int>{2, 3, 0, 1},
                                           std::vector<int>{0, 2, 1, 3},
                                           std::vector<int>{3, 0, 2, 1}));

TEST(DenseTensor, PermuteRejectsInvalidPerm) {
  DenseTensor t({2, 2});
  EXPECT_THROW(t.permuted({0, 0}), tt::Error);
  EXPECT_THROW(t.permuted({0}), tt::Error);
  EXPECT_THROW(t.permuted({0, 2}), tt::Error);
}

TEST(DenseTensor, PermuteLargeParallelPath) {
  Rng rng(11);
  DenseTensor t = DenseTensor::random({64, 48, 32}, rng);  // > parallel threshold
  DenseTensor p = t.permuted({2, 1, 0});
  for (index_t a : {index_t{0}, index_t{13}, index_t{63}})
    for (index_t b : {index_t{0}, index_t{21}, index_t{47}})
      for (index_t c : {index_t{0}, index_t{9}, index_t{31}})
        EXPECT_DOUBLE_EQ(p.at({c, b, a}), t.at({a, b, c}));
}

TEST(DenseTensor, AxpyDotNorm) {
  Rng rng(4);
  DenseTensor a = DenseTensor::random({6, 7}, rng);
  DenseTensor b = DenseTensor::random({6, 7}, rng);
  const double ab = tt::tensor::dot(a, b);
  DenseTensor c = a;
  c.axpy(2.0, b);
  // <a+2b, a+2b> = |a|^2 + 4<a,b> + 4|b|^2
  const double expect = a.norm2() * a.norm2() + 4.0 * ab + 4.0 * b.norm2() * b.norm2();
  EXPECT_NEAR(c.norm2() * c.norm2(), expect, 1e-9);
}

TEST(DenseTensor, FillAndScale) {
  DenseTensor t({2, 2});
  t.fill(3.0);
  t.scale(-2.0);
  for (index_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(t[i], -6.0);
}

TEST(DenseTensor, ZeroDimensionTensor) {
  DenseTensor t({4, 0, 3});
  EXPECT_EQ(t.size(), 0);
  EXPECT_TRUE(t.empty());
  DenseTensor p = t.permuted({2, 1, 0});
  EXPECT_EQ(p.dim(0), 3);
  EXPECT_EQ(p.size(), 0);
}

}  // namespace

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/naive_einsum.hpp"
#include "support/error.hpp"
#include "tensor/einsum.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::tensor::DenseTensor;
using tt::tensor::EinsumStats;

struct Case {
  std::string spec;
  std::vector<index_t> sa, sb;
};

class EinsumParam : public ::testing::TestWithParam<Case> {};

TEST_P(EinsumParam, MatchesNaiveReference) {
  const Case& c = GetParam();
  Rng rng(static_cast<unsigned>(c.spec.size()) * 97 + 5);
  DenseTensor a = DenseTensor::random(c.sa, rng);
  DenseTensor b = DenseTensor::random(c.sb, rng);
  DenseTensor got = tt::tensor::einsum(c.spec, a, b);
  DenseTensor want = tt::testing::naive_einsum(c.spec, a, b);
  ASSERT_EQ(got.shape(), want.shape()) << c.spec;
  EXPECT_LT(tt::tensor::max_abs_diff(got, want), 1e-10 * (1.0 + want.max_abs())) << c.spec;
}

INSTANTIATE_TEST_SUITE_P(
    Specs, EinsumParam,
    ::testing::Values(
        // plain matmul
        Case{"ik,kj->ij", {5, 7}, {7, 6}},
        // matmul with transposed output
        Case{"ik,kj->ji", {5, 7}, {7, 6}},
        // MPS-style: environment × site tensor
        Case{"akb,bsc->aksc", {3, 4, 5}, {5, 2, 6}},
        // left-env update: order-3 × order-3 over two modes
        Case{"akb,asc->kbsc", {3, 4, 5}, {3, 2, 6}},
        // order-4 × order-4 MPO-like contraction
        Case{"kslm,mtun->kslntu", {2, 3, 2, 4}, {4, 3, 2, 2}},
        // full contraction to scalar
        Case{"ab,ab->", {4, 6}, {4, 6}},
        // outer product (no contracted labels)
        Case{"ab,cd->abcd", {2, 3}, {4, 2}},
        // single contracted mode, rest free
        Case{"abc,cd->abd", {3, 2, 4}, {4, 5}},
        // contraction over three modes at once
        Case{"abcd,bcde->ae", {2, 3, 4, 2}, {3, 4, 2, 5}},
        // vector cases
        Case{"a,ab->b", {5}, {5, 3}}, Case{"ab,b->a", {3, 5}, {5}},
        Case{"a,a->", {9}, {9}},
        // dimension-1 modes
        Case{"aib,bjc->aijc", {1, 4, 3}, {3, 5, 1}},
        // transpose-lowered operands: A stored [con, free] ...
        Case{"ka,kb->ab", {7, 5}, {7, 6}},
        Case{"kab,kc->abc", {7, 3, 4}, {7, 5}},
        // ... B stored [free, con] ...
        Case{"ak,bk->ab", {5, 7}, {6, 7}},
        Case{"ak,bck->abc", {5, 7}, {3, 4, 7}},
        // ... and both at once, multi-mode contracted group
        Case{"klab,cdkl->abcd", {3, 2, 4, 5}, {2, 3, 3, 2}}));

TEST(Einsum, StatsReportGemmDims) {
  Rng rng(1);
  DenseTensor a = DenseTensor::random({3, 4, 5}, rng);
  DenseTensor b = DenseTensor::random({5, 2, 6}, rng);
  EinsumStats st;
  tt::tensor::einsum("akb,bsc->aksc", a, b, &st);
  EXPECT_EQ(st.m, 12);  // 3*4
  EXPECT_EQ(st.n, 12);  // 2*6
  EXPECT_EQ(st.k, 5);
  EXPECT_DOUBLE_EQ(st.flops, 2.0 * 12 * 12 * 5);
}

TEST(Einsum, StatsCountPermutedWords) {
  Rng rng(2);
  DenseTensor a = DenseTensor::random({4, 3, 2}, rng);
  DenseTensor b = DenseTensor::random({3, 5}, rng);
  EinsumStats st;
  // "akb,kc->abc": A's contracted mode is interleaved between its free modes,
  // so no transpose lowering applies and A must be permuted; B is aligned.
  tt::tensor::einsum("akb,kc->abc", a, b, &st);
  EXPECT_DOUBLE_EQ(st.permuted_words, static_cast<double>(a.size()));
  EXPECT_EQ(st.lowered_transposes, 0);
}

TEST(Einsum, PureTransposesLowerToGemmFlagsNotCopies) {
  Rng rng(2);
  DenseTensor a = DenseTensor::random({4, 3}, rng);
  DenseTensor b = DenseTensor::random({5, 4}, rng);
  EinsumStats st;
  // "ka,bk->ab": A is stored [con, free] and B [free, con] — both are pure
  // matrix transposes, handed to gemm as trans flags with zero words moved.
  tt::tensor::einsum("ka,bk->ab", a, b, &st);
  EXPECT_DOUBLE_EQ(st.permuted_words, 0.0);
  EXPECT_EQ(st.lowered_transposes, 2);
}

TEST(Einsum, NoPermutationForAlignedSpec) {
  Rng rng(3);
  DenseTensor a = DenseTensor::random({4, 3}, rng);
  DenseTensor b = DenseTensor::random({3, 5}, rng);
  EinsumStats st;
  tt::tensor::einsum("ik,kj->ij", a, b, &st);
  EXPECT_DOUBLE_EQ(st.permuted_words, 0.0);
}

TEST(Einsum, RejectsMalformedSpecs) {
  Rng rng(4);
  DenseTensor a = DenseTensor::random({2, 2}, rng);
  DenseTensor b = DenseTensor::random({2, 2}, rng);
  EXPECT_THROW(tt::tensor::einsum("ab,bc", a, b), tt::Error);        // no arrow
  EXPECT_THROW(tt::tensor::einsum("ab->ab", a, b), tt::Error);       // one operand
  EXPECT_THROW(tt::tensor::einsum("aa,ab->b", a, b), tt::Error);     // trace
  EXPECT_THROW(tt::tensor::einsum("ab,bc->abc", a, b), tt::Error);   // batch label
  EXPECT_THROW(tt::tensor::einsum("ab,cd->ab", a, b), tt::Error);    // dangling c,d
  EXPECT_THROW(tt::tensor::einsum("abc,bc->a", a, b), tt::Error);    // order mismatch
}

TEST(Einsum, RejectsDimensionMismatch) {
  Rng rng(5);
  DenseTensor a = DenseTensor::random({2, 3}, rng);
  DenseTensor b = DenseTensor::random({4, 2}, rng);
  EXPECT_THROW(tt::tensor::einsum("ab,bc->ac", a, b), tt::Error);
}

TEST(Einsum, ZeroDimensionOperand) {
  Rng rng(6);
  DenseTensor a = DenseTensor::random({3, 0}, rng);
  DenseTensor b = DenseTensor::random({0, 4}, rng);
  DenseTensor c = tt::tensor::einsum("ab,bc->ac", a, b);
  EXPECT_EQ(c.dim(0), 3);
  EXPECT_EQ(c.dim(1), 4);
  EXPECT_DOUBLE_EQ(c.max_abs(), 0.0);
}

}  // namespace

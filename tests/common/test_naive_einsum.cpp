// The whole suite validates the production einsum and block contraction
// against tests/common/naive_einsum.hpp — so the oracle itself is checked
// here against contractions small enough to compute by hand.
#include <gtest/gtest.h>

#include "common/naive_einsum.hpp"
#include "support/error.hpp"
#include "tensor/dense.hpp"

namespace {

using tt::tensor::DenseTensor;
using tt::testing::naive_einsum;

TEST(NaiveEinsum, MatrixVectorProduct) {
  // [[1 2 3], [4 5 6]] · [1 1 1] = [6, 15]
  DenseTensor a({2, 3});
  for (tt::index_t i = 0; i < 6; ++i) a[i] = static_cast<tt::real_t>(i + 1);
  DenseTensor x({3}, 1.0);
  DenseTensor y = naive_einsum("ij,j->i", a, x);
  ASSERT_EQ(y.order(), 1);
  ASSERT_EQ(y.dim(0), 2);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(NaiveEinsum, MatrixMatrixProduct) {
  // [[1 2], [3 4]] · [[5 6], [7 8]] = [[19 22], [43 50]]
  DenseTensor a({2, 2}), b({2, 2});
  a.at({0, 0}) = 1; a.at({0, 1}) = 2; a.at({1, 0}) = 3; a.at({1, 1}) = 4;
  b.at({0, 0}) = 5; b.at({0, 1}) = 6; b.at({1, 0}) = 7; b.at({1, 1}) = 8;
  DenseTensor c = naive_einsum("ik,kj->ij", a, b);
  EXPECT_DOUBLE_EQ(c.at({0, 0}), 19.0);
  EXPECT_DOUBLE_EQ(c.at({0, 1}), 22.0);
  EXPECT_DOUBLE_EQ(c.at({1, 0}), 43.0);
  EXPECT_DOUBLE_EQ(c.at({1, 1}), 50.0);
}

TEST(NaiveEinsum, TransposedOutput) {
  // Same product, output written as ji: c_ji = Σ_k a_ik b_kj.
  DenseTensor a({2, 2}), b({2, 2});
  a.at({0, 0}) = 1; a.at({0, 1}) = 2; a.at({1, 0}) = 3; a.at({1, 1}) = 4;
  b.at({0, 0}) = 5; b.at({0, 1}) = 6; b.at({1, 0}) = 7; b.at({1, 1}) = 8;
  DenseTensor c = naive_einsum("ik,kj->ji", a, b);
  EXPECT_DOUBLE_EQ(c.at({0, 0}), 19.0);
  EXPECT_DOUBLE_EQ(c.at({1, 0}), 22.0);
  EXPECT_DOUBLE_EQ(c.at({0, 1}), 43.0);
  EXPECT_DOUBLE_EQ(c.at({1, 1}), 50.0);
}

TEST(NaiveEinsum, InnerProductToScalar) {
  // [1 2 3] · [4 5 6] = 32, as an order-0 tensor.
  DenseTensor a({3}), b({3});
  for (tt::index_t i = 0; i < 3; ++i) {
    a[i] = static_cast<tt::real_t>(i + 1);
    b[i] = static_cast<tt::real_t>(i + 4);
  }
  DenseTensor s = naive_einsum("i,i->", a, b);
  ASSERT_EQ(s.order(), 0);
  ASSERT_EQ(s.size(), 1);
  EXPECT_DOUBLE_EQ(s[0], 32.0);
}

TEST(NaiveEinsum, OuterProduct) {
  // No contracted label: c_ij = a_i b_j.
  DenseTensor a({2}), b({3});
  a[0] = 2; a[1] = 3;
  b[0] = 1; b[1] = 10; b[2] = 100;
  DenseTensor c = naive_einsum("i,j->ij", a, b);
  EXPECT_DOUBLE_EQ(c.at({0, 0}), 2.0);
  EXPECT_DOUBLE_EQ(c.at({0, 2}), 200.0);
  EXPECT_DOUBLE_EQ(c.at({1, 1}), 30.0);
}

TEST(NaiveEinsum, BatchedLabelAppearsEverywhere) {
  // c_bi = Σ_k a_bik x_bk with b a batch label on both operands and output.
  DenseTensor a({2, 2, 2}), x({2, 2});
  // batch 0: identity, batch 1: [[0 1], [1 0]].
  a.at({0, 0, 0}) = 1; a.at({0, 1, 1}) = 1;
  a.at({1, 0, 1}) = 1; a.at({1, 1, 0}) = 1;
  x.at({0, 0}) = 3; x.at({0, 1}) = 4;
  x.at({1, 0}) = 5; x.at({1, 1}) = 6;
  DenseTensor c = naive_einsum("bik,bk->bi", a, x);
  EXPECT_DOUBLE_EQ(c.at({0, 0}), 3.0);
  EXPECT_DOUBLE_EQ(c.at({0, 1}), 4.0);
  EXPECT_DOUBLE_EQ(c.at({1, 0}), 6.0);
  EXPECT_DOUBLE_EQ(c.at({1, 1}), 5.0);
}

TEST(NaiveEinsum, Order3TimesOrder2TwoContractions) {
  // c_a = Σ_{b,c} t_abc m_bc: contract two labels at once against
  // t_abc = a + 10b + 100c on a 2x2x2 tensor and m = all-ones.
  DenseTensor t({2, 2, 2});
  for (tt::index_t ia = 0; ia < 2; ++ia)
    for (tt::index_t ib = 0; ib < 2; ++ib)
      for (tt::index_t ic = 0; ic < 2; ++ic)
        t.at({ia, ib, ic}) = static_cast<tt::real_t>(ia + 10 * ib + 100 * ic);
  DenseTensor m({2, 2}, 1.0);
  DenseTensor c = naive_einsum("abc,bc->a", t, m);
  // Σ over b,c of (a + 10b + 100c) = 4a + 10·2 + 100·2 = 4a + 220.
  EXPECT_DOUBLE_EQ(c[0], 220.0);
  EXPECT_DOUBLE_EQ(c[1], 224.0);
}

TEST(NaiveEinsum, MalformedSpecThrows) {
  DenseTensor a({2, 2}), b({2, 2});
  EXPECT_THROW(naive_einsum("ik,kj", a, b), tt::Error);   // no arrow
  EXPECT_THROW(naive_einsum("ikkj->ij", a, b), tt::Error);  // no comma
}

}  // namespace

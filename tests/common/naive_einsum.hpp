// Loop-based einsum oracle for tests: O(prod of all label dims), no GEMM.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "tensor/dense.hpp"

namespace tt::testing {

/// Contract two dense tensors by brute-force enumeration of all label values.
/// Supports exactly the spec subset the production einsum accepts.
inline tensor::DenseTensor naive_einsum(const std::string& spec,
                                        const tensor::DenseTensor& a,
                                        const tensor::DenseTensor& b) {
  const auto arrow = spec.find("->");
  const auto comma = spec.find(',');
  TT_CHECK(arrow != std::string::npos && comma != std::string::npos, "bad spec " << spec);
  const std::string la = spec.substr(0, comma);
  const std::string lb = spec.substr(comma + 1, arrow - comma - 1);
  const std::string lc = spec.substr(arrow + 2);

  // Dimension of every label.
  std::map<char, index_t> dim;
  for (std::size_t i = 0; i < la.size(); ++i) dim[la[i]] = a.dim(static_cast<int>(i));
  for (std::size_t i = 0; i < lb.size(); ++i) dim[lb[i]] = b.dim(static_cast<int>(i));

  std::vector<index_t> cshape;
  for (char l : lc) cshape.push_back(dim.at(l));
  tensor::DenseTensor c(cshape);

  std::vector<char> labels;
  for (auto& [l, _] : dim) labels.push_back(l);

  std::map<char, index_t> idx;
  for (char l : labels) idx[l] = 0;

  auto flat_of = [&](const std::string& ls, const tensor::DenseTensor& t) {
    index_t f = 0;
    for (std::size_t i = 0; i < ls.size(); ++i)
      f = f * t.dim(static_cast<int>(i)) + idx.at(ls[i]);
    return f;
  };

  // Odometer over all labels.
  while (true) {
    const real_t va = a.size() ? a[flat_of(la, a)] : 0.0;
    const real_t vb = b.size() ? b[flat_of(lb, b)] : 0.0;
    if (c.size()) {
      index_t fc = 0;
      for (std::size_t i = 0; i < lc.size(); ++i)
        fc = fc * c.dim(static_cast<int>(i)) + idx.at(lc[i]);
      c[fc] += va * vb;
    }
    int pos = static_cast<int>(labels.size()) - 1;
    while (pos >= 0) {
      char l = labels[static_cast<std::size_t>(pos)];
      if (++idx[l] < dim[l]) break;
      idx[l] = 0;
      --pos;
    }
    if (pos < 0) break;
  }
  return c;
}

}  // namespace tt::testing

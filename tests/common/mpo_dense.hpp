// Test helper: contract an MPO chain into the full many-body matrix
// ⟨s|H|s'⟩ for small systems (d^N kept tiny by the caller).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "mps/mpo.hpp"
#include "symm/block_ops.hpp"
#include "symm/fuse.hpp"

namespace tt::testing {

/// Full matrix of the MPO: rows = bra product states, cols = ket product
/// states, site 0 most significant.
inline linalg::Matrix mpo_to_dense_matrix(const mps::Mpo& h) {
  const int n = h.size();
  // Chain-contract over the MPO bonds: result legs
  // (k0, s0, s0', s1, s1', ..., s_{n-1}, s'_{n-1}, k_n).
  symm::BlockTensor acc = h.site(0);
  for (int j = 1; j < n; ++j)
    acc = symm::contract(acc, h.site(j), {{acc.order() - 1, 0}});

  tensor::DenseTensor d = symm::fuse_dense(acc);  // dims: 1, (d,d)×n, 1
  // Permute bra legs together then ket legs together.
  std::vector<int> perm;
  perm.push_back(0);
  for (int j = 0; j < n; ++j) perm.push_back(1 + 2 * j);      // bra legs
  for (int j = 0; j < n; ++j) perm.push_back(2 + 2 * j);      // ket legs
  perm.push_back(2 * n + 1);
  tensor::DenseTensor p = d.permuted(perm);

  index_t dim = 1;
  for (int j = 0; j < n; ++j) dim *= h.sites()->phys().dim();
  linalg::Matrix m(dim, dim);
  for (index_t r = 0; r < dim; ++r)
    for (index_t c = 0; c < dim; ++c) m(r, c) = p[r * dim + c];
  return m;
}

}  // namespace tt::testing

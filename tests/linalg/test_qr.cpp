#include <gtest/gtest.h>

#include <utility>

#include "linalg/gemm.hpp"
#include "linalg/qr.hpp"
#include "support/rng.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::linalg::Matrix;

class QrParam : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(QrParam, FactorsReproduceInput) {
  auto [m, n] = GetParam();
  Rng rng(m * 31 + n);
  Matrix a = Matrix::random(m, n, rng);
  auto f = tt::linalg::qr(a);
  const index_t r = std::min(m, n);
  EXPECT_EQ(f.q.rows(), m);
  EXPECT_EQ(f.q.cols(), r);
  EXPECT_EQ(f.r.rows(), r);
  EXPECT_EQ(f.r.cols(), n);
  Matrix qr = tt::linalg::matmul(f.q, f.r);
  EXPECT_LT(tt::linalg::max_abs_diff(qr, a), 1e-10 * (1.0 + a.max_abs()));
}

TEST_P(QrParam, QHasOrthonormalColumns) {
  auto [m, n] = GetParam();
  Rng rng(m * 37 + n);
  Matrix a = Matrix::random(m, n, rng);
  auto f = tt::linalg::qr(a);
  Matrix qtq = tt::linalg::matmul(true, false, f.q, f.q);
  EXPECT_LT(tt::linalg::max_abs_diff(qtq, Matrix::identity(qtq.rows())), 1e-11);
}

TEST_P(QrParam, RIsUpperTriangular) {
  auto [m, n] = GetParam();
  Rng rng(m * 41 + n);
  Matrix a = Matrix::random(m, n, rng);
  auto f = tt::linalg::qr(a);
  for (index_t i = 0; i < f.r.rows(); ++i)
    for (index_t j = 0; j < std::min<index_t>(i, f.r.cols()); ++j)
      EXPECT_DOUBLE_EQ(f.r(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrParam,
                         ::testing::Values(std::make_pair<index_t, index_t>(1, 1),
                                           std::make_pair<index_t, index_t>(5, 5),
                                           std::make_pair<index_t, index_t>(20, 5),
                                           std::make_pair<index_t, index_t>(5, 20),
                                           std::make_pair<index_t, index_t>(64, 64),
                                           std::make_pair<index_t, index_t>(100, 37),
                                           std::make_pair<index_t, index_t>(37, 100),
                                           std::make_pair<index_t, index_t>(128, 1),
                                           std::make_pair<index_t, index_t>(1, 128)));

TEST(Qr, RankDeficientStillOrthogonal) {
  Rng rng(5);
  Matrix x = Matrix::random(10, 2, rng);
  Matrix y = Matrix::random(2, 6, rng);
  Matrix a = tt::linalg::matmul(x, y);  // rank 2 of 6
  auto f = tt::linalg::qr(a);
  Matrix qtq = tt::linalg::matmul(true, false, f.q, f.q);
  EXPECT_LT(tt::linalg::max_abs_diff(qtq, Matrix::identity(6)), 1e-10);
  EXPECT_LT(tt::linalg::max_abs_diff(tt::linalg::matmul(f.q, f.r), a), 1e-10);
}

TEST(Qr, ZeroMatrix) {
  Matrix a(6, 3, 0.0);
  auto f = tt::linalg::qr(a);
  EXPECT_LT(tt::linalg::matmul(f.q, f.r).max_abs(), 1e-14);
  Matrix qtq = tt::linalg::matmul(true, false, f.q, f.q);
  EXPECT_LT(tt::linalg::max_abs_diff(qtq, Matrix::identity(3)), 1e-12);
}

TEST(Lq, FactorsReproduceInputAndQOrthonormalRows) {
  Rng rng(6);
  for (auto [m, n] : {std::pair<index_t, index_t>{4, 9}, {9, 4}, {6, 6}}) {
    Matrix a = Matrix::random(m, n, rng);
    auto f = tt::linalg::lq(a);
    Matrix lq_prod = tt::linalg::matmul(f.l, f.q);
    EXPECT_LT(tt::linalg::max_abs_diff(lq_prod, a), 1e-10);
    Matrix qqt = tt::linalg::matmul(false, true, f.q, f.q);
    EXPECT_LT(tt::linalg::max_abs_diff(qqt, Matrix::identity(qqt.rows())), 1e-11);
    // L lower-triangular.
    for (index_t i = 0; i < f.l.rows(); ++i)
      for (index_t j = i + 1; j < f.l.cols(); ++j) EXPECT_DOUBLE_EQ(f.l(i, j), 0.0);
  }
}

TEST(Qr, FlopsModelPositive) {
  EXPECT_GT(tt::linalg::qr_flops(64, 32), 0.0);
  EXPECT_GT(tt::linalg::qr_flops(32, 64), 0.0);
}

}  // namespace

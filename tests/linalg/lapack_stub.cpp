// Hermetic Fortran-ABI BLAS/LAPACK stand-ins for backend_adapter_test.
//
// Each routine implements the *documented* column-major semantics of its
// LAPACK/BLAS namesake, delegating the numerics to the builtin kernels. The
// adapter test links backend_blas.cpp against these instead of a vendor
// library, so the row-major ↔ column-major translation layer is validated in
// every build — including TT_WITH_BLAS=OFF ones — while true vendor parity
// runs in the CI blas job.
//
// Implementations transcribe the reference netlib interface contracts; they
// must NOT mirror backend_blas.cpp's reasoning, or the test would only prove
// internal consistency.
#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "linalg/eigen.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace {

using tt::index_t;
using tt::linalg::Matrix;

// Row-major Matrix from a column-major Fortran buffer.
Matrix from_colmajor(const double* a, int rows, int cols, int lda) {
  Matrix m(rows, cols);
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i) m(i, j) = a[j * lda + i];
  return m;
}

void to_colmajor(const Matrix& m, double* a, int lda) {
  for (index_t j = 0; j < m.cols(); ++j)
    for (index_t i = 0; i < m.rows(); ++i)
      a[j * lda + i] = m(i, j);
}

// dgeqrf stashes its Q here for the following dorgqr (real LAPACK encodes it
// in reflectors + tau; the adapter treats those as opaque, so a stash keyed
// by the factored buffer is an equivalent contract).
std::map<const double*, Matrix>& qr_stash() {
  static std::map<const double*, Matrix> stash;
  return stash;
}

}  // namespace

extern "C" {

// C(m×n) := alpha·op(A)·op(B) + beta·C, all column-major.
void dgemm_(const char* transa, const char* transb, const int* m, const int* n,
            const int* k, const double* alpha, const double* a, const int* lda,
            const double* b, const int* ldb, const double* beta, double* c,
            const int* ldc) {
  const bool ta = *transa == 'T' || *transa == 't';
  const bool tb = *transb == 'T' || *transb == 't';
  for (int j = 0; j < *n; ++j)
    for (int i = 0; i < *m; ++i) {
      double s = 0.0;
      for (int l = 0; l < *k; ++l)
        s += (ta ? a[i * *lda + l] : a[l * *lda + i]) *
             (tb ? b[l * *ldb + j] : b[j * *ldb + l]);
      double& cij = c[j * *ldc + i];
      cij = (*beta == 0.0) ? *alpha * s : *alpha * s + *beta * cij;
    }
}

// y := alpha·op(A)·x + beta·y, A (m×n) column-major.
void dgemv_(const char* trans, const int* m, const int* n, const double* alpha,
            const double* a, const int* lda, const double* x, const int* incx,
            const double* beta, double* y, const int* incy) {
  const bool t = *trans == 'T' || *trans == 't';
  const int rows = t ? *n : *m;
  const int cols = t ? *m : *n;
  for (int i = 0; i < rows; ++i) {
    double s = 0.0;
    for (int j = 0; j < cols; ++j)
      s += (t ? a[i * *lda + j] : a[j * *lda + i]) * x[j * *incx];
    double& yi = y[i * *incy];
    yi = (*beta == 0.0) ? *alpha * s : *alpha * s + *beta * yi;
  }
}

// Thin SVD of column-major A (m×n), jobz='S': U (m×r, ld ldu), s descending,
// VT (r×n, ld ldvt). A is destroyed.
void dgesdd_(const char* jobz, const int* m, const int* n, double* a,
             const int* lda, double* s, double* u, const int* ldu, double* vt,
             const int* ldvt, double* work, const int* lwork, int* iwork,
             int* info) {
  (void)jobz;
  (void)iwork;
  *info = 0;
  if (*lwork == -1) {
    work[0] = 1.0;
    return;
  }
  const Matrix arm = from_colmajor(a, *m, *n, *lda);
  const auto f = tt::linalg::detail::builtin_svd(arm);
  std::copy(f.s.begin(), f.s.end(), s);
  to_colmajor(f.u, u, *ldu);
  to_colmajor(f.vt, vt, *ldvt);
}

void dgesvd_(const char* jobu, const char* jobvt, const int* m, const int* n,
             double* a, const int* lda, double* s, double* u, const int* ldu,
             double* vt, const int* ldvt, double* work, const int* lwork,
             int* info) {
  (void)jobu;
  (void)jobvt;
  dgesdd_("S", m, n, a, lda, s, u, ldu, vt, ldvt, work, lwork, nullptr, info);
}

// QR of column-major A (m×n): R lands in the upper triangle of A; the
// reflector representation of Q is stashed for dorgqr.
void dgeqrf_(const int* m, const int* n, double* a, const int* lda, double* tau,
             double* work, const int* lwork, int* info) {
  (void)tau;
  *info = 0;
  if (*lwork == -1) {
    work[0] = 1.0;
    return;
  }
  const Matrix arm = from_colmajor(a, *m, *n, *lda);
  auto f = tt::linalg::detail::builtin_qr(arm);
  for (index_t i = 0; i < f.r.rows(); ++i)
    for (index_t j = i; j < f.r.cols(); ++j) a[j * *lda + i] = f.r(i, j);
  qr_stash()[a] = std::move(f.q);
}

// Overwrites the first n columns of A with the explicit Q from the preceding
// dgeqrf of the same buffer.
void dorgqr_(const int* m, const int* n, const int* k, double* a,
             const int* lda, const double* tau, double* work, const int* lwork,
             int* info) {
  (void)m;
  (void)n;
  (void)k;
  (void)tau;
  *info = 0;
  if (*lwork == -1) {
    work[0] = 1.0;
    return;
  }
  auto it = qr_stash().find(a);
  if (it == qr_stash().end()) {
    *info = -1;  // no matching dgeqrf: adapter called out of order
    return;
  }
  to_colmajor(it->second, a, *lda);
  qr_stash().erase(it);
}

// Symmetric eigendecomposition of column-major A (n×n), jobz='V': eigenvalues
// ascending in w, eigenvector columns overwrite A.
void dsyevd_(const char* jobz, const char* uplo, const int* n, double* a,
             const int* lda, double* w, double* work, const int* lwork,
             int* iwork, const int* liwork, int* info) {
  (void)jobz;
  (void)uplo;
  *info = 0;
  if (*lwork == -1 || *liwork == -1) {
    work[0] = 1.0;
    iwork[0] = 1;
    return;
  }
  const Matrix arm = from_colmajor(a, *n, *n, *lda);
  const auto e = tt::linalg::detail::builtin_eigh(arm);
  std::copy(e.values.begin(), e.values.end(), w);
  to_colmajor(e.vectors, a, *lda);
}

}  // extern "C"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "linalg/backend.hpp"
#include "linalg/gemm.hpp"
#include "support/rng.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::linalg::Matrix;

// Naive reference multiply for op(A)(m×k) · op(B)(k×n).
Matrix naive(bool ta, bool tb, const Matrix& a, const Matrix& b) {
  const index_t m = ta ? a.cols() : a.rows();
  const index_t k = ta ? a.rows() : a.cols();
  const index_t n = tb ? b.rows() : b.cols();
  Matrix c(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t kk = 0; kk < k; ++kk)
        s += (ta ? a(kk, i) : a(i, kk)) * (tb ? b(j, kk) : b(kk, j));
      c(i, j) = s;
    }
  return c;
}

struct GemmCase {
  index_t m, n, k;
  bool ta, tb;
};

class GemmParam : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParam, MatchesNaiveReference) {
  const GemmCase& gc = GetParam();
  Rng rng(gc.m * 131 + gc.n * 17 + gc.k + (gc.ta ? 1000 : 0) + (gc.tb ? 2000 : 0));
  Matrix a = gc.ta ? Matrix::random(gc.k, gc.m, rng) : Matrix::random(gc.m, gc.k, rng);
  Matrix b = gc.tb ? Matrix::random(gc.n, gc.k, rng) : Matrix::random(gc.k, gc.n, rng);
  Matrix c = tt::linalg::matmul(gc.ta, gc.tb, a, b);
  Matrix ref = naive(gc.ta, gc.tb, a, b);
  EXPECT_LT(tt::linalg::max_abs_diff(c, ref), 1e-10 * (1.0 + ref.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParam,
    ::testing::Values(
        GemmCase{1, 1, 1, false, false}, GemmCase{3, 5, 7, false, false},
        GemmCase{16, 16, 16, false, false}, GemmCase{65, 33, 129, false, false},
        GemmCase{128, 64, 300, false, false}, GemmCase{5, 3, 4, true, false},
        GemmCase{70, 40, 90, true, false}, GemmCase{5, 3, 4, false, true},
        GemmCase{70, 40, 90, false, true}, GemmCase{6, 7, 8, true, true},
        GemmCase{90, 110, 70, true, true}, GemmCase{1, 200, 1, false, false},
        GemmCase{200, 1, 64, false, false},
        // Packed micro-kernel edges: one off either side of the register tile
        // (4×8), the panel blocks (128 rows, 256 k, 2048 cols), and shapes
        // that leave partially filled zero-padded tiles in every corner.
        GemmCase{4, 8, 4, false, false}, GemmCase{5, 9, 3, false, false},
        GemmCase{3, 7, 5, false, false}, GemmCase{127, 255, 129, false, false},
        GemmCase{129, 9, 257, false, false}, GemmCase{130, 2049, 2, false, false},
        GemmCase{5, 9, 257, true, false}, GemmCase{129, 7, 31, false, true},
        GemmCase{131, 9, 258, true, true}));

TEST(Gemm, AlphaBetaAccumulate) {
  Rng rng(9);
  Matrix a = Matrix::random(8, 6, rng);
  Matrix b = Matrix::random(6, 5, rng);
  Matrix c = Matrix::random(8, 5, rng);
  Matrix c0 = c;
  tt::linalg::gemm(false, false, 2.0, a, b, 0.5, c);
  Matrix ref = naive(false, false, a, b);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_NEAR(c(i, j), 2.0 * ref(i, j) + 0.5 * c0(i, j), 1e-10);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Rng rng(10);
  Matrix a = Matrix::random(4, 4, rng);
  Matrix b = Matrix::random(4, 4, rng);
  Matrix c(4, 4, 1e300);  // would pollute result if beta=0 were read as multiply
  tt::linalg::gemm(false, false, 1.0, a, b, 0.0, c);
  EXPECT_LT(tt::linalg::max_abs_diff(c, naive(false, false, a, b)), 1e-10);
}

TEST(Gemm, ZeroInnerDimensionGivesZero) {
  Matrix a(3, 0), b(0, 2);
  Matrix c = tt::linalg::matmul(a, b);
  EXPECT_EQ(c.rows(), 3);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c.max_abs(), 0.0);
}

TEST(Gemm, InnerDimensionMismatchThrows) {
  Matrix a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(tt::linalg::gemm(false, false, 1.0, a, b, 0.0, c), tt::Error);
}

TEST(Gemm, OutputShapeMismatchThrows) {
  Matrix a(3, 4), b(4, 2), c(3, 3);
  EXPECT_THROW(tt::linalg::gemm(false, false, 1.0, a, b, 0.0, c), tt::Error);
}

TEST(Gemm, AliasedOutputThrows) {
  Rng rng(11);
  Matrix a = Matrix::random(4, 4, rng);
  Matrix b = Matrix::random(4, 4, rng);
  // c aliasing either operand would be silently corrupted by the beta scaling
  // pass before the multiply reads it.
  EXPECT_THROW(tt::linalg::gemm(false, false, 1.0, a, b, 0.0, a), tt::Error);
  EXPECT_THROW(tt::linalg::gemm(false, false, 1.0, a, b, 0.0, b), tt::Error);
  EXPECT_THROW(
      tt::linalg::gemm_raw(false, false, 4, 4, 4, 1.0, a.data(), b.data(), 0.0,
                           a.data()),
      tt::Error);
  // Partial overlap is rejected too, not just exact pointer equality.
  EXPECT_THROW(tt::linalg::gemm_raw(false, false, 2, 2, 2, 1.0, a.data(),
                                    b.data(), 0.0, a.data() + 1),
               tt::Error);
}

TEST(Gemv, MatchesGemm) {
  Rng rng(12);
  Matrix a = Matrix::random(7, 9, rng);
  Matrix x = Matrix::random(9, 1, rng);
  std::vector<double> y(7, 0.0);
  tt::linalg::gemv(7, 9, 1.0, a.data(), x.data(), 0.0, y.data());
  Matrix ref = tt::linalg::matmul(a, x);
  for (index_t i = 0; i < 7; ++i) EXPECT_NEAR(y[static_cast<std::size_t>(i)], ref(i, 0), 1e-12);
}

TEST(Gemv, BetaZeroOverwritesWithoutReadingY) {
  // BLAS semantics: beta == 0 must not read y — NaN-poisoned or
  // uninitialized output must be overwritten, not propagated via 0 * NaN.
  Rng rng(13);
  Matrix a = Matrix::random(5, 6, rng);
  Matrix x = Matrix::random(6, 1, rng);
  std::vector<double> y(5, std::numeric_limits<double>::quiet_NaN());
  tt::linalg::gemv(5, 6, 2.0, a.data(), x.data(), 0.0, y.data());
  Matrix ref = tt::linalg::matmul(a, x);
  for (index_t i = 0; i < 5; ++i) {
    ASSERT_FALSE(std::isnan(y[static_cast<std::size_t>(i)])) << "row " << i;
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], 2.0 * ref(i, 0), 1e-12);
  }
}

TEST(Gemv, NonzeroBetaStillAccumulates) {
  Rng rng(14);
  Matrix a = Matrix::random(3, 4, rng);
  Matrix x = Matrix::random(4, 1, rng);
  std::vector<double> y{1.0, -2.0, 3.0};
  const std::vector<double> y0 = y;
  tt::linalg::gemv(3, 4, 1.0, a.data(), x.data(), 0.5, y.data());
  Matrix ref = tt::linalg::matmul(a, x);
  for (index_t i = 0; i < 3; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                ref(i, 0) + 0.5 * y0[static_cast<std::size_t>(i)], 1e-12);
}

TEST(Gemm, FlopCount) {
  EXPECT_DOUBLE_EQ(tt::linalg::gemm_flops(2, 3, 4), 48.0);
}

TEST(Gemm, BuiltinPropagatesNanThroughZeroEntries) {
  // The old loop nest skipped k-steps where a(i,k) == 0, silently turning
  // 0 · NaN into 0; the packed kernel follows IEEE/BLAS arithmetic, so a NaN
  // anywhere in a contributing B row must reach the output.
  const std::string saved = tt::linalg::backend_name();
  tt::linalg::set_backend("builtin");
  Matrix a(2, 2);  // row 0 = [0, 1], row 1 = [1, 0]
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  Matrix b(2, 2, 1.0);
  b(0, 0) = std::numeric_limits<double>::quiet_NaN();
  Matrix c(2, 2);
  tt::linalg::gemm(false, false, 1.0, a, b, 0.0, c);
  EXPECT_TRUE(std::isnan(c(1, 0)));  // 1·NaN + 0·1
  EXPECT_TRUE(std::isnan(c(0, 0)));  // 0·NaN + 1·1: no zero-skipping shortcut
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
  tt::linalg::set_backend(saved);
}

TEST(Gemm, BuiltinBitwiseDeterministicAcrossThreadCounts) {
  // The PR-2 invariant, at the kernel level: the packed GEMM partitions only
  // disjoint C row panels across threads and keeps every element's k-order
  // fixed, so results are bitwise identical at any thread count. The kernel
  // threads via OpenMP, so that is the knob varied here (no-op serial builds
  // still check repeatability).
  const std::string saved = tt::linalg::backend_name();
  tt::linalg::set_backend("builtin");
  Rng rng(77);
  Matrix a = Matrix::random(300, 130, rng);  // 3 row panels at kMc = 128
  Matrix b = Matrix::random(130, 90, rng);
#ifdef _OPENMP
  const int saved_threads = omp_get_max_threads();
#endif
  auto run_with_threads = [&](int threads) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    return tt::linalg::matmul(a, b);
  };
  Matrix c1 = run_with_threads(1);
  Matrix c2 = run_with_threads(2);
  Matrix c8 = run_with_threads(8);
#ifdef _OPENMP
  omp_set_num_threads(saved_threads);
#endif
  EXPECT_TRUE(c1 == c2);
  EXPECT_TRUE(c1 == c8);
  tt::linalg::set_backend(saved);
}

}  // namespace

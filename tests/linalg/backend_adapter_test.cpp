// Validates the row-major ↔ column-major adapter inside the "blas" backend
// against the builtin kernels, using the hermetic Fortran stubs in
// lapack_stub.cpp instead of a vendor library (see that file's header). Built
// only when TT_WITH_BLAS=OFF — vendor builds run the real parity suite in
// test_backend.cpp instead.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/backend.hpp"
#include "linalg/eigen.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "support/rng.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::linalg::Matrix;

const tt::linalg::Backend& adapter() {
  return *tt::linalg::detail::blas_backend_instance();
}

constexpr double kTol = 1e-10;

void expect_close(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_LT(tt::linalg::max_abs_diff(a, b), kTol * (1.0 + b.max_abs())) << what;
}

TEST(BlasAdapter, GemmMatchesBuiltinAcrossTransposes) {
  Rng rng(31);
  const struct {
    index_t m, n, k;
    bool ta, tb;
  } cases[] = {{1, 1, 1, false, false}, {5, 7, 9, false, false},
               {13, 6, 21, true, false}, {8, 17, 5, false, true},
               {9, 11, 14, true, true},  {2, 30, 1, true, false}};
  for (const auto& c : cases) {
    Matrix a = c.ta ? Matrix::random(c.k, c.m, rng) : Matrix::random(c.m, c.k, rng);
    Matrix b = c.tb ? Matrix::random(c.n, c.k, rng) : Matrix::random(c.k, c.n, rng);
    Matrix c0 = Matrix::random(c.m, c.n, rng);
    Matrix want = c0;
    Matrix got = c0;
    tt::linalg::detail::builtin_gemm(c.ta, c.tb, c.m, c.n, c.k, 1.25, a.data(),
                                     b.data(), -2.0, want.data());
    adapter().gemm(c.ta, c.tb, c.m, c.n, c.k, 1.25, a.data(), b.data(), -2.0,
                   got.data());
    expect_close(got, want, "gemm");
  }
}

TEST(BlasAdapter, GemvMatchesBuiltin) {
  Rng rng(32);
  for (index_t m : {1, 6, 23}) {
    for (index_t n : {1, 8, 17}) {
      Matrix a = Matrix::random(m, n, rng);
      Matrix x = Matrix::random(n, 1, rng);
      std::vector<double> want(static_cast<std::size_t>(m));
      for (auto& v : want) v = rng.normal();
      std::vector<double> got = want;
      tt::linalg::detail::builtin_gemv(m, n, 1.5, a.data(), x.data(), 0.5,
                                       want.data());
      adapter().gemv(m, n, 1.5, a.data(), x.data(), 0.5, got.data());
      for (index_t i = 0; i < m; ++i)
        EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                    want[static_cast<std::size_t>(i)], kTol);
    }
  }
}

TEST(BlasAdapter, GemvZeroInnerDimensionAppliesBeta) {
  std::vector<double> y{3.0, -4.0};
  adapter().gemv(2, 0, 1.0, nullptr, nullptr, 0.5, y.data());
  EXPECT_DOUBLE_EQ(y[0], 1.5);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  adapter().gemv(2, 0, 1.0, nullptr, nullptr, 0.0, y.data());
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(BlasAdapter, SvdMatchesBuiltin) {
  Rng rng(33);
  const std::pair<index_t, index_t> shapes[] = {{1, 1}, {5, 5}, {12, 7}, {7, 12}};
  for (auto [m, n] : shapes) {
    Matrix a = Matrix::random(m, n, rng);
    const auto want = tt::linalg::detail::builtin_svd(a);
    const auto got = adapter().svd(a);
    ASSERT_EQ(got.s.size(), want.s.size());
    for (std::size_t i = 0; i < got.s.size(); ++i)
      EXPECT_NEAR(got.s[i], want.s[i], kTol * (1.0 + want.s[0]));
    expect_close(got.reconstruct(), a, "svd reconstruction");
    expect_close(tt::linalg::matmul(true, false, got.u, got.u),
                 Matrix::identity(got.u.cols()), "svd UᵀU");
    expect_close(tt::linalg::matmul(false, true, got.vt, got.vt),
                 Matrix::identity(got.vt.rows()), "svd VᵀV");
  }
}

TEST(BlasAdapter, QrMatchesBuiltin) {
  Rng rng(34);
  const std::pair<index_t, index_t> shapes[] = {{1, 1}, {6, 6}, {14, 5}, {5, 14}};
  for (auto [m, n] : shapes) {
    Matrix a = Matrix::random(m, n, rng);
    const auto f = adapter().qr(a);
    ASSERT_EQ(f.q.rows(), m);
    ASSERT_EQ(f.q.cols(), std::min(m, n));
    ASSERT_EQ(f.r.rows(), std::min(m, n));
    ASSERT_EQ(f.r.cols(), n);
    expect_close(tt::linalg::matmul(f.q, f.r), a, "QR reconstruction");
    expect_close(tt::linalg::matmul(true, false, f.q, f.q),
                 Matrix::identity(f.q.cols()), "QᵀQ");
    for (index_t i = 0; i < f.r.rows(); ++i)
      for (index_t j = 0; j < std::min(i, f.r.cols()); ++j)
        EXPECT_EQ(f.r(i, j), 0.0);
  }
}

TEST(BlasAdapter, EighMatchesBuiltin) {
  Rng rng(35);
  for (index_t n : {1, 5, 18}) {
    Matrix g = Matrix::random(n, n, rng);
    Matrix a = tt::linalg::matmul(false, true, g, g);
    const auto want = tt::linalg::detail::builtin_eigh(a);
    const auto got = adapter().eigh(a);
    ASSERT_EQ(got.values.size(), want.values.size());
    const double scale = 1.0 + std::abs(want.values.back());
    for (std::size_t i = 0; i < got.values.size(); ++i)
      EXPECT_NEAR(got.values[i], want.values[i], kTol * scale);
    Matrix av = tt::linalg::matmul(a, got.vectors);
    Matrix vw = got.vectors;
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        vw(i, j) *= got.values[static_cast<std::size_t>(j)];
    expect_close(av, vw, "eigh residual");
  }
}

}  // namespace

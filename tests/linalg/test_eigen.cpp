#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/gemm.hpp"
#include "support/rng.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::linalg::Matrix;

Matrix random_symmetric(index_t n, unsigned seed) {
  Rng rng(seed);
  Matrix a = Matrix::random(n, n, rng);
  Matrix s(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));
  return s;
}

class EighParam : public ::testing::TestWithParam<index_t> {};

TEST_P(EighParam, DiagonalizesSymmetricMatrix) {
  const index_t n = GetParam();
  Matrix a = random_symmetric(n, static_cast<unsigned>(n) * 7 + 1);
  auto e = tt::linalg::eigh(a);
  // A·V = V·diag(w)
  Matrix av = tt::linalg::matmul(a, e.vectors);
  Matrix vd = e.vectors;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) vd(i, j) *= e.values[static_cast<std::size_t>(j)];
  EXPECT_LT(tt::linalg::max_abs_diff(av, vd), 1e-9 * (1.0 + a.max_abs()));
}

TEST_P(EighParam, EigenvectorsOrthonormal) {
  const index_t n = GetParam();
  Matrix a = random_symmetric(n, static_cast<unsigned>(n) * 11 + 3);
  auto e = tt::linalg::eigh(a);
  Matrix vtv = tt::linalg::matmul(true, false, e.vectors, e.vectors);
  EXPECT_LT(tt::linalg::max_abs_diff(vtv, Matrix::identity(n)), 1e-10);
}

TEST_P(EighParam, EigenvaluesAscending) {
  const index_t n = GetParam();
  Matrix a = random_symmetric(n, static_cast<unsigned>(n) * 13 + 5);
  auto e = tt::linalg::eigh(a);
  for (std::size_t i = 0; i + 1 < e.values.size(); ++i)
    EXPECT_LE(e.values[i], e.values[i + 1] + 1e-12);
}

TEST_P(EighParam, TraceEqualsSumOfEigenvalues) {
  const index_t n = GetParam();
  Matrix a = random_symmetric(n, static_cast<unsigned>(n) * 17 + 7);
  auto e = tt::linalg::eigh(a);
  double tr = 0.0, sum = 0.0;
  for (index_t i = 0; i < n; ++i) tr += a(i, i);
  for (double w : e.values) sum += w;
  EXPECT_NEAR(tr, sum, 1e-9 * (1.0 + std::abs(tr)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighParam,
                         ::testing::Values<index_t>(1, 2, 3, 5, 8, 16, 33, 64));

TEST(Eigh, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  auto e = tt::linalg::eigh(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
}

TEST(Eigh, DiagonalInput) {
  Matrix a(3, 3);
  a(0, 0) = 5;
  a(1, 1) = -2;
  a(2, 2) = 0.5;
  auto e = tt::linalg::eigh(a);
  EXPECT_NEAR(e.values[0], -2.0, 1e-13);
  EXPECT_NEAR(e.values[1], 0.5, 1e-13);
  EXPECT_NEAR(e.values[2], 5.0, 1e-13);
}

TEST(Eigh, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(tt::linalg::eigh(a), tt::Error);
}

TEST(Eigh, RejectsAsymmetric) {
  Matrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = -1.0;
  EXPECT_THROW(tt::linalg::eigh(a), tt::Error);
}

TEST(Eigh, NegativeDefinite) {
  Matrix a(2, 2);
  a(0, 0) = -4;
  a(1, 1) = -9;
  auto e = tt::linalg::eigh(a);
  EXPECT_NEAR(e.values[0], -9.0, 1e-12);
  EXPECT_NEAR(e.values[1], -4.0, 1e-12);
}

}  // namespace

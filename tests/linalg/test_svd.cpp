#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/eigen.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "support/rng.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::linalg::Matrix;

class SvdParam : public ::testing::TestWithParam<std::pair<index_t, index_t>> {};

TEST_P(SvdParam, ReconstructsInput) {
  auto [m, n] = GetParam();
  Rng rng(m * 101 + n);
  Matrix a = Matrix::random(m, n, rng);
  auto f = tt::linalg::svd(a);
  EXPECT_LT(tt::linalg::max_abs_diff(f.reconstruct(), a), 1e-9 * (1.0 + a.max_abs()));
}

TEST_P(SvdParam, FactorsOrthonormal) {
  auto [m, n] = GetParam();
  Rng rng(m * 103 + n);
  Matrix a = Matrix::random(m, n, rng);
  auto f = tt::linalg::svd(a);
  Matrix utu = tt::linalg::matmul(true, false, f.u, f.u);
  Matrix vvt = tt::linalg::matmul(false, true, f.vt, f.vt);
  EXPECT_LT(tt::linalg::max_abs_diff(utu, Matrix::identity(utu.rows())), 1e-10);
  EXPECT_LT(tt::linalg::max_abs_diff(vvt, Matrix::identity(vvt.rows())), 1e-10);
}

TEST_P(SvdParam, SingularValuesSortedNonNegative) {
  auto [m, n] = GetParam();
  Rng rng(m * 107 + n);
  Matrix a = Matrix::random(m, n, rng);
  auto f = tt::linalg::svd(a);
  EXPECT_EQ(static_cast<index_t>(f.s.size()), std::min(m, n));
  for (std::size_t i = 0; i + 1 < f.s.size(); ++i) EXPECT_GE(f.s[i], f.s[i + 1]);
  for (double s : f.s) EXPECT_GE(s, 0.0);
}

TEST_P(SvdParam, MatchesEigenvaluesOfGramMatrix) {
  auto [m, n] = GetParam();
  if (m * n > 64 * 64) GTEST_SKIP() << "gram oracle only for small shapes";
  Rng rng(m * 109 + n);
  Matrix a = Matrix::random(m, n, rng);
  auto f = tt::linalg::svd(a);
  Matrix gram = tt::linalg::matmul(true, false, a, a);  // n×n
  auto e = tt::linalg::eigh(gram);
  // eigh ascending; singular values descending.
  const index_t r = std::min(m, n);
  for (index_t i = 0; i < r; ++i) {
    const double lambda = e.values[static_cast<std::size_t>(n - 1 - i)];
    EXPECT_NEAR(f.s[static_cast<std::size_t>(i)], std::sqrt(std::max(0.0, lambda)),
                1e-8 * (1.0 + std::abs(lambda)));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdParam,
                         ::testing::Values(std::make_pair<index_t, index_t>(1, 1),
                                           std::make_pair<index_t, index_t>(4, 4),
                                           std::make_pair<index_t, index_t>(16, 16),
                                           std::make_pair<index_t, index_t>(40, 12),
                                           std::make_pair<index_t, index_t>(12, 40),
                                           std::make_pair<index_t, index_t>(100, 100),
                                           std::make_pair<index_t, index_t>(200, 50),
                                           std::make_pair<index_t, index_t>(50, 200),
                                           std::make_pair<index_t, index_t>(1, 60),
                                           std::make_pair<index_t, index_t>(60, 1)));

TEST(Svd, ExactRankDeficiency) {
  Rng rng(3);
  Matrix x = Matrix::random(20, 3, rng);
  Matrix y = Matrix::random(3, 15, rng);
  Matrix a = tt::linalg::matmul(x, y);  // rank 3
  auto f = tt::linalg::svd(a);
  for (std::size_t i = 3; i < f.s.size(); ++i) EXPECT_LT(f.s[i], 1e-9);
  // U must stay orthonormal even in the null space (completion path).
  Matrix utu = tt::linalg::matmul(true, false, f.u, f.u);
  EXPECT_LT(tt::linalg::max_abs_diff(utu, Matrix::identity(15)), 1e-8);
  EXPECT_LT(tt::linalg::max_abs_diff(f.reconstruct(), a), 1e-9);
}

TEST(Svd, ZeroMatrix) {
  Matrix a(8, 5, 0.0);
  auto f = tt::linalg::svd(a);
  for (double s : f.s) EXPECT_DOUBLE_EQ(s, 0.0);
  Matrix utu = tt::linalg::matmul(true, false, f.u, f.u);
  EXPECT_LT(tt::linalg::max_abs_diff(utu, Matrix::identity(5)), 1e-8);
}

TEST(Svd, DiagonalMatrixExact) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = 7.0;
  a(2, 2) = 1.0;
  auto f = tt::linalg::svd(a);
  EXPECT_NEAR(f.s[0], 7.0, 1e-12);
  EXPECT_NEAR(f.s[1], 3.0, 1e-12);
  EXPECT_NEAR(f.s[2], 1.0, 1e-12);
}

TEST(Svd, EmptyMatrix) {
  Matrix a(0, 4);
  auto f = tt::linalg::svd(a);
  EXPECT_TRUE(f.s.empty());
  EXPECT_EQ(f.u.rows(), 0);
  EXPECT_EQ(f.vt.cols(), 4);
}

TEST(Svd, HugeDynamicRange) {
  // Singular values spanning 12 orders of magnitude survive one-sided Jacobi.
  Matrix a(3, 3);
  a(0, 0) = 1e6;
  a(1, 1) = 1.0;
  a(2, 2) = 1e-6;
  auto f = tt::linalg::svd(a);
  EXPECT_NEAR(f.s[0], 1e6, 1e-4);
  EXPECT_NEAR(f.s[1], 1.0, 1e-10);
  EXPECT_NEAR(f.s[2], 1e-6, 1e-14);
}

TEST(Svd, SubnormalColumnNormsDoNotDivideByZero) {
  // Column norms around 1e-100 square to ~1e-200 each; their PRODUCT
  // (aii*ajj ~ 1e-400) underflows double entirely. The Jacobi convergence
  // test used to divide |aij| by sqrt(aii*ajj) == 0 — a float division by
  // zero (NaN when the columns happen to be orthogonal) caught by the ubsan
  // preset. The factorization must stay finite and exact instead.
  Matrix a(3, 3);
  a(0, 0) = 3e-100;
  a(0, 1) = 4e-100;
  a(1, 0) = -4e-100;
  a(1, 1) = 3e-100;
  a(2, 2) = 1e-120;
  auto f = tt::linalg::svd(a);
  ASSERT_EQ(f.s.size(), 3u);
  for (double s : f.s) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
  }
  EXPECT_NEAR(f.s[0], 5e-100, 1e-110);
  EXPECT_NEAR(f.s[1], 5e-100, 1e-110);
  Matrix utu = tt::linalg::matmul(true, false, f.u, f.u);
  EXPECT_LT(tt::linalg::max_abs_diff(utu, Matrix::identity(3)), 1e-8);
}

TEST(Svd, TinyOrthogonalDiagonalStaysExact) {
  // aij == 0 with underflowing aii*ajj (1e-200 each squares the product to
  // 1e-400 == 0.0) used to produce 0/0 == NaN in the off-diagonal
  // convergence measure; pin the already-diagonal tiny case. The norms
  // themselves (1e-200) stay normal doubles, so the values are exact.
  Matrix a(2, 2);
  a(0, 0) = 2e-100;
  a(1, 1) = 1e-100;
  auto f = tt::linalg::svd(a);
  EXPECT_DOUBLE_EQ(f.s[0], 2e-100);
  EXPECT_DOUBLE_EQ(f.s[1], 1e-100);
}

TEST(SvdRank, CutoffAndCap) {
  std::vector<double> s{1.0, 0.5, 1e-3, 1e-13, 0.0};
  EXPECT_EQ(tt::linalg::svd_rank(s, 1e-12, 100), 3);
  EXPECT_EQ(tt::linalg::svd_rank(s, 1e-12, 2), 2);
  EXPECT_EQ(tt::linalg::svd_rank(s, 0.0, 100), 4);  // exact zeros dropped
  EXPECT_EQ(tt::linalg::svd_rank(s, 10.0, 100), 1); // never drops to zero rank
  EXPECT_EQ(tt::linalg::svd_rank({}, 1e-12, 4), 0);
}

TEST(SvdRank, MaxKeepZeroWins) {
  // The keep-at-least-one floor applies before the cap: an explicit
  // max_keep == 0 truncation request must return 0, not 1.
  std::vector<double> s{1.0, 0.5};
  EXPECT_EQ(tt::linalg::svd_rank(s, 1e-12, 0), 0);
  EXPECT_EQ(tt::linalg::svd_rank(s, 10.0, 0), 0);   // floor then cap
  EXPECT_EQ(tt::linalg::svd_rank(s, 10.0, 1), 1);   // floor survives cap >= 1
  EXPECT_EQ(tt::linalg::svd_rank({}, 1e-12, 0), 0);
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "support/error.hpp"

namespace {

using tt::Rng;
using tt::linalg::Matrix;

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  for (tt::index_t i = 0; i < 2; ++i)
    for (tt::index_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
}

TEST(Matrix, IdentityDiagonal) {
  Matrix id = Matrix::identity(4);
  for (tt::index_t i = 0; i < 4; ++i)
    for (tt::index_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, RowMajorLayout) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 3;
  m(1, 0) = 4;
  EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.data()[2], 3.0);
  EXPECT_DOUBLE_EQ(m.data()[3], 4.0);
  EXPECT_EQ(m.row(1), m.data() + 3);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(3);
  Matrix a = Matrix::random(5, 7, rng);
  Matrix att = a.transposed().transposed();
  EXPECT_DOUBLE_EQ(tt::linalg::max_abs_diff(a, att), 0.0);
}

TEST(Matrix, TransposeElements) {
  Matrix a(2, 3);
  a(0, 1) = 5.0;
  a(1, 2) = -2.0;
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -2.0);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a(1, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, PlusMinusScale) {
  Matrix a(2, 2, 1.0), b(2, 2, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 3.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  a *= 4.0;
  EXPECT_DOUBLE_EQ(a(0, 1), 4.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, tt::Error);
  EXPECT_THROW(tt::linalg::max_abs_diff(a, b), tt::Error);
}

TEST(Matrix, MaxAbs) {
  Matrix a(2, 2);
  a(0, 1) = -7.0;
  a(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(a.max_abs(), 7.0);
}

TEST(Matrix, ZeroDimensionAllowed) {
  Matrix a(0, 5);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.size(), 0);
}

}  // namespace

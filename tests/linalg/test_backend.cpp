// Backend dispatch layer: selection round-trips, unknown-name rejection, and
// builtin-vs-BLAS numerical parity on random gemm/gemv/svd/qr/eigh problems.
// The parity suite skips cleanly when the build has TT_WITH_BLAS=OFF.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "linalg/backend.hpp"
#include "linalg/eigen.hpp"
#include "linalg/gemm.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "support/rng.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::linalg::Matrix;

// Restores the entry backend selection when a test returns or throws.
class BackendGuard {
 public:
  BackendGuard() : saved_(tt::linalg::backend_name()) {}
  ~BackendGuard() { tt::linalg::set_backend(saved_); }

 private:
  std::string saved_;
};

TEST(Backend, SetBackendRoundTrip) {
  BackendGuard guard;
  tt::linalg::set_backend("builtin");
  EXPECT_STREQ(tt::linalg::backend_name(), "builtin");
  if (tt::linalg::blas_backend_available()) {
    tt::linalg::set_backend("blas");
    EXPECT_STREQ(tt::linalg::backend_name(), "blas");
    tt::linalg::set_backend("builtin");
    EXPECT_STREQ(tt::linalg::backend_name(), "builtin");
  }
}

TEST(Backend, RejectsUnknownNameAndKeepsSelection) {
  BackendGuard guard;
  tt::linalg::set_backend("builtin");
  EXPECT_THROW(tt::linalg::set_backend("bogus"), tt::Error);
  EXPECT_THROW(tt::linalg::set_backend(""), tt::Error);
  EXPECT_STREQ(tt::linalg::backend_name(), "builtin");
}

TEST(Backend, AvailableBackendsMatchBuild) {
  const auto names = tt::linalg::available_backends();
  EXPECT_NE(std::find(names.begin(), names.end(), "builtin"), names.end());
  const bool has_blas =
      std::find(names.begin(), names.end(), "blas") != names.end();
  EXPECT_EQ(has_blas, tt::linalg::blas_backend_available());
}

TEST(Backend, EnvVarSelectsAndRejects) {
  BackendGuard guard;  // set_backend below must not leak into later tests
  // The lazy default resolves TT_BACKEND through resolve_default_backend();
  // exercise that path directly rather than respawning the process.
  setenv("TT_BACKEND", "bogus", 1);
  EXPECT_THROW(tt::linalg::detail::resolve_default_backend(), tt::Error);
  // Explicit selection outranks the environment: a bogus TT_BACKEND must not
  // break set_backend() with a valid name.
  EXPECT_NO_THROW(tt::linalg::set_backend("builtin"));
  setenv("TT_BACKEND", "builtin", 1);
  EXPECT_STREQ(tt::linalg::detail::resolve_default_backend().name(), "builtin");
  if (tt::linalg::blas_backend_available()) {
    setenv("TT_BACKEND", "blas", 1);
    EXPECT_STREQ(tt::linalg::detail::resolve_default_backend().name(), "blas");
  }
  unsetenv("TT_BACKEND");
}

// --- builtin vs BLAS parity --------------------------------------------------

constexpr double kTol = 1e-10;

void expect_close(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  EXPECT_LT(tt::linalg::max_abs_diff(a, b), kTol * (1.0 + b.max_abs())) << what;
}

void expect_orthonormal_columns(const Matrix& q, const char* what) {
  const Matrix gram = tt::linalg::matmul(true, false, q, q);
  expect_close(gram, Matrix::identity(q.cols()), what);
}

class BackendParity : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!tt::linalg::blas_backend_available())
      GTEST_SKIP() << "built with TT_WITH_BLAS=OFF";
  }
  BackendGuard guard_;
};

TEST_F(BackendParity, GemmAgreesAcrossShapesAndTransposes) {
  Rng rng(21);
  const struct {
    index_t m, n, k;
    bool ta, tb;
  } cases[] = {{1, 1, 1, false, false},  {5, 7, 9, false, false},
               {33, 17, 65, false, false}, {64, 64, 64, true, false},
               {31, 45, 12, false, true},  {40, 23, 57, true, true},
               {128, 8, 300, true, false}, {3, 200, 1, false, true}};
  for (const auto& c : cases) {
    Matrix a = c.ta ? Matrix::random(c.k, c.m, rng) : Matrix::random(c.m, c.k, rng);
    Matrix b = c.tb ? Matrix::random(c.n, c.k, rng) : Matrix::random(c.k, c.n, rng);
    Matrix c0 = Matrix::random(c.m, c.n, rng);
    Matrix c_builtin = c0;
    Matrix c_blas = c0;
    tt::linalg::set_backend("builtin");
    tt::linalg::gemm(c.ta, c.tb, 1.75, a, b, -0.5, c_builtin);
    tt::linalg::set_backend("blas");
    tt::linalg::gemm(c.ta, c.tb, 1.75, a, b, -0.5, c_blas);
    expect_close(c_blas, c_builtin, "gemm");
  }
}

TEST_F(BackendParity, GemvAgrees) {
  Rng rng(22);
  for (index_t m : {1, 7, 40}) {
    for (index_t n : {1, 9, 33}) {
      Matrix a = Matrix::random(m, n, rng);
      Matrix x = Matrix::random(n, 1, rng);
      std::vector<double> y0(static_cast<std::size_t>(m));
      for (auto& v : y0) v = rng.normal();
      std::vector<double> y_builtin = y0, y_blas = y0;
      tt::linalg::set_backend("builtin");
      tt::linalg::gemv(m, n, 2.0, a.data(), x.data(), 0.25, y_builtin.data());
      tt::linalg::set_backend("blas");
      tt::linalg::gemv(m, n, 2.0, a.data(), x.data(), 0.25, y_blas.data());
      for (index_t i = 0; i < m; ++i)
        EXPECT_NEAR(y_blas[static_cast<std::size_t>(i)],
                    y_builtin[static_cast<std::size_t>(i)], kTol)
            << m << "x" << n << " row " << i;
    }
  }
}

TEST_F(BackendParity, SvdAgrees) {
  Rng rng(23);
  const std::pair<index_t, index_t> shapes[] = {
      {1, 1}, {6, 6}, {24, 9}, {9, 24}, {40, 40}, {3, 50}};
  for (auto [m, n] : shapes) {
    Matrix a = Matrix::random(m, n, rng);
    tt::linalg::set_backend("builtin");
    auto f_builtin = tt::linalg::svd(a);
    tt::linalg::set_backend("blas");
    auto f_blas = tt::linalg::svd(a);
    // Singular values match directly; factors only up to sign/rotation, so
    // compare through the reconstruction and orthonormality contracts.
    ASSERT_EQ(f_blas.s.size(), f_builtin.s.size());
    for (std::size_t i = 0; i < f_blas.s.size(); ++i)
      EXPECT_NEAR(f_blas.s[i], f_builtin.s[i], kTol * (1.0 + f_builtin.s[0]));
    expect_close(f_blas.reconstruct(), a, "svd reconstruction");
    expect_orthonormal_columns(f_blas.u, "svd U");
    expect_orthonormal_columns(f_blas.vt.transposed(), "svd V");
  }
}

TEST_F(BackendParity, SvdRankDeficientKeepsOrthonormalU) {
  Rng rng(24);
  // Rank-2 12×8 matrix: trailing singular values are ~0, U must still have
  // orthonormal columns (the builtin backend's null-space completion rule).
  Matrix u = Matrix::random(12, 2, rng);
  Matrix v = Matrix::random(8, 2, rng);
  Matrix a = tt::linalg::matmul(false, true, u, v);
  tt::linalg::set_backend("blas");
  auto f = tt::linalg::svd(a);
  expect_orthonormal_columns(f.u, "rank-deficient U");
  expect_close(f.reconstruct(), a, "rank-deficient reconstruction");
}

TEST_F(BackendParity, QrAgrees) {
  Rng rng(25);
  const std::pair<index_t, index_t> shapes[] = {{1, 1}, {8, 8}, {30, 10}, {10, 30}};
  for (auto [m, n] : shapes) {
    Matrix a = Matrix::random(m, n, rng);
    tt::linalg::set_backend("blas");
    auto f = tt::linalg::qr(a);
    ASSERT_EQ(f.q.rows(), m);
    ASSERT_EQ(f.q.cols(), std::min(m, n));
    ASSERT_EQ(f.r.rows(), std::min(m, n));
    ASSERT_EQ(f.r.cols(), n);
    expect_close(tt::linalg::matmul(f.q, f.r), a, "QR reconstruction");
    expect_orthonormal_columns(f.q, "Q");
    for (index_t i = 0; i < f.r.rows(); ++i)
      for (index_t j = 0; j < std::min(i, f.r.cols()); ++j)
        EXPECT_EQ(f.r(i, j), 0.0) << "R not upper-triangular at " << i << "," << j;
  }
}

TEST_F(BackendParity, EighAgrees) {
  Rng rng(26);
  for (index_t n : {1, 6, 25}) {
    Matrix g = Matrix::random(n, n, rng);
    Matrix a = tt::linalg::matmul(false, true, g, g);  // SPD ⇒ well-separated
    tt::linalg::set_backend("builtin");
    auto e_builtin = tt::linalg::eigh(a);
    tt::linalg::set_backend("blas");
    auto e_blas = tt::linalg::eigh(a);
    ASSERT_EQ(e_blas.values.size(), e_builtin.values.size());
    const double scale = 1.0 + std::abs(e_builtin.values.back());
    for (std::size_t i = 0; i < e_blas.values.size(); ++i)
      EXPECT_NEAR(e_blas.values[i], e_builtin.values[i], kTol * scale);
    // A·V = V·diag(w) and VᵀV = I pin the eigenvectors up to sign.
    Matrix av = tt::linalg::matmul(a, e_blas.vectors);
    Matrix vw = e_blas.vectors;
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < n; ++j)
        vw(i, j) *= e_blas.values[static_cast<std::size_t>(j)];
    expect_close(av, vw, "eigh residual");
    expect_orthonormal_columns(e_blas.vectors, "eigh V");
  }
}

}  // namespace

#!/usr/bin/env python3
"""tt_lint — repo-specific determinism lint for tensortools-parallel.

The runtime's headline guarantees (bitwise-identical results at any
``TT_THREADS`` / rank count, clean errors on torn wire frames, reproducible
sweeps) rest on a handful of coding rules that normal compilers do not
enforce. This tool machine-checks them so a violation fails CI instead of
surfacing as a flaky parity test three PRs later.

Rules (each check is named; see ``--list-rules``):

  ordered-iteration   Unordered containers (``std::unordered_map`` /
                      ``std::unordered_set``) hash-order their elements, so
                      *any* iteration over one can leak nondeterministic
                      order into results or stats. Every declaration in
                      ``src/`` must carry a waiver justifying why order
                      cannot leak (lookup-only, drained in sorted order, …),
                      and any range-for / ``.begin()`` over one is flagged.
  wire-bounds         A length read off the wire is attacker/corruption
                      controlled. Allocating from it (``reserve`` /
                      ``resize`` / container construction) before a
                      ``TT_CHECK`` validates it lets a torn frame OOM the
                      process instead of raising a clean ``tt::Error``.
  no-wallclock-random Nondeterminism sources — ``rand()``, ``srand``,
                      ``std::random_device``, unseeded engines, wall-clock
                      seeds (``time(nullptr)``, ``system_clock``) — are
                      banned in ``src/``; all randomness flows through the
                      explicitly seeded ``support::Rng``.
  raw-cast-audit      ``reinterpret_cast`` is confined to the wire/io
                      serialization layer (``src/runtime/wire.cpp``,
                      ``src/mps/io.cpp``); anywhere else needs a waiver
                      explaining why it is not type punning.
  check-macro         ``TT_CHECK`` / ``TT_ASSERT`` need a non-empty message
                      (the throw site is the only diagnostic a remote rank
                      ships home) and a side-effect-free condition
                      (``++``/``--``/assignment inside the condition changes
                      behaviour if the macro is ever compiled out).

Waiver syntax — same line or the line directly above the flagged one:

    // tt-lint: allow(<rule>[,<rule>...]) <reason — required, non-empty>

Unused waivers and waivers without a reason are themselves findings, so the
waiver list stays an honest audit trail rather than a suppression dump.

Usage:
    tools/tt_lint.py                  # lint src/ and tests/ from repo root
    tools/tt_lint.py path1 path2     # lint explicit files/directories
    tools/tt_lint.py --list-rules
Exit status: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "ordered-iteration": "no unordered_map/unordered_set iteration or unwaived "
    "declaration in result- or stats-affecting code (src/)",
    "wire-bounds": "every WireReader-derived length is TT_CHECK-validated "
    "before it sizes an allocation",
    "no-wallclock-random": "no rand()/std::random_device/unseeded engines/"
    "wall-clock seeds outside tests",
    "raw-cast-audit": "reinterpret_cast only in the wire/io serialization layer",
    "check-macro": "TT_CHECK/TT_ASSERT messages non-empty, conditions free of "
    "side effects",
}

# Files where reinterpret_cast is the point: byte-level serialization.
RAW_CAST_ALLOWED = (
    os.path.join("src", "runtime", "wire.cpp"),
    os.path.join("src", "mps", "io.cpp"),
)

CXX_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".hh")

# Seeded-violation fixtures for the linter's own test suite live here; they
# must never count against the real tree.
FIXTURE_DIR_MARKER = os.path.join("tests", "tools", "fixtures")

WAIVER_RE = re.compile(
    r"//\s*tt-lint:\s*allow\(([a-z0-9\-,\s]*)\)\s*(.*)$"
)


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Waiver:
    line: int  # the comment's own line, 1-based
    rules: list
    reason: str
    used: bool = False


@dataclass
class SourceFile:
    path: str
    rel: str
    raw_lines: list = field(default_factory=list)
    code_lines: list = field(default_factory=list)  # comments/strings stripped
    waivers: list = field(default_factory=list)

    @property
    def in_tests(self) -> bool:
        parts = self.rel.replace(os.sep, "/").split("/")
        return "tests" in parts


def strip_comments_and_strings(lines):
    """Blank comments; reduce string literals to "S" (non-empty) or "".

    Keeping the quotes and an emptiness marker lets check-macro distinguish
    ``TT_CHECK(c, "msg")`` from ``TT_CHECK(c, "")`` without string contents
    producing false token matches (e.g. the word "rand" inside a message).
    Line count and line numbers are preserved.
    """
    out = []
    in_block = False
    for line in lines:
        res = []
        i, n = 0, len(line)
        while i < n:
            if in_block:
                j = line.find("*/", i)
                if j < 0:
                    i = n
                else:
                    in_block = False
                    i = j + 2
                continue
            c = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if c == "/" and nxt == "/":
                break  # rest of line is a comment
            if c == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if c == '"' or c == "'":
                quote = c
                j = i + 1
                escaped = False
                body = 0
                while j < n:
                    cj = line[j]
                    if escaped:
                        escaped = False
                        body += 1
                    elif cj == "\\":
                        escaped = True
                    elif cj == quote:
                        break
                    else:
                        body += 1
                    j += 1
                res.append(quote + ("S" if body else "") + quote)
                i = j + 1 if j < n else n
                continue
            res.append(c)
            i += 1
        out.append("".join(res))
    return out


def load_file(path: str, rel: str) -> SourceFile:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    sf = SourceFile(path=path, rel=rel, raw_lines=raw)
    sf.code_lines = strip_comments_and_strings(raw)
    for idx, line in enumerate(raw, start=1):
        m = WAIVER_RE.search(line)
        if m:
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            sf.waivers.append(Waiver(line=idx, rules=rules, reason=m.group(2).strip()))
    return sf


def waiver_for(sf: SourceFile, rule: str, line: int):
    """A waiver covers its own line and the line directly below it."""
    for w in sf.waivers:
        if rule in w.rules and w.line in (line, line - 1):
            return w
    return None


def emit(findings, sf, rule, line, message):
    w = waiver_for(sf, rule, line)
    if w is not None:
        w.used = True
        return
    findings.append(Finding(sf.rel, line, rule, message))


# --------------------------------------------------------------------------
# ordered-iteration
# --------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;]*>\s*[&*]?\s*([A-Za-z_]\w*)\s*[;={(,\[]"
)
UNORDERED_TOKEN_RE = re.compile(r"\bunordered_(?:map|set)\s*<")


def sibling_header_names(sf: SourceFile, cache):
    """Names declared unordered in the paired header of a .cpp file."""
    base, ext = os.path.splitext(sf.path)
    if ext not in (".cpp", ".cc"):
        return set()
    for hext in (".hpp", ".h", ".hh"):
        hpath = base + hext
        if os.path.isfile(hpath):
            if hpath not in cache:
                names = set()
                hf = load_file(hpath, os.path.relpath(hpath))
                for line in hf.code_lines:
                    for m in UNORDERED_DECL_RE.finditer(line):
                        names.add(m.group(1))
                cache[hpath] = names
            return cache[hpath]
    return set()


def check_ordered_iteration(sf: SourceFile, findings, header_cache):
    if sf.in_tests:
        return  # tests may iterate freely: they never feed results or stats
    tracked = set(sibling_header_names(sf, header_cache))
    for idx, line in enumerate(sf.code_lines, start=1):
        if "#include" in line:
            continue
        if UNORDERED_TOKEN_RE.search(line):
            for m in UNORDERED_DECL_RE.finditer(line):
                tracked.add(m.group(1))
            emit(
                findings, sf, "ordered-iteration", idx,
                "unordered container declared in result-affecting code; "
                "iteration order is hash-dependent — justify with a waiver "
                "(lookup-only, sorted drain, ...) or use std::map/sorted vector",
            )
    if not tracked:
        return
    name_alt = "|".join(re.escape(n) for n in sorted(tracked))
    range_for = re.compile(
        r"for\s*\([^;)]*:\s*[^)]*\b(?:%s)\b" % name_alt
    )
    # .begin() signals iteration; bare .end() is the find()-comparison idiom
    # and stays legal.
    begin_call = re.compile(
        r"\b(?:%s)\b\s*(?:\[[^\]]*\])?\s*\.\s*c?begin\s*\(" % name_alt
    )
    for idx, line in enumerate(sf.code_lines, start=1):
        if range_for.search(line) or begin_call.search(line):
            emit(
                findings, sf, "ordered-iteration", idx,
                "iteration over an unordered container: element order is "
                "hash-dependent and can leak into results or stats",
            )


# --------------------------------------------------------------------------
# wire-bounds
# --------------------------------------------------------------------------

WIRE_LEN_ASSIGN_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*[A-Za-z_]\w*\s*\.\s*(?:u64|u32|i64)\s*\(\s*\)"
)
ALLOC_CALL_RE = re.compile(r"\b(?:reserve|resize)\s*\(")


def check_wire_bounds(sf: SourceFile, findings):
    if not any("WireReader" in line for line in sf.code_lines):
        return
    # Map wire-length variable -> line it was read on; cleared once validated.
    pending = {}
    for idx, line in enumerate(sf.code_lines, start=1):
        if "TT_CHECK" in line or "TT_ASSERT" in line:
            for name in list(pending):
                if re.search(r"\b%s\b" % re.escape(name), line):
                    del pending[name]
        for m in WIRE_LEN_ASSIGN_RE.finditer(line):
            pending[m.group(1)] = idx
        if not pending:
            continue
        alloc = ALLOC_CALL_RE.search(line)
        ctor = re.search(r"std::(?:vector|string)\s*<[^;]*>\s*\w+\s*\(", line)
        if alloc or ctor:
            tail = line[(alloc or ctor).end():]
            for name, read_line in pending.items():
                if re.search(r"\b%s\b" % re.escape(name), tail):
                    emit(
                        findings, sf, "wire-bounds", idx,
                        f"allocation sized by wire-read length '{name}' "
                        f"(read at line {read_line}) without a TT_CHECK "
                        "bound — a corrupt frame can demand gigabytes; "
                        "validate against remaining() first",
                    )


# --------------------------------------------------------------------------
# no-wallclock-random
# --------------------------------------------------------------------------

RANDOM_TOKENS = [
    (re.compile(r"\bstd::random_device\b|\brandom_device\b"),
     "std::random_device is a nondeterminism source"),
    (re.compile(r"\bsrand\s*\("), "srand() seeds global hidden state"),
    (re.compile(r"(?<![\w:])rand\s*\(\s*\)"), "rand() is unseeded global state"),
    (re.compile(r"\bstd::default_random_engine\b"),
     "default_random_engine has an implementation-defined default seed"),
    (re.compile(r"\bsystem_clock\b"),
     "wall-clock time in result-affecting code breaks reproducibility"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
     "time(nullptr) is a wall-clock seed"),
]
UNSEEDED_ENGINE_RE = re.compile(
    r"\b(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|ranlux(?:24|48)(?:_base)?|"
    r"knuth_b)\s+[A-Za-z_]\w*\s*;"
)


def check_no_wallclock_random(sf: SourceFile, findings):
    if sf.in_tests:
        return  # tests may use ad-hoc randomness; determinism is a src contract
    for idx, line in enumerate(sf.code_lines, start=1):
        if "#include" in line:
            continue
        for pat, why in RANDOM_TOKENS:
            if pat.search(line):
                emit(findings, sf, "no-wallclock-random", idx,
                     why + "; route randomness through an explicitly seeded "
                     "support::Rng")
        if UNSEEDED_ENGINE_RE.search(line):
            emit(findings, sf, "no-wallclock-random", idx,
                 "random engine declared without an explicit seed; the "
                 "default seed hides run-to-run divergence")


# --------------------------------------------------------------------------
# raw-cast-audit
# --------------------------------------------------------------------------


def check_raw_cast(sf: SourceFile, findings):
    allowed = any(sf.rel.endswith(suffix) for suffix in RAW_CAST_ALLOWED)
    if allowed:
        return
    for idx, line in enumerate(sf.code_lines, start=1):
        if "reinterpret_cast" in line:
            emit(findings, sf, "raw-cast-audit", idx,
                 "reinterpret_cast outside the wire/io serialization layer; "
                 "waive with the reason it is not type punning, or move the "
                 "conversion behind the serialization boundary")


# --------------------------------------------------------------------------
# check-macro
# --------------------------------------------------------------------------

CHECK_MACROS = ("TT_CHECK", "TT_ASSERT", "TT_FAIL")
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?:[+\-*/%&|^]|<<|>>)=(?!=)|(?<![=!<>+\-*/%&|^<])=(?![=])"
)


def split_top_level_args(text: str):
    args, depth, cur = [], 0, []
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            args.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    args.append("".join(cur))
    return args


def extract_macro_calls(sf: SourceFile):
    """Yield (macro, start_line, arg_text) for each invocation, handling
    invocations that span lines. Works on the stripped code."""
    text = "\n".join(sf.code_lines)
    for m in re.finditer(r"\b(TT_CHECK|TT_ASSERT|TT_FAIL)\s*\(", text):
        # Skip the macro definitions themselves (#define TT_CHECK...).
        line_start = text.rfind("\n", 0, m.start()) + 1
        if text[line_start:m.start()].lstrip().startswith("#define"):
            continue
        depth = 1
        i = m.end()
        while i < len(text) and depth:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        if depth:
            continue  # unbalanced; give up on this site
        start_line = text.count("\n", 0, m.start()) + 1
        yield m.group(1), start_line, text[m.end():i - 1]


def check_check_macro(sf: SourceFile, findings):
    if sf.rel.replace(os.sep, "/").endswith("support/error.hpp"):
        return  # the macro definitions themselves
    for macro, line, argtext in extract_macro_calls(sf):
        args = split_top_level_args(argtext)
        if macro == "TT_FAIL":
            msg_args = args
        else:
            cond = args[0]
            msg_args = args[1:]
            if SIDE_EFFECT_RE.search(cond):
                emit(findings, sf, "check-macro", line,
                     f"{macro} condition contains ++/--/assignment; checks "
                     "must be side-effect free so behaviour cannot depend on "
                     "whether the check runs")
        joined = "".join(a.strip() for a in msg_args)
        if not joined or joined == '""' or set(joined) <= {'"', "<", " "}:
            emit(findings, sf, "check-macro", line,
                 f"{macro} has no message; the check string is the only "
                 "diagnostic a failing rank ships home — say what invariant "
                 "broke and include the offending values")


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------


def iter_source_files(paths, repo_root):
    for p in paths:
        ap = os.path.join(repo_root, p) if not os.path.isabs(p) else p
        if os.path.isfile(ap):
            yield ap
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, fn)


def lint_paths(paths, repo_root, include_fixtures=False):
    findings = []
    header_cache = {}
    files = []
    for path in iter_source_files(paths, repo_root):
        rel = os.path.relpath(path, repo_root)
        if not include_fixtures and FIXTURE_DIR_MARKER in rel:
            continue
        files.append(load_file(path, rel))
    for sf in files:
        check_ordered_iteration(sf, findings, header_cache)
        check_wire_bounds(sf, findings)
        check_no_wallclock_random(sf, findings)
        check_raw_cast(sf, findings)
        check_check_macro(sf, findings)
        for w in sf.waivers:
            unknown = [r for r in w.rules if r not in RULES]
            if unknown or not w.rules:
                findings.append(Finding(
                    sf.rel, w.line, "unknown-rule",
                    f"waiver names unknown rule(s): {', '.join(unknown) or '(none)'}"
                    f" — valid rules: {', '.join(sorted(RULES))}"))
            elif not w.reason:
                findings.append(Finding(
                    sf.rel, w.line, "bare-waiver",
                    "waiver has no reason; explain why the invariant holds"))
            elif not w.used:
                findings.append(Finding(
                    sf.rel, w.line, "unused-waiver",
                    "waiver suppresses nothing; delete it so the audit trail "
                    "stays honest"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="tt_lint.py",
        description="repo-specific determinism lint (see module docstring)")
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to lint (default: src tests)")
    ap.add_argument("--repo-root", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--include-fixtures", action="store_true",
                    help="also lint tests/tools/fixtures (used by the "
                    "linter's own tests)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in sorted(RULES):
            print(f"{name:20s} {RULES[name]}")
        return 0

    repo_root = args.repo_root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = args.paths or ["src", "tests"]
    findings = lint_paths(paths, repo_root, include_fixtures=args.include_fixtures)
    for f in findings:
        print(f.format())
    if findings:
        print(f"tt_lint: {len(findings)} finding(s)")
        return 1
    print("tt_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

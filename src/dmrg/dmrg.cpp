#include "dmrg/dmrg.hpp"

#include <algorithm>

#include "dmrg/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "runtime/trace.hpp"
#include "support/timer.hpp"

namespace tt::dmrg {

using symm::BlockTensor;

const char* sweep_mode_name(SweepMode m) {
  switch (m) {
    case SweepMode::kSerial: return "serial";
    case SweepMode::kRealSpace: return "real-space";
  }
  return "?";
}

std::vector<std::pair<int, int>> partition_regions(int n_sites, int regions) {
  TT_CHECK(n_sites >= 2, "need at least one bond to partition");
  const int r = std::max(1, std::min(regions, n_sites / 2));
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(r));
  const int base = n_sites / r;
  const int extra = n_sites % r;
  int first = 0;
  for (int i = 0; i < r; ++i) {
    const int len = base + (i < extra ? 1 : 0);
    out.emplace_back(first, first + len - 1);
    first += len;
  }
  return out;
}

namespace detail {

BondUpdate solve_bond(ContractionEngine& eng, BlockTensor theta,
                      const BlockTensor& left, const BlockTensor& w1,
                      const BlockTensor& w2, const BlockTensor& right,
                      const SweepParams& params, bool sweep_right, int bond) {
  {
    const real_t n = theta.norm2();
    TT_CHECK(n > 0.0, "two-site tensor vanished at bond " << bond);
    theta.scale(1.0 / n);
  }

  DavidsonOptions dopts;
  dopts.max_iter = params.davidson_iter;
  dopts.subspace = params.davidson_subspace;
  auto apply = [&](const BlockTensor& x) {
    return apply_two_site(eng, left, w1, w2, right, x);
  };
  DavidsonResult res = [&] {
    TT_TRACE_SPAN("dmrg.davidson", rt::TraceCat::kDavidson);
    return davidson(apply, std::move(theta), dopts);
  }();

  // Split and truncate (paper fig 1e); singular values move with the sweep.
  symm::TruncParams trunc;
  trunc.cutoff = params.cutoff;
  trunc.max_dim = params.max_m;
  symm::BlockSvd f = [&] {
    TT_TRACE_SPAN("dmrg.svd", rt::TraceCat::kSvd);
    return eng.svd(res.vector, {0, 1}, trunc);
  }();

  BondUpdate u;
  u.energy = res.eigenvalue;
  u.trunc_err = f.truncation_error;
  if (sweep_right) {
    u.a = std::move(f.u);
    u.b = f.s_times_vt();
    // Keep the state normalized after truncation.
    const real_t n = u.b.norm2();
    if (n > 0.0) u.b.scale(1.0 / n);
  } else {
    u.b = std::move(f.vt);
    u.a = f.u_times_s();
    const real_t n = u.a.norm2();
    if (n > 0.0) u.a.scale(1.0 / n);
  }
  return u;
}

}  // namespace detail

Dmrg::Dmrg(mps::Mps psi, mps::Mpo h, std::unique_ptr<ContractionEngine> engine)
    : psi_(std::move(psi)), h_(std::move(h)), engine_(std::move(engine)) {
  TT_CHECK(engine_ != nullptr, "DMRG needs an engine");
  TT_CHECK(psi_.size() == h_.size(), "MPS/MPO size mismatch");
  TT_CHECK(psi_.size() >= 2, "two-site DMRG needs at least two sites");
  psi_.canonicalize(0);
  psi_.normalize();
  // The initial environment graph is amortized setup (every engine produces
  // identical tensors): build it with the fast reference kernels; all
  // in-sweep production still runs — and is charged — through the main engine.
  auto builder = make_engine(EngineKind::kReference, engine_->cluster());
  envs_ = std::make_unique<EnvGraph>(*engine_, psi_, h_, builder.get());
}

real_t Dmrg::optimize_bond(int j, const SweepParams& params, bool sweep_right) {
  TT_CHECK(j >= 0 && j + 1 < psi_.size(), "bond " << j << " out of range");
  TT_TRACE_SPAN("dmrg.bond", rt::TraceCat::kSweep);

  // Two-site tensor θ(l, s1, s2, r) (paper §II.C).
  BlockTensor theta = engine_->contract(psi_.site(j), Role::kIntermediate,
                                        psi_.site(j + 1), Role::kIntermediate,
                                        {{2, 0}});
  // Demanded after θ on purpose: when the previous bond prefetched this
  // environment, the join lands here — after the theta contraction already
  // overlapped with the in-flight extension.
  const BlockTensor& left = envs_->left(j);
  const BlockTensor& right = envs_->right(j + 2);

  detail::BondUpdate u =
      detail::solve_bond(*engine_, std::move(theta), left, h_.site(j),
                         h_.site(j + 1), right, params, sweep_right, j);
  energy_ = u.energy;
  trunc_err_ = u.trunc_err;

  // site_changed must precede the set_site calls: it joins any in-flight
  // prefetch, and at the sweep turn that future's worker is still reading
  // the old tensor of this very bond (the demand path above never touches
  // the pending node there) — mutating psi first would race with it. The
  // invalidation cones depend only on the index, so the early flip is safe.
  envs_->site_changed(j);
  envs_->site_changed(j + 1);
  psi_.set_site(j, std::move(u.a));
  psi_.set_site(j + 1, std::move(u.b));
  psi_.set_center(sweep_right ? j + 1 : j);
  // Refresh the environment the next bond in this direction consumes: async
  // as a future beside the next Davidson, or eagerly — exactly the old
  // update_left(j) / update_right(j+1) — when prefetch is off.
  if (sweep_right) {
    if (params.prefetch)
      envs_->prefetch_left(j + 1);
    else
      (void)envs_->left(j + 1);
  } else {
    if (params.prefetch)
      envs_->prefetch_right(j + 1);
    else
      (void)envs_->right(j + 1);
  }
  return u.energy;
}

void Dmrg::maybe_checkpoint(const SweepParams& params, int phase, int bond) {
  // No snapshot after the sweep's final bond: its position would point into
  // the *next* sweep, which run()/resume() already handle via sweep_count.
  const bool last_bond = (phase == 1 && bond == 0);
  if (ckpt_ != nullptr && params.checkpoint_every > 0 && !last_bond &&
      ++bonds_since_ckpt_ >= params.checkpoint_every) {
    bonds_since_ckpt_ = 0;
    SweepPosition pos;
    pos.schedule_pos = schedule_pos_;
    pos.sweep_count = sweep_count_;
    if (phase == 0 && bond + 1 < psi_.size() - 1) {
      pos.phase = 0;
      pos.next_bond = bond + 1;
    } else if (phase == 0) {  // left-to-right pass done; turn around
      pos.phase = 1;
      pos.next_bond = psi_.size() - 2;
    } else {
      pos.phase = 1;
      pos.next_bond = bond - 1;
    }
    pos.center = psi_.center();
    pos.energy = energy_;
    pos.trunc_err = trunc_err_;
    pos.max_trunc_partial = max_trunc_partial_;
    ckpt_->save(psi_, pos, records_);
  }
  // Deterministic mid-sweep crash for the checkpoint/restart tests: `nth`
  // counts completed bonds in sweep order, the exact sites where a snapshot
  // could have been taken.
  if (rt::FaultInjector::instance().should_fire("dmrg.kill_sweep"))
    TT_FAIL("fault injection: dmrg.kill_sweep at sweep " << sweep_count_
                                                         << " phase " << phase
                                                         << " bond " << bond);
}

SweepRecord Dmrg::sweep_serial(const SweepParams& params) {
  return sweep_serial_from(params, /*phase=*/0, /*start_bond=*/0,
                           /*max_trunc0=*/0.0);
}

SweepRecord Dmrg::sweep_serial_from(const SweepParams& params, int phase,
                                    int start_bond, real_t max_trunc0) {
  TT_TRACE_SPAN("dmrg.sweep", rt::TraceCat::kSweep);
  Timer timer;
  const rt::CostTracker start = engine_->tracker();
  const EnvGraph::PrefetchStats pf0 = envs_->prefetch_stats();
  max_trunc_partial_ = max_trunc0;

  if (phase == 0) {
    for (int j = start_bond; j + 1 < psi_.size(); ++j) {
      optimize_bond(j, params, /*sweep_right=*/true);
      max_trunc_partial_ = std::max(max_trunc_partial_, trunc_err_);
      maybe_checkpoint(params, 0, j);
    }
  }
  const int rl_start = phase == 0 ? psi_.size() - 2 : start_bond;
  for (int j = rl_start; j >= 0; --j) {
    optimize_bond(j, params, /*sweep_right=*/false);
    max_trunc_partial_ = std::max(max_trunc_partial_, trunc_err_);
    maybe_checkpoint(params, 1, j);
  }
  // Settle any still-flying prefetch so its cost lands in this record.
  envs_->sync();

  SweepRecord rec;
  rec.sweep = ++sweep_count_;
  rec.energy = energy_;
  rec.max_bond_dim = psi_.max_bond_dim();
  rec.truncation_error = max_trunc_partial_;
  rec.wall_seconds = timer.seconds();
  rec.costs = engine_->tracker().diff(start);
  rec.mode = SweepMode::kSerial;
  rec.regions = 1;
  const EnvGraph::PrefetchStats& pf = envs_->prefetch_stats();
  rec.prefetch_launched = pf.launched - pf0.launched;
  rec.prefetch_hits = pf.hits - pf0.hits;
  rec.prefetch_wait_seconds = pf.wait_seconds - pf0.wait_seconds;
  records_.push_back(rec);
  return rec;
}

SweepRecord Dmrg::sweep(const SweepParams& params) {
  if (params.mode == SweepMode::kRealSpace &&
      partition_regions(psi_.size(), params.regions).size() > 1)
    return sweep_realspace(params);
  return sweep_serial(params);
}

real_t Dmrg::run(const std::vector<SweepParams>& schedule) {
  TT_CHECK(!schedule.empty(), "empty sweep schedule");
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    schedule_pos_ = static_cast<int>(i);
    sweep(schedule[i]);
  }
  return energy_;
}

real_t Dmrg::resume(const std::vector<SweepParams>& schedule) {
  TT_CHECK(!schedule.empty(), "empty sweep schedule");
  TT_CHECK(ckpt_ != nullptr, "resume() needs set_checkpointing() first");
  CheckpointData data = ckpt_->load(psi_.sites());
  TT_CHECK(data.pos.schedule_pos < static_cast<int>(schedule.size()),
           "checkpoint is at sweep " << data.pos.schedule_pos
                                     << " of a longer schedule ("
                                     << schedule.size() << " sweeps given)");
  TT_CHECK(data.pos.next_bond + 1 < psi_.size(),
           "checkpoint bond " << data.pos.next_bond
                              << " out of range for this chain");

  envs_->sync();  // retire any in-flight prefetch before dropping the graph
  psi_ = std::move(data.psi);
  psi_.set_center(data.pos.center);
  psi_.check_consistency();
  records_ = std::move(data.history);
  energy_ = data.pos.energy;
  trunc_err_ = data.pos.trunc_err;
  sweep_count_ = data.pos.sweep_count;
  bonds_since_ckpt_ = 0;

  // Rebuild the whole environment graph from the restored state. A valid
  // node is a deterministic function of its cone's site tensors, and the
  // engines are bit-equivalent, so eager rebuild reproduces the tensors the
  // incremental maintenance held at snapshot time — bitwise.
  auto builder = make_engine(EngineKind::kReference, engine_->cluster());
  envs_ = std::make_unique<EnvGraph>(*engine_, psi_, h_, builder.get());

  schedule_pos_ = data.pos.schedule_pos;
  sweep_serial_from(schedule[static_cast<std::size_t>(schedule_pos_)],
                    data.pos.phase, data.pos.next_bond,
                    data.pos.max_trunc_partial);
  for (std::size_t i = static_cast<std::size_t>(schedule_pos_) + 1;
       i < schedule.size(); ++i) {
    schedule_pos_ = static_cast<int>(i);
    sweep(schedule[i]);
  }
  return energy_;
}

real_t Dmrg::energy_expectation() {
  // ⟨θ|H_eff|θ⟩ at the current center bond.
  const int c = std::max(0, std::min(psi_.center(), psi_.size() - 2));
  BlockTensor theta = symm::contract(psi_.site(c), psi_.site(c + 1), {{2, 0}});
  BlockTensor htheta = apply_two_site(*engine_, envs_->left(c), h_.site(c),
                                      h_.site(c + 1), envs_->right(c + 2), theta);
  const real_t nn = symm::dot(theta, theta);
  TT_CHECK(nn > 0.0, "state has zero norm");
  return symm::dot(theta, htheta) / nn;
}

std::vector<SweepParams> standard_schedule(index_t m_first, index_t m_final,
                                           int per_m, real_t cutoff) {
  TT_CHECK(m_first >= 1 && m_final >= m_first, "bad schedule bounds");
  TT_CHECK(per_m >= 1, "need at least one sweep per bond dimension");
  std::vector<SweepParams> out;
  for (index_t m = m_first;; m *= 2) {
    m = std::min(m, m_final);
    for (int s = 0; s < per_m; ++s) {
      SweepParams p;
      p.max_m = m;
      p.cutoff = cutoff;
      out.push_back(p);
    }
    if (m == m_final) break;
  }
  return out;
}

}  // namespace tt::dmrg

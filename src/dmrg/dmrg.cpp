#include "dmrg/dmrg.hpp"

#include <algorithm>

#include "support/timer.hpp"

namespace tt::dmrg {

using symm::BlockTensor;

Dmrg::Dmrg(mps::Mps psi, mps::Mpo h, std::unique_ptr<ContractionEngine> engine)
    : psi_(std::move(psi)), h_(std::move(h)), engine_(std::move(engine)) {
  TT_CHECK(engine_ != nullptr, "DMRG needs an engine");
  TT_CHECK(psi_.size() == h_.size(), "MPS/MPO size mismatch");
  TT_CHECK(psi_.size() >= 2, "two-site DMRG needs at least two sites");
  psi_.canonicalize(0);
  psi_.normalize();
  // The initial environment stacks are amortized setup (every engine produces
  // identical tensors): build them with the fast reference kernels; all
  // in-sweep updates still run — and are charged — through the main engine.
  auto builder = make_engine(EngineKind::kReference, engine_->cluster());
  envs_ = std::make_unique<EnvironmentStack>(*engine_, psi_, h_, builder.get());
}

real_t Dmrg::optimize_bond(int j, const SweepParams& params, bool sweep_right) {
  TT_CHECK(j >= 0 && j + 1 < psi_.size(), "bond " << j << " out of range");

  // Two-site tensor θ(l, s1, s2, r) (paper §II.C).
  BlockTensor theta = engine_->contract(psi_.site(j), Role::kIntermediate,
                                        psi_.site(j + 1), Role::kIntermediate,
                                        {{2, 0}});
  {
    const real_t n = theta.norm2();
    TT_CHECK(n > 0.0, "two-site tensor vanished at bond " << j);
    theta.scale(1.0 / n);
  }

  const BlockTensor& left = envs_->left(j);
  const BlockTensor& right = envs_->right(j + 2);
  const BlockTensor& w1 = h_.site(j);
  const BlockTensor& w2 = h_.site(j + 1);

  DavidsonOptions dopts;
  dopts.max_iter = params.davidson_iter;
  dopts.subspace = params.davidson_subspace;
  auto apply = [&](const BlockTensor& x) {
    return apply_two_site(*engine_, left, w1, w2, right, x);
  };
  DavidsonResult res = davidson(apply, std::move(theta), dopts);
  energy_ = res.eigenvalue;

  // Split and truncate (paper fig 1e); singular values move with the sweep.
  symm::TruncParams trunc;
  trunc.cutoff = params.cutoff;
  trunc.max_dim = params.max_m;
  symm::BlockSvd f = engine_->svd(res.vector, {0, 1}, trunc);
  trunc_err_ = f.truncation_error;

  if (sweep_right) {
    psi_.set_site(j, std::move(f.u));
    BlockTensor sv = f.s_times_vt();
    // Keep the state normalized after truncation.
    const real_t n = sv.norm2();
    if (n > 0.0) sv.scale(1.0 / n);
    psi_.set_site(j + 1, std::move(sv));
    psi_.set_center(j + 1);
    envs_->update_left(j, psi_, h_);
  } else {
    psi_.set_site(j + 1, std::move(f.vt));
    BlockTensor us = f.u_times_s();
    const real_t n = us.norm2();
    if (n > 0.0) us.scale(1.0 / n);
    psi_.set_site(j, std::move(us));
    psi_.set_center(j);
    envs_->update_right(j + 1, psi_, h_);
  }
  return res.eigenvalue;
}

SweepRecord Dmrg::sweep(const SweepParams& params) {
  Timer timer;
  const rt::CostTracker start = engine_->tracker();
  real_t max_trunc = 0.0;

  for (int j = 0; j + 1 < psi_.size(); ++j) {
    optimize_bond(j, params, /*sweep_right=*/true);
    max_trunc = std::max(max_trunc, trunc_err_);
  }
  for (int j = psi_.size() - 2; j >= 0; --j) {
    optimize_bond(j, params, /*sweep_right=*/false);
    max_trunc = std::max(max_trunc, trunc_err_);
  }

  SweepRecord rec;
  rec.sweep = ++sweep_count_;
  rec.energy = energy_;
  rec.max_bond_dim = psi_.max_bond_dim();
  rec.truncation_error = max_trunc;
  rec.wall_seconds = timer.seconds();
  rec.costs = engine_->tracker().diff(start);
  records_.push_back(rec);
  return rec;
}

real_t Dmrg::run(const std::vector<SweepParams>& schedule) {
  TT_CHECK(!schedule.empty(), "empty sweep schedule");
  for (const SweepParams& p : schedule) sweep(p);
  return energy_;
}

real_t Dmrg::energy_expectation() {
  // ⟨θ|H_eff|θ⟩ at the current center bond.
  const int c = std::max(0, std::min(psi_.center(), psi_.size() - 2));
  BlockTensor theta = symm::contract(psi_.site(c), psi_.site(c + 1), {{2, 0}});
  BlockTensor htheta = apply_two_site(*engine_, envs_->left(c), h_.site(c),
                                      h_.site(c + 1), envs_->right(c + 2), theta);
  const real_t nn = symm::dot(theta, theta);
  TT_CHECK(nn > 0.0, "state has zero norm");
  return symm::dot(theta, htheta) / nn;
}

std::vector<SweepParams> standard_schedule(index_t m_first, index_t m_final,
                                           int per_m, real_t cutoff) {
  TT_CHECK(m_first >= 1 && m_final >= m_first, "bad schedule bounds");
  TT_CHECK(per_m >= 1, "need at least one sweep per bond dimension");
  std::vector<SweepParams> out;
  for (index_t m = m_first;; m *= 2) {
    m = std::min(m, m_final);
    for (int s = 0; s < per_m; ++s) {
      SweepParams p;
      p.max_m = m;
      p.cutoff = cutoff;
      out.push_back(p);
    }
    if (m == m_final) break;
  }
  return out;
}

}  // namespace tt::dmrg

#include "dmrg/davidson.hpp"

#include <cmath>
#include <vector>

#include "linalg/eigen.hpp"
#include "runtime/trace.hpp"
#include "support/rng.hpp"

namespace tt::dmrg {

using symm::BlockTensor;

namespace {

// Add N(0, eps·|t|) noise into every existing block (randomized recovery from
// re-orthogonalization breakdown, paper §II.C).
void add_noise(BlockTensor& t, real_t eps, Rng& rng) {
  BlockTensor noise = t;
  for (const auto& [key, blk] : t.blocks()) {
    tensor::DenseTensor n(blk.shape());
    for (index_t i = 0; i < n.size(); ++i) n[i] = rng.normal();
    noise.block(key) = std::move(n);
  }
  const real_t scale = eps * std::max(t.norm2(), real_t{1e-30});
  t.axpy(scale / std::max(noise.norm2(), real_t{1e-300}), noise);
}

}  // namespace

DavidsonResult davidson(const BlockMatVec& apply, BlockTensor x0,
                        const DavidsonOptions& opts) {
  TT_CHECK(opts.max_iter >= 1, "Davidson needs at least one iteration");
  TT_CHECK(opts.subspace >= 2, "Davidson subspace must be at least 2");
  const real_t nrm0 = x0.norm2();
  TT_CHECK(nrm0 > 0.0, "Davidson initial guess must be nonzero");
  x0.scale(1.0 / nrm0);

  Rng rng(opts.seed);
  DavidsonResult out;

  auto traced_apply = [&apply](const BlockTensor& t) {
    TT_TRACE_SPAN("davidson.matvec", rt::TraceCat::kDavidson);
    return apply(t);
  };

  std::vector<BlockTensor> v{std::move(x0)};
  std::vector<BlockTensor> va;  // A·v, aligned with v
  v.reserve(static_cast<std::size_t>(opts.subspace));
  va.reserve(static_cast<std::size_t>(opts.subspace));
  va.push_back(traced_apply(v[0]));
  ++out.matvecs;

  // Projected matrix entries m(i,j) = vᵢᵀ A vⱼ, grown incrementally.
  linalg::Matrix m(opts.subspace, opts.subspace);
  m(0, 0) = symm::dot(v[0], va[0]);

  real_t lambda = m(0, 0);
  BlockTensor x = v[0];
  BlockTensor ax = va[0];

  for (int it = 0; it < opts.max_iter; ++it) {
    const int k = static_cast<int>(v.size());

    // Rayleigh–Ritz on the leading k×k block (Alg. 1 line 7).
    linalg::Matrix mk(k, k);
    for (int i = 0; i < k; ++i)
      for (int j = 0; j < k; ++j) mk(i, j) = m(i, j);
    auto eig = linalg::eigh(mk);
    lambda = eig.values.front();

    // Ritz vector x = Σ s_j v_j and A·x = Σ s_j (Av)_j (Alg. 1 line 8).
    x = v[0];
    x.scale(eig.vectors(0, 0));
    ax = va[0];
    ax.scale(eig.vectors(0, 0));
    for (int j = 1; j < k; ++j) {
      x.axpy(eig.vectors(j, 0), v[static_cast<std::size_t>(j)]);
      ax.axpy(eig.vectors(j, 0), va[static_cast<std::size_t>(j)]);
    }

    // Residual q = A·x − λ·x (lines 9–10).
    BlockTensor q = ax;
    q.axpy(-lambda, x);
    const real_t qnorm = q.norm2();
    if (qnorm < opts.tol) {
      out.converged = true;
      break;
    }
    if (out.matvecs >= opts.max_iter) break;

    // Subspace full: restart from the Ritz vector (paper: subspace size 2).
    if (k >= opts.subspace) {
      v.assign(1, x);
      va.assign(1, ax);
      m = linalg::Matrix(opts.subspace, opts.subspace);
      m(0, 0) = lambda;
    }

    // Orthogonalize q against the basis via modified Gram–Schmidt, with
    // randomized recovery when q lies (numerically) inside the span (line 11).
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (const BlockTensor& b : v) q.axpy(-symm::dot(q, b), b);
      const real_t n = q.norm2();
      if (n > 1e-12 * (1.0 + std::abs(lambda))) {
        q.scale(1.0 / n);
        break;
      }
      add_noise(q, 1.0, rng);
    }
    {
      const real_t n = q.norm2();
      if (n < 1e-300) break;  // hopeless: return current Ritz pair
      q.scale(1.0 / n);
    }

    // Extend the subspace (line 12).
    v.push_back(q);
    va.push_back(traced_apply(v.back()));
    ++out.matvecs;
    const int knew = static_cast<int>(v.size());
    for (int i = 0; i < knew; ++i) {
      const real_t mij = symm::dot(va.back(), v[static_cast<std::size_t>(i)]);
      m(i, knew - 1) = mij;
      m(knew - 1, i) = mij;
    }
  }

  const real_t xn = x.norm2();
  x.scale(1.0 / xn);
  out.eigenvalue = lambda;
  out.vector = std::move(x);
  return out;
}

}  // namespace tt::dmrg

// Concrete engine implementations — one class per paper algorithm (see
// engine.hpp for the taxonomy and docs/ARCHITECTURE.md for the full map).
// All four produce bit-identical results; the figure benches (bench/) compare
// their execution profiles: list vs fused engines drive the scaling and
// Pareto studies of Figs 5 and 8–13, the reference engine supplies the
// single-node baseline those figures normalize against.
#pragma once

#include "dmrg/engine.hpp"

namespace tt::dmrg {

/// Single-node serial baseline (the paper's ITensor stand-in): block-wise
/// execution, all flops at one node's rate, no network, no redistribution.
class ReferenceEngine : public ContractionEngine {
 public:
  using ContractionEngine::ContractionEngine;
  EngineKind kind() const override { return EngineKind::kReference; }
  symm::BlockTensor contract(const symm::BlockTensor& a, Role role_a,
                             const symm::BlockTensor& b, Role role_b,
                             const std::vector<std::pair<int, int>>& pairs) override;
  symm::BlockSvd svd(const symm::BlockTensor& a, const std::vector<int>& row_modes,
                     const symm::TruncParams& trunc) override;
};

/// List algorithm: per-block-pair distributed dense contractions (Alg. 2).
class ListEngine : public ContractionEngine {
 public:
  using ContractionEngine::ContractionEngine;
  EngineKind kind() const override { return EngineKind::kList; }
  symm::BlockTensor contract(const symm::BlockTensor& a, Role role_a,
                             const symm::BlockTensor& b, Role role_b,
                             const std::vector<std::pair<int, int>>& pairs) override;
};

/// Sparse-dense algorithm: operators fused sparse, intermediates fused dense.
class SparseDenseEngine : public ContractionEngine {
 public:
  using ContractionEngine::ContractionEngine;
  EngineKind kind() const override { return EngineKind::kSparseDense; }
  symm::BlockTensor contract(const symm::BlockTensor& a, Role role_a,
                             const symm::BlockTensor& b, Role role_b,
                             const std::vector<std::pair<int, int>>& pairs) override;
  symm::BlockSvd svd(const symm::BlockTensor& a, const std::vector<int>& row_modes,
                     const symm::TruncParams& trunc) override;
};

/// Sparse-sparse algorithm: one fused sparse contraction with precomputed
/// output sparsity.
class SparseSparseEngine : public ContractionEngine {
 public:
  using ContractionEngine::ContractionEngine;
  EngineKind kind() const override { return EngineKind::kSparseSparse; }
  symm::BlockTensor contract(const symm::BlockTensor& a, Role role_a,
                             const symm::BlockTensor& b, Role role_b,
                             const std::vector<std::pair<int, int>>& pairs) override;
  symm::BlockSvd svd(const symm::BlockTensor& a, const std::vector<int>& row_modes,
                     const symm::TruncParams& trunc) override;
};

}  // namespace tt::dmrg

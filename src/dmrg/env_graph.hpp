// The environment dependency graph (sweep pipelining layer).
//
// Every left/right environment of a site is an explicit node:
//
//   left(0) → left(1) → ... → left(N)        left(j) covers sites < j,
//   right(N) → right(N-1) → ... → right(0)   right(j) covers sites >= j,
//
// with a dependency edge from each node to its neighbour toward the chain
// interior (left(j+1) depends on left(j) and site j; right(j) depends on
// right(j+1) and site j). Nodes carry a validity state; mutating a site
// through site_changed(j) invalidates exactly the nodes whose cone contains
// j (left(k) for k > j, right(k) for k <= j). Accessors are *demands*: an
// invalid node is recomputed on the spot from its nearest valid ancestor
// through the main engine, so consumers never see a stale environment and
// never issue hand-ordered update calls.
//
// The graph structure is what makes pipelining safe: the next bond's
// environment extension depends only on tensors the current Davidson
// iteration will not touch, so it can be prefetched as a future on a
// support::TaskQueue worker while Davidson iterates. Prefetched work runs on
// a private engine of the same kind/cluster; its cost is folded into the
// main tracker under rt::Category::kPrefetch at join time — overlap is
// measurable, never hidden. At most one prefetch is in flight, and every
// graph mutation joins it first, so demanded values are bitwise identical
// with prefetch on or off.
#pragma once

#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "dmrg/engine.hpp"
#include "mps/mpo.hpp"
#include "mps/mps.hpp"
#include "support/thread_pool.hpp"

namespace tt::dmrg {

/// Dependency-graph environment cache for a full sweep over psi/h.
class EnvGraph {
 public:
  enum class NodeState {
    kInvalid,  ///< cone contains a changed site; recomputed on demand
    kValid,    ///< tensor matches the current state of psi
    kPending,  ///< a prefetch future is computing it
  };

  /// Prefetch effectiveness counters (cumulative; diff across a sweep).
  struct PrefetchStats {
    long launched = 0;       ///< futures submitted
    long hits = 0;           ///< joins that found the future already finished
    long misses = 0;         ///< joins that had to block on the worker
    double wait_seconds = 0.0;  ///< real time the demanding thread blocked
  };

  /// Builds every interior node eagerly (the classic stack construction).
  /// When `builder` is non-null it executes this initial, amortized
  /// construction while `eng` remains the engine for all later production —
  /// the benches use a fast reference builder so a measured step reflects
  /// only the target engine.
  EnvGraph(ContractionEngine& eng, const mps::Mps& psi, const mps::Mpo& h,
           ContractionEngine* builder = nullptr);
  ~EnvGraph();

  EnvGraph(const EnvGraph&) = delete;
  EnvGraph& operator=(const EnvGraph&) = delete;

  /// Environment of everything left of site j (contains sites 0..j-1).
  /// Demands production: invalid ancestors are recomputed through the engine.
  const symm::BlockTensor& left(int j);
  /// Environment of everything right of site j (contains sites j..N-1).
  const symm::BlockTensor& right(int j);

  /// Site j's tensor changed: invalidate every node whose cone contains j.
  /// Joins an in-flight prefetch first (its result may be among the
  /// invalidated nodes).
  void site_changed(int j);

  /// Invalidate every interior node (e.g. after re-canonicalizing psi).
  void invalidate_all();

  /// Launch asynchronous production of left(j) / right(j) on the prefetch
  /// worker. No-op if the node is already valid or its parent is not (demand
  /// would have to rebuild a chain; prefetch only ever computes one edge).
  /// The next access joins the future; costs are folded into the main
  /// engine's tracker under rt::Category::kPrefetch.
  void prefetch_left(int j);
  void prefetch_right(int j);

  /// Join any in-flight prefetch (fold its cost, settle its node). Call
  /// before reading the main tracker so no charged work is still in flight.
  void sync();

  NodeState left_state(int j) const;
  NodeState right_state(int j) const;

  const PrefetchStats& prefetch_stats() const { return pf_stats_; }

  /// Test seam: sleep injected in the worker before each prefetched
  /// extension. Widens the in-flight window so that a mutation racing the
  /// worker (e.g. at the sweep turn) is deterministically observable under
  /// TSan instead of depending on scheduling luck. Zero (default) is a no-op.
  void set_prefetch_delay_for_testing(std::chrono::milliseconds d) {
    pf_test_delay_ = d;
  }

  int size() const { return n_; }

 private:
  struct Node {
    symm::BlockTensor t;
    NodeState state = NodeState::kInvalid;
  };

  const symm::BlockTensor& demand(bool is_left, int j);
  void produce(bool is_left, int j);           // one edge, main engine
  void prefetch(bool is_left, int j);
  void join_pending();                         // wait + fold + settle
  std::vector<Node>& chain(bool is_left) { return is_left ? left_ : right_; }

  ContractionEngine& eng_;
  const mps::Mps& psi_;
  const mps::Mpo& h_;
  int n_ = 0;
  std::vector<Node> left_;   // left_[j] covers sites < j
  std::vector<Node> right_;  // right_[j] covers sites >= j

  // Prefetch executor (lazily created on first prefetch_*). One future in
  // flight at a time; pending_* identify the node it will settle.
  std::unique_ptr<ContractionEngine> pf_engine_;
  std::unique_ptr<support::TaskQueue> pf_queue_;
  std::future<void> pf_future_;
  symm::BlockTensor pf_result_;  // written by the worker, moved out at join
  bool pf_active_ = false;
  bool pf_is_left_ = false;
  int pf_node_ = -1;
  PrefetchStats pf_stats_;
  std::chrono::milliseconds pf_test_delay_{0};
};

}  // namespace tt::dmrg

#include "dmrg/engines.hpp"

#include "linalg/svd.hpp"

namespace tt::dmrg {

symm::BlockTensor ReferenceEngine::contract(
    const symm::BlockTensor& a, Role, const symm::BlockTensor& b, Role,
    const std::vector<std::pair<int, int>>& pairs) {
  // Blocks execute on the thread-parallel executor (wall time); the charged
  // cost stays the serial single-node model of the ITensor baseline.
  symm::ContractStats stats;
  symm::BlockTensor c = symm::contract(a, b, pairs, &stats, contract_options());
  rt::ContractionCost cost;
  cost.flops = stats.total_flops;
  charge_and_log(cost, rt::Layout::kLocal);
  return c;
}

symm::BlockSvd ReferenceEngine::svd(const symm::BlockTensor& a,
                                    const std::vector<int>& row_modes,
                                    const symm::TruncParams& trunc) {
  symm::BlockSvd f = symm::block_svd(a, row_modes, trunc, num_threads_);
  // Serial single-node SVD: flops at the node's (reduced) SVD rate, no
  // communication.
  const double rate = cluster_.machine.node_gflops * 1e9 * cluster_.machine.svd_efficiency;
  for (const auto& shape : f.shapes) {
    const double flops = linalg::svd_flops(shape.rows, shape.cols);
    tracker_.add_flops(flops);
    tracker_.add_time(rt::Category::kSvd, flops / rate);
    log_svd(shape.rows, shape.cols, rt::Layout::kLocal);
  }
  return f;
}

}  // namespace tt::dmrg

// Two-site DMRG sweep driver (paper §II.C).
//
// Standard algorithm, identical numerics across engines: contract the two
// center sites, solve the projected eigenproblem with Davidson through the
// environment network, split with a truncated block SVD, absorb the singular
// values along the sweep direction, extend the environments incrementally
// through the dependency graph (env_graph.hpp).
//
// Two sweep modes (SweepMode):
//   kSerial    — the classic strictly-ordered bond loop. With prefetch on,
//                the next bond's environment extension runs as a future
//                beside Davidson; results stay bitwise identical.
//   kRealSpace — the chain splits into `regions` contiguous regions that
//                optimize concurrently against frozen boundary environments
//                (Stoudenmire–White real-space parallelism), then the
//                boundary bonds are reconciled serially. regions=1 falls
//                back to the serial sweep, bitwise.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "dmrg/davidson.hpp"
#include "dmrg/engine.hpp"
#include "dmrg/env_graph.hpp"
#include "dmrg/environment.hpp"
#include "mps/mpo.hpp"
#include "mps/mps.hpp"

namespace tt::dmrg {

class CheckpointManager;  // dmrg/checkpoint.hpp

/// How a sweep traverses the chain (see file comment).
enum class SweepMode {
  kSerial,     ///< strictly-ordered bond loop (optionally env-prefetched)
  kRealSpace,  ///< R concurrent regions + serial boundary reconciliation
};

/// Stable display name ("serial", "real-space") for banners and CSV rows.
const char* sweep_mode_name(SweepMode m);

/// Parameters of one sweep (one left-to-right + right-to-left pass).
struct SweepParams {
  index_t max_m = 64;        ///< bond-dimension cap
  real_t cutoff = 1e-12;     ///< singular values <= cutoff dropped (paper §II.C)
  int davidson_iter = 2;     ///< matvecs per two-site optimization (paper: 2)
  int davidson_subspace = 2; ///< Davidson restart size (paper: 2)
  SweepMode mode = SweepMode::kSerial;
  int regions = 1;           ///< real-space regions; 1 reproduces the serial sweep
  bool prefetch = false;     ///< overlap env extensions with Davidson (serial mode)
  int checkpoint_every = 0;  ///< bonds between snapshots (serial mode); 0 = off
};

/// Record of a completed sweep.
struct SweepRecord {
  int sweep = 0;
  real_t energy = 0.0;
  index_t max_bond_dim = 0;
  real_t truncation_error = 0.0;  ///< max over bonds of Σ discarded σ²
  double wall_seconds = 0.0;
  rt::CostTracker costs;          ///< simulated costs of this sweep only
  SweepMode mode = SweepMode::kSerial;
  int regions = 1;                ///< regions actually used (after clamping)
  int boundary_bonds = 0;         ///< serially reconciled bonds (kRealSpace)
  long prefetch_launched = 0;     ///< env extensions started asynchronously
  long prefetch_hits = 0;         ///< joins that found the future finished
  double prefetch_wait_seconds = 0.0;  ///< real time blocked joining futures
};

/// Split `n_sites` into `regions` contiguous [first, last] site ranges, each
/// at least two sites (a region must hold one bond); the request is clamped
/// to [1, n_sites/2]. Earlier regions take the remainder sites.
std::vector<std::pair<int, int>> partition_regions(int n_sites, int regions);

namespace detail {

/// Result of one two-site update executed out of line of any driver.
struct BondUpdate {
  symm::BlockTensor a, b;  ///< new site tensors (left, right of the bond)
  real_t energy = 0.0;     ///< Davidson eigenvalue
  real_t trunc_err = 0.0;  ///< Σ discarded σ² of the splitting SVD
};

/// Solve the effective two-site problem for `theta` between the given
/// environments, split with a truncated SVD, absorb the singular values in
/// the sweep direction. Shared by the serial driver and the region workers;
/// `bond` only labels error messages.
BondUpdate solve_bond(ContractionEngine& eng, symm::BlockTensor theta,
                      const symm::BlockTensor& left, const symm::BlockTensor& w1,
                      const symm::BlockTensor& w2, const symm::BlockTensor& right,
                      const SweepParams& params, bool sweep_right, int bond);

}  // namespace detail

/// DMRG optimizer owning the state, Hamiltonian, engine, and environments.
class Dmrg {
 public:
  /// psi is canonicalized to site 0 and normalized on construction; the
  /// environment graph is built immediately.
  Dmrg(mps::Mps psi, mps::Mpo h, std::unique_ptr<ContractionEngine> engine);

  /// Run the full schedule; returns the final energy.
  real_t run(const std::vector<SweepParams>& schedule);

  /// Snapshot through `ckpt` every SweepParams::checkpoint_every bonds
  /// (serial sweeps). nullptr turns checkpointing off. The manager is
  /// borrowed, not owned, and must outlive the run.
  void set_checkpointing(CheckpointManager* ckpt) { ckpt_ = ckpt; }

  /// Restart an interrupted run() of the same schedule from the latest
  /// snapshot of the attached CheckpointManager: reload the MPS (bitwise),
  /// rebuild every environment through the graph, finish the interrupted
  /// sweep from its stored mid-sweep position, then run the rest of the
  /// schedule. The final energy is bitwise identical to the uninterrupted
  /// run — sweeps, SVD, and Davidson are deterministic, and environment
  /// rebuild is bit-equivalent to incremental maintenance.
  real_t resume(const std::vector<SweepParams>& schedule);

  /// One full sweep (left-to-right then right-to-left); returns its record.
  /// Dispatches on params.mode/regions; regions=1 is the serial sweep.
  SweepRecord sweep(const SweepParams& params);

  /// Optimize the two sites (j, j+1) once; sweep_right selects which side
  /// absorbs the singular values. Exposed for the paper-style benches that
  /// time individual bond optimizations. Returns the Davidson eigenvalue.
  real_t optimize_bond(int j, const SweepParams& params, bool sweep_right);

  const mps::Mps& psi() const { return psi_; }
  const mps::Mpo& hamiltonian() const { return h_; }
  ContractionEngine& engine() { return *engine_; }
  EnvGraph& environments() { return *envs_; }
  const std::vector<SweepRecord>& records() const { return records_; }
  real_t last_energy() const { return energy_; }
  real_t last_truncation_error() const { return trunc_err_; }

  /// ⟨ψ|H|ψ⟩ computed from the current environments + center sites.
  real_t energy_expectation();

 private:
  SweepRecord sweep_serial(const SweepParams& params);
  SweepRecord sweep_realspace(const SweepParams& params);  // sweep_realspace.cpp

  /// The serial bond loop, entered mid-sweep: phase 0 starts the
  /// left-to-right pass at start_bond, phase 1 skips it and starts the
  /// right-to-left pass there. max_trunc0 seeds the running truncation
  /// maximum with the interrupted sweep's partial value. sweep_serial
  /// delegates here with (0, 0, 0.0).
  SweepRecord sweep_serial_from(const SweepParams& params, int phase,
                                int start_bond, real_t max_trunc0);

  /// After bond (j, phase) completed: snapshot if a manager is attached and
  /// the cadence says so, then evaluate the dmrg.kill_sweep fault point.
  void maybe_checkpoint(const SweepParams& params, int phase, int bond);

  mps::Mps psi_;
  mps::Mpo h_;
  std::unique_ptr<ContractionEngine> engine_;
  std::unique_ptr<EnvGraph> envs_;
  std::vector<SweepRecord> records_;
  real_t energy_ = 0.0;
  real_t trunc_err_ = 0.0;
  int sweep_count_ = 0;
  CheckpointManager* ckpt_ = nullptr;  // borrowed; see set_checkpointing
  long bonds_since_ckpt_ = 0;
  int schedule_pos_ = 0;               // sweep index inside the running schedule
  real_t max_trunc_partial_ = 0.0;     // running max of the in-flight sweep
};

/// Convenience: geometric bond-dimension ramp-up schedule
/// (m_first, …, m_final doubling, each `per_m` sweeps).
std::vector<SweepParams> standard_schedule(index_t m_first, index_t m_final,
                                           int per_m = 2, real_t cutoff = 1e-12);

}  // namespace tt::dmrg

// Two-site DMRG sweep driver (paper §II.C).
//
// Standard algorithm, identical numerics across engines: contract the two
// center sites, solve the projected eigenproblem with Davidson through the
// environment network, split with a truncated block SVD, absorb the singular
// values along the sweep direction, extend the environments incrementally.
#pragma once

#include <memory>
#include <vector>

#include "dmrg/davidson.hpp"
#include "dmrg/engine.hpp"
#include "dmrg/environment.hpp"
#include "mps/mpo.hpp"
#include "mps/mps.hpp"

namespace tt::dmrg {

/// Parameters of one sweep (one left-to-right + right-to-left pass).
struct SweepParams {
  index_t max_m = 64;        ///< bond-dimension cap
  real_t cutoff = 1e-12;     ///< singular values <= cutoff dropped (paper §II.C)
  int davidson_iter = 2;     ///< matvecs per two-site optimization (paper: 2)
  int davidson_subspace = 2; ///< Davidson restart size (paper: 2)
};

/// Record of a completed sweep.
struct SweepRecord {
  int sweep = 0;
  real_t energy = 0.0;
  index_t max_bond_dim = 0;
  real_t truncation_error = 0.0;  ///< max over bonds of Σ discarded σ²
  double wall_seconds = 0.0;
  rt::CostTracker costs;          ///< simulated costs of this sweep only
};

/// DMRG optimizer owning the state, Hamiltonian, engine, and environments.
class Dmrg {
 public:
  /// psi is canonicalized to site 0 and normalized on construction; the right
  /// environment stack is built immediately.
  Dmrg(mps::Mps psi, mps::Mpo h, std::unique_ptr<ContractionEngine> engine);

  /// Run the full schedule; returns the final energy.
  real_t run(const std::vector<SweepParams>& schedule);

  /// One full sweep (left-to-right then right-to-left); returns its record.
  SweepRecord sweep(const SweepParams& params);

  /// Optimize the two sites (j, j+1) once; sweep_right selects which side
  /// absorbs the singular values. Exposed for the paper-style benches that
  /// time individual bond optimizations. Returns the Davidson eigenvalue.
  real_t optimize_bond(int j, const SweepParams& params, bool sweep_right);

  const mps::Mps& psi() const { return psi_; }
  const mps::Mpo& hamiltonian() const { return h_; }
  ContractionEngine& engine() { return *engine_; }
  const std::vector<SweepRecord>& records() const { return records_; }
  real_t last_energy() const { return energy_; }
  real_t last_truncation_error() const { return trunc_err_; }

  /// ⟨ψ|H|ψ⟩ computed from the current environments + center sites.
  real_t energy_expectation();

 private:
  mps::Mps psi_;
  mps::Mpo h_;
  std::unique_ptr<ContractionEngine> engine_;
  std::unique_ptr<EnvironmentStack> envs_;
  std::vector<SweepRecord> records_;
  real_t energy_ = 0.0;
  real_t trunc_err_ = 0.0;
  int sweep_count_ = 0;
};

/// Convenience: geometric bond-dimension ramp-up schedule
/// (m_first, …, m_final doubling, each `per_m` sweeps).
std::vector<SweepParams> standard_schedule(index_t m_first, index_t m_final,
                                           int per_m = 2, real_t cutoff = 1e-12);

}  // namespace tt::dmrg

// Left/right environment tensors (paper fig 1d).
//
// Leg conventions (derived from the MPS/MPO conventions in mps/):
//   left  L: (bra In,  mpo Out, ket Out)
//   right R: (bra Out, mpo In,  ket In)
// Environments are extended site by site along the sweep; all contractions
// run through the engine so each algorithm's costs are charged faithfully.
#pragma once

#include "dmrg/engine.hpp"
#include "mps/mpo.hpp"
#include "mps/mps.hpp"

namespace tt::dmrg {

/// Boundary environments (dim-1 legs; the right boundary pins the state's
/// total charge).
symm::BlockTensor left_boundary(int qn_rank);
symm::BlockTensor right_boundary(const symm::QN& total);

/// L' = L · ψ_j† · W_j · ψ_j (extend the left environment over site j).
symm::BlockTensor extend_left(ContractionEngine& eng, const symm::BlockTensor& left,
                              const symm::BlockTensor& psi_j,
                              const symm::BlockTensor& w_j);

/// R' = ψ_j† · W_j · ψ_j · R (extend the right environment over site j).
symm::BlockTensor extend_right(ContractionEngine& eng, const symm::BlockTensor& right,
                               const symm::BlockTensor& psi_j,
                               const symm::BlockTensor& w_j);

/// Effective two-site matvec y = L·W_j·W_{j+1}·R applied to x(l,s1,s2,r)
/// (paper fig 1d, cost O(m³kd)).
symm::BlockTensor apply_two_site(ContractionEngine& eng, const symm::BlockTensor& left,
                                 const symm::BlockTensor& w1,
                                 const symm::BlockTensor& w2,
                                 const symm::BlockTensor& right,
                                 const symm::BlockTensor& x);

// Environment caching lives in dmrg/env_graph.hpp (EnvGraph): environments
// are nodes of an explicit dependency graph with validity states, demanded
// through accessors and invalidated through site_changed() instead of the
// hand-ordered update calls the old EnvironmentStack required.

}  // namespace tt::dmrg

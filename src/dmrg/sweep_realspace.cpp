// Real-space parallel sweep (SweepMode::kRealSpace), à la Stoudenmire–White.
//
// The chain splits into R contiguous regions that optimize concurrently, each
// against *frozen* boundary environments, then the R−1 boundary bonds are
// reconciled serially. The exact gauge decomposition behind it: with ψ in
// right-canonical (B) gauge and an A-gauge QR walk from the left recording the
// cumulative bond factor T_b at each region boundary bond b (so that
// A_0…A_b·T_b = M_0…M_b telescopes exactly),
//
//   ψ = [A_0…A_{a_r−1}] · (T_{b_{r−1}} · M_{a_r} … M_{b_r}) · [M_{b_r+1}…]
//
// for every region r = [a_r, b_r]. The bracketed exteriors are orthonormal
// (A from the left, B from the right), so each region's piece — the middle
// factor — is a well-posed local DMRG problem between the frozen environments
// Lfrz[r] (built over the A sites) and Rfrz[r] (the B-gauge right
// environment). Workers run a full local two-site L2R+R2L pass; the updated
// pieces are glued back with the pseudo-inverses T_b⁺ (exact for unmodified
// pieces, since M_0…M_b·T_b⁺·T_b = A_0…A_b·T_b·T_b⁺·T_b = M_0…M_b), and a
// serial pass re-optimizes each boundary bond to heal the seams.
//
// Determinism: regions are data-independent during the parallel phase (frozen
// inputs, disjoint outputs, one engine per region), every in-region op runs
// in a fixed serial order (workers execute inside the pool, so nested
// parallelism is inline), and the per-region trackers are merged in region
// order — results are bitwise reproducible at any TT_THREADS.
#include <algorithm>
#include <utility>
#include <vector>

#include "dmrg/dmrg.hpp"
#include "dmrg/environment.hpp"
#include "linalg/svd.hpp"
#include "runtime/trace.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace tt::dmrg {

namespace {

using symm::BlockTensor;

/// Pseudo-inverse of a cumulative boundary bond factor T (order-2, flux 0,
/// legs (bond In, orig Out)): per admissible block, V·S⁺·Uᵀ with a relative
/// singular-value cutoff. Result legs (orig In, bond Out) so that
/// piece_r · T⁺ · piece_{r+1} contracts naturally.
BlockTensor pinv_bond_factor(const BlockTensor& t) {
  TT_CHECK(t.order() == 2, "bond factor must be order 2");
  BlockTensor out({t.index(1).reversed(), t.index(0).reversed()}, t.flux());
  for (const auto& [key, blk] : t.blocks()) {
    const index_t m = blk.dim(0), n = blk.dim(1);
    linalg::Matrix a(m, n);
    for (index_t i = 0; i < m; ++i)
      for (index_t j = 0; j < n; ++j) a(i, j) = blk.at({i, j});
    const linalg::SvdResult f = linalg::svd(a);
    const real_t smax = f.s.empty() ? 0.0 : f.s[0];
    const real_t cut = 1e-12 * smax;
    tensor::DenseTensor p({n, m});
    for (std::size_t k = 0; k < f.s.size(); ++k) {
      if (f.s[k] <= cut) continue;
      const real_t inv = 1.0 / f.s[k];
      for (index_t i = 0; i < n; ++i)
        for (index_t j = 0; j < m; ++j)
          p.at({i, j}) += f.vt(static_cast<index_t>(k), i) * inv *
                          f.u(j, static_cast<index_t>(k));
    }
    out.accumulate({key[1], key[0]}, std::move(p));
  }
  return out;
}

struct RegionResult {
  std::vector<BlockTensor> tensors;
  real_t max_trunc = 0.0;
};

/// One region's local L2R+R2L two-site pass between frozen environments.
/// Serial and deterministic; `a` is the region's first global site (labels).
RegionResult run_region(ContractionEngine& eng, std::vector<BlockTensor> piece,
                        const BlockTensor& lfrz, const BlockTensor& rfrz,
                        const mps::Mpo& h, int a, const SweepParams& params) {
  const int len = static_cast<int>(piece.size());
  auto w = [&](int i) -> const BlockTensor& { return h.site(a + i); };

  // Local right-canonicalization: the piece's center moves to local site 0.
  // Pure gauge — the region's product (and thus ψ) is unchanged.
  for (int i = len - 1; i >= 1; --i) {
    auto f = symm::block_lq(piece[static_cast<std::size_t>(i)], {0});
    piece[static_cast<std::size_t>(i)] = std::move(f.q);
    piece[static_cast<std::size_t>(i) - 1] =
        symm::contract(piece[static_cast<std::size_t>(i) - 1], f.l, {{2, 0}});
  }

  // Local environment stacks seeded by the frozen exteriors.
  std::vector<BlockTensor> lenv(static_cast<std::size_t>(len) + 1);
  std::vector<BlockTensor> renv(static_cast<std::size_t>(len) + 1);
  lenv[0] = lfrz;
  renv[static_cast<std::size_t>(len)] = rfrz;
  for (int i = len - 1; i >= 2; --i)
    renv[static_cast<std::size_t>(i)] =
        extend_right(eng, renv[static_cast<std::size_t>(i) + 1],
                     piece[static_cast<std::size_t>(i)], w(i));

  RegionResult res;
  auto bond = [&](int i, bool sweep_right) {
    BlockTensor theta =
        eng.contract(piece[static_cast<std::size_t>(i)], Role::kIntermediate,
                     piece[static_cast<std::size_t>(i) + 1], Role::kIntermediate,
                     {{2, 0}});
    detail::BondUpdate u = detail::solve_bond(
        eng, std::move(theta), lenv[static_cast<std::size_t>(i)], w(i), w(i + 1),
        renv[static_cast<std::size_t>(i) + 2], params, sweep_right, a + i);
    piece[static_cast<std::size_t>(i)] = std::move(u.a);
    piece[static_cast<std::size_t>(i) + 1] = std::move(u.b);
    res.max_trunc = std::max(res.max_trunc, u.trunc_err);
  };
  for (int i = 0; i + 1 < len; ++i) {
    bond(i, /*sweep_right=*/true);
    if (i + 2 < len)
      lenv[static_cast<std::size_t>(i) + 1] =
          extend_left(eng, lenv[static_cast<std::size_t>(i)],
                      piece[static_cast<std::size_t>(i)], w(i));
  }
  for (int i = len - 2; i >= 0; --i) {
    bond(i, /*sweep_right=*/false);
    if (i >= 1)
      renv[static_cast<std::size_t>(i) + 1] =
          extend_right(eng, renv[static_cast<std::size_t>(i) + 2],
                       piece[static_cast<std::size_t>(i) + 1], w(i + 1));
  }
  res.tensors = std::move(piece);
  return res;
}

}  // namespace

SweepRecord Dmrg::sweep_realspace(const SweepParams& params) {
  TT_TRACE_SPAN("dmrg.sweep_realspace", rt::TraceCat::kSweep);
  Timer timer;
  const rt::CostTracker start = engine_->tracker();
  const auto regions = partition_regions(psi_.size(), params.regions);
  const int R = static_cast<int>(regions.size());

  // Global B gauge: center at site 0, every other site right-orthonormal.
  // invalidate_all first: it joins any in-flight prefetch (a caller may have
  // left one flying via optimize_bond) before canonicalize rewrites the site
  // tensors the worker could still be reading.
  envs_->invalidate_all();
  psi_.canonicalize(0);
  psi_.normalize();

  // Frozen right environments at the region right edges (one chain rebuild).
  std::vector<BlockTensor> rfrz(static_cast<std::size_t>(R));
  for (int r = R - 1; r >= 0; --r)
    rfrz[static_cast<std::size_t>(r)] = envs_->right(regions[static_cast<std::size_t>(r)].second + 1);

  // A-gauge QR walk up to the last region's start: records the cumulative
  // bond factor T at each boundary bond and the frozen A-side left
  // environments at each region start. Gauge ops are uncharged (as in
  // canonicalize); environment extensions are charged to the main engine.
  std::vector<BlockTensor> tfac(static_cast<std::size_t>(R) - 1);
  std::vector<BlockTensor> lfrz(static_cast<std::size_t>(R));
  BlockTensor e = left_boundary(psi_.sites()->qn_rank());
  lfrz[0] = e;
  {
    BlockTensor t;  // cumulative R factor
    int next_r = 1;
    const int stop = regions[static_cast<std::size_t>(R) - 1].first;
    for (int j = 0; j < stop; ++j) {
      BlockTensor cur =
          j == 0 ? psi_.site(0) : symm::contract(t, psi_.site(j), {{1, 0}});
      auto f = symm::block_qr(cur, {0, 1});
      t = std::move(f.r);
      e = extend_left(*engine_, e, f.q, h_.site(j));
      if (next_r < R && regions[static_cast<std::size_t>(next_r)].first == j + 1) {
        tfac[static_cast<std::size_t>(next_r) - 1] = t;
        lfrz[static_cast<std::size_t>(next_r)] = e;
        ++next_r;
      }
    }
  }

  // Local pieces: region tensors in B gauge, with the cumulative factor
  // absorbed into each region's first tensor (the exact decomposition above).
  std::vector<std::vector<BlockTensor>> pieces(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r) {
    for (int j = regions[static_cast<std::size_t>(r)].first;
         j <= regions[static_cast<std::size_t>(r)].second; ++j)
      pieces[static_cast<std::size_t>(r)].push_back(psi_.site(j));
    if (r > 0)
      pieces[static_cast<std::size_t>(r)][0] = symm::contract(
          tfac[static_cast<std::size_t>(r) - 1], pieces[static_cast<std::size_t>(r)][0], {{1, 0}});
  }

  // Parallel phase: one engine per region (trackers merge in region order
  // below — deterministic at any thread count). The rank scheduler, when
  // attached, stays with the serial boundary pass only: region workers are
  // concurrent and the scheduler's collectives are single-caller.
  std::vector<std::unique_ptr<ContractionEngine>> engines(static_cast<std::size_t>(R));
  for (auto& p : engines)
    p = make_engine(engine_->kind(), engine_->cluster(), engine_->params());
  std::vector<RegionResult> results(static_cast<std::size_t>(R));
  support::parallel_for(R, [&](index_t r) {
    TT_TRACE_SPAN("dmrg.region", rt::TraceCat::kSweep);
    const std::size_t s = static_cast<std::size_t>(r);
    results[s] = run_region(*engines[s], std::move(pieces[s]), lfrz[s], rfrz[s],
                            h_, regions[s].first, params);
  });
  for (const auto& p : engines) engine_->tracker().merge(p->tracker());

  // Write back and glue the boundaries with the factor pseudo-inverses.
  real_t max_trunc = 0.0;
  for (int r = 0; r < R; ++r) {
    const std::size_t s = static_cast<std::size_t>(r);
    max_trunc = std::max(max_trunc, results[s].max_trunc);
    for (int i = 0; i < static_cast<int>(results[s].tensors.size()); ++i)
      psi_.set_site(regions[s].first + i,
                    std::move(results[s].tensors[static_cast<std::size_t>(i)]));
  }
  for (int r = 0; r + 1 < R; ++r) {
    const int b = regions[static_cast<std::size_t>(r)].second;
    psi_.set_site(b, symm::contract(psi_.site(b),
                                    pinv_bond_factor(tfac[static_cast<std::size_t>(r)]),
                                    {{2, 0}}));
  }

  // Serial boundary reconciliation: re-optimize each seam bond with fresh
  // global environments (the Stoudenmire–White stitch step).
  SweepParams serial = params;
  serial.mode = SweepMode::kSerial;
  serial.regions = 1;
  serial.prefetch = false;
  for (int r = 0; r + 1 < R; ++r) {
    const int b = regions[static_cast<std::size_t>(r)].second;
    envs_->invalidate_all();  // join before canonicalize mutates psi
    psi_.canonicalize(b);
    psi_.normalize();
    optimize_bond(b, serial, /*sweep_right=*/true);
    max_trunc = std::max(max_trunc, trunc_err_);
  }

  envs_->invalidate_all();  // join before canonicalize mutates psi
  psi_.canonicalize(0);
  psi_.normalize();
  energy_ = energy_expectation();
  trunc_err_ = max_trunc;

  SweepRecord rec;
  rec.sweep = ++sweep_count_;
  rec.energy = energy_;
  rec.max_bond_dim = psi_.max_bond_dim();
  rec.truncation_error = max_trunc;
  rec.wall_seconds = timer.seconds();
  rec.costs = engine_->tracker().diff(start);
  rec.mode = SweepMode::kRealSpace;
  rec.regions = R;
  rec.boundary_bonds = R - 1;
  records_.push_back(rec);
  return rec;
}

}  // namespace tt::dmrg

#include "dmrg/engines.hpp"

#include "symm/fuse.hpp"
#include "tensor/einsum.hpp"

namespace tt::dmrg {

symm::BlockTensor SparseDenseEngine::contract(
    const symm::BlockTensor& a, Role role_a, const symm::BlockTensor& b,
    Role role_b, const std::vector<std::pair<int, int>>& pairs) {
  const symm::ContractPlan plan = symm::make_contract_plan(a, b, pairs);

  // Execute as ONE fused contraction (O(1) supersteps). Operator tensors are
  // held in sparse format, intermediates in dense format (paper §IV-A); the
  // kernel is picked by the operand roles.
  tensor::EinsumStats es;
  tensor::DenseTensor fused;
  double words_a = 0.0, words_b = 0.0;
  if (role_a == Role::kOperator && role_b == Role::kIntermediate) {
    auto sa = symm::fuse_sparse(a);
    auto db = symm::fuse_dense(b);
    words_a = static_cast<double>(sa.nnz());
    words_b = static_cast<double>(db.size());
    fused = tensor::einsum_sd(plan.spec, sa, db, &es);
  } else if (role_a == Role::kIntermediate && role_b == Role::kOperator) {
    auto da = symm::fuse_dense(a);
    auto sb = symm::fuse_sparse(b);
    words_a = static_cast<double>(da.size());
    words_b = static_cast<double>(sb.nnz());
    fused = tensor::einsum_ds(plan.spec, da, sb, &es);
  } else if (role_a == Role::kIntermediate && role_b == Role::kIntermediate) {
    auto da = symm::fuse_dense(a);
    auto db = symm::fuse_dense(b);
    words_a = static_cast<double>(da.size());
    words_b = static_cast<double>(db.size());
    fused = tensor::einsum(plan.spec, da, db, &es);
  } else {
    // Two operators (environment updates): keep the larger one sparse.
    auto sa = symm::fuse_sparse(a);
    auto db = symm::fuse_dense(b);
    words_a = static_cast<double>(sa.nnz());
    words_b = static_cast<double>(db.size());
    fused = tensor::einsum_sd(plan.spec, sa, db, &es);
  }

  symm::BlockTensor c = symm::split_dense(fused, plan.out_indices, plan.out_flux);

  rt::ContractionCost cost;
  cost.flops = es.flops;
  cost.words_a = words_a;
  cost.words_b = words_b;
  // Whether the output stays dense (intermediate) or is re-sparsified decides
  // its stored word count.
  const bool out_intermediate =
      role_a == Role::kIntermediate || role_b == Role::kIntermediate;
  cost.words_c = out_intermediate ? static_cast<double>(fused.size())
                                  : static_cast<double>(c.num_elements());
  charge_and_log(cost, rt::Layout::kFusedDense2D);
  return c;
}

symm::BlockSvd SparseDenseEngine::svd(const symm::BlockTensor& a,
                                      const std::vector<int>& row_modes,
                                      const symm::TruncParams& trunc) {
  // Blocks must be extracted from the fused tensor into a temporary list
  // format, decomposed, and re-fused (paper §IV-A) — charge the
  // redistribution both ways on top of the base SVD cost.
  rt::charge_redistribution(cluster_, tracker_,
                            static_cast<double>(a.num_elements()));
  log_redistribution(static_cast<double>(a.num_elements()));
  symm::BlockSvd f = ContractionEngine::svd(a, row_modes, trunc);
  const double out_words =
      static_cast<double>(f.u.num_elements() + f.vt.num_elements());
  rt::charge_redistribution(cluster_, tracker_, out_words);
  log_redistribution(out_words);
  return f;
}

}  // namespace tt::dmrg

#include "dmrg/env_graph.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "dmrg/environment.hpp"
#include "runtime/trace.hpp"
#include "support/error.hpp"

namespace tt::dmrg {

using symm::BlockTensor;

EnvGraph::EnvGraph(ContractionEngine& eng, const mps::Mps& psi, const mps::Mpo& h,
                   ContractionEngine* builder)
    : eng_(eng), psi_(psi), h_(h), n_(psi.size()) {
  TT_CHECK(n_ == h.size(), "MPS/MPO size mismatch");
  left_.resize(static_cast<std::size_t>(n_) + 1);
  right_.resize(static_cast<std::size_t>(n_) + 1);
  left_[0].t = left_boundary(psi.sites()->qn_rank());
  left_[0].state = NodeState::kValid;
  right_[static_cast<std::size_t>(n_)].t = right_boundary(psi.total_qn());
  right_[static_cast<std::size_t>(n_)].state = NodeState::kValid;
  ContractionEngine& build_eng = builder ? *builder : eng_;
  for (int j = n_ - 1; j >= 1; --j) {
    right_[static_cast<std::size_t>(j)].t =
        extend_right(build_eng, right_[static_cast<std::size_t>(j) + 1].t,
                     psi.site(j), h.site(j));
    right_[static_cast<std::size_t>(j)].state = NodeState::kValid;
  }
  for (int j = 0; j + 1 < n_; ++j) {
    left_[static_cast<std::size_t>(j) + 1].t =
        extend_left(build_eng, left_[static_cast<std::size_t>(j)].t, psi.site(j),
                    h.site(j));
    left_[static_cast<std::size_t>(j) + 1].state = NodeState::kValid;
  }
}

EnvGraph::~EnvGraph() {
  // Settle any in-flight prefetch before members it writes to are destroyed.
  if (pf_active_) {
    try {
      join_pending();
    } catch (...) {
      // A failed prefetch has nothing left to settle.
    }
  }
}

const BlockTensor& EnvGraph::left(int j) { return demand(true, j); }
const BlockTensor& EnvGraph::right(int j) { return demand(false, j); }

const BlockTensor& EnvGraph::demand(bool is_left, int j) {
  TT_CHECK(j >= 0 && j <= n_,
           "env " << j << " out of range (" << (is_left ? "left" : "right") << ")");
  std::vector<Node>& nodes = chain(is_left);
  // Walk toward the boundary until a valid ancestor (a pending node joins to
  // valid); the boundary node is always valid, so the walk terminates.
  int k = j;
  while (nodes[static_cast<std::size_t>(k)].state != NodeState::kValid) {
    if (nodes[static_cast<std::size_t>(k)].state == NodeState::kPending) {
      join_pending();
      continue;  // re-check: the join settled this node
    }
    k += is_left ? -1 : 1;
    TT_CHECK(k >= 0 && k <= n_, "environment boundary node was invalidated");
  }
  // Recompute the invalid suffix of the chain, ancestor first.
  if (is_left) {
    for (int i = k + 1; i <= j; ++i) produce(true, i);
  } else {
    for (int i = k - 1; i >= j; --i) produce(false, i);
  }
  return nodes[static_cast<std::size_t>(j)].t;
}

void EnvGraph::produce(bool is_left, int j) {
  if (pf_active_ && pf_is_left_ == is_left && pf_node_ == j) {
    join_pending();
    return;
  }
  TT_TRACE_SPAN("env.extend", rt::TraceCat::kEnv);
  std::vector<Node>& nodes = chain(is_left);
  Node& node = nodes[static_cast<std::size_t>(j)];
  if (is_left) {
    // left(j) = left(j-1) extended over site j-1.
    node.t = extend_left(eng_, nodes[static_cast<std::size_t>(j) - 1].t,
                         psi_.site(j - 1), h_.site(j - 1));
  } else {
    // right(j) = right(j+1) extended over site j.
    node.t = extend_right(eng_, nodes[static_cast<std::size_t>(j) + 1].t,
                          psi_.site(j), h_.site(j));
  }
  node.state = NodeState::kValid;
}

void EnvGraph::site_changed(int j) {
  TT_CHECK(j >= 0 && j < n_, "site " << j << " out of range");
  // The in-flight prefetch may target a node this invalidates; settle it
  // first so its write cannot land after the state flip.
  join_pending();
  for (int k = j + 1; k <= n_; ++k)
    left_[static_cast<std::size_t>(k)].state = NodeState::kInvalid;
  for (int k = 0; k <= j; ++k)
    right_[static_cast<std::size_t>(k)].state = NodeState::kInvalid;
}

void EnvGraph::invalidate_all() {
  join_pending();
  for (int k = 1; k <= n_; ++k)
    left_[static_cast<std::size_t>(k)].state = NodeState::kInvalid;
  for (int k = 0; k < n_; ++k)
    right_[static_cast<std::size_t>(k)].state = NodeState::kInvalid;
}

void EnvGraph::prefetch_left(int j) { prefetch(true, j); }
void EnvGraph::prefetch_right(int j) { prefetch(false, j); }

void EnvGraph::prefetch(bool is_left, int j) {
  TT_CHECK(j >= 0 && j <= n_,
           "env " << j << " out of range (" << (is_left ? "left" : "right") << ")");
  join_pending();  // at most one future in flight
  std::vector<Node>& nodes = chain(is_left);
  Node& node = nodes[static_cast<std::size_t>(j)];
  if (node.state != NodeState::kInvalid) return;  // nothing to do
  const int parent = is_left ? j - 1 : j + 1;
  if (parent < 0 || parent > n_) return;
  if (nodes[static_cast<std::size_t>(parent)].state != NodeState::kValid)
    return;  // prefetch computes one edge only; demand handles chain rebuilds
  if (!pf_queue_) {
    // Same algorithm / virtual cluster as the main engine — bit-identical
    // tensors, comparable charged cost. Serial (the worker thread runs with
    // in_parallel_region() set); no scheduler: ranks are not prefetch-safe.
    pf_engine_ = make_engine(eng_.kind(), eng_.cluster(), eng_.params());
    pf_queue_ = std::make_unique<support::TaskQueue>();
  }
  const int site = is_left ? j - 1 : j;
  const BlockTensor* parent_t = &nodes[static_cast<std::size_t>(parent)].t;
  const BlockTensor* psi_t = &psi_.site(site);
  const BlockTensor* w_t = &h_.site(site);
  ContractionEngine* pe = pf_engine_.get();
  pf_result_ = BlockTensor();
  const std::chrono::milliseconds delay = pf_test_delay_;
  pf_future_ =
      pf_queue_->submit([this, pe, parent_t, psi_t, w_t, is_left, delay] {
        // Runs on the TaskQueue worker thread: its own lane in the trace,
        // where overlap with the main thread's Davidson spans is visible.
        rt::Trace::set_thread_label("env-prefetch");
        TT_TRACE_SPAN("env.prefetch", rt::TraceCat::kPrefetch);
        if (delay.count() > 0) std::this_thread::sleep_for(delay);
        pf_result_ = is_left ? extend_left(*pe, *parent_t, *psi_t, *w_t)
                             : extend_right(*pe, *parent_t, *psi_t, *w_t);
      });
  node.state = NodeState::kPending;
  pf_active_ = true;
  pf_is_left_ = is_left;
  pf_node_ = j;
  ++pf_stats_.launched;
}

void EnvGraph::join_pending() {
  if (!pf_active_) return;
  using clock = std::chrono::steady_clock;
  if (pf_future_.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    ++pf_stats_.hits;
  } else {
    ++pf_stats_.misses;
    TT_TRACE_SPAN("env.prefetch_wait", rt::TraceCat::kPrefetch);
    const auto t0 = clock::now();
    pf_future_.wait();
    pf_stats_.wait_seconds +=
        std::chrono::duration<double>(clock::now() - t0).count();
  }
  Node& node = chain(pf_is_left_)[static_cast<std::size_t>(pf_node_)];
  pf_active_ = false;
  pf_node_ = -1;
  node.state = NodeState::kInvalid;  // stays invalid if get() throws
  pf_future_.get();
  node.t = std::move(pf_result_);
  node.state = NodeState::kValid;
  // Fold the prefetch engine's charges into the main tracker: simulated time
  // lands in the dedicated prefetch slot (overlap stays visible in the
  // breakdown), raw BSP quantities add up exactly as if the extension had
  // run on the main engine.
  rt::CostTracker d = pf_engine_->tracker();
  pf_engine_->tracker().reset();
  eng_.tracker().add_time(rt::Category::kPrefetch, d.total_time());
  eng_.tracker().add_flops(d.flops());
  eng_.tracker().add_words(d.words());
  eng_.tracker().add_supersteps(d.supersteps());
}

void EnvGraph::sync() { join_pending(); }

EnvGraph::NodeState EnvGraph::left_state(int j) const {
  TT_CHECK(j >= 0 && j <= n_, "left env " << j << " out of range");
  return left_[static_cast<std::size_t>(j)].state;
}

EnvGraph::NodeState EnvGraph::right_state(int j) const {
  TT_CHECK(j >= 0 && j <= n_, "right env " << j << " out of range");
  return right_[static_cast<std::size_t>(j)].state;
}

}  // namespace tt::dmrg

#include "dmrg/engines.hpp"

#include "symm/fuse.hpp"
#include "tensor/einsum.hpp"

namespace tt::dmrg {

symm::BlockTensor SparseSparseEngine::contract(
    const symm::BlockTensor& a, Role, const symm::BlockTensor& b, Role,
    const std::vector<std::pair<int, int>>& pairs) {
  const symm::ContractPlan plan = symm::make_contract_plan(a, b, pairs);

  // All tensors fused sparse; the output sparsity is precomputed from the
  // quantum-number structure and handed to the kernel so accumulation memory
  // is bounded (paper §IV-A).
  auto sa = symm::fuse_sparse(a);
  auto sb = symm::fuse_sparse(b);
  auto mask = symm::structure_mask(plan.out_indices, plan.out_flux);

  tensor::EinsumStats es;
  tensor::SparseTensor fused = tensor::einsum_ss(plan.spec, sa, sb, &es, &mask);
  symm::BlockTensor c = symm::split_sparse(fused, plan.out_indices, plan.out_flux);

  rt::ContractionCost cost;
  cost.flops = es.flops;
  cost.words_a = static_cast<double>(sa.nnz());
  cost.words_b = static_cast<double>(sb.nnz());
  cost.words_c = static_cast<double>(fused.nnz());
  charge_and_log(cost, rt::Layout::kFusedSparse2D);
  return c;
}

symm::BlockSvd SparseSparseEngine::svd(const symm::BlockTensor& a,
                                       const std::vector<int>& row_modes,
                                       const symm::TruncParams& trunc) {
  // Extract blocks to the list format, decompose, rebuild the sparse tensor
  // (paper §IV-A).
  rt::charge_redistribution(cluster_, tracker_,
                            static_cast<double>(a.num_elements()));
  log_redistribution(static_cast<double>(a.num_elements()));
  symm::BlockSvd f = ContractionEngine::svd(a, row_modes, trunc);
  const double out_words =
      static_cast<double>(f.u.num_elements() + f.vt.num_elements());
  rt::charge_redistribution(cluster_, tracker_, out_words);
  log_redistribution(out_words);
  return f;
}

}  // namespace tt::dmrg

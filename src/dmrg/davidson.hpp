// Davidson eigensolver on block tensors — paper Algorithm 1.
//
// Follows the paper's choices (§II.C): based on the ITensor implementation,
// no preconditioning, modified Gram–Schmidt re-orthogonalization with
// randomization to recover from breakdown, small subspace (size 2 during
// sweeps — each local problem starts from an excellent initial guess).
#pragma once

#include <functional>

#include "symm/block_tensor.hpp"

namespace tt::dmrg {

/// y = A·x through the implicit environment representation (fig 1d).
using BlockMatVec = std::function<symm::BlockTensor(const symm::BlockTensor&)>;

struct DavidsonOptions {
  int max_iter = 2;       ///< matvec budget per optimization (paper: 2)
  int subspace = 2;       ///< restart after this many basis vectors
  real_t tol = 1e-10;     ///< residual-norm convergence threshold
  std::uint64_t seed = 0xdad1d50ULL;  ///< randomized restart seed
};

struct DavidsonResult {
  real_t eigenvalue = 0.0;
  symm::BlockTensor vector;  ///< normalized Ritz vector
  int matvecs = 0;
  bool converged = false;
};

/// Compute the smallest eigenpair of the symmetric operator `apply` starting
/// from guess `x0` (must be nonzero).
DavidsonResult davidson(const BlockMatVec& apply, symm::BlockTensor x0,
                        const DavidsonOptions& opts = {});

}  // namespace tt::dmrg

// Sweep-level checkpoint/restart for DMRG runs (ROADMAP item 5a).
//
// A CheckpointManager owns a directory holding numbered snapshots plus one
// MANIFEST naming the latest complete snapshot:
//
//   MANIFEST            "TTCKPT-MANIFEST 1\n<seq> <file> <checksum> <bytes>\n"
//   ckpt_<seq>.tt       "TTCKPT 1" header, sweep position, energy history,
//                       then the full MPS as an embedded TTMPS-v1 stream
//                       (hexfloat doubles — bitwise-exact round trip)
//
// Durability discipline: every file is written to a temporary name in the
// same directory and then rename()d into place — a crash mid-write can leave
// a stale temp file, never a torn snapshot or a manifest naming one. The
// manifest is updated only after its snapshot is durable, and carries the
// snapshot's byte count and rt::wire_checksum so load() rejects truncation
// and corruption explicitly. The two most recent snapshots are kept (the
// previous one survives until the next save), older ones are pruned.
//
// Restart contract: Dmrg::resume() loads the latest snapshot, restores the
// MPS (bitwise), rebuilds every environment through EnvGraph, and continues
// from the stored mid-sweep position. Because sweeps, SVD, and Davidson are
// deterministic and environment production is bit-equivalent across rebuild
// and incremental maintenance, the resumed run reaches a final energy
// bitwise identical to an uninterrupted run — asserted by
// tests/dmrg/test_checkpoint.cpp.
#pragma once

#include <string>
#include <vector>

#include "dmrg/dmrg.hpp"
#include "mps/io.hpp"

namespace tt::dmrg {

/// Where a run stands inside its sweep schedule; everything Dmrg::resume()
/// needs beyond the MPS itself.
struct SweepPosition {
  int schedule_pos = 0;  ///< index of the interrupted sweep in the schedule
  int sweep_count = 0;   ///< sweeps completed before it
  int phase = 0;         ///< 0 = left-to-right pass, 1 = right-to-left pass
  int next_bond = 0;     ///< first bond the resumed sweep optimizes
  int center = 0;        ///< orthogonality center of the stored MPS
  real_t energy = 0.0;           ///< last Davidson eigenvalue
  real_t trunc_err = 0.0;        ///< last bond truncation error
  real_t max_trunc_partial = 0.0;  ///< running max over the interrupted sweep
};

/// A loaded snapshot.
struct CheckpointData {
  mps::Mps psi;
  SweepPosition pos;
  std::vector<SweepRecord> history;  ///< sweep/energy/bond-dim/trunc only
};

/// Atomic write-to-temp-then-rename snapshot store (see file header).
class CheckpointManager {
 public:
  /// Creates `dir` if needed. If the directory already holds a manifest, the
  /// sequence continues from it (and a corrupt manifest throws here, not at
  /// the first save over it).
  explicit CheckpointManager(std::string dir);

  const std::string& dir() const { return dir_; }
  bool has_checkpoint() const;
  long sequence() const { return sequence_; }

  /// Write snapshot sequence()+1 and point the manifest at it.
  void save(const mps::Mps& psi, const SweepPosition& pos,
            const std::vector<SweepRecord>& history);

  /// Load the snapshot the manifest names. Throws tt::Error on missing
  /// manifest, bad magic, unsupported version, truncation, or checksum
  /// mismatch — never returns garbage.
  CheckpointData load(mps::SiteSetPtr sites) const;

 private:
  std::string manifest_path() const;
  std::string snapshot_name(long seq) const;

  std::string dir_;
  long sequence_ = 0;
};

}  // namespace tt::dmrg

#include "dmrg/engine.hpp"

#include "dmrg/engines.hpp"
#include "linalg/svd.hpp"

namespace tt::dmrg {

const char* engine_name(EngineKind k) {
  switch (k) {
    case EngineKind::kReference: return "reference";
    case EngineKind::kList: return "list";
    case EngineKind::kSparseDense: return "sparse-dense";
    case EngineKind::kSparseSparse: return "sparse-sparse";
  }
  return "?";
}

symm::BlockSvd ContractionEngine::svd(const symm::BlockTensor& a,
                                      const std::vector<int>& row_modes,
                                      const symm::TruncParams& trunc) {
  symm::BlockSvd f = symm::block_svd(a, row_modes, trunc, num_threads_);
  // The SVD itself runs block-group-wise through the distributed
  // pdgesvd-equivalent regardless of engine (paper §IV-A).
  for (const auto& shape : f.shapes) {
    rt::charge_svd(cluster_, tracker_, shape.rows, shape.cols, params_);
    log_svd(shape.rows, shape.cols, rt::Layout::kBlockDense3D);
  }
  return f;
}

rt::CostTracker replay_log(const std::vector<OpRecord>& log,
                           const rt::Cluster& cluster,
                           const rt::CostModelParams& params) {
  rt::CostTracker t;
  for (const OpRecord& r : log) {
    switch (r.type) {
      case OpRecord::Type::kContraction:
        rt::charge_contraction(cluster, t, r.cost, r.layout, params);
        break;
      case OpRecord::Type::kSvd:
        if (r.layout == rt::Layout::kLocal) {
          const double flops = linalg::svd_flops(r.rows, r.cols);
          const double rate =
              cluster.machine.node_gflops * 1e9 * cluster.machine.svd_efficiency;
          t.add_flops(flops);
          t.add_time(rt::Category::kSvd, flops / rate);
        } else {
          rt::charge_svd(cluster, t, r.rows, r.cols, params);
        }
        break;
      case OpRecord::Type::kRedistribution:
        rt::charge_redistribution(cluster, t, r.words);
        break;
    }
  }
  return t;
}

std::unique_ptr<ContractionEngine> make_engine(EngineKind kind, rt::Cluster cluster,
                                               rt::CostModelParams params) {
  switch (kind) {
    case EngineKind::kReference:
      return std::make_unique<ReferenceEngine>(cluster, params);
    case EngineKind::kList:
      return std::make_unique<ListEngine>(cluster, params);
    case EngineKind::kSparseDense:
      return std::make_unique<SparseDenseEngine>(cluster, params);
    case EngineKind::kSparseSparse:
      return std::make_unique<SparseSparseEngine>(cluster, params);
  }
  TT_FAIL("unknown engine kind");
}

}  // namespace tt::dmrg

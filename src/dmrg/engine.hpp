// Contraction engines: the paper's three block-sparsity algorithms plus the
// single-node reference baseline (§IV-A).
//
//   Reference     — serial block-wise execution, single node, no network.
//                   Plays the role of the paper's ITensor baseline.
//   List          — each quantum-number block is its own distributed dense
//                   tensor; every compatible block pair is contracted with a
//                   3D dense algorithm (paper Alg. 2). O(Nb) supersteps.
//   SparseDense   — operator tensors (MPS/MPO/environments) fused into single
//                   sparse tensors, Davidson intermediates fused dense;
//                   one 2D contraction per step. O(1) supersteps.
//   SparseSparse  — everything fused sparse, output sparsity precomputed from
//                   the quantum numbers. O(1) supersteps, sparse flop rate.
//
// Every engine produces bit-equivalent block tensors (the numerics are
// format-independent); they differ in the kernels that execute the work, the
// real wall time measured, and the simulated distributed cost charged to the
// tracker (runtime/cost_model.hpp).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/cost_model.hpp"
#include "symm/block_factor.hpp"
#include "symm/block_ops.hpp"

namespace tt::rt {
class Scheduler;  // runtime/scheduler.hpp — the distributed block scheduler
}

namespace tt::dmrg {

/// Which contraction strategy an engine executes (see the taxonomy above and
/// docs/ARCHITECTURE.md). The kind fixes the storage format of operands, the
/// kernels that run locally, and the distributed cost charged per operation —
/// never the numerical result.
enum class EngineKind {
  kReference,     ///< serial single-node baseline (ITensor stand-in, §IV-A)
  kList,          ///< per-block-pair distributed dense contractions (Alg. 2)
  kSparseDense,   ///< operators fused sparse, intermediates fused dense
  kSparseSparse,  ///< all fused sparse, output sparsity precomputed
};

/// Stable display name ("reference", "list", "sparse-dense", "sparse-sparse")
/// as used by the CLI `--engine` flags and the bench tables.
const char* engine_name(EngineKind k);

/// One charged operation, recorded when logging is enabled. An op log can be
/// replayed against any Cluster — the benches execute the (cluster-invariant)
/// numerics once per engine and problem size, then price every node-count /
/// procs-per-node configuration by replay.
struct OpRecord {
  enum class Type { kContraction, kSvd, kRedistribution };
  Type type = Type::kContraction;
  rt::ContractionCost cost;      // kContraction
  rt::Layout layout = rt::Layout::kLocal;
  index_t rows = 0, cols = 0;    // kSvd
  double words = 0.0;            // kRedistribution
};

/// Price an op log on a cluster.
rt::CostTracker replay_log(const std::vector<OpRecord>& log,
                           const rt::Cluster& cluster,
                           const rt::CostModelParams& params = {});

/// Storage role of a contraction operand in the sparse-dense algorithm:
/// operator tensors stay sparse, Davidson intermediates go dense (§IV-A).
/// Callers tag each operand; the result's role is implied (any intermediate
/// operand makes the result an intermediate). Engines other than sparse-dense
/// accept the tags but store both roles the same way.
enum class Role {
  kOperator,      ///< MPS/MPO/environment tensor: long-lived, fused sparse
  kIntermediate,  ///< Davidson work vector: transient, fused dense
};

/// Abstract contraction engine. Owns a cluster description and a cost
/// tracker; all DMRG work flows through contract()/svd().
class ContractionEngine {
 public:
  explicit ContractionEngine(rt::Cluster cluster, rt::CostModelParams params = {})
      : cluster_(cluster), params_(params) {}
  virtual ~ContractionEngine() = default;

  virtual EngineKind kind() const = 0;
  std::string name() const { return engine_name(kind()); }

  /// Contract two block tensors over the given (mode of a, mode of b) pairs.
  /// Uncontracted modes of a then of b, each in order, form the result. The
  /// output role is implied: if either operand is an intermediate the result
  /// is an intermediate. All engines must return bit-identical block tensors
  /// for the same operands — only execution strategy and charged cost differ.
  virtual symm::BlockTensor contract(const symm::BlockTensor& a, Role role_a,
                                     const symm::BlockTensor& b, Role role_b,
                                     const std::vector<std::pair<int, int>>& pairs) = 0;

  /// Truncated SVD across the (row_modes | remaining modes) bipartition,
  /// truncated per `trunc` (symm::TruncParams: absolute/relative cutoff and
  /// bond cap, applied globally across quantum-number groups). Always
  /// executed in the list format (paper §IV-A); fused engines additionally
  /// charge the redistribution of blocks out of / back into the single
  /// tensor.
  virtual symm::BlockSvd svd(const symm::BlockTensor& a,
                             const std::vector<int>& row_modes,
                             const symm::TruncParams& trunc);

  const rt::Cluster& cluster() const { return cluster_; }
  rt::CostTracker& tracker() { return tracker_; }
  const rt::CostTracker& tracker() const { return tracker_; }
  const rt::CostModelParams& params() const { return params_; }

  /// Executor threads for block-wise contraction work flowing through this
  /// engine (the Davidson matvec and environment updates): 0 = the global
  /// TT_THREADS setting, 1 = serial. Results are bitwise identical at any
  /// value — only wall time changes; the simulated distributed cost is
  /// charged from deterministic per-block stats exactly as before.
  void set_num_threads(int n) { num_threads_ = n; }
  int num_threads() const { return num_threads_; }

  /// Attach a distributed block scheduler (non-owning; the caller keeps it
  /// alive for the engine's lifetime, e.g. the `--ranks N` bench drivers).
  /// With a scheduler of more than one rank attached, block-wise contractions
  /// (the list algorithm) execute across its ranks and the tracker is charged
  /// the *measured* DistStats of each exchange — real bytes, real busy time,
  /// real idle tails — instead of the simulated BSP cost model. Results stay
  /// bitwise identical to the local path (the scheduler's rank-parity
  /// invariant). nullptr (the default) restores the simulated charging.
  void set_scheduler(rt::Scheduler* s) { scheduler_ = s; }
  rt::Scheduler* scheduler() const { return scheduler_; }

  /// Enable/disable op logging (off by default).
  void set_logging(bool on) { logging_ = on; }
  const std::vector<OpRecord>& log() const { return log_; }
  void clear_log() { log_.clear(); }

 protected:
  void charge_and_log(const rt::ContractionCost& cost, rt::Layout layout) {
    rt::charge_contraction(cluster_, tracker_, cost, layout, params_);
    if (logging_) {
      OpRecord r;
      r.type = OpRecord::Type::kContraction;
      r.cost = cost;
      r.layout = layout;
      log_.push_back(r);
    }
  }
  // layout kLocal marks a serial single-node SVD; anything else replays as
  // the distributed pdgesvd-style cost.
  void log_svd(index_t rows, index_t cols, rt::Layout layout) {
    if (!logging_) return;
    OpRecord r;
    r.type = OpRecord::Type::kSvd;
    r.rows = rows;
    r.cols = cols;
    r.layout = layout;
    log_.push_back(r);
  }
  void log_redistribution(double words) {
    if (!logging_) return;
    OpRecord r;
    r.type = OpRecord::Type::kRedistribution;
    r.words = words;
    log_.push_back(r);
  }

  /// Options handed to symm::contract by the block-wise engines.
  symm::ContractOptions contract_options() const {
    symm::ContractOptions o;
    o.num_threads = num_threads_;
    return o;
  }

  rt::Cluster cluster_;
  rt::CostModelParams params_;
  rt::CostTracker tracker_;
  rt::Scheduler* scheduler_ = nullptr;
  bool logging_ = false;
  std::vector<OpRecord> log_;
  int num_threads_ = 0;
};

/// Factory for the four engines. `cluster` describes the virtual machine the
/// cost model charges against (use {rt::localhost(), 1, 1} for purely local
/// runs); it does not affect the numerics.
std::unique_ptr<ContractionEngine> make_engine(EngineKind kind, rt::Cluster cluster,
                                               rt::CostModelParams params = {});

}  // namespace tt::dmrg

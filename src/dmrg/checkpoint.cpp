#include "dmrg/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "runtime/wire.hpp"
#include "support/error.hpp"

namespace tt::dmrg {

namespace fs = std::filesystem;

namespace {

constexpr int kSnapshotVersion = 1;
constexpr int kManifestVersion = 1;

std::uint64_t checksum_of(const std::string& blob) {
  // tt-lint: allow(raw-cast-audit) read-only byte view of an already-serialized blob for checksumming; no object is reinterpreted
  return rt::wire_checksum(reinterpret_cast<const std::byte*>(blob.data()),
                           blob.size());
}

// "<magic> <version>" with distinct truncation / magic / version errors,
// mirroring the mps::io header discipline.
void read_header(std::istream& is, const char* magic, int version) {
  std::string m;
  is >> m;
  TT_CHECK(is, "truncated stream: missing " << magic << " header");
  TT_CHECK(m == magic, "bad magic '" << m << "': not a " << magic << " stream");
  int v = 0;
  is >> v;
  TT_CHECK(is, "truncated stream: missing " << magic << " version");
  TT_CHECK(v == version, "unsupported " << magic << " version " << v
                                        << " (reader understands version "
                                        << version << ")");
}

// Replace-by-rename: write the full contents to a temp name in the same
// directory (same filesystem, so rename() is atomic), then move into place.
void write_atomic(const fs::path& target, const std::string& blob) {
  const fs::path tmp = target.parent_path() / (target.filename().string() + ".tmp");
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    TT_CHECK(os.good(), "cannot open '" << tmp.string() << "' for writing");
    os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    os.flush();
    TT_CHECK(os.good(), "short write to '" << tmp.string() << "'");
  }
  std::error_code ec;
  fs::rename(tmp, target, ec);
  TT_CHECK(!ec, "cannot rename '" << tmp.string() << "' to '" << target.string()
                                  << "': " << ec.message());
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {
  TT_CHECK(!dir_.empty(), "checkpoint directory path is empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  TT_CHECK(!ec, "cannot create checkpoint directory '" << dir_
                                                       << "': " << ec.message());
  // Continue an existing sequence so a resumed run never overwrites the
  // snapshot it was itself restored from.
  if (fs::exists(manifest_path())) {
    std::ifstream is(manifest_path());
    TT_CHECK(is.good(), "cannot read manifest '" << manifest_path() << "'");
    read_header(is, "TTCKPT-MANIFEST", kManifestVersion);
    long seq = 0;
    is >> seq;
    TT_CHECK(is && seq > 0, "corrupt manifest: bad sequence number");
    sequence_ = seq;
  }
}

std::string CheckpointManager::manifest_path() const {
  return (fs::path(dir_) / "MANIFEST").string();
}

std::string CheckpointManager::snapshot_name(long seq) const {
  return "ckpt_" + std::to_string(seq) + ".tt";
}

bool CheckpointManager::has_checkpoint() const {
  return fs::exists(manifest_path());
}

void CheckpointManager::save(const mps::Mps& psi, const SweepPosition& pos,
                             const std::vector<SweepRecord>& history) {
  std::ostringstream body;
  body << "TTCKPT " << kSnapshotVersion << "\n";
  body << pos.schedule_pos << " " << pos.sweep_count << " " << pos.phase << " "
       << pos.next_bond << " " << pos.center << "\n";
  mps::write_real_hex(body, pos.energy);
  body << " ";
  mps::write_real_hex(body, pos.trunc_err);
  body << " ";
  mps::write_real_hex(body, pos.max_trunc_partial);
  body << "\n" << history.size() << "\n";
  for (const SweepRecord& rec : history) {
    body << rec.sweep << " ";
    mps::write_real_hex(body, rec.energy);
    body << " " << rec.max_bond_dim << " ";
    mps::write_real_hex(body, rec.truncation_error);
    body << "\n";
  }
  mps::write_mps(body, psi);

  const std::string blob = body.str();
  const long seq = sequence_ + 1;
  write_atomic(fs::path(dir_) / snapshot_name(seq), blob);

  std::ostringstream manifest;
  manifest << "TTCKPT-MANIFEST " << kManifestVersion << "\n"
           << seq << " " << snapshot_name(seq) << " " << std::hex
           << checksum_of(blob) << std::dec << " " << blob.size() << "\n";
  write_atomic(manifest_path(), manifest.str());
  sequence_ = seq;

  // Keep this snapshot and its predecessor; prune anything older.
  std::error_code ec;
  for (long old = seq - 2; old > 0; --old) {
    const fs::path victim = fs::path(dir_) / snapshot_name(old);
    if (!fs::exists(victim, ec)) break;
    fs::remove(victim, ec);
  }
}

CheckpointData CheckpointManager::load(mps::SiteSetPtr sites) const {
  TT_CHECK(has_checkpoint(),
           "no checkpoint manifest in '" << dir_ << "' to resume from");
  std::ifstream mis(manifest_path());
  TT_CHECK(mis.good(), "cannot read manifest '" << manifest_path() << "'");
  read_header(mis, "TTCKPT-MANIFEST", kManifestVersion);
  long seq = 0;
  std::string file;
  std::uint64_t sum = 0;
  std::uint64_t nbytes = 0;
  mis >> seq >> file >> std::hex >> sum >> std::dec >> nbytes;
  TT_CHECK(mis && seq > 0 && !file.empty(), "corrupt manifest: bad snapshot entry");

  const fs::path path = fs::path(dir_) / file;
  std::ifstream is(path, std::ios::binary);
  TT_CHECK(is.good(), "manifest names missing snapshot '" << path.string() << "'");
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string blob = buf.str();
  TT_CHECK(blob.size() == nbytes, "checkpoint '" << path.string()
                                                 << "' truncated: " << blob.size()
                                                 << " bytes, manifest says "
                                                 << nbytes);
  TT_CHECK(checksum_of(blob) == sum,
           "checkpoint '" << path.string() << "' corrupt: checksum mismatch");

  std::istringstream body(blob);
  read_header(body, "TTCKPT", kSnapshotVersion);
  SweepPosition pos;
  body >> pos.schedule_pos >> pos.sweep_count >> pos.phase >> pos.next_bond >>
      pos.center;
  TT_CHECK(body && pos.schedule_pos >= 0 && pos.sweep_count >= 0 &&
               (pos.phase == 0 || pos.phase == 1) && pos.next_bond >= 0,
           "corrupt checkpoint: bad sweep position");
  pos.energy = mps::read_real_hex(body);
  pos.trunc_err = mps::read_real_hex(body);
  pos.max_trunc_partial = mps::read_real_hex(body);

  long nrecords = 0;
  body >> nrecords;
  TT_CHECK(body && nrecords >= 0, "corrupt checkpoint: bad history length");
  std::vector<SweepRecord> history;
  history.reserve(static_cast<std::size_t>(nrecords));
  for (long i = 0; i < nrecords; ++i) {
    SweepRecord rec;
    body >> rec.sweep;
    TT_CHECK(body, "corrupt checkpoint: truncated history");
    rec.energy = mps::read_real_hex(body);
    body >> rec.max_bond_dim;
    TT_CHECK(body, "corrupt checkpoint: truncated history");
    rec.truncation_error = mps::read_real_hex(body);
    history.push_back(rec);
  }

  mps::Mps psi = mps::read_mps(body, std::move(sites));
  return CheckpointData{std::move(psi), pos, std::move(history)};
}

}  // namespace tt::dmrg

#include "dmrg/engines.hpp"
#include "runtime/scheduler.hpp"

namespace tt::dmrg {

symm::BlockTensor ListEngine::contract(const symm::BlockTensor& a, Role,
                                       const symm::BlockTensor& b, Role,
                                       const std::vector<std::pair<int, int>>& pairs) {
  // Distributed path: with a multi-rank scheduler attached, the bins execute
  // across its ranks and the tracker is charged the *measured* exchange
  // (bytes, busy time, idle tails) instead of the simulated BSP model.
  // Results and ContractStats are bitwise identical either way — the
  // scheduler's rank-parity invariant.
  if (scheduler_ != nullptr && scheduler_->num_ranks() > 1) {
    symm::ContractStats stats;
    symm::BlockTensor c = scheduler_->contract(a, b, pairs, &stats);
    scheduler_->last().charge(tracker_);
    // The op log stays cluster-invariant numerics (replayable on any virtual
    // machine); only the tracker switches to the measured record.
    if (logging_) {
      for (const auto& op : stats.block_ops) {
        OpRecord r;
        r.type = OpRecord::Type::kContraction;
        r.cost = {op.flops, op.words_a, op.words_b, op.words_c};
        r.layout = rt::Layout::kBlockDense3D;
        log_.push_back(r);
      }
    }
    return c;
  }

  symm::ContractStats stats;
  symm::BlockTensor c = symm::contract(a, b, pairs, &stats, contract_options());
  // One distributed dense contraction per block pair (paper Alg. 2): each is
  // an independent 3D-algorithm call with its own synchronization and
  // per-block mapping overhead — O(Nb) supersteps per Davidson iteration.
  for (const auto& op : stats.block_ops) {
    rt::ContractionCost cost;
    cost.flops = op.flops;
    cost.words_a = op.words_a;
    cost.words_b = op.words_b;
    cost.words_c = op.words_c;
    charge_and_log(cost, rt::Layout::kBlockDense3D);
  }
  return c;
}

}  // namespace tt::dmrg

#include "dmrg/engines.hpp"

namespace tt::dmrg {

symm::BlockTensor ListEngine::contract(const symm::BlockTensor& a, Role,
                                       const symm::BlockTensor& b, Role,
                                       const std::vector<std::pair<int, int>>& pairs) {
  symm::ContractStats stats;
  symm::BlockTensor c = symm::contract(a, b, pairs, &stats, contract_options());
  // One distributed dense contraction per block pair (paper Alg. 2): each is
  // an independent 3D-algorithm call with its own synchronization and
  // per-block mapping overhead — O(Nb) supersteps per Davidson iteration.
  for (const auto& op : stats.block_ops) {
    rt::ContractionCost cost;
    cost.flops = op.flops;
    cost.words_a = op.words_a;
    cost.words_b = op.words_b;
    cost.words_c = op.words_c;
    charge_and_log(cost, rt::Layout::kBlockDense3D);
  }
  return c;
}

}  // namespace tt::dmrg

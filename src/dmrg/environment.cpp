#include "dmrg/environment.hpp"

namespace tt::dmrg {

using symm::BlockTensor;
using symm::Dir;
using symm::Index;
using symm::QN;

BlockTensor left_boundary(int qn_rank) {
  const QN zero = QN::zero(qn_rank);
  BlockTensor e({Index::single(zero, 1, Dir::In), Index::single(zero, 1, Dir::Out),
                 Index::single(zero, 1, Dir::Out)},
                zero);
  e.block({0, 0, 0})[0] = 1.0;
  return e;
}

BlockTensor right_boundary(const QN& total) {
  const QN zero = QN::zero(total.rank());
  BlockTensor e({Index::single(total, 1, Dir::Out), Index::single(zero, 1, Dir::In),
                 Index::single(total, 1, Dir::In)},
                zero);
  e.block({0, 0, 0})[0] = 1.0;
  return e;
}

BlockTensor extend_left(ContractionEngine& eng, const BlockTensor& left,
                        const BlockTensor& psi_j, const BlockTensor& w_j) {
  // L(bra,mpo,ket) · ψ†(l,s,r) over bra  → (mpo, ket, s_bra, r_bra)
  BlockTensor t1 =
      eng.contract(left, Role::kOperator, psi_j.dagger(), Role::kOperator, {{0, 0}});
  // · W(k,s,s',k') over (mpo,k),(s_bra,s) → (ket, r_bra, s', k')
  BlockTensor t2 =
      eng.contract(t1, Role::kOperator, w_j, Role::kOperator, {{0, 0}, {2, 1}});
  // · ψ(l,s,r) over (ket,l),(s',s)        → (r_bra, k', r_ket)
  return eng.contract(t2, Role::kOperator, psi_j, Role::kOperator, {{0, 0}, {2, 1}});
}

BlockTensor extend_right(ContractionEngine& eng, const BlockTensor& right,
                         const BlockTensor& psi_j, const BlockTensor& w_j) {
  // ψ†(l,s,r) · R(bra,mpo,ket) over (r,bra) → (l_bra, s_bra, mpo, ket)
  BlockTensor t1 =
      eng.contract(psi_j.dagger(), Role::kOperator, right, Role::kOperator, {{2, 0}});
  // · W(k,s,s',k') over (mpo,k'),(s_bra,s)  → (l_bra, ket, k, s')
  BlockTensor t2 =
      eng.contract(t1, Role::kOperator, w_j, Role::kOperator, {{2, 3}, {1, 1}});
  // · ψ(l,s,r) over (ket,r),(s',s)          → (l_bra, k, l_ket)
  return eng.contract(t2, Role::kOperator, psi_j, Role::kOperator, {{1, 2}, {3, 1}});
}

BlockTensor apply_two_site(ContractionEngine& eng, const BlockTensor& left,
                           const BlockTensor& w1, const BlockTensor& w2,
                           const BlockTensor& right, const BlockTensor& x) {
  // L(bra,mpo,ket) · x(l,s1,s2,r) over (ket,l) → (bra, mpo, s1, s2, r)
  BlockTensor t1 =
      eng.contract(left, Role::kOperator, x, Role::kIntermediate, {{2, 0}});
  // · W1(k,s,s',k') over (mpo,k),(s1,s')       → (bra, s2, r, s1', k')
  BlockTensor t2 =
      eng.contract(t1, Role::kIntermediate, w1, Role::kOperator, {{1, 0}, {2, 2}});
  // · W2 over (k',k),(s2,s')                   → (bra, r, s1', s2', k'')
  BlockTensor t3 =
      eng.contract(t2, Role::kIntermediate, w2, Role::kOperator, {{4, 0}, {1, 2}});
  // · R(bra,mpo,ket) over (r,ket),(k'',mpo)    → (bra, s1', s2', r_bra)
  return eng.contract(t3, Role::kIntermediate, right, Role::kOperator,
                      {{1, 2}, {4, 1}});
}

}  // namespace tt::dmrg

#include "ed/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace tt::ed {

namespace {

real_t vdot(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  real_t s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void vaxpy(std::vector<real_t>& y, real_t alpha, const std::vector<real_t>& x) {
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

real_t vnorm(const std::vector<real_t>& a) { return std::sqrt(vdot(a, a)); }

}  // namespace

LanczosResult lanczos_ground_state(index_t dim, const MatVec& matvec, int max_iter,
                                   real_t tol, std::uint64_t seed) {
  TT_CHECK(dim > 0, "Lanczos needs a positive dimension");
  LanczosResult out;
  if (dim == 1) {
    std::vector<real_t> x{1.0}, y{0.0};
    matvec(x, y);
    out.eigenvalue = y[0];
    out.eigenvector = {1.0};
    out.converged = true;
    out.iterations = 1;
    return out;
  }

  Rng rng(seed);
  const int iters = static_cast<int>(std::min<index_t>(max_iter, dim));
  std::vector<std::vector<real_t>> v;  // Lanczos basis (full storage)
  std::vector<real_t> alpha, beta;
  v.reserve(static_cast<std::size_t>(iters) + 1);
  alpha.reserve(static_cast<std::size_t>(iters));
  beta.reserve(static_cast<std::size_t>(iters));

  std::vector<real_t> q(static_cast<std::size_t>(dim));
  for (auto& e : q) e = rng.normal();
  {
    const real_t n = vnorm(q);
    for (auto& e : q) e /= n;
  }
  v.push_back(q);

  std::vector<real_t> w(static_cast<std::size_t>(dim));
  real_t prev_eval = 0.0;

  for (int it = 0; it < iters; ++it) {
    matvec(v.back(), w);
    const real_t a = vdot(w, v.back());
    alpha.push_back(a);

    // w := w − a·v_it − b·v_{it-1}, then full reorthogonalization (twice).
    vaxpy(w, -a, v.back());
    if (!beta.empty()) vaxpy(w, -beta.back(), v[v.size() - 2]);
    for (int pass = 0; pass < 2; ++pass)
      for (const auto& basis_vec : v) vaxpy(w, -vdot(w, basis_vec), basis_vec);

    // Rayleigh–Ritz on the tridiagonal matrix.
    const int k = static_cast<int>(alpha.size());
    linalg::Matrix t(k, k);
    for (int i = 0; i < k; ++i) {
      t(i, i) = alpha[static_cast<std::size_t>(i)];
      if (i + 1 < k) {
        t(i, i + 1) = beta[static_cast<std::size_t>(i)];
        t(i + 1, i) = beta[static_cast<std::size_t>(i)];
      }
    }
    auto eig = linalg::eigh(t);
    const real_t eval = eig.values.front();
    out.iterations = it + 1;

    const real_t bnext = vnorm(w);
    const bool stagnated = it > 0 && std::abs(eval - prev_eval) < tol * (1.0 + std::abs(eval));
    if (stagnated || bnext < 1e-14 || it == iters - 1) {
      // Assemble the Ritz vector.
      out.eigenvalue = eval;
      out.eigenvector.assign(static_cast<std::size_t>(dim), 0.0);
      for (int i = 0; i < k; ++i)
        vaxpy(out.eigenvector, eig.vectors(i, 0), v[static_cast<std::size_t>(i)]);
      const real_t n = vnorm(out.eigenvector);
      if (n > 0) for (auto& e : out.eigenvector) e /= n;
      out.converged = stagnated || bnext < 1e-14;
      return out;
    }
    prev_eval = eval;

    beta.push_back(bnext);
    for (auto& e : w) e /= bnext;
    v.push_back(w);
  }
  TT_FAIL("Lanczos failed to converge");
}

}  // namespace tt::ed

// Lanczos ground-state solver with full reorthogonalization.
//
// Oracle-grade implementation for the ED module: robustness over speed. The
// matvec is supplied as a callback so the many-body Hamiltonian never needs
// to be materialized.
#pragma once

#include <functional>
#include <vector>

#include "support/types.hpp"

namespace tt::ed {

/// y := A·x for a symmetric operator of dimension `dim`.
using MatVec = std::function<void(const std::vector<real_t>& x, std::vector<real_t>& y)>;

struct LanczosResult {
  real_t eigenvalue = 0.0;
  std::vector<real_t> eigenvector;
  int iterations = 0;
  bool converged = false;
};

/// Smallest eigenpair of a symmetric operator. Throws tt::Error on dim <= 0.
LanczosResult lanczos_ground_state(index_t dim, const MatVec& matvec,
                                   int max_iter = 300, real_t tol = 1e-12,
                                   std::uint64_t seed = 12345);

}  // namespace tt::ed

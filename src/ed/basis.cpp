#include "ed/basis.hpp"

#include <bit>

#include "support/error.hpp"

namespace tt::ed {

std::vector<std::uint64_t> masks_with_popcount(int n, int k) {
  TT_CHECK(n >= 0 && n < 63, "mask width " << n << " out of range");
  TT_CHECK(k >= 0 && k <= n, "popcount " << k << " out of range for width " << n);
  std::vector<std::uint64_t> out;
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m)
    if (std::popcount(m) == k) out.push_back(m);
  return out;
}

SpinBasis::SpinBasis(int nsites, int twice_sz_total) : nsites_(nsites) {
  TT_CHECK(nsites >= 1 && nsites <= 24, "spin ED supports 1..24 sites");
  // 2·Sz = (#up − #dn) = 2·#up − n.
  const int doubled = twice_sz_total + nsites;
  TT_CHECK(doubled % 2 == 0 && doubled >= 0 && doubled <= 2 * nsites,
           "unreachable Sz sector " << twice_sz_total << " for " << nsites << " sites");
  states_ = masks_with_popcount(nsites, doubled / 2);
  for (index_t i = 0; i < dim(); ++i) lookup_[states_[static_cast<std::size_t>(i)]] = i;
}

index_t SpinBasis::index_of(std::uint64_t s) const {
  auto it = lookup_.find(s);
  TT_CHECK(it != lookup_.end(), "state outside the Sz sector");
  return it->second;
}

ElectronBasis::ElectronBasis(int nsites, int n_up, int n_dn) : nsites_(nsites) {
  TT_CHECK(nsites >= 1 && nsites <= 16, "electron ED supports 1..16 sites");
  const auto ups = masks_with_popcount(nsites, n_up);
  const auto dns = masks_with_popcount(nsites, n_dn);
  states_.reserve(ups.size() * dns.size());
  for (std::uint64_t u : ups)
    for (std::uint64_t d : dns) states_.emplace_back(u, d);
  for (index_t i = 0; i < dim(); ++i) {
    const auto& [u, d] = states_[static_cast<std::size_t>(i)];
    lookup_[(u << 32) | d] = i;
  }
}

index_t ElectronBasis::index_of(std::uint64_t up_mask, std::uint64_t dn_mask) const {
  auto it = lookup_.find((up_mask << 32) | dn_mask);
  TT_CHECK(it != lookup_.end(), "state outside the (N↑,N↓) sector");
  return it->second;
}

}  // namespace tt::ed

// Exact-diagonalization oracle for the two benchmark models.
//
// Builds the many-body Hamiltonian action directly in the occupation basis
// (explicit fermionic sign counting — no shared code with the MPO pipeline)
// and solves for the ground state with Lanczos. Used by integration tests to
// certify DMRG energies at small sizes.
#pragma once

#include "ed/basis.hpp"
#include "ed/lanczos.hpp"
#include "models/lattice.hpp"

namespace tt::ed {

/// Ground energy of the (J1,J2) Heisenberg model on `lat` in the total-2Sz
/// sector.
real_t heisenberg_ground_energy(const models::Lattice& lat, real_t j1, real_t j2,
                                int twice_sz_total);

/// Ground energy of the Hubbard model on `lat` at fixed (N↑, N↓).
real_t hubbard_ground_energy(const models::Lattice& lat, real_t t, real_t u,
                             int n_up, int n_dn);

/// Apply the Heisenberg Hamiltonian to a vector (exposed for tests).
void apply_heisenberg(const models::Lattice& lat, real_t j1, real_t j2,
                      const SpinBasis& basis, const std::vector<real_t>& x,
                      std::vector<real_t>& y);

/// Apply the Hubbard Hamiltonian to a vector (exposed for tests).
void apply_hubbard(const models::Lattice& lat, real_t t, real_t u,
                   const ElectronBasis& basis, const std::vector<real_t>& x,
                   std::vector<real_t>& y);

}  // namespace tt::ed

// Charge-sector-restricted many-body bases for the exact-diagonalization
// oracle. Deliberately independent of the MPS/MPO machinery: states are plain
// bit masks and fermionic signs are computed by explicit mode counting, so a
// disagreement with DMRG localizes bugs to one side.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/types.hpp"

namespace tt::ed {

/// Spin-1/2 basis at fixed total 2·Sz: bit i set = site i up.
class SpinBasis {
 public:
  SpinBasis(int nsites, int twice_sz_total);

  index_t dim() const { return static_cast<index_t>(states_.size()); }
  std::uint64_t state(index_t i) const { return states_[static_cast<std::size_t>(i)]; }
  index_t index_of(std::uint64_t s) const;
  int nsites() const { return nsites_; }

 private:
  int nsites_;
  std::vector<std::uint64_t> states_;
  // tt-lint: allow(ordered-iteration) lookup-only: filled once in the ctor, queried via find(); enumeration always walks states_, which is ascending
  std::unordered_map<std::uint64_t, index_t> lookup_;
};

/// Electron basis at fixed (N↑, N↓): separate up/dn occupation masks.
class ElectronBasis {
 public:
  ElectronBasis(int nsites, int n_up, int n_dn);

  index_t dim() const { return static_cast<index_t>(states_.size()); }
  std::uint64_t up(index_t i) const { return states_[static_cast<std::size_t>(i)].first; }
  std::uint64_t dn(index_t i) const { return states_[static_cast<std::size_t>(i)].second; }
  index_t index_of(std::uint64_t up_mask, std::uint64_t dn_mask) const;
  int nsites() const { return nsites_; }

 private:
  int nsites_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> states_;
  // tt-lint: allow(ordered-iteration) lookup-only: filled once in the ctor, queried via find(); key = up<<32 | dn
  std::unordered_map<std::uint64_t, index_t> lookup_;
};

/// All bit masks over `n` bits with exactly `k` set, ascending.
std::vector<std::uint64_t> masks_with_popcount(int n, int k);

}  // namespace tt::ed

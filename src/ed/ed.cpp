#include "ed/ed.hpp"

#include <bit>
#include <cmath>

#include "support/error.hpp"

namespace tt::ed {

namespace {

// Number of occupied fermionic modes strictly before mode (site, spin) in the
// site-major ordering (1↑, 1↓, 2↑, 2↓, …). spin: 0 = up, 1 = dn.
int modes_before(std::uint64_t up, std::uint64_t dn, int site, int spin) {
  const std::uint64_t below = (std::uint64_t{1} << site) - 1;
  int count = std::popcount(up & below) + std::popcount(dn & below);
  if (spin == 1 && (up >> site) & 1) ++count;  // up mode of the same site
  return count;
}

}  // namespace

void apply_heisenberg(const models::Lattice& lat, real_t j1, real_t j2,
                      const SpinBasis& basis, const std::vector<real_t>& x,
                      std::vector<real_t>& y) {
  y.assign(x.size(), 0.0);
  for (index_t n = 0; n < basis.dim(); ++n) {
    const std::uint64_t s = basis.state(n);
    const real_t xn = x[static_cast<std::size_t>(n)];
    if (xn == 0.0) continue;
    for (const models::Bond& b : lat.bonds) {
      const real_t j = (b.type == 0) ? j1 : j2;
      if (j == 0.0) continue;
      const int bi = (s >> b.s1) & 1;
      const int bj = (s >> b.s2) & 1;
      const real_t zi = bi ? 0.5 : -0.5;
      const real_t zj = bj ? 0.5 : -0.5;
      y[static_cast<std::size_t>(n)] += j * zi * zj * xn;  // Sz·Sz
      if (bi != bj) {
        // (S+S- + S-S+)/2 flips the antiparallel pair.
        const std::uint64_t flipped =
            s ^ (std::uint64_t{1} << b.s1) ^ (std::uint64_t{1} << b.s2);
        y[static_cast<std::size_t>(basis.index_of(flipped))] += 0.5 * j * xn;
      }
    }
  }
}

void apply_hubbard(const models::Lattice& lat, real_t t, real_t u,
                   const ElectronBasis& basis, const std::vector<real_t>& x,
                   std::vector<real_t>& y) {
  y.assign(x.size(), 0.0);
  for (index_t n = 0; n < basis.dim(); ++n) {
    const real_t xn = x[static_cast<std::size_t>(n)];
    if (xn == 0.0) continue;
    const std::uint64_t up = basis.up(n);
    const std::uint64_t dn = basis.dn(n);

    y[static_cast<std::size_t>(n)] +=
        u * static_cast<real_t>(std::popcount(up & dn)) * xn;

    if (t == 0.0) continue;
    // Hop −t·c†_i c_j for both directions and both spins.
    auto hop = [&](int i, int j, int spin) {
      const std::uint64_t mask = (spin == 0) ? up : dn;
      if (!((mask >> j) & 1) || ((mask >> i) & 1)) return;
      // c_j first (sign from modes before j), then c†_i on the intermediate.
      int sgn = modes_before(up, dn, j, spin);
      std::uint64_t up2 = up, dn2 = dn;
      (spin == 0 ? up2 : dn2) ^= (std::uint64_t{1} << j);
      sgn += modes_before(up2, dn2, i, spin);
      (spin == 0 ? up2 : dn2) ^= (std::uint64_t{1} << i);
      const real_t amp = (sgn % 2 == 0) ? -t : t;
      y[static_cast<std::size_t>(basis.index_of(up2, dn2))] += amp * xn;
    };
    for (const models::Bond& b : lat.bonds) {
      for (int spin : {0, 1}) {
        hop(b.s1, b.s2, spin);
        hop(b.s2, b.s1, spin);
      }
    }
  }
}

real_t heisenberg_ground_energy(const models::Lattice& lat, real_t j1, real_t j2,
                                int twice_sz_total) {
  SpinBasis basis(lat.num_sites, twice_sz_total);
  auto mv = [&](const std::vector<real_t>& x, std::vector<real_t>& y) {
    apply_heisenberg(lat, j1, j2, basis, x, y);
  };
  return lanczos_ground_state(basis.dim(), mv).eigenvalue;
}

real_t hubbard_ground_energy(const models::Lattice& lat, real_t t, real_t u,
                             int n_up, int n_dn) {
  ElectronBasis basis(lat.num_sites, n_up, n_dn);
  auto mv = [&](const std::vector<real_t>& x, std::vector<real_t>& y) {
    apply_hubbard(lat, t, u, basis, x, y);
  };
  return lanczos_ground_state(basis.dim(), mv).eigenvalue;
}

}  // namespace tt::ed

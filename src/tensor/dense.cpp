#include "tensor/dense.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/thread_pool.hpp"

namespace tt::tensor {

using support::openmp_allowed;

DenseTensor::DenseTensor(std::vector<index_t> shape, real_t fill)
    : shape_(std::move(shape)) {
  index_t n = 1;
  for (index_t d : shape_) {
    TT_CHECK(d >= 0, "negative tensor dimension " << d);
    n *= d;
  }
  data_.assign(static_cast<std::size_t>(n), fill);
}

DenseTensor DenseTensor::random(std::vector<index_t> shape, Rng& rng) {
  DenseTensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal();
  return t;
}

DenseTensor DenseTensor::scalar(real_t v) {
  DenseTensor t{std::vector<index_t>{}};
  t.data_.assign(1, v);
  return t;
}

index_t DenseTensor::size() const { return static_cast<index_t>(data_.size()); }

std::vector<index_t> DenseTensor::strides() const {
  std::vector<index_t> s(shape_.size(), 1);
  for (int i = static_cast<int>(shape_.size()) - 2; i >= 0; --i)
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * shape_[static_cast<std::size_t>(i + 1)];
  return s;
}

std::size_t DenseTensor::flat_index(std::span<const index_t> idx) const {
  TT_ASSERT(idx.size() == shape_.size(), "index order mismatch: " << idx.size()
                                                                  << " vs " << shape_.size());
  std::size_t flat = 0;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    TT_ASSERT(idx[i] >= 0 && idx[i] < shape_[i],
              "index " << idx[i] << " out of bounds for mode " << i << " (dim "
                       << shape_[i] << ")");
    flat = flat * static_cast<std::size_t>(shape_[i]) + static_cast<std::size_t>(idx[i]);
  }
  return flat;
}

DenseTensor DenseTensor::reshaped(std::vector<index_t> new_shape) const {
  index_t n = 1;
  for (index_t d : new_shape) n *= d;
  TT_CHECK(n == size(), "reshape size mismatch: " << n << " vs " << size());
  DenseTensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

DenseTensor DenseTensor::permuted(std::span<const int> perm) const {
  TT_CHECK(static_cast<int>(perm.size()) == order(),
           "permutation order mismatch: " << perm.size() << " vs " << order());
  for (int p : perm)
    TT_CHECK(p >= 0 && p < order(), "permutation entry " << p << " out of range");
  std::vector<index_t> out_shape(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i)
    out_shape[i] = shape_[static_cast<std::size_t>(perm[i])];
  DenseTensor out(std::move(out_shape));
  permute_into(*this, perm, out);
  return out;
}

void DenseTensor::fill(real_t v) { std::fill(data_.begin(), data_.end(), v); }

void DenseTensor::scale(real_t s) {
  for (auto& v : data_) v *= s;
}

void DenseTensor::axpy(real_t alpha, const DenseTensor& other) {
  TT_CHECK(shape_ == other.shape_, "axpy shape mismatch");
  const std::size_t n = data_.size();
#pragma omp parallel for schedule(static) if (n > (std::size_t{1} << 16) && openmp_allowed())
  for (std::size_t i = 0; i < n; ++i) data_[i] += alpha * other.data_[i];
}

real_t DenseTensor::norm2() const {
  real_t s = 0.0;
  const std::size_t n = data_.size();
#pragma omp parallel for schedule(static) reduction(+ : s) \
    if (n > (std::size_t{1} << 16) && openmp_allowed())
  for (std::size_t i = 0; i < n; ++i) s += data_[i] * data_[i];
  return std::sqrt(s);
}

real_t DenseTensor::max_abs() const {
  real_t m = 0.0;
  for (real_t v : data_) m = std::max(m, std::abs(v));
  return m;
}

real_t dot(const DenseTensor& a, const DenseTensor& b) {
  TT_CHECK(a.shape() == b.shape(), "dot shape mismatch");
  real_t s = 0.0;
  const index_t n = a.size();
#pragma omp parallel for schedule(static) reduction(+ : s) \
    if (n > (index_t{1} << 16) && openmp_allowed())
  for (index_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

real_t max_abs_diff(const DenseTensor& a, const DenseTensor& b) {
  TT_CHECK(a.shape() == b.shape(), "max_abs_diff shape mismatch");
  real_t m = 0.0;
  for (index_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

void permute_into(const DenseTensor& in, std::span<const int> perm,
                  DenseTensor& out) {
  const int r = in.order();
  TT_CHECK(static_cast<int>(perm.size()) == r, "perm order mismatch");
  {
    std::vector<bool> seen(static_cast<std::size_t>(r), false);
    for (int p : perm) {
      TT_CHECK(p >= 0 && p < r && !seen[static_cast<std::size_t>(p)],
               "invalid permutation entry " << p);
      seen[static_cast<std::size_t>(p)] = true;
    }
  }
  TT_CHECK(out.size() == in.size(), "permute output size mismatch");

  if (r == 0) {
    out[0] = in[0];
    return;
  }

  // Identity permutation: straight copy.
  bool identity = true;
  for (int i = 0; i < r; ++i)
    if (perm[static_cast<std::size_t>(i)] != i) identity = false;
  if (identity) {
    std::copy(in.data(), in.data() + in.size(), out.data());
    return;
  }

  // in-stride of each *output* mode.
  const std::vector<index_t> in_strides = in.strides();
  std::vector<index_t> src_stride(static_cast<std::size_t>(r));
  std::vector<index_t> out_shape(static_cast<std::size_t>(r));
  for (int i = 0; i < r; ++i) {
    src_stride[static_cast<std::size_t>(i)] =
        in_strides[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
    out_shape[static_cast<std::size_t>(i)] = in.dim(perm[static_cast<std::size_t>(i)]);
  }

  const index_t d0 = out_shape[0];
  const index_t inner = in.size() / std::max<index_t>(d0, 1);
  const index_t s0 = src_stride[0];
  const real_t* src = in.data();
  real_t* dst = out.data();

  // Walk output in row-major order; per slice of the leading output mode an
  // odometer tracks the source offset of the remaining modes. The innermost
  // output mode advances by a fixed source stride, which vectorizes when that
  // stride is 1.
  const index_t last_stride = src_stride[static_cast<std::size_t>(r - 1)];
  const index_t last_dim = out_shape[static_cast<std::size_t>(r - 1)];

#pragma omp parallel for schedule(static) if (in.size() > (index_t{1} << 16) && openmp_allowed())
  for (index_t i0 = 0; i0 < d0; ++i0) {
    std::vector<index_t> odo(static_cast<std::size_t>(r), 0);
    odo[0] = i0;
    index_t src_off = i0 * s0;
    real_t* d = dst + i0 * inner;
    index_t written = 0;
    while (written < inner) {
      const real_t* s = src + src_off;
      if (last_stride == 1) {
        std::copy(s, s + last_dim, d + written);
      } else {
        for (index_t j = 0; j < last_dim; ++j) d[written + j] = s[j * last_stride];
      }
      written += last_dim;
      // Advance the odometer over modes r-2 .. 1.
      int m = r - 2;
      while (m >= 1) {
        const auto mi = static_cast<std::size_t>(m);
        src_off += src_stride[mi];
        if (++odo[mi] < out_shape[mi]) break;
        src_off -= out_shape[mi] * src_stride[mi];
        odo[mi] = 0;
        --m;
      }
      if (m < 1) break;  // finished this i0 slice
    }
  }
}

}  // namespace tt::tensor

#include "tensor/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace tt::tensor {

SparseTensor::SparseTensor(std::vector<index_t> shape) : shape_(std::move(shape)) {
  for (index_t d : shape_) TT_CHECK(d >= 0, "negative sparse tensor dimension " << d);
}

SparseTensor SparseTensor::from_dense(const DenseTensor& d, real_t tol) {
  SparseTensor s(d.shape());
  for (index_t i = 0; i < d.size(); ++i)
    if (std::abs(d[i]) > tol) s.add(i, d[i]);
  s.finalize();
  return s;
}

DenseTensor SparseTensor::to_dense() const {
  TT_CHECK(finalized_, "to_dense requires a finalized sparse tensor");
  DenseTensor d(shape_);
  for (std::size_t i = 0; i < idx_.size(); ++i) d[idx_[i]] = val_[i];
  return d;
}

void SparseTensor::add(index_t flat, real_t v) {
  TT_ASSERT(flat >= 0 && flat < size(), "sparse index " << flat << " out of range");
  idx_.push_back(flat);
  val_.push_back(v);
  finalized_ = false;
}

void SparseTensor::finalize() {
  if (finalized_) return;
  std::vector<std::size_t> order(idx_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // stable_sort, not sort: duplicate flats are summed below in sorted-run
  // order, so equal keys must keep their insertion order or the FP
  // accumulation order (and hence the bitwise result) would depend on
  // introsort tie-breaking.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return idx_[a] < idx_[b]; });

  std::vector<index_t> new_idx;
  std::vector<real_t> new_val;
  new_idx.reserve(idx_.size());
  new_val.reserve(val_.size());
  for (std::size_t o : order) {
    if (!new_idx.empty() && new_idx.back() == idx_[o]) {
      new_val.back() += val_[o];
    } else {
      new_idx.push_back(idx_[o]);
      new_val.push_back(val_[o]);
    }
  }
  // Drop entries that cancelled to exactly zero.
  std::size_t w = 0;
  for (std::size_t r = 0; r < new_idx.size(); ++r) {
    if (new_val[r] == 0.0) continue;
    new_idx[w] = new_idx[r];
    new_val[w] = new_val[r];
    ++w;
  }
  new_idx.resize(w);
  new_val.resize(w);
  idx_ = std::move(new_idx);
  val_ = std::move(new_val);
  finalized_ = true;
}

index_t SparseTensor::size() const {
  index_t n = 1;
  for (index_t d : shape_) n *= d;
  return n;
}

double SparseTensor::density() const {
  const index_t n = size();
  return n == 0 ? 0.0 : static_cast<double>(nnz()) / static_cast<double>(n);
}

bool SparseTensor::contains(index_t flat) const {
  TT_CHECK(finalized_, "contains requires a finalized sparse tensor");
  return std::binary_search(idx_.begin(), idx_.end(), flat);
}

real_t SparseTensor::value_at(index_t flat) const {
  TT_CHECK(finalized_, "value_at requires a finalized sparse tensor");
  auto it = std::lower_bound(idx_.begin(), idx_.end(), flat);
  if (it == idx_.end() || *it != flat) return 0.0;
  return val_[static_cast<std::size_t>(it - idx_.begin())];
}

real_t SparseTensor::norm2() const {
  real_t s = 0.0;
  for (real_t v : val_) s += v * v;
  return std::sqrt(s);
}

std::vector<index_t> SparseTensor::strides() const {
  std::vector<index_t> s(shape_.size(), 1);
  for (int i = static_cast<int>(shape_.size()) - 2; i >= 0; --i)
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * shape_[static_cast<std::size_t>(i + 1)];
  return s;
}

}  // namespace tt::tensor

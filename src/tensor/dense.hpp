// Dense tensor with row-major storage and parallel index permutation.
//
// The permutation kernel is the local stand-in for the HPTT library the paper
// uses inside Cyclops: contractions lower to permute → GEMM → permute.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tt::tensor {

/// Dense order-N tensor, row-major (last mode fastest).
class DenseTensor {
 public:
  DenseTensor() = default;

  explicit DenseTensor(std::vector<index_t> shape, real_t fill = 0.0);

  static DenseTensor random(std::vector<index_t> shape, Rng& rng);

  /// Scalar (order-0) tensor.
  static DenseTensor scalar(real_t v);

  int order() const { return static_cast<int>(shape_.size()); }
  index_t dim(int mode) const { return shape_[static_cast<std::size_t>(mode)]; }
  const std::vector<index_t>& shape() const { return shape_; }
  index_t size() const;
  bool empty() const { return data_.empty(); }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }

  real_t& operator[](index_t flat) { return data_[static_cast<std::size_t>(flat)]; }
  real_t operator[](index_t flat) const { return data_[static_cast<std::size_t>(flat)]; }

  /// Multi-index element access (bounds unchecked in hot paths).
  real_t& at(std::span<const index_t> idx) { return data_[flat_index(idx)]; }
  real_t at(std::span<const index_t> idx) const { return data_[flat_index(idx)]; }
  real_t& at(std::initializer_list<index_t> idx) {
    return at(std::span<const index_t>(idx.begin(), idx.size()));
  }
  real_t at(std::initializer_list<index_t> idx) const {
    return const_cast<DenseTensor*>(this)->at(idx);
  }

  /// Row-major strides (stride of last mode = 1).
  std::vector<index_t> strides() const;

  /// Same data, new shape (total size must match).
  DenseTensor reshaped(std::vector<index_t> new_shape) const;

  /// Permuted copy: out mode i = in mode perm[i].
  DenseTensor permuted(std::span<const int> perm) const;
  DenseTensor permuted(std::initializer_list<int> perm) const {
    return permuted(std::span<const int>(perm.begin(), perm.size()));
  }

  void fill(real_t v);
  void scale(real_t s);

  /// this += alpha * other (same shape).
  void axpy(real_t alpha, const DenseTensor& other);

  real_t norm2() const;     ///< Frobenius norm.
  real_t max_abs() const;

 private:
  std::size_t flat_index(std::span<const index_t> idx) const;

  std::vector<index_t> shape_;
  std::vector<real_t> data_;
};

/// Inner product Σ aᵢ·bᵢ (shapes must match).
real_t dot(const DenseTensor& a, const DenseTensor& b);

/// Max elementwise |a - b|.
real_t max_abs_diff(const DenseTensor& a, const DenseTensor& b);

/// Parallel permutation into a preallocated output (HPTT stand-in).
/// perm maps output modes to input modes: out_idx[i] = in_idx[perm[i]].
void permute_into(const DenseTensor& in, std::span<const int> perm,
                  DenseTensor& out);

}  // namespace tt::tensor

// Sparse tensor in sorted-coordinate (flat index) format.
//
// Stand-in for Cyclops sparse tensors: stores only nonzeros, supports
// sparse×sparse and sparse×dense contraction (einsum.hpp) with optional
// precomputed output sparsity masks.
#pragma once

#include <span>
#include <vector>

#include "support/types.hpp"
#include "tensor/dense.hpp"

namespace tt::tensor {

/// Order-N sparse tensor: sorted flat indices (row-major convention matching
/// DenseTensor) with parallel value array.
class SparseTensor {
 public:
  SparseTensor() = default;
  explicit SparseTensor(std::vector<index_t> shape);

  /// Gather nonzeros (|v| > tol) of a dense tensor.
  static SparseTensor from_dense(const DenseTensor& d, real_t tol = 0.0);

  DenseTensor to_dense() const;

  /// Append an entry; call finalize() before reading. Duplicate flats are
  /// summed by finalize().
  void add(index_t flat, real_t v);

  /// Sort by flat index, merge duplicates, drop exact zeros.
  void finalize();

  int order() const { return static_cast<int>(shape_.size()); }
  index_t dim(int mode) const { return shape_[static_cast<std::size_t>(mode)]; }
  const std::vector<index_t>& shape() const { return shape_; }

  /// Total logical element count (product of dims).
  index_t size() const;
  index_t nnz() const { return static_cast<index_t>(idx_.size()); }
  double density() const;

  std::span<const index_t> indices() const { return idx_; }
  std::span<const real_t> values() const { return val_; }

  /// True if `flat` is among the stored indices (requires finalized tensor).
  bool contains(index_t flat) const;

  /// Value at `flat` (0 when absent; requires finalized tensor).
  real_t value_at(index_t flat) const;

  real_t norm2() const;

  /// Row-major strides of the logical shape.
  std::vector<index_t> strides() const;

 private:
  std::vector<index_t> shape_;
  std::vector<index_t> idx_;
  std::vector<real_t> val_;
  bool finalized_ = true;  // empty tensor counts as finalized
};

}  // namespace tt::tensor

// Einstein-summation contraction of two tensors (dense and sparse kernels).
//
// This is the contraction interface of the Cyclops stand-in: a spec string
// like "akb,bscd->aksc" names each mode with one character; labels shared by
// both inputs and absent from the output are summed. Execution follows CTF:
// permute operands into matrix layout, GEMM (or an SpGEMM-style kernel for
// sparse operands), permute the result back. Operand permutations that are a
// pure matrix transpose skip the copy entirely: they lower to the gemm_raw
// transa/transb flags, which the backends absorb for free.
//
// Restrictions (checked): no repeated label within one operand (no traces) and
// no label present in both inputs *and* the output (no batch/Hadamard modes).
// DMRG needs neither.
#pragma once

#include <string>

#include "tensor/dense.hpp"
#include "tensor/sparse.hpp"

namespace tt::tensor {

/// Parsed einsum specification.
struct EinsumSpec {
  std::string a, b, c;

  /// Parse "ab,bc->ac"; throws tt::Error on malformed specs.
  static EinsumSpec parse(const std::string& spec);
};

/// Execution metadata, consumed by the runtime cost model.
struct EinsumStats {
  double flops = 0.0;           ///< 2·(scalar multiplies)
  double permuted_words = 0.0;  ///< elements moved by layout permutations
  /// Operands whose permutation was a pure matrix transpose and lowered to a
  /// gemm_raw trans flag instead of a materialized copy (dense path); such
  /// operands do not contribute to permuted_words.
  int lowered_transposes = 0;
  index_t m = 0, n = 0, k = 0;  ///< matricized GEMM dimensions (dense path)
};

/// Dense × dense → dense.
DenseTensor einsum(const std::string& spec, const DenseTensor& a,
                   const DenseTensor& b, EinsumStats* stats = nullptr);

/// Sparse × sparse → sparse. If `out_mask` is non-null, only locations present
/// in the mask are accumulated (the paper's precomputed output sparsity, which
/// Cyclops uses to bound memory during sparse contraction).
SparseTensor einsum_ss(const std::string& spec, const SparseTensor& a,
                       const SparseTensor& b, EinsumStats* stats = nullptr,
                       const SparseTensor* out_mask = nullptr);

/// Sparse × dense → dense.
DenseTensor einsum_sd(const std::string& spec, const SparseTensor& a,
                      const DenseTensor& b, EinsumStats* stats = nullptr);

/// Dense × sparse → dense.
DenseTensor einsum_ds(const std::string& spec, const DenseTensor& a,
                      const SparseTensor& b, EinsumStats* stats = nullptr);

}  // namespace tt::tensor

#include "tensor/einsum.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "linalg/gemm.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace tt::tensor {

using support::openmp_allowed;

namespace {

bool contains_char(const std::string& s, char c) {
  return s.find(c) != std::string::npos;
}

void check_unique_labels(const std::string& s, const char* which) {
  for (std::size_t i = 0; i < s.size(); ++i)
    for (std::size_t j = i + 1; j < s.size(); ++j)
      TT_CHECK(s[i] != s[j], "repeated label '" << s[i] << "' in " << which
                                                << " operand (traces unsupported)");
}

// Classified contraction plan shared by all kernels.
struct Plan {
  std::vector<int> free_a, con_a;  // mode positions within A
  std::vector<int> con_b, free_b;  // mode positions within B (con_b parallel to con_a)
  std::vector<int> cperm;          // tmp [free_a, free_b] -> C mode order
  std::vector<index_t> tmp_shape;
  index_t m = 1, n = 1, k = 1;
  bool cperm_identity = true;
};

Plan make_plan(const EinsumSpec& spec, const std::vector<index_t>& sa,
               const std::vector<index_t>& sb) {
  TT_CHECK(spec.a.size() == sa.size(), "einsum: spec '" << spec.a << "' does not match order "
                                                        << sa.size() << " of first operand");
  TT_CHECK(spec.b.size() == sb.size(), "einsum: spec '" << spec.b << "' does not match order "
                                                        << sb.size() << " of second operand");
  Plan p;
  p.free_a.reserve(spec.a.size());
  p.con_a.reserve(spec.a.size());
  p.con_b.reserve(spec.a.size());
  p.free_b.reserve(spec.b.size());
  std::string tmp_labels;
  tmp_labels.reserve(spec.c.size());
  for (std::size_t i = 0; i < spec.a.size(); ++i) {
    const char l = spec.a[i];
    const bool in_b = contains_char(spec.b, l);
    const bool in_c = contains_char(spec.c, l);
    TT_CHECK(in_b != in_c, "einsum label '" << l << "' must appear in exactly one of the "
                                            << "second operand or the output");
    if (in_c) {
      p.free_a.push_back(static_cast<int>(i));
      tmp_labels.push_back(l);
      p.m *= sa[i];
    } else {
      p.con_a.push_back(static_cast<int>(i));
      const auto jb = spec.b.find(l);
      p.con_b.push_back(static_cast<int>(jb));
      TT_CHECK(sa[i] == sb[jb], "einsum dimension mismatch on label '"
                                    << l << "': " << sa[i] << " vs " << sb[jb]);
      p.k *= sa[i];
    }
  }
  for (std::size_t i = 0; i < spec.b.size(); ++i) {
    const char l = spec.b[i];
    const bool in_a = contains_char(spec.a, l);
    const bool in_c = contains_char(spec.c, l);
    if (in_a) continue;  // contracted, already planned
    TT_CHECK(in_c, "einsum label '" << l << "' of the second operand is neither "
                                    << "contracted nor in the output");
    p.free_b.push_back(static_cast<int>(i));
    tmp_labels.push_back(l);
    p.n *= sb[i];
  }
  TT_CHECK(spec.c.size() == tmp_labels.size(),
           "einsum output '" << spec.c << "' does not cover the free labels '" << tmp_labels
                             << "'");
  for (char l : spec.c)
    TT_CHECK(contains_char(tmp_labels, l), "einsum output label '" << l
                                                                   << "' not produced by inputs");
  p.tmp_shape.reserve(tmp_labels.size());
  for (int mode : p.free_a) p.tmp_shape.push_back(sa[static_cast<std::size_t>(mode)]);
  for (int mode : p.free_b) p.tmp_shape.push_back(sb[static_cast<std::size_t>(mode)]);
  p.cperm.resize(spec.c.size());
  for (std::size_t i = 0; i < spec.c.size(); ++i) {
    p.cperm[i] = static_cast<int>(tmp_labels.find(spec.c[i]));
    if (p.cperm[i] != static_cast<int>(i)) p.cperm_identity = false;
  }
  return p;
}

bool is_identity(const std::vector<int>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i)
    if (perm[i] != static_cast<int>(i)) return false;
  return true;
}

// Row-major linearization helpers for sparse entries. For each nonzero, split
// its flat index into per-mode indices and re-linearize selected modes.
struct ModeSplit {
  std::vector<index_t> strides;  // input strides per mode
  std::vector<index_t> dims;
};

ModeSplit make_split(const std::vector<index_t>& shape) {
  ModeSplit s;
  s.dims = shape;
  s.strides.assign(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i)
    s.strides[static_cast<std::size_t>(i)] =
        s.strides[static_cast<std::size_t>(i + 1)] * shape[static_cast<std::size_t>(i + 1)];
  return s;
}

// Linearized key over a subset of modes, weighted by arbitrary strides.
index_t relinearize(index_t flat, const ModeSplit& split, const std::vector<int>& modes,
                    const std::vector<index_t>& weights) {
  index_t key = 0;
  for (std::size_t t = 0; t < modes.size(); ++t) {
    const auto mode = static_cast<std::size_t>(modes[t]);
    const index_t idx = (flat / split.strides[mode]) % split.dims[mode];
    key += idx * weights[t];
  }
  return key;
}

// Row-major weights for a selected list of modes.
std::vector<index_t> packed_weights(const std::vector<index_t>& shape,
                                    const std::vector<int>& modes) {
  std::vector<index_t> w(modes.size(), 1);
  for (int t = static_cast<int>(modes.size()) - 2; t >= 0; --t)
    w[static_cast<std::size_t>(t)] =
        w[static_cast<std::size_t>(t + 1)] *
        shape[static_cast<std::size_t>(modes[static_cast<std::size_t>(t + 1)])];
  return w;
}

// Weights that map each selected mode straight to its stride in the output
// tensor (used to build final C flats without an intermediate permute).
std::vector<index_t> output_weights(const EinsumSpec& spec, const std::string& op_labels,
                                    const std::vector<int>& modes,
                                    const std::vector<index_t>& c_strides) {
  std::vector<index_t> w(modes.size(), 0);
  for (std::size_t t = 0; t < modes.size(); ++t) {
    const char l = op_labels[static_cast<std::size_t>(modes[t])];
    const auto pos = spec.c.find(l);
    TT_ASSERT(pos != std::string::npos, "free label missing from output");
    w[t] = c_strides[pos];
  }
  return w;
}

std::vector<index_t> shape_of_output(const EinsumSpec& spec, const std::vector<index_t>& sa,
                                     const std::vector<index_t>& sb) {
  std::vector<index_t> cs(spec.c.size());
  for (std::size_t i = 0; i < spec.c.size(); ++i) {
    const char l = spec.c[i];
    auto pa = spec.a.find(l);
    cs[i] = (pa != std::string::npos) ? sa[pa] : sb[spec.b.find(l)];
  }
  return cs;
}

std::vector<index_t> strides_for(const std::vector<index_t>& shape) {
  std::vector<index_t> s(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i)
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * shape[static_cast<std::size_t>(i + 1)];
  return s;
}

}  // namespace

EinsumSpec EinsumSpec::parse(const std::string& spec) {
  const auto arrow = spec.find("->");
  TT_CHECK(arrow != std::string::npos, "einsum spec missing '->': " << spec);
  const std::string lhs = spec.substr(0, arrow);
  EinsumSpec out;
  out.c = spec.substr(arrow + 2);
  const auto comma = lhs.find(',');
  TT_CHECK(comma != std::string::npos, "einsum spec must have two operands: " << spec);
  out.a = lhs.substr(0, comma);
  out.b = lhs.substr(comma + 1);
  TT_CHECK(out.b.find(',') == std::string::npos,
           "einsum supports exactly two operands: " << spec);
  check_unique_labels(out.a, "first");
  check_unique_labels(out.b, "second");
  check_unique_labels(out.c, "output");
  return out;
}

// Concatenation of two mode lists (the matricized [rows, cols] orders).
std::vector<int> concat(const std::vector<int>& x, const std::vector<int>& y) {
  std::vector<int> out = x;
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

DenseTensor einsum(const std::string& spec_str, const DenseTensor& a,
                   const DenseTensor& b, EinsumStats* stats) {
  const EinsumSpec spec = EinsumSpec::parse(spec_str);
  const Plan p = make_plan(spec, a.shape(), b.shape());

  // Operand lowering: GEMM wants op(A) = [free_a, con_a] and op(B) =
  // [con_b, free_b]. When an operand already stores those groups contiguous
  // and in order — either directly or with the two groups swapped — hand GEMM
  // the buffer as-is with the matching trans flag instead of materializing a
  // permuted copy (the packed kernel and dgemm absorb transposes for free).
  double permuted = 0.0;
  bool transa = false, transb = false;
  const DenseTensor* ap = &a;
  const DenseTensor* bp = &b;
  DenseTensor a_work, b_work;
  if (is_identity(concat(p.free_a, p.con_a))) {
    // already op(A); nothing to do
  } else if (is_identity(concat(p.con_a, p.free_a))) {
    transa = true;  // physical layout is op(A)ᵀ = [con_a, free_a]
  } else {
    a_work = a.permuted(concat(p.free_a, p.con_a));
    ap = &a_work;
    permuted += static_cast<double>(a.size());
  }
  if (is_identity(concat(p.con_b, p.free_b))) {
    // already op(B)
  } else if (is_identity(concat(p.free_b, p.con_b))) {
    transb = true;  // physical layout is op(B)ᵀ = [free_b, con_b]
  } else {
    b_work = b.permuted(concat(p.con_b, p.free_b));
    bp = &b_work;
    permuted += static_cast<double>(b.size());
  }

  DenseTensor tmp(p.tmp_shape);
  linalg::gemm_raw(transa, transb, p.m, p.n, p.k, 1.0, ap->data(), bp->data(),
                   0.0, tmp.data());

  DenseTensor out;
  if (p.cperm_identity) {
    out = std::move(tmp);
  } else {
    out = tmp.permuted(p.cperm);
    permuted += static_cast<double>(out.size());
  }
  if (stats) {
    stats->flops += linalg::gemm_flops(p.m, p.n, p.k);
    stats->permuted_words += permuted;
    stats->lowered_transposes += (transa ? 1 : 0) + (transb ? 1 : 0);
    stats->m = p.m;
    stats->n = p.n;
    stats->k = p.k;
  }
  return out;
}

SparseTensor einsum_ss(const std::string& spec_str, const SparseTensor& a,
                       const SparseTensor& b, EinsumStats* stats,
                       const SparseTensor* out_mask) {
  const EinsumSpec spec = EinsumSpec::parse(spec_str);
  const Plan p = make_plan(spec, a.shape(), b.shape());
  const std::vector<index_t> c_shape = shape_of_output(spec, a.shape(), b.shape());
  const std::vector<index_t> c_strides = strides_for(c_shape);
  if (out_mask)
    TT_CHECK(out_mask->shape() == c_shape, "einsum_ss output mask shape mismatch");

  const ModeSplit sa = make_split(a.shape());
  const ModeSplit sb = make_split(b.shape());
  const std::vector<index_t> ka_w = packed_weights(a.shape(), p.con_a);
  // Contracted key weights for B must match A's ordering/dims (same labels).
  std::vector<index_t> kb_w(p.con_b.size(), 1);
  for (int t = static_cast<int>(p.con_b.size()) - 2; t >= 0; --t)
    kb_w[static_cast<std::size_t>(t)] =
        kb_w[static_cast<std::size_t>(t + 1)] *
        a.shape()[static_cast<std::size_t>(p.con_a[static_cast<std::size_t>(t + 1)])];
  const std::vector<index_t> ra_w = output_weights(spec, spec.a, p.free_a, c_strides);
  const std::vector<index_t> cb_w = output_weights(spec, spec.b, p.free_b, c_strides);

  struct Entry {
    index_t key;      // contracted-mode linearization
    index_t contrib;  // contribution to the output flat index
    real_t val;
  };
  auto gather = [](const SparseTensor& t, const ModeSplit& split,
                   const std::vector<int>& kmodes, const std::vector<index_t>& kw,
                   const std::vector<int>& fmodes, const std::vector<index_t>& fw) {
    std::vector<Entry> es;
    es.reserve(static_cast<std::size_t>(t.nnz()));
    auto idx = t.indices();
    auto val = t.values();
    for (std::size_t i = 0; i < idx.size(); ++i) {
      Entry e;
      e.key = relinearize(idx[i], split, kmodes, kw);
      e.contrib = relinearize(idx[i], split, fmodes, fw);
      e.val = val[i];
      es.push_back(e);
    }
    std::sort(es.begin(), es.end(),
              [](const Entry& x, const Entry& y) { return x.key < y.key; });
    return es;
  };

  const std::vector<Entry> ea = gather(a, sa, p.con_a, ka_w, p.free_a, ra_w);
  const std::vector<Entry> eb = gather(b, sb, p.con_b, kb_w, p.free_b, cb_w);

  // Merge-join matching contracted keys; one (start, end) group pair per key.
  struct Group {
    std::size_t a0, a1, b0, b1;
  };
  std::vector<Group> groups;
  {
    std::size_t i = 0, j = 0;
    while (i < ea.size() && j < eb.size()) {
      if (ea[i].key < eb[j].key) {
        ++i;
      } else if (eb[j].key < ea[i].key) {
        ++j;
      } else {
        const index_t key = ea[i].key;
        Group g{i, i, j, j};
        while (g.a1 < ea.size() && ea[g.a1].key == key) ++g.a1;
        while (g.b1 < eb.size() && eb[g.b1].key == key) ++g.b1;
        groups.push_back(g);
        i = g.a1;
        j = g.b1;
      }
    }
  }

  SparseTensor out(c_shape);
  double flops = 0.0;
#ifdef _OPENMP
  const int nthreads = omp_get_max_threads();
#else
  const int nthreads = 1;
#endif
  // tt-lint: allow(ordered-iteration) accumulator only; drained below via a flat-sorted vector, never iterated in hash order
  std::vector<std::unordered_map<index_t, real_t>> partial(
      static_cast<std::size_t>(nthreads));
  std::vector<double> partial_flops(static_cast<std::size_t>(nthreads), 0.0);

// schedule(static), not dynamic: the group→thread assignment decides which
// per-thread map each contribution lands in, and therefore the order
// duplicates merge in below. Static chunking makes that assignment a pure
// function of (groups.size(), nthreads), so results are bitwise reproducible
// run to run.
#pragma omp parallel for schedule(static) if (groups.size() > 16 && openmp_allowed())
  for (std::size_t g = 0; g < groups.size(); ++g) {
#ifdef _OPENMP
    auto& acc = partial[static_cast<std::size_t>(omp_get_thread_num())];
    auto& fl = partial_flops[static_cast<std::size_t>(omp_get_thread_num())];
#else
    auto& acc = partial[0];
    auto& fl = partial_flops[0];
#endif
    const Group& gr = groups[g];
    for (std::size_t ia = gr.a0; ia < gr.a1; ++ia) {
      for (std::size_t ib = gr.b0; ib < gr.b1; ++ib) {
        const index_t flat = ea[ia].contrib + eb[ib].contrib;
        if (out_mask && !out_mask->contains(flat)) continue;
        acc[flat] += ea[ia].val * eb[ib].val;
        fl += 2.0;
      }
    }
  }
  // Drain each thread's accumulator in ascending flat order, threads in rank
  // order: iterating the unordered_map directly would feed out.add() in
  // hash-dependent order, and SparseTensor::finalize sums duplicate flats in
  // insertion order — hash order leaking in here is exactly the
  // nondeterminism the ordered-iteration lint rule exists to catch.
  std::vector<std::pair<index_t, real_t>> drain;
  for (int t = 0; t < nthreads; ++t) {
    // tt-lint: allow(ordered-iteration) copied out then sorted by flat index before any order-sensitive use
    drain.assign(partial[static_cast<std::size_t>(t)].cbegin(),
                 partial[static_cast<std::size_t>(t)].cend());
    std::sort(drain.begin(), drain.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (const auto& [flat, v] : drain) out.add(flat, v);
    flops += partial_flops[static_cast<std::size_t>(t)];
  }
  out.finalize();
  if (stats) {
    stats->flops += flops;
    stats->m = p.m;
    stats->n = p.n;
    stats->k = p.k;
  }
  return out;
}

DenseTensor einsum_sd(const std::string& spec_str, const SparseTensor& a,
                      const DenseTensor& b, EinsumStats* stats) {
  const EinsumSpec spec = EinsumSpec::parse(spec_str);
  const Plan p = make_plan(spec, a.shape(), b.shape());

  // Dense operand to [contracted, free_b] matrix form.
  std::vector<int> pb = p.con_b;
  pb.insert(pb.end(), p.free_b.begin(), p.free_b.end());
  const DenseTensor* bp = &b;
  DenseTensor b_work;
  double permuted = 0.0;
  if (!is_identity(pb)) {
    b_work = b.permuted(pb);
    bp = &b_work;
    permuted += static_cast<double>(b.size());
  }

  const ModeSplit sa = make_split(a.shape());
  const std::vector<index_t> row_w = packed_weights(a.shape(), p.free_a);
  const std::vector<index_t> k_w = packed_weights(a.shape(), p.con_a);

  struct Entry {
    index_t row, key;
    real_t val;
  };
  std::vector<Entry> es;
  es.reserve(static_cast<std::size_t>(a.nnz()));
  {
    auto idx = a.indices();
    auto val = a.values();
    for (std::size_t i = 0; i < idx.size(); ++i)
      es.push_back({relinearize(idx[i], sa, p.free_a, row_w),
                    relinearize(idx[i], sa, p.con_a, k_w), val[i]});
  }
  std::sort(es.begin(), es.end(), [](const Entry& x, const Entry& y) {
    return x.row < y.row || (x.row == y.row && x.key < y.key);
  });
  // Row group boundaries for conflict-free parallel accumulation.
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < es.size(); ++i)
    if (i == 0 || es[i].row != es[i - 1].row) starts.push_back(i);
  starts.push_back(es.size());

  DenseTensor tmp(p.tmp_shape);
  const index_t n = p.n;
  double flops = 0.0;
  const std::size_t ngroups = starts.empty() ? 0 : starts.size() - 1;
#pragma omp parallel for schedule(dynamic, 4) reduction(+ : flops) \
    if (ngroups > 8 && tmp.size() > (index_t{1} << 14) && openmp_allowed())
  for (std::size_t gi = 0; gi < ngroups; ++gi) {
    real_t* crow = tmp.data() + es[starts[gi]].row * n;
    for (std::size_t e = starts[gi]; e < starts[gi + 1]; ++e) {
      const real_t* brow = bp->data() + es[e].key * n;
      const real_t v = es[e].val;
      for (index_t j = 0; j < n; ++j) crow[j] += v * brow[j];
      flops += 2.0 * static_cast<double>(n);
    }
  }

  DenseTensor out;
  if (p.cperm_identity) {
    out = std::move(tmp);
  } else {
    out = tmp.permuted(p.cperm);
    permuted += static_cast<double>(out.size());
  }
  if (stats) {
    stats->flops += flops;
    stats->permuted_words += permuted;
    stats->m = p.m;
    stats->n = p.n;
    stats->k = p.k;
  }
  return out;
}

DenseTensor einsum_ds(const std::string& spec_str, const DenseTensor& a,
                      const SparseTensor& b, EinsumStats* stats) {
  const EinsumSpec spec = EinsumSpec::parse(spec_str);
  const Plan p = make_plan(spec, a.shape(), b.shape());

  // Dense operand to [free_a, contracted] matrix form.
  std::vector<int> pa = p.free_a;
  pa.insert(pa.end(), p.con_a.begin(), p.con_a.end());
  const DenseTensor* apm = &a;
  DenseTensor a_work;
  double permuted = 0.0;
  if (!is_identity(pa)) {
    a_work = a.permuted(pa);
    apm = &a_work;
    permuted += static_cast<double>(a.size());
  }

  const ModeSplit sb = make_split(b.shape());
  // B's contracted key must be linearized with the same mode order/dims as A's
  // trailing contracted modes.
  std::vector<index_t> kb_w(p.con_b.size(), 1);
  for (int t = static_cast<int>(p.con_b.size()) - 2; t >= 0; --t)
    kb_w[static_cast<std::size_t>(t)] =
        kb_w[static_cast<std::size_t>(t + 1)] *
        a.shape()[static_cast<std::size_t>(p.con_a[static_cast<std::size_t>(t + 1)])];
  const std::vector<index_t> col_w = packed_weights(b.shape(), p.free_b);

  struct Entry {
    index_t key, col;
    real_t val;
  };
  std::vector<Entry> es;
  es.reserve(static_cast<std::size_t>(b.nnz()));
  {
    auto idx = b.indices();
    auto val = b.values();
    for (std::size_t i = 0; i < idx.size(); ++i)
      es.push_back({relinearize(idx[i], sb, p.con_b, kb_w),
                    relinearize(idx[i], sb, p.free_b, col_w), val[i]});
  }
  std::sort(es.begin(), es.end(), [](const Entry& x, const Entry& y) {
    return x.key < y.key || (x.key == y.key && x.col < y.col);
  });

  DenseTensor tmp(p.tmp_shape);
  const index_t m = p.m, n = p.n, k = p.k;
  double flops = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : flops) \
    if (m > 4 && static_cast<double>(m) * static_cast<double>(es.size()) > 1e5 && openmp_allowed())
  for (index_t r = 0; r < m; ++r) {
    const real_t* arow = apm->data() + r * k;
    real_t* crow = tmp.data() + r * n;
    for (const Entry& e : es) {
      crow[e.col] += arow[e.key] * e.val;
    }
    flops += 2.0 * static_cast<double>(es.size());
  }

  DenseTensor out;
  if (p.cperm_identity) {
    out = std::move(tmp);
  } else {
    out = tmp.permuted(p.cperm);
    permuted += static_cast<double>(out.size());
  }
  if (stats) {
    stats->flops += flops;
    stats->permuted_words += permuted;
    stats->m = p.m;
    stats->n = p.n;
    stats->k = p.k;
  }
  return out;
}

}  // namespace tt::tensor

// Physical observables on MPS: two-point correlators (with automatic
// Jordan–Wigner strings for fermionic operators) and bipartite entanglement
// entropy — the measurements a DMRG study of the paper's two models reports.
#pragma once

#include <string>
#include <vector>

#include "mps/mps.hpp"

namespace tt::mps {

/// ⟨ψ| O1_i · O2_j |ψ⟩ for i ≠ j (any order). Charged operators are allowed
/// when their fluxes cancel (e.g. S+ with S-); fermionic pairs receive the
/// parity string between the sites. ψ must be normalized for a true
/// expectation value.
real_t correlation(const Mps& psi, const std::string& op1, int i,
                   const std::string& op2, int j);

/// Connected correlator ⟨O1_i O2_j⟩ − ⟨O1_i⟩⟨O2_j⟩ (both ops charge-neutral).
real_t connected_correlation(const Mps& psi, const std::string& op1, int i,
                             const std::string& op2, int j);

/// Von Neumann entanglement entropy S = −Σ λ² ln λ² across bond `b`
/// (between sites b and b+1), from the singular values of the bipartition.
real_t entanglement_entropy(const Mps& psi, int bond);

/// Singular-value spectrum across bond `b`, sorted descending.
std::vector<real_t> entanglement_spectrum(const Mps& psi, int bond);

}  // namespace tt::mps

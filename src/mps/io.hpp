// Portable text serialization for MPS and MPO.
//
// Plays the role of the paper's ITensor↔Cyclops conversion interface (§VI:
// "we developed an interface to convert ITensor MPS data to a readable format
// for Cyclops"): states and operators can be written by one toolchain and
// read by another — or checkpointed between runs. The format is exact
// (hex-encoded doubles) and versioned.
#pragma once

#include <iosfwd>
#include <string>

#include "mps/mpo.hpp"
#include "mps/mps.hpp"

namespace tt::mps {

/// Write/read an MPS. The site set is described structurally (physical index
/// sectors); the reader validates it against the supplied site set.
void write_mps(std::ostream& os, const Mps& psi);
Mps read_mps(std::istream& is, SiteSetPtr sites);

/// Write/read an MPO.
void write_mpo(std::ostream& os, const Mpo& h);
Mpo read_mpo(std::istream& is, SiteSetPtr sites);

/// File-path convenience wrappers. Loaders reject truncated files, wrong
/// magic, and unsupported versions with tt::Error (never silent garbage).
void save_mps(const std::string& path, const Mps& psi);
Mps load_mps(const std::string& path, SiteSetPtr sites);
void save_mpo(const std::string& path, const Mpo& h);
Mpo load_mpo(const std::string& path, SiteSetPtr sites);

/// Exact double<->text round trip via hexfloat ("%a"), the encoding every
/// value in these streams uses. Shared with dmrg::CheckpointManager so
/// checkpoints inherit the same bitwise-exactness guarantee. The reader
/// throws on a truncated stream or a token that is not a full number.
void write_real_hex(std::ostream& os, real_t v);
real_t read_real_hex(std::istream& is);

}  // namespace tt::mps

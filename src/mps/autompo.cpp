#include "mps/autompo.hpp"

#include <algorithm>
#include <map>

#include "symm/block_tensor.hpp"

namespace tt::mps {

using symm::BlockTensor;
using symm::Dir;
using symm::Index;
using symm::QN;
using symm::Sector;

namespace {

// A term normalized for MPO placement: per-site merged operators over the
// span [first, last], with JW strings resolved and the reordering sign folded
// into the coefficient.
struct PlacedTerm {
  real_t coeff = 0.0;
  int first = 0, last = 0;
  std::map<int, LocalOp> ops;  // site -> operator (factors and strings)
};

PlacedTerm place_term(const SiteSet& sites, real_t coeff,
                      std::vector<OpFactor> factors) {
  TT_CHECK(!factors.empty(), "a term needs at least one operator");
  std::vector<LocalOp> ops;
  ops.reserve(factors.size());
  for (const OpFactor& f : factors) {
    TT_CHECK(f.site >= 0 && f.site < sites.size(),
             "operator site " << f.site << " out of range");
    ops.push_back(sites.op(f.name));
  }

  // Stable bubble sort by site; swapping two fermionic factors flips the sign.
  real_t sign = 1.0;
  for (std::size_t i = 0; i + 1 < factors.size(); ++i)
    for (std::size_t j = 0; j + 1 < factors.size() - i; ++j)
      if (factors[j].site > factors[j + 1].site) {
        if (ops[j].fermionic && ops[j + 1].fermionic) sign = -sign;
        std::swap(factors[j], factors[j + 1]);
        std::swap(ops[j], ops[j + 1]);
      }

  int total_fermionic = 0;
  for (const LocalOp& o : ops) total_fermionic += o.fermionic ? 1 : 0;
  TT_CHECK(total_fermionic % 2 == 0,
           "term with an odd number of fermionic operators cannot appear in a "
           "Hamiltonian");

  // Jordan–Wigner: an operator with an odd number of fermionic factors after
  // it picks up the local parity F on its right (op := op·F).
  for (std::size_t i = 0; i < ops.size(); ++i) {
    int after = 0;
    for (std::size_t j = i + 1; j < ops.size(); ++j)
      after += ops[j].fermionic ? 1 : 0;
    if (after % 2 == 1) ops[i] = sites.multiply(ops[i], sites.op("F"));
  }

  PlacedTerm out;
  out.coeff = coeff * sign;
  out.first = factors.front().site;
  out.last = factors.back().site;

  // Merge factors site by site (left-to-right operator order on each site:
  // leftmost factor in the sorted product is applied last, i.e. multiplied
  // from the left).
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const int s = factors[i].site;
    auto it = out.ops.find(s);
    if (it == out.ops.end()) {
      out.ops.emplace(s, ops[i]);
    } else {
      it->second = sites.multiply(it->second, ops[i]);
    }
  }

  // Intermediate sites inside the span carry the parity string (F when an odd
  // number of fermionic factors lies to their right) or the identity.
  for (int s = out.first + 1; s < out.last; ++s) {
    if (out.ops.count(s)) continue;
    int after = 0;
    for (std::size_t i = 0; i < factors.size(); ++i)
      if (factors[i].site > s && ops[i].fermionic) ++after;
    out.ops.emplace(s, after % 2 == 1 ? sites.op("F") : sites.op("Id"));
  }

  // Charge neutrality of the whole term.
  QN total = QN::zero(sites.qn_rank());
  for (const auto& [s, o] : out.ops) total = total + o.flux;
  TT_CHECK(total.is_zero(), "term does not conserve the symmetry (total flux "
                                << total.str() << ")");
  return out;
}

// FSM state bookkeeping for one bond: states are (kind, term id) with a
// charge; kind 0 = initial, 1 = final, 2 = in-progress term.
struct BondStates {
  // For each state: charge and a stable label.
  std::vector<QN> charge;
  std::vector<std::pair<int, int>> label;  // (kind, term)
  std::map<std::pair<int, int>, int> id_of;

  int add(int kind, int term, const QN& q) {
    auto [it, fresh] = id_of.try_emplace({kind, term}, static_cast<int>(charge.size()));
    if (fresh) {
      charge.push_back(q);
      label.push_back({kind, term});
    }
    return it->second;
  }
  int find(int kind, int term) const {
    auto it = id_of.find({kind, term});
    return it == id_of.end() ? -1 : it->second;
  }
  int size() const { return static_cast<int>(charge.size()); }
};

// Sector layout of a bond: states grouped by charge.
struct BondLayout {
  Index index_out;                 // direction Out (right leg of the site)
  std::vector<int> sector_of;      // state -> sector id
  std::vector<index_t> local_of;   // state -> offset within sector
};

BondLayout layout_bond(const BondStates& states) {
  std::map<QN, std::vector<int>> by_charge;
  for (int s = 0; s < states.size(); ++s)
    by_charge[states.charge[static_cast<std::size_t>(s)]].push_back(s);
  BondLayout out;
  out.sector_of.resize(static_cast<std::size_t>(states.size()));
  out.local_of.resize(static_cast<std::size_t>(states.size()));
  std::vector<Sector> sectors;
  int sid = 0;
  for (const auto& [q, members] : by_charge) {
    sectors.push_back({q, static_cast<index_t>(members.size())});
    for (std::size_t l = 0; l < members.size(); ++l) {
      out.sector_of[static_cast<std::size_t>(members[l])] = sid;
      out.local_of[static_cast<std::size_t>(members[l])] = static_cast<index_t>(l);
    }
    ++sid;
  }
  out.index_out = Index(sectors, Dir::Out);
  return out;
}

}  // namespace

AutoMpo::AutoMpo(SiteSetPtr sites) : sites_(std::move(sites)) {
  TT_CHECK(sites_ != nullptr, "AutoMpo needs a site set");
  TT_CHECK(sites_->has_op("Id"), "site set must define the 'Id' operator");
}

AutoMpo& AutoMpo::add(real_t coeff, std::vector<OpFactor> factors) {
  if (coeff != 0.0) terms_.push_back({coeff, std::move(factors)});
  return *this;
}

AutoMpo& AutoMpo::add(real_t coeff, const std::string& op, int i) {
  return add(coeff, std::vector<OpFactor>{{op, i}});
}

AutoMpo& AutoMpo::add(real_t coeff, const std::string& op1, int i,
                      const std::string& op2, int j) {
  return add(coeff, std::vector<OpFactor>{{op1, i}, {op2, j}});
}

Mpo AutoMpo::to_mpo(real_t rel_cutoff) const {
  const int n = sites_->size();
  TT_CHECK(n >= 2, "MPO construction needs at least two sites");
  TT_CHECK(!terms_.empty(), "no terms added");
  const int rank = sites_->qn_rank();
  const QN zero = QN::zero(rank);

  std::vector<PlacedTerm> placed;
  placed.reserve(terms_.size());
  for (const Term& t : terms_)
    placed.push_back(place_term(*sites_, t.coeff, t.factors));

  // --- enumerate FSM states per bond -----------------------------------------
  // Bond b sits between sites b and b+1 (b = 0..n-2); virtual boundary bonds
  // hold only the initial (left) / final (right) state.
  std::vector<BondStates> bonds(static_cast<std::size_t>(n - 1));
  for (auto& bs : bonds) {
    bs.add(0, -1, zero);  // initial
    bs.add(1, -1, zero);  // final
  }
  for (std::size_t ti = 0; ti < placed.size(); ++ti) {
    const PlacedTerm& t = placed[ti];
    QN accum = zero;
    for (int b = t.first; b < t.last; ++b) {
      auto it = t.ops.find(b);
      if (it != t.ops.end()) accum = accum + it->second.flux;
      if (b <= n - 2) bonds[static_cast<std::size_t>(b)].add(2, static_cast<int>(ti), accum);
    }
  }

  std::vector<BondLayout> layouts;
  layouts.reserve(bonds.size());
  for (const auto& bs : bonds) layouts.push_back(layout_bond(bs));

  // --- assemble site tensors --------------------------------------------------
  // Transition (lstate, rstate, op, scale) accumulated into the block tensor.
  std::vector<BlockTensor> tensors;
  const Index& phys = sites_->phys();
  const Index phys_ket = phys.reversed();

  for (int j = 0; j < n; ++j) {
    // Left / right state tables (boundaries collapse to one state).
    BondStates left_boundary, right_boundary;
    left_boundary.add(0, -1, zero);
    right_boundary.add(1, -1, zero);
    const BondStates& ls = (j == 0) ? left_boundary : bonds[static_cast<std::size_t>(j - 1)];
    const BondStates& rs = (j == n - 1) ? right_boundary : bonds[static_cast<std::size_t>(j)];
    const BondLayout llay = (j == 0) ? layout_bond(left_boundary)
                                     : layouts[static_cast<std::size_t>(j - 1)];
    const BondLayout rlay = (j == n - 1) ? layout_bond(right_boundary)
                                         : layouts[static_cast<std::size_t>(j)];

    BlockTensor w({llay.index_out.reversed(), phys, phys_ket, rlay.index_out}, zero);

    auto emit = [&](int lstate, int rstate, const LocalOp& op, real_t scale) {
      if (scale == 0.0) return;
      const index_t d = phys.dim();
      for (index_t b = 0; b < d; ++b)
        for (index_t k = 0; k < d; ++k) {
          const real_t v = op.mat(b, k) * scale;
          if (v == 0.0) continue;
          const int sb = sites_->sector_of_state(b);
          const int sk = sites_->sector_of_state(k);
          symm::BlockKey key{llay.sector_of[static_cast<std::size_t>(lstate)], sb, sk,
                             rlay.sector_of[static_cast<std::size_t>(rstate)]};
          tensor::DenseTensor& blk = w.block(key);
          // += : several on-site terms can share the same FSM transition.
          blk.at({llay.local_of[static_cast<std::size_t>(lstate)],
                  sites_->local_of_state(b), sites_->local_of_state(k),
                  rlay.local_of[static_cast<std::size_t>(rstate)]}) += v;
        }
    };

    const LocalOp& id = sites_->op("Id");
    // Pass-through transitions.
    const int l_init = ls.find(0, -1);
    const int r_init = rs.find(0, -1);
    const int l_fin = ls.find(1, -1);
    const int r_fin = rs.find(1, -1);
    if (l_init >= 0 && r_init >= 0 && j < n - 1) emit(l_init, r_init, id, 1.0);
    if (l_fin >= 0 && r_fin >= 0 && j > 0) emit(l_fin, r_fin, id, 1.0);

    // Term transitions.
    for (std::size_t ti = 0; ti < placed.size(); ++ti) {
      const PlacedTerm& t = placed[ti];
      if (j < t.first || j > t.last) continue;
      const LocalOp& op = t.ops.at(j);
      const bool starts = (j == t.first);
      const bool ends = (j == t.last);
      const int lstate = starts ? l_init : ls.find(2, static_cast<int>(ti));
      const int rstate = ends ? r_fin : rs.find(2, static_cast<int>(ti));
      TT_ASSERT(lstate >= 0 && rstate >= 0, "FSM state missing for term " << ti);
      // Coefficient attached at the first factor.
      emit(lstate, rstate, op, starts ? t.coeff : 1.0);
    }
    tensors.push_back(std::move(w));
  }

  Mpo mpo(sites_, std::move(tensors));
  if (rel_cutoff > 0.0) mpo.compress(rel_cutoff);
  return mpo;
}

}  // namespace tt::mps

// Local Hilbert-space definitions: physical index + named local operators.
//
// A SiteSet describes a uniform chain of N identical sites (the paper's two
// systems are spin-1/2 with d = 2 and electrons with d = 4). Concrete site
// types live in src/models.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "linalg/matrix.hpp"
#include "symm/index.hpp"

namespace tt::mps {

/// A named operator acting on one site: dense d×d matrix (row = bra state,
/// col = ket state) with a definite charge. Every nonzero element must obey
/// qn(bra) − qn(ket) == flux.
struct LocalOp {
  linalg::Matrix mat;
  symm::QN flux;
  bool fermionic = false;  ///< odd under fermion parity: needs a JW string
};

/// Uniform chain of identical sites with a shared operator table.
class SiteSet {
 public:
  /// `phys` must have direction In and dim-1 or larger sectors covering all d
  /// physical states. Operator matrices are validated against it.
  SiteSet(int num_sites, symm::Index phys, std::map<std::string, LocalOp> ops);

  int size() const { return num_sites_; }
  int phys_dim() const { return static_cast<int>(phys_.dim()); }
  const symm::Index& phys() const { return phys_; }
  int qn_rank() const { return phys_.sector(0).qn.rank(); }

  bool has_op(const std::string& name) const { return ops_.count(name) != 0; }
  const LocalOp& op(const std::string& name) const;

  /// Charge of physical basis state p (position within the fused dimension).
  const symm::QN& qn_of_state(index_t p) const;
  /// Sector id of physical state p.
  int sector_of_state(index_t p) const;
  /// Offset of state p within its sector.
  index_t local_of_state(index_t p) const;

  /// Product of two local operators: (a·b)(s,s'') = Σ_{s'} a(s,s')·b(s',s'').
  /// Fluxes add; result is fermionic iff exactly one factor is.
  LocalOp multiply(const LocalOp& a, const LocalOp& b) const;

 private:
  int num_sites_;
  symm::Index phys_;
  std::map<std::string, LocalOp> ops_;
  std::vector<symm::QN> state_qn_;
  std::vector<int> state_sector_;
  std::vector<index_t> state_local_;
};

using SiteSetPtr = std::shared_ptr<const SiteSet>;

}  // namespace tt::mps

#include "mps/observables.hpp"

#include <algorithm>
#include <cmath>

#include "mps/autompo.hpp"
#include "mps/measure.hpp"
#include "symm/block_factor.hpp"

namespace tt::mps {

real_t correlation(const Mps& psi, const std::string& op1, int i,
                   const std::string& op2, int j) {
  TT_CHECK(i != j, "use expect_local (or add an on-site product operator) for i == j");
  // Compile the two-point term through AutoMpo: fermionic reordering signs,
  // Jordan–Wigner strings, and charge bookkeeping are inherited from the
  // Hamiltonian machinery.
  AutoMpo ampo(psi.sites());
  ampo.add(1.0, op1, i, op2, j);
  return expectation(psi, ampo.to_mpo(0.0));
}

real_t connected_correlation(const Mps& psi, const std::string& op1, int i,
                             const std::string& op2, int j) {
  return correlation(psi, op1, i, op2, j) -
         expect_local(psi, op1, i) * expect_local(psi, op2, j);
}

std::vector<real_t> entanglement_spectrum(const Mps& psi, int bond) {
  TT_CHECK(bond >= 0 && bond + 1 < psi.size(), "bond " << bond << " out of range");
  Mps work = psi;
  work.canonicalize(bond);
  // With everything left of the center left-canonical and everything right of
  // it right-canonical, the SVD of the center site over (l,s)|(r) yields the
  // Schmidt coefficients across the bond.
  auto f = symm::block_svd(work.site(bond), {0, 1});
  std::vector<real_t> all;
  for (const auto& sv : f.singular_values) all.insert(all.end(), sv.begin(), sv.end());
  std::sort(all.rbegin(), all.rend());
  return all;
}

real_t entanglement_entropy(const Mps& psi, int bond) {
  const auto spectrum = entanglement_spectrum(psi, bond);
  real_t total = 0.0;
  for (real_t s : spectrum) total += s * s;
  TT_CHECK(total > 0.0, "state has zero norm across bond " << bond);
  real_t entropy = 0.0;
  for (real_t s : spectrum) {
    const real_t p = s * s / total;
    if (p > 1e-300) entropy -= p * std::log(p);
  }
  return entropy;
}

}  // namespace tt::mps

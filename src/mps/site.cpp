#include "mps/site.hpp"

#include "linalg/gemm.hpp"

namespace tt::mps {

SiteSet::SiteSet(int num_sites, symm::Index phys, std::map<std::string, LocalOp> ops)
    : num_sites_(num_sites), phys_(std::move(phys)), ops_(std::move(ops)) {
  TT_CHECK(num_sites_ > 0, "site set needs at least one site");
  TT_CHECK(phys_.dir() == symm::Dir::In, "physical index must have direction In");

  // State → sector lookup tables.
  state_qn_.reserve(static_cast<std::size_t>(phys_.dim()));
  state_sector_.reserve(static_cast<std::size_t>(phys_.dim()));
  state_local_.reserve(static_cast<std::size_t>(phys_.dim()));
  for (int s = 0; s < phys_.num_sectors(); ++s) {
    const auto& sec = phys_.sector(s);
    for (index_t l = 0; l < sec.dim; ++l) {
      state_qn_.push_back(sec.qn);
      state_sector_.push_back(s);
      state_local_.push_back(l);
    }
  }

  // Validate every operator: shape and charge selection rule.
  const index_t d = phys_.dim();
  for (const auto& [name, op] : ops_) {
    TT_CHECK(op.mat.rows() == d && op.mat.cols() == d,
             "operator '" << name << "' has shape " << op.mat.rows() << "x"
                          << op.mat.cols() << ", expected " << d << "x" << d);
    for (index_t b = 0; b < d; ++b)
      for (index_t k = 0; k < d; ++k)
        if (op.mat(b, k) != 0.0)
          TT_CHECK(state_qn_[static_cast<std::size_t>(b)] -
                           state_qn_[static_cast<std::size_t>(k)] ==
                       op.flux,
                   "operator '" << name << "' element (" << b << "," << k
                                << ") violates its declared flux " << op.flux.str());
  }
}

const LocalOp& SiteSet::op(const std::string& name) const {
  auto it = ops_.find(name);
  TT_CHECK(it != ops_.end(), "unknown local operator '" << name << "'");
  return it->second;
}

const symm::QN& SiteSet::qn_of_state(index_t p) const {
  TT_CHECK(p >= 0 && p < static_cast<index_t>(state_qn_.size()),
           "physical state " << p << " out of range");
  return state_qn_[static_cast<std::size_t>(p)];
}

int SiteSet::sector_of_state(index_t p) const {
  TT_CHECK(p >= 0 && p < static_cast<index_t>(state_sector_.size()),
           "physical state " << p << " out of range");
  return state_sector_[static_cast<std::size_t>(p)];
}

index_t SiteSet::local_of_state(index_t p) const {
  TT_CHECK(p >= 0 && p < static_cast<index_t>(state_local_.size()),
           "physical state " << p << " out of range");
  return state_local_[static_cast<std::size_t>(p)];
}

LocalOp SiteSet::multiply(const LocalOp& a, const LocalOp& b) const {
  LocalOp out;
  out.mat = linalg::matmul(a.mat, b.mat);
  out.flux = a.flux + b.flux;
  out.fermionic = a.fermionic != b.fermionic;
  return out;
}

}  // namespace tt::mps

#include "mps/mps.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "mps/measure.hpp"
#include "symm/block_factor.hpp"
#include "symm/block_ops.hpp"

namespace tt::mps {

using symm::BlockTensor;
using symm::Dir;
using symm::Index;
using symm::QN;
using symm::Sector;

Mps::Mps(SiteSetPtr sites, std::vector<symm::BlockTensor> tensors)
    : sites_(std::move(sites)), tensors_(std::move(tensors)) {}

Mps Mps::product_state(SiteSetPtr sites, const std::vector<int>& sector_per_site) {
  TT_CHECK(sites != nullptr, "MPS needs a site set");
  TT_CHECK(static_cast<int>(sector_per_site.size()) == sites->size(),
           "need one sector per site");
  const int n = sites->size();
  const int rank = sites->qn_rank();

  std::vector<BlockTensor> tensors;
  tensors.reserve(static_cast<std::size_t>(n));
  QN accum = QN::zero(rank);
  for (int j = 0; j < n; ++j) {
    const int sec = sector_per_site[static_cast<std::size_t>(j)];
    TT_CHECK(sec >= 0 && sec < sites->phys().num_sectors(),
             "site " << j << ": sector " << sec << " out of range");
    const QN left_q = accum;
    accum = accum + sites->phys().sector(sec).qn;
    BlockTensor t({Index::single(left_q, 1, Dir::In), sites->phys(),
                   Index::single(accum, 1, Dir::Out)},
                  QN::zero(rank));
    // Occupy the first state of the chosen sector.
    tensor::DenseTensor& blk = t.block({0, sec, 0});
    blk[0] = 1.0;
    tensors.push_back(std::move(t));
  }
  Mps psi(std::move(sites), std::move(tensors));
  psi.center_ = 0;
  return psi;
}

Mps Mps::random(SiteSetPtr sites, const QN& total, index_t m, Rng& rng) {
  TT_CHECK(sites != nullptr, "MPS needs a site set");
  TT_CHECK(m >= 1, "bond dimension must be >= 1");
  const int n = sites->size();
  const int rank = sites->qn_rank();
  TT_CHECK(total.rank() == rank, "total charge rank mismatch");

  // Charge-path counts from the left and from the right (doubles: counts can
  // reach d^N).
  std::vector<std::map<QN, double>> lcount(static_cast<std::size_t>(n + 1));
  lcount[0][QN::zero(rank)] = 1.0;
  for (int j = 0; j < n; ++j)
    for (const auto& [q, c] : lcount[static_cast<std::size_t>(j)])
      for (const Sector& s : sites->phys().sectors())
        lcount[static_cast<std::size_t>(j + 1)][q + s.qn] += c * static_cast<double>(s.dim);

  std::vector<std::map<QN, double>> rcount(static_cast<std::size_t>(n + 1));
  rcount[static_cast<std::size_t>(n)][total] = 1.0;
  for (int j = n - 1; j >= 0; --j)
    for (const auto& [q, c] : rcount[static_cast<std::size_t>(j + 1)])
      for (const Sector& s : sites->phys().sectors())
        rcount[static_cast<std::size_t>(j)][q - s.qn] += c * static_cast<double>(s.dim);

  // Bond indices: bond j sits right of site j; boundary bonds are dim-1.
  std::vector<Index> bonds;
  bonds.reserve(static_cast<std::size_t>(n) + 1);
  bonds.push_back(Index::single(QN::zero(rank), 1, Dir::Out));
  for (int j = 0; j + 1 < n; ++j) {
    std::vector<Sector> sectors;
    double wsum = 0.0;
    std::vector<std::pair<QN, double>> feasible;
    for (const auto& [q, cl] : lcount[static_cast<std::size_t>(j + 1)]) {
      auto it = rcount[static_cast<std::size_t>(j + 1)].find(q);
      if (it == rcount[static_cast<std::size_t>(j + 1)].end()) continue;
      const double w = cl * it->second;
      feasible.emplace_back(q, w);
      wsum += w;
    }
    TT_CHECK(!feasible.empty(), "charge sector " << total.str()
                                                 << " is unreachable at bond " << j);
    for (const auto& [q, w] : feasible) {
      const double cl = lcount[static_cast<std::size_t>(j + 1)].at(q);
      const double cr = rcount[static_cast<std::size_t>(j + 1)].at(q);
      // Proportional share of m, capped by the exact sector dimensions.
      index_t dim = static_cast<index_t>(
          std::floor(static_cast<double>(m) * w / wsum + 0.5));
      dim = std::max<index_t>(dim, 1);
      dim = std::min(dim, static_cast<index_t>(std::min(
                              {cl, cr, static_cast<double>(m)})));
      if (dim > 0) sectors.push_back({q, dim});
    }
    bonds.push_back(Index(sectors, Dir::Out));
  }
  bonds.push_back(Index::single(total, 1, Dir::Out));

  std::vector<BlockTensor> tensors;
  tensors.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    tensors.push_back(BlockTensor::random(
        {bonds[static_cast<std::size_t>(j)].reversed(), sites->phys(),
         bonds[static_cast<std::size_t>(j + 1)]},
        QN::zero(rank), rng));
  }
  Mps psi(std::move(sites), std::move(tensors));
  // Random blocks may include sectors unreachable through the chain
  // contraction; canonicalization prunes them and orthonormalizes.
  psi.canonicalize(0);
  psi.normalize();
  return psi;
}

const BlockTensor& Mps::site(int j) const {
  TT_CHECK(j >= 0 && j < size(), "MPS site " << j << " out of range");
  return tensors_[static_cast<std::size_t>(j)];
}

BlockTensor& Mps::site(int j) {
  TT_CHECK(j >= 0 && j < size(), "MPS site " << j << " out of range");
  return tensors_[static_cast<std::size_t>(j)];
}

void Mps::set_site(int j, BlockTensor t) {
  TT_CHECK(j >= 0 && j < size(), "MPS site " << j << " out of range");
  tensors_[static_cast<std::size_t>(j)] = std::move(t);
  center_ = -1;
}

QN Mps::total_qn() const {
  const Index& last = tensors_.back().index(2);
  TT_CHECK(last.num_sectors() == 1, "MPS last bond must have a single sector");
  return last.sector(0).qn;
}

index_t Mps::bond_dim(int j) const { return site(j).index(2).dim(); }

index_t Mps::max_bond_dim() const {
  index_t m = 0;
  for (int j = 0; j + 1 < size(); ++j) m = std::max(m, bond_dim(j));
  return m;
}

std::vector<index_t> Mps::bond_dims() const {
  std::vector<index_t> out;
  if (size() > 1) out.reserve(static_cast<std::size_t>(size() - 1));
  for (int j = 0; j + 1 < size(); ++j) out.push_back(bond_dim(j));
  return out;
}

void Mps::canonicalize(int c) {
  TT_CHECK(c >= 0 && c < size(), "canonical center " << c << " out of range");
  // Left-to-right QR up to the center.
  for (int j = 0; j < c; ++j) {
    auto f = symm::block_qr(tensors_[static_cast<std::size_t>(j)], {0, 1});
    tensors_[static_cast<std::size_t>(j)] = std::move(f.q);
    tensors_[static_cast<std::size_t>(j + 1)] =
        symm::contract(f.r, tensors_[static_cast<std::size_t>(j + 1)], {{1, 0}});
  }
  // Right-to-left LQ down to the center.
  for (int j = size() - 1; j > c; --j) {
    auto f = symm::block_lq(tensors_[static_cast<std::size_t>(j)], {0});
    tensors_[static_cast<std::size_t>(j)] = std::move(f.q);
    tensors_[static_cast<std::size_t>(j - 1)] =
        symm::contract(tensors_[static_cast<std::size_t>(j - 1)], f.l, {{2, 0}});
  }
  center_ = c;
}

real_t Mps::norm() const {
  if (center_ >= 0) return tensors_[static_cast<std::size_t>(center_)].norm2();
  return std::sqrt(std::max(0.0, overlap(*this, *this)));
}

void Mps::normalize() {
  const real_t n = norm();
  TT_CHECK(n > 0.0, "cannot normalize a zero MPS");
  if (center_ >= 0) {
    tensors_[static_cast<std::size_t>(center_)].scale(1.0 / n);
  } else {
    const real_t s = std::pow(n, -1.0 / size());
    for (auto& t : tensors_) t.scale(s);
  }
}

void Mps::check_consistency() const {
  for (int j = 0; j < size(); ++j) {
    const BlockTensor& t = tensors_[static_cast<std::size_t>(j)];
    TT_CHECK(t.order() == 3, "MPS site " << j << " must be order 3");
    TT_CHECK(t.index(0).dir() == Dir::In, "MPS site " << j << ": left bond must be In");
    TT_CHECK(t.index(1).dir() == Dir::In, "MPS site " << j << ": phys leg must be In");
    TT_CHECK(t.index(2).dir() == Dir::Out, "MPS site " << j << ": right bond must be Out");
    TT_CHECK(t.flux().is_zero(), "MPS site " << j << " must have zero flux");
    TT_CHECK(t.index(1).sectors() == sites_->phys().sectors(),
             "MPS site " << j << ": phys leg does not match the site set");
    if (j + 1 < size())
      TT_CHECK(t.index(2).contractible_with(
                   tensors_[static_cast<std::size_t>(j + 1)].index(0)),
               "MPS bond " << j << " does not match the next site's left leg");
    for (const auto& [key, blk] : t.blocks())
      TT_CHECK(t.key_allowed(key), "MPS site " << j << " has a non-conserving block");
  }
  TT_CHECK(site(0).index(0).dim() == 1, "MPS left boundary bond must have dim 1");
}

}  // namespace tt::mps

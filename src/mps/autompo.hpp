// AutoMPO-style Hamiltonian builder (modeled on the ITensor facility the
// paper uses to generate its MPOs, §V).
//
// Terms are sums of products of named local operators at sites. Fermionic
// operators are reordered with the correct anticommutation signs and receive
// Jordan–Wigner parity strings automatically. The exact finite-state-machine
// MPO (bond dimension 2 + #terms crossing each bond) is then SVD-compressed
// with a relative cutoff (paper: 1e-13, giving k = 26 for the triangular
// Hubbard XC6 cylinder).
#pragma once

#include <string>
#include <vector>

#include "mps/mpo.hpp"

namespace tt::mps {

/// One named operator applied at one site.
struct OpFactor {
  std::string name;
  int site = 0;
};

/// Accumulates Hamiltonian terms and compiles them into an MPO.
class AutoMpo {
 public:
  explicit AutoMpo(SiteSetPtr sites);

  /// Add coeff · op(f₁)·op(f₂)⋯ . Factors may be given in any order; sites
  /// may repeat (operators multiply on-site). Charge-violating or
  /// odd-fermion-parity terms are rejected.
  AutoMpo& add(real_t coeff, std::vector<OpFactor> factors);

  /// Convenience: single-site term.
  AutoMpo& add(real_t coeff, const std::string& op, int i);
  /// Convenience: two-site term.
  AutoMpo& add(real_t coeff, const std::string& op1, int i, const std::string& op2,
               int j);

  std::size_t num_terms() const { return terms_.size(); }

  /// Compile. rel_cutoff > 0 compresses each bond via SVD with
  /// σ ≤ rel_cutoff·σ_max dropped; rel_cutoff <= 0 returns the exact FSM MPO.
  /// Requires the "F" (fermion parity) and "Id" operators on the site set
  /// when fermionic terms are present (Id always).
  Mpo to_mpo(real_t rel_cutoff = 1e-13) const;

 private:
  struct Term {
    real_t coeff;
    std::vector<OpFactor> factors;
  };

  SiteSetPtr sites_;
  std::vector<Term> terms_;
};

}  // namespace tt::mps

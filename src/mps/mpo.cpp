#include "mps/mpo.hpp"

#include <algorithm>

#include "symm/block_factor.hpp"
#include "symm/block_ops.hpp"

namespace tt::mps {

using symm::BlockTensor;
using symm::Dir;

Mpo::Mpo(SiteSetPtr sites, std::vector<symm::BlockTensor> tensors)
    : sites_(std::move(sites)), tensors_(std::move(tensors)) {
  TT_CHECK(sites_ != nullptr, "MPO needs a site set");
  TT_CHECK(static_cast<int>(tensors_.size()) == sites_->size(),
           "MPO has " << tensors_.size() << " tensors for " << sites_->size()
                      << " sites");
  check_consistency();
}

const symm::BlockTensor& Mpo::site(int j) const {
  TT_CHECK(j >= 0 && j < size(), "MPO site " << j << " out of range");
  return tensors_[static_cast<std::size_t>(j)];
}

symm::BlockTensor& Mpo::site(int j) {
  TT_CHECK(j >= 0 && j < size(), "MPO site " << j << " out of range");
  return tensors_[static_cast<std::size_t>(j)];
}

index_t Mpo::bond_dim(int j) const { return site(j).index(3).dim(); }

index_t Mpo::max_bond_dim() const {
  index_t m = 0;
  for (int j = 0; j < size(); ++j) m = std::max(m, bond_dim(j));
  return m;
}

std::vector<index_t> Mpo::bond_dims() const {
  std::vector<index_t> out;
  if (size() > 1) out.reserve(static_cast<std::size_t>(size() - 1));
  for (int j = 0; j + 1 < size(); ++j) out.push_back(bond_dim(j));
  return out;
}

void Mpo::check_consistency() const {
  for (int j = 0; j < size(); ++j) {
    const BlockTensor& w = tensors_[static_cast<std::size_t>(j)];
    TT_CHECK(w.order() == 4, "MPO site " << j << " must be order 4");
    TT_CHECK(w.index(0).dir() == Dir::In, "MPO site " << j << ": left bond must be In");
    TT_CHECK(w.index(1).dir() == Dir::In, "MPO site " << j << ": bra leg must be In");
    TT_CHECK(w.index(2).dir() == Dir::Out, "MPO site " << j << ": ket leg must be Out");
    TT_CHECK(w.index(3).dir() == Dir::Out, "MPO site " << j << ": right bond must be Out");
    TT_CHECK(w.flux().is_zero(), "MPO site " << j << " must have zero flux");
    TT_CHECK(w.index(1).sectors() == sites_->phys().sectors(),
             "MPO site " << j << ": bra leg does not match the site set");
    if (j + 1 < size())
      TT_CHECK(w.index(3).contractible_with(
                   tensors_[static_cast<std::size_t>(j + 1)].index(0)),
               "MPO bond " << j << " does not match the next site's left leg");
    for (const auto& [key, blk] : w.blocks())
      TT_CHECK(w.key_allowed(key), "MPO site " << j << " has a non-conserving block");
  }
  TT_CHECK(site(0).index(0).dim() == 1, "MPO left boundary bond must have dim 1");
  TT_CHECK(site(size() - 1).index(3).dim() == 1,
           "MPO right boundary bond must have dim 1");
}

void Mpo::compress(real_t rel_cutoff) {
  if (size() < 2) return;
  symm::TruncParams trunc;
  trunc.rel_cutoff = rel_cutoff;

  // Right-to-left: split off the left bond, absorb U·S into the left
  // neighbour; W_j becomes row-orthonormal in the grouped sense.
  for (int j = size() - 1; j >= 1; --j) {
    auto f = symm::block_svd(tensors_[static_cast<std::size_t>(j)], {0}, trunc);
    tensors_[static_cast<std::size_t>(j)] = std::move(f.vt);
    tensors_[static_cast<std::size_t>(j - 1)] = symm::contract(
        tensors_[static_cast<std::size_t>(j - 1)], f.u_times_s(), {{3, 0}});
  }
  // Left-to-right: split off the right bond.
  for (int j = 0; j + 1 < size(); ++j) {
    auto f = symm::block_svd(tensors_[static_cast<std::size_t>(j)], {0, 1, 2}, trunc);
    tensors_[static_cast<std::size_t>(j)] = std::move(f.u);
    tensors_[static_cast<std::size_t>(j + 1)] = symm::contract(
        f.s_times_vt(), tensors_[static_cast<std::size_t>(j + 1)], {{1, 0}});
  }
  check_consistency();
}

}  // namespace tt::mps

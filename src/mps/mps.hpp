// Matrix product state over a SiteSet.
//
// Site tensor legs, in order: (l: left bond, In), (s: physical, In),
// (r: right bond, Out); flux 0 per site. The right bond of site j carries the
// accumulated charge of sites 0..j; the final dim-1 bond pins the global
// symmetry sector of the state.
#pragma once

#include <vector>

#include "mps/site.hpp"
#include "support/rng.hpp"
#include "symm/block_tensor.hpp"

namespace tt::mps {

/// MPS as a chain of order-3 block tensors with canonical-center tracking.
class Mps {
 public:
  Mps() = default;

  /// Product state: site j occupies physical sector state_per_site[j].
  /// All bonds have dim 1.
  static Mps product_state(SiteSetPtr sites, const std::vector<int>& sector_per_site);

  /// Random MPS in the charge sector `total`, every bond grown to (at most)
  /// m, sector dims distributed proportionally to charge-path counts — a
  /// realistic stand-in for a DMRG-grown block structure (used by benches to
  /// reach large m cheaply, like the paper's untimed growth sweeps).
  static Mps random(SiteSetPtr sites, const symm::QN& total, index_t m, Rng& rng);

  int size() const { return static_cast<int>(tensors_.size()); }
  const SiteSetPtr& sites() const { return sites_; }
  const symm::BlockTensor& site(int j) const;
  symm::BlockTensor& site(int j);

  /// Replace site j's tensor (invalidates the canonical center unless told
  /// otherwise via set_center).
  void set_site(int j, symm::BlockTensor t);

  /// Total charge of the state (single sector of the last bond).
  symm::QN total_qn() const;

  index_t bond_dim(int j) const;  ///< fused dim of the bond right of site j
  index_t max_bond_dim() const;
  std::vector<index_t> bond_dims() const;

  /// Bring to mixed-canonical form with orthogonality center at `center`
  /// (QR from the left, LQ from the right — paper §II.C).
  void canonicalize(int center);

  /// Current orthogonality center, or -1 if unknown.
  int center() const { return center_; }
  void set_center(int c) { center_ = c; }

  /// √⟨ψ|ψ⟩. O(1) when canonicalized (center-site norm), full contraction
  /// otherwise.
  real_t norm() const;

  /// Scale so that norm() == 1. Requires nonzero norm.
  void normalize();

  /// Validate leg conventions, bond matching, charge conservation.
  void check_consistency() const;

 private:
  Mps(SiteSetPtr sites, std::vector<symm::BlockTensor> tensors);

  SiteSetPtr sites_;
  std::vector<symm::BlockTensor> tensors_;
  int center_ = -1;
};

}  // namespace tt::mps

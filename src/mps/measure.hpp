// Reference contractions for measurements: overlaps and MPO expectation
// values, computed with exact block-sparse contractions (list format).
//
// These are the library-of-record implementations used by tests and examples;
// the DMRG engines keep their own cached environments.
#pragma once

#include "mps/mpo.hpp"
#include "mps/mps.hpp"

namespace tt::mps {

/// ⟨a|b⟩. States must share the site set structure and total charge.
real_t overlap(const Mps& a, const Mps& b);

/// ⟨ψ|H|ψ⟩ (not normalized — divide by overlap(psi,psi) if needed).
real_t expectation(const Mps& psi, const Mpo& h);

/// ⟨ψ|O_j|ψ⟩ for a single-site operator (ψ must be normalized for a true
/// expectation value). Canonicalizes a copy to site j internally.
real_t expect_local(const Mps& psi, const std::string& op_name, int j);

}  // namespace tt::mps

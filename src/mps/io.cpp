#include "mps/io.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tt::mps {

namespace {

using symm::BlockTensor;
using symm::Dir;
using symm::Index;
using symm::QN;

void write_qn(std::ostream& os, const QN& q) {
  os << q.rank();
  for (int c = 0; c < q.rank(); ++c) os << " " << q[c];
}

QN read_qn(std::istream& is) {
  int rank = 0;
  is >> rank;
  TT_CHECK(is && rank >= 0 && rank <= QN::kMaxRank, "corrupt QN rank");
  if (rank == 0) return QN::zero(0);
  int q0 = 0, q1 = 0;
  is >> q0;
  TT_CHECK(is, "truncated stream inside QN charges");
  if (rank == 1) return QN(q0);
  is >> q1;
  TT_CHECK(is, "truncated stream inside QN charges");
  return QN(q0, q1);
}

void write_index(std::ostream& os, const Index& idx) {
  os << (idx.dir() == Dir::In ? "I" : "O") << " " << idx.num_sectors();
  for (const auto& s : idx.sectors()) {
    os << " ";
    write_qn(os, s.qn);
    os << " " << s.dim;
  }
  os << "\n";
}

Index read_index(std::istream& is) {
  std::string dir;
  int nsec = 0;
  is >> dir >> nsec;
  TT_CHECK(is && (dir == "I" || dir == "O") && nsec > 0, "corrupt index header");
  std::vector<symm::Sector> sectors;
  for (int s = 0; s < nsec; ++s) {
    QN q = read_qn(is);
    index_t dim = 0;
    is >> dim;
    TT_CHECK(is && dim > 0, "corrupt index sector dimension");
    sectors.push_back({q, dim});
  }
  TT_CHECK(is, "corrupt index sectors");
  return Index(sectors, dir == "I" ? Dir::In : Dir::Out);
}

void write_block_tensor(std::ostream& os, const BlockTensor& t) {
  os << "TENSOR " << t.order() << " ";
  write_qn(os, t.flux());
  os << "\n";
  for (int m = 0; m < t.order(); ++m) write_index(os, t.index(m));
  os << t.num_blocks() << "\n";
  for (const auto& [key, blk] : t.blocks()) {
    for (int v : key) os << v << " ";
    os << "\n";
    for (index_t i = 0; i < blk.size(); ++i) {
      if (i) os << " ";
      write_real_hex(os, blk[i]);
    }
    os << "\n";
  }
}

BlockTensor read_block_tensor(std::istream& is) {
  std::string tag;
  int order = 0;
  is >> tag >> order;
  TT_CHECK(is && tag == "TENSOR" && order >= 0, "corrupt tensor header");
  QN flux = read_qn(is);
  std::vector<Index> indices;
  for (int m = 0; m < order; ++m) indices.push_back(read_index(is));
  BlockTensor t(indices, flux);
  int nblocks = 0;
  is >> nblocks;
  TT_CHECK(is && nblocks >= 0, "corrupt block count");
  for (int b = 0; b < nblocks; ++b) {
    symm::BlockKey key(static_cast<std::size_t>(order));
    for (int m = 0; m < order; ++m) is >> key[static_cast<std::size_t>(m)];
    TT_CHECK(is, "corrupt block key");
    tensor::DenseTensor& blk = t.block(key);  // validates conservation
    for (index_t i = 0; i < blk.size(); ++i) blk[i] = read_real_hex(is);
  }
  return t;
}

void check_phys_match(const BlockTensor& t, int mode, const SiteSet& sites) {
  TT_CHECK(t.index(mode).sectors() == sites.phys().sectors(),
           "stored tensor's physical leg does not match the site set");
}

// Reads "<magic> <version>" and rejects truncation, wrong magic, and
// unsupported versions with three distinct errors — a reader pointed at the
// wrong kind of file (or a file from a future format) says so instead of
// failing deeper in with a misleading "corrupt" message.
void read_header(std::istream& is, const char* expect_magic, int expect_version) {
  std::string magic;
  is >> magic;
  TT_CHECK(is, "truncated stream: missing " << expect_magic << " header");
  TT_CHECK(magic == expect_magic, "bad magic '" << magic << "': not a "
                                                << expect_magic << " stream");
  int version = 0;
  is >> version;
  TT_CHECK(is, "truncated stream: missing " << expect_magic << " version");
  TT_CHECK(version == expect_version,
           "unsupported " << expect_magic << " version " << version
                          << " (reader understands version " << expect_version
                          << ")");
}

}  // namespace

void write_real_hex(std::ostream& os, real_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  os << buf;
}

real_t read_real_hex(std::istream& is) {
  std::string tok;
  is >> tok;
  TT_CHECK(is, "truncated stream: missing numeric value");
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  TT_CHECK(end == tok.c_str() + tok.size() && !tok.empty(),
           "corrupt numeric value '" << tok << "'");
  return v;
}

void write_mps(std::ostream& os, const Mps& psi) {
  os << "TTMPS 1\n" << psi.size() << " " << psi.sites()->qn_rank() << "\n";
  for (int j = 0; j < psi.size(); ++j) write_block_tensor(os, psi.site(j));
}

Mps read_mps(std::istream& is, SiteSetPtr sites) {
  read_header(is, "TTMPS", 1);
  int n = 0, rank = 0;
  is >> n >> rank;
  TT_CHECK(is, "truncated stream: missing TTMPS size header");
  TT_CHECK(sites && sites->size() == n,
           "stream holds " << n << " sites, site set has "
                           << (sites ? sites->size() : 0));
  TT_CHECK(sites->qn_rank() == rank, "QN rank mismatch");

  // Build a scaffold state, then replace every tensor.
  Mps psi = Mps::product_state(sites, std::vector<int>(static_cast<std::size_t>(n), 0));
  for (int j = 0; j < n; ++j) {
    BlockTensor t = read_block_tensor(is);
    check_phys_match(t, 1, *sites);
    psi.set_site(j, std::move(t));
  }
  psi.check_consistency();
  return psi;
}

void write_mpo(std::ostream& os, const Mpo& h) {
  os << "TTMPO 1\n" << h.size() << " " << h.sites()->qn_rank() << "\n";
  for (int j = 0; j < h.size(); ++j) write_block_tensor(os, h.site(j));
}

Mpo read_mpo(std::istream& is, SiteSetPtr sites) {
  read_header(is, "TTMPO", 1);
  int n = 0, rank = 0;
  is >> n >> rank;
  TT_CHECK(is, "truncated stream: missing TTMPO size header");
  TT_CHECK(sites && sites->size() == n, "MPO site count mismatch");
  TT_CHECK(sites->qn_rank() == rank, "QN rank mismatch");
  std::vector<BlockTensor> tensors;
  for (int j = 0; j < n; ++j) {
    tensors.push_back(read_block_tensor(is));
    check_phys_match(tensors.back(), 1, *sites);
  }
  return Mpo(std::move(sites), std::move(tensors));  // validates consistency
}

void save_mps(const std::string& path, const Mps& psi) {
  std::ofstream os(path);
  TT_CHECK(os.good(), "cannot open '" << path << "' for writing");
  write_mps(os, psi);
}

Mps load_mps(const std::string& path, SiteSetPtr sites) {
  std::ifstream is(path);
  TT_CHECK(is.good(), "cannot open '" << path << "' for reading");
  return read_mps(is, std::move(sites));
}

void save_mpo(const std::string& path, const Mpo& h) {
  std::ofstream os(path);
  TT_CHECK(os.good(), "cannot open '" << path << "' for writing");
  write_mpo(os, h);
}

Mpo load_mpo(const std::string& path, SiteSetPtr sites) {
  std::ifstream is(path);
  TT_CHECK(is.good(), "cannot open '" << path << "' for reading");
  return read_mpo(is, std::move(sites));
}

}  // namespace tt::mps

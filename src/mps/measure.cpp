#include "mps/measure.hpp"

#include "symm/block_ops.hpp"

namespace tt::mps {

using symm::BlockTensor;
using symm::Dir;
using symm::Index;
using symm::QN;

namespace {

// Environment legs: (bra In, ket Out) for overlaps; (bra In, mpo Out, ket Out)
// for expectation values. Boundaries are dim-1 charge-0 tensors.
BlockTensor overlap_boundary(int rank) {
  BlockTensor e({Index::single(QN::zero(rank), 1, Dir::In),
                 Index::single(QN::zero(rank), 1, Dir::Out)},
                QN::zero(rank));
  e.block({0, 0})[0] = 1.0;
  return e;
}

BlockTensor expect_boundary(int rank) {
  BlockTensor e({Index::single(QN::zero(rank), 1, Dir::In),
                 Index::single(QN::zero(rank), 1, Dir::Out),
                 Index::single(QN::zero(rank), 1, Dir::Out)},
                QN::zero(rank));
  e.block({0, 0, 0})[0] = 1.0;
  return e;
}

real_t scalar_of(const BlockTensor& t) {
  // Fully contracted chains leave an all-dim-1 tensor.
  real_t v = 0.0;
  for (const auto& [key, blk] : t.blocks()) {
    TT_ASSERT(blk.size() == 1, "expected a scalar-like block");
    v += blk[0];
  }
  return v;
}

}  // namespace

real_t overlap(const Mps& a, const Mps& b) {
  TT_CHECK(a.size() == b.size(), "overlap of differently-sized MPS");
  TT_CHECK(a.total_qn() == b.total_qn(),
           "overlap of states in different charge sectors is zero by symmetry");
  const int rank = a.sites()->qn_rank();
  BlockTensor e = overlap_boundary(rank);
  for (int j = 0; j < a.size(); ++j) {
    // e(bra,ket) · a_j†(l,s,r) over bra:  → (ket, s, r_bra)
    BlockTensor t1 = symm::contract(e, a.site(j).dagger(), {{0, 0}});
    // · b_j(l,s,r) over (ket leg, s):     → (r_bra, r_ket)
    e = symm::contract(t1, b.site(j), {{0, 0}, {1, 1}});
  }
  return scalar_of(e);
}

real_t expectation(const Mps& psi, const Mpo& h) {
  TT_CHECK(psi.size() == h.size(), "MPS/MPO size mismatch");
  const int rank = psi.sites()->qn_rank();
  BlockTensor e = expect_boundary(rank);
  for (int j = 0; j < psi.size(); ++j) {
    // e(bra,mpo,ket) · ψ_j†(l,s,r) over bra      → (mpo, ket, s_bra, r_bra)
    BlockTensor t1 = symm::contract(e, psi.site(j).dagger(), {{0, 0}});
    // · W_j(k,s,s',k') over (mpo,k) and (s_bra,s) → (ket, r_bra, s', k')
    BlockTensor t2 = symm::contract(t1, h.site(j), {{0, 0}, {2, 1}});
    // · ψ_j(l,s',r) over (ket,l) and (s',s)       → (r_bra, k', r_ket)
    e = symm::contract(t2, psi.site(j), {{0, 0}, {2, 1}});
  }
  return scalar_of(e);
}

real_t expect_local(const Mps& psi, const std::string& op_name, int j) {
  TT_CHECK(j >= 0 && j < psi.size(), "site " << j << " out of range");
  Mps work = psi;
  work.canonicalize(j);
  const LocalOp& op = work.sites()->op(op_name);
  TT_CHECK(op.flux.is_zero(),
           "expect_local requires a charge-neutral operator, got flux "
               << op.flux.str());

  // Build the order-2 block operator (bra In, ket Out) from the matrix.
  const Index& phys = work.sites()->phys();
  BlockTensor o({phys, phys.reversed()}, QN::zero(work.sites()->qn_rank()));
  const index_t d = phys.dim();
  for (index_t b = 0; b < d; ++b)
    for (index_t k = 0; k < d; ++k)
      if (op.mat(b, k) != 0.0) {
        const int sb = work.sites()->sector_of_state(b);
        const int sk = work.sites()->sector_of_state(k);
        o.block({sb, sk})
            .at({work.sites()->local_of_state(b), work.sites()->local_of_state(k)}) =
            op.mat(b, k);
      }

  const symm::BlockTensor& c = work.site(j);
  // ⟨c| O |c⟩: contract ket with O, then with bra.
  BlockTensor oc = symm::contract(o, c, {{1, 1}});   // (s_bra, l, r)
  BlockTensor resh = symm::contract(c.dagger(), oc, {{0, 1}, {1, 0}, {2, 2}});
  return scalar_of(resh);
}

}  // namespace tt::mps

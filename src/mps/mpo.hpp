// Matrix product operator over a SiteSet.
//
// Site tensor legs, in order: (k: left bond, In), (s: bra physical, In),
// (s': ket physical, Out), (k': right bond, Out); flux 0 per site. MPO bonds
// carry the accumulated charge of the partially-applied operator string.
// Boundary bonds are dim-1 with charge 0.
#pragma once

#include <vector>

#include "mps/site.hpp"
#include "symm/block_tensor.hpp"

namespace tt::mps {

/// MPO as a chain of order-4 block tensors.
class Mpo {
 public:
  Mpo() = default;
  Mpo(SiteSetPtr sites, std::vector<symm::BlockTensor> tensors);

  int size() const { return static_cast<int>(tensors_.size()); }
  const SiteSetPtr& sites() const { return sites_; }
  const symm::BlockTensor& site(int j) const;
  symm::BlockTensor& site(int j);

  /// Bond dimension between sites j and j+1 (fused dim of the right leg).
  index_t bond_dim(int j) const;
  /// Max bond dimension k across the chain.
  index_t max_bond_dim() const;
  std::vector<index_t> bond_dims() const;

  /// Validate leg conventions, bond matching between neighbours, and charge
  /// conservation of every block. Throws tt::Error on violation.
  void check_consistency() const;

  /// SVD-compress every bond with the given relative cutoff (paper §VI.B:
  /// 1e-13 — compresses the triangular-Hubbard XC6 MPO to k = 26). Two
  /// sweeps: right-to-left then left-to-right.
  void compress(real_t rel_cutoff = 1e-13);

 private:
  SiteSetPtr sites_;
  std::vector<symm::BlockTensor> tensors_;
};

}  // namespace tt::mps

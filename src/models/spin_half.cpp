#include "models/spin_half.hpp"

namespace tt::models {

using linalg::Matrix;
using mps::LocalOp;
using symm::Dir;
using symm::Index;
using symm::QN;

mps::SiteSetPtr spin_half_sites(int n) {
  // state 0 = ↑ (charge +1), state 1 = ↓ (charge −1).
  Index phys({{QN(1), 1}, {QN(-1), 1}}, Dir::In);

  std::map<std::string, LocalOp> ops;

  Matrix id(2, 2);
  id(0, 0) = id(1, 1) = 1.0;
  ops["Id"] = {id, QN(0), false};
  ops["F"] = {id, QN(0), false};  // spins carry no fermion parity

  Matrix sz(2, 2);
  sz(0, 0) = 0.5;
  sz(1, 1) = -0.5;
  ops["Sz"] = {sz, QN(0), false};

  Matrix sp(2, 2);
  sp(0, 1) = 1.0;  // S+|↓⟩ = |↑⟩
  ops["S+"] = {sp, QN(2), false};

  Matrix sm(2, 2);
  sm(1, 0) = 1.0;  // S-|↑⟩ = |↓⟩
  ops["S-"] = {sm, QN(-2), false};

  return std::make_shared<const mps::SiteSet>(n, phys, std::move(ops));
}

}  // namespace tt::models

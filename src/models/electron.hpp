// Electron site set (the paper's d = 4 "electrons" system).
//
// Two U(1) charges per label: (N, 2·Sz) — the doubled symmetry that drives
// the much larger block count / sparsity of the Hubbard workload (Fig 2).
// Fermionic operators follow the site-major Jordan–Wigner convention
// (mode order: 1↑, 1↓, 2↑, 2↓, …); the intra-site string is baked into Cdn.
#pragma once

#include "mps/site.hpp"

namespace tt::models {

/// Chain of `n` electron sites. Physical states:
/// 0 = |0⟩ (0,0), 1 = |↑⟩ (1,+1), 2 = |↓⟩ (1,−1), 3 = |↑↓⟩ (2,0).
mps::SiteSetPtr electron_sites(int n);

}  // namespace tt::models

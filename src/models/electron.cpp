#include "models/electron.hpp"

namespace tt::models {

using linalg::Matrix;
using mps::LocalOp;
using symm::Dir;
using symm::Index;
using symm::QN;

mps::SiteSetPtr electron_sites(int n) {
  Index phys({{QN(0, 0), 1}, {QN(1, 1), 1}, {QN(1, -1), 1}, {QN(2, 0), 1}}, Dir::In);

  std::map<std::string, LocalOp> ops;
  auto diag = [](double a, double b, double c, double d) {
    Matrix m(4, 4);
    m(0, 0) = a;
    m(1, 1) = b;
    m(2, 2) = c;
    m(3, 3) = d;
    return m;
  };

  ops["Id"] = {diag(1, 1, 1, 1), QN(0, 0), false};
  ops["F"] = {diag(1, -1, -1, 1), QN(0, 0), false};  // (−1)^(n↑+n↓)
  ops["Nup"] = {diag(0, 1, 0, 1), QN(0, 0), false};
  ops["Ndn"] = {diag(0, 0, 1, 1), QN(0, 0), false};
  ops["Ntot"] = {diag(0, 1, 1, 2), QN(0, 0), false};
  ops["Nupdn"] = {diag(0, 0, 0, 1), QN(0, 0), false};
  ops["Sz"] = {diag(0, 0.5, -0.5, 0), QN(0, 0), false};

  // Annihilators in the basis {|0⟩, |↑⟩, |↓⟩, |↑↓⟩ = c†↑c†↓|0⟩}.
  // Cup: ⟨0|c↑|↑⟩ = 1, ⟨↓|c↑|↑↓⟩ = +1 (c↑ anticommutes past nothing).
  Matrix cup(4, 4);
  cup(0, 1) = 1.0;
  cup(2, 3) = 1.0;
  ops["Cup"] = {cup, QN(-1, -1), true};

  // Cdn includes the intra-site string: ⟨0|c↓|↓⟩ = 1, ⟨↑|c↓|↑↓⟩ = −1
  // (c↓ anticommutes past c†↑).
  Matrix cdn(4, 4);
  cdn(0, 2) = 1.0;
  cdn(1, 3) = -1.0;
  ops["Cdn"] = {cdn, QN(-1, 1), true};

  ops["Cdagup"] = {cup.transposed(), QN(1, 1), true};
  ops["Cdagdn"] = {cdn.transposed(), QN(1, -1), true};

  // Spin raising/lowering (for completeness / t-J-style measurements).
  Matrix splus(4, 4);
  splus(1, 2) = 1.0;  // S+|↓⟩ = |↑⟩
  ops["S+"] = {splus, QN(0, 2), false};
  ops["S-"] = {splus.transposed(), QN(0, -2), false};

  return std::make_shared<const mps::SiteSet>(n, phys, std::move(ops));
}

}  // namespace tt::models

#include "models/heisenberg.hpp"

namespace tt::models {

mps::AutoMpo heisenberg_terms(mps::SiteSetPtr sites, const Lattice& lat, double j1,
                              double j2) {
  TT_CHECK(sites->size() == lat.num_sites,
           "site set has " << sites->size() << " sites, lattice " << lat.num_sites);
  mps::AutoMpo ampo(std::move(sites));
  for (const Bond& b : lat.bonds) {
    const double j = (b.type == 0) ? j1 : j2;
    if (j == 0.0) continue;
    // S_i·S_j = Sz_i Sz_j + (S+_i S-_j + S-_i S+_j)/2.
    ampo.add(j, "Sz", b.s1, "Sz", b.s2);
    ampo.add(0.5 * j, "S+", b.s1, "S-", b.s2);
    ampo.add(0.5 * j, "S-", b.s1, "S+", b.s2);
  }
  return ampo;
}

mps::Mpo heisenberg_mpo(mps::SiteSetPtr sites, const Lattice& lat, double j1,
                        double j2, double rel_cutoff) {
  return heisenberg_terms(std::move(sites), lat, j1, j2).to_mpo(rel_cutoff);
}

}  // namespace tt::models

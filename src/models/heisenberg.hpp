// J1–J2 Heisenberg Hamiltonian (the paper's "spins" benchmark, §V):
//   H = J1 Σ_⟨i,j⟩ S_i·S_j + J2 Σ_⟨⟨i,j⟩⟩ S_i·S_j
// over a lattice whose type-0 bonds carry J1 and type-1 bonds J2. The paper
// studies the 2D square cylinder at J2/J1 = 0.5.
#pragma once

#include "models/lattice.hpp"
#include "mps/autompo.hpp"

namespace tt::models {

/// Builds the AutoMpo for the Heisenberg model on `lat` (spin-1/2 sites).
mps::AutoMpo heisenberg_terms(mps::SiteSetPtr sites, const Lattice& lat, double j1,
                              double j2 = 0.0);

/// Convenience: compiled MPO with the given compression cutoff.
mps::Mpo heisenberg_mpo(mps::SiteSetPtr sites, const Lattice& lat, double j1,
                        double j2 = 0.0, double rel_cutoff = 1e-13);

}  // namespace tt::models

// Spin-1/2 site set (the paper's d = 2 "spins" system).
//
// U(1) charge = 2·Sz (kept integral). Operators: Id, Sz, S+ (flux +2),
// S- (flux −2), F (= Id; spins are bosonic).
#pragma once

#include "mps/site.hpp"

namespace tt::models {

/// Chain of `n` spin-1/2 sites. Physical states: 0 = ↑ (2Sz = +1), 1 = ↓.
mps::SiteSetPtr spin_half_sites(int n);

}  // namespace tt::models

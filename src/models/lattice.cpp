#include "models/lattice.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>

#include "support/error.hpp"

namespace tt::models {

namespace {

// Deduplicating bond collector: normalizes (s1,s2) order and drops repeats
// (periodic wrap on tiny circumferences can generate the same bond twice).
class BondSet {
 public:
  void add(int a, int b, int type) {
    if (a == b) return;  // self-bonds can appear for circumference 1
    if (a > b) std::swap(a, b);
    if (seen_.insert(std::make_tuple(a, b, type)).second)
      bonds_.push_back({a, b, type});
  }
  std::vector<Bond> take() { return std::move(bonds_); }

 private:
  std::set<std::tuple<int, int, int>> seen_;
  std::vector<Bond> bonds_;
};

}  // namespace

int Lattice::site(int x, int y) const {
  TT_CHECK(x >= 0 && x < length, "column " << x << " out of range");
  const int yy = ((y % circumference) + circumference) % circumference;
  return x * circumference + yy;
}

int Lattice::num_bonds(int type) const {
  int n = 0;
  for (const Bond& b : bonds)
    if (b.type == type) ++n;
  return n;
}

Lattice chain(int n) {
  TT_CHECK(n >= 2, "chain needs at least two sites");
  Lattice lat;
  lat.name = "chain-" + std::to_string(n);
  lat.length = n;
  lat.circumference = 1;
  lat.num_sites = n;
  lat.bonds.reserve(static_cast<std::size_t>(n - 1));
  for (int i = 0; i + 1 < n; ++i) lat.bonds.push_back({i, i + 1, 0});
  return lat;
}

Lattice square_cylinder(int lx, int ly, bool diagonals) {
  TT_CHECK(lx >= 2 && ly >= 2, "cylinder needs lx, ly >= 2");
  Lattice lat;
  lat.name = (diagonals ? "square-j1j2-" : "square-") + std::to_string(lx) + "x" +
             std::to_string(ly);
  lat.length = lx;
  lat.circumference = ly;
  lat.num_sites = lx * ly;

  BondSet bs;
  for (int x = 0; x < lx; ++x) {
    for (int y = 0; y < ly; ++y) {
      const int s = lat.site(x, y);
      bs.add(s, lat.site(x, y + 1), 0);                    // around the cylinder
      if (x + 1 < lx) bs.add(s, lat.site(x + 1, y), 0);    // along the axis
      if (diagonals && x + 1 < lx) {
        bs.add(s, lat.site(x + 1, y + 1), 1);
        bs.add(s, lat.site(x + 1, y - 1), 1);
      }
    }
  }
  lat.bonds = bs.take();
  return lat;
}

Lattice triangular_cylinder(int lx, int ly) {
  TT_CHECK(lx >= 2 && ly >= 2, "cylinder needs lx, ly >= 2");
  Lattice lat;
  lat.name = "triangular-" + std::to_string(lx) + "x" + std::to_string(ly);
  lat.length = lx;
  lat.circumference = ly;
  lat.num_sites = lx * ly;

  BondSet bs;
  for (int x = 0; x < lx; ++x) {
    for (int y = 0; y < ly; ++y) {
      const int s = lat.site(x, y);
      bs.add(s, lat.site(x, y + 1), 0);
      if (x + 1 < lx) {
        bs.add(s, lat.site(x + 1, y), 0);
        bs.add(s, lat.site(x + 1, y + 1), 0);  // triangular diagonal
      }
    }
  }
  lat.bonds = bs.take();
  return lat;
}

std::string render(const Lattice& lat) {
  std::ostringstream os;
  os << lat.name << ": " << lat.num_sites << " sites (" << lat.length
     << " columns x " << lat.circumference << " around), " << lat.bonds.size()
     << " bonds";
  for (int type : {0, 1}) {
    const int n = lat.num_bonds(type);
    if (n) os << "; type-" << type << ": " << n;
  }
  os << "\n";
  // Column-major grid with site ids.
  for (int y = 0; y < lat.circumference; ++y) {
    for (int x = 0; x < lat.length; ++x) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "%4d", lat.site(x, y));
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace tt::models

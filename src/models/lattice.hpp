// Lattice geometries for the two benchmark systems (paper Fig 4): square
// cylinders (J1–J2 Heisenberg) and triangular cylinders (Hubbard), plus a
// plain chain. Sites are ordered column-major (the DMRG path snakes through
// columns of the cylinder), periodic around the circumference, open along the
// length.
#pragma once

#include <string>
#include <vector>

namespace tt::models {

/// Undirected coupling between two sites. `type` distinguishes coupling
/// classes: 0 = nearest neighbour (J1 / t), 1 = next-nearest (J2).
struct Bond {
  int s1 = 0, s2 = 0;
  int type = 0;
};

/// A finite lattice mapped to a 1D site ordering.
struct Lattice {
  std::string name;
  int length = 0;        ///< columns (open direction)
  int circumference = 0; ///< rows (periodic direction; 1 for a chain)
  int num_sites = 0;
  std::vector<Bond> bonds;

  /// Column-major site id: column x, row y.
  int site(int x, int y) const;

  int num_bonds(int type) const;
};

/// Open 1D chain of n sites (nearest-neighbour bonds only).
Lattice chain(int n);

/// lx × ly square cylinder: periodic in y, open in x. With `diagonals`,
/// next-nearest (J2) bonds of type 1 are added — the J1–J2 geometry.
Lattice square_cylinder(int lx, int ly, bool diagonals);

/// lx × ly triangular cylinder: square cylinder + one family of (x,y)→
/// (x+1,y+1) diagonals, all of type 0 — every site has six neighbours, the
/// standard mapping of the triangular lattice onto a cylinder.
Lattice triangular_cylinder(int lx, int ly);

/// ASCII rendering of the lattice (bond lists per class) — paper Fig 4 in
/// text form.
std::string render(const Lattice& lat);

}  // namespace tt::models

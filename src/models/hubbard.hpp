// Hubbard Hamiltonian (the paper's "electrons" benchmark, §V):
//   H = −t Σ_{⟨i,j⟩,σ} (c†_iσ c_jσ + h.c.) + U Σ_i n_i↑ n_i↓
// The paper studies the triangular cylinder at t = 1, U = 8.5, half filling.
#pragma once

#include "models/lattice.hpp"
#include "mps/autompo.hpp"

namespace tt::models {

/// Builds the AutoMpo for the Hubbard model on `lat` (electron sites).
mps::AutoMpo hubbard_terms(mps::SiteSetPtr sites, const Lattice& lat, double t,
                           double u);

/// Convenience: compiled MPO with the given compression cutoff.
mps::Mpo hubbard_mpo(mps::SiteSetPtr sites, const Lattice& lat, double t, double u,
                     double rel_cutoff = 1e-13);

}  // namespace tt::models

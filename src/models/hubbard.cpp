#include "models/hubbard.hpp"

namespace tt::models {

mps::AutoMpo hubbard_terms(mps::SiteSetPtr sites, const Lattice& lat, double t,
                           double u) {
  TT_CHECK(sites->size() == lat.num_sites,
           "site set has " << sites->size() << " sites, lattice " << lat.num_sites);
  mps::AutoMpo ampo(std::move(sites));
  for (const Bond& b : lat.bonds) {
    if (t == 0.0) break;
    // −t (c†_iσ c_jσ + c†_jσ c_iσ) for both spin species; Jordan–Wigner
    // strings are inserted by AutoMpo.
    ampo.add(-t, "Cdagup", b.s1, "Cup", b.s2);
    ampo.add(-t, "Cdagup", b.s2, "Cup", b.s1);
    ampo.add(-t, "Cdagdn", b.s1, "Cdn", b.s2);
    ampo.add(-t, "Cdagdn", b.s2, "Cdn", b.s1);
  }
  if (u != 0.0)
    for (int i = 0; i < lat.num_sites; ++i) ampo.add(u, "Nupdn", i);
  return ampo;
}

mps::Mpo hubbard_mpo(mps::SiteSetPtr sites, const Lattice& lat, double t, double u,
                     double rel_cutoff) {
  return hubbard_terms(std::move(sites), lat, t, u).to_mpo(rel_cutoff);
}

}  // namespace tt::models

// Process-level transport for the distributed block scheduler.
//
// A Channel is one bidirectional point-to-point link carrying length-prefixed
// frames (magic, tag, payload length, payload checksum, payload) over a
// SOCK_STREAM socketpair.
// Every operation is poll()-driven with a deadline, so a dead or wedged peer
// surfaces as tt::Error instead of a hang; a peer that disappears mid-frame
// (EOF inside a payload) is detected by the length prefix and reported as a
// truncation, never returned as partial data. Byte and wall-time counters
// make communication a *measured* quantity for the scheduler's cost
// accounting.
//
// A WorkerGroup owns N-1 worker ranks, each connected to the calling (root)
// process by one Channel. Two spawn modes share the protocol code:
//
//   kProcess  fork()ed child processes — the real multi-process runtime in
//             this container (the MPI slot-in point; see docs/ARCHITECTURE.md).
//             Children call support::notify_fork_child() before any tensor
//             work and never return into the parent's code (exit via _exit).
//   kThread   in-process worker threads over the same socketpairs — identical
//             wire behaviour, fork-free, so the transport and scheduler logic
//             run under ThreadSanitizer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/fault.hpp"
#include "runtime/wire.hpp"
#include "support/types.hpp"

namespace tt::rt {

/// How worker ranks are spawned (see file header).
enum class SpawnMode { kProcess, kThread };

const char* spawn_mode_name(SpawnMode m);

/// TT_SCHED_MODE environment knob: "process" (default) or "thread".
/// Unknown values throw.
SpawnMode spawn_mode_from_env();

/// One received frame.
struct Frame {
  std::uint32_t tag = 0;
  std::vector<std::byte> payload;
};

/// Framed point-to-point link over one socket descriptor (non-blocking,
/// poll()-driven). Move-only; closes the descriptor on destruction.
class Channel {
 public:
  Channel() = default;
  explicit Channel(int fd);
  ~Channel();

  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&& other) noexcept;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  bool open() const { return fd_ >= 0; }
  void close();

  /// Send one frame. Throws tt::Error on peer loss (EPIPE/reset) or when the
  /// peer stops draining for longer than `timeout_seconds`. Fault points
  /// `frame.delay`, `frame.truncate`, and `payload.corrupt` are evaluated
  /// here against the channel's fault context (set_fault_peer).
  void send_frame(std::uint32_t tag, const std::vector<std::byte>& payload,
                  double timeout_seconds);

  /// Receive one frame. Throws tt::Error on EOF (peer closed/died), bad
  /// framing (wrong magic — stream desync), truncation mid-frame, payload
  /// checksum mismatch (corruption), or when no complete frame arrives
  /// within `timeout_seconds`.
  Frame recv_frame(double timeout_seconds);

  /// Fault-injection context: which rank this channel talks for/to and which
  /// side of the link this end is. Channels default to {-1, kAny} (only
  /// unrestricted specs match); the scheduler tags both ends of every
  /// root<->worker link.
  void set_fault_peer(int rank, FaultSide side) {
    fault_rank_ = rank;
    fault_side_ = side;
  }

  /// Connected socketpair (both ends non-blocking).
  static std::pair<Channel, Channel> make_pair();

  // Measured transport quantities, accumulated over the channel lifetime.
  double bytes_sent() const { return bytes_sent_; }
  double bytes_received() const { return bytes_received_; }
  double send_seconds() const { return send_seconds_; }
  double recv_seconds() const { return recv_seconds_; }

 private:
  void write_all(const std::byte* p, std::size_t n, double timeout_seconds);
  void read_all(std::byte* p, std::size_t n, double timeout_seconds,
                bool eof_is_truncation);

  int fd_ = -1;
  int fault_rank_ = -1;
  FaultSide fault_side_ = FaultSide::kAny;
  double bytes_sent_ = 0.0;
  double bytes_received_ = 0.0;
  double send_seconds_ = 0.0;
  double recv_seconds_ = 0.0;
};

/// N-1 worker ranks (1..num_ranks-1), each running `fn(rank, channel)` and
/// connected to the creating process (rank 0) by one Channel.
class WorkerGroup {
 public:
  using WorkerFn = std::function<void(int rank, Channel& to_root)>;

  /// Spawns the workers immediately. In process mode the calling thread must
  /// not hold locks that tensor code takes (fork duplicates lock state); the
  /// scheduler constructs groups only from quiescent, non-parallel context.
  WorkerGroup(int num_ranks, SpawnMode mode, WorkerFn fn);

  /// Terminates hard (kill + reap / close + join) if join() was not called.
  ~WorkerGroup();

  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  int num_ranks() const { return num_ranks_; }
  SpawnMode mode() const { return mode_; }

  /// Root-side channel to worker `rank` (1 <= rank < num_ranks).
  Channel& channel(int rank);

  /// Fault injection (process mode only): SIGKILL worker `rank` and wait for
  /// it to die, so a subsequent exchange observes a dead peer.
  void kill(int rank);

  /// Tear down one worker without touching the others: close its root-side
  /// channel, then SIGKILL + reap (process mode) or join (thread mode; the
  /// closed channel wakes a blocked worker). Idempotent — retiring an
  /// already-dead or already-retired rank is a no-op beyond the cleanup.
  void retire(int rank);

  /// retire(rank) then spawn a fresh worker on a fresh channel in its place —
  /// the self-healing scheduler's recovery primitive. Throws if spawning
  /// fails; the rank is then retired.
  void respawn(int rank);

  /// Graceful teardown after the protocol-level shutdown message: reap child
  /// processes (escalating to SIGKILL after `timeout_seconds`) or join worker
  /// threads (root channels are closed first so blocked workers wake up).
  void join(double timeout_seconds = 10.0);

 private:
  void spawn_rank(int rank);

  int num_ranks_ = 1;
  SpawnMode mode_ = SpawnMode::kProcess;
  WorkerFn fn_;                            // kept for respawn()
  std::vector<Channel> root_channels_;     // index 0 unused
  std::vector<long> child_pids_;           // process mode; index 0 unused
  std::vector<std::thread> worker_threads_;  // thread mode; index = rank, 0 unused
  std::vector<std::unique_ptr<Channel>> worker_channels_;  // thread mode
  bool joined_ = false;
};

}  // namespace tt::rt

#include "runtime/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/svd.hpp"
#include "support/error.hpp"

namespace tt::rt {

namespace {

constexpr double kWordBytes = 8.0;  // double precision

double log2p(int p) { return std::log2(std::max(2, p)); }

// Network time for `words` words leaving each node's NIC, plus one global
// synchronization. Bandwidth is shared by all processes on a node.
double net_seconds(const Cluster& c, double words_per_proc) {
  const double bytes = words_per_proc * kWordBytes * c.procs_per_node;
  return bytes / (c.machine.net_bandwidth_gbs * 1e9);
}

double sync_seconds(const Cluster& c) {
  if (c.total_procs() <= 1) return 0.0;
  return c.machine.net_latency_us * 1e-6 * log2p(c.total_procs());
}

}  // namespace

void charge_contraction(const Cluster& cluster, CostTracker& t,
                        const ContractionCost& cost, Layout layout,
                        const CostModelParams& params) {
  TT_CHECK(cost.flops >= 0.0, "negative flop count");
  const int p = cluster.total_procs();
  const double rate = cluster.cluster_gflops() * 1e9;

  t.add_flops(cost.flops);

  if (layout == Layout::kLocal) {
    // Single-node baseline: all flops at one node's rate, no network.
    const double node_rate = cluster.machine.node_gflops * 1e9;
    t.add_time(Category::kGemm, cost.flops / node_rate);
    return;
  }

  // --- compute time + load imbalance ---------------------------------------
  double eff_rate = rate;
  if (layout == Layout::kFusedSparse2D)
    eff_rate *= cluster.machine.sparse_efficiency;

  const double ideal = cost.flops / eff_rate;
  // Processes that cannot be fed min_flops_per_proc of work idle; the excess
  // over the ideal time is booked as load imbalance (list engine: small
  // quantum-number blocks cannot fill the machine).
  const double p_use = std::clamp(cost.flops / params.min_flops_per_proc, 1.0,
                                  static_cast<double>(p));
  const double actual = cost.flops / (eff_rate * p_use / p);
  t.add_time(Category::kGemm, ideal);
  if (actual > ideal) t.add_time(Category::kImbalance, actual - ideal);

  // --- communication --------------------------------------------------------
  double words_per_proc = 0.0;
  switch (layout) {
    case Layout::kBlockDense3D:
      // 3D algorithm with sufficient replication memory.
      words_per_proc = params.summa_coef * cost.total_words() /
                       std::pow(static_cast<double>(p), 2.0 / 3.0);
      break;
    case Layout::kFusedDense2D:
      // Memory-limited 2D algorithm over the fused (dense) tensor.
      words_per_proc = params.summa_coef * cost.total_words() /
                       std::sqrt(static_cast<double>(p));
      break;
    case Layout::kFusedSparse2D:
      // 2D over nonzeros, with per-nonzero index traffic.
      words_per_proc = params.summa_coef * (1.0 + params.sparse_index_words) *
                       cost.total_words() / std::sqrt(static_cast<double>(p));
      break;
    case Layout::kLocal:
      break;
  }
  t.add_words(words_per_proc);
  t.add_supersteps(1.0);
  t.add_time(Category::kComm, net_seconds(cluster, words_per_proc) + sync_seconds(cluster));

  // --- local reordering + mapping ("CTF transposition") --------------------
  charge_transpose(cluster, t, cost.total_words(), params);
  // Per-contraction mapping/launch overhead; serial, so priced by core speed
  // relative to a 5 GF/s reference core.
  const double serial_scale = 5.0 / std::max(0.1, cluster.machine.core_gflops);
  t.add_time(Category::kTranspose,
             cluster.machine.block_overhead_us * 1e-6 * serial_scale);
}

void charge_svd(const Cluster& cluster, CostTracker& t, index_t rows,
                index_t cols, const CostModelParams& params) {
  const int p = cluster.total_procs();
  const double flops = linalg::svd_flops(rows, cols);
  t.add_flops(flops);
  // ScaLAPACK-style SVD strong-scales only until the panel width saturates:
  // beyond roughly (n/64)^2 processes extra ranks contribute nothing. The
  // parallelism limit is judged at equivalent scale (params.svd_scale).
  const double n = static_cast<double>(std::min(rows, cols));
  const double n_eq = n * params.svd_scale;
  const double p_svd =
      std::clamp((n_eq / 64.0) * (n_eq / 64.0), 1.0, static_cast<double>(p));
  const double rate = cluster.cluster_gflops() * 1e9 *
                      cluster.machine.svd_efficiency * (p_svd / p);
  t.add_time(Category::kSvd, flops / rate);
  // pdgesvd-internal MPI is charged to SVD, matching the paper's attribution
  // ("communication costs ... excluding those in SVD"): standard 2D volume
  // n²/√p words per process.
  const double words = n * n / std::sqrt(static_cast<double>(p));
  t.add_words(words);
  t.add_supersteps(std::max(1.0, n_eq / 32.0));  // panelized factorization syncs
  t.add_time(Category::kSvd,
             net_seconds(cluster, words) +
                 sync_seconds(cluster) * std::max(1.0, n_eq / 32.0));
}

void charge_transpose(const Cluster& cluster, CostTracker& t, double words,
                      const CostModelParams& params) {
  const double bytes = params.transpose_passes * words * kWordBytes;
  const double bw = cluster.machine.mem_bandwidth_gbs * 1e9 * cluster.nodes;
  t.add_time(Category::kTranspose, bytes / bw);
}

void charge_redistribution(const Cluster& cluster, CostTracker& t,
                           double words) {
  if (cluster.total_procs() <= 1) return;
  const double words_per_proc = words / cluster.total_procs();
  t.add_words(words_per_proc);
  t.add_supersteps(1.0);
  t.add_time(Category::kComm,
             net_seconds(cluster, words_per_proc) + sync_seconds(cluster));
}

}  // namespace tt::rt

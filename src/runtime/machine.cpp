#include "runtime/machine.hpp"

#include <algorithm>

namespace tt::rt {

MachineModel blue_waters() {
  MachineModel m;
  m.name = "blue-waters-xe6";
  // Effective dgemm throughput of an XE6 node on DMRG-sized blocks. The paper
  // reaches 3.1 TF/s on 256 nodes => ~12 GF/s/node sustained end-to-end; the
  // pure-GEMM phase runs several times faster than the whole iteration.
  m.node_gflops = 90.0;
  m.core_gflops = 5.0;          // Interlagos cores are strong serial cores
  m.sparse_efficiency = 0.18;   // Cray LibSci has no tuned sparse batch path
  m.mem_bandwidth_gbs = 60.0;
  m.net_bandwidth_gbs = 4.7;    // Gemini per-node injection
  m.net_latency_us = 1.5;
  m.block_overhead_us = 120.0;
  m.cores_per_node = 16;
  m.svd_efficiency = 0.35;      // LibSci SVD vs dgemm on DMRG-sized groups
  return m;
}

MachineModel stampede2() {
  MachineModel m;
  m.name = "stampede2-knl";
  // KNL: very high node throughput, weak serial cores (hurts per-block
  // bookkeeping => higher "CTF transposition" share, as in paper Fig 7b).
  m.node_gflops = 900.0;
  m.core_gflops = 1.2;
  m.sparse_efficiency = 0.30;   // MKL sparse kernels (paper: sparse MKL calls)
  m.mem_bandwidth_gbs = 380.0;  // MCDRAM-backed
  m.net_bandwidth_gbs = 12.3;   // Omni-Path
  m.net_latency_us = 1.0;
  m.block_overhead_us = 400.0;  // slow serial cores inflate launch overheads
  m.cores_per_node = 68;
  m.svd_efficiency = 0.15;      // SVD vectorizes poorly on KNL
  return m;
}

MachineModel localhost() {
  MachineModel m;
  m.name = "localhost";
  m.node_gflops = 40.0;
  m.core_gflops = 3.0;
  m.sparse_efficiency = 0.25;
  m.mem_bandwidth_gbs = 30.0;
  m.net_bandwidth_gbs = 1e9;  // no network: effectively free
  m.net_latency_us = 0.0;
  m.block_overhead_us = 0.0;
  m.cores_per_node = 24;
  m.svd_efficiency = 0.3;
  return m;
}

double Cluster::cluster_gflops() const {
  double per_node = machine.node_gflops;
  // Oversubscribing processes beyond physical cores costs ~10% per 2x.
  if (procs_per_node > machine.cores_per_node) {
    const double over = static_cast<double>(procs_per_node) / machine.cores_per_node;
    per_node *= std::max(0.7, 1.0 - 0.1 * (over - 1.0));
  }
  return per_node * nodes;
}

}  // namespace tt::rt

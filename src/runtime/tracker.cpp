#include "runtime/tracker.hpp"

#include <sstream>

#include "support/error.hpp"

namespace tt::rt {

const char* category_name(Category c) {
  switch (c) {
    case Category::kGemm: return "GEMM";
    case Category::kComm: return "Communication";
    case Category::kTranspose: return "CTF transposition";
    case Category::kSvd: return "SVD";
    case Category::kImbalance: return "Load imbalance";
    case Category::kPrefetch: return "Prefetch";
    case Category::kRecovery: return "Recovery";
    case Category::kOther: return "Other";
  }
  return "?";
}

void CostTracker::add_time(Category c, double seconds) {
  TT_CHECK(seconds >= 0.0, "negative simulated time " << seconds);
  time_[static_cast<int>(c)] += seconds;
}

double CostTracker::total_time() const {
  double t = 0.0;
  for (double v : time_) t += v;
  return t;
}

std::array<double, kNumCategories> CostTracker::percentages() const {
  std::array<double, kNumCategories> out{};
  const double total = total_time();
  if (total <= 0.0) return out;
  for (int i = 0; i < kNumCategories; ++i) out[i] = 100.0 * time_[i] / total;
  return out;
}

CostTracker CostTracker::diff(const CostTracker& start) const {
  CostTracker d;
  for (int i = 0; i < kNumCategories; ++i) d.time_[i] = time_[i] - start.time_[i];
  d.flops_ = flops_ - start.flops_;
  d.words_ = words_ - start.words_;
  d.supersteps_ = supersteps_ - start.supersteps_;
  return d;
}

void CostTracker::merge(const CostTracker& other) {
  for (int i = 0; i < kNumCategories; ++i) time_[i] += other.time_[i];
  flops_ += other.flops_;
  words_ += other.words_;
  supersteps_ += other.supersteps_;
}

void CostTracker::reset() { *this = CostTracker(); }

CostTrackerShards::CostTrackerShards(int num_shards) {
  TT_CHECK(num_shards >= 1, "need at least one tracker shard");
  slots_.resize(static_cast<std::size_t>(num_shards));
}

CostTracker& CostTrackerShards::shard(int i) {
  TT_CHECK(i >= 0 && i < num_shards(), "tracker shard " << i << " out of range");
  return slots_[static_cast<std::size_t>(i)].tracker;
}

void CostTrackerShards::merge_into(CostTracker& target) const {
  for (const Slot& s : slots_) target.merge(s.tracker);
}

CostTracker CostTrackerShards::merged() const {
  CostTracker t;
  merge_into(t);
  return t;
}

void CostTrackerShards::reset() {
  for (Slot& s : slots_) s.tracker.reset();
}

std::string CostTracker::summary() const {
  std::ostringstream os;
  os << "sim_time=" << total_time() << "s flops=" << flops_
     << " words=" << words_ << " supersteps=" << supersteps_;
  return os.str();
}

}  // namespace tt::rt

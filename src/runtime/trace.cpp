#include "runtime/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/wire.hpp"
#include "support/error.hpp"

namespace tt::rt {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

const char* trace_cat_name(TraceCat c) {
  switch (c) {
    case TraceCat::kSweep: return "sweep";
    case TraceCat::kDavidson: return "davidson";
    case TraceCat::kSvd: return "svd";
    case TraceCat::kContract: return "contract";
    case TraceCat::kComm: return "comm";
    case TraceCat::kPrefetch: return "prefetch";
    case TraceCat::kScheduler: return "scheduler";
    case TraceCat::kRecovery: return "recovery";
    case TraceCat::kEnv: return "env";
    case TraceCat::kOther: return "other";
  }
  return "?";
}

// Per-thread event buffer. Recording locks only the owning buffer's mutex
// (uncontended — one writer per buffer); export/absorb/clear lock the
// registry and then each buffer, so readers never observe a torn event.
struct Trace::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::size_t dropped = 0;
  std::size_t capacity = 0;
  int rank = -1;  // -1: resolve to the process rank at export time
  const char* label = nullptr;
  int tid = 0;  // exported Chrome tid (registration/absorb order)
};

struct Trace::Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::deque<std::string> interned;  // stable storage for absorbed names
  std::size_t capacity = TraceOptions{}.buffer_capacity;
  std::string path;
  int next_tid = 0;
};

namespace {

// The registry pointer and a fork epoch. notify_fork_child() installs a brand
// new registry (deliberately leaking the inherited one: its mutexes may have
// been held by parent threads that do not exist in the child) and bumps the
// epoch, which invalidates every thread-local buffer pointer — the child's
// single surviving thread re-registers cleanly on its next event.
std::atomic<Trace::Registry*> g_registry{nullptr};
std::atomic<std::uint64_t> g_registry_epoch{0};

thread_local Trace::ThreadBuffer* tls_buffer = nullptr;
thread_local std::uint64_t tls_epoch = ~std::uint64_t{0};
thread_local int tls_rank = -1;
thread_local const char* tls_label = nullptr;

void json_escape(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      os << ' ';
    else
      os << c;
  }
}

void flush_at_exit() {
  Trace& t = Trace::instance();
  if (t.enabled() && !t.is_forked_child()) t.stop();
}

}  // namespace

Trace::Registry& Trace::registry() {
  Registry* r = g_registry.load(std::memory_order_acquire);
  if (r == nullptr) {
    auto fresh = std::make_unique<Registry>();
    Registry* expected = nullptr;
    if (g_registry.compare_exchange_strong(expected, fresh.get(),
                                           std::memory_order_acq_rel))
      r = fresh.release();
    else
      r = expected;
  }
  return *r;
}

Trace& Trace::instance() {
  static Trace t;
  return t;
}

std::int64_t Trace::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Trace::ThreadBuffer* Trace::buffer_for_this_thread() {
  const std::uint64_t epoch = g_registry_epoch.load(std::memory_order_acquire);
  if (tls_buffer != nullptr && tls_epoch == epoch) return tls_buffer;
  Registry& r = registry();
  auto buf = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buf.get();
  std::lock_guard<std::mutex> lock(r.mu);
  raw->capacity = r.capacity;
  raw->rank = tls_rank;
  raw->label = tls_label;
  raw->tid = r.next_tid++;
  raw->events.reserve(std::min<std::size_t>(raw->capacity, 4096));
  r.buffers.push_back(std::move(buf));
  tls_buffer = raw;
  tls_epoch = epoch;
  return raw;
}

void Trace::record_span(const char* name, TraceCat cat, std::int64_t start_ns,
                        std::int64_t dur_ns) {
  ThreadBuffer* b = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->events.size() < b->capacity) {
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.start_ns = start_ns;
    e.dur_ns = dur_ns;
    b->events.push_back(e);
  } else {
    ++b->dropped;
  }
}

void Trace::counter(const char* name, double value) {
  ThreadBuffer* b = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(b->mu);
  if (b->events.size() < b->capacity) {
    TraceEvent e;
    e.name = name;
    e.start_ns = now_ns();
    e.value = value;
    e.is_counter = true;
    b->events.push_back(e);
  } else {
    ++b->dropped;
  }
}

void Trace::start(const TraceOptions& opts) {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (!opts.path.empty()) r.path = opts.path;
    if (opts.buffer_capacity > 0) {
      r.capacity = opts.buffer_capacity;
      // Threads registered under an earlier capacity (e.g. a prior
      // start/stop cycle) adopt the new one.
      for (auto& buf : r.buffers) {
        std::lock_guard<std::mutex> bl(buf->mu);
        buf->capacity = r.capacity;
      }
    }
  }
  if (!started_.exchange(true)) std::atexit(flush_at_exit);
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void Trace::stop() {
  detail::g_trace_enabled.store(false, std::memory_order_release);
  std::string path;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    path = r.path;
  }
  if (!path.empty()) write_chrome_json(path);
}

void Trace::notify_fork_child(int rank) {
  // Install a pristine registry: inherited buffer/registry mutexes may be
  // locked by parent threads that do not exist on this side of the fork.
  std::size_t capacity = TraceOptions{}.buffer_capacity;
  if (Registry* old = g_registry.load(std::memory_order_acquire))
    capacity = old->capacity;  // racy read is fine: worst case default size
  auto fresh = std::make_unique<Registry>();
  fresh->capacity = capacity;  // no export path: workers ship, never write
  g_registry.store(fresh.release(), std::memory_order_release);
  g_registry_epoch.fetch_add(1, std::memory_order_acq_rel);
  tls_buffer = nullptr;
  tls_rank = -1;
  process_rank_ = rank;
  forked_child_ = true;
}

void Trace::set_thread_rank(int rank) {
  tls_rank = rank;
  const std::uint64_t epoch = g_registry_epoch.load(std::memory_order_acquire);
  if (tls_buffer != nullptr && tls_epoch == epoch) {
    std::lock_guard<std::mutex> lock(tls_buffer->mu);
    tls_buffer->rank = rank;
  }
}

void Trace::set_thread_label(const char* label) {
  tls_label = label;
  const std::uint64_t epoch = g_registry_epoch.load(std::memory_order_acquire);
  if (tls_buffer != nullptr && tls_epoch == epoch) {
    std::lock_guard<std::mutex> lock(tls_buffer->mu);
    tls_buffer->label = label;
  }
}

std::vector<std::byte> Trace::serialize_and_clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);

  // Intern names into a table so repeated span names ship once.
  std::vector<const char*> names;
  auto name_index = [&names](const char* n) -> std::uint32_t {
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == n || std::string(names[i]) == n)
        return static_cast<std::uint32_t>(i);
    names.push_back(n);
    return static_cast<std::uint32_t>(names.size() - 1);
  };

  struct Flat {
    std::uint32_t name_idx, cat, flags, tid;
    std::int64_t start, dur;
    double value;
  };
  std::vector<Flat> flat;
  std::uint64_t dropped = 0;
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    dropped += buf->dropped;
    flat.reserve(flat.size() + buf->events.size());
    for (const TraceEvent& e : buf->events)
      flat.push_back({name_index(e.name), static_cast<std::uint32_t>(e.cat),
                      e.is_counter ? 1u : 0u,
                      static_cast<std::uint32_t>(buf->tid), e.start_ns, e.dur_ns,
                      e.value});
    buf->events.clear();
    buf->dropped = 0;
  }

  WireWriter w;
  w.u32(1);  // format version
  w.u32(static_cast<std::uint32_t>(process_rank_));
  w.u64(dropped);
  w.u64(names.size());
  for (const char* n : names) w.str(n);
  w.u64(flat.size());
  for (const Flat& f : flat) {
    w.u32(f.name_idx);
    w.u32(f.cat);
    w.u32(f.flags);
    w.u32(f.tid);
    w.i64(f.start);
    w.i64(f.dur);
    w.f64(f.value);
  }
  return w.take();
}

void Trace::absorb(const std::vector<std::byte>& payload, int rank) {
  WireReader reader(payload);
  const std::uint32_t version = reader.u32();
  TT_CHECK(version == 1, "trace frame has unknown version " << version);
  (void)reader.u32();  // worker's own rank claim; the root's channel wins
  const std::uint64_t dropped = reader.u64();
  const std::uint64_t nnames = reader.u64();
  // Each interned name costs at least its 8-byte length prefix; bound the
  // count before reserving so a torn trace frame raises instead of OOMing.
  TT_CHECK(nnames <= reader.remaining() / 8,
           "trace frame claims " << nnames << " names in " << reader.remaining()
                                 << " bytes");

  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<const char*> names;
  names.reserve(static_cast<std::size_t>(nnames));
  for (std::uint64_t i = 0; i < nnames; ++i) {
    r.interned.push_back(reader.str());
    names.push_back(r.interned.back().c_str());
  }
  const std::uint64_t nevents = reader.u64();
  // One fresh buffer per remote thread, keyed by the worker-local tid.
  std::vector<std::pair<std::uint32_t, ThreadBuffer*>> remote;
  auto buffer_for_remote = [&](std::uint32_t remote_tid) -> ThreadBuffer* {
    for (auto& [tid, buf] : remote)
      if (tid == remote_tid) return buf;
    auto buf = std::make_unique<ThreadBuffer>();
    buf->capacity = r.capacity;
    buf->rank = rank;
    buf->label = "worker";
    buf->tid = r.next_tid++;
    ThreadBuffer* raw = buf.get();
    r.buffers.push_back(std::move(buf));
    remote.emplace_back(remote_tid, raw);
    return raw;
  };
  for (std::uint64_t i = 0; i < nevents; ++i) {
    const std::uint32_t name_idx = reader.u32();
    const std::uint32_t cat = reader.u32();
    const std::uint32_t flags = reader.u32();
    const std::uint32_t remote_tid = reader.u32();
    TraceEvent e;
    TT_CHECK(name_idx < names.size(),
             "trace frame references name " << name_idx << " of " << names.size());
    e.name = names[name_idx];
    e.cat = static_cast<TraceCat>(
        cat < static_cast<std::uint32_t>(kNumTraceCats) ? cat
                                                        : kNumTraceCats - 1);
    e.is_counter = (flags & 1u) != 0;
    e.start_ns = reader.i64();
    e.dur_ns = reader.i64();
    e.value = reader.f64();
    ThreadBuffer* buf = buffer_for_remote(remote_tid);
    if (buf->events.size() < buf->capacity)
      buf->events.push_back(e);
    else
      ++buf->dropped;
  }
  if (!remote.empty()) remote.front().second->dropped += dropped;
  TT_CHECK(reader.done(),
           "trace frame has " << reader.remaining() << " trailing bytes");
}

void Trace::write_chrome_json(std::ostream& os) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  std::vector<int> named_pids;
  std::uint64_t dropped = 0;
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    dropped += buf->dropped;
    if (buf->events.empty()) continue;
    const int pid = buf->rank >= 0 ? buf->rank : process_rank_;
    bool pid_named = false;
    for (int p : named_pids) pid_named = pid_named || p == pid;
    if (!pid_named) {
      named_pids.push_back(pid);
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << pid
         << ",\"name\":\"process_name\",\"args\":{\"name\":\"rank " << pid
         << "\"}}";
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << pid
         << ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":" << pid
         << "}}";
    }
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << buf->tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    if (buf->label != nullptr)
      json_escape(os, buf->label);
    else
      os << "thread-" << buf->tid;
    os << "\"}}";

    os.precision(3);
    os.setf(std::ios::fixed);
    for (const TraceEvent& e : buf->events) {
      sep();
      const double ts_us = static_cast<double>(e.start_ns) / 1000.0;
      if (e.is_counter) {
        os << "{\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":" << buf->tid
           << ",\"name\":\"";
        json_escape(os, e.name);
        os << "\",\"ts\":" << ts_us << ",\"args\":{\"value\":" << e.value
           << "}}";
      } else {
        const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
        os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << buf->tid
           << ",\"name\":\"";
        json_escape(os, e.name);
        os << "\",\"cat\":\"" << trace_cat_name(e.cat) << "\",\"ts\":" << ts_us
           << ",\"dur\":" << dur_us << "}";
      }
    }
  }
  os << "\n],\"otherData\":{\"dropped_events\":" << dropped << "}}\n";
}

void Trace::write_chrome_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "tt trace: cannot open '" << path << "' for writing\n";
    return;
  }
  write_chrome_json(out);
}

std::size_t Trace::events_recorded() const {
  Registry& r = const_cast<Trace*>(this)->registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::size_t Trace::events_dropped() const {
  Registry& r = const_cast<Trace*>(this)->registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->dropped;
  }
  return n;
}

void Trace::clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& buf : r.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

namespace {

// TT_TRACE=<path> activates tracing before main() (any TU recording spans
// links this object file in, so the initializer always runs).
const bool g_env_activation = [] {
  const char* path = std::getenv("TT_TRACE");
  if (path != nullptr && *path != '\0') {
    TraceOptions opts;
    opts.path = path;
    Trace::instance().start(opts);
  }
  return true;
}();

}  // namespace

}  // namespace tt::rt

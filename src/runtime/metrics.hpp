// Structured metrics snapshots: one JSON document per bench-driver run.
//
// Every stats struct in the system (CostTracker categories, DistStats,
// SchedulerStats, einsum/contraction counters, sweep records) tells part of
// the story in its own ad-hoc text format. MetricsRegistry collects them into
// one machine-readable document
//
//   { "schema": "tt-metrics-v1",
//     "driver": "<bench driver name>",
//     "context": { "<key>": <number|string>, ... },
//     "sections": [ { "name": "<row id>", "values": { ... } }, ... ] }
//
// emitted by the bench drivers via `--metrics <path>` and consumed by
// bench/trajectory_diff.py, which diffs per-category percentage breakdowns
// ("pct.<Category>" keys) between a fresh run and the committed trajectory
// snapshot. Section names are row identities — stable across runs of the
// same driver (e.g. "fig7a.m32.nodes16") — and `context` holds the run-wide
// configuration (backend, threads, ranks) that explains, but does not
// identify, the numbers.
//
// Layering: this lives in rt and may consume rt types directly; higher-layer
// records (dmrg::SweepRecord) are flattened by the caller through the generic
// add() API (see bench/common.hpp add_sweep_metrics).
#pragma once

#include <string>
#include <vector>

#include "runtime/tracker.hpp"

namespace tt::rt {

struct DistStats;
struct SchedulerStats;

/// One named metrics document; see file header for the JSON schema.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::string driver) : driver_(std::move(driver)) {}

  /// Run-wide configuration key (backend, threads, ranks, ...).
  void add_context(const std::string& key, double value);
  void add_context(const std::string& key, const std::string& value);

  /// One value in section `section` (created on first use, order preserved).
  void add(const std::string& section, const std::string& key, double value);
  void add(const std::string& section, const std::string& key,
           const std::string& value);

  /// Flatten a CostTracker: total_s, flops, words, supersteps, and per
  /// category `time_s.<name>` / `pct.<name>` (trajectory_diff.py reads the
  /// pct.* keys for breakdown drift detection).
  void add_tracker(const std::string& section, const CostTracker& t);

  /// Flatten measured distributed-run quantities (ranks, comm/imbalance/
  /// recovery seconds, bytes, critical-path busy time).
  void add_dist(const std::string& section, const DistStats& d);

  /// Flatten scheduler self-healing counters.
  void add_scheduler(const std::string& section, const SchedulerStats& s);

  bool empty() const { return sections_.empty() && context_.empty(); }
  const std::string& driver() const { return driver_; }

  std::string to_json() const;

  /// Write to_json() to `path`; prints a one-line confirmation like the
  /// drivers' --csv handling. No-op when `path` is empty.
  void write(const std::string& path) const;

 private:
  struct Entry {
    std::string key;
    bool is_number = true;
    double num = 0.0;
    std::string str;
  };
  struct Section {
    std::string name;
    std::vector<Entry> entries;
  };

  Section& section(const std::string& name);

  std::string driver_;
  std::vector<Entry> context_;
  std::vector<Section> sections_;
};

}  // namespace tt::rt

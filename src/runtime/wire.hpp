// Byte-level message encoding for the distributed scheduler's transport.
//
// Fixed-width little-endian fields appended/consumed in call order; doubles
// travel as raw IEEE-754 bit patterns (memcpy, never text) so a value read
// on the far side is bitwise identical to the value written — the rank-parity
// invariant of the scheduler depends on this. The reader bounds-checks every
// access and throws tt::Error on truncated or oversized fields, so a torn
// frame surfaces as a clean error instead of garbage data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/types.hpp"
#include "tensor/dense.hpp"

namespace tt::rt {

/// 64-bit FNV-1a over a byte range. Used as the frame payload checksum (a
/// corrupt frame must surface as a clean error, not garbage tensors) and as
/// the snapshot checksum in dmrg::CheckpointManager. Not cryptographic —
/// it detects accidental corruption, not an adversary.
std::uint64_t wire_checksum(const std::byte* p, std::size_t n);

/// Append-only message builder.
class WireWriter {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s);
  void i32_list(const std::vector<int>& v);

  /// shape as i64 list, then the payload as raw doubles.
  void tensor(const tensor::DenseTensor& t);

  const std::vector<std::byte>& bytes() const { return buf_; }

  /// Surrender the built payload. Fault point `wire.truncate` (evaluated with
  /// no rank/side context) drops the trailing half here, so the far side sees
  /// a frame that *arrives* intact but fails to parse.
  std::vector<std::byte> take();

  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n);

  std::vector<std::byte> buf_;
};

/// Sequential bounds-checked reader over one received message.
class WireReader {
 public:
  explicit WireReader(const std::vector<std::byte>& buf) : buf_(buf) {}

  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  std::vector<int> i32_list();
  tensor::DenseTensor tensor();

  std::size_t remaining() const { return buf_.size() - pos_; }
  bool done() const { return pos_ == buf_.size(); }

 private:
  void raw(void* p, std::size_t n);

  const std::vector<std::byte>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace tt::rt

#include "runtime/metrics.hpp"

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "runtime/scheduler.hpp"

namespace tt::rt {

namespace {

void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      os << ' ';
    else
      os << c;
  }
  os << '"';
}

void append_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan
    return;
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

}  // namespace

void MetricsRegistry::add_context(const std::string& key, double value) {
  Entry e;
  e.key = key;
  e.num = value;
  context_.push_back(std::move(e));
}

void MetricsRegistry::add_context(const std::string& key,
                                  const std::string& value) {
  Entry e;
  e.key = key;
  e.is_number = false;
  e.str = value;
  context_.push_back(std::move(e));
}

MetricsRegistry::Section& MetricsRegistry::section(const std::string& name) {
  for (Section& s : sections_)
    if (s.name == name) return s;
  sections_.push_back(Section{name, {}});
  return sections_.back();
}

void MetricsRegistry::add(const std::string& sec, const std::string& key,
                          double value) {
  Entry e;
  e.key = key;
  e.num = value;
  section(sec).entries.push_back(std::move(e));
}

void MetricsRegistry::add(const std::string& sec, const std::string& key,
                          const std::string& value) {
  Entry e;
  e.key = key;
  e.is_number = false;
  e.str = value;
  section(sec).entries.push_back(std::move(e));
}

void MetricsRegistry::add_tracker(const std::string& sec,
                                  const CostTracker& t) {
  add(sec, "total_s", t.total_time());
  add(sec, "flops", t.flops());
  add(sec, "words", t.words());
  add(sec, "supersteps", t.supersteps());
  const auto pct = t.percentages();
  for (int c = 0; c < kNumCategories; ++c) {
    const char* name = category_name(static_cast<Category>(c));
    add(sec, std::string("time_s.") + name,
        t.time(static_cast<Category>(c)));
    add(sec, std::string("pct.") + name, pct[static_cast<std::size_t>(c)]);
  }
}

void MetricsRegistry::add_dist(const std::string& sec, const DistStats& d) {
  add(sec, "ranks", static_cast<double>(d.ranks.size()));
  add(sec, "contractions", static_cast<double>(d.contractions));
  add(sec, "comm_s", d.comm_seconds);
  add(sec, "critical_busy_s", d.critical_busy_seconds);
  add(sec, "imbalance_s", d.imbalance_seconds);
  add(sec, "recovery_s", d.recovery_seconds);
  add(sec, "exchange_words", d.exchange_words);
  add(sec, "total_bytes", d.total_bytes());
  add(sec, "total_flops", d.total_flops());
}

void MetricsRegistry::add_scheduler(const std::string& sec,
                                    const SchedulerStats& s) {
  add(sec, "faults_detected", static_cast<double>(s.faults_detected));
  add(sec, "retries", static_cast<double>(s.retries));
  add(sec, "respawns", static_cast<double>(s.respawns));
  add(sec, "ranks_lost", static_cast<double>(s.ranks_lost));
  add(sec, "degraded", s.degraded ? 1.0 : 0.0);
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  auto entries = [&os](const std::vector<Entry>& es) {
    os << "{";
    for (std::size_t i = 0; i < es.size(); ++i) {
      if (i > 0) os << ", ";
      append_json_string(os, es[i].key);
      os << ": ";
      if (es[i].is_number)
        append_json_number(os, es[i].num);
      else
        append_json_string(os, es[i].str);
    }
    os << "}";
  };

  os << "{\n  \"schema\": \"tt-metrics-v1\",\n  \"driver\": ";
  append_json_string(os, driver_);
  os << ",\n  \"context\": ";
  entries(context_);
  os << ",\n  \"sections\": [";
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n    {\"name\": ";
    append_json_string(os, sections_[i].name);
    os << ", \"values\": ";
    entries(sections_[i].entries);
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

void MetricsRegistry::write(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "tt metrics: cannot open '" << path << "' for writing\n";
    return;
  }
  out << to_json();
  std::cout << "wrote metrics: " << path << "\n";
}

}  // namespace tt::rt

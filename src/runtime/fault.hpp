// Deterministic fault injection for the distributed runtime.
//
// A FaultInjector holds a set of armed FaultSpecs, each naming a *fault
// point* — a place in transport.cpp / wire.cpp / scheduler.cpp / dmrg.cpp
// that asks "should this fault fire here, now?" before doing something
// destructive on purpose. The catalog of points (see docs/ARCHITECTURE.md
// "Fault tolerance and checkpointing"):
//
//   worker.kill_before_result  worker dies after computing, before replying
//                              (evaluated root-side, shipped as a task flag,
//                              so nth/count are exact in both spawn modes)
//   worker.fail_task           worker answers the task with an error frame
//                              (also root-evaluated / shipped)
//   frame.delay                sleep spec.ms before sending a frame
//   frame.truncate             send the header + half the payload, then
//                              close the channel (peer sees truncation)
//   payload.corrupt            flip one payload byte after the checksum is
//                              computed (peer sees a checksum mismatch)
//   wire.truncate              drop trailing bytes of a built wire payload
//                              (frame arrives intact; the *parse* fails)
//   dmrg.kill_sweep            throw out of the sweep loop — the in-process
//                              stand-in for preemption, pairs with
//                              checkpoint/resume
//
// Configuration is programmatic (arm()) or via the environment:
//
//   TT_FAULTS=point[:k=v[;k=v...]][,point:...]
//   e.g. TT_FAULTS='worker.kill_before_result:nth=1;rank=1,frame.delay:ms=5;prob=0.25;seed=11;count=64'
//
// Firing is deterministic: nth/count are plain counters, and prob draws from
// a per-spec xorshift stream seeded by `seed` — the same armed schedule
// produces the same fire pattern every run, so every recovery path is
// replayable in tests and CI.
//
// Process-mode caveat: fork()ed workers inherit a *copy* of the injector, so
// counters of faults evaluated worker-side (frame.*, payload.*, wire.*) are
// per-process — a respawned worker starts its counters at zero. The two
// worker.* points are evaluated by the root exactly to avoid this.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tt::rt {

/// Which end of a channel a fault-point evaluation is happening on.
enum class FaultSide { kAny = 0, kRoot = 1, kWorker = 2 };

const char* fault_side_name(FaultSide s);

/// One armed fault: where it fires, when, and its action parameter.
struct FaultSpec {
  std::string point;      ///< fault-point name (catalog in the file header)
  int nth = 0;            ///< fire on exactly the nth eligible hit (1-based); 0 = every hit
  int rank = -1;          ///< restrict to this rank; -1 = any
  FaultSide side = FaultSide::kAny;  ///< restrict to root/worker side
  int count = 1;          ///< max fires before the spec is spent; <= 0 = unlimited
  double prob = 1.0;      ///< fire probability per eligible hit (seeded stream)
  std::uint64_t seed = 0; ///< xorshift seed for prob draws (deterministic)
  double ms = 0.0;        ///< action parameter: delay duration in milliseconds
};

/// Armed-fault registry. Usually used through the process-wide instance();
/// directly constructible for determinism tests. Thread-safe.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Process-wide injector; reads TT_FAULTS once on first use.
  static FaultInjector& instance();

  /// Parse one `point[:k=v[;k=v...]]` entry. Throws tt::Error on unknown
  /// fields or malformed values.
  static FaultSpec parse_entry(const std::string& entry);

  /// Arm every comma-separated entry of a TT_FAULTS-grammar string
  /// (appends to whatever is already armed).
  void configure(const std::string& spec_list);

  /// Arm one spec programmatically.
  void arm(FaultSpec spec);

  /// Drop every armed spec and all counters.
  void clear();

  /// clear() then configure(getenv("TT_FAULTS")) — what instance() does at
  /// startup; exposed so tests can re-read a changed environment.
  void reload_from_env();

  /// Evaluate the named fault point. Returns true when an armed spec fires
  /// (copying it to `fired` when given); always counts the hit. rank/side
  /// describe the evaluation context: a spec restricted to a rank or side
  /// only matches a context that states it.
  bool should_fire(const char* point, int rank = -1,
                   FaultSide side = FaultSide::kAny,
                   FaultSpec* fired = nullptr);

  /// Total fires / eligible hits of a point so far (across all its specs).
  long fires(const std::string& point) const;
  long hits(const std::string& point) const;

  /// True when at least one spec is armed (lock-free hot-path gate).
  bool active() const { return active_.load(std::memory_order_relaxed); }

 private:
  struct Armed {
    FaultSpec spec;
    long hits = 0;
    long fires = 0;
    std::uint64_t rng = 0;  ///< xorshift64* state for prob draws
  };

  mutable std::mutex mu_;
  std::vector<Armed> armed_;
  std::atomic<bool> active_{false};
};

}  // namespace tt::rt

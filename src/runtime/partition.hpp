// Rank placement of output-block bins — the low-communication layout of
// Zhai & Chan 2021 specialized to the root-coordinated scheduler: the small
// operand is replicated on every rank, only the blocks of the large operand
// that a rank's bins touch are shipped to it, and the bins themselves are
// dealt cyclically by descending weight.
//
// Imbalance bound of the cyclic deal (documented, property-tested): sort
// weights descending, give sorted item i to rank i mod R. In every round j
// the ranks receive adjacent items of the sorted order, so for ranks r < r'
// the per-round gap telescopes:
//   load(r) − load(r') = Σ_j (w[jR+r] − w[jR+r']) ≤ Σ_j (w[jR+r] − w[(j+1)R+r])
//                      ≤ w[r] ≤ w_max,
// hence  max_load ≤ total/R + w_max.  One huge bin can always dominate a
// rank (that is the w_max term — fixing it needs bin splitting, a future
// item); apart from that the deal is balanced to within one bin.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace tt::rt {

/// rank_of[i] = rank that executes bin i; plus the per-rank load sums.
struct Partition {
  std::vector<int> rank_of;          ///< one entry per bin, in bin order
  std::vector<double> rank_load;     ///< Σ of assigned weights, per rank
  double max_weight = 0.0;           ///< heaviest single bin
  double total_weight = 0.0;

  /// The documented bound the deal guarantees: total/R + max_weight.
  double load_bound() const;
};

/// Deal `weights` (one per bin, any non-negative values) across `num_ranks`
/// ranks: descending-weight cyclic assignment. Deterministic: ties broken by
/// bin index. Every bin is assigned to exactly one rank; per-rank load obeys
/// Partition::load_bound().
Partition partition_bins(const std::vector<double>& weights, int num_ranks);

/// Which operand the scheduler replicates (the other is distributed
/// block-wise): the one with fewer stored words; ties replicate `a`.
/// Returns 0 for a, 1 for b.
int choose_replicated(double words_a, double words_b);

}  // namespace tt::rt

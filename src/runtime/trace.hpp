// Low-overhead cross-rank span/counter tracer with Chrome trace-event export.
//
// The tracer answers the question the per-category CostTracker cannot: *when*
// did Davidson, environment prefetch, rank communication, and recovery run
// relative to each other? Spans are recorded into per-thread buffers (one
// registration mutex hit per thread lifetime, lock-free recording afterwards)
// and exported as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing:
//
//   pid  = scheduler rank (0 = root process / root-side threads)
//   tid  = per-thread ordinal within that rank, named via metadata events
//          (tid 0 is the thread that recorded first — the main thread in
//          practice; pool workers and the prefetch worker get their own lanes)
//
// Rank merging: thread-mode scheduler workers share the process-wide tracer
// and are tagged per-thread (set_thread_rank); fork()ed process-mode workers
// serialize their buffers over the existing framed transport at shutdown
// (scheduler.cpp kTagTrace frame) and the root absorbs them. steady_clock
// survives fork() unchanged (same CLOCK_MONOTONIC), so root and worker
// timestamps share an epoch and need no rebasing.
//
// Determinism: recording only reads the clock and appends to a buffer — it
// never branches on data values or perturbs execution order, so results stay
// bitwise identical with tracing on (the parity suites run traced). Disabled
// tracing costs exactly one relaxed atomic load per TT_TRACE_SPAN
// (tests/runtime/test_trace.cpp enforces this).
//
// Activation: TT_TRACE=<path> (export at process exit) or Trace::start().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tt::rt {

/// Chrome "cat" field of a span — the timeline analogue of rt::Category.
enum class TraceCat : int {
  kSweep = 0,      ///< sweep / bond-optimization structure
  kDavidson = 1,   ///< eigensolver iterations and matvecs
  kSvd = 2,        ///< truncated block SVD
  kContract = 3,   ///< block contraction executor (bins)
  kComm = 4,       ///< transport frames (wire send/recv)
  kPrefetch = 5,   ///< async environment extension on the prefetch worker
  kScheduler = 6,  ///< rank scheduler phases (ship/gather/makeup)
  kRecovery = 7,   ///< fault healing: makeup execution, respawns
  kEnv = 8,        ///< eager environment production
  kOther = 9,      ///< keep last (mirrors rt::Category::kOther convention)
};
constexpr int kNumTraceCats = 10;

const char* trace_cat_name(TraceCat c);

/// One recorded event. `name` must point at storage outliving the tracer —
/// the TT_TRACE_SPAN macro passes string literals; absorbed remote events
/// intern their names in the tracer.
struct TraceEvent {
  const char* name = nullptr;
  TraceCat cat = TraceCat::kOther;
  std::int64_t start_ns = 0;  ///< steady_clock nanoseconds
  std::int64_t dur_ns = 0;    ///< span duration; ignored for counters
  double value = 0.0;         ///< counter value (is_counter events)
  bool is_counter = false;
};

struct TraceOptions {
  /// Export path written at process exit (and by stop()). Empty: export only
  /// through explicit write_chrome_json() calls.
  std::string path;
  /// Events retained per thread; recording beyond this drops the newest
  /// events (the sweep skeleton at the front stays intact) and counts them.
  std::size_t buffer_capacity = 1 << 16;
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

/// Hot-path gate: the entire cost of a TT_TRACE_SPAN while tracing is off.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Process-wide tracer singleton (see file header).
class Trace {
 public:
  // Implementation details, public so trace.cpp's file-local state (the
  // registry pointer and thread-local buffer pointers) can name them.
  struct ThreadBuffer;
  struct Registry;

  static Trace& instance();

  /// Enable recording. Idempotent; `opts.path` (or TT_TRACE) is flushed at
  /// process exit. Thread-safe against concurrent span recording.
  void start(const TraceOptions& opts = {});

  /// Disable recording and, when an export path is set, flush to it.
  void stop();

  bool enabled() const { return trace_enabled(); }

  /// steady_clock nanoseconds (shared epoch across fork — see file header).
  static std::int64_t now_ns();

  /// Append one completed span. Callers normally use TT_TRACE_SPAN instead.
  void record_span(const char* name, TraceCat cat, std::int64_t start_ns,
                   std::int64_t dur_ns);

  /// Append one counter sample (Chrome "C" event on this thread's lane).
  void counter(const char* name, double value);

  /// --- rank tagging ---------------------------------------------------------

  /// Must be called in a freshly fork()ed scheduler worker: drops every event
  /// inherited from the parent (the root still owns those) and tags this
  /// process's buffers with `rank`. Marks the process as a shipping worker —
  /// see serialize_and_clear().
  void notify_fork_child(int rank);

  /// Tag the *calling thread*'s events with `rank` (thread-mode scheduler
  /// workers, which share the root's tracer). Must precede the thread's first
  /// recorded event.
  static void set_thread_rank(int rank);

  /// Name the calling thread's lane in the exported trace (metadata event).
  /// Idempotent; later calls win. `label` must outlive the tracer.
  static void set_thread_label(const char* label);

  /// True in a process that entered notify_fork_child() — the worker ships
  /// its events over the transport instead of exporting at exit (it leaves
  /// via _exit(), which skips atexit handlers).
  bool is_forked_child() const { return forked_child_; }

  /// --- cross-rank shipping (wire format, runtime/wire.hpp) ------------------

  /// Serialize every recorded event and clear the buffers (worker side, sent
  /// as one kTagTrace frame at shutdown).
  std::vector<std::byte> serialize_and_clear();

  /// Merge a worker's serialized events, overriding their rank tag with
  /// `rank` (root side). Throws tt::Error on a malformed payload.
  void absorb(const std::vector<std::byte>& payload, int rank);

  /// --- export ---------------------------------------------------------------

  void write_chrome_json(std::ostream& os);
  void write_chrome_json(const std::string& path);

  /// --- introspection (tests) ------------------------------------------------

  std::size_t events_recorded() const;
  std::size_t events_dropped() const;
  void clear();

 private:
  Trace() = default;

  ThreadBuffer* buffer_for_this_thread();

  std::atomic<bool> started_{false};
  bool forked_child_ = false;
  int process_rank_ = 0;

  // Registry of per-thread buffers; mutex-guarded (registration, export,
  // absorb, clear) — never touched on the span hot path after registration.
  Registry& registry();
};

/// RAII span: records [construction, destruction) when tracing was enabled at
/// construction. Trivially destructible no-op otherwise.
class TraceSpan {
 public:
  TraceSpan(const char* name, TraceCat cat) {
    if (trace_enabled()) {
      name_ = name;
      cat_ = cat;
      start_ns_ = Trace::now_ns();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr)
      Trace::instance().record_span(name_, cat_, start_ns_,
                                    Trace::now_ns() - start_ns_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  TraceCat cat_ = TraceCat::kOther;
  std::int64_t start_ns_ = 0;
};

#define TT_TRACE_CONCAT_IMPL(a, b) a##b
#define TT_TRACE_CONCAT(a, b) TT_TRACE_CONCAT_IMPL(a, b)

/// Scoped span over the rest of the enclosing block. `name` must be a string
/// literal (or otherwise outlive the tracer).
#define TT_TRACE_SPAN(name, cat) \
  ::tt::rt::TraceSpan TT_TRACE_CONCAT(tt_trace_span_, __LINE__)((name), (cat))

/// One counter sample; no-op while tracing is off.
#define TT_TRACE_COUNTER(name, value)                          \
  do {                                                         \
    if (::tt::rt::trace_enabled())                             \
      ::tt::rt::Trace::instance().counter((name), (value));    \
  } while (0)

}  // namespace tt::rt

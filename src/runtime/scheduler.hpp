// Multi-process block scheduler: the *real* distributed runtime that replaces
// the BSP cost replay for block-sparse contractions.
//
// The unit of placement is the output-block bin of symm::enumerate_bins —
// exactly the unit of thread-level parallelism inside symm::contract, promoted
// across process ranks. One contraction executes as:
//
//   1. Root (rank 0) enumerates the bins and deals them across ranks by
//      descending estimated flops (runtime/partition.hpp; cyclic deal with a
//      documented total/R + w_max imbalance bound).
//   2. Root ships each worker its operand slice over the transport: the
//      smaller operand replicated in full, and only the blocks of the larger
//      operand its bins touch (the Zhai & Chan low-communication layout).
//      Every byte is counted — communication volume is measured, not modeled.
//   3. Workers execute their bins on the work-stealing pool (each bin serial
//      in fixed pair order), concurrently with the root executing its own
//      share, and send back per-bin results and per-bin stats.
//   4. Root assembles output blocks and merges ContractStats in *global bin
//      order* — the same reduction order as the serial run — so results and
//      stats are bitwise identical at any rank count, the same invariant the
//      TT_THREADS executor guarantees for threads.
//
// Measured per-rank quantities (busy time, bytes each way, transport wall
// time) land in DistStats and reduce into the existing rt::CostTracker in
// fixed rank order: GEMM time = the critical (max) rank, imbalance = the idle
// tail of the other ranks, comm = root transport wall, words = data words
// actually moved. See docs/ARCHITECTURE.md "The distributed block scheduler".
//
// The scheduler is fault tolerant: a worker that dies, wedges, fails its
// task, or corrupts its reply has its bin share re-executed on the root
// (bitwise-identical — bins are deterministic and assembly order is global),
// then gets respawned under a bounded-retry/backoff RetryPolicy, degrading
// to serial execution when every worker is lost. Recovery cost is measured
// (DistStats::recovery_seconds -> Category::kRecovery) and counted
// (SchedulerStats). See docs/ARCHITECTURE.md "Fault tolerance and
// checkpointing".
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/partition.hpp"
#include "runtime/tracker.hpp"
#include "runtime/transport.hpp"
#include "symm/block_ops.hpp"

namespace tt::rt {

/// The one transport/recovery deadline default. Task timeouts (struct default
/// below, the value shipped inside every task frame) and the retry deadline
/// all derive from this single constant so they cannot drift apart.
constexpr double kDefaultTimeoutSeconds = 120.0;

/// How the scheduler reacts to a dead, wedged, or failing worker.
struct RetryPolicy {
  /// Respawns allowed per rank over the scheduler's lifetime. A rank that
  /// exhausts them is retired (its bin share folds into the survivors).
  /// 0 disables self-healing entirely: the first fault breaks the scheduler
  /// and contract() throws — the pre-recovery fail-fast behaviour.
  int max_attempts = 2;

  /// Exponential backoff before respawn attempt k sleeps
  /// base_delay_seconds * 2^(k-1).
  double base_delay_seconds = 0.01;

  /// Wall-clock budget for the healing phase of one contract() call; once
  /// exceeded, remaining dead ranks are retired instead of respawned.
  double deadline_seconds = kDefaultTimeoutSeconds;
};

/// Construction-time knobs of a Scheduler.
struct SchedulerOptions {
  /// Total ranks including the root. 1 = fully local (no workers spawned).
  int num_ranks = 1;

  /// Process (fork) or thread workers; default honors TT_SCHED_MODE.
  SpawnMode mode = spawn_mode_from_env();

  /// Executor threads for each worker's bins (worker-local pool). Workers
  /// default to serial: on one machine the ranks already provide the
  /// parallelism, and serial workers keep the thread-mode path TSan-lean.
  int worker_threads = 1;

  /// Executor threads for the root's own bin share; 0 = global TT_THREADS.
  int root_threads = 0;

  /// Deadline for every transport operation of one contraction. A worker that
  /// dies or wedges surfaces as tt::Error within this bound — never a hang.
  double timeout_seconds = kDefaultTimeoutSeconds;

  /// Fault recovery behaviour (see RetryPolicy).
  RetryPolicy retry;
};

/// Lifetime recovery counters of one Scheduler — how much self-healing has
/// happened, so recovery is observable instead of silent.
struct SchedulerStats {
  long faults_detected = 0;  ///< dead/wedged/corrupt/failing worker events
  long retries = 0;          ///< bin shares re-executed on the root
  long respawns = 0;         ///< workers successfully respawned
  long ranks_lost = 0;       ///< ranks retired after exhausting max_attempts
  bool degraded = false;     ///< true once every worker is gone (serial mode)
};

/// Measured execution record of distributed contractions (one or accumulated
/// many). All quantities are wall-clock or byte measurements — nothing here
/// comes from the BSP cost model.
struct DistStats {
  struct Rank {
    int bins = 0;                ///< output bins executed by this rank
    double flops = 0.0;          ///< measured einsum flops of those bins
    double busy_seconds = 0.0;   ///< wall time executing bins
    double bytes_sent = 0.0;     ///< root -> rank frame bytes (operands)
    double bytes_received = 0.0; ///< rank -> root frame bytes (results)
  };
  std::vector<Rank> ranks;       ///< fixed rank order, index = rank

  int contractions = 0;
  double comm_seconds = 0.0;     ///< root wall time inside transport calls
  double exchange_words = 0.0;   ///< tensor words moved (operands + results)
  double critical_busy_seconds = 0.0;  ///< Σ over contractions of max-rank busy
  double imbalance_seconds = 0.0;      ///< Σ over contractions, ranks of (max − busy)
  double recovery_seconds = 0.0;       ///< makeup execution + respawn/backoff wall
  int replicated_operand = 0;    ///< most recent contraction: 0 = a, 1 = b

  double total_bytes() const;
  double total_flops() const;

  /// Reduce into a cost tracker in fixed rank order: kGemm += critical busy,
  /// kComm += transport wall, kImbalance += idle tails, kRecovery += recovery
  /// wall, words += exchanged words, flops += per-rank flops (rank order),
  /// one superstep per contraction. Note kComm is measured at the root and
  /// includes time blocked waiting on results — see docs/BENCHMARKS.md
  /// "Measured vs replayed" for the decomposition caveat.
  void charge(CostTracker& t) const;

  /// Rank-wise and scalar accumulation (for multi-contraction aggregates).
  void merge(const DistStats& other);
};

/// Distributed block-contraction scheduler (see file header). Workers are
/// spawned at construction and serve until shutdown()/destruction; contract()
/// may be called any number of times. Construct from quiescent single-threaded
/// context (process mode forks). Not thread-safe; one contraction at a time.
class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& opts = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  int num_ranks() const { return opts_.num_ranks; }
  SpawnMode mode() const { return opts_.mode; }

  /// Distributed symm::contract: identical semantics, results, and (when
  /// `stats` is given) ContractStats — bitwise, at any rank count. Measured
  /// communication/imbalance of this call lands in last() and accumulated().
  ///
  /// Self-healing (opts.retry.max_attempts > 0, the default): a worker that
  /// dies, wedges past the timeout, fails its task, or returns a corrupt or
  /// unparseable frame does NOT fail the call — the root re-executes that
  /// rank's bin share itself (results and ContractStats stay bitwise
  /// identical to the fault-free run, since assembly order and per-bin
  /// execution are deterministic), then respawns the rank with exponential
  /// backoff, retiring it once its attempts are exhausted. When every worker
  /// is gone the scheduler degrades to serial root execution. Recovery cost
  /// is measured into DistStats::recovery_seconds and counted in stats().
  ///
  /// With retry.max_attempts == 0, any fault throws tt::Error and the
  /// scheduler is broken (workers in unknown protocol state): every later
  /// contract() throws until destruction — the pre-recovery behaviour.
  symm::BlockTensor contract(const symm::BlockTensor& a, const symm::BlockTensor& b,
                             const std::vector<std::pair<int, int>>& pairs,
                             symm::ContractStats* stats = nullptr);

  /// Measured record of the most recent contract() / of all calls so far.
  const DistStats& last() const { return last_; }
  const DistStats& accumulated() const { return accumulated_; }
  void reset_accumulated() { accumulated_ = DistStats{}; }

  /// accumulated().charge(t) — the fixed-rank-order reduction into the
  /// existing cost tracker.
  void reduce_into(CostTracker& t) const { accumulated_.charge(t); }

  /// Fault injection (process mode): SIGKILL a worker. The next contract()
  /// observes the dead peer — and heals it or throws, per the retry policy.
  void kill_rank(int rank);

  /// Lifetime recovery counters (see SchedulerStats).
  const SchedulerStats& stats() const { return stats_; }

  /// Worker ranks currently alive and serving.
  int live_workers() const;

  /// Graceful teardown: shutdown frames, reap/join workers. Idempotent; the
  /// destructor calls it (hard-killing whatever does not exit in time).
  void shutdown();

 private:
  /// Retire-then-respawn each listed rank with bounded backoff; retires for
  /// good once its attempts are exhausted. Time spent lands in `d`.
  void heal(const std::vector<int>& dead_ranks, DistStats& d);

  SchedulerOptions opts_;
  std::unique_ptr<WorkerGroup> group_;  // null when num_ranks == 1
  DistStats last_;
  DistStats accumulated_;
  SchedulerStats stats_;
  std::vector<char> live_;             // index = rank; rank 0 always live
  std::vector<int> respawn_attempts_;  // index = rank
  bool broken_ = false;
};

}  // namespace tt::rt

// BSP cost model for distributed tensor contractions (paper Table II).
//
// Charges simulated time to a CostTracker for each primitive the DMRG engines
// execute on the virtual cluster. The asymptotics follow the paper's Table II
// and CTF's communication-optimal algorithms:
//
//   list          per-block dense contraction, 3D/2.5D algorithm with
//                 sufficient memory  -> W = O(M / p^(2/3)), O(1) superstep per
//                 block => O(Nb) supersteps per Davidson iteration.
//   sparse-dense  one fused dense contraction, memory-limited 2D algorithm
//                 -> W = O(M_D / p^(1/2)), O(1) supersteps.
//   sparse-sparse one fused sparse contraction -> W = O(nnz / p^(1/2)),
//                 O(1) supersteps, reduced flop rate for sparse kernels.
#pragma once

#include "runtime/machine.hpp"
#include "runtime/tracker.hpp"
#include "support/types.hpp"

namespace tt::rt {

/// How a contraction is distributed over the virtual cluster.
enum class Layout {
  kBlockDense3D,  // list algorithm: one distributed dense contraction per block pair
  kFusedDense2D,  // sparse-dense: single dense contraction, memory-limited
  kFusedSparse2D, // sparse-sparse: single sparse contraction
  kLocal,         // reference single-node engine: no network at all
};

/// Size/flop description of one contraction (words = stored elements; for
/// sparse operands pass the nonzero count).
struct ContractionCost {
  double flops = 0.0;
  double words_a = 0.0;
  double words_b = 0.0;
  double words_c = 0.0;

  double total_words() const { return words_a + words_b + words_c; }
};

/// Tuning constants of the model, exposed for the ablation bench.
struct CostModelParams {
  double summa_coef = 1.2;        // prefactor of the SUMMA communication volume
  double min_flops_per_proc = 5e5;// below this, extra processes sit idle
  double transpose_passes = 3.0;  // read + write + pack traffic per transpose
  double sparse_index_words = 1.0;// index overhead words per sparse nonzero
  double svd_scale = 1.0;         // matrix-dim multiplier for SVD parallelism
                                  // limits (bench-scale replays set this to
                                  // the bond-dimension scale factor)
};

/// Charge one distributed contraction.
void charge_contraction(const Cluster& cluster, CostTracker& t,
                        const ContractionCost& cost, Layout layout,
                        const CostModelParams& params = {});

/// Charge a distributed (pdgesvd-style) SVD of an m×n block.
void charge_svd(const Cluster& cluster, CostTracker& t, index_t rows,
                index_t cols, const CostModelParams& params = {});

/// Charge local index transposition of `words` tensor elements.
void charge_transpose(const Cluster& cluster, CostTracker& t, double words,
                      const CostModelParams& params = {});

/// Charge a global redistribution (block extract/fuse between formats).
void charge_redistribution(const Cluster& cluster, CostTracker& t,
                           double words);

}  // namespace tt::rt

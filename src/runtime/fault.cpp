#include "runtime/fault.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace tt::rt {

namespace {

// xorshift64* — tiny, seedable, and good enough for fault-probability draws.
// Never seeded with 0 (the fixed point); mix the seed through splitmix-style
// constants so seed=0 and seed=1 still give distinct streams.
std::uint64_t mix_seed(std::uint64_t seed) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 0x2545f4914f6cdd1dull;
}

std::uint64_t xorshift_next(std::uint64_t& s) {
  s ^= s >> 12;
  s ^= s << 25;
  s ^= s >> 27;
  return s * 0x2545f4914f6cdd1dull;
}

// Uniform draw in [0, 1) from the top 53 bits.
double draw_unit(std::uint64_t& s) {
  return static_cast<double>(xorshift_next(s) >> 11) * 0x1.0p-53;
}

double parse_number(const std::string& entry, const std::string& key,
                    const std::string& value) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  TT_CHECK(used == value.size() && !value.empty(),
           "TT_FAULTS: bad value '" << value << "' for field '" << key
                                    << "' in entry '" << entry << "'");
  return v;
}

}  // namespace

const char* fault_side_name(FaultSide s) {
  switch (s) {
    case FaultSide::kAny: return "any";
    case FaultSide::kRoot: return "root";
    case FaultSide::kWorker: return "worker";
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* inj = [] {
    auto* p = new FaultInjector();
    p->reload_from_env();
    return p;
  }();
  return *inj;
}

FaultSpec FaultInjector::parse_entry(const std::string& entry) {
  FaultSpec spec;
  const std::size_t colon = entry.find(':');
  spec.point = entry.substr(0, colon);
  TT_CHECK(!spec.point.empty(), "TT_FAULTS: empty fault-point name in entry '"
                                    << entry << "'");
  if (colon == std::string::npos) return spec;

  std::size_t pos = colon + 1;
  while (pos <= entry.size()) {
    const std::size_t semi = entry.find(';', pos);
    const std::string field =
        entry.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? entry.size() + 1 : semi + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    TT_CHECK(eq != std::string::npos,
             "TT_FAULTS: field '" << field << "' in entry '" << entry
                                  << "' is not key=value");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "nth") {
      spec.nth = static_cast<int>(parse_number(entry, key, value));
    } else if (key == "rank") {
      spec.rank = static_cast<int>(parse_number(entry, key, value));
    } else if (key == "count") {
      spec.count = static_cast<int>(parse_number(entry, key, value));
    } else if (key == "prob") {
      spec.prob = parse_number(entry, key, value);
      TT_CHECK(spec.prob >= 0.0 && spec.prob <= 1.0,
               "TT_FAULTS: prob must be in [0,1], got " << spec.prob);
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_number(entry, key, value));
    } else if (key == "ms") {
      spec.ms = parse_number(entry, key, value);
    } else if (key == "side") {
      if (value == "any") spec.side = FaultSide::kAny;
      else if (value == "root") spec.side = FaultSide::kRoot;
      else if (value == "worker") spec.side = FaultSide::kWorker;
      else
        TT_FAIL("TT_FAULTS: side must be any/root/worker, got '" << value << "'");
    } else {
      TT_FAIL("TT_FAULTS: unknown field '" << key << "' in entry '" << entry
                                           << "'");
    }
  }
  return spec;
}

void FaultInjector::configure(const std::string& spec_list) {
  std::size_t pos = 0;
  while (pos <= spec_list.size()) {
    const std::size_t comma = spec_list.find(',', pos);
    const std::string entry = spec_list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec_list.size() + 1 : comma + 1;
    if (entry.empty()) continue;
    arm(parse_entry(entry));
  }
}

void FaultInjector::arm(FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Armed a;
  a.rng = mix_seed(spec.seed);
  a.spec = std::move(spec);
  armed_.push_back(std::move(a));
  active_.store(true, std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  active_.store(false, std::memory_order_relaxed);
}

void FaultInjector::reload_from_env() {
  clear();
  const char* env = std::getenv("TT_FAULTS");
  if (env != nullptr && *env != '\0') configure(env);
}

bool FaultInjector::should_fire(const char* point, int rank, FaultSide side,
                                FaultSpec* fired) {
  if (!active()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (Armed& a : armed_) {
    if (a.spec.point != point) continue;
    if (a.spec.rank >= 0 && a.spec.rank != rank) continue;
    if (a.spec.side != FaultSide::kAny && a.spec.side != side) continue;
    ++a.hits;
    if (a.spec.count > 0 && a.fires >= a.spec.count) continue;  // spent
    if (a.spec.nth > 0 && a.hits != a.spec.nth) continue;
    if (a.spec.prob < 1.0 && draw_unit(a.rng) >= a.spec.prob) continue;
    ++a.fires;
    if (fired != nullptr) *fired = a.spec;
    return true;
  }
  return false;
}

long FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  long n = 0;
  for (const Armed& a : armed_)
    if (a.spec.point == point) n += a.fires;
  return n;
}

long FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  long n = 0;
  for (const Armed& a : armed_)
    if (a.spec.point == point) n += a.hits;
  return n;
}

}  // namespace tt::rt

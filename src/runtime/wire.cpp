#include "runtime/wire.hpp"

#include <cstring>

#include "runtime/fault.hpp"

namespace tt::rt {

namespace {

// Upper bound on any single variable-length field (1 GiB of payload). Guards
// the reader against allocating absurd sizes out of a corrupt length prefix.
constexpr std::uint64_t kMaxFieldBytes = std::uint64_t{1} << 30;

}  // namespace

std::uint64_t wire_checksum(const std::byte* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(std::to_integer<unsigned char>(p[i]));
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

std::vector<std::byte> WireWriter::take() {
  if (FaultInjector::instance().should_fire("wire.truncate"))
    buf_.resize(buf_.size() / 2);
  return std::move(buf_);
}

void WireWriter::raw(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::byte*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

void WireWriter::str(const std::string& s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void WireWriter::i32_list(const std::vector<int>& v) {
  u64(v.size());
  for (int x : v) u32(static_cast<std::uint32_t>(x));
}

void WireWriter::tensor(const tensor::DenseTensor& t) {
  u64(static_cast<std::uint64_t>(t.order()));
  for (int m = 0; m < t.order(); ++m) i64(t.dim(m));
  raw(t.data(), static_cast<std::size_t>(t.size()) * sizeof(double));
}

void WireReader::raw(void* p, std::size_t n) {
  TT_CHECK(pos_ + n <= buf_.size(),
           "wire message truncated: need " << n << " bytes at offset " << pos_
                                           << " of " << buf_.size());
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
}

std::uint32_t WireReader::u32() {
  std::uint32_t v;
  raw(&v, sizeof v);
  return v;
}

std::uint64_t WireReader::u64() {
  std::uint64_t v;
  raw(&v, sizeof v);
  return v;
}

std::int64_t WireReader::i64() {
  std::int64_t v;
  raw(&v, sizeof v);
  return v;
}

double WireReader::f64() {
  double v;
  raw(&v, sizeof v);
  return v;
}

std::string WireReader::str() {
  const std::uint64_t n = u64();
  TT_CHECK(n <= kMaxFieldBytes, "wire string length " << n << " exceeds limit");
  std::string s(static_cast<std::size_t>(n), '\0');
  raw(s.data(), s.size());
  return s;
}

std::vector<int> WireReader::i32_list() {
  const std::uint64_t n = u64();
  // Divide, don't multiply: n * sizeof(uint32) wraps for n >= 2^62.
  TT_CHECK(n <= kMaxFieldBytes / sizeof(std::uint32_t),
           "wire list length " << n << " exceeds limit");
  std::vector<int> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<int>(u32());
  return v;
}

tensor::DenseTensor WireReader::tensor() {
  const std::uint64_t order = u64();
  TT_CHECK(order <= 64, "wire tensor order " << order << " exceeds limit");
  // Bound the element count with overflow-safe math *before* constructing
  // the DenseTensor: its constructor multiplies the dims unchecked (signed
  // overflow UB for a corrupt shape) and allocates the product.
  constexpr std::uint64_t kMaxElems = kMaxFieldBytes / sizeof(double);
  std::vector<index_t> shape(static_cast<std::size_t>(order));
  std::uint64_t elems = 1;
  for (auto& d : shape) {
    d = i64();
    TT_CHECK(d >= 0, "wire tensor has negative dimension " << d);
    if (d == 0) {
      elems = 0;
    } else if (elems != 0) {
      TT_CHECK(static_cast<std::uint64_t>(d) <= kMaxElems / elems,
               "wire tensor payload exceeds limit");
      elems *= static_cast<std::uint64_t>(d);
    }
  }
  tensor::DenseTensor t(std::move(shape));
  raw(t.data(), static_cast<std::size_t>(elems) * sizeof(double));
  return t;
}

}  // namespace tt::rt

#include "runtime/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

#include "runtime/fault.hpp"
#include "runtime/trace.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "tensor/dense.hpp"

namespace tt::rt {

namespace {

// Protocol frame tags. One task frame per contraction per worker, answered by
// exactly one result (or error) frame — the protocol stays frame-aligned even
// across worker-side errors.
constexpr std::uint32_t kTagTask = 1;
constexpr std::uint32_t kTagResult = 2;
constexpr std::uint32_t kTagShutdown = 3;
constexpr std::uint32_t kTagError = 4;
// A fork()ed worker answers the shutdown frame with its recorded trace spans
// (rt::Trace buffers) so rank timelines merge into the root's export. Thread
// workers share the root's tracer and never ship.
constexpr std::uint32_t kTagTrace = 5;

// Workers idle between contractions; a crashed root surfaces as EOF, not a
// timeout, so the idle wait can be far more generous than the per-operation
// kDefaultTimeoutSeconds.
constexpr double kWorkerIdleTimeout = 3600.0;

// Worker-side view of one task: operand block tables plus bins referencing
// them by table index. Tensor storage is owned here; bins point into it.
// The two fault flags are decided by the *root* (fault points
// worker.kill_before_result / worker.fail_task) and shipped in the frame, so
// their nth/count counters are exact in both spawn modes — a fork()ed
// worker's own injector copy would count per-process.
struct WorkerTask {
  std::string spec;
  int threads = 1;
  bool collect_ops = false;
  bool kill_before_result = false;
  bool fail_task = false;
  double timeout_seconds = kDefaultTimeoutSeconds;
  std::vector<tensor::DenseTensor> table_a, table_b;
  std::vector<std::uint64_t> bin_index;   // global bin ids, root's order
  std::vector<symm::OutputBin> bins;      // keys unused (wire ships no keys)
};

WorkerTask parse_task(const std::vector<std::byte>& payload) {
  WireReader r(payload);
  WorkerTask task;
  task.spec = r.str();
  task.threads = static_cast<int>(r.u32());
  task.collect_ops = r.u32() != 0;
  task.kill_before_result = r.u32() != 0;
  task.fail_task = r.u32() != 0;
  task.timeout_seconds = r.f64();

  // Every element count below sizes an allocation, so bound it by what the
  // frame could possibly hold (each table entry / bin / pair costs at least
  // 8 bytes on the wire) before trusting it — a torn length prefix must
  // surface as a clean Error, not a gigabyte reserve.
  const std::uint64_t na = r.u64();
  TT_CHECK(na <= r.remaining() / 8,
           "task frame claims " << na << " A blocks in " << r.remaining() << " bytes");
  task.table_a.reserve(static_cast<std::size_t>(na));
  for (std::uint64_t i = 0; i < na; ++i) task.table_a.push_back(r.tensor());
  const std::uint64_t nb = r.u64();
  TT_CHECK(nb <= r.remaining() / 8,
           "task frame claims " << nb << " B blocks in " << r.remaining() << " bytes");
  task.table_b.reserve(static_cast<std::size_t>(nb));
  for (std::uint64_t i = 0; i < nb; ++i) task.table_b.push_back(r.tensor());

  const std::uint64_t nbins = r.u64();
  TT_CHECK(nbins <= r.remaining() / 16,
           "task frame claims " << nbins << " bins in " << r.remaining() << " bytes");
  task.bin_index.reserve(static_cast<std::size_t>(nbins));
  task.bins.reserve(static_cast<std::size_t>(nbins));
  for (std::uint64_t i = 0; i < nbins; ++i) {
    task.bin_index.push_back(r.u64());
    symm::OutputBin bin;
    const std::uint64_t npairs = r.u64();
    TT_CHECK(npairs <= r.remaining() / 8,
             "task bin claims " << npairs << " pairs in " << r.remaining() << " bytes");
    bin.pairs.reserve(static_cast<std::size_t>(npairs));
    for (std::uint64_t p = 0; p < npairs; ++p) {
      const std::uint32_t ia = r.u32();
      const std::uint32_t ib = r.u32();
      TT_CHECK(ia < task.table_a.size() && ib < task.table_b.size(),
               "task bin references block (" << ia << "," << ib
                                             << ") outside the shipped tables");
      symm::BinPair pw;  // keys are not shipped; execute_bin never reads them
      pw.ablk = &task.table_a[ia];
      pw.bblk = &task.table_b[ib];
      bin.pairs.push_back(pw);
    }
    task.bins.push_back(std::move(bin));
  }
  TT_CHECK(r.done(), "task payload has " << r.remaining() << " trailing bytes");
  return task;
}

// Executes one parsed task and serializes the reply payload.
std::vector<std::byte> run_task(const WorkerTask& task) {
  TT_TRACE_SPAN("sched.worker_task", TraceCat::kContract);
  std::vector<symm::BinExecution> done(task.bins.size());
  Timer busy;
  support::parallel_for(
      static_cast<index_t>(task.bins.size()),
      [&](index_t i) {
        done[static_cast<std::size_t>(i)] =
            symm::execute_bin(task.bins[static_cast<std::size_t>(i)], task.spec,
                              task.collect_ops, nullptr);
      },
      task.threads);
  const double busy_seconds = busy.seconds();

  WireWriter w;
  w.f64(busy_seconds);
  w.u64(done.size());
  for (std::size_t i = 0; i < done.size(); ++i) {
    const symm::BinExecution& bin = done[i];
    w.u64(task.bin_index[i]);
    w.f64(bin.flops);
    w.f64(bin.permuted_words);
    w.u64(bin.ops.size());
    for (const symm::BlockOpCost& op : bin.ops) {
      w.f64(op.flops);
      w.f64(op.words_a);
      w.f64(op.words_b);
      w.f64(op.words_c);
    }
    w.tensor(bin.result);
  }
  return w.take();
}

// Worker service loop: one task in, one result (or error) out, until the
// shutdown frame or the root disappears.
void worker_loop(int rank, Channel& ch) {
  for (;;) {
    Frame f;
    try {
      f = ch.recv_frame(kWorkerIdleTimeout);
    } catch (const Error&) {
      return;  // root gone (EOF) or wedged; nothing left to serve
    }
    if (f.tag == kTagShutdown) {
      // Ship recorded spans home before exiting so this rank's timeline joins
      // the root's export. Only fork()ed workers own a private tracer; thread
      // workers already share the root's buffers.
      Trace& trace = Trace::instance();
      if (trace.enabled() && trace.is_forked_child()) {
        try {
          ch.send_frame(kTagTrace, trace.serialize_and_clear(), 2.0);
        } catch (const Error&) {
          // Root gone or not collecting; the spans die with this process.
        }
      }
      return;
    }
    if (f.tag != kTagTask) return;  // protocol violation: stop serving
    double timeout = kDefaultTimeoutSeconds;
    try {
      const WorkerTask task = parse_task(f.payload);
      timeout = task.timeout_seconds;
      if (task.fail_task)
        TT_FAIL("fault injection: worker " << rank << " ordered to fail its task");
      std::vector<std::byte> reply = run_task(task);
      if (task.kill_before_result) {
        // Die after the work, before the result — the root observes EOF where
        // it expected a result frame, exactly like a real mid-contraction
        // crash. In process mode the child then _exit()s; in thread mode the
        // closed channel is the same root-side observable.
        ch.close();
        return;
      }
      ch.send_frame(kTagResult, reply, task.timeout_seconds);
    } catch (const Error& e) {
      // Keep the frame protocol aligned: the root gets an error frame where
      // it expected a result, and throws on its side.
      try {
        WireWriter w;
        w.str(e.what());
        ch.send_frame(kTagError, w.take(), timeout);
      } catch (const Error&) {
        return;  // cannot even report: root will see EOF on our exit
      }
    }
  }
}

}  // namespace

double DistStats::total_bytes() const {
  double sum = 0.0;
  for (const Rank& r : ranks) sum += r.bytes_sent + r.bytes_received;
  return sum;
}

double DistStats::total_flops() const {
  double sum = 0.0;
  for (const Rank& r : ranks) sum += r.flops;
  return sum;
}

void DistStats::charge(CostTracker& t) const {
  t.add_time(Category::kGemm, critical_busy_seconds);
  t.add_time(Category::kComm, comm_seconds);
  t.add_time(Category::kImbalance, imbalance_seconds);
  t.add_time(Category::kRecovery, recovery_seconds);
  t.add_words(exchange_words);
  for (const Rank& r : ranks) t.add_flops(r.flops);  // fixed rank order
  t.add_supersteps(static_cast<double>(contractions));
}

void DistStats::merge(const DistStats& other) {
  if (ranks.size() < other.ranks.size()) ranks.resize(other.ranks.size());
  for (std::size_t i = 0; i < other.ranks.size(); ++i) {
    ranks[i].bins += other.ranks[i].bins;
    ranks[i].flops += other.ranks[i].flops;
    ranks[i].busy_seconds += other.ranks[i].busy_seconds;
    ranks[i].bytes_sent += other.ranks[i].bytes_sent;
    ranks[i].bytes_received += other.ranks[i].bytes_received;
  }
  contractions += other.contractions;
  comm_seconds += other.comm_seconds;
  exchange_words += other.exchange_words;
  critical_busy_seconds += other.critical_busy_seconds;
  imbalance_seconds += other.imbalance_seconds;
  recovery_seconds += other.recovery_seconds;
  replicated_operand = other.replicated_operand;
}

Scheduler::Scheduler(const SchedulerOptions& opts) : opts_(opts) {
  TT_CHECK(opts_.num_ranks >= 1,
           "scheduler needs at least one rank, got " << opts_.num_ranks);
  live_.assign(static_cast<std::size_t>(opts_.num_ranks), 1);
  respawn_attempts_.assign(static_cast<std::size_t>(opts_.num_ranks), 0);
  if (opts_.num_ranks > 1)
    group_ = std::make_unique<WorkerGroup>(opts_.num_ranks, opts_.mode, worker_loop);
}

Scheduler::~Scheduler() {
  try {
    shutdown();
  } catch (...) {
    // Destructor must not throw; WorkerGroup teardown hard-kills leftovers.
  }
}

void Scheduler::kill_rank(int rank) {
  TT_CHECK(group_ != nullptr, "kill_rank on a single-rank scheduler");
  group_->kill(rank);
}

int Scheduler::live_workers() const {
  int n = 0;
  for (int r = 1; r < opts_.num_ranks; ++r)
    if (live_[static_cast<std::size_t>(r)]) ++n;
  return n;
}

void Scheduler::heal(const std::vector<int>& dead_ranks, DistStats& d) {
  if (dead_ranks.empty() || group_ == nullptr) return;
  TT_TRACE_SPAN("sched.heal", TraceCat::kRecovery);
  Timer rec;
  for (int r : dead_ranks) {
    if (!live_[static_cast<std::size_t>(r)]) continue;  // duplicate report
    live_[static_cast<std::size_t>(r)] = 0;
    bool revived = false;
    while (respawn_attempts_[static_cast<std::size_t>(r)] < opts_.retry.max_attempts &&
           rec.seconds() <= opts_.retry.deadline_seconds) {
      const int attempt = ++respawn_attempts_[static_cast<std::size_t>(r)];
      const double delay =
          opts_.retry.base_delay_seconds *
          static_cast<double>(1u << static_cast<unsigned>(std::min(attempt - 1, 20)));
      if (delay > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      try {
        group_->respawn(r);
        ++stats_.respawns;
        live_[static_cast<std::size_t>(r)] = 1;
        revived = true;
        break;
      } catch (const Error&) {
        // Spawn itself failed (fd/process pressure); back off and retry
        // while the rank still has attempts and the deadline allows.
      }
    }
    if (!revived) {
      // Out of attempts (or budget): reap whatever is left of the worker and
      // fold its share into the survivors from the next contraction on.
      group_->retire(r);
      ++stats_.ranks_lost;
    }
  }
  if (live_workers() == 0 && opts_.num_ranks > 1) stats_.degraded = true;
  d.recovery_seconds += rec.seconds();
}

void Scheduler::shutdown() {
  if (group_ == nullptr) return;
  for (int r = 1; r < opts_.num_ranks; ++r) {
    try {
      if (group_->channel(r).open())
        group_->channel(r).send_frame(kTagShutdown, {}, 1.0);
    } catch (const Error&) {
      // Dead workers are reaped by join() below.
    }
  }
  // Fork()ed workers answer the shutdown frame with their trace buffers;
  // absorb them so the export holds every rank's timeline. A worker that died
  // or predates tracing simply times out / EOFs — ignore it.
  if (Trace::instance().enabled() && opts_.mode == SpawnMode::kProcess) {
    for (int r = 1; r < opts_.num_ranks; ++r) {
      try {
        if (!group_->channel(r).open()) continue;
        const Frame f = group_->channel(r).recv_frame(2.0);
        if (f.tag == kTagTrace) Trace::instance().absorb(f.payload, r);
      } catch (const Error&) {
      }
    }
  }
  group_->join(/*timeout_seconds=*/5.0);
  group_.reset();
}

symm::BlockTensor Scheduler::contract(const symm::BlockTensor& a,
                                      const symm::BlockTensor& b,
                                      const std::vector<std::pair<int, int>>& pairs,
                                      symm::ContractStats* stats) {
  TT_CHECK(!broken_,
           "scheduler is broken after a failed exchange; construct a new one");
  TT_TRACE_SPAN("sched.contract", TraceCat::kScheduler);
  const symm::ContractPlan plan = symm::make_contract_plan(a, b, pairs);
  symm::BlockTensor c(plan.out_indices, plan.out_flux);
  const std::vector<symm::OutputBin> bins = symm::enumerate_bins(a, b, pairs, plan);
  const bool collect_ops = stats != nullptr;
  const bool healing = opts_.retry.max_attempts > 0;
  FaultInjector& inj = FaultInjector::instance();

  // --- placement -------------------------------------------------------------
  // Bins are partitioned over the *live* ranks only: slot 0 is the root,
  // slot s >= 1 maps to the s-th surviving worker. With every worker retired
  // this degenerates to a serial root-only partition — the graceful-
  // degradation endpoint. Placement affects only *where* a bin runs, never
  // the global bin order, so results and ContractStats stay bitwise identical
  // no matter which ranks are alive.
  std::vector<int> slot_rank{0};
  for (int r = 1; r < opts_.num_ranks; ++r)
    if (live_[static_cast<std::size_t>(r)]) slot_rank.push_back(r);
  const int S = static_cast<int>(slot_rank.size());

  std::vector<double> weights(bins.size());
  for (std::size_t i = 0; i < bins.size(); ++i) weights[i] = bins[i].est_flops;
  const Partition part = partition_bins(weights, S);
  const int replicated = choose_replicated(static_cast<double>(a.num_elements()),
                                           static_cast<double>(b.num_elements()));

  std::vector<std::vector<std::size_t>> slot_bins(static_cast<std::size_t>(S));
  for (std::size_t g = 0; g < bins.size(); ++g)
    slot_bins[static_cast<std::size_t>(part.rank_of[g])].push_back(g);

  DistStats d;
  d.ranks.resize(static_cast<std::size_t>(opts_.num_ranks));
  d.contractions = 1;
  d.replicated_operand = replicated;

  // Failure capture: a failed slot's bins are re-executed on the root; a
  // *dead* rank (EOF, timeout, desync, corrupt frame) is additionally healed
  // afterwards. A worker that merely answered with an error frame is alive
  // and frame-aligned — redistribute only, no respawn.
  std::vector<char> slot_failed(static_cast<std::size_t>(S), 0);
  std::vector<int> dead_ranks;
  auto record_failure = [&](int slot, int rank, bool dead) {
    ++stats_.faults_detected;
    slot_failed[static_cast<std::size_t>(slot)] = 1;
    if (dead) dead_ranks.push_back(rank);
  };

  // --- ship operand slices + bin lists to the workers ------------------------
  if (group_) {
    TT_TRACE_SPAN("sched.ship", TraceCat::kScheduler);
    for (int s = 1; s < S; ++s) {
      const int r = slot_rank[static_cast<std::size_t>(s)];
      Channel& ch = group_->channel(r);
      const double sent0 = ch.bytes_sent(), ss0 = ch.send_seconds();

      // Block tables: the replicated operand ships whole (in key order); the
      // distributed operand ships only blocks this rank's bins reference, in
      // first-touch (bin, pair) order — deterministic either way.
      std::vector<const tensor::DenseTensor*> table_a, table_b;
      // tt-lint: allow(ordered-iteration) lookup-only interning index: never iterated; shipped table order is first-touch insertion order, which is deterministic
      std::unordered_map<const tensor::DenseTensor*, std::uint32_t> index_a, index_b;
      auto intern = [](std::vector<const tensor::DenseTensor*>& table, auto& index,
                       const tensor::DenseTensor* blk) {
        auto [it, fresh] = index.try_emplace(blk, static_cast<std::uint32_t>(table.size()));
        if (fresh) table.push_back(blk);
        return it->second;
      };
      if (replicated == 0)
        for (const auto& kv : a.blocks()) intern(table_a, index_a, &kv.second);
      else
        for (const auto& kv : b.blocks()) intern(table_b, index_b, &kv.second);

      struct WirePair {
        std::uint32_t ia, ib;
      };
      std::vector<std::vector<WirePair>> wire_bins;
      wire_bins.reserve(slot_bins[static_cast<std::size_t>(s)].size());
      for (std::size_t g : slot_bins[static_cast<std::size_t>(s)]) {
        std::vector<WirePair>& wb = wire_bins.emplace_back();
        wb.reserve(bins[g].pairs.size());
        for (const symm::BinPair& pw : bins[g].pairs)
          wb.push_back({intern(table_a, index_a, pw.ablk),
                        intern(table_b, index_b, pw.bblk)});
      }

      WireWriter w;
      w.str(plan.spec);
      w.u32(static_cast<std::uint32_t>(opts_.worker_threads));
      w.u32(collect_ops ? 1 : 0);
      // Root-decided worker faults travel inside the task frame (see
      // WorkerTask) so their counters are exact in both spawn modes.
      w.u32(inj.should_fire("worker.kill_before_result", r, FaultSide::kWorker) ? 1 : 0);
      w.u32(inj.should_fire("worker.fail_task", r, FaultSide::kWorker) ? 1 : 0);
      w.f64(opts_.timeout_seconds);
      w.u64(table_a.size());
      double operand_words = 0.0;
      for (const tensor::DenseTensor* t : table_a) {
        w.tensor(*t);
        operand_words += static_cast<double>(t->size());
      }
      w.u64(table_b.size());
      for (const tensor::DenseTensor* t : table_b) {
        w.tensor(*t);
        operand_words += static_cast<double>(t->size());
      }
      w.u64(wire_bins.size());
      for (std::size_t i = 0; i < wire_bins.size(); ++i) {
        w.u64(slot_bins[static_cast<std::size_t>(s)][i]);
        w.u64(wire_bins[i].size());
        for (const WirePair& p : wire_bins[i]) {
          w.u32(p.ia);
          w.u32(p.ib);
        }
      }

      try {
        ch.send_frame(kTagTask, w.bytes(), opts_.timeout_seconds);
      } catch (const Error&) {
        if (!healing) {
          broken_ = true;
          throw;
        }
        record_failure(s, r, /*dead=*/true);
        continue;
      }
      d.exchange_words += operand_words;
      d.ranks[static_cast<std::size_t>(r)].bytes_sent = ch.bytes_sent() - sent0;
      d.comm_seconds += ch.send_seconds() - ss0;
    }
  }

  // --- execute the root's own share while the workers run theirs -------------
  std::vector<symm::BinExecution> done(bins.size());
  {
    TT_TRACE_SPAN("sched.root_bins", TraceCat::kContract);
    const std::vector<std::size_t>& mine = slot_bins[0];
    Timer busy;
    support::parallel_for(
        static_cast<index_t>(mine.size()),
        [&](index_t i) {
          const std::size_t g = mine[static_cast<std::size_t>(i)];
          done[g] = symm::execute_bin(bins[g], plan.spec, collect_ops, nullptr);
        },
        opts_.root_threads);
    d.ranks[0].busy_seconds = busy.seconds();
    d.ranks[0].bins = static_cast<int>(mine.size());
    for (std::size_t g : mine) d.ranks[0].flops += done[g].flops;
  }

  // --- gather worker results in fixed slot order -----------------------------
  if (group_) {
    TT_TRACE_SPAN("sched.gather", TraceCat::kScheduler);
    for (int s = 1; s < S; ++s) {
      if (slot_failed[static_cast<std::size_t>(s)]) continue;
      const int r = slot_rank[static_cast<std::size_t>(s)];
      Channel& ch = group_->channel(r);
      const double recv0 = ch.bytes_received(), rs0 = ch.recv_seconds();
      DistStats::Rank& rr = d.ranks[static_cast<std::size_t>(r)];
      Frame f;
      try {
        f = ch.recv_frame(opts_.timeout_seconds);
      } catch (const Error&) {
        // EOF (dead), timeout (wedged), or checksum mismatch (corrupt): the
        // rank's protocol state is unknown — retire/respawn it in heal().
        if (!healing) {
          broken_ = true;
          throw;
        }
        record_failure(s, r, /*dead=*/true);
        continue;
      }
      rr.bytes_received = ch.bytes_received() - recv0;
      d.comm_seconds += ch.recv_seconds() - rs0;

      if (f.tag == kTagError) {
        // The report itself may be damaged (e.g. wire.truncate hitting the
        // worker's error-frame build); an unreadable message must not escape
        // the healing path.
        std::string msg = "(unreadable error frame)";
        try {
          WireReader er(f.payload);
          msg = er.str();
        } catch (const Error&) {
        }
        if (!healing) {
          broken_ = true;
          TT_FAIL("scheduler rank " << r << " failed: " << msg);
        }
        record_failure(s, r, /*dead=*/false);
        continue;
      }

      try {
        TT_CHECK(f.tag == kTagResult,
                 "scheduler rank " << r << " sent unexpected frame tag " << f.tag);
        WireReader reader(f.payload);
        rr.busy_seconds = reader.f64();
        const std::uint64_t nbins = reader.u64();
        const std::vector<std::size_t>& expect = slot_bins[static_cast<std::size_t>(s)];
        TT_CHECK(nbins == expect.size(),
                 "scheduler rank " << r << " returned " << nbins
                                   << " bins, expected " << expect.size());
        rr.bins = static_cast<int>(nbins);
        for (std::size_t i = 0; i < expect.size(); ++i) {
          const std::uint64_t g = reader.u64();
          TT_CHECK(g == expect[i], "scheduler rank " << r << " returned bin " << g
                                                     << ", expected " << expect[i]);
          symm::BinExecution& bin = done[static_cast<std::size_t>(g)];
          bin.flops = reader.f64();
          bin.permuted_words = reader.f64();
          const std::uint64_t nops = reader.u64();
          // 4 doubles per op on the wire; bound before the resize so a
          // corrupt count heals instead of OOMing the root.
          TT_CHECK(nops <= reader.remaining() / 32,
                   "result bin claims " << nops << " ops in "
                                        << reader.remaining() << " bytes");
          bin.ops.resize(static_cast<std::size_t>(nops));
          for (symm::BlockOpCost& op : bin.ops) {
            op.flops = reader.f64();
            op.words_a = reader.f64();
            op.words_b = reader.f64();
            op.words_c = reader.f64();
          }
          bin.result = reader.tensor();
          rr.flops += bin.flops;
          d.exchange_words += static_cast<double>(bin.result.size());
        }
      } catch (const Error&) {
        // Unparseable or desynchronized reply. Any partially-parsed bins are
        // recomputed below (deterministically, so still bitwise identical);
        // the rank itself is in unknown protocol state — heal it.
        if (!healing) {
          broken_ = true;
          throw;
        }
        rr.bins = 0;
        rr.flops = 0.0;
        rr.busy_seconds = 0.0;
        record_failure(s, r, /*dead=*/true);
        continue;
      }
    }
  }

  // --- makeup: re-execute failed slots' bins on the root ---------------------
  {
    std::vector<std::size_t> makeup;
    for (int s = 1; s < S; ++s)
      if (slot_failed[static_cast<std::size_t>(s)]) {
        makeup.insert(makeup.end(), slot_bins[static_cast<std::size_t>(s)].begin(),
                      slot_bins[static_cast<std::size_t>(s)].end());
        ++stats_.retries;
      }
    if (!makeup.empty()) {
      TT_TRACE_SPAN("sched.makeup", TraceCat::kRecovery);
      Timer rec;
      support::parallel_for(
          static_cast<index_t>(makeup.size()),
          [&](index_t i) {
            const std::size_t g = makeup[static_cast<std::size_t>(i)];
            done[g] = symm::execute_bin(bins[g], plan.spec, collect_ops, nullptr);
          },
          opts_.root_threads);
      d.recovery_seconds += rec.seconds();
      d.ranks[0].bins += static_cast<int>(makeup.size());
      for (std::size_t g : makeup) d.ranks[0].flops += done[g].flops;
    }
  }

  // --- deterministic assembly + reduction in global bin order ----------------
  for (std::size_t g = 0; g < bins.size(); ++g)
    c.accumulate(bins[g].out_key, std::move(done[g].result));
  if (stats) {
    stats->num_bins += static_cast<int>(bins.size());
    for (symm::BinExecution& bin : done) {
      stats->total_flops += bin.flops;
      stats->permuted_words += bin.permuted_words;
      stats->block_ops.insert(stats->block_ops.end(), bin.ops.begin(),
                              bin.ops.end());
    }
  }

  // --- measured cost bookkeeping ---------------------------------------------
  double max_busy = 0.0;
  for (const DistStats::Rank& r : d.ranks)
    max_busy = std::max(max_busy, r.busy_seconds);
  d.critical_busy_seconds = max_busy;
  // Idle tails over the ranks that *participated* — retired ranks are no
  // longer part of the machine and must not read as permanent imbalance.
  for (int s = 0; s < S; ++s)
    d.imbalance_seconds +=
        max_busy - d.ranks[static_cast<std::size_t>(slot_rank[static_cast<std::size_t>(s)])]
                       .busy_seconds;

  // --- respawn dead ranks (bounded attempts + backoff) -----------------------
  heal(dead_ranks, d);
  if (!dead_ranks.empty())
    TT_TRACE_COUNTER("live_workers", static_cast<double>(live_workers()));

  last_ = d;
  accumulated_.merge(d);
  return c;
}

}  // namespace tt::rt

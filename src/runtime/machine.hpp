// Machine models for the simulated distributed runtime.
//
// The paper benchmarks on two architectures whose contrast drives Figs 7 and
// 11–13: Blue Waters Cray XE6 nodes (strong serial cores, Gemini network,
// lower node throughput) and Stampede2 KNL nodes (high node throughput, weak
// serial cores, Omni-Path network). We reproduce the architecture dependence
// through these parameter sets only; see docs/BENCHMARKS.md for the
// substitution rationale.
#pragma once

#include <string>

#include "support/types.hpp"

namespace tt::rt {

/// Parameters describing one node type + interconnect of a virtual cluster.
struct MachineModel {
  std::string name;

  /// Achievable dense GEMM rate of a full node (GFlop/s). Calibrated to the
  /// effective rates the paper reports, not vendor peak.
  double node_gflops = 100.0;

  /// Single-core rate for serial/latency-bound work such as per-block kernel
  /// launches and index bookkeeping (GFlop/s equivalents).
  double core_gflops = 4.0;

  /// Fraction of node_gflops reachable by sparse (nonzero-indexed) kernels.
  double sparse_efficiency = 0.25;

  /// Per-node memory bandwidth (GB/s) — prices local tensor transposition.
  double mem_bandwidth_gbs = 50.0;

  /// Per-node network injection bandwidth (GB/s).
  double net_bandwidth_gbs = 5.0;

  /// One-way network/global-synchronization latency (microseconds); each BSP
  /// superstep pays this once.
  double net_latency_us = 2.0;

  /// Per-block-contraction launch overhead (microseconds): mapping decisions,
  /// communicator setup — the "CTF transposition/mapping" serial costs that
  /// penalize the list algorithm when blocks are many and small.
  double block_overhead_us = 150.0;

  /// Cores per node (informational; intra-node parallelism is inside
  /// node_gflops).
  int cores_per_node = 16;

  /// Fraction of node_gflops reachable by the (Sca)LAPACK-style SVD.
  double svd_efficiency = 0.12;
};

/// Blue Waters Cray XE6 preset: dual 8-core Interlagos, Gemini interconnect.
MachineModel blue_waters();

/// Stampede2 KNL preset: 68-core Knight's Landing, Omni-Path interconnect.
MachineModel stampede2();

/// The physical host running this process (used when no simulation is wanted).
MachineModel localhost();

/// Virtual cluster = machine model × node count × MPI processes per node.
/// Processes-per-node matters because the paper sweeps 16 vs 32 procs/node:
/// more processes shrink per-process memory and raise communicator overheads
/// but improve small-block concurrency.
struct Cluster {
  MachineModel machine;
  int nodes = 1;
  int procs_per_node = 16;

  int total_procs() const { return nodes * procs_per_node; }

  /// GEMM rate of the whole cluster (GFlop/s), with a mild penalty when the
  /// node is oversubscribed beyond its core count.
  double cluster_gflops() const;

  /// GEMM rate of a single process (GFlop/s).
  double proc_gflops() const { return cluster_gflops() / total_procs(); }
};

}  // namespace tt::rt

// BSP cost tracker: accumulates simulated time per profile category plus raw
// BSP quantities (flops, communicated words, supersteps).
//
// The categories mirror paper Fig. 7: GEMM/MKL, communication, CTF
// transposition (local data reordering + mapping), SVD, and load imbalance.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace tt::rt {

enum class Category : int {
  kGemm = 0,       // local matrix-matrix multiply work
  kComm = 1,       // MPI communication along the critical path
  kTranspose = 2,  // CTF transposition: local reordering, mapping, small serial ops
  kSvd = 3,        // ScaLAPACK pdgesvd-equivalent
  kImbalance = 4,  // idle time from blocks too small to fill the machine
  kPrefetch = 5,   // async environment prefetch overlapped with Davidson
  kRecovery = 6,   // fault recovery: makeup execution, respawns, backoff
  kOther = 7,      // keep last: breakdown reports drop the trailing category
};
constexpr int kNumCategories = 8;

const char* category_name(Category c);

/// Accumulated simulated cost of a run region. Copyable; diffable.
class CostTracker {
 public:
  /// Charge `seconds` of simulated time to category `c`.
  void add_time(Category c, double seconds);

  /// Record raw BSP quantities (do not add time by themselves).
  void add_flops(double flops) { flops_ += flops; }
  void add_words(double words) { words_ += words; }
  void add_supersteps(double steps) { supersteps_ += steps; }

  double time(Category c) const { return time_[static_cast<int>(c)]; }
  double total_time() const;
  double flops() const { return flops_; }
  double words() const { return words_; }
  double supersteps() const { return supersteps_; }

  /// Percentage share of each category (sums to 100 when total > 0).
  std::array<double, kNumCategories> percentages() const;

  /// this - other, category-wise (for measuring a sub-region).
  CostTracker diff(const CostTracker& start) const;

  /// this += other, category-wise (shard reduction).
  void merge(const CostTracker& other);

  void reset();

  /// One-line summary for logs.
  std::string summary() const;

 private:
  std::array<double, kNumCategories> time_{};
  double flops_ = 0.0;
  double words_ = 0.0;
  double supersteps_ = 0.0;
};

/// Thread-safe CostTracker accumulation via per-thread shards: concurrent
/// code charges shard(slot) without locks (one shard per executor slot, see
/// support::execution_slot()), and merged()/merge_into() folds the shards in
/// slot order on the coordinating thread once the parallel region finished.
/// Shards are cache-line padded so concurrent charging does not false-share.
class CostTrackerShards {
 public:
  explicit CostTrackerShards(int num_shards);

  int num_shards() const { return static_cast<int>(slots_.size()); }

  /// The shard owned by executor slot i. Not synchronized: each slot must be
  /// charged by at most one thread at a time. Slot indices are unique within
  /// one parallel_for, so charging shard(support::execution_slot()) is safe
  /// from inside a single parallel region — but two concurrent top-level
  /// regions (different application threads) both hand out slots starting at
  /// 0, so they must not share one CostTrackerShards instance.
  CostTracker& shard(int i);

  /// Fold every shard into `target` in slot order (deterministic reduction).
  void merge_into(CostTracker& target) const;

  /// All shards folded into a fresh tracker, in slot order.
  CostTracker merged() const;

  void reset();

 private:
  struct alignas(64) Slot {
    CostTracker tracker;
  };
  std::vector<Slot> slots_;
};

}  // namespace tt::rt

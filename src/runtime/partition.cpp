#include "runtime/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace tt::rt {

double Partition::load_bound() const {
  const int ranks = static_cast<int>(rank_load.size());
  return (ranks > 0 ? total_weight / ranks : 0.0) + max_weight;
}

Partition partition_bins(const std::vector<double>& weights, int num_ranks) {
  TT_CHECK(num_ranks >= 1, "partition needs at least one rank, got " << num_ranks);
  for (double w : weights)
    TT_CHECK(w >= 0.0, "bin weight must be non-negative, got " << w);

  Partition p;
  p.rank_of.assign(weights.size(), 0);
  p.rank_load.assign(static_cast<std::size_t>(num_ranks), 0.0);

  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return weights[i] > weights[j];  // descending; stable = ties by bin index
  });

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const int rank = static_cast<int>(pos % static_cast<std::size_t>(num_ranks));
    const std::size_t bin = order[pos];
    p.rank_of[bin] = rank;
    p.rank_load[static_cast<std::size_t>(rank)] += weights[bin];
    p.max_weight = std::max(p.max_weight, weights[bin]);
    p.total_weight += weights[bin];
  }
  return p;
}

int choose_replicated(double words_a, double words_b) {
  return words_b < words_a ? 1 : 0;
}

}  // namespace tt::rt

#include "runtime/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/fault.hpp"
#include "runtime/trace.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace tt::rt {

namespace {

// Frame header: magic, tag, payload length, payload checksum. The magic makes
// stream desync (e.g. a reader resuming mid-payload after a peer died) a
// detected error; the checksum makes a corrupted payload a detected error
// instead of garbage tensor data.
constexpr std::uint32_t kFrameMagic = 0x54544652;  // "TTFR"
constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;
constexpr std::size_t kHeaderBytes = 24;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  TT_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
           "cannot set O_NONBLOCK on transport fd " << fd);
}

// Remaining milliseconds of a deadline for poll(); >= 1 while time is left so
// we never spin, 0 once expired.
int remaining_ms(const Timer& t, double timeout_seconds) {
  const double left = timeout_seconds - t.seconds();
  if (left <= 0.0) return 0;
  return static_cast<int>(left * 1000.0) + 1;
}

}  // namespace

const char* spawn_mode_name(SpawnMode m) {
  return m == SpawnMode::kProcess ? "process" : "thread";
}

SpawnMode spawn_mode_from_env() {
  const char* env = std::getenv("TT_SCHED_MODE");
  if (env == nullptr || *env == '\0') return SpawnMode::kProcess;
  const std::string v(env);
  if (v == "process") return SpawnMode::kProcess;
  if (v == "thread") return SpawnMode::kThread;
  TT_FAIL("TT_SCHED_MODE must be 'process' or 'thread', got '" << v << "'");
}

Channel::Channel(int fd) : fd_(fd) {}

Channel::~Channel() { close(); }

Channel::Channel(Channel&& other) noexcept { *this = std::move(other); }

Channel& Channel::operator=(Channel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    fault_rank_ = other.fault_rank_;
    fault_side_ = other.fault_side_;
    bytes_sent_ = other.bytes_sent_;
    bytes_received_ = other.bytes_received_;
    send_seconds_ = other.send_seconds_;
    recv_seconds_ = other.recv_seconds_;
    other.fd_ = -1;
  }
  return *this;
}

void Channel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Channel, Channel> Channel::make_pair() {
  int fds[2];
  TT_CHECK(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
           "socketpair failed: " << std::strerror(errno));
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
  return {Channel(fds[0]), Channel(fds[1])};
}

void Channel::write_all(const std::byte* p, std::size_t n, double timeout_seconds) {
  TT_CHECK(open(), "send on closed channel");
  Timer deadline;
  std::size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the process
    // with SIGPIPE — the fault tests rely on a clean throw.
    const ssize_t w = ::send(fd_, p + done, n - done, MSG_NOSIGNAL);
    if (w > 0) {
      done += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EPIPE || errno == ECONNRESET))
      TT_FAIL("transport peer closed during send ("
              << std::strerror(errno) << ") after " << done << "/" << n << " bytes");
    if (w < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      TT_FAIL("transport send failed: " << std::strerror(errno));
    const int ms = remaining_ms(deadline, timeout_seconds);
    TT_CHECK(ms > 0, "transport send timed out after " << timeout_seconds
                                                       << "s (" << done << "/" << n
                                                       << " bytes written)");
    struct pollfd pfd{fd_, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, ms);
    TT_CHECK(pr >= 0 || errno == EINTR,
             "transport poll failed: " << std::strerror(errno));
    if (pr > 0 && (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) &&
        !(pfd.revents & POLLOUT))
      TT_FAIL("transport peer hung up during send");
  }
}

void Channel::read_all(std::byte* p, std::size_t n, double timeout_seconds,
                       bool eof_is_truncation) {
  TT_CHECK(open(), "recv on closed channel");
  Timer deadline;
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd_, p + done, n - done, 0);
    if (r > 0) {
      done += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (eof_is_truncation || done > 0)
        TT_FAIL("transport frame truncated: peer closed after " << done << "/" << n
                                                                << " bytes");
      TT_FAIL("transport peer closed the connection");
    }
    if (errno == ECONNRESET)
      TT_FAIL("transport peer died during recv (connection reset) after "
              << done << "/" << n << " bytes");
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)
      TT_FAIL("transport recv failed: " << std::strerror(errno));
    const int ms = remaining_ms(deadline, timeout_seconds);
    TT_CHECK(ms > 0, "transport recv timed out after " << timeout_seconds
                                                       << "s (" << done << "/" << n
                                                       << " bytes read)");
    struct pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, ms);
    TT_CHECK(pr >= 0 || errno == EINTR,
             "transport poll failed: " << std::strerror(errno));
    // POLLHUP with pending data still reads fine; the next recv() returning 0
    // handles the drained-then-closed case above.
  }
}

void Channel::send_frame(std::uint32_t tag, const std::vector<std::byte>& payload,
                         double timeout_seconds) {
  TT_TRACE_SPAN("wire.send", TraceCat::kComm);
  Timer t;
  FaultInjector& inj = FaultInjector::instance();
  FaultSpec delay;
  if (inj.should_fire("frame.delay", fault_rank_, fault_side_, &delay) &&
      delay.ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay.ms));
  const bool truncate = inj.should_fire("frame.truncate", fault_rank_, fault_side_);
  const bool corrupt =
      !payload.empty() && inj.should_fire("payload.corrupt", fault_rank_, fault_side_);

  std::byte header[kHeaderBytes];
  const std::uint32_t magic = kFrameMagic;
  const std::uint64_t len = payload.size();
  // Checksum over the *original* payload, so an injected corruption below is
  // exactly what a real bit flip would be: a mismatch the receiver detects.
  const std::uint64_t sum = wire_checksum(payload.data(), payload.size());
  TT_CHECK(len <= kMaxFramePayload, "frame payload " << len << " exceeds limit");
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &tag, 4);
  std::memcpy(header + 8, &len, 8);
  std::memcpy(header + 16, &sum, 8);

  const std::vector<std::byte>* body = &payload;
  std::vector<std::byte> mangled;
  if (corrupt) {
    mangled = payload;
    mangled[mangled.size() / 2] ^= std::byte{0x01};
    body = &mangled;
  }

  write_all(header, kHeaderBytes, timeout_seconds);
  if (truncate) {
    const std::size_t part = body->size() / 2;
    if (part > 0) write_all(body->data(), part, timeout_seconds);
    close();
    TT_FAIL("fault injection: frame truncated after " << part << "/"
                                                      << body->size()
                                                      << " payload bytes");
  }
  if (!body->empty()) write_all(body->data(), body->size(), timeout_seconds);
  bytes_sent_ += static_cast<double>(kHeaderBytes + payload.size());
  send_seconds_ += t.seconds();
}

Frame Channel::recv_frame(double timeout_seconds) {
  TT_TRACE_SPAN("wire.recv", TraceCat::kComm);
  Timer t;
  std::byte header[kHeaderBytes];
  read_all(header, kHeaderBytes, timeout_seconds, /*eof_is_truncation=*/false);
  std::uint32_t magic = 0;
  Frame f;
  std::uint64_t len = 0;
  std::uint64_t sum = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&f.tag, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  std::memcpy(&sum, header + 16, 8);
  TT_CHECK(magic == kFrameMagic,
           "transport stream desynchronized: bad frame magic 0x" << std::hex << magic);
  TT_CHECK(len <= kMaxFramePayload, "frame payload length " << len << " exceeds limit");
  f.payload.resize(static_cast<std::size_t>(len));
  if (len > 0)
    read_all(f.payload.data(), f.payload.size(), timeout_seconds,
             /*eof_is_truncation=*/true);
  TT_CHECK(wire_checksum(f.payload.data(), f.payload.size()) == sum,
           "transport frame corrupt: payload checksum mismatch ("
               << f.payload.size() << " bytes, tag " << f.tag << ")");
  bytes_received_ += static_cast<double>(kHeaderBytes + f.payload.size());
  recv_seconds_ += t.seconds();
  return f;
}

WorkerGroup::WorkerGroup(int num_ranks, SpawnMode mode, WorkerFn fn)
    : num_ranks_(num_ranks), mode_(mode), fn_(std::move(fn)) {
  TT_CHECK(num_ranks >= 1, "WorkerGroup needs at least one rank, got " << num_ranks);
  root_channels_.resize(static_cast<std::size_t>(num_ranks));
  child_pids_.assign(static_cast<std::size_t>(num_ranks), -1);
  worker_threads_.resize(static_cast<std::size_t>(num_ranks));
  worker_channels_.resize(static_cast<std::size_t>(num_ranks));

  for (int rank = 1; rank < num_ranks; ++rank) spawn_rank(rank);
}

void WorkerGroup::spawn_rank(int rank) {
  auto [root_end, worker_end] = Channel::make_pair();
  root_end.set_fault_peer(rank, FaultSide::kRoot);
  worker_end.set_fault_peer(rank, FaultSide::kWorker);
  if (mode_ == SpawnMode::kProcess) {
    // Child output buffers are duplicated by fork; flush so a worker that
    // aborts cannot replay the parent's pending stdout.
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    TT_CHECK(pid >= 0, "fork failed for rank " << rank << ": "
                                               << std::strerror(errno));
    if (pid == 0) {
      // Worker process. Drop every root-side descriptor inherited from the
      // parent (other ranks' channels and our own root end): leaked root
      // fds would keep dead peers looking alive. Then make the inherited
      // pool/OpenMP state safe and serve.
      for (Channel& c : root_channels_) c.close();
      root_end.close();
      support::notify_fork_child();
      Trace::instance().notify_fork_child(rank);
      try {
        fn_(rank, worker_end);
        worker_end.close();
        ::_exit(0);
      } catch (...) {
        ::_exit(1);
      }
    }
    child_pids_[static_cast<std::size_t>(rank)] = pid;
    worker_end.close();  // parent keeps only the root end
    root_channels_[static_cast<std::size_t>(rank)] = std::move(root_end);
  } else {
    auto wc = std::make_unique<Channel>(std::move(worker_end));
    root_channels_[static_cast<std::size_t>(rank)] = std::move(root_end);
    Channel* wc_raw = wc.get();
    worker_channels_[static_cast<std::size_t>(rank)] = std::move(wc);
    const WorkerFn& fn = fn_;
    worker_threads_[static_cast<std::size_t>(rank)] =
        std::thread([fn, rank, wc_raw] {
          // Tag before the first recorded event so this worker's spans land
          // on its own rank lane of the merged trace.
          Trace::set_thread_rank(rank);
          Trace::set_thread_label("sched-worker");
          try {
            fn(rank, *wc_raw);
          } catch (...) {
            // Worker errors surface to the root as closed/failed channels.
          }
        });
  }
}

void WorkerGroup::retire(int rank) {
  TT_CHECK(rank >= 1 && rank < num_ranks_, "no worker with rank " << rank);
  // Closing the root end first wakes a thread-mode worker blocked in recv and
  // turns any in-flight process-mode send into EPIPE.
  root_channels_[static_cast<std::size_t>(rank)].close();
  if (mode_ == SpawnMode::kProcess) {
    long& pid = child_pids_[static_cast<std::size_t>(rank)];
    if (pid > 0) {
      ::kill(static_cast<pid_t>(pid), SIGKILL);
      int status = 0;
      ::waitpid(static_cast<pid_t>(pid), &status, 0);
      pid = -1;
    }
  } else {
    std::thread& t = worker_threads_[static_cast<std::size_t>(rank)];
    if (t.joinable()) t.join();
    worker_channels_[static_cast<std::size_t>(rank)].reset();
  }
}

void WorkerGroup::respawn(int rank) {
  TT_CHECK(!joined_, "respawn after join()");
  retire(rank);
  spawn_rank(rank);
}

WorkerGroup::~WorkerGroup() {
  if (!joined_) join(/*timeout_seconds=*/0.0);  // immediate hard teardown
}

Channel& WorkerGroup::channel(int rank) {
  TT_CHECK(rank >= 1 && rank < num_ranks_, "no channel for rank " << rank);
  return root_channels_[static_cast<std::size_t>(rank)];
}

void WorkerGroup::kill(int rank) {
  TT_CHECK(mode_ == SpawnMode::kProcess, "kill() requires process spawn mode");
  TT_CHECK(rank >= 1 && rank < num_ranks_, "no worker with rank " << rank);
  const long pid = child_pids_[static_cast<std::size_t>(rank)];
  TT_CHECK(pid > 0, "worker " << rank << " already reaped");
  ::kill(static_cast<pid_t>(pid), SIGKILL);
  int status = 0;
  ::waitpid(static_cast<pid_t>(pid), &status, 0);
  child_pids_[static_cast<std::size_t>(rank)] = -1;
}

void WorkerGroup::join(double timeout_seconds) {
  if (joined_) return;
  joined_ = true;
  if (mode_ == SpawnMode::kProcess) {
    Timer deadline;
    for (int rank = 1; rank < num_ranks_; ++rank) {
      long& pid = child_pids_[static_cast<std::size_t>(rank)];
      if (pid <= 0) continue;
      int status = 0;
      for (;;) {
        const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
        if (r != 0) break;  // reaped (or error: already gone)
        if (deadline.seconds() >= timeout_seconds) {
          ::kill(static_cast<pid_t>(pid), SIGKILL);
          ::waitpid(static_cast<pid_t>(pid), &status, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      pid = -1;
    }
  } else {
    // Wake workers blocked in recv by closing the root ends, then join.
    for (Channel& c : root_channels_) c.close();
    for (std::thread& t : worker_threads_)
      if (t.joinable()) t.join();
    worker_threads_.clear();
  }
  for (Channel& c : root_channels_) c.close();
}

}  // namespace tt::rt

// Directed, sector-decomposed tensor index.
//
// Every mode of a block-sparse tensor carries a direction and a list of
// (quantum number, degeneracy) sectors. A block is admissible iff the signed
// sum of its sector charges (In = +1, Out = −1) equals the tensor's flux.
#pragma once

#include <vector>

#include "support/types.hpp"
#include "symm/qn.hpp"

namespace tt::symm {

/// Leg direction: charge flows in through In legs and out through Out legs.
enum class Dir : int { In = +1, Out = -1 };

inline Dir reverse(Dir d) { return d == Dir::In ? Dir::Out : Dir::In; }
inline int sign(Dir d) { return static_cast<int>(d); }

/// One symmetry sector of an index: a charge and the dimension of its
/// degenerate subspace.
struct Sector {
  QN qn;
  index_t dim = 0;

  friend bool operator==(const Sector& a, const Sector& b) {
    return a.qn == b.qn && a.dim == b.dim;
  }
};

/// A tensor leg: ordered sector list + direction. Sector order defines the
/// offset layout when the leg is fused into a dense dimension.
class Index {
 public:
  Index() = default;
  Index(std::vector<Sector> sectors, Dir dir);

  /// Convenience: single-sector index (dummy/boundary legs).
  static Index single(const QN& qn, index_t dim, Dir dir) {
    return Index({Sector{qn, dim}}, dir);
  }

  int num_sectors() const { return static_cast<int>(sectors_.size()); }
  const Sector& sector(int s) const { return sectors_[static_cast<std::size_t>(s)]; }
  const std::vector<Sector>& sectors() const { return sectors_; }
  Dir dir() const { return dir_; }

  /// Total (fused) dimension: sum of sector dims.
  index_t dim() const;

  /// Offset of sector s within the fused dimension.
  index_t sector_offset(int s) const;

  /// Position of the sector with charge `qn`, or -1.
  int find_sector(const QN& qn) const;

  /// Same index with reversed direction (bra side).
  Index reversed() const;

  /// True when this leg can contract with `other`: identical sector lists and
  /// opposite directions.
  bool contractible_with(const Index& other) const;

  /// Same sectors and same direction (identical vector spaces).
  bool same_space(const Index& other) const;

  friend bool operator==(const Index& a, const Index& b) {
    return a.dir_ == b.dir_ && a.sectors_ == b.sectors_;
  }

 private:
  std::vector<Sector> sectors_;
  Dir dir_ = Dir::In;
};

}  // namespace tt::symm

#include "symm/block_factor.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "support/thread_pool.hpp"
#include "tensor/dense.hpp"

namespace tt::symm {

namespace {

using tensor::DenseTensor;

// Distinct sub-keys over one side of the bipartition, with fused offsets.
struct SideLayout {
  std::vector<BlockKey> keys;
  std::vector<index_t> offsets;
  std::vector<index_t> dims;
  index_t total = 0;
  std::map<BlockKey, int> pos;

  int add(const BlockKey& k, index_t dim) {
    auto it = pos.find(k);
    if (it != pos.end()) return it->second;
    const int id = static_cast<int>(keys.size());
    pos.emplace(k, id);
    keys.push_back(k);
    offsets.push_back(total);
    dims.push_back(dim);
    total += dim;
    return id;
  }
};

struct Group {
  QN g;  // Σ_rows sign·qn of every member block
  SideLayout rows, cols;
  std::vector<const std::pair<const BlockKey, DenseTensor>*> members;
};

BlockKey subkey(const BlockKey& key, const std::vector<int>& modes) {
  BlockKey s;
  s.reserve(modes.size());
  for (int m : modes) s.push_back(key[static_cast<std::size_t>(m)]);
  return s;
}

index_t subdim(const BlockTensor& a, const BlockKey& key, const std::vector<int>& modes) {
  index_t d = 1;
  for (int m : modes)
    d *= a.index(m).sector(key[static_cast<std::size_t>(m)]).dim;
  return d;
}

// Partition the tensor's present blocks into row-charge groups.
std::vector<Group> build_groups(const BlockTensor& a, const std::vector<int>& row_modes,
                                const std::vector<int>& col_modes) {
  std::map<QN, Group> by_charge;
  for (const auto& kv : a.blocks()) {
    const QN g = a.partial_charge(kv.first, row_modes);
    Group& grp = by_charge.try_emplace(g).first->second;
    grp.g = g;
    grp.rows.add(subkey(kv.first, row_modes), subdim(a, kv.first, row_modes));
    grp.cols.add(subkey(kv.first, col_modes), subdim(a, kv.first, col_modes));
    grp.members.push_back(&kv);
  }
  std::vector<Group> groups;
  groups.reserve(by_charge.size());
  for (auto& [g, grp] : by_charge) groups.push_back(std::move(grp));
  return groups;
}

// Assemble the group's blocks into one dense matrix, blocks permuted to
// [row_modes..., col_modes...] order ("wrapping" the tensor into an effective
// order-2 matrix, §IV-A).
linalg::Matrix assemble(const BlockTensor& a, const Group& grp,
                        const std::vector<int>& row_modes,
                        const std::vector<int>& col_modes) {
  linalg::Matrix m(grp.rows.total, grp.cols.total);
  std::vector<int> perm;
  perm.reserve(row_modes.size() + col_modes.size());
  for (int mo : row_modes) perm.push_back(mo);
  for (int mo : col_modes) perm.push_back(mo);
  for (const auto* kv : grp.members) {
    const BlockKey& key = kv->first;
    const DenseTensor block = kv->second.permuted(perm);
    const index_t rdim = subdim(a, key, row_modes);
    const index_t cdim = subdim(a, key, col_modes);
    const index_t roff = grp.rows.offsets[static_cast<std::size_t>(
        grp.rows.pos.at(subkey(key, row_modes)))];
    const index_t coff = grp.cols.offsets[static_cast<std::size_t>(
        grp.cols.pos.at(subkey(key, col_modes)))];
    for (index_t r = 0; r < rdim; ++r)
      for (index_t c = 0; c < cdim; ++c)
        m(roff + r, coff + c) = block[r * cdim + c];
  }
  return m;
}

std::vector<int> complement_modes(const BlockTensor& a, const std::vector<int>& row_modes) {
  std::vector<bool> is_row(static_cast<std::size_t>(a.order()), false);
  for (int m : row_modes) {
    TT_CHECK(m >= 0 && m < a.order(), "row mode " << m << " out of range");
    TT_CHECK(!is_row[static_cast<std::size_t>(m)], "row mode " << m << " listed twice");
    is_row[static_cast<std::size_t>(m)] = true;
  }
  std::vector<int> cols;
  for (int m = 0; m < a.order(); ++m)
    if (!is_row[static_cast<std::size_t>(m)]) cols.push_back(m);
  TT_CHECK(!row_modes.empty() && !cols.empty(),
           "bipartition must leave modes on both sides");
  return cols;
}

// Scatter a (rows_total × keep) matrix into blocks "row modes + bond sector".
void scatter_rows(BlockTensor& out, const BlockTensor& a, const Group& grp,
                  const std::vector<int>& row_modes, const linalg::Matrix& u,
                  index_t keep, int bond_sector) {
  for (std::size_t rk = 0; rk < grp.rows.keys.size(); ++rk) {
    const BlockKey& rkey = grp.rows.keys[rk];
    const index_t roff = grp.rows.offsets[rk];
    const index_t rdim = grp.rows.dims[rk];
    std::vector<index_t> shape;
    for (std::size_t t = 0; t < row_modes.size(); ++t)
      shape.push_back(a.index(row_modes[t]).sector(rkey[t]).dim);
    shape.push_back(keep);
    DenseTensor blk(shape);
    for (index_t r = 0; r < rdim; ++r)
      for (index_t c = 0; c < keep; ++c) blk[r * keep + c] = u(roff + r, c);
    BlockKey okey = rkey;
    okey.push_back(bond_sector);
    out.accumulate(okey, std::move(blk));
  }
}

// Scatter a (keep × cols_total) matrix into blocks "bond sector + col modes".
void scatter_cols(BlockTensor& out, const BlockTensor& a, const Group& grp,
                  const std::vector<int>& col_modes, const linalg::Matrix& vt,
                  index_t keep, int bond_sector) {
  for (std::size_t ck = 0; ck < grp.cols.keys.size(); ++ck) {
    const BlockKey& ckey = grp.cols.keys[ck];
    const index_t coff = grp.cols.offsets[ck];
    const index_t cdim = grp.cols.dims[ck];
    std::vector<index_t> shape{keep};
    for (std::size_t t = 0; t < col_modes.size(); ++t)
      shape.push_back(a.index(col_modes[t]).sector(ckey[t]).dim);
    DenseTensor blk(shape);
    for (index_t r = 0; r < keep; ++r)
      for (index_t c = 0; c < cdim; ++c) blk[r * cdim + c] = vt(r, coff + c);
    BlockKey okey;
    okey.push_back(bond_sector);
    okey.insert(okey.end(), ckey.begin(), ckey.end());
    out.accumulate(okey, std::move(blk));
  }
}

std::vector<Index> side_indices(const BlockTensor& a, const std::vector<int>& modes) {
  std::vector<Index> out;
  out.reserve(modes.size());
  for (int m : modes) out.push_back(a.index(m));
  return out;
}

}  // namespace

BlockQr block_qr(const BlockTensor& a, const std::vector<int>& row_modes) {
  const std::vector<int> col_modes = complement_modes(a, row_modes);
  const std::vector<Group> groups = build_groups(a, row_modes, col_modes);
  TT_CHECK(!groups.empty(), "cannot QR-factor a block tensor with no blocks");

  // Bond sectors: one per group, charge g, dim = min(rows, cols).
  std::vector<Sector> bond_sectors;
  bond_sectors.reserve(groups.size());
  for (const Group& grp : groups)
    bond_sectors.push_back({grp.g, std::min(grp.rows.total, grp.cols.total)});
  const Index bond_out(bond_sectors, Dir::Out);
  const Index bond_in(bond_sectors, Dir::In);

  std::vector<Index> q_idx = side_indices(a, row_modes);
  q_idx.push_back(bond_out);
  std::vector<Index> r_idx{bond_in};
  for (const Index& i : side_indices(a, col_modes)) r_idx.push_back(i);

  BlockQr out;
  out.q = BlockTensor(q_idx, QN::zero(a.flux().rank()));
  out.r = BlockTensor(r_idx, a.flux());
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& grp = groups[gi];
    const linalg::Matrix m = assemble(a, grp, row_modes, col_modes);
    auto f = linalg::qr(m);
    const index_t keep = bond_sectors[gi].dim;
    scatter_rows(out.q, a, grp, row_modes, f.q, keep, static_cast<int>(gi));
    scatter_cols(out.r, a, grp, col_modes, f.r, keep, static_cast<int>(gi));
    out.shapes.push_back({m.rows(), m.cols()});
  }
  return out;
}

BlockLq block_lq(const BlockTensor& a, const std::vector<int>& row_modes) {
  const std::vector<int> col_modes = complement_modes(a, row_modes);
  const std::vector<Group> groups = build_groups(a, row_modes, col_modes);
  TT_CHECK(!groups.empty(), "cannot LQ-factor a block tensor with no blocks");

  // Bond charge is g − flux so that Q (bond + col modes) carries flux 0 with
  // the bond direction In — preserving the MPS leg convention downstream.
  std::vector<Sector> bond_sectors;
  bond_sectors.reserve(groups.size());
  for (const Group& grp : groups)
    bond_sectors.push_back({grp.g - a.flux(), std::min(grp.rows.total, grp.cols.total)});
  const Index bond_out(bond_sectors, Dir::Out);
  const Index bond_in(bond_sectors, Dir::In);

  std::vector<Index> l_idx = side_indices(a, row_modes);
  l_idx.push_back(bond_out);
  std::vector<Index> q_idx{bond_in};
  for (const Index& i : side_indices(a, col_modes)) q_idx.push_back(i);

  BlockLq out;
  out.l = BlockTensor(l_idx, a.flux());
  out.q = BlockTensor(q_idx, QN::zero(a.flux().rank()));
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const Group& grp = groups[gi];
    const linalg::Matrix m = assemble(a, grp, row_modes, col_modes);
    auto f = linalg::lq(m);
    const index_t keep = bond_sectors[gi].dim;
    scatter_rows(out.l, a, grp, row_modes, f.l, keep, static_cast<int>(gi));
    scatter_cols(out.q, a, grp, col_modes, f.q, keep, static_cast<int>(gi));
    out.shapes.push_back({m.rows(), m.cols()});
  }
  return out;
}

BlockTensor BlockSvd::u_times_s() const {
  BlockTensor out = u;
  const int bond_mode = out.order() - 1;
  // Scale each block's trailing (bond) mode slice j by σ_j of its sector.
  for (const auto& [key, blk] : u.blocks()) {
    const auto& s = singular_values[static_cast<std::size_t>(key.back())];
    tensor::DenseTensor& dst = out.block(key);
    const index_t rg = dst.dim(bond_mode);
    const index_t lead = dst.size() / std::max<index_t>(rg, 1);
    for (index_t i = 0; i < lead; ++i)
      for (index_t j = 0; j < rg; ++j) dst[i * rg + j] *= s[static_cast<std::size_t>(j)];
  }
  return out;
}

BlockTensor BlockSvd::s_times_vt() const {
  BlockTensor out = vt;
  for (const auto& [key, blk] : vt.blocks()) {
    const auto& s = singular_values[static_cast<std::size_t>(key.front())];
    tensor::DenseTensor& dst = out.block(key);
    const index_t rg = dst.dim(0);
    const index_t tail = dst.size() / std::max<index_t>(rg, 1);
    for (index_t j = 0; j < rg; ++j)
      for (index_t c = 0; c < tail; ++c) dst[j * tail + c] *= s[static_cast<std::size_t>(j)];
  }
  return out;
}

BlockSvd block_svd(const BlockTensor& a, const std::vector<int>& row_modes,
                   const TruncParams& trunc, int num_threads) {
  const std::vector<int> col_modes = complement_modes(a, row_modes);
  const std::vector<Group> groups = build_groups(a, row_modes, col_modes);
  TT_CHECK(!groups.empty(), "cannot SVD a block tensor with no blocks");

  // Factor each group independently, in parallel on the executor pool: every
  // slot of `factors`/`shapes` is written by exactly one task and all
  // downstream reductions (truncation pooling, scatter) run serially in group
  // order, so the result is thread-count independent.
  std::vector<linalg::SvdResult> factors(groups.size());
  BlockSvd out;
  out.shapes.resize(groups.size());
  support::parallel_for(
      static_cast<index_t>(groups.size()),
      [&](index_t gi) {
        const auto g = static_cast<std::size_t>(gi);
        const linalg::Matrix m = assemble(a, groups[g], row_modes, col_modes);
        out.shapes[g] = {m.rows(), m.cols()};
        factors[g] = linalg::svd(m);
      },
      num_threads);

  // Global truncation: pool all singular values, keep the largest subject to
  // cutoff and bond cap (paper §II.C).
  struct Sv {
    real_t s;
    std::size_t group;
  };
  std::vector<Sv> pool;
  {
    std::size_t nsv = 0;
    for (const auto& f : factors) nsv += f.s.size();
    pool.reserve(nsv);
  }
  for (std::size_t gi = 0; gi < factors.size(); ++gi)
    for (real_t s : factors[gi].s) pool.push_back({s, gi});
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Sv& x, const Sv& y) { return x.s > y.s; });

  const real_t sigma_max = pool.empty() ? 0.0 : pool.front().s;
  const real_t cutoff = std::max(trunc.cutoff, trunc.rel_cutoff * sigma_max);
  index_t keep_total = 0;
  for (const Sv& sv : pool) {
    if (keep_total >= trunc.max_dim || sv.s <= cutoff) break;
    ++keep_total;
  }
  if (keep_total == 0 && !pool.empty()) keep_total = 1;  // never empty the bond

  std::vector<index_t> keep(groups.size(), 0);
  for (index_t i = 0; i < keep_total; ++i) ++keep[pool[static_cast<std::size_t>(i)].group];
  for (std::size_t i = static_cast<std::size_t>(keep_total); i < pool.size(); ++i)
    out.truncation_error += pool[i].s * pool[i].s;
  out.kept = keep_total;

  // Bond index: sectors only for groups that kept weight, in group order.
  std::vector<Sector> bond_sectors;
  std::vector<int> bond_id(groups.size(), -1);
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    if (keep[gi] == 0) continue;
    bond_id[gi] = static_cast<int>(bond_sectors.size());
    bond_sectors.push_back({groups[gi].g, keep[gi]});
  }
  TT_CHECK(!bond_sectors.empty(), "SVD truncated away every sector");
  out.bond = Index(bond_sectors, Dir::Out);
  const Index bond_in = out.bond.reversed();

  std::vector<Index> u_idx = side_indices(a, row_modes);
  u_idx.push_back(out.bond);
  std::vector<Index> vt_idx{bond_in};
  for (const Index& i : side_indices(a, col_modes)) vt_idx.push_back(i);

  out.u = BlockTensor(u_idx, QN::zero(a.flux().rank()));
  out.vt = BlockTensor(vt_idx, a.flux());
  out.singular_values.assign(bond_sectors.size(), {});

  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    if (keep[gi] == 0) continue;
    const Group& grp = groups[gi];
    const linalg::SvdResult& f = factors[gi];
    const index_t kg = keep[gi];
    scatter_rows(out.u, a, grp, row_modes, f.u, kg, bond_id[gi]);
    scatter_cols(out.vt, a, grp, col_modes, f.vt, kg, bond_id[gi]);
    auto& sv = out.singular_values[static_cast<std::size_t>(bond_id[gi])];
    sv.assign(f.s.begin(), f.s.begin() + kg);
  }
  return out;
}

}  // namespace tt::symm

#include "symm/block_ops.hpp"

#include <algorithm>
#include <map>

#include "tensor/einsum.hpp"

namespace tt::symm {

ContractPlan make_contract_plan(const BlockTensor& a, const BlockTensor& b,
                                const std::vector<std::pair<int, int>>& pairs) {
  std::vector<bool> con_a(static_cast<std::size_t>(a.order()), false);
  std::vector<bool> con_b(static_cast<std::size_t>(b.order()), false);
  for (auto [ma, mb] : pairs) {
    TT_CHECK(ma >= 0 && ma < a.order() && mb >= 0 && mb < b.order(),
             "contraction mode out of range (" << ma << "," << mb << ")");
    TT_CHECK(!con_a[static_cast<std::size_t>(ma)] && !con_b[static_cast<std::size_t>(mb)],
             "mode contracted twice");
    TT_CHECK(a.index(ma).contractible_with(b.index(mb)),
             "legs not contractible on pair (" << ma << "," << mb
                                               << "): sector/direction mismatch");
    con_a[static_cast<std::size_t>(ma)] = true;
    con_b[static_cast<std::size_t>(mb)] = true;
  }

  ContractPlan plan;
  for (int m = 0; m < a.order(); ++m)
    if (!con_a[static_cast<std::size_t>(m)]) plan.free_a.push_back(m);
  for (int m = 0; m < b.order(); ++m)
    if (!con_b[static_cast<std::size_t>(m)]) plan.free_b.push_back(m);

  for (int m : plan.free_a) plan.out_indices.push_back(a.index(m));
  for (int m : plan.free_b) plan.out_indices.push_back(b.index(m));
  plan.out_flux = a.flux() + b.flux();

  // Einsum labels: one letter per mode of A, fresh letters for B's free
  // modes; contracted B modes reuse the matching A letter.
  std::string la(static_cast<std::size_t>(a.order()), '?');
  for (int m = 0; m < a.order(); ++m)
    la[static_cast<std::size_t>(m)] = static_cast<char>('a' + m);
  std::string lb(static_cast<std::size_t>(b.order()), '?');
  char next = static_cast<char>('a' + a.order());
  for (auto [ma, mb] : pairs) lb[static_cast<std::size_t>(mb)] = la[static_cast<std::size_t>(ma)];
  for (int m : plan.free_b) {
    lb[static_cast<std::size_t>(m)] = next;
    ++next;
  }
  std::string lc;
  for (int m : plan.free_a) lc.push_back(la[static_cast<std::size_t>(m)]);
  for (int m : plan.free_b) lc.push_back(lb[static_cast<std::size_t>(m)]);
  plan.spec = la + "," + lb + "->" + lc;
  return plan;
}

BlockTensor contract(const BlockTensor& a, const BlockTensor& b,
                     const std::vector<std::pair<int, int>>& pairs,
                     ContractStats* stats) {
  const ContractPlan plan = make_contract_plan(a, b, pairs);
  BlockTensor c(plan.out_indices, plan.out_flux);

  // --- group B's blocks by contracted sector ids (hash join) -----------------
  using ConKey = std::vector<int>;
  std::map<ConKey, std::vector<const std::pair<const BlockKey, tensor::DenseTensor>*>>
      b_groups;
  for (const auto& kv : b.blocks()) {
    ConKey ck(pairs.size());
    for (std::size_t t = 0; t < pairs.size(); ++t)
      ck[t] = kv.first[static_cast<std::size_t>(pairs[t].second)];
    b_groups[ck].push_back(&kv);
  }

  // --- Algorithm 2 main loop --------------------------------------------------
  for (const auto& [akey, ablk] : a.blocks()) {
    ConKey ck(pairs.size());
    for (std::size_t t = 0; t < pairs.size(); ++t)
      ck[t] = akey[static_cast<std::size_t>(pairs[t].first)];
    auto git = b_groups.find(ck);
    if (git == b_groups.end()) continue;
    for (const auto* bkv : git->second) {
      const BlockKey& bkey = bkv->first;
      const tensor::DenseTensor& bblk = bkv->second;

      tensor::EinsumStats es;
      tensor::DenseTensor cblk = tensor::einsum(plan.spec, ablk, bblk, &es);

      BlockKey ckey;
      ckey.reserve(plan.free_a.size() + plan.free_b.size());
      for (int m : plan.free_a) ckey.push_back(akey[static_cast<std::size_t>(m)]);
      for (int m : plan.free_b) ckey.push_back(bkey[static_cast<std::size_t>(m)]);
      c.accumulate(ckey, std::move(cblk));

      if (stats) {
        stats->total_flops += es.flops;
        stats->permuted_words += es.permuted_words;
        BlockOpCost op;
        op.flops = es.flops;
        op.words_a = static_cast<double>(ablk.size());
        op.words_b = static_cast<double>(bblk.size());
        op.words_c = static_cast<double>(es.m) * static_cast<double>(es.n);
        stats->block_ops.push_back(op);
      }
    }
  }
  return c;
}

}  // namespace tt::symm

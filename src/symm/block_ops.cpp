#include "symm/block_ops.hpp"

#include <algorithm>
#include <map>

#include "runtime/trace.hpp"
#include "support/thread_pool.hpp"
#include "tensor/einsum.hpp"

namespace tt::symm {

ContractPlan make_contract_plan(const BlockTensor& a, const BlockTensor& b,
                                const std::vector<std::pair<int, int>>& pairs) {
  std::vector<bool> con_a(static_cast<std::size_t>(a.order()), false);
  std::vector<bool> con_b(static_cast<std::size_t>(b.order()), false);
  for (auto [ma, mb] : pairs) {
    TT_CHECK(ma >= 0 && ma < a.order() && mb >= 0 && mb < b.order(),
             "contraction mode out of range (" << ma << "," << mb << ")");
    TT_CHECK(!con_a[static_cast<std::size_t>(ma)] && !con_b[static_cast<std::size_t>(mb)],
             "mode contracted twice");
    TT_CHECK(a.index(ma).contractible_with(b.index(mb)),
             "legs not contractible on pair (" << ma << "," << mb
                                               << "): sector/direction mismatch");
    con_a[static_cast<std::size_t>(ma)] = true;
    con_b[static_cast<std::size_t>(mb)] = true;
  }

  ContractPlan plan;
  plan.free_a.reserve(static_cast<std::size_t>(a.order()));
  plan.free_b.reserve(static_cast<std::size_t>(b.order()));
  for (int m = 0; m < a.order(); ++m)
    if (!con_a[static_cast<std::size_t>(m)]) plan.free_a.push_back(m);
  for (int m = 0; m < b.order(); ++m)
    if (!con_b[static_cast<std::size_t>(m)]) plan.free_b.push_back(m);

  plan.out_indices.reserve(plan.free_a.size() + plan.free_b.size());
  for (int m : plan.free_a) plan.out_indices.push_back(a.index(m));
  for (int m : plan.free_b) plan.out_indices.push_back(b.index(m));
  plan.out_flux = a.flux() + b.flux();

  // Einsum labels: one letter per mode of A, fresh letters for B's free
  // modes; contracted B modes reuse the matching A letter.
  std::string la(static_cast<std::size_t>(a.order()), '?');
  for (int m = 0; m < a.order(); ++m)
    la[static_cast<std::size_t>(m)] = static_cast<char>('a' + m);
  std::string lb(static_cast<std::size_t>(b.order()), '?');
  char next = static_cast<char>('a' + a.order());
  for (auto [ma, mb] : pairs) lb[static_cast<std::size_t>(mb)] = la[static_cast<std::size_t>(ma)];
  for (int m : plan.free_b) {
    lb[static_cast<std::size_t>(m)] = next;
    ++next;
  }
  std::string lc;
  lc.reserve(plan.free_a.size() + plan.free_b.size());
  for (int m : plan.free_a) lc.push_back(la[static_cast<std::size_t>(m)]);
  for (int m : plan.free_b) lc.push_back(lb[static_cast<std::size_t>(m)]);
  plan.spec = la + "," + lb + "->" + lc;
  return plan;
}

std::vector<OutputBin> enumerate_bins(const BlockTensor& a, const BlockTensor& b,
                                      const std::vector<std::pair<int, int>>& pairs,
                                      const ContractPlan& plan) {
  // --- group B's blocks by contracted sector ids (hash join) -----------------
  using ConKey = std::vector<int>;
  std::map<ConKey, std::vector<const std::pair<const BlockKey, tensor::DenseTensor>*>>
      b_groups;
  for (const auto& kv : b.blocks()) {
    ConKey ck(pairs.size());
    for (std::size_t t = 0; t < pairs.size(); ++t)
      ck[t] = kv.first[static_cast<std::size_t>(pairs[t].second)];
    b_groups[ck].push_back(&kv);
  }

  // --- bin the Algorithm 2 pair list by output block key ----------------------
  // Enumeration order (A blocks in key order, then B's group order) fixes both
  // the bin order and the within-bin accumulation order; neither depends on
  // the thread or rank count.
  std::map<BlockKey, std::size_t> bin_of;
  std::vector<OutputBin> bins;
  for (const auto& akv : a.blocks()) {
    const BlockKey& akey = akv.first;
    ConKey ck(pairs.size());
    for (std::size_t t = 0; t < pairs.size(); ++t)
      ck[t] = akey[static_cast<std::size_t>(pairs[t].first)];
    auto git = b_groups.find(ck);
    if (git == b_groups.end()) continue;

    // m and k depend only on the A block; n on the B block.
    double m_dim = 1.0, k_dim = 1.0;
    for (int m : plan.free_a)
      m_dim *= static_cast<double>(akv.second.dim(m));
    for (auto [ma, mb] : pairs) {
      (void)mb;
      k_dim *= static_cast<double>(akv.second.dim(ma));
    }

    for (const auto* bkv : git->second) {
      BlockKey ckey;
      ckey.reserve(plan.free_a.size() + plan.free_b.size());
      for (int m : plan.free_a) ckey.push_back(akey[static_cast<std::size_t>(m)]);
      for (int m : plan.free_b)
        ckey.push_back(bkv->first[static_cast<std::size_t>(m)]);
      auto [it, inserted] = bin_of.try_emplace(std::move(ckey), bins.size());
      if (inserted) {
        bins.emplace_back();
        bins.back().out_key = it->first;
      }
      OutputBin& bin = bins[it->second];
      bin.pairs.push_back({&akey, &bkv->first, &akv.second, &bkv->second});
      double n_dim = 1.0;
      for (int m : plan.free_b)
        n_dim *= static_cast<double>(bkv->second.dim(m));
      bin.est_flops += 2.0 * m_dim * n_dim * k_dim;
    }
  }
  return bins;
}

BinExecution execute_bin(const OutputBin& bin, const std::string& spec,
                         bool collect_ops,
                         const std::function<void(const BlockOpCost&)>& hook) {
  BinExecution out;
  bool first = true;
  for (const BinPair& pw : bin.pairs) {
    tensor::EinsumStats es;
    tensor::DenseTensor cblk = tensor::einsum(spec, *pw.ablk, *pw.bblk, &es);
    if (first) {
      out.result = std::move(cblk);
      first = false;
    } else {
      out.result.axpy(1.0, cblk);
    }

    BlockOpCost op;
    op.flops = es.flops;
    op.words_a = static_cast<double>(pw.ablk->size());
    op.words_b = static_cast<double>(pw.bblk->size());
    op.words_c = static_cast<double>(es.m) * static_cast<double>(es.n);
    out.flops += es.flops;
    out.permuted_words += es.permuted_words;
    if (collect_ops) out.ops.push_back(op);
    if (hook) hook(op);
  }
  return out;
}

BlockTensor contract(const BlockTensor& a, const BlockTensor& b,
                     const std::vector<std::pair<int, int>>& pairs,
                     ContractStats* stats, const ContractOptions& opts) {
  TT_TRACE_SPAN("symm.contract", rt::TraceCat::kContract);
  const ContractPlan plan = make_contract_plan(a, b, pairs);
  BlockTensor c(plan.out_indices, plan.out_flux);

  const std::vector<OutputBin> bins = enumerate_bins(a, b, pairs, plan);
  std::vector<BinExecution> done(bins.size());

  const bool collect_ops = stats != nullptr;
  support::parallel_for(
      static_cast<index_t>(bins.size()),
      [&](index_t bi) {
        TT_TRACE_SPAN("symm.bin", rt::TraceCat::kContract);
        done[static_cast<std::size_t>(bi)] = execute_bin(
            bins[static_cast<std::size_t>(bi)], plan.spec, collect_ops,
            opts.block_hook);
      },
      opts.num_threads);

  // Serial insertion in bin order (every bin has >= 1 pair, so every result
  // is populated); accumulate() shape-checks each block against the output
  // structure.
  for (std::size_t bi = 0; bi < bins.size(); ++bi)
    c.accumulate(bins[bi].out_key, std::move(done[bi].result));

  // Deterministic cross-bin reduction: merge in bin order.
  if (stats) {
    stats->num_bins += static_cast<int>(bins.size());
    for (BinExecution& bin : done) {
      stats->total_flops += bin.flops;
      stats->permuted_words += bin.permuted_words;
      stats->block_ops.insert(stats->block_ops.end(), bin.ops.begin(),
                              bin.ops.end());
    }
  }
  return c;
}

}  // namespace tt::symm

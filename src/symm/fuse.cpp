#include "symm/fuse.hpp"

#include <algorithm>

namespace tt::symm {

namespace {

using tensor::DenseTensor;
using tensor::SparseTensor;

std::vector<index_t> fused_shape(const std::vector<Index>& indices) {
  std::vector<index_t> shape;
  shape.reserve(indices.size());
  for (const Index& idx : indices) shape.push_back(idx.dim());
  return shape;
}

// Per-mode offsets of a block within the fused tensor.
std::vector<index_t> block_offsets(const BlockTensor& t, const BlockKey& key) {
  std::vector<index_t> off(key.size());
  for (int m = 0; m < t.order(); ++m)
    off[static_cast<std::size_t>(m)] =
        t.index(m).sector_offset(key[static_cast<std::size_t>(m)]);
  return off;
}

// Visit every element of a block, producing (block_flat, fused_flat) pairs via
// an odometer; fn(block_flat, fused_flat).
template <class Fn>
void for_each_element(const std::vector<index_t>& block_shape,
                      const std::vector<index_t>& offsets,
                      const std::vector<index_t>& fused_strides, Fn&& fn) {
  const int r = static_cast<int>(block_shape.size());
  index_t total = 1;
  for (index_t d : block_shape) total *= d;
  if (total == 0) return;
  if (r == 0) {
    fn(index_t{0}, index_t{0});
    return;
  }
  std::vector<index_t> idx(static_cast<std::size_t>(r), 0);
  index_t fused = 0;
  for (int m = 0; m < r; ++m)
    fused += offsets[static_cast<std::size_t>(m)] * fused_strides[static_cast<std::size_t>(m)];
  for (index_t flat = 0; flat < total; ++flat) {
    fn(flat, fused);
    int m = r - 1;
    while (m >= 0) {
      auto mi = static_cast<std::size_t>(m);
      fused += fused_strides[mi];
      if (++idx[mi] < block_shape[mi]) break;
      fused -= block_shape[mi] * fused_strides[mi];
      idx[mi] = 0;
      --m;
    }
  }
}

// Lookup table: fused position along one mode -> (sector id, local offset).
struct ModeLookup {
  std::vector<int> sector_of;
  std::vector<index_t> local_of;
};

ModeLookup make_lookup(const Index& idx) {
  ModeLookup lut;
  lut.sector_of.resize(static_cast<std::size_t>(idx.dim()));
  lut.local_of.resize(static_cast<std::size_t>(idx.dim()));
  index_t pos = 0;
  for (int s = 0; s < idx.num_sectors(); ++s) {
    for (index_t l = 0; l < idx.sector(s).dim; ++l, ++pos) {
      lut.sector_of[static_cast<std::size_t>(pos)] = s;
      lut.local_of[static_cast<std::size_t>(pos)] = l;
    }
  }
  return lut;
}

std::vector<index_t> strides_of(const std::vector<index_t>& shape) {
  std::vector<index_t> s(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i)
    s[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(i + 1)] * shape[static_cast<std::size_t>(i + 1)];
  return s;
}

}  // namespace

DenseTensor fuse_dense(const BlockTensor& t) {
  DenseTensor out(fused_shape(t.indices()));
  const std::vector<index_t> strides = out.strides();
  for (const auto& [key, blk] : t.blocks()) {
    const auto offsets = block_offsets(t, key);
    for_each_element(blk.shape(), offsets, strides,
                     [&](index_t bflat, index_t fflat) { out[fflat] = blk[bflat]; });
  }
  return out;
}

SparseTensor fuse_sparse(const BlockTensor& t) {
  SparseTensor out(fused_shape(t.indices()));
  const std::vector<index_t> strides = strides_of(fused_shape(t.indices()));
  for (const auto& [key, blk] : t.blocks()) {
    const auto offsets = block_offsets(t, key);
    for_each_element(blk.shape(), offsets, strides, [&](index_t bflat, index_t fflat) {
      out.add(fflat, blk[bflat]);
    });
  }
  out.finalize();
  return out;
}

BlockTensor split_dense(const DenseTensor& d, std::vector<Index> indices,
                        const QN& flux) {
  TT_CHECK(d.shape() == fused_shape(indices),
           "fused dense tensor shape does not match index structure");
  BlockTensor out(std::move(indices), flux);
  const std::vector<index_t> strides = d.strides();
  for (const BlockKey& key : out.admissible_keys()) {
    const auto shape = out.block_shape(key);
    std::vector<index_t> offsets(key.size());
    for (int m = 0; m < out.order(); ++m)
      offsets[static_cast<std::size_t>(m)] =
          out.index(m).sector_offset(key[static_cast<std::size_t>(m)]);
    DenseTensor blk(shape);
    bool nonzero = false;
    for_each_element(shape, offsets, strides, [&](index_t bflat, index_t fflat) {
      blk[bflat] = d[fflat];
      if (d[fflat] != 0.0) nonzero = true;
    });
    if (nonzero) out.accumulate(key, std::move(blk));
  }
  return out;
}

BlockTensor split_sparse(const SparseTensor& s, std::vector<Index> indices,
                         const QN& flux) {
  TT_CHECK(s.shape() == fused_shape(indices),
           "fused sparse tensor shape does not match index structure");
  BlockTensor out(std::move(indices), flux);
  const int r = out.order();
  std::vector<ModeLookup> luts;
  luts.reserve(static_cast<std::size_t>(r));
  for (int m = 0; m < r; ++m) luts.push_back(make_lookup(out.index(m)));
  const std::vector<index_t> strides = strides_of(s.shape());

  auto idxs = s.indices();
  auto vals = s.values();
  for (std::size_t i = 0; i < idxs.size(); ++i) {
    index_t rem = idxs[i];
    BlockKey key(static_cast<std::size_t>(r));
    index_t bflat = 0;
    for (int m = 0; m < r; ++m) {
      const auto mi = static_cast<std::size_t>(m);
      const index_t pos = rem / strides[mi];
      rem %= strides[mi];
      key[mi] = luts[mi].sector_of[static_cast<std::size_t>(pos)];
      const index_t local = luts[mi].local_of[static_cast<std::size_t>(pos)];
      const index_t bdim = out.index(m).sector(key[mi]).dim;
      bflat = bflat * bdim + local;
    }
    TT_CHECK(out.key_allowed(key),
             "sparse element at flat index " << idxs[i]
                                             << " violates charge conservation");
    out.block(key)[bflat] = vals[i];
  }
  return out;
}

SparseTensor structure_mask(const std::vector<Index>& indices, const QN& flux) {
  BlockTensor probe(indices, flux);
  SparseTensor mask(fused_shape(indices));
  const std::vector<index_t> strides = strides_of(fused_shape(indices));
  for (const BlockKey& key : probe.admissible_keys()) {
    const auto shape = probe.block_shape(key);
    std::vector<index_t> offsets(key.size());
    for (int m = 0; m < probe.order(); ++m)
      offsets[static_cast<std::size_t>(m)] =
          probe.index(m).sector_offset(key[static_cast<std::size_t>(m)]);
    for_each_element(shape, offsets, strides,
                     [&](index_t, index_t fflat) { mask.add(fflat, 1.0); });
  }
  mask.finalize();
  return mask;
}

}  // namespace tt::symm

// Block-sparse tensor: the "list of quantum number blocks" representation
// (paper §IV-A, Fig 3a). Each admissible combination of index sectors owns an
// independent dense block.
#pragma once

#include <map>
#include <vector>

#include "support/rng.hpp"
#include "symm/index.hpp"
#include "tensor/dense.hpp"

namespace tt::symm {

/// Sector choice per mode — the key identifying one block.
using BlockKey = std::vector<int>;

/// Block-sparse tensor over directed sector'd indices with a total flux.
/// A block keyed by (s_0,…,s_{r-1}) is admissible iff
/// Σᵢ sign(dirᵢ)·qn(sectorᵢ) == flux.
class BlockTensor {
 public:
  BlockTensor() = default;
  BlockTensor(std::vector<Index> indices, QN flux);

  /// Tensor with every admissible block present and filled with N(0,1) noise.
  static BlockTensor random(std::vector<Index> indices, QN flux, Rng& rng);

  int order() const { return static_cast<int>(indices_.size()); }
  const Index& index(int mode) const { return indices_[static_cast<std::size_t>(mode)]; }
  const std::vector<Index>& indices() const { return indices_; }
  const QN& flux() const { return flux_; }

  /// Conservation check for a prospective block key.
  bool key_allowed(const BlockKey& key) const;

  /// Signed charge sum over a subset of modes of a key.
  QN partial_charge(const BlockKey& key, const std::vector<int>& modes) const;

  /// Dense shape of the block at `key` (one dim per mode).
  std::vector<index_t> block_shape(const BlockKey& key) const;

  /// Access a block, creating a zero block if admissible and absent.
  /// Throws for inadmissible keys.
  tensor::DenseTensor& block(const BlockKey& key);

  /// Existing block or nullptr.
  const tensor::DenseTensor* find_block(const BlockKey& key) const;

  /// Insert/accumulate: blocks[key] += t (creates if absent). Shape-checked.
  void accumulate(const BlockKey& key, tensor::DenseTensor t);

  const std::map<BlockKey, tensor::DenseTensor>& blocks() const { return blocks_; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }

  /// Drop blocks whose max |entry| is below tol (exact zeros by default).
  void prune(real_t tol = 0.0);

  /// All admissible keys for this index structure (present or not).
  std::vector<BlockKey> admissible_keys() const;

  /// Stored elements (Σ over blocks of block size).
  index_t num_elements() const;

  /// Elements of the fused dense tensor (Π of fused dims).
  index_t dense_size() const;

  /// num_elements / dense_size — the fill fraction of the fused single tensor
  /// (paper Fig 2b plots exactly this).
  double fill_fraction() const;

  /// Largest block dimension along mode `mode` among present blocks.
  index_t largest_block_dim(int mode) const;

  // ---- vector-space operations (blocks aligned by key) ----
  void scale(real_t s);
  void axpy(real_t alpha, const BlockTensor& other);  ///< this += α·other
  real_t norm2() const;

  /// Metadata view with all directions reversed and flux negated; block data
  /// unchanged (real scalars — the bra/adjoint tensor).
  BlockTensor dagger() const;

  /// Structural equality of index lists and flux (not data).
  bool same_structure(const BlockTensor& other) const;

 private:
  std::vector<Index> indices_;
  QN flux_;
  std::map<BlockKey, tensor::DenseTensor> blocks_;
};

/// Inner product Σ over matching blocks (tensors must share structure).
real_t dot(const BlockTensor& a, const BlockTensor& b);

/// Max |a − b| over the union of blocks.
real_t max_abs_diff(const BlockTensor& a, const BlockTensor& b);

}  // namespace tt::symm

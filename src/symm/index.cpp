#include "symm/index.hpp"

namespace tt::symm {

Index::Index(std::vector<Sector> sectors, Dir dir)
    : sectors_(std::move(sectors)), dir_(dir) {
  TT_CHECK(!sectors_.empty(), "an index needs at least one sector");
  const int rank = sectors_.front().qn.rank();
  for (const Sector& s : sectors_) {
    TT_CHECK(s.dim > 0, "sector dimension must be positive, got " << s.dim);
    TT_CHECK(s.qn.rank() == rank, "mixed QN ranks within one index");
  }
  for (std::size_t i = 0; i < sectors_.size(); ++i)
    for (std::size_t j = i + 1; j < sectors_.size(); ++j)
      TT_CHECK(!(sectors_[i].qn == sectors_[j].qn),
               "duplicate sector charge " << sectors_[i].qn.str());
}

index_t Index::dim() const {
  index_t d = 0;
  for (const Sector& s : sectors_) d += s.dim;
  return d;
}

index_t Index::sector_offset(int s) const {
  TT_CHECK(s >= 0 && s < num_sectors(), "sector id " << s << " out of range");
  index_t off = 0;
  for (int i = 0; i < s; ++i) off += sectors_[static_cast<std::size_t>(i)].dim;
  return off;
}

int Index::find_sector(const QN& qn) const {
  for (std::size_t i = 0; i < sectors_.size(); ++i)
    if (sectors_[i].qn == qn) return static_cast<int>(i);
  return -1;
}

Index Index::reversed() const {
  Index r = *this;
  r.dir_ = symm::reverse(dir_);
  return r;
}

bool Index::contractible_with(const Index& other) const {
  return dir_ != other.dir_ && sectors_ == other.sectors_;
}

bool Index::same_space(const Index& other) const {
  return dir_ == other.dir_ && sectors_ == other.sectors_;
}

}  // namespace tt::symm

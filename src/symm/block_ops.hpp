// Block-sparse tensor contraction — paper Algorithm 2.
//
// Enumerates pairs of blocks whose contracted sector labels match, contracts
// each pair with the dense einsum kernel, and accumulates results into the
// output block keyed by the remaining labels. Per-block-pair costs are
// reported so the list engine can charge the Table II cost model block-wise.
//
// Execution is thread-parallel: the block-pair list is binned by output block
// key, bins run concurrently on the shared work-stealing pool
// (support/thread_pool.hpp, TT_THREADS knob), and each bin accumulates its
// output block in the fixed pair-enumeration order. Because every output
// block is owned by exactly one bin and all cross-bin reductions (stats)
// merge in bin order, results and stats are bitwise identical at any thread
// count — including the serial path.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "symm/block_tensor.hpp"

namespace tt::symm {

/// Cost of one block-pair contraction (words = stored dense elements).
struct BlockOpCost {
  double flops = 0.0;
  double words_a = 0.0;
  double words_b = 0.0;
  double words_c = 0.0;
};

/// Aggregate execution record of one block-sparse contraction.
struct ContractStats {
  double total_flops = 0.0;
  double permuted_words = 0.0;
  std::vector<BlockOpCost> block_ops;  ///< one entry per block pair contracted
  int num_bins = 0;  ///< distinct output blocks touched (executor bin count)
};

/// Execution knobs of the parallel block-contraction executor.
struct ContractOptions {
  /// Executor threads for this contraction: 0 = the global TT_THREADS
  /// setting (support::num_threads()), 1 = serial. Never affects results.
  int num_threads = 0;

  /// Optional per-block-pair hook, invoked as each pair finishes — possibly
  /// concurrently from executor threads and in no deterministic order. Sinks
  /// must be thread-safe (e.g. rt::CostTrackerShards keyed by
  /// support::execution_slot()). Deterministic aggregates should be read from
  /// ContractStats instead, which merges in fixed bin order.
  std::function<void(const BlockOpCost&)> block_hook;
};

/// Validated structural plan of a block contraction, shared by the list
/// algorithm (block-wise) and the fused single-tensor algorithms.
struct ContractPlan {
  std::vector<int> free_a, free_b;      ///< uncontracted mode positions
  std::vector<Index> out_indices;       ///< free(a) then free(b)
  QN out_flux;                          ///< flux(a) + flux(b)
  std::string spec;                     ///< einsum spec usable on fused tensors
};

/// Validate the contraction pattern and derive the output structure.
/// Throws tt::Error for non-contractible leg pairs.
ContractPlan make_contract_plan(const BlockTensor& a, const BlockTensor& b,
                                const std::vector<std::pair<int, int>>& pairs);

/// One block pair of an output bin. Pointers refer into the operand tensors'
/// block maps (stable for the operands' lifetime); keys identify the blocks
/// independently of the map (the distributed scheduler ships blocks by key).
struct BinPair {
  const BlockKey* akey = nullptr;
  const BlockKey* bkey = nullptr;
  const tensor::DenseTensor* ablk = nullptr;
  const tensor::DenseTensor* bblk = nullptr;
};

/// All pairs contributing to one output block — the unit of parallel and of
/// distributed placement. Pair order is the fixed accumulation order.
struct OutputBin {
  BlockKey out_key;
  std::vector<BinPair> pairs;
  /// 2·m·n·k summed over pairs, from block shapes alone — the placement
  /// weight used by the rank partitioner (never fed into ContractStats).
  double est_flops = 0.0;
};

/// The Algorithm 2 block-pair list binned by output block key. Bin order and
/// within-bin pair order are fixed by the enumeration (A blocks in key order,
/// then B's group order) — they depend only on (a, b, pairs), never on thread
/// or rank count. This single enumeration backs both the thread-parallel
/// executor in contract() and the cross-rank placement of rt::Scheduler, so
/// any distribution reduces in the same order as the serial run.
std::vector<OutputBin> enumerate_bins(const BlockTensor& a, const BlockTensor& b,
                                      const std::vector<std::pair<int, int>>& pairs,
                                      const ContractPlan& plan);

/// Execution record of one bin (the per-bin slice of ContractStats).
struct BinExecution {
  tensor::DenseTensor result;
  std::vector<BlockOpCost> ops;  ///< pair order; filled when collect_ops
  double flops = 0.0;
  double permuted_words = 0.0;
};

/// Contract every pair of `bin` in pair order, accumulating into one output
/// block. Deterministic: one thread, fixed order — callers parallelize
/// *across* bins. `hook` (may be empty) fires per pair, as in
/// ContractOptions::block_hook.
BinExecution execute_bin(const OutputBin& bin, const std::string& spec,
                         bool collect_ops,
                         const std::function<void(const BlockOpCost&)>& hook);

/// Contract `a` with `b` over the given (modeA, modeB) pairs. Contracted leg
/// pairs must be contractible (equal sector lists, opposite directions).
/// Output indices: free modes of `a` in order, then free modes of `b`;
/// output flux = flux(a) + flux(b). Bins of block pairs sharing an output
/// block execute concurrently per `opts`; results are bitwise identical at
/// any thread count.
BlockTensor contract(const BlockTensor& a, const BlockTensor& b,
                     const std::vector<std::pair<int, int>>& pairs,
                     ContractStats* stats = nullptr,
                     const ContractOptions& opts = {});

}  // namespace tt::symm

// Block-sparse tensor contraction — paper Algorithm 2.
//
// Enumerates pairs of blocks whose contracted sector labels match, contracts
// each pair with the dense einsum kernel, and accumulates results into the
// output block keyed by the remaining labels. Per-block-pair costs are
// reported so the list engine can charge the Table II cost model block-wise.
#pragma once

#include <utility>
#include <vector>

#include "symm/block_tensor.hpp"

namespace tt::symm {

/// Cost of one block-pair contraction (words = stored dense elements).
struct BlockOpCost {
  double flops = 0.0;
  double words_a = 0.0;
  double words_b = 0.0;
  double words_c = 0.0;
};

/// Aggregate execution record of one block-sparse contraction.
struct ContractStats {
  double total_flops = 0.0;
  double permuted_words = 0.0;
  std::vector<BlockOpCost> block_ops;  ///< one entry per block pair contracted
};

/// Validated structural plan of a block contraction, shared by the list
/// algorithm (block-wise) and the fused single-tensor algorithms.
struct ContractPlan {
  std::vector<int> free_a, free_b;      ///< uncontracted mode positions
  std::vector<Index> out_indices;       ///< free(a) then free(b)
  QN out_flux;                          ///< flux(a) + flux(b)
  std::string spec;                     ///< einsum spec usable on fused tensors
};

/// Validate the contraction pattern and derive the output structure.
/// Throws tt::Error for non-contractible leg pairs.
ContractPlan make_contract_plan(const BlockTensor& a, const BlockTensor& b,
                                const std::vector<std::pair<int, int>>& pairs);

/// Contract `a` with `b` over the given (modeA, modeB) pairs. Contracted leg
/// pairs must be contractible (equal sector lists, opposite directions).
/// Output indices: free modes of `a` in order, then free modes of `b`;
/// output flux = flux(a) + flux(b).
BlockTensor contract(const BlockTensor& a, const BlockTensor& b,
                     const std::vector<std::pair<int, int>>& pairs,
                     ContractStats* stats = nullptr);

}  // namespace tt::symm

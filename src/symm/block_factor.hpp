// Block-wise matrix factorizations of block-sparse tensors.
//
// The paper performs SVD in the list format for all three algorithms (§IV-A):
// blocks are grouped by the quantum number of the fused row/column index, each
// group is reshaped into a matrix and decomposed independently, and the
// singular values are truncated *globally* across groups.
#pragma once

#include <limits>
#include <vector>

#include "symm/block_tensor.hpp"

namespace tt::symm {

/// Truncation policy for block_svd. The effective cutoff is
/// max(cutoff, rel_cutoff · σ_max); σ is kept while it exceeds that AND the
/// bond cap is not reached, so defaults truncate nothing. Truncation is
/// global — singular values from all quantum-number groups compete for the
/// same max_dim slots — and at least one σ is always kept (the bond is never
/// emptied). Discarded weight Σσ² lands in BlockSvd::truncation_error.
struct TruncParams {
  real_t cutoff = 0.0;  ///< drop singular values <= cutoff (paper: 1e-12 … 0)
  real_t rel_cutoff = 0.0;  ///< drop σ <= rel_cutoff · σ_max (MPO compression)
  index_t max_dim = std::numeric_limits<index_t>::max();  ///< bond cap m
};

/// Per-group matrix shape, reported for the runtime SVD cost model.
struct FactorShape {
  index_t rows = 0, cols = 0;
};

/// A = Q·R over the (row_modes | remaining) bipartition.
/// Q: row modes + new bond (Out, charge g = Σ_rows sign·qn), flux 0, QᵀQ = I.
/// R: new bond (In, charge g) + column modes, flux = flux(A).
struct BlockQr {
  BlockTensor q;
  BlockTensor r;
  std::vector<FactorShape> shapes;
};
BlockQr block_qr(const BlockTensor& a, const std::vector<int>& row_modes);

/// A = L·Q over the bipartition. Q has orthonormal rows (QQᵀ = I), flux 0,
/// bond (In, charge g − flux) leading; L: row modes + bond (Out), flux(A).
struct BlockLq {
  BlockTensor l;
  BlockTensor q;
  std::vector<FactorShape> shapes;
};
BlockLq block_lq(const BlockTensor& a, const std::vector<int>& row_modes);

/// A ≈ U·S·Vᵀ with global truncation across quantum-number groups.
struct BlockSvd {
  BlockTensor u;   ///< row modes + bond (Out), flux 0, orthonormal columns
  BlockTensor vt;  ///< bond (In) + column modes, flux = flux(A), orthonormal rows
  Index bond;      ///< the new bond as it appears on U (direction Out)

  /// Kept singular values per bond sector (aligned with bond.sectors()).
  std::vector<std::vector<real_t>> singular_values;

  real_t truncation_error = 0.0;  ///< Σ of discarded σ²
  index_t kept = 0;               ///< total kept bond dimension
  std::vector<FactorShape> shapes;  ///< per-group SVD shapes (cost model)

  /// U with singular values multiplied into the bond (center moves right).
  BlockTensor u_times_s() const;
  /// Vᵀ with singular values multiplied into the bond (center moves left).
  BlockTensor s_times_vt() const;
};
/// `num_threads` caps the executor threads factoring quantum-number groups
/// concurrently: 0 = the global TT_THREADS setting, 1 = serial. Results are
/// identical at any value.
BlockSvd block_svd(const BlockTensor& a, const std::vector<int>& row_modes,
                   const TruncParams& trunc = {}, int num_threads = 0);

}  // namespace tt::symm

// Conversion between the block (list) format and fused single-tensor formats.
//
// The sparse-dense algorithm fuses all blocks into one dense tensor (zeros
// outside blocks); the sparse-sparse algorithm fuses into one sparse tensor.
// Each index's sectors map to contiguous offset ranges of its fused dimension
// (paper §IV-A, Fig 3b). structure_mask() provides the quantum-number-derived
// output sparsity the paper precomputes for sparse contractions.
#pragma once

#include "symm/block_tensor.hpp"
#include "tensor/sparse.hpp"

namespace tt::symm {

/// Fused dense tensor of shape [index(0).dim(), …]; zero outside blocks.
tensor::DenseTensor fuse_dense(const BlockTensor& t);

/// Fused sparse tensor holding exactly the elements inside present blocks.
tensor::SparseTensor fuse_sparse(const BlockTensor& t);

/// Rebuild the block format from a fused dense tensor. Elements outside
/// admissible blocks are ignored (they are structural zeros of the fused
/// format). Blocks that are entirely zero are pruned.
BlockTensor split_dense(const tensor::DenseTensor& d, std::vector<Index> indices,
                        const QN& flux);

/// Rebuild the block format from a fused sparse tensor. Throws tt::Error if a
/// nonzero lies outside every admissible block — that would mean a symmetry
/// violation upstream.
BlockTensor split_sparse(const tensor::SparseTensor& s, std::vector<Index> indices,
                         const QN& flux);

/// Sparsity mask of the admissible-block structure: value 1.0 at every
/// position any conserving block may occupy.
tensor::SparseTensor structure_mask(const std::vector<Index>& indices, const QN& flux);

}  // namespace tt::symm

// Abelian (U(1)^r) quantum numbers.
//
// A QN is a tuple of up to two integer charges. Rank 1 covers the spin system
// (charge = 2·Sz so everything stays integral); rank 2 covers the electron
// system (particle number N and 2·Sz), whose two conserved quantities drive
// the much finer block structure the paper observes (Fig 2).
#pragma once

#include <array>
#include <functional>
#include <string>

#include "support/error.hpp"

namespace tt::symm {

/// Tuple of U(1) charges; addition is component-wise.
class QN {
 public:
  static constexpr int kMaxRank = 2;

  QN() = default;                      ///< rank-0 (trivial symmetry)
  explicit QN(int q0) : rank_(1) { q_[0] = q0; }
  QN(int q0, int q1) : rank_(2) {
    q_[0] = q0;
    q_[1] = q1;
  }

  static QN zero(int rank) {
    TT_CHECK(rank >= 0 && rank <= kMaxRank, "invalid QN rank " << rank);
    QN z;
    z.rank_ = rank;
    return z;
  }

  int rank() const { return rank_; }

  int operator[](int i) const {
    TT_CHECK(i >= 0 && i < rank_, "QN component " << i << " out of range");
    return q_[static_cast<std::size_t>(i)];
  }

  QN operator+(const QN& o) const {
    check_rank(o);
    QN r = *this;
    for (int i = 0; i < rank_; ++i) r.q_[static_cast<std::size_t>(i)] += o.q_[static_cast<std::size_t>(i)];
    return r;
  }

  QN operator-(const QN& o) const { return *this + (-o); }

  QN operator-() const {
    QN r = *this;
    for (int i = 0; i < rank_; ++i) r.q_[static_cast<std::size_t>(i)] = -r.q_[static_cast<std::size_t>(i)];
    return r;
  }

  friend bool operator==(const QN& a, const QN& b) {
    return a.rank_ == b.rank_ && a.q_ == b.q_;
  }
  friend bool operator!=(const QN& a, const QN& b) { return !(a == b); }
  friend bool operator<(const QN& a, const QN& b) {
    if (a.rank_ != b.rank_) return a.rank_ < b.rank_;
    return a.q_ < b.q_;
  }

  bool is_zero() const {
    for (int i = 0; i < rank_; ++i)
      if (q_[static_cast<std::size_t>(i)] != 0) return false;
    return true;
  }

  std::string str() const {
    std::string s = "(";
    for (int i = 0; i < rank_; ++i) {
      if (i) s += ",";
      s += std::to_string(q_[static_cast<std::size_t>(i)]);
    }
    return s + ")";
  }

 private:
  void check_rank(const QN& o) const {
    TT_CHECK(rank_ == o.rank_,
             "QN rank mismatch: " << rank_ << " vs " << o.rank_);
  }

  std::array<int, kMaxRank> q_{0, 0};
  int rank_ = 0;
};

}  // namespace tt::symm

#include "symm/block_tensor.hpp"

#include <algorithm>
#include <cmath>

namespace tt::symm {

BlockTensor::BlockTensor(std::vector<Index> indices, QN flux)
    : indices_(std::move(indices)), flux_(flux) {
  for (const Index& idx : indices_)
    TT_CHECK(idx.num_sectors() > 0 &&
                 idx.sector(0).qn.rank() == flux_.rank(),
             "index QN rank does not match flux rank " << flux_.rank());
}

BlockTensor BlockTensor::random(std::vector<Index> indices, QN flux, Rng& rng) {
  BlockTensor t(std::move(indices), flux);
  for (const BlockKey& key : t.admissible_keys())
    t.block(key) = tensor::DenseTensor::random(t.block_shape(key), rng);
  return t;
}

bool BlockTensor::key_allowed(const BlockKey& key) const {
  TT_CHECK(static_cast<int>(key.size()) == order(), "block key order mismatch");
  QN sum = QN::zero(flux_.rank());
  for (int m = 0; m < order(); ++m) {
    const Index& idx = indices_[static_cast<std::size_t>(m)];
    const int s = key[static_cast<std::size_t>(m)];
    TT_CHECK(s >= 0 && s < idx.num_sectors(),
             "sector id " << s << " out of range on mode " << m);
    const QN& q = idx.sector(s).qn;
    sum = (sign(idx.dir()) > 0) ? sum + q : sum - q;
  }
  return sum == flux_;
}

QN BlockTensor::partial_charge(const BlockKey& key,
                               const std::vector<int>& modes) const {
  QN sum = QN::zero(flux_.rank());
  for (int m : modes) {
    const Index& idx = indices_[static_cast<std::size_t>(m)];
    const QN& q = idx.sector(key[static_cast<std::size_t>(m)]).qn;
    sum = (sign(idx.dir()) > 0) ? sum + q : sum - q;
  }
  return sum;
}

std::vector<index_t> BlockTensor::block_shape(const BlockKey& key) const {
  std::vector<index_t> shape(key.size());
  for (int m = 0; m < order(); ++m)
    shape[static_cast<std::size_t>(m)] =
        indices_[static_cast<std::size_t>(m)].sector(key[static_cast<std::size_t>(m)]).dim;
  return shape;
}

tensor::DenseTensor& BlockTensor::block(const BlockKey& key) {
  TT_CHECK(key_allowed(key), "block key violates charge conservation");
  auto it = blocks_.find(key);
  if (it == blocks_.end())
    it = blocks_.emplace(key, tensor::DenseTensor(block_shape(key))).first;
  return it->second;
}

const tensor::DenseTensor* BlockTensor::find_block(const BlockKey& key) const {
  auto it = blocks_.find(key);
  return it == blocks_.end() ? nullptr : &it->second;
}

void BlockTensor::accumulate(const BlockKey& key, tensor::DenseTensor t) {
  TT_CHECK(key_allowed(key), "block key violates charge conservation");
  TT_CHECK(t.shape() == block_shape(key), "accumulated block shape mismatch");
  auto it = blocks_.find(key);
  if (it == blocks_.end()) {
    blocks_.emplace(key, std::move(t));
  } else {
    it->second.axpy(1.0, t);
  }
}

void BlockTensor::prune(real_t tol) {
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (it->second.max_abs() <= tol) {
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<BlockKey> BlockTensor::admissible_keys() const {
  std::vector<BlockKey> keys;
  BlockKey key(static_cast<std::size_t>(order()), 0);
  // Odometer over all sector combinations; keep the conserving ones.
  while (true) {
    if (key_allowed(key)) keys.push_back(key);
    int m = order() - 1;
    while (m >= 0) {
      auto mi = static_cast<std::size_t>(m);
      if (++key[mi] < indices_[mi].num_sectors()) break;
      key[mi] = 0;
      --m;
    }
    if (m < 0) break;
  }
  return keys;
}

index_t BlockTensor::num_elements() const {
  index_t n = 0;
  for (const auto& [key, blk] : blocks_) n += blk.size();
  return n;
}

index_t BlockTensor::dense_size() const {
  index_t n = 1;
  for (const Index& idx : indices_) n *= idx.dim();
  return n;
}

double BlockTensor::fill_fraction() const {
  const index_t d = dense_size();
  return d == 0 ? 0.0 : static_cast<double>(num_elements()) / static_cast<double>(d);
}

index_t BlockTensor::largest_block_dim(int mode) const {
  index_t best = 0;
  for (const auto& [key, blk] : blocks_)
    best = std::max(best, blk.dim(mode));
  return best;
}

void BlockTensor::scale(real_t s) {
  for (auto& [key, blk] : blocks_) blk.scale(s);
}

void BlockTensor::axpy(real_t alpha, const BlockTensor& other) {
  TT_CHECK(same_structure(other), "axpy structure mismatch");
  for (const auto& [key, blk] : other.blocks_) {
    auto it = blocks_.find(key);
    if (it == blocks_.end()) {
      tensor::DenseTensor copy = blk;
      copy.scale(alpha);
      blocks_.emplace(key, std::move(copy));
    } else {
      it->second.axpy(alpha, blk);
    }
  }
}

real_t BlockTensor::norm2() const {
  real_t s = 0.0;
  for (const auto& [key, blk] : blocks_) {
    const real_t n = blk.norm2();
    s += n * n;
  }
  return std::sqrt(s);
}

BlockTensor BlockTensor::dagger() const {
  BlockTensor d;
  d.flux_ = -flux_;
  d.indices_.reserve(indices_.size());
  for (const Index& idx : indices_) d.indices_.push_back(idx.reversed());
  d.blocks_ = blocks_;
  return d;
}

bool BlockTensor::same_structure(const BlockTensor& other) const {
  if (!(flux_ == other.flux_) || indices_.size() != other.indices_.size())
    return false;
  for (std::size_t i = 0; i < indices_.size(); ++i)
    if (!(indices_[i] == other.indices_[i])) return false;
  return true;
}

real_t dot(const BlockTensor& a, const BlockTensor& b) {
  TT_CHECK(a.same_structure(b), "dot structure mismatch");
  real_t s = 0.0;
  for (const auto& [key, blk] : a.blocks()) {
    const tensor::DenseTensor* other = b.find_block(key);
    if (other) s += tensor::dot(blk, *other);
  }
  return s;
}

real_t max_abs_diff(const BlockTensor& a, const BlockTensor& b) {
  TT_CHECK(a.same_structure(b), "max_abs_diff structure mismatch");
  real_t m = 0.0;
  for (const auto& [key, blk] : a.blocks()) {
    const tensor::DenseTensor* other = b.find_block(key);
    if (other) {
      m = std::max(m, tensor::max_abs_diff(blk, *other));
    } else {
      m = std::max(m, blk.max_abs());
    }
  }
  for (const auto& [key, blk] : b.blocks())
    if (!a.find_block(key)) m = std::max(m, blk.max_abs());
  return m;
}

}  // namespace tt::symm

#include "linalg/matrix.hpp"

#include <cmath>

namespace tt::linalg {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  constexpr index_t kBlock = 32;  // cache-blocked transpose
  for (index_t ib = 0; ib < rows_; ib += kBlock)
    for (index_t jb = 0; jb < cols_; jb += kBlock) {
      const index_t ie = std::min(ib + kBlock, rows_);
      const index_t je = std::min(jb + kBlock, cols_);
      for (index_t i = ib; i < ie; ++i)
        for (index_t j = jb; j < je; ++j) t(j, i) = (*this)(i, j);
    }
  return t;
}

real_t Matrix::frobenius_norm() const {
  real_t s = 0.0;
  for (real_t v : data_) s += v * v;
  return std::sqrt(s);
}

real_t Matrix::max_abs() const {
  real_t m = 0.0;
  for (real_t v : data_) m = std::max(m, std::abs(v));
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  TT_CHECK(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  TT_CHECK(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(real_t s) {
  for (auto& v : data_) v *= s;
  return *this;
}

real_t max_abs_diff(const Matrix& a, const Matrix& b) {
  TT_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
           "max_abs_diff shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
                                           << b.rows() << "x" << b.cols());
  real_t m = 0.0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace tt::linalg

#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/backend.hpp"

namespace tt::linalg {

EigResult eigh(const Matrix& a, real_t symmetry_tol) {
  const index_t n = a.rows();
  TT_CHECK(a.rows() == a.cols(), "eigh requires a square matrix, got "
                                     << a.rows() << "x" << a.cols());
  const real_t scale = std::max(a.max_abs(), real_t{1.0});
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j)
      TT_CHECK(std::abs(a(i, j) - a(j, i)) <= symmetry_tol * scale,
               "eigh input not symmetric at (" << i << "," << j << ")");
  return backend().eigh(a);
}

namespace detail {

EigResult builtin_eigh(const Matrix& a) {
  const index_t n = a.rows();
  const real_t scale = std::max(a.max_abs(), real_t{1.0});

  Matrix b = a;
  Matrix v = Matrix::identity(n);
  constexpr int kMaxSweeps = 100;
  const real_t tol = 1e-15 * scale;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    real_t off = 0.0;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const real_t apq = b(p, q);
        off = std::max(off, std::abs(apq));
        if (std::abs(apq) <= tol) continue;
        const real_t theta = (b(q, q) - b(p, p)) / (2.0 * apq);
        const real_t t = ((theta >= 0.0) ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const real_t c = 1.0 / std::sqrt(1.0 + t * t);
        const real_t s = c * t;
        // B := Jᵀ B J for the (p,q) rotation.
        for (index_t k = 0; k < n; ++k) {
          const real_t bkp = b(k, p), bkq = b(k, q);
          b(k, p) = c * bkp - s * bkq;
          b(k, q) = s * bkp + c * bkq;
        }
        for (index_t k = 0; k < n; ++k) {
          const real_t bpk = b(p, k), bqk = b(q, k);
          b(p, k) = c * bpk - s * bqk;
          b(q, k) = s * bpk + c * bqk;
        }
        for (index_t k = 0; k < n; ++k) {
          const real_t vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    if (off <= tol) break;
  }

  // Sort eigenpairs ascending.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](index_t x, index_t y) { return b(x, x) < b(y, y); });

  EigResult out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = Matrix(n, n);
  for (index_t c = 0; c < n; ++c) {
    const index_t src = order[static_cast<std::size_t>(c)];
    out.values[static_cast<std::size_t>(c)] = b(src, src);
    for (index_t i = 0; i < n; ++i) out.vectors(i, c) = v(i, src);
  }
  return out;
}

}  // namespace detail

}  // namespace tt::linalg

// The "blas" linalg backend: vendor BLAS/LAPACK behind the Backend interface.
//
// Compiled only under -DTT_WITH_BLAS=ON (this TU is empty otherwise). The
// Fortran-ABI symbols are declared directly — no cblas/lapacke headers — so
// any LP64 implementation links: reference Netlib, OpenBLAS, BLIS+LAPACK,
// MKL (lp64). Routing: gemm_raw → dgemm, gemv → dgemv, svd → dgesdd (with a
// dgesvd fallback on non-convergence), qr → dgeqrf+dorgqr, eigh → dsyevd.
//
// Row-major adaptation: the library stores matrices row-major while Fortran
// expects column-major. A row-major m×n buffer *is* its transpose in
// column-major, so
//   gemm  computes C_cm(n×m) = op(B)ᵀ·op(A)ᵀ by swapping the operand order,
//   gemv  runs dgemv('T') on the n×m column-major view,
//   svd   factors the column-major view Aᵀ = U'·S·V'ᵀ and returns U = V',
//         Vᵀ = U'ᵀ — reading the Fortran outputs row-major performs both
//         transpositions for free,
//   qr/eigh copy through an explicit transpose (small against the O(n³) work).
//
// Determinism: results are reproducible at fixed TT_THREADS only per BLAS
// library (and per its own thread count — pin OPENBLAS_NUM_THREADS /
// OMP_NUM_THREADS for stable timings); the cross-thread-count bitwise
// guarantee of the builtin backend is not promised here.
#ifdef TT_WITH_BLAS

#include <algorithm>
#include <limits>
#include <vector>

#include "linalg/backend.hpp"
#include "support/error.hpp"

extern "C" {

void dgemm_(const char* transa, const char* transb, const int* m, const int* n,
            const int* k, const double* alpha, const double* a, const int* lda,
            const double* b, const int* ldb, const double* beta, double* c,
            const int* ldc);

void dgemv_(const char* trans, const int* m, const int* n, const double* alpha,
            const double* a, const int* lda, const double* x, const int* incx,
            const double* beta, double* y, const int* incy);

void dgesdd_(const char* jobz, const int* m, const int* n, double* a,
             const int* lda, double* s, double* u, const int* ldu, double* vt,
             const int* ldvt, double* work, const int* lwork, int* iwork,
             int* info);

void dgesvd_(const char* jobu, const char* jobvt, const int* m, const int* n,
             double* a, const int* lda, double* s, double* u, const int* ldu,
             double* vt, const int* ldvt, double* work, const int* lwork,
             int* info);

void dgeqrf_(const int* m, const int* n, double* a, const int* lda, double* tau,
             double* work, const int* lwork, int* info);

void dorgqr_(const int* m, const int* n, const int* k, double* a,
             const int* lda, const double* tau, double* work, const int* lwork,
             int* info);

void dsyevd_(const char* jobz, const char* uplo, const int* n, double* a,
             const int* lda, double* w, double* work, const int* lwork,
             int* iwork, const int* liwork, int* info);

}  // extern "C"

namespace tt::linalg {

namespace {

// LAPACK/BLAS here is LP64: 32-bit Fortran INTEGER dimensions.
int to_f(index_t v, const char* what) {
  TT_CHECK(v >= 0 && v <= std::numeric_limits<int>::max(),
           "dimension " << what << "=" << v << " exceeds the 32-bit Fortran "
                        << "INTEGER range of the blas backend");
  return static_cast<int>(v);
}

int query_to_lwork(real_t wkopt) {
  // Workspace sizes come back as doubles; round up defensively.
  return static_cast<int>(wkopt) + 1;
}

class BlasBackend final : public Backend {
 public:
  const char* name() const noexcept override { return "blas"; }

  void gemm(bool transa, bool transb, index_t m, index_t n, index_t k,
            real_t alpha, const real_t* a, const real_t* b, real_t beta,
            real_t* c) const override {
    const int mf = to_f(n, "n"), nf = to_f(m, "m"), kf = to_f(k, "k");
    if (mf == 0 || nf == 0) return;
    // First Fortran operand is op(B)ᵀ: the column-major view of the B buffer
    // is already transposed, so the Fortran trans flag is our transb verbatim
    // (and likewise for A).
    const char ta = transb ? 'T' : 'N';
    const char tb = transa ? 'T' : 'N';
    const int lda = std::max(1, transb ? kf : mf);
    const int ldb = std::max(1, transa ? nf : kf);
    const int ldc = mf;
    dgemm_(&ta, &tb, &mf, &nf, &kf, &alpha, b, &lda, a, &ldb, &beta, c, &ldc);
  }

  void gemv(index_t m, index_t n, real_t alpha, const real_t* a,
            const real_t* x, real_t beta, real_t* y) const override {
    if (m == 0) return;
    if (n == 0) {
      // Reference dgemv quick-returns on a zero inner dimension without
      // applying beta; match the library contract (beta==0 overwrites).
      for (index_t i = 0; i < m; ++i) y[i] = (beta == 0.0) ? 0.0 : beta * y[i];
      return;
    }
    const char trans = 'T';
    const int mf = to_f(n, "n"), nf = to_f(m, "m"), inc = 1;
    dgemv_(&trans, &mf, &nf, &alpha, a, &mf, x, &inc, &beta, y, &inc);
  }

  SvdResult svd(const Matrix& a) const override {
    const index_t m = a.rows(), n = a.cols(), r = std::min(m, n);
    // Factor the column-major view Aᵀ (n×m): Aᵀ = U'·S·V'ᵀ means A's U is V'
    // and A's Vᵀ is U'ᵀ, so the Fortran U output (n×r, ld n) read row-major
    // is exactly out.vt (r×n) and the Fortran VT output (r×m, ld r) read
    // row-major is exactly out.u (m×r).
    const int mf = to_f(n, "n"), nf = to_f(m, "m"), rf = to_f(r, "min(m,n)");
    SvdResult out;
    out.s.assign(static_cast<std::size_t>(r), 0.0);
    out.u = Matrix(m, r);
    out.vt = Matrix(r, n);
    std::vector<real_t> awork(a.data(), a.data() + m * n);
    const char jobz = 'S';
    int info = 0, lwork = -1;
    real_t wkopt = 0.0;
    std::vector<int> iwork(static_cast<std::size_t>(8 * r));
    dgesdd_(&jobz, &mf, &nf, awork.data(), &mf, out.s.data(), out.vt.data(),
            &mf, out.u.data(), &rf, &wkopt, &lwork, iwork.data(), &info);
    TT_CHECK(info == 0, "dgesdd workspace query failed: info=" << info);
    lwork = query_to_lwork(wkopt);
    std::vector<real_t> work(static_cast<std::size_t>(lwork));
    dgesdd_(&jobz, &mf, &nf, awork.data(), &mf, out.s.data(), out.vt.data(),
            &mf, out.u.data(), &rf, work.data(), &lwork, iwork.data(), &info);
    TT_CHECK(info >= 0, "dgesdd: illegal argument " << -info);
    if (info > 0) {
      // Divide-and-conquer occasionally fails to converge; retry with the
      // unconditionally robust QR-iteration driver.
      awork.assign(a.data(), a.data() + m * n);
      const char jobu = 'S', jobvt = 'S';
      lwork = -1;
      dgesvd_(&jobu, &jobvt, &mf, &nf, awork.data(), &mf, out.s.data(),
              out.vt.data(), &mf, out.u.data(), &rf, &wkopt, &lwork, &info);
      TT_CHECK(info == 0, "dgesvd workspace query failed: info=" << info);
      lwork = query_to_lwork(wkopt);
      work.resize(static_cast<std::size_t>(lwork));
      dgesvd_(&jobu, &jobvt, &mf, &nf, awork.data(), &mf, out.s.data(),
              out.vt.data(), &mf, out.u.data(), &rf, work.data(), &lwork,
              &info);
      TT_CHECK(info == 0, "SVD did not converge (dgesdd then dgesvd): info="
                              << info);
    }
    return out;
  }

  QrResult qr(const Matrix& a) const override {
    const index_t m = a.rows(), n = a.cols(), r = std::min(m, n);
    QrResult out{Matrix(m, r), Matrix(r, n)};
    if (r == 0) return out;
    // transposed() of a row-major matrix is byte-identical to the column-major
    // layout dgeqrf expects (leading dimension m).
    Matrix acm = a.transposed();
    const int mf = to_f(m, "m"), nf = to_f(n, "n"), rf = to_f(r, "min(m,n)");
    std::vector<real_t> tau(static_cast<std::size_t>(r));
    int info = 0, lwork = -1;
    real_t wkopt = 0.0;
    dgeqrf_(&mf, &nf, acm.data(), &mf, tau.data(), &wkopt, &lwork, &info);
    TT_CHECK(info == 0, "dgeqrf workspace query failed: info=" << info);
    lwork = query_to_lwork(wkopt);
    std::vector<real_t> work(static_cast<std::size_t>(lwork));
    dgeqrf_(&mf, &nf, acm.data(), &mf, tau.data(), work.data(), &lwork, &info);
    TT_CHECK(info == 0, "dgeqrf: illegal argument " << -info);
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i <= std::min(j, r - 1); ++i)
        out.r(i, j) = acm.data()[j * m + i];
    lwork = -1;
    dorgqr_(&mf, &rf, &rf, acm.data(), &mf, tau.data(), &wkopt, &lwork, &info);
    TT_CHECK(info == 0, "dorgqr workspace query failed: info=" << info);
    lwork = query_to_lwork(wkopt);
    work.resize(static_cast<std::size_t>(lwork));
    dorgqr_(&mf, &rf, &rf, acm.data(), &mf, tau.data(), work.data(), &lwork,
            &info);
    TT_CHECK(info == 0, "dorgqr: illegal argument " << -info);
    for (index_t i = 0; i < m; ++i)
      for (index_t j = 0; j < r; ++j) out.q(i, j) = acm.data()[j * m + i];
    return out;
  }

  EigResult eigh(const Matrix& a) const override {
    const index_t n = a.rows();
    EigResult out;
    out.values.assign(static_cast<std::size_t>(n), 0.0);
    out.vectors = Matrix(n, n);
    if (n == 0) return out;
    // Input is symmetric (validated by eigh()), so the row-major buffer is a
    // valid column-major A up to round-off in the unread triangle.
    std::vector<real_t> awork(a.data(), a.data() + n * n);
    const int nf = to_f(n, "n");
    const char jobz = 'V', uplo = 'L';
    int info = 0, lwork = -1, liwork = -1, iwkopt = 0;
    real_t wkopt = 0.0;
    dsyevd_(&jobz, &uplo, &nf, awork.data(), &nf, out.values.data(), &wkopt,
            &lwork, &iwkopt, &liwork, &info);
    TT_CHECK(info == 0, "dsyevd workspace query failed: info=" << info);
    lwork = query_to_lwork(wkopt);
    liwork = iwkopt;
    std::vector<real_t> work(static_cast<std::size_t>(lwork));
    std::vector<int> iwork(static_cast<std::size_t>(liwork));
    dsyevd_(&jobz, &uplo, &nf, awork.data(), &nf, out.values.data(),
            work.data(), &lwork, iwork.data(), &liwork, &info);
    TT_CHECK(info == 0, "dsyevd failed: info=" << info);
    // Eigenvector columns arrive column-major; transpose into the row-major
    // columns-of-vectors convention.
    for (index_t c = 0; c < n; ++c)
      for (index_t i = 0; i < n; ++i)
        out.vectors(i, c) = awork[static_cast<std::size_t>(c * n + i)];
    return out;
  }
};

}  // namespace

namespace detail {

const Backend* blas_backend_instance() {
  static const BlasBackend b;
  return &b;
}

}  // namespace detail

}  // namespace tt::linalg

#else  // !TT_WITH_BLAS

// TT_WITH_BLAS=OFF: the dispatcher never references the blas instance and
// this TU compiles empty (the declaration keeps it a valid translation unit).
namespace tt::linalg {}

#endif  // TT_WITH_BLAS

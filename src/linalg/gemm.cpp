#include "linalg/gemm.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "support/thread_pool.hpp"

namespace tt::linalg {

namespace {

using support::openmp_allowed;

// Half-open range overlap on raw addresses (std::uintptr_t: comparing
// unrelated pointers directly is unspecified).
bool ranges_overlap(const real_t* a, index_t na, const real_t* b, index_t nb) {
  if (na <= 0 || nb <= 0) return false;
  const auto a0 = reinterpret_cast<std::uintptr_t>(a);
  const auto a1 = reinterpret_cast<std::uintptr_t>(a + na);
  const auto b0 = reinterpret_cast<std::uintptr_t>(b);
  const auto b1 = reinterpret_cast<std::uintptr_t>(b + nb);
  return a0 < b1 && b0 < a1;
}

// Kernel blocking parameters: a (kMc x kKc) A-panel and (kKc x n) B-panel fit
// comfortably in L2; the inner i-k-j loop vectorizes over j.
constexpr index_t kMc = 64;
constexpr index_t kKc = 256;

// Core kernel for C(m×n) += A(m×k) * B(k×n), all row-major, no transposes.
// Parallelizes over row panels of C so threads never write the same cache line.
void gemm_nn(index_t m, index_t n, index_t k, real_t alpha, const real_t* a,
             const real_t* b, real_t* c) {
  const index_t num_panels = (m + kMc - 1) / kMc;
#pragma omp parallel for schedule(dynamic, 1) if (m * n * k > (index_t{1} << 16) && openmp_allowed())
  for (index_t panel = 0; panel < num_panels; ++panel) {
    const index_t i0 = panel * kMc;
    const index_t i1 = std::min(i0 + kMc, m);
    for (index_t k0 = 0; k0 < k; k0 += kKc) {
      const index_t k1 = std::min(k0 + kKc, k);
      for (index_t i = i0; i < i1; ++i) {
        real_t* ci = c + i * n;
        for (index_t kk = k0; kk < k1; ++kk) {
          const real_t aik = alpha * a[i * k + kk];
          if (aik == 0.0) continue;
          const real_t* bk = b + kk * n;
          for (index_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

// Materialize the transpose of an r×c row-major buffer.
std::vector<real_t> transpose_buffer(const real_t* x, index_t r, index_t c) {
  std::vector<real_t> t(static_cast<std::size_t>(r * c));
  constexpr index_t kBlock = 32;
#pragma omp parallel for collapse(2) schedule(static) if (r * c > (index_t{1} << 16) && openmp_allowed())
  for (index_t ib = 0; ib < (r + kBlock - 1) / kBlock; ++ib)
    for (index_t jb = 0; jb < (c + kBlock - 1) / kBlock; ++jb) {
      const index_t ie = std::min((ib + 1) * kBlock, r);
      const index_t je = std::min((jb + 1) * kBlock, c);
      for (index_t i = ib * kBlock; i < ie; ++i)
        for (index_t j = jb * kBlock; j < je; ++j) t[j * r + i] = x[i * c + j];
    }
  return t;
}

void scale_inplace(real_t* c, index_t count, real_t beta) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    std::memset(c, 0, static_cast<std::size_t>(count) * sizeof(real_t));
    return;
  }
#pragma omp parallel for schedule(static) if (count > (index_t{1} << 16) && openmp_allowed())
  for (index_t i = 0; i < count; ++i) c[i] *= beta;
}

}  // namespace

void gemm_raw(bool transa, bool transb, index_t m, index_t n, index_t k,
              real_t alpha, const real_t* a, const real_t* b, real_t beta,
              real_t* c) {
  // BLAS forbids aliased output: scale_inplace rewrites c before the multiply
  // reads a/b, so overlap would corrupt the operands silently.
  TT_CHECK(!ranges_overlap(c, m * n, a, m * k),
           "gemm output aliases operand A");
  TT_CHECK(!ranges_overlap(c, m * n, b, k * n),
           "gemm output aliases operand B");
  scale_inplace(c, m * n, beta);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0) return;

  // Normalize both operands to non-transposed row-major form; the O(mn+nk)
  // copies are negligible against the O(mnk) multiply for the block sizes the
  // DMRG workloads produce.
  std::vector<real_t> abuf, bbuf;
  const real_t* ap = a;
  const real_t* bp = b;
  if (transa) {
    abuf = transpose_buffer(a, k, m);
    ap = abuf.data();
  }
  if (transb) {
    bbuf = transpose_buffer(b, n, k);
    bp = bbuf.data();
  }
  gemm_nn(m, n, k, alpha, ap, bp, c);
}

void gemm(bool transa, bool transb, real_t alpha, const Matrix& a,
          const Matrix& b, real_t beta, Matrix& c) {
  const index_t m = transa ? a.cols() : a.rows();
  const index_t ka = transa ? a.rows() : a.cols();
  const index_t kb = transb ? b.cols() : b.rows();
  const index_t n = transb ? b.rows() : b.cols();
  TT_CHECK(ka == kb, "gemm inner dimension mismatch: " << ka << " vs " << kb);
  TT_CHECK(c.rows() == m && c.cols() == n,
           "gemm output shape mismatch: got " << c.rows() << "x" << c.cols()
                                              << ", want " << m << "x" << n);
  gemm_raw(transa, transb, m, n, ka, alpha, a.data(), b.data(), beta, c.data());
}

Matrix matmul(const Matrix& a, const Matrix& b) { return matmul(false, false, a, b); }

Matrix matmul(bool transa, bool transb, const Matrix& a, const Matrix& b) {
  const index_t m = transa ? a.cols() : a.rows();
  const index_t n = transb ? b.rows() : b.cols();
  Matrix c(m, n);
  gemm(transa, transb, 1.0, a, b, 0.0, c);
  return c;
}

void gemv(index_t m, index_t n, real_t alpha, const real_t* a, const real_t* x,
          real_t beta, real_t* y) {
#pragma omp parallel for schedule(static) if (m * n > (index_t{1} << 16) && openmp_allowed())
  for (index_t i = 0; i < m; ++i) {
    real_t s = 0.0;
    const real_t* ai = a + i * n;
    for (index_t j = 0; j < n; ++j) s += ai[j] * x[j];
    // BLAS semantics: beta == 0 overwrites without reading y, which may hold
    // NaN or uninitialized garbage that 0*y would propagate.
    y[i] = (beta == 0.0) ? alpha * s : alpha * s + beta * y[i];
  }
}

}  // namespace tt::linalg

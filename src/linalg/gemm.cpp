#include "linalg/gemm.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "linalg/backend.hpp"
#include "support/thread_pool.hpp"

namespace tt::linalg {

namespace {

using support::openmp_allowed;

// Half-open range overlap on raw addresses (std::uintptr_t: comparing
// unrelated pointers directly is unspecified).
bool ranges_overlap(const real_t* a, index_t na, const real_t* b, index_t nb) {
  if (na <= 0 || nb <= 0) return false;
  // tt-lint: allow(raw-cast-audit) pointer-to-integer for address ordering only; nothing is dereferenced through the cast
  const auto a0 = reinterpret_cast<std::uintptr_t>(a);
  // tt-lint: allow(raw-cast-audit) pointer-to-integer for address ordering only; nothing is dereferenced through the cast
  const auto a1 = reinterpret_cast<std::uintptr_t>(a + na);
  // tt-lint: allow(raw-cast-audit) pointer-to-integer for address ordering only; nothing is dereferenced through the cast
  const auto b0 = reinterpret_cast<std::uintptr_t>(b);
  // tt-lint: allow(raw-cast-audit) pointer-to-integer for address ordering only; nothing is dereferenced through the cast
  const auto b1 = reinterpret_cast<std::uintptr_t>(b + nb);
  return a0 < b1 && b0 < a1;
}

// --- packed-panel, register-tiled GEMM ---------------------------------------
//
// BLIS-style blocking: for each (jc, pc) block, op(B) is packed once into
// kNr-wide strips; kMc-row panels of op(A) are packed into kMr-tall strips
// (alpha folded in) and swept by a kMr×kNr register-tile micro-kernel. The
// packing reads op(A)/op(B) through their physical layout, so transposed
// operands cost nothing extra — no transpose is ever materialized.
//
// Threads split the ic panel loop (disjoint C rows) while the pc loop stays
// sequential, so every C element accumulates its k contributions in one fixed
// order: results are bitwise identical at any thread count.
constexpr index_t kMr = 4;     // register tile rows
constexpr index_t kNr = 8;     // register tile cols (one or two vector widths)
constexpr index_t kMc = 128;   // A panel rows   (A panel: kMc×kKc = 256 KB)
constexpr index_t kKc = 256;   // shared k block
constexpr index_t kNc = 2048;  // B panel cols   (B panel: kKc×kNc ≤ 4 MB)

index_t round_up(index_t x, index_t q) { return (x + q - 1) / q * q; }

// Pack alpha·op(A)[i0:i0+ib, pc:pc+kc] — one kMr-tall strip, k-major,
// zero-padded past ib rows.
void pack_a_strip(bool transa, const real_t* a, index_t m, index_t k,
                  index_t i0, index_t ib, index_t pc, index_t kc, real_t alpha,
                  real_t* ap) {
  for (index_t kk = 0; kk < kc; ++kk) {
    for (index_t i = 0; i < ib; ++i)
      ap[kk * kMr + i] = alpha * (transa ? a[(pc + kk) * m + i0 + i]
                                         : a[(i0 + i) * k + pc + kk]);
    for (index_t i = ib; i < kMr; ++i) ap[kk * kMr + i] = 0.0;
  }
}

// Pack op(B)[pc:pc+kc, j0:j0+jb] — one kNr-wide strip, zero-padded past jb.
void pack_b_strip(bool transb, const real_t* b, index_t k, index_t n,
                  index_t pc, index_t j0, index_t jb, index_t kc, real_t* bp) {
  for (index_t kk = 0; kk < kc; ++kk) {
    for (index_t j = 0; j < jb; ++j)
      bp[kk * kNr + j] = transb ? b[(j0 + j) * k + pc + kk]
                                : b[(pc + kk) * n + j0 + j];
    for (index_t j = jb; j < kNr; ++j) bp[kk * kNr + j] = 0.0;
  }
}

// C[0:mb, 0:nb] += Σ_kk ap-strip(kk) ⊗ bp-strip(kk). The accumulator tile
// lives in registers; padded lanes hold zeros and are simply not written back.
void micro_kernel(index_t kc, const real_t* __restrict ap,
                  const real_t* __restrict bp, real_t* __restrict c, index_t ldc,
                  index_t mb, index_t nb) {
  real_t acc[kMr][kNr] = {};
  for (index_t kk = 0; kk < kc; ++kk) {
    const real_t* av = ap + kk * kMr;
    const real_t* bv = bp + kk * kNr;
    for (index_t i = 0; i < kMr; ++i)
      for (index_t j = 0; j < kNr; ++j) acc[i][j] += av[i] * bv[j];
  }
  for (index_t i = 0; i < mb; ++i)
    for (index_t j = 0; j < nb; ++j) c[i * ldc + j] += acc[i][j];
}

// C += alpha·op(A)·op(B) for non-degenerate shapes (beta already applied).
// Each (jc, pc) block runs three phases — pack B strips, pack A strips,
// sweep (panel × column-strip) tiles — every one parallel over disjoint
// writes, so parallelism scales with max(m/4, n/8, m·n/1024) rather than
// m/128 alone, and results stay bitwise identical at any thread count.
void gemm_packed(bool transa, bool transb, index_t m, index_t n, index_t k,
                 real_t alpha, const real_t* a, const real_t* b, real_t* c) {
  const index_t kc_max = std::min(kKc, k);
  std::vector<real_t> bpack(
      static_cast<std::size_t>(round_up(std::min(kNc, n), kNr) * kc_max));
  std::vector<real_t> apack(static_cast<std::size_t>(round_up(m, kMr) * kc_max));
  const index_t num_panels = (m + kMc - 1) / kMc;
  const index_t num_astrips = (m + kMr - 1) / kMr;
  [[maybe_unused]] const bool parallel =
      m * n * k > (index_t{1} << 16) && openmp_allowed();
  for (index_t jc = 0; jc < n; jc += kNc) {
    const index_t nc = std::min(kNc, n - jc);
    const index_t num_bstrips = (nc + kNr - 1) / kNr;
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);
#pragma omp parallel for schedule(static) if (parallel)
      for (index_t s = 0; s < num_bstrips; ++s)
        pack_b_strip(transb, b, k, n, pc, jc + s * kNr,
                     std::min(kNr, nc - s * kNr), kc,
                     bpack.data() + s * kc * kNr);
#pragma omp parallel for schedule(static) if (parallel)
      for (index_t s = 0; s < num_astrips; ++s)
        pack_a_strip(transa, a, m, k, s * kMr, std::min(kMr, m - s * kMr), pc,
                     kc, alpha, apack.data() + s * kc * kMr);
      // One tile = one C row panel × one packed B strip, column-strip-minor:
      // consecutive tiles reuse the same A panel (the L2-resident object)
      // and stream the small B strips past it.
      const index_t tiles = num_panels * num_bstrips;
#pragma omp parallel for schedule(dynamic, 1) if (parallel)
      for (index_t t = 0; t < tiles; ++t) {
        const index_t panel = t / num_bstrips;
        const index_t js = t % num_bstrips;
        const index_t ic = panel * kMc;
        const index_t mc = std::min(kMc, m - ic);
        const index_t jr = js * kNr;
        const index_t nb = std::min(kNr, nc - jr);
        const real_t* bs = bpack.data() + js * kc * kNr;
        for (index_t ir = 0; ir < mc; ir += kMr)
          micro_kernel(kc, apack.data() + ((ic + ir) / kMr) * kc * kMr, bs,
                       c + (ic + ir) * n + jc + jr, n, std::min(kMr, mc - ir),
                       nb);
      }
    }
  }
}

void scale_inplace(real_t* c, index_t count, real_t beta) {
  if (beta == 1.0) return;
  if (beta == 0.0) {
    std::memset(c, 0, static_cast<std::size_t>(count) * sizeof(real_t));
    return;
  }
#pragma omp parallel for schedule(static) if (count > (index_t{1} << 16) && openmp_allowed())
  for (index_t i = 0; i < count; ++i) c[i] *= beta;
}

}  // namespace

namespace detail {

void builtin_gemm(bool transa, bool transb, index_t m, index_t n, index_t k,
                  real_t alpha, const real_t* a, const real_t* b, real_t beta,
                  real_t* c) {
  scale_inplace(c, m * n, beta);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  gemm_packed(transa, transb, m, n, k, alpha, a, b, c);
}

void builtin_gemv(index_t m, index_t n, real_t alpha, const real_t* a,
                  const real_t* x, real_t beta, real_t* y) {
#pragma omp parallel for schedule(static) if (m * n > (index_t{1} << 16) && openmp_allowed())
  for (index_t i = 0; i < m; ++i) {
    real_t s = 0.0;
    const real_t* ai = a + i * n;
    for (index_t j = 0; j < n; ++j) s += ai[j] * x[j];
    // BLAS semantics: beta == 0 overwrites without reading y, which may hold
    // NaN or uninitialized garbage that 0*y would propagate.
    y[i] = (beta == 0.0) ? alpha * s : alpha * s + beta * y[i];
  }
}

}  // namespace detail

void gemm_raw(bool transa, bool transb, index_t m, index_t n, index_t k,
              real_t alpha, const real_t* a, const real_t* b, real_t beta,
              real_t* c) {
  // BLAS forbids aliased output: the beta pass rewrites c before the multiply
  // reads a/b, so overlap would corrupt the operands silently.
  TT_CHECK(!ranges_overlap(c, m * n, a, m * k),
           "gemm output aliases operand A");
  TT_CHECK(!ranges_overlap(c, m * n, b, k * n),
           "gemm output aliases operand B");
  backend().gemm(transa, transb, m, n, k, alpha, a, b, beta, c);
}

void gemm(bool transa, bool transb, real_t alpha, const Matrix& a,
          const Matrix& b, real_t beta, Matrix& c) {
  const index_t m = transa ? a.cols() : a.rows();
  const index_t ka = transa ? a.rows() : a.cols();
  const index_t kb = transb ? b.cols() : b.rows();
  const index_t n = transb ? b.rows() : b.cols();
  TT_CHECK(ka == kb, "gemm inner dimension mismatch: " << ka << " vs " << kb);
  TT_CHECK(c.rows() == m && c.cols() == n,
           "gemm output shape mismatch: got " << c.rows() << "x" << c.cols()
                                              << ", want " << m << "x" << n);
  gemm_raw(transa, transb, m, n, ka, alpha, a.data(), b.data(), beta, c.data());
}

Matrix matmul(const Matrix& a, const Matrix& b) { return matmul(false, false, a, b); }

Matrix matmul(bool transa, bool transb, const Matrix& a, const Matrix& b) {
  const index_t m = transa ? a.cols() : a.rows();
  const index_t n = transb ? b.rows() : b.cols();
  Matrix c(m, n);
  gemm(transa, transb, 1.0, a, b, 0.0, c);
  return c;
}

void gemv(index_t m, index_t n, real_t alpha, const real_t* a, const real_t* x,
          real_t beta, real_t* y) {
  backend().gemv(m, n, alpha, a, x, beta, y);
}

}  // namespace tt::linalg

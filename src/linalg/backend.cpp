#include "linalg/backend.hpp"

#include <atomic>
#include <cstdlib>

#include "linalg/gemm.hpp"
#include "support/error.hpp"

namespace tt::linalg {

namespace {

// The "builtin" backend: the self-contained kernels of this directory. These
// are the deterministic reference implementations — bitwise identical results
// at any TT_THREADS (the PR-2 invariant the parallel block executor asserts).
class BuiltinBackend final : public Backend {
 public:
  const char* name() const noexcept override { return "builtin"; }

  void gemm(bool transa, bool transb, index_t m, index_t n, index_t k,
            real_t alpha, const real_t* a, const real_t* b, real_t beta,
            real_t* c) const override {
    detail::builtin_gemm(transa, transb, m, n, k, alpha, a, b, beta, c);
  }

  void gemv(index_t m, index_t n, real_t alpha, const real_t* a,
            const real_t* x, real_t beta, real_t* y) const override {
    detail::builtin_gemv(m, n, alpha, a, x, beta, y);
  }

  SvdResult svd(const Matrix& a) const override { return detail::builtin_svd(a); }

  QrResult qr(const Matrix& a) const override { return detail::builtin_qr(a); }

  EigResult eigh(const Matrix& a) const override { return detail::builtin_eigh(a); }
};

const Backend* builtin_instance() {
  static const BuiltinBackend b;
  return &b;
}

// Name lookup over the backends compiled into this build.
const Backend* lookup(const std::string& name) {
  if (name == "builtin") return builtin_instance();
#ifdef TT_WITH_BLAS
  if (name == "blas") return detail::blas_backend_instance();
#endif
  return nullptr;
}

std::string joined_names() {
  std::string out;
  for (const std::string& n : available_backends()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

// The active-backend slot. Starts empty and is resolved on first *use* (not
// first selection): an invalid TT_BACKEND in the environment must not break
// an explicit set_backend() call that precedes any kernel — the documented
// precedence is set_backend() > TT_BACKEND > compiled default.
std::atomic<const Backend*>& active_slot() {
  static std::atomic<const Backend*> slot{nullptr};
  return slot;
}

}  // namespace

namespace detail {

const Backend& resolve_default_backend() {
  if (const char* env = std::getenv("TT_BACKEND")) {
    const Backend* p = lookup(env);
    TT_CHECK(p != nullptr, "TT_BACKEND='" << env
                                          << "' is not a linalg backend of this build"
                                          << " (available: " << joined_names() << ")");
    return *p;
  }
#ifdef TT_WITH_BLAS
  return *blas_backend_instance();
#else
  return *builtin_instance();
#endif
}

}  // namespace detail

const Backend& backend() {
  auto& slot = active_slot();
  if (const Backend* p = slot.load(std::memory_order_acquire)) return *p;
  // First use with no explicit selection: resolve the default. Concurrent
  // first calls all resolve the same value; the CAS keeps whichever landed
  // (including a racing set_backend, which must win over the default).
  const Backend& resolved = detail::resolve_default_backend();
  const Backend* expected = nullptr;
  slot.compare_exchange_strong(expected, &resolved, std::memory_order_acq_rel);
  return *slot.load(std::memory_order_acquire);
}

const char* backend_name() { return backend().name(); }

void set_backend(const std::string& name) {
  const Backend* p = lookup(name);
  TT_CHECK(p != nullptr, "unknown linalg backend '"
                             << name << "' (available: " << joined_names() << ")");
  active_slot().store(p, std::memory_order_release);
}

std::vector<std::string> available_backends() {
  std::vector<std::string> out{"builtin"};
#ifdef TT_WITH_BLAS
  out.push_back("blas");
#endif
  return out;
}

bool blas_backend_available() {
#ifdef TT_WITH_BLAS
  return true;
#else
  return false;
#endif
}

}  // namespace tt::linalg

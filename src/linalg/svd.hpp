// Singular value decomposition (dispatched through linalg::Backend).
//
// Stands in for the ScaLAPACK pdgesvd the paper calls through Cyclops: every
// block-wise SVD in the DMRG truncation step lands here. svd() routes to the
// active backend: the builtin QR-preprocessed one-sided Jacobi below (chosen
// for its unconditional robustness and high relative accuracy on the
// small-to-medium blocks quantum-number symmetry produces), or LAPACK dgesdd
// (falling back to dgesvd on non-convergence) under TT_WITH_BLAS.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace tt::linalg {

/// Thin SVD: A (m×n) = U (m×r) · diag(s) · Vᵀ (r×n), r = min(m,n),
/// singular values sorted descending, U/V orthonormal columns (including the
/// null-space completion for rank-deficient inputs).
struct SvdResult {
  Matrix u;
  std::vector<real_t> s;
  Matrix vt;

  /// Reconstruct U · diag(s) · Vᵀ (test/diagnostic helper).
  Matrix reconstruct() const;
};

SvdResult svd(const Matrix& a);

/// Flop estimate for the SVD of an m×n matrix (LAPACK-style 14·m·n² model).
double svd_flops(index_t m, index_t n);

/// Kept count under truncation: r' = min(max_keep, max(1, #{s > cutoff}))
/// when s is non-empty, else 0. The keep-at-least-one floor (DMRG must keep a
/// nonzero bond) applies before the cap, so an explicit max_keep == 0 request
/// wins and returns 0.
index_t svd_rank(const std::vector<real_t>& s, real_t cutoff, index_t max_keep);

namespace detail {

/// The self-contained QR-preprocessed Jacobi SVD behind the "builtin" backend.
/// Requires a non-empty input; call svd() unless comparing backends directly.
SvdResult builtin_svd(const Matrix& a);

}  // namespace detail

}  // namespace tt::linalg

// Runtime-dispatched linear-algebra backend layer.
//
// Every hot dense kernel in the library — gemm_raw/gemv (gemm.hpp), svd
// (svd.hpp), qr (qr.hpp), eigh (eigen.hpp) — routes through the active
// Backend. Two implementations exist:
//
//   "builtin"  the self-contained kernels in this directory (packed
//              micro-kernel GEMM, QR-preprocessed Jacobi SVD, Householder QR,
//              cyclic Jacobi eigensolver). Always available; bitwise
//              deterministic at any TT_THREADS.
//   "blas"     vendor BLAS/LAPACK (dgemm/dgemv/dgesdd/dgeqrf+dorgqr/dsyevd),
//              compiled in under -DTT_WITH_BLAS=ON (backend_blas.cpp) and the
//              default whenever present.
//
// Selection, in precedence order: set_backend() > the TT_BACKEND environment
// variable ("builtin" or "blas") > the compiled-in default. Unknown names
// throw tt::Error. Switching is a process-global runtime choice — no rebuild —
// but must not race in-flight kernels; select once at startup (or from a
// single thread between phases).
#pragma once

#include <string>
#include <vector>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "support/types.hpp"

namespace tt::linalg {

/// One full set of dense kernels. Implementations must honour BLAS semantics:
/// beta == 0 overwrites C/y without reading (no NaN propagation from
/// uninitialized output), and alpha == 0 or k == 0 still applies beta.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable identifier ("builtin", "blas") used by TT_BACKEND/set_backend.
  virtual const char* name() const noexcept = 0;

  /// C := alpha * op(A) * op(B) + beta * C, row-major (see gemm.hpp).
  virtual void gemm(bool transa, bool transb, index_t m, index_t n, index_t k,
                    real_t alpha, const real_t* a, const real_t* b, real_t beta,
                    real_t* c) const = 0;

  /// y := alpha * A * x + beta * y (row-major A).
  virtual void gemv(index_t m, index_t n, real_t alpha, const real_t* a,
                    const real_t* x, real_t beta, real_t* y) const = 0;

  /// Thin SVD of a non-empty matrix (see svd.hpp for the result contract).
  virtual SvdResult svd(const Matrix& a) const = 0;

  /// Thin QR (see qr.hpp).
  virtual QrResult qr(const Matrix& a) const = 0;

  /// Full symmetric eigendecomposition of a validated symmetric matrix,
  /// eigenvalues ascending (see eigen.hpp).
  virtual EigResult eigh(const Matrix& a) const = 0;
};

/// The active backend. First use resolves TT_BACKEND (throwing tt::Error on
/// unknown names); afterwards set_backend() switches it.
const Backend& backend();

/// name() of the active backend.
const char* backend_name();

/// Select the active backend by name; throws tt::Error on unknown names and
/// leaves the previous selection untouched.
void set_backend(const std::string& name);

/// Names accepted by set_backend()/TT_BACKEND in this build.
std::vector<std::string> available_backends();

/// True when the 'blas' backend was compiled in (-DTT_WITH_BLAS=ON).
bool blas_backend_available();

namespace detail {

/// The resolution step behind the lazy default: TT_BACKEND when set (tt::Error
/// on unknown names), else "blas" when compiled in, else "builtin". Exposed so
/// tests can exercise the environment path without respawning the process.
const Backend& resolve_default_backend();

/// The 'blas' backend singleton; defined in backend_blas.cpp, only when
/// TT_WITH_BLAS is compiled in (never referenced otherwise).
const Backend* blas_backend_instance();

}  // namespace detail

}  // namespace tt::linalg

#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/backend.hpp"

namespace tt::linalg {

namespace {

// Apply H = I − tau·v·vᵀ to rows [row0, m) of work, columns [col0, ncols).
// v is indexed relative to row0 and has v[0] == 1 implicitly.
void apply_householder(Matrix& work, index_t row0, index_t col0,
                       const std::vector<real_t>& v, real_t tau) {
  if (tau == 0.0) return;
  const index_t m = work.rows();
  const index_t n = work.cols();
  std::vector<real_t> w(static_cast<std::size_t>(n - col0), 0.0);
  for (index_t r = row0; r < m; ++r) {
    const real_t vr = v[static_cast<std::size_t>(r - row0)];
    if (vr == 0.0) continue;
    const real_t* wr = work.row(r) + col0;
    for (index_t c = 0; c < n - col0; ++c) w[static_cast<std::size_t>(c)] += vr * wr[c];
  }
  for (index_t r = row0; r < m; ++r) {
    const real_t coef = tau * v[static_cast<std::size_t>(r - row0)];
    if (coef == 0.0) continue;
    real_t* wr = work.row(r) + col0;
    for (index_t c = 0; c < n - col0; ++c) wr[c] -= coef * w[static_cast<std::size_t>(c)];
  }
}

}  // namespace

QrResult qr(const Matrix& a) { return backend().qr(a); }

LqResult lq(const Matrix& a) {
  QrResult f = qr(a.transposed());
  return {f.r.transposed(), f.q.transposed()};
}

namespace detail {

QrResult builtin_qr(const Matrix& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t r = std::min(m, n);
  Matrix work = a;

  // Householder vectors and scalars, kept to accumulate Q afterwards.
  std::vector<std::vector<real_t>> vs(static_cast<std::size_t>(r));
  std::vector<real_t> taus(static_cast<std::size_t>(r), 0.0);

  for (index_t j = 0; j < r; ++j) {
    // Build the reflector for column j from rows j..m-1 (Golub & Van Loan 5.1.1).
    const index_t len = m - j;
    std::vector<real_t> v(static_cast<std::size_t>(len));
    for (index_t i = 0; i < len; ++i) v[static_cast<std::size_t>(i)] = work(j + i, j);
    real_t sigma = 0.0;
    for (index_t i = 1; i < len; ++i)
      sigma += v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
    const real_t x0 = v[0];
    real_t tau = 0.0;
    if (sigma != 0.0) {
      const real_t mu = std::sqrt(x0 * x0 + sigma);
      const real_t v0 = (x0 <= 0.0) ? x0 - mu : -sigma / (x0 + mu);
      tau = 2.0 * v0 * v0 / (sigma + v0 * v0);
      for (index_t i = 1; i < len; ++i) v[static_cast<std::size_t>(i)] /= v0;
    }
    v[0] = 1.0;
    apply_householder(work, j, j, v, tau);
    vs[static_cast<std::size_t>(j)] = std::move(v);
    taus[static_cast<std::size_t>(j)] = tau;
  }

  // R = upper part of the worked matrix.
  Matrix rmat(r, n);
  for (index_t i = 0; i < r; ++i)
    for (index_t j = i; j < n; ++j) rmat(i, j) = work(i, j);

  // Accumulate the thin Q = H_0 · H_1 ··· H_{r-1} · E (E = leading r columns
  // of the identity), applying reflectors from the last to the first.
  Matrix q(m, r);
  for (index_t i = 0; i < r; ++i) q(i, i) = 1.0;
  for (index_t j = r - 1; j >= 0; --j)
    apply_householder(q, j, 0, vs[static_cast<std::size_t>(j)],
                      taus[static_cast<std::size_t>(j)]);
  return {std::move(q), std::move(rmat)};
}

}  // namespace detail

double qr_flops(index_t m, index_t n) {
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  if (m >= n) return 2.0 * dm * dn * dn - (2.0 / 3.0) * dn * dn * dn;
  return 2.0 * dn * dm * dm - (2.0 / 3.0) * dm * dm * dm;
}

}  // namespace tt::linalg

// Symmetric eigensolver (dispatched through linalg::Backend).
//
// Used for the Rayleigh–Ritz step of the Davidson routine (paper Alg. 1 line
// 7 diagonalizes the small projected matrix M) and as a dense oracle in tests.
// eigh() validates symmetry, then routes to the active backend: the builtin
// cyclic Jacobi sweep below, or LAPACK dsyevd under TT_WITH_BLAS.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace tt::linalg {

/// Full eigendecomposition of a symmetric matrix: A = V · diag(w) · Vᵀ with
/// eigenvalues ascending and eigenvectors in the columns of `vectors`.
struct EigResult {
  std::vector<real_t> values;
  Matrix vectors;
};

/// Throws tt::Error if `a` is not square or not symmetric to tolerance.
EigResult eigh(const Matrix& a, real_t symmetry_tol = 1e-10);

namespace detail {

/// The self-contained cyclic-Jacobi eigensolver behind the "builtin" backend.
/// Assumes a validated square symmetric input; call eigh() unless comparing
/// backends directly.
EigResult builtin_eigh(const Matrix& a);

}  // namespace detail

}  // namespace tt::linalg

// Symmetric eigensolver (cyclic Jacobi).
//
// Used for the Rayleigh–Ritz step of the Davidson routine (paper Alg. 1 line
// 7 diagonalizes the small projected matrix M) and as a dense oracle in tests.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace tt::linalg {

/// Full eigendecomposition of a symmetric matrix: A = V · diag(w) · Vᵀ with
/// eigenvalues ascending and eigenvectors in the columns of `vectors`.
struct EigResult {
  std::vector<real_t> values;
  Matrix vectors;
};

/// Throws tt::Error if `a` is not square or not symmetric to tolerance.
EigResult eigh(const Matrix& a, real_t symmetry_tol = 1e-10);

}  // namespace tt::linalg

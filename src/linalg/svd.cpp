#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/backend.hpp"
#include "linalg/gemm.hpp"
#include "linalg/qr.hpp"
#include "support/rng.hpp"

namespace tt::linalg {

namespace {

constexpr int kMaxSweeps = 60;
constexpr real_t kConvergence = 1.0e-14;

// One-sided Jacobi on a square n×n matrix given as wt = Aᵀ (so "columns of A"
// are contiguous rows of wt). Rotates row pairs of wt and of vr (whose row i
// holds the i-th right singular vector) until all column pairs of A are
// numerically orthogonal.
void jacobi_orthogonalize(Matrix& wt, Matrix& vr) {
  const index_t n = wt.rows();
  const index_t m = wt.cols();
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    real_t off = 0.0;
    for (index_t i = 0; i < n - 1; ++i) {
      for (index_t j = i + 1; j < n; ++j) {
        real_t* wi = wt.row(i);
        real_t* wj = wt.row(j);
        real_t aii = 0.0, ajj = 0.0, aij = 0.0;
        for (index_t k = 0; k < m; ++k) {
          aii += wi[k] * wi[k];
          ajj += wj[k] * wj[k];
          aij += wi[k] * wj[k];
        }
        if (aii == 0.0 || ajj == 0.0) continue;
        // sqrt(aii)*sqrt(ajj), not sqrt(aii*ajj): the product underflows to
        // zero for subnormal column norms, turning `rel` into a division by
        // zero (NaN when aij == 0 too) that then poisons the rotation.
        const real_t denom = std::sqrt(aii) * std::sqrt(ajj);
        if (denom == 0.0) continue;
        const real_t rel = std::abs(aij) / denom;
        off = std::max(off, rel);
        if (rel <= kConvergence) continue;
        // Jacobi rotation zeroing the (i,j) Gram entry.
        const real_t zeta = (ajj - aii) / (2.0 * aij);
        const real_t t = ((zeta >= 0.0) ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const real_t cs = 1.0 / std::sqrt(1.0 + t * t);
        const real_t sn = cs * t;
        for (index_t k = 0; k < m; ++k) {
          const real_t a = wi[k], b = wj[k];
          wi[k] = cs * a - sn * b;
          wj[k] = sn * a + cs * b;
        }
        real_t* vi = vr.row(i);
        real_t* vj = vr.row(j);
        for (index_t k = 0; k < n; ++k) {
          const real_t a = vi[k], b = vj[k];
          vi[k] = cs * a - sn * b;
          vj[k] = sn * a + cs * b;
        }
      }
    }
    if (off <= kConvergence) break;
  }
}

// Gram–Schmidt completion of near-null U columns so the returned thin U is
// orthonormal even for rank-deficient inputs.
void complete_null_columns(Matrix& u, const std::vector<bool>& valid) {
  const index_t m = u.rows();
  const index_t r = u.cols();
  Rng rng(0xc0111ecdULL);
  for (index_t j = 0; j < r; ++j) {
    if (valid[static_cast<std::size_t>(j)]) continue;
    for (int attempt = 0; attempt < 8; ++attempt) {
      std::vector<real_t> cand(static_cast<std::size_t>(m));
      for (auto& v : cand) v = rng.normal();
      // Orthogonalize twice against all other columns (Kahan's rule).
      for (int pass = 0; pass < 2; ++pass) {
        for (index_t c = 0; c < r; ++c) {
          if (c == j || (!valid[static_cast<std::size_t>(c)] && c > j)) continue;
          real_t dot = 0.0;
          for (index_t i = 0; i < m; ++i) dot += u(i, c) * cand[static_cast<std::size_t>(i)];
          for (index_t i = 0; i < m; ++i) cand[static_cast<std::size_t>(i)] -= dot * u(i, c);
        }
      }
      real_t nrm = 0.0;
      for (real_t v : cand) nrm += v * v;
      nrm = std::sqrt(nrm);
      if (nrm > 1e-8) {
        for (index_t i = 0; i < m; ++i) u(i, j) = cand[static_cast<std::size_t>(i)] / nrm;
        break;
      }
    }
  }
}

// Jacobi SVD of a square matrix (m == n not required: requires rows >= cols).
SvdResult svd_tall(const Matrix& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();

  Matrix wt = a.transposed();      // rows of wt = columns of A
  Matrix vr = Matrix::identity(n); // rows = right singular vectors
  jacobi_orthogonalize(wt, vr);

  // Singular values = column norms; sort descending.
  std::vector<real_t> snorm(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    real_t s = 0.0;
    const real_t* wi = wt.row(i);
    for (index_t k = 0; k < m; ++k) s += wi[k] * wi[k];
    snorm[static_cast<std::size_t>(i)] = std::sqrt(s);
  }
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return snorm[static_cast<std::size_t>(x)] > snorm[static_cast<std::size_t>(y)];
  });

  SvdResult out;
  out.s.resize(static_cast<std::size_t>(n));
  out.u = Matrix(m, n);
  out.vt = Matrix(n, n);
  const real_t smax = snorm.empty() ? 0.0 : snorm[static_cast<std::size_t>(order[0])];
  const real_t tiny = std::max(smax, real_t{1.0}) * 1e-300;
  std::vector<bool> valid(static_cast<std::size_t>(n), true);
  for (index_t c = 0; c < n; ++c) {
    const index_t src = order[static_cast<std::size_t>(c)];
    const real_t s = snorm[static_cast<std::size_t>(src)];
    out.s[static_cast<std::size_t>(c)] = s;
    if (s > tiny) {
      for (index_t i = 0; i < m; ++i) out.u(i, c) = wt(src, i) / s;
    } else {
      valid[static_cast<std::size_t>(c)] = false;
    }
    for (index_t k = 0; k < n; ++k) out.vt(c, k) = vr(src, k);
  }
  complete_null_columns(out.u, valid);
  return out;
}

}  // namespace

Matrix SvdResult::reconstruct() const {
  Matrix us = u;
  for (index_t i = 0; i < us.rows(); ++i)
    for (index_t j = 0; j < us.cols(); ++j) us(i, j) *= s[static_cast<std::size_t>(j)];
  return matmul(us, vt);
}

SvdResult svd(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    SvdResult out;
    out.u = Matrix(a.rows(), std::min(a.rows(), a.cols()));
    out.vt = Matrix(std::min(a.rows(), a.cols()), a.cols());
    return out;
  }
  return backend().svd(a);
}

namespace detail {

SvdResult builtin_svd(const Matrix& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  if (m < n) {
    // SVD of the transpose, then swap factors: A = (V')·S·(U')ᵀ.
    SvdResult t = builtin_svd(a.transposed());
    SvdResult out;
    out.s = std::move(t.s);
    out.u = t.vt.transposed();
    out.vt = t.u.transposed();
    return out;
  }
  if (m > n) {
    // QR preprocessing: Jacobi on the small n×n R factor only.
    QrResult f = builtin_qr(a);
    SvdResult inner = svd_tall(f.r);
    SvdResult out;
    out.s = std::move(inner.s);
    out.u = matmul(f.q, inner.u);
    out.vt = std::move(inner.vt);
    return out;
  }
  return svd_tall(a);
}

}  // namespace detail

double svd_flops(index_t m, index_t n) {
  const double lo = static_cast<double>(std::min(m, n));
  const double hi = static_cast<double>(std::max(m, n));
  return 14.0 * hi * lo * lo;
}

index_t svd_rank(const std::vector<real_t>& s, real_t cutoff, index_t max_keep) {
  index_t keep = 0;
  for (real_t v : s) {
    if (v <= cutoff) break;
    ++keep;
  }
  // Floor before clamping: the "never empty the bond" rule must not override
  // an explicit max_keep == 0 truncation request.
  if (keep == 0 && !s.empty()) keep = 1;
  keep = std::min(keep, max_keep);
  return keep;
}

}  // namespace tt::linalg

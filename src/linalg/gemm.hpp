// GEMM entry points on raw row-major buffers and Matrix objects.
//
// Every tensor contraction in the library lowers to gemm_raw (the same
// execution strategy CTF uses: permute to matrix layout, multiply, permute
// back), so its throughput sets the library's GFlop/s scale. Calls dispatch
// through the active linalg::Backend (backend.hpp): either the builtin
// packed-panel register-tiled micro-kernel below (transposes absorbed by the
// packing, bitwise deterministic at any thread count) or vendor dgemm/dgemv
// when built with TT_WITH_BLAS.
#pragma once

#include "linalg/matrix.hpp"
#include "support/types.hpp"

namespace tt::linalg {

/// C := alpha * op(A) * op(B) + beta * C on raw row-major buffers.
/// op(A) is m×k, op(B) is k×n, C is m×n. transa/transb select op(X)=X^T, in
/// which case the physical layout of A is k×m (resp. B is n×k).
void gemm_raw(bool transa, bool transb, index_t m, index_t n, index_t k,
              real_t alpha, const real_t* a, const real_t* b, real_t beta,
              real_t* c);

/// C := alpha * op(A) * op(B) + beta * C; shapes validated against C.
void gemm(bool transa, bool transb, real_t alpha, const Matrix& a,
          const Matrix& b, real_t beta, Matrix& c);

/// Returns A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Returns op(A) * op(B).
Matrix matmul(bool transa, bool transb, const Matrix& a, const Matrix& b);

/// y := alpha * A * x + beta * y (row-major A, contiguous x/y).
void gemv(index_t m, index_t n, real_t alpha, const real_t* a, const real_t* x,
          real_t beta, real_t* y);

/// Flop count of one GEMM call (2*m*n*k), used by the runtime's flop counter.
inline double gemm_flops(index_t m, index_t n, index_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

namespace detail {

/// The self-contained packed micro-kernel GEMM behind the "builtin" backend.
/// Full BLAS semantics (beta, alpha == 0, k == 0); no aliasing checks — call
/// gemm_raw unless comparing backends directly.
void builtin_gemm(bool transa, bool transb, index_t m, index_t n, index_t k,
                  real_t alpha, const real_t* a, const real_t* b, real_t beta,
                  real_t* c);

/// The self-contained row-dot gemv behind the "builtin" backend.
void builtin_gemv(index_t m, index_t n, real_t alpha, const real_t* a,
                  const real_t* x, real_t beta, real_t* y);

}  // namespace detail

}  // namespace tt::linalg

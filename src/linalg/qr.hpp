// QR and LQ factorizations (dispatched through linalg::Backend).
//
// Used for MPS canonicalization (paper §II.C: the left/right environments are
// kept orthogonal by QR-factoring each site) and as the preprocessing step of
// the one-sided Jacobi SVD. qr() routes to the active backend: the builtin
// Householder factorization below, or LAPACK dgeqrf+dorgqr under TT_WITH_BLAS.
#pragma once

#include "linalg/matrix.hpp"

namespace tt::linalg {

/// Thin QR: A (m×n) = Q (m×r) · R (r×n) with r = min(m,n), QᵀQ = I,
/// R upper-triangular (upper-trapezoidal when m < n).
struct QrResult {
  Matrix q;
  Matrix r;
};
QrResult qr(const Matrix& a);

/// Thin LQ: A (m×n) = L (m×r) · Q (r×n) with r = min(m,n), QQᵀ = I,
/// L lower-triangular. Computed via QR of Aᵀ.
struct LqResult {
  Matrix l;
  Matrix q;
};
LqResult lq(const Matrix& a);

/// Flop estimate for the QR of an m×n matrix (2mn² − 2n³/3 for m ≥ n).
double qr_flops(index_t m, index_t n);

namespace detail {

/// The self-contained Householder QR behind the "builtin" backend. Call qr()
/// unless comparing backends directly.
QrResult builtin_qr(const Matrix& a);

}  // namespace detail

}  // namespace tt::linalg

// Dense row-major matrix of doubles.
//
// This is the storage type underneath every tensor block in the library; the
// parallel kernels (gemm.hpp, qr.hpp, svd.hpp, eigen.hpp) operate on it.
#pragma once

#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/types.hpp"

namespace tt::linalg {

/// Dense rows×cols matrix, row-major contiguous storage.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  Matrix(index_t rows, index_t cols, real_t fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), fill) {
    TT_CHECK(rows >= 0 && cols >= 0, "negative matrix dimension " << rows << "x" << cols);
  }

  static Matrix identity(index_t n) {
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  /// Matrix with i.i.d. normal(0, 1) entries.
  static Matrix random(index_t rows, index_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (auto& v : m.data_) v = rng.normal();
    return m;
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  real_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  real_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  real_t* data() { return data_.data(); }
  const real_t* data() const { return data_.data(); }
  real_t* row(index_t i) { return data() + i * cols_; }
  const real_t* row(index_t i) const { return data() + i * cols_; }

  /// Out-of-place transpose.
  Matrix transposed() const;

  /// Frobenius norm.
  real_t frobenius_norm() const;

  /// Max |a_ij|.
  real_t max_abs() const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(real_t s);

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  index_t rows_, cols_;
  std::vector<real_t> data_;
};

/// Max |a_ij - b_ij|; matrices must have equal shape.
real_t max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace tt::linalg

// Wall-clock timing utilities.
#pragma once

#include <chrono>

namespace tt {

/// Monotonic wall-clock stopwatch (seconds, double precision).
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tt

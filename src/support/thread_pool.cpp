#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "support/error.hpp"

namespace tt::support {

namespace {

thread_local bool tl_in_region = false;
thread_local int tl_slot = 0;

std::atomic<int> g_override{0};
std::atomic<bool> g_omp_suppressed{false};

}  // namespace

bool in_parallel_region() { return tl_in_region; }

bool openmp_allowed() {
  return !tl_in_region && !g_omp_suppressed.load(std::memory_order_relaxed);
}

int execution_slot() { return tl_slot; }

// One parallel_for in flight: per-participant iteration ranges with atomic
// cursors (the steal targets), plus completion and error state.
struct ThreadPool::Loop {
  // Padded so concurrent cursor updates on adjacent slots do not false-share.
  struct alignas(64) Slot {
    std::atomic<index_t> next{0};
    index_t end = 0;
  };

  std::vector<Slot> slots;
  const std::function<void(index_t)>* body = nullptr;
  std::atomic<bool> abort{false};

  std::mutex mutex;              // guards error + active/done signalling
  std::condition_variable done_cv;
  int active = 0;                // participants not yet finished
  std::exception_ptr error;

  void record_error(std::exception_ptr e) {
    abort.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex);
    if (!error) error = std::move(e);
  }

  void finish_participant() {
    std::lock_guard<std::mutex> lock(mutex);
    if (--active == 0) done_cv.notify_all();
  }
};

ThreadPool::ThreadPool(int workers) {
  TT_CHECK(workers >= 0, "thread pool worker count must be non-negative");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t)
    threads_.emplace_back([this] { worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_main() {
  for (;;) {
    std::shared_ptr<Loop> loop;
    int slot = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
      if (stop_) return;
      loop = current_;
      slot = static_cast<int>(loop->slots.size()) - pending_;
      if (--pending_ == 0) current_.reset();  // all slots claimed
    }
    run_participant(*loop, slot);
  }
}

void ThreadPool::run_participant(Loop& loop, int slot) {
  tl_in_region = true;
  tl_slot = slot;
  const int nslots = static_cast<int>(loop.slots.size());
  try {
    int victim = slot;  // start with our own range, then steal
    for (;;) {
      Loop::Slot& s = loop.slots[static_cast<std::size_t>(victim)];
      for (;;) {
        if (loop.abort.load(std::memory_order_relaxed)) break;
        const index_t i = s.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= s.end) break;
        (*loop.body)(i);
      }
      if (loop.abort.load(std::memory_order_relaxed)) break;
      // Steal from the victim with the most remaining iterations.
      victim = -1;
      index_t best = 0;
      for (int v = 0; v < nslots; ++v) {
        const Loop::Slot& c = loop.slots[static_cast<std::size_t>(v)];
        const index_t left = c.end - c.next.load(std::memory_order_relaxed);
        if (left > best) {
          best = left;
          victim = v;
        }
      }
      if (victim < 0) break;  // everything claimed
    }
  } catch (...) {
    loop.record_error(std::current_exception());
  }
  tl_slot = 0;
  tl_in_region = false;
  loop.finish_participant();
}

void ThreadPool::parallel_for(index_t n, int max_threads,
                              const std::function<void(index_t)>& body) {
  if (n <= 0) return;
  const int cap = std::min<index_t>(n, std::min(max_threads, workers() + 1));
  if (cap <= 1 || in_parallel_region()) {
    for (index_t i = 0; i < n; ++i) body(i);
    return;
  }
  // One loop at a time: a second caller blocks here until the pool is idle.
  std::lock_guard<std::mutex> run_lock(run_mutex_);

  auto loop = std::make_shared<Loop>();
  loop->slots = std::vector<Loop::Slot>(static_cast<std::size_t>(cap));
  loop->body = &body;
  loop->active = cap;
  // Contiguous near-equal ranges; stealing rebalances whatever is left over.
  const index_t base = n / cap;
  const index_t extra = n % cap;
  index_t begin = 0;
  for (int p = 0; p < cap; ++p) {
    const index_t len = base + (p < extra ? 1 : 0);
    auto& s = loop->slots[static_cast<std::size_t>(p)];
    s.next.store(begin, std::memory_order_relaxed);
    s.end = begin + len;
    begin += len;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = loop;
    pending_ = cap - 1;
  }
  work_cv_.notify_all();
  run_participant(*loop, 0);  // caller is participant 0

  std::unique_lock<std::mutex> lock(loop->mutex);
  loop->done_cv.wait(lock, [&] { return loop->active == 0; });
  if (loop->error) std::rethrow_exception(loop->error);
}

int num_threads() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o > 0) return o;
  static const int base = [] {
    if (const char* env = std::getenv("TT_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return base;
}

void set_num_threads(int n) { g_override.store(n > 0 ? n : 0); }

namespace {

// The shared pool grows (never shrinks) to honor the largest participant
// count requested; TT_THREADS may legitimately exceed the core count (the
// determinism tests interleave 8 threads on any machine). Outgrown pools are
// retained, not destroyed: another thread may still be running a loop inside
// one, and tearing it down underneath them would drop its unclaimed slots
// (deadlocking that caller) and free memory in use. Growth events are rare
// and bounded, so the retained pools cost a few idle threads at worst.
std::mutex g_pool_mutex;
std::vector<std::unique_ptr<ThreadPool>> g_pools;

ThreadPool& global_pool(int min_workers) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_pools.empty() || g_pools.back()->workers() < min_workers)
    g_pools.push_back(std::make_unique<ThreadPool>(min_workers));
  return *g_pools.back();
}

}  // namespace

void notify_fork_child() {
  // The fork duplicated only the calling thread: pool workers, and any loop
  // they were running, are gone. Leak the pool objects instead of destroying
  // them — ~ThreadPool would join threads that do not exist here. No lock:
  // the child is single-threaded, and the inherited g_pool_mutex may have
  // been captured mid-acquisition by a parent thread that no longer exists.
  for (auto& p : g_pools) (void)p.release();
  g_pools.clear();
  g_omp_suppressed.store(true, std::memory_order_relaxed);
  tl_in_region = false;
  tl_slot = 0;
}

void parallel_for(index_t n, const std::function<void(index_t)>& body,
                  int threads) {
  if (threads <= 0) threads = num_threads();
  if (n <= 0) return;
  if (threads == 1 || n == 1 || in_parallel_region()) {
    for (index_t i = 0; i < n; ++i) body(i);
    return;
  }
  global_pool(threads - 1).parallel_for(n, threads, body);
}

TaskQueue::TaskQueue() : thread_([this] { worker_main(); }) {}

TaskQueue::~TaskQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

std::future<void> TaskQueue::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TT_CHECK(!stop_, "submit on a stopped TaskQueue");
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void TaskQueue::worker_main() {
  // Everything a task runs nests inline on this thread (see class comment).
  tl_in_region = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop requested and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace tt::support

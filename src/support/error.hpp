// Error handling primitives for the tensortools-parallel library.
//
// All precondition violations throw tt::Error (derived from std::runtime_error)
// so that callers — including tests exercising failure injection — can recover.
// TT_ASSERT is for internal invariants and compiles to TT_CHECK in all build
// types: DMRG failures are data dependent and must be catchable in production.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tt {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const char* cond, const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace tt

/// Check a user-facing precondition; throws tt::Error with context on failure.
#define TT_CHECK(cond, ...)                                                     \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::ostringstream tt_os_;                                                \
      tt_os_ << "" __VA_ARGS__;                                                 \
      ::tt::detail::throw_error(#cond, __FILE__, __LINE__, tt_os_.str());       \
    }                                                                           \
  } while (false)

/// Internal invariant check; same behaviour as TT_CHECK (always on).
#define TT_ASSERT(cond, ...) TT_CHECK(cond, __VA_ARGS__)

/// Unconditional failure with message.
#define TT_FAIL(...)                                                            \
  do {                                                                          \
    std::ostringstream tt_os_;                                                  \
    tt_os_ << "" __VA_ARGS__;                                                   \
    ::tt::detail::throw_error("unreachable", __FILE__, __LINE__, tt_os_.str()); \
  } while (false)

// Tiny command-line flag parser for the example and benchmark executables.
//
// Supports "--name value" and "--name=value" forms plus boolean switches.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace tt {

/// Parsed command-line arguments with typed, defaulted accessors.
class Cli {
 public:
  /// Parse argv; throws tt::Error on malformed flags (missing value, etc.).
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names of all flags seen; used to reject typos in strict tools.
  std::vector<std::string> flag_names() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace tt

// Deterministic random number generation.
//
// All stochastic pieces of the library (random MPS initialization, Davidson
// restart vectors, bond-growth noise) draw from an explicitly seeded Rng so
// that runs are reproducible bit-for-bit at fixed thread count.
#pragma once

#include <cstdint>
#include <random>

namespace tt {

/// Seedable PRNG wrapper around std::mt19937_64 with convenience samplers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Standard normal sample.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  // tt-lint: allow(no-wallclock-random) seeded by every constructor (explicit seed or the fixed default); this is the library's one sanctioned RNG entry point
  std::mt19937_64 gen_;
};

/// Process-global RNG used when a caller does not thread its own seed.
inline Rng& global_rng() {
  static Rng rng;
  return rng;
}

}  // namespace tt

// Shared work-stealing thread pool for intra-node parallelism.
//
// The pool executes index-space loops: parallel_for(n, body) splits [0, n)
// into one contiguous range per participating thread; each participant drains
// its own range through an atomic cursor and, when done, steals iterations
// from the most-loaded victim's range. Iterations therefore run exactly once
// with dynamic placement — callers must not depend on which thread runs which
// index, only that disjoint indices may run concurrently.
//
// Thread count resolution (the TT_THREADS knob):
//   1. set_num_threads(n) override, when set (tests/benches),
//   2. the TT_THREADS environment variable (>= 1), read once,
//   3. std::thread::hardware_concurrency().
//
// Kernels that carry their own OpenMP pragmas consult in_parallel_region()
// in their `if` clauses so that pool workers never spawn nested OpenMP teams
// (which would oversubscribe the machine and break wall-time accounting).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/types.hpp"

namespace tt::support {

/// True while the calling thread executes inside a pool parallel region
/// (worker or participating caller). Used to suppress nested parallelism.
bool in_parallel_region();

/// For OpenMP `if` clauses in kernels: true when the kernel may open its own
/// OpenMP team, i.e. the caller is not inside a pool region and the process
/// has not been marked OpenMP-unsafe (forked scheduler workers — see
/// notify_fork_child()). One definition of the suppression policy for all
/// kernel files.
bool openmp_allowed();

/// Must be the first tt call in a freshly fork()ed child process. The child
/// inherits pool objects whose worker threads do not exist on its side of the
/// fork (joining or scheduling onto them would hang), and a libgomp runtime
/// whose team state is not fork-safe. This call abandons every inherited pool
/// (deliberately leaked — their destructors would join ghost threads) and
/// permanently suppresses OpenMP regions in this process; fresh pools are
/// created on demand by the next parallel_for.
void notify_fork_child();

/// Slot index of the calling participant within the innermost active
/// parallel_for, in [0, participants); 0 outside any parallel region. Stable
/// for the duration of one body invocation — the natural shard index for
/// per-thread accumulators (see rt::CostTrackerShards).
int execution_slot();

/// A pool of background worker threads executing stealable index loops.
/// One loop runs at a time per pool; concurrent callers are serialized.
class ThreadPool {
 public:
  /// Spawns `workers` background threads (callers contribute one more).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Run body(i) exactly once for every i in [0, n), on up to `max_threads`
  /// threads including the caller. Blocks until every iteration finished.
  /// The first exception thrown by `body` is rethrown here (remaining
  /// iterations are abandoned). Nested calls from inside a region run inline.
  void parallel_for(index_t n, int max_threads,
                    const std::function<void(index_t)>& body);

 private:
  struct Loop;

  void worker_main();
  static void run_participant(Loop& loop, int slot);

  std::vector<std::thread> threads_;
  std::mutex run_mutex_;               // serializes whole loops
  std::mutex mutex_;                   // guards current_/pending_/stop_
  std::condition_variable work_cv_;    // wakes workers
  std::shared_ptr<Loop> current_;      // loop being joined by workers
  int pending_ = 0;                    // worker slots still unclaimed
  bool stop_ = false;
};

/// Executor thread count from the override / TT_THREADS / hardware (>= 1).
int num_threads();

/// Override the thread count for this process (n >= 1); n <= 0 restores the
/// TT_THREADS / hardware default. Takes effect on the next parallel_for.
void set_num_threads(int n);

/// Run body(i) for i in [0, n) on the shared global pool. `threads` caps the
/// participant count; 0 means the num_threads() setting. Serial (inline) when
/// the resolved count is 1, n <= 1, or the caller is already inside a region.
void parallel_for(index_t n, const std::function<void(index_t)>& body,
                  int threads = 0);

/// Single background worker draining submitted tasks in FIFO order — the
/// async executor behind environment prefetch (dmrg::EnvGraph): the pool's
/// parallel_for is a synchronous fork-join primitive and cannot overlap work
/// with its caller, so tasks that must run *beside* the main thread live here.
///
/// Tasks execute with in_parallel_region() set on the worker, so any
/// parallel_for or OpenMP kernel a task reaches runs inline on the worker
/// thread: the submitting thread keeps the pool, the task costs one core, and
/// neither side oversubscribes the machine.
///
/// Not fork-safe: like ThreadPool, the worker does not survive fork() —
/// construct after any rt::Scheduler process spawning, or not at all in
/// forked children.
class TaskQueue {
 public:
  TaskQueue();
  ~TaskQueue();  // drains the queue, then joins the worker

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueue `fn`; the future becomes ready when it finished (exceptions are
  /// captured and rethrown from future::get()).
  std::future<void> submit(std::function<void()> fn);

 private:
  void worker_main();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> tasks_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace tt::support

#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "support/error.hpp"

namespace tt {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  TT_CHECK(header_.empty() || cells.size() == header_.size(),
           "row width " << cells.size() << " != header width " << header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    if (width.size() < cells.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << "|";
    for (std::size_t i = 0; i < width.size(); ++i) {
      std::string c = i < cells.size() ? cells[i] : "";
      os << " " << c << std::string(width[i] - c.size(), ' ') << " |";
    }
    os << "\n";
    return os.str();
  };

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    os << render_row(header_);
    os << "|";
    for (std::size_t w : width) os << std::string(w + 2, '-') << "|";
    os << "\n";
  }
  for (const auto& r : rows_) os << render_row(r);
  return os.str();
}

void Table::print() const { std::cout << str() << std::flush; }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace tt

#include "support/logging.hpp"

#include <atomic>

namespace tt::log {

namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void emit(Level lvl, const std::string& body) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(lvl) << "] " << body << "\n";
}

}  // namespace tt::log

// Minimal leveled logger. Global level, thread-safe line-buffered output.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace tt::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set/get the global log level. Messages below the level are dropped.
void set_level(Level level);
Level level();

/// Emit a single log line (already formatted body). Thread safe.
void emit(Level level, const std::string& body);

namespace detail {

class LineStream {
 public:
  explicit LineStream(Level lvl) : lvl_(lvl) {}
  ~LineStream() { emit(lvl_, os_.str()); }
  template <class T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level lvl_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LineStream debug() { return detail::LineStream(Level::kDebug); }
inline detail::LineStream info() { return detail::LineStream(Level::kInfo); }
inline detail::LineStream warn() { return detail::LineStream(Level::kWarn); }
inline detail::LineStream error() { return detail::LineStream(Level::kError); }

}  // namespace tt::log

#include "support/cli.hpp"

#include <cstdlib>

#include "support/error.hpp"

namespace tt {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    TT_CHECK(!body.empty(), "bare '--' is not a valid flag");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";  // boolean switch
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  TT_CHECK(end && *end == '\0', "flag --" << name << " is not an integer: " << it->second);
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  TT_CHECK(end && *end == '\0', "flag --" << name << " is not a number: " << it->second);
  return v;
}

bool Cli::get_bool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  TT_FAIL("flag --" << name << " is not a boolean: " << v);
}

std::vector<std::string> Cli::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [k, _] : flags_) names.push_back(k);
  return names;
}

}  // namespace tt

// Common scalar/index typedefs shared across the library.
#pragma once

#include <cstdint>

namespace tt {

/// Signed index type for all tensor/matrix dimensions and offsets.
using index_t = std::int64_t;

/// Scalar type. The paper's two benchmark Hamiltonians are real symmetric, so
/// the whole library runs in real double precision (see docs/ARCHITECTURE.md).
using real_t = double;

}  // namespace tt

// Plain-text table formatting used by the benchmark harness to print the
// rows/series corresponding to each table and figure of the paper.
#pragma once

#include <string>
#include <vector>

namespace tt {

/// Column-aligned ASCII table with a title, header row, and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row (defines the column count).
  Table& header(std::vector<std::string> cols);

  /// Append a data row; must match the header width.
  Table& row(std::vector<std::string> cells);

  /// Render the table to a string (markdown-ish pipe layout).
  std::string str() const;

  /// Render and print to stdout.
  void print() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for Table cells).
std::string fmt(double v, int precision = 3);

/// Format a double in scientific notation.
std::string fmt_sci(double v, int precision = 2);

/// Format an integer with thousands separators ("32,768").
std::string fmt_int(long long v);

}  // namespace tt

// Paper Fig 2: (a) number of blocks and largest-block size of a
// representative MPS tensor vs bond dimension; (b) sparsity (fill fraction)
// of the fused single tensor vs bond dimension — for both benchmark systems.
//
// The paper reports largest-block scaling ~ m^0.94 (spins) and m^0.97
// (electrons), many more blocks for electrons (two conserved charges), and
// fused fill fractions below ~0.3. States are grown with real DMRG sweeps.
#include <cmath>
#include <iostream>

#include "common.hpp"

namespace {

struct Point {
  tt::index_t m;
  int blocks;
  tt::index_t largest;
  double fill;
};

// Grow by DMRG and measure the middle MPS tensor at each bond-dimension stage.
std::vector<Point> profile(const tt::bench::Workload& w,
                           const std::vector<tt::index_t>& ms,
                           const std::vector<int>& start) {
  using namespace tt;
  dmrg::Dmrg solver(mps::Mps::product_state(w.sites, start), w.h,
                    dmrg::make_engine(dmrg::EngineKind::kReference,
                                      {rt::localhost(), 1, 1}));
  std::vector<Point> out;
  for (index_t m : ms) {
    dmrg::SweepParams p;
    p.max_m = m;
    p.davidson_iter = 2;
    solver.sweep(p);
    solver.sweep(p);
    const int mid = solver.psi().size() / 2;
    const symm::BlockTensor& t = solver.psi().site(mid);
    Point pt;
    pt.m = t.index(2).dim();
    pt.blocks = t.num_blocks();
    pt.largest = 0;
    const symm::Index& bond = t.index(2);
    for (int s = 0; s < bond.num_sectors(); ++s)
      pt.largest = std::max(pt.largest, bond.sector(s).dim);
    pt.fill = t.fill_fraction();
    out.push_back(pt);
  }
  return out;
}

// Least-squares slope of log(largest) vs log(m).
double fit_exponent(const std::vector<Point>& pts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (const auto& p : pts) {
    if (p.m < 2 || p.largest < 1) continue;
    const double x = std::log(static_cast<double>(p.m));
    const double y = std::log(static_cast<double>(p.largest));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace

int main() {
  tt::bench::print_driver_header("bench_fig2_block_structure");
  using namespace tt;
  auto spins = bench::Workload::spins();
  auto electrons = bench::Workload::electrons();

  std::vector<int> neel;
  for (int x = 0; x < spins.lat.length; ++x)
    for (int y = 0; y < spins.lat.circumference; ++y) neel.push_back((x + y) % 2);
  std::vector<int> filling;
  for (int i = 0; i < electrons.lat.num_sites; ++i)
    filling.push_back(i % 2 == 0 ? 1 : 2);

  auto sp = profile(spins, bench::spin_ms(), neel);
  auto el = profile(electrons, bench::electron_ms(), filling);

  Table t("Fig 2a/2b — MPS block structure vs bond dimension (DMRG-grown)");
  t.header({"system", "m (actual)", "# blocks", "largest block", "fill fraction"});
  for (const auto& p : sp)
    t.row({"spins", fmt_int(p.m), std::to_string(p.blocks), fmt_int(p.largest),
           fmt(p.fill, 3)});
  for (const auto& p : el)
    t.row({"electrons", fmt_int(p.m), std::to_string(p.blocks), fmt_int(p.largest),
           fmt(p.fill, 3)});
  t.print();

  Table f("Fig 2a — largest-block scaling exponent (paper: 0.94 / 0.97)");
  f.header({"system", "fit largest ~ m^alpha"});
  f.row({"spins", fmt(fit_exponent(sp), 2)});
  f.row({"electrons", fmt(fit_exponent(el), 2)});
  f.print();

  // Shape checks mirrored in docs/BENCHMARKS.md: electrons have more blocks and
  // lower fill than spins at comparable m.
  if (!sp.empty() && !el.empty()) {
    std::cout << "\nShape check: electrons blocks (" << el.back().blocks
              << ") > spins blocks (" << sp.back().blocks << "): "
              << (el.back().blocks > sp.back().blocks ? "yes" : "NO") << "\n";
    std::cout << "Shape check: electrons fill (" << fmt(el.back().fill, 3)
              << ") < spins fill (" << fmt(sp.back().fill, 3)
              << "): " << (el.back().fill < sp.back().fill ? "yes" : "NO") << "\n";
  }
  return 0;
}

// Sweep-mode ablation: energy-vs-sweep and wall time for the serial sweep,
// the prefetch-overlapped serial sweep, and real-space parallel sweeps at
// R ∈ {2, 4} regions — all on the same Heisenberg chain from the same
// product state. The serial configurations are bitwise identical (the
// prefetch column only moves where the environment refresh is charged); the
// real-space rows show the convergence cost of boundary reconciliation that
// buys intra-sweep parallelism.
//
// Shape to reproduce: all configurations converge to the same ground-state
// energy; regions>1 trails the serial energy by a reconciliation-limited gap
// in early sweeps and closes it as the state converges.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "support/timer.hpp"

using namespace tt;

namespace {

struct Config {
  const char* label;
  dmrg::SweepMode mode;
  int regions;
  bool prefetch;
};

struct SweepRow {
  dmrg::SweepRecord rec;
  double wall_s;
};

dmrg::Dmrg make_solver(int n) {
  auto lat = models::chain(n);
  auto sites = models::spin_half_sites(n);
  auto h = models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  return dmrg::Dmrg(mps::Mps::product_state(sites, neel), h,
                    dmrg::make_engine(dmrg::EngineKind::kReference,
                                      {rt::localhost(), 1, 1}));
}

}  // namespace

int main(int argc, char** argv) {
  const int n = bench::full_mode() ? 32 : 16;
  const index_t m = bench::full_mode() ? 48 : 24;
  const int sweeps = bench::full_mode() ? 8 : 6;

  const std::vector<Config> configs = {
      {"serial", dmrg::SweepMode::kSerial, 1, false},
      {"serial+prefetch", dmrg::SweepMode::kSerial, 1, true},
      {"real-space R=2", dmrg::SweepMode::kRealSpace, 2, false},
      {"real-space R=4", dmrg::SweepMode::kRealSpace, 4, false},
  };

  bench::Csv csv(bench::csv_path(argc, argv),
                 "driver,workload,mode,regions,prefetch,sweep,energy,max_bond,"
                 "trunc_err,wall_s,gemm_s,prefetch_s,prefetch_launched,"
                 "prefetch_wait_s,total_flops");

  const std::string workload = "heisenberg-chain-" + std::to_string(n);
  auto mr = bench::make_metrics("bench_realspace_sweep");
  mr.add_context("workload", workload);
  mr.add_context("sweeps", static_cast<double>(sweeps));
  std::vector<double> totals;
  std::vector<double> finals;
  for (const Config& c : configs) {
    bench::print_driver_header("bench_realspace_sweep", c.mode, c.regions);

    dmrg::Dmrg solver = make_solver(n);
    dmrg::SweepParams p;
    p.max_m = m;
    p.davidson_iter = 3;
    p.mode = c.mode;
    p.regions = c.regions;
    p.prefetch = c.prefetch;

    std::vector<SweepRow> rows;
    double total = 0.0;
    for (int s = 0; s < sweeps; ++s) {
      Timer timer;
      dmrg::SweepRecord rec = solver.sweep(p);
      const double wall = timer.seconds();
      total += wall;
      rows.push_back({rec, wall});
    }
    totals.push_back(total);
    finals.push_back(rows.back().rec.energy);

    Table t(std::string("energy vs sweep — ") + c.label + " (N=" +
            std::to_string(n) + ", m=" + std::to_string(m) + ")");
    t.header({"sweep", "energy", "max m", "trunc err", "wall s", "gemm s",
              "prefetch s", "pf launched", "pf wait s"});
    for (const SweepRow& r : rows) {
      t.row({std::to_string(r.rec.sweep), fmt(r.rec.energy, 10),
             fmt_int(r.rec.max_bond_dim), fmt_sci(r.rec.truncation_error, 2),
             fmt_sci(r.wall_s, 2),
             fmt_sci(r.rec.costs.time(rt::Category::kGemm), 2),
             fmt_sci(r.rec.costs.time(rt::Category::kPrefetch), 2),
             std::to_string(r.rec.prefetch_launched),
             fmt_sci(r.rec.prefetch_wait_seconds, 2)});
      csv.row({"bench_realspace_sweep", workload,
               dmrg::sweep_mode_name(r.rec.mode), std::to_string(r.rec.regions),
               c.prefetch ? "1" : "0", std::to_string(r.rec.sweep),
               fmt(r.rec.energy, 12), std::to_string(r.rec.max_bond_dim),
               fmt_sci(r.rec.truncation_error, 6), fmt_sci(r.wall_s, 6),
               fmt_sci(r.rec.costs.time(rt::Category::kGemm), 6),
               fmt_sci(r.rec.costs.time(rt::Category::kPrefetch), 6),
               std::to_string(r.rec.prefetch_launched),
               fmt_sci(r.rec.prefetch_wait_seconds, 6),
               fmt_sci(r.rec.costs.flops(), 6)});
    }
    t.print();
    bench::print_metrics_summary(std::string("breakdown — ") + c.label +
                                     ", final sweep",
                                 rows.back().rec.costs);
    // Section per config keyed on the final sweep; total wall time covers all.
    const std::string sec = c.label;
    bench::add_sweep_metrics(mr, sec, rows.back().rec);
    mr.add(sec, "total_wall_s", total);
    std::cout << "\n";
  }

  Table s("ablation summary — total wall time and final energy");
  s.header({"config", "regions", "prefetch", "final energy", "total wall s",
            "vs serial"});
  for (std::size_t i = 0; i < configs.size(); ++i)
    s.row({configs[i].label, std::to_string(configs[i].regions),
           configs[i].prefetch ? "on" : "off", fmt(finals[i], 10),
           fmt_sci(totals[i], 2), fmt(totals[i] / totals[0], 2)});
  s.print();
  std::cout << "\nShape to reproduce: identical final energies across\n"
               "configurations (serial rows bitwise equal); real-space rows\n"
               "trade a small early-sweep energy lag for intra-sweep\n"
               "parallelism across regions.\n";
  mr.write(bench::metrics_path(argc, argv));
  return 0;
}

// Paper Table II: complexity of the three block-sparsity algorithms — flops,
// Davidson memory, environment memory, BSP supersteps, and communication.
//
// Empirical validation: for each engine the measured quantities of one
// Davidson step are printed alongside the model's expectations, and the
// communication scaling exponents are verified by replaying the same op log
// at two processor counts (list: words ~ p^(-2/3); fused: ~ p^(-1/2)).
#include <cmath>
#include <iostream>

#include "common.hpp"

int main() {
  tt::bench::print_driver_header("bench_table2_complexity");
  using namespace tt;
  auto spins = bench::Workload::spins();
  auto electrons = bench::Workload::electrons();

  for (const auto* w : {&spins, &electrons}) {
    const index_t m =
        (w == &spins) ? bench::spin_ms().back() : bench::electron_ms().back();
    Table t("Table II (measured) — " + w->name + " at m=" + fmt_int(m));
    t.header({"algorithm", "flops", "supersteps", "comm words @16p",
              "comm words @64p", "measured comm exponent", "model"});
    for (auto kind : {dmrg::EngineKind::kList, dmrg::EngineKind::kSparseSparse,
                      dmrg::EngineKind::kSparseDense}) {
      auto k = bench::measure_step(*w, kind, m);
      auto t16 = bench::replayed(k, bench::cluster(rt::blue_waters(), 1, 16));
      auto t64 = bench::replayed(k, bench::cluster(rt::blue_waters(), 4, 16));
      // words ~ p^(-x): x = log(w16/w64) / log(4).
      const double x = std::log(t16.words() / t64.words()) / std::log(4.0);
      const char* model = (kind == dmrg::EngineKind::kList) ? "2/3 (3D)" : "1/2 (2D)";
      t.row({dmrg::engine_name(kind), fmt_sci(k.flops, 2),
             fmt(t16.supersteps(), 0), fmt_sci(t16.words(), 2),
             fmt_sci(t64.words(), 2), fmt(x, 2), model});
    }
    t.print();
    std::cout << "\n";
  }

  // Memory columns of Table II: Davidson working set vs environment storage.
  {
    Table t("Table II (memory) — stored words of the two-site problem");
    t.header({"system", "m", "theta stored", "theta dense (sparse-dense)",
              "mid env stored", "mid env dense"});
    for (const auto* w : {&spins, &electrons}) {
      const auto ms = (w == &spins) ? bench::spin_ms() : bench::electron_ms();
      for (index_t m : ms) {
        Rng rng(1);
        auto psi = mps::Mps::random(w->sites, w->sector, m, rng);
        const int j = psi.size() / 2;
        auto theta = symm::contract(psi.site(j), psi.site(j + 1), {{2, 0}});
        // Environment structure: build cheaply via the reference engine.
        auto eng = dmrg::make_engine(dmrg::EngineKind::kReference,
                                     {rt::localhost(), 1, 1});
        dmrg::EnvGraph envs(*eng, psi, w->h);
        const auto& env = envs.left(j);
        t.row({w->name, fmt_int(psi.bond_dim(j)), fmt_int(theta.num_elements()),
               fmt_int(theta.dense_size()), fmt_int(env.num_elements()),
               fmt_int(env.dense_size())});
      }
    }
    t.print();
  }

  std::cout << "\nTable II claims validated: the list algorithm executes one\n"
               "superstep per block pair (O(Nb)); the fused algorithms execute\n"
               "O(1); communication volume falls as p^(-2/3) for block-wise 3D\n"
               "contractions and p^(-1/2) for fused 2D contractions; the\n"
               "sparse-dense format stores the full dense Davidson working set.\n";
  return 0;
}

// Paper Fig 6: time spent per column of the cylinder during a full sweep at
// fixed m (list, spins).
//
// Shape to reproduce: per-column time is flat across the bulk and dips at the
// open edges (the paper uses this to justify timing only the middle columns).
#include <iostream>

#include "common.hpp"
#include "support/timer.hpp"

int main() {
  tt::bench::print_driver_header("bench_fig6_column_time");
  using namespace tt;
  const int lx = 8, ly = bench::full_mode() ? 4 : 3;
  auto w = bench::Workload::spins(lx, ly);
  const index_t m = bench::spin_ms()[bench::spin_ms().size() / 2];

  // Grow to m with two untimed sweeps from a random state.
  Rng rng(2);
  auto psi = mps::Mps::random(w.sites, w.sector, m, rng);
  dmrg::Dmrg solver(std::move(psi), w.h,
                    dmrg::make_engine(dmrg::EngineKind::kList,
                                      bench::cluster(rt::blue_waters(), 4, 16)));

  dmrg::SweepParams params;
  params.max_m = m;
  params.davidson_iter = 2;

  // One measured left-to-right half sweep, attributing each bond to the
  // column of its left site (columns hold `ly` sites).
  std::vector<double> col_sim(static_cast<std::size_t>(lx), 0.0);
  std::vector<double> col_wall(static_cast<std::size_t>(lx), 0.0);
  for (int j = 0; j + 1 < solver.psi().size(); ++j) {
    const rt::CostTracker before = solver.engine().tracker();
    Timer timer;
    solver.optimize_bond(j, params, true);
    const int col = j / ly;
    col_wall[static_cast<std::size_t>(col)] += timer.seconds();
    col_sim[static_cast<std::size_t>(col)] +=
        solver.engine().tracker().diff(before).total_time();
  }

  Table t("Fig 6 — time per column, half sweep at m=" + fmt_int(m) + " (list, " +
          w.name + ")");
  t.header({"column", "sim s", "wall s"});
  for (int c = 0; c < lx; ++c)
    t.row({std::to_string(c + 1), fmt_sci(col_sim[static_cast<std::size_t>(c)], 2),
           fmt(col_wall[static_cast<std::size_t>(c)], 3)});
  t.print();

  // The paper's point: middle columns are representative.
  double middle = 0.0, edge = 0.0;
  for (int c = 1; c + 1 < lx; ++c) middle += col_sim[static_cast<std::size_t>(c)];
  middle /= (lx - 2);
  edge = 0.5 * (col_sim.front() + col_sim.back());
  std::cout << "\nbulk column mean / edge column mean = " << fmt(middle / edge, 2)
            << " (edges are cheaper; bulk columns are uniform)\n";
  return 0;
}

// Paper Fig 11: electrons weak scaling — relative efficiency at fixed m/node
// and peak relative efficiency, for list and sparse-sparse on both machine
// presets.
//
// Shapes to reproduce: efficiency gained only at the largest problem sizes;
// sparse-sparse does not scale on Blue Waters but is marginally better on
// Stampede2; the list algorithm suffers from communication (BW) and
// transposition (S2) overheads on the many-small-blocks workload.
#include <iostream>

#include "common.hpp"

namespace {

void panel(const char* title, const tt::rt::MachineModel& machine, int ppn,
           const char* tag, tt::bench::Csv& csv) {
  using namespace tt;
  auto electrons = bench::Workload::electrons();
  const auto ms = bench::electron_ms();
  const auto base = bench::baseline(electrons, machine, ms.front());

  Table t(title);
  t.header({"engine", "m", "nodes", "GF/s/node", "rel efficiency"});
  for (auto kind : {dmrg::EngineKind::kList, dmrg::EngineKind::kSparseSparse}) {
    int nodes = 1;
    for (index_t m : ms) {
      auto k = bench::measure_step(electrons, kind, m);
      const double secs = bench::sim_seconds(k, bench::cluster(machine, nodes, ppn));
      const double per_node = bench::gflops_equiv(k.flops, secs) / nodes;
      const double rel = per_node / bench::gflops_equiv(base.flops, base.sim_seconds);
      t.row({dmrg::engine_name(kind), fmt_int(bench::m_equiv(k.m_actual)), std::to_string(nodes),
             fmt(per_node, 1), fmt(rel, 2)});
      csv.row({"bench_fig11_weak_scaling_electrons", electrons.name, tag, "weak",
               dmrg::engine_name(kind), std::to_string(bench::m_equiv(k.m_actual)),
               std::to_string(nodes), std::to_string(ppn), fmt_sci(per_node, 6),
               fmt_sci(rel, 6)});
      nodes *= 2;
    }
  }
  t.print();

  Table pk("  peak relative efficiency vs node count");
  pk.header({"engine", "nodes", "peak rel eff", "@m"});
  for (auto kind : {dmrg::EngineKind::kList, dmrg::EngineKind::kSparseSparse}) {
    for (int nodes : bench::node_counts(bench::full_mode() ? 32 : 8)) {
      double best = 0.0;
      index_t best_m = 0;
      for (index_t m : ms) {
        auto k = bench::measure_step(electrons, kind, m);
        const double secs = bench::sim_seconds(k, bench::cluster(machine, nodes, ppn));
        const double rel = bench::gflops_equiv(k.flops, secs) / nodes /
                             bench::gflops_equiv(base.flops, base.sim_seconds);
        if (rel > best) {
          best = rel;
          best_m = bench::m_equiv(k.m_actual);
        }
      }
      pk.row({dmrg::engine_name(kind), std::to_string(nodes), fmt(best, 2),
              fmt_int(best_m)});
      csv.row({"bench_fig11_weak_scaling_electrons", electrons.name, tag, "peak",
               dmrg::engine_name(kind), std::to_string(best_m),
               std::to_string(nodes), std::to_string(ppn), "",
               fmt_sci(best, 6)});
    }
  }
  pk.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  tt::bench::print_driver_header("bench_fig11_weak_scaling_electrons");
  if (tt::bench::distributed_mode(argc, argv, "bench_fig11_weak_scaling_electrons",
                                  tt::bench::Workload::electrons(),
                                  tt::bench::electron_ms()))
    return 0;
  tt::bench::Csv csv(tt::bench::csv_path(argc, argv),
                     "driver,workload,machine,series,engine,m_equiv,nodes,ppn,"
                     "gfs_per_node,rel_efficiency");
  panel("Fig 11 (left) — electrons weak scaling, Blue Waters (16/node)",
        tt::rt::blue_waters(), 16, "blue_waters", csv);
  panel("Fig 11 (right) — electrons weak scaling, Stampede2 (64/node)",
        tt::rt::stampede2(), 64, "stampede2", csv);
  return 0;
}

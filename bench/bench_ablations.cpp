// Ablations for the design choices the paper calls out in the text:
//   (a) Davidson subspace size (§II.C: size 2 suffices mid-sweep because each
//       local problem starts from an excellent guess; preconditioning is
//       skipped for the same reason),
//   (b) MPO compression (§VI.B: SVD compression reduces the Hubbard MPO to
//       k = 26; flops scale with k),
//   (c) SVD truncation cutoff (§VI: 1e-9 for smaller m, 1e-12 / 0 for the
//       largest),
//   (d) the list engine's sensitivity to per-block overhead (cost-model knob
//       behind the list-vs-sparse crossover on the two machines).
#include <cmath>
#include <iostream>

#include "common.hpp"

int main() {
  tt::bench::print_driver_header("bench_ablations");
  using namespace tt;

  // (a) Davidson subspace ----------------------------------------------------
  {
    auto lat = models::chain(12);
    auto sites = models::spin_half_sites(12);
    auto h = models::heisenberg_mpo(sites, lat, 1.0);
    std::vector<int> neel;
    for (int i = 0; i < 12; ++i) neel.push_back(i % 2);

    Table t("Ablation (a) — Davidson subspace size, Heisenberg chain N=12, m=32");
    t.header({"subspace", "matvecs/opt", "E after 1 sweep", "E after 3 sweeps"});
    for (int sub : {2, 4, 8}) {
      dmrg::Dmrg solver(mps::Mps::product_state(sites, neel), h,
                        dmrg::make_engine(dmrg::EngineKind::kReference,
                                          {rt::localhost(), 1, 1}));
      dmrg::SweepParams p;
      p.max_m = 32;
      p.davidson_subspace = sub;
      p.davidson_iter = sub;
      const double e1 = solver.sweep(p).energy;
      solver.sweep(p);
      const double e3 = solver.sweep(p).energy;
      t.row({std::to_string(sub), std::to_string(sub), fmt(e1, 9), fmt(e3, 9)});
    }
    t.print();
    std::cout << "Claim: bigger subspaces barely improve converged energy but\n"
                 "cost proportionally more matvecs per optimization.\n\n";
  }

  // (b) MPO compression -------------------------------------------------------
  {
    Table t("Ablation (b) — MPO compression (rel. SVD cutoff 1e-13)");
    t.header({"system", "k exact FSM", "k compressed", "matvec flops ratio"});
    auto spins = bench::Workload::spins(4, 3);
    auto electrons = bench::Workload::electrons(3, 2);
    struct Case {
      const char* name;
      mps::Mpo exact, comp;
      mps::SiteSetPtr sites;
      symm::QN sector;
    };
    Case cases[2] = {
        {"spins", models::heisenberg_mpo(spins.sites, spins.lat, 1.0, 0.5, 0.0),
         spins.h, spins.sites, spins.sector},
        {"electrons", models::hubbard_mpo(electrons.sites, electrons.lat, 1.0, 8.5, 0.0),
         electrons.h, electrons.sites, electrons.sector}};
    for (auto& c : cases) {
      // Matvec flops at fixed m scale with the MPO bond dimension.
      Rng rng(5);
      auto psi = mps::Mps::random(c.sites, c.sector, 24, rng);
      auto flops_with = [&](const mps::Mpo& mpo) {
        auto eng = dmrg::make_engine(dmrg::EngineKind::kReference,
                                     {rt::localhost(), 1, 1});
        dmrg::EnvGraph envs(*eng, psi, mpo);
        const int j = psi.size() / 2;
        auto theta = symm::contract(psi.site(j), psi.site(j + 1), {{2, 0}});
        const rt::CostTracker before = eng->tracker();
        dmrg::apply_two_site(*eng, envs.left(j), mpo.site(j), mpo.site(j + 1),
                             envs.right(j + 2), theta);
        return eng->tracker().diff(before).flops();
      };
      const double ratio = flops_with(c.exact) / flops_with(c.comp);
      t.row({c.name, fmt_int(c.exact.max_bond_dim()), fmt_int(c.comp.max_bond_dim()),
             fmt(ratio, 2)});
    }
    t.print();
    std::cout << "Claim: compression shrinks k substantially (paper: k = 26 for\n"
                 "the XC6 Hubbard MPO) and the matvec cost follows.\n\n";
  }

  // (c) SVD truncation cutoff --------------------------------------------------
  {
    auto lat = models::chain(10);
    auto sites = models::spin_half_sites(10);
    auto h = models::heisenberg_mpo(sites, lat, 1.0);
    std::vector<int> neel;
    for (int i = 0; i < 10; ++i) neel.push_back(i % 2);

    Table t("Ablation (c) — SVD cutoff, Heisenberg chain N=10, m cap 64");
    t.header({"cutoff", "final E", "max m used", "max trunc err"});
    for (double cutoff : {1e-6, 1e-9, 1e-12, 0.0}) {
      dmrg::Dmrg solver(mps::Mps::product_state(sites, neel), h,
                        dmrg::make_engine(dmrg::EngineKind::kReference,
                                          {rt::localhost(), 1, 1}));
      dmrg::SweepParams p;
      p.max_m = 64;
      p.cutoff = cutoff;
      p.davidson_iter = 3;
      double max_err = 0.0;
      for (int s = 0; s < 4; ++s)
        max_err = std::max(max_err, solver.sweep(p).truncation_error);
      t.row({fmt_sci(cutoff, 0), fmt(solver.last_energy(), 10),
             fmt_int(solver.psi().max_bond_dim()), fmt_sci(max_err, 1)});
    }
    t.print();
    std::cout << "Claim: looser cutoffs keep smaller bonds at an energy penalty;\n"
                 "1e-12 (the paper's production cutoff) is effectively exact.\n\n";
  }

  // (d) list-engine block overhead sensitivity ---------------------------------
  {
    auto electrons = bench::Workload::electrons();
    const index_t m = bench::electron_ms().back();
    auto klist = bench::measure_step(electrons, dmrg::EngineKind::kList, m);
    auto kss = bench::measure_step(electrons, dmrg::EngineKind::kSparseSparse, m);

    Table t("Ablation (d) — per-block overhead vs list/sparse-sparse crossover "
            "(electrons, m=" + fmt_int(m) + ", 4 BW nodes)");
    t.header({"block overhead (us)", "list sim s", "sparse-sparse sim s", "winner"});
    for (double ovh : {0.0, 50.0, 120.0, 400.0, 1000.0}) {
      rt::Cluster cl = bench::cluster(rt::blue_waters(), 4, 16);
      cl.machine.block_overhead_us = ovh;
      const double tl = bench::sim_seconds(klist, cl);
      const double ts = bench::sim_seconds(kss, cl);
      t.row({fmt(ovh, 0), fmt_sci(tl, 2), fmt_sci(ts, 2),
             tl < ts ? "list" : "sparse-sparse"});
    }
    t.print();
    std::cout << "Claim: the per-block mapping overhead (the \"CTF mapping\"\n"
                 "serial cost) controls where the list algorithm loses to the\n"
                 "fused sparse format on many-small-block workloads.\n";
  }
  return 0;
}

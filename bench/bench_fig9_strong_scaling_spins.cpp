// Paper Fig 9: strong scaling of the list algorithm for spins at fixed m on
// Blue Waters — speedup (left) and efficiency (right), 16 vs 32 procs/node.
//
// Shape to reproduce: near-ideal speedup only for a modest node-count
// increase; efficiency decays to ~60% after a further doubling (limited
// concurrency at fixed problem size).
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  tt::bench::print_driver_header("bench_fig9_strong_scaling_spins");
  using namespace tt;
  auto spins = bench::Workload::spins();
  if (bench::distributed_mode(argc, argv, "bench_fig9_strong_scaling_spins",
                              spins, bench::spin_ms()))
    return 0;
  const index_t m = bench::spin_ms().back();  // paper: m = 8192 fixed
  auto k = bench::measure_step(spins, dmrg::EngineKind::kList, m);
  auto mr = bench::make_metrics("bench_fig9_strong_scaling_spins");
  mr.add_context("workload", spins.name);
  mr.add_context("m_equiv", static_cast<double>(bench::m_equiv(k.m_actual)));

  bench::Csv csv(bench::csv_path(argc, argv),
                 "driver,workload,source,m_equiv,ppn,nodes,sim_s,speedup,efficiency");
  Table t("Fig 9 — strong scaling, spins list at m(eq)=" + fmt_int(bench::m_equiv(k.m_actual)) +
          " (Blue Waters)");
  t.header({"ppn", "nodes", "sim s", "speedup", "efficiency"});
  for (int ppn : {16, 32}) {
    const double t1 = bench::sim_seconds(k, bench::cluster(rt::blue_waters(), 1, ppn));
    for (int nodes : bench::node_counts(64)) {
      const auto tr = bench::replayed(k, bench::cluster(rt::blue_waters(), nodes, ppn));
      const double tn = tr.total_time();
      const double speedup = t1 / tn;
      t.row({std::to_string(ppn), std::to_string(nodes), fmt_sci(tn, 2),
             fmt(speedup, 2), fmt(speedup / nodes, 2)});
      csv.row({"bench_fig9_strong_scaling_spins", spins.name, "replayed",
               std::to_string(bench::m_equiv(k.m_actual)), std::to_string(ppn),
               std::to_string(nodes), fmt_sci(tn, 6), fmt(speedup, 4),
               fmt(speedup / nodes, 4)});
      const std::string sec =
          "fig9.ppn" + std::to_string(ppn) + ".nodes" + std::to_string(nodes);
      mr.add(sec, "speedup", speedup);
      mr.add(sec, "efficiency", speedup / nodes);
      mr.add_tracker(sec, tr);
    }
  }
  t.print();
  mr.write(bench::metrics_path(argc, argv));

  std::cout << "\nShape to reproduce (paper Fig 9): speedup saturates after a\n"
               "few doublings; efficiency drops to roughly 60% and below as the\n"
               "fixed-size blocks can no longer fill the machine.\n";
  return 0;
}

// Paper Fig 10: spin-system execution time and node-hour cost relative to the
// single-node baseline's maximum performance rate, sweeping hyperparameters
// (engine ∈ {list, sparse-dense}, node count, procs/node, m) on the Blue
// Waters and Stampede2 presets.
//
// Shapes to reproduce: speedups grow from ~6x toward ~100x in performance
// rate as m grows, at a relative cost near ~1.5x; on Blue Waters the Pareto
// frontier consists entirely of list-algorithm points.
#include <algorithm>
#include <iostream>

#include "common.hpp"

namespace {

struct Point {
  std::string engine;
  tt::index_t m;
  int nodes, ppn;
  double rel_time, rel_cost, rate_speedup;
  bool pareto = false;
};

void mark_pareto(std::vector<Point>& pts) {
  for (auto& p : pts) {
    p.pareto = true;
    for (const auto& q : pts)
      if (q.rel_cost <= p.rel_cost && q.rel_time < p.rel_time && q.m >= p.m)
        p.pareto = false;
  }
}

void panel(const char* title, const tt::rt::MachineModel& machine,
           const char* tag, tt::bench::Csv& csv) {
  using namespace tt;
  auto spins = bench::Workload::spins();
  const auto ms = bench::spin_ms();
  const auto base = bench::baseline(spins, machine, ms.front());

  std::vector<Point> pts;
  for (auto kind : {dmrg::EngineKind::kList, dmrg::EngineKind::kSparseDense}) {
    for (index_t m : ms) {
      auto k = bench::measure_step(spins, kind, m);
      // Extrapolated single-node baseline time at this m (paper method: the
      // baseline's max rate applied to this problem's flops).
      auto kr = bench::measure_step(spins, dmrg::EngineKind::kReference, m);
      const double base_time = kr.flops / (base.gflops_rate * 1e9);
      for (int nodes : bench::node_counts(bench::full_mode() ? 64 : 16)) {
        for (int ppn : {16, 32}) {
          const double secs = bench::sim_seconds(k, bench::cluster(machine, nodes, ppn));
          Point p;
          p.engine = dmrg::engine_name(kind);
          p.m = bench::m_equiv(k.m_actual);
          p.nodes = nodes;
          p.ppn = ppn;
          p.rel_time = secs / base_time;
          p.rel_cost = secs * nodes / base_time;
          p.rate_speedup = (k.flops / secs) / (base.gflops_rate * 1e9);
          pts.push_back(p);
        }
      }
    }
  }
  mark_pareto(pts);

  Table t(title);
  t.header({"engine", "m", "nodes", "ppn", "rel time", "rel cost",
            "rate speedup", "pareto"});
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    return a.rel_cost < b.rel_cost;
  });
  int printed = 0;
  for (const auto& p : pts) {
    if (!p.pareto && printed > 40) continue;  // keep output readable
    t.row({p.engine, fmt_int(p.m), std::to_string(p.nodes), std::to_string(p.ppn),
           fmt(p.rel_time, 3), fmt(p.rel_cost, 2), fmt(p.rate_speedup, 1),
           p.pareto ? "*" : ""});
    ++printed;
  }
  t.print();
  // The CSV carries every point, not just the readable subset.
  for (const auto& p : pts)
    csv.row({"bench_fig10_pareto_spins", spins.name, tag, p.engine,
             std::to_string(p.m), std::to_string(p.nodes), std::to_string(p.ppn),
             fmt_sci(p.rel_time, 6), fmt_sci(p.rel_cost, 6),
             fmt_sci(p.rate_speedup, 6), p.pareto ? "1" : "0"});

  int list_pareto = 0, other_pareto = 0;
  for (const auto& p : pts)
    if (p.pareto) (p.engine == "list" ? list_pareto : other_pareto)++;
  std::cout << "Pareto points: list " << list_pareto << ", sparse-dense "
            << other_pareto << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  tt::bench::print_driver_header("bench_fig10_pareto_spins");
  if (tt::bench::distributed_mode(argc, argv, "bench_fig10_pareto_spins",
                                  tt::bench::Workload::spins(),
                                  tt::bench::spin_ms()))
    return 0;
  tt::bench::Csv csv(tt::bench::csv_path(argc, argv),
                     "driver,workload,machine,engine,m_equiv,nodes,ppn,"
                     "rel_time,rel_cost,rate_speedup,pareto");
  panel("Fig 10 (left) — spins relative time vs cost, Blue Waters",
        tt::rt::blue_waters(), "blue_waters", csv);
  panel("Fig 10 (right) — spins relative time vs cost, Stampede2",
        tt::rt::stampede2(), "stampede2", csv);
  std::cout << "Shape to reproduce (paper Fig 10): on Blue Waters the Pareto\n"
               "frontier is all list-algorithm points; best speedups come at\n"
               "modest extra cost (paper: 5.9x-99x rate at ~1.5x cost).\n";
  return 0;
}

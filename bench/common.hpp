// Shared machinery for the paper-reproduction benches.
//
// Methodology (mirrors paper §VI): an MPS is grown to the target bond
// dimension m (untimed), then a single two-site DMRG optimization at the
// middle bond is executed and measured — 2 Davidson matvecs, the truncated
// SVD, and one environment update. The engine's op log is captured so the
// BSP cost model can be replayed against any virtual cluster without
// re-executing the numerics; measurements are cached on disk because several
// figure benches share them.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dmrg/dmrg.hpp"
#include "models/electron.hpp"
#include "models/heisenberg.hpp"
#include "models/hubbard.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "runtime/metrics.hpp"
#include "runtime/scheduler.hpp"
#include "support/table.hpp"

namespace tt::bench {

/// Standard driver banner: driver name, active linalg backend, thread count,
/// scale factor, and the sweep configuration (mode + region count). Every
/// bench main prints this first so any recorded output identifies the kernel
/// configuration that produced it (figure reproductions must note the
/// backend — see docs/BENCHMARKS.md). Drivers that only run single-bond
/// measured steps use the defaults (serial, 1 region).
void print_driver_header(const std::string& driver,
                         dmrg::SweepMode mode = dmrg::SweepMode::kSerial,
                         int regions = 1);

/// Value of a "--flag <value>" argument, or `fallback` when absent.
std::string arg_value(int argc, char** argv, const char* flag,
                      const std::string& fallback = "");

/// Value of a "--csv <path>" argument, or "" when absent.
std::string csv_path(int argc, char** argv);

/// Value of a "--metrics <path>" argument, or "" when absent. Drivers write a
/// tt-metrics-v1 JSON document there (see runtime/metrics.hpp); passing the
/// file to bench/trajectory_diff.py diffs its per-category breakdowns against
/// the committed trajectory snapshot.
std::string metrics_path(int argc, char** argv);

/// MetricsRegistry pre-loaded with the context every driver shares: linalg
/// backend, thread count, scale factor.
rt::MetricsRegistry make_metrics(const std::string& driver);

/// Per-category percentage cells of a breakdown table row — one cell per
/// category except the trailing kOther (the paper Fig 7 convention). The one
/// formatter behind every driver's breakdown table.
std::vector<std::string> pct_cells(const rt::CostTracker& t, int decimals = 1);

/// One standardized breakdown line — total (simulated or measured) seconds
/// followed by each nonzero category's share — replacing the drivers'
/// hand-rolled stats printing.
void print_metrics_summary(const std::string& title, const rt::CostTracker& t,
                           std::ostream& os = std::cout);

/// Flatten a SweepRecord into `mr` section `sec`: energy, bond dimension,
/// wall time, cost breakdown, prefetch counters. Lives here because
/// rt::MetricsRegistry cannot depend on the dmrg layer.
void add_sweep_metrics(rt::MetricsRegistry& mr, const std::string& sec,
                       const dmrg::SweepRecord& rec);

/// Append-only CSV emitter for the artifact pipeline. Inactive (row() is a
/// no-op) when constructed without a path; writes the header line on open.
class Csv {
 public:
  Csv() = default;
  Csv(const std::string& path, const std::string& header);

  bool active() const { return out_ != nullptr; }
  void row(const std::vector<std::string>& cells);

 private:
  std::shared_ptr<std::ofstream> out_;
};

/// One benchmark system (the paper's "spins" or "electrons" workload).
struct Workload {
  std::string name;
  models::Lattice lat;
  mps::SiteSetPtr sites;
  mps::Mpo h;
  symm::QN sector;

  /// J1–J2 Heisenberg cylinder at J2/J1 = 0.5 (paper: 20×10; scaled here).
  static Workload spins(int lx = 6, int ly = 4, double j2 = 0.5);
  /// Triangular Hubbard cylinder at U = 8.5, half filling (paper: 6×6 XC6).
  static Workload electrons(int lx = 4, int ly = 3, double u = 8.5);
};

/// Captured execution of one two-site optimization.
struct KernelMeasurement {
  double flops = 0.0;      ///< charged flops of the measured step
  double wall_seconds = 0.0;  ///< real execution time on this host
  index_t m_actual = 0;    ///< realized bond dimension at the middle bond
  int theta_blocks = 0;    ///< block count of the two-site tensor
  index_t largest_block = 0;  ///< largest bond-sector dimension
  double fill = 0.0;       ///< fused fill fraction of the two-site tensor
  std::vector<dmrg::OpRecord> log;  ///< replayable op stream
};

/// Execute (or load from cache) one measured step.
KernelMeasurement measure_step(const Workload& w, dmrg::EngineKind kind, index_t m,
                               unsigned seed = 1);

/// Simulated seconds of a measurement on a cluster.
double sim_seconds(const KernelMeasurement& k, const rt::Cluster& cluster);

/// Full replayed cost tracker.
rt::CostTracker replayed(const KernelMeasurement& k, const rt::Cluster& cluster);

/// Measured execution of one two-site optimization across real scheduler
/// ranks (multi-process by default). Unlike KernelMeasurement — whose
/// communication numbers come from replaying the BSP cost model on a virtual
/// cluster — every number here is measured on this host: wall time, per-rank
/// busy time, bytes actually moved by the transport, and the idle tails.
struct DistMeasurement {
  int ranks = 0;
  rt::SpawnMode mode = rt::SpawnMode::kProcess;
  double flops = 0.0;          ///< charged flops of the measured step
  double wall_seconds = 0.0;   ///< real end-to-end time of the step
  index_t m_actual = 0;        ///< realized bond dimension at the middle bond
  rt::CostTracker costs;       ///< measured tracker (kGemm/kComm/kImbalance)
  rt::DistStats dist;          ///< per-rank detail of the step's exchanges
};

/// Execute one middle-bond optimization with the list engine routed through a
/// `ranks`-rank rt::Scheduler. Never cached: this is a real measurement of
/// this machine, not a replayable log.
DistMeasurement measure_step_distributed(const Workload& w, index_t m, int ranks,
                                         unsigned seed = 1);

/// Shared "--ranks N" mode of the figure drivers: when the flag is present,
/// run measured distributed steps over `ms` instead of the replayed figure,
/// print the measured table, emit `--csv` rows tagged source=measured (plus
/// the BSP-replayed analogue rows for contrast), and return true — the
/// driver exits. Returns false when "--ranks" is absent.
bool distributed_mode(int argc, char** argv, const std::string& driver,
                      const Workload& w, const std::vector<index_t>& ms);

/// Single-node baseline ("ITensor" stand-in): reference engine on one node of
/// `machine`. gflops_rate is used for the paper's extrapolated comparisons.
struct Baseline {
  double flops = 0.0;
  double sim_seconds = 0.0;
  double gflops_rate = 0.0;
};
Baseline baseline(const Workload& w, const rt::MachineModel& machine, index_t m,
                  unsigned seed = 1);

/// True when TT_BENCH_FULL=1 (larger sweeps, closer to paper scale).
bool full_mode();

/// Scale factor sf between bench and paper bond dimensions (default 64, env
/// TT_BENCH_SCALE): bench m=128 stands for paper m=8192. The simulated
/// machine is rescaled accordingly — node rate by 1/sf³, bandwidths by 1/sf²,
/// per-event costs (latency, block launch) unchanged — so one bench flop
/// prices like sf³ paper flops and every reported *ratio* (efficiency,
/// speedup, breakdown) transfers to paper scale. See docs/BENCHMARKS.md.
double scale_factor();

/// Cost-model parameters consistent with the scale transformation.
rt::CostModelParams scaled_params();

/// A virtual cluster viewed at paper scale.
rt::Cluster cluster(const rt::MachineModel& machine, int nodes, int ppn);

/// Paper-equivalent GFlop/s of a measurement on a cluster.
double gflops_equiv(double bench_flops, double sim_secs);

/// Paper-equivalent bond dimension of a bench m.
index_t m_equiv(index_t m_bench);

/// Default bond-dimension ladders (scaled stand-ins for the paper's
/// 2^12..2^15; doubling preserved so weak-scaling shapes transfer).
std::vector<index_t> spin_ms();
std::vector<index_t> electron_ms();

/// Virtual node counts for scaling sweeps.
std::vector<int> node_counts(int max_nodes = 64);

}  // namespace tt::bench

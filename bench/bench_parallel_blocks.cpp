// Thread-parallel block-contraction executor: wall-time scaling of
// symm::contract over TT_THREADS on a many-block workload (the paper's core
// claim — §IV, Alg. 2 — is that independent block pairs must execute in
// parallel). The executor bins block pairs by output block, so speedup comes
// from concurrency across bins while results stay bitwise identical; the
// table verifies that and reports the speedup over the serial path.
//
// Thread counts default to {1, 2, 4, 8} capped by TT_BENCH_MAX_THREADS.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "symm/block_ops.hpp"

namespace {

using tt::Rng;
using tt::index_t;
using tt::symm::BlockTensor;
using tt::symm::ContractOptions;
using tt::symm::ContractStats;
using tt::symm::Dir;
using tt::symm::Index;
using tt::symm::QN;

// A bond with `nsec` sectors of dimension ~dim, so one contraction yields a
// long block-pair list with moderate per-pair GEMMs — the regime where the
// serial loop leaves the machine idle.
Index bond(Dir d, int nsec, index_t dim) {
  std::vector<tt::symm::Sector> secs;
  for (int q = 0; q < nsec; ++q)
    secs.push_back({QN(q - nsec / 2), dim + q % 3});
  return Index(secs, d);
}

Index phys(Dir d) { return Index({{QN(-1), 2}, {QN(1), 2}}, d); }

bool bitwise_equal(const BlockTensor& x, const BlockTensor& y) {
  if (x.num_blocks() != y.num_blocks()) return false;
  for (const auto& [key, blk] : x.blocks()) {
    const tt::tensor::DenseTensor* other = y.find_block(key);
    if (!other || blk.shape() != other->shape()) return false;
    if (std::memcmp(blk.data(), other->data(),
                    static_cast<std::size_t>(blk.size()) * sizeof(double)) != 0)
      return false;
  }
  return true;
}

}  // namespace

int main() {
  tt::bench::print_driver_header("bench_parallel_blocks");
  using namespace tt;

  const int nsec = 13;
  const index_t dim = 48;
  Rng rng(7);
  const Index mid = bond(Dir::Out, nsec, dim);
  const BlockTensor a = BlockTensor::random(
      {bond(Dir::In, nsec, dim), phys(Dir::In), mid}, QN::zero(1), rng);
  const BlockTensor b = BlockTensor::random(
      {mid.reversed(), phys(Dir::In), bond(Dir::Out, nsec, dim)}, QN::zero(1),
      rng);

  ContractStats probe;
  ContractOptions serial;
  serial.num_threads = 1;
  const BlockTensor ref = symm::contract(a, b, {{2, 0}}, &probe, serial);
  std::cout << "workload: " << a.num_blocks() << " x " << b.num_blocks()
            << " operand blocks, " << probe.block_ops.size()
            << " block pairs into " << probe.num_bins << " output bins, "
            << probe.total_flops / 1e9 << " GFlop\n\n";

  std::vector<int> thread_counts{1, 2, 4, 8};
  if (const char* env = std::getenv("TT_BENCH_MAX_THREADS")) {
    const int cap = std::atoi(env);
    if (cap >= 1)
      thread_counts.erase(
          std::remove_if(thread_counts.begin(), thread_counts.end(),
                         [cap](int t) { return t > cap; }),
          thread_counts.end());
  }

  const int reps = 5;
  double t1 = 0.0;
  Table table("Parallel block-contraction executor — symm::contract wall time");
  table.header({"threads", "best of 5 (ms)", "speedup vs 1", "GFlop/s",
                "bitwise == serial"});
  for (int threads : thread_counts) {
    ContractOptions opts;
    opts.num_threads = threads;
    BlockTensor c;
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      Timer timer;
      c = symm::contract(a, b, {{2, 0}}, nullptr, opts);
      best = std::min(best, timer.seconds());
    }
    if (threads == 1) t1 = best;
    table.row({std::to_string(threads), fmt(best * 1e3, 3), fmt(t1 / best, 2),
               fmt(probe.total_flops / best / 1e9, 2),
               bitwise_equal(ref, c) ? "yes" : "NO"});
  }
  table.print();

  std::cout << "\nHardware concurrency: " << std::thread::hardware_concurrency()
            << " (speedup saturates at the physical core count; the "
               "determinism column must read 'yes' everywhere at any count)\n";
  return 0;
}

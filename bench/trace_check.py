#!/usr/bin/env python3
"""Structurally validate a TT_TRACE Chrome trace-event export.

Checks that the file parses as JSON, contains complete ("X") spans, that
spans arrived from at least --min-ranks distinct ranks (pids) — i.e. the
cross-rank shipping path worked — and optionally that a span named
--overlap-a time-overlaps a span named --overlap-b (the prefetch/Davidson
overlap the tracer exists to make visible):

    python3 bench/trace_check.py trace.json
    python3 bench/trace_check.py trace.json --min-ranks 2 \
        --overlap-a env.prefetch --overlap-b dmrg.davidson

Exit 0 on success, 1 on a failed check, 2 on unreadable input.
"""

import argparse
import json
import sys


def fail(message):
    print(f"trace_check: {message}", file=sys.stderr)
    raise SystemExit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON from TT_TRACE")
    ap.add_argument("--min-ranks", type=int, default=2,
                    help="minimum distinct pids that must carry spans")
    ap.add_argument("--overlap-a", default=None,
                    help="span name that must overlap --overlap-b in time")
    ap.add_argument("--overlap-b", default=None)
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"trace_check: cannot read '{args.trace}': {e.strerror}",
              file=sys.stderr)
        return 2
    except json.JSONDecodeError as e:
        print(f"trace_check: '{args.trace}' is not valid JSON ({e})",
              file=sys.stderr)
        return 2

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("no traceEvents array")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail("no complete ('X') spans recorded")

    pids = sorted({e["pid"] for e in spans})
    if len(pids) < args.min_ranks:
        fail(f"spans from only {len(pids)} rank(s) {pids}, "
             f"need >= {args.min_ranks}")

    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    names = sorted({e["name"] for e in spans})
    print(f"trace_check: {len(spans)} spans across ranks {pids}, "
          f"{dropped} dropped, {len(names)} distinct span names")

    if args.overlap_a and args.overlap_b:
        sa = [e for e in spans if e["name"] == args.overlap_a]
        sb = [e for e in spans if e["name"] == args.overlap_b]
        if not sa:
            fail(f"no '{args.overlap_a}' spans")
        if not sb:
            fail(f"no '{args.overlap_b}' spans")
        overlap = any(
            a["ts"] < b["ts"] + b["dur"] and b["ts"] < a["ts"] + a["dur"]
            for a in sa for b in sb)
        if not overlap:
            fail(f"no '{args.overlap_a}' span overlaps a "
                 f"'{args.overlap_b}' span")
        print(f"trace_check: '{args.overlap_a}' overlaps "
              f"'{args.overlap_b}' — ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

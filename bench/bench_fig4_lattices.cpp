// Paper Fig 4: lattice structure of the two benchmark systems —
// (a) the J1–J2 square cylinder, (b) the triangular cylinder.
// Rendered as site-id grids plus bond statistics.
#include <iostream>

#include "common.hpp"

int main() {
  tt::bench::print_driver_header("bench_fig4_lattices");
  using namespace tt;

  std::cout << "(a) J1-J2 square cylinder (paper: 20x10; bench default 6x4)\n";
  auto spins = models::square_cylinder(6, 4, true);
  std::cout << models::render(spins) << "\n";

  std::cout << "(b) triangular cylinder (paper: 6x6 XC6; bench default 4x3)\n";
  auto electrons = models::triangular_cylinder(4, 3);
  std::cout << models::render(electrons) << "\n";

  Table t("Fig 4 — bond statistics");
  t.header({"lattice", "sites", "J1/t bonds", "J2 bonds", "coordination (bulk)"});
  t.row({spins.name, std::to_string(spins.num_sites),
         std::to_string(spins.num_bonds(0)), std::to_string(spins.num_bonds(1)),
         "4 + 4 diag"});
  t.row({electrons.name, std::to_string(electrons.num_sites),
         std::to_string(electrons.num_bonds(0)), "0", "6"});
  t.print();

  std::cout << "\nThe paper-scale geometries are available too:\n";
  std::cout << "  " << models::square_cylinder(20, 10, true).name << ": "
            << models::square_cylinder(20, 10, true).num_sites << " sites\n";
  std::cout << "  " << models::triangular_cylinder(6, 6).name << ": "
            << models::triangular_cylinder(6, 6).num_sites << " sites\n";
  return 0;
}

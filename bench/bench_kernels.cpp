// Google-benchmark microbenches for the computational substrates: GEMM,
// tensor permutation (HPTT stand-in), einsum contraction (dense and sparse),
// SVD, and block-sparse contraction (Alg. 2). These measure real host
// throughput — the numbers behind the wall-clock columns of the figure
// benches.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "linalg/gemm.hpp"
#include "linalg/svd.hpp"
#include "symm/block_ops.hpp"
#include "tensor/einsum.hpp"
#include "mps/mps.hpp"
#include "models/spin_half.hpp"
#include "models/electron.hpp"

namespace {

using tt::Rng;
using tt::index_t;

void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  auto a = tt::linalg::Matrix::random(n, n, rng);
  auto b = tt::linalg::Matrix::random(n, n, rng);
  tt::linalg::Matrix c(n, n);
  for (auto _ : state) {
    tt::linalg::gemm(false, false, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_GemmTransposed(benchmark::State& state) {
  // AᵀBᵀ: the packed builtin kernel (and dgemm) absorb the transposes during
  // packing, so this should track BM_Gemm closely — it used to pay two
  // materialized transpose copies per call.
  const index_t n = state.range(0);
  Rng rng(1);
  auto a = tt::linalg::Matrix::random(n, n, rng);
  auto b = tt::linalg::Matrix::random(n, n, rng);
  tt::linalg::Matrix c(n, n);
  for (auto _ : state) {
    tt::linalg::gemm(true, true, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmTransposed)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_Permute(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(2);
  auto t = tt::tensor::DenseTensor::random({n, n, 8, 4}, rng);
  for (auto _ : state) {
    auto p = t.permuted({3, 1, 0, 2});
    benchmark::DoNotOptimize(p.data());
  }
  state.SetBytesProcessed(state.iterations() * t.size() *
                          static_cast<int64_t>(sizeof(double)) * 2);
}
BENCHMARK(BM_Permute)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_EinsumDense(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(3);
  // Environment-style contraction L(a,k,b)·x(b,s,t,c).
  auto l = tt::tensor::DenseTensor::random({m, 16, m}, rng);
  auto x = tt::tensor::DenseTensor::random({m, 2, 2, m}, rng);
  for (auto _ : state) {
    auto y = tt::tensor::einsum("akb,bstc->akstc", l, x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_EinsumDense)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_EinsumSparse(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(4);
  tt::tensor::DenseTensor dl({m, 16, m});
  tt::tensor::DenseTensor dx({m, 2, 2, m});
  for (index_t i = 0; i < dl.size(); ++i)
    if (rng.uniform() < 0.2) dl[i] = rng.normal();
  for (index_t i = 0; i < dx.size(); ++i)
    if (rng.uniform() < 0.2) dx[i] = rng.normal();
  auto sl = tt::tensor::SparseTensor::from_dense(dl);
  auto sx = tt::tensor::SparseTensor::from_dense(dx);
  for (auto _ : state) {
    auto y = tt::tensor::einsum_ss("akb,bstc->akstc", sl, sx);
    benchmark::DoNotOptimize(y.nnz());
  }
}
BENCHMARK(BM_EinsumSparse)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Svd(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(5);
  auto a = tt::linalg::Matrix::random(2 * n, n, rng);
  for (auto _ : state) {
    auto f = tt::linalg::svd(a);
    benchmark::DoNotOptimize(f.s.data());
  }
}
BENCHMARK(BM_Svd)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_BlockContract(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(6);
  auto sites = tt::models::spin_half_sites(12);
  auto psi = tt::mps::Mps::random(sites, tt::symm::QN(0), m, rng);
  const auto& a = psi.site(5);
  const auto& b = psi.site(6);
  for (auto _ : state) {
    auto c = tt::symm::contract(a, b, {{2, 0}});
    benchmark::DoNotOptimize(c.num_blocks());
  }
}
BENCHMARK(BM_BlockContract)->Arg(32)->Arg(64)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_BlockContractElectron(benchmark::State& state) {
  const index_t m = state.range(0);
  Rng rng(7);
  auto sites = tt::models::electron_sites(10);
  auto psi = tt::mps::Mps::random(sites, tt::symm::QN(10, 0), m, rng);
  const auto& a = psi.site(4);
  const auto& b = psi.site(5);
  for (auto _ : state) {
    auto c = tt::symm::contract(a, b, {{2, 0}});
    benchmark::DoNotOptimize(c.num_blocks());
  }
}
BENCHMARK(BM_BlockContractElectron)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

// Explicit main (instead of benchmark_main) so the driver banner names the
// active linalg backend next to the numbers it produced.
int main(int argc, char** argv) {
  tt::bench::print_driver_header("bench_kernels");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

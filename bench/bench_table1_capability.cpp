// Paper Table I: comparison of parallel DMRG works.
//
// Table I is a literature survey and not reproducible by code; this harness
// prints the published rows verbatim for context and appends the row this
// repository realizes (method, symmetry handling, architecture, the maximum
// bond dimension its benches exercise, and the virtual node counts its
// simulated clusters cover). See docs/BENCHMARKS.md.
#include <iostream>

#include "common.hpp"

int main() {
  tt::bench::print_driver_header("bench_table1_capability");
  using namespace tt;

  Table t("Table I — parallel DMRG works (published values + this repository)");
  t.header({"system", "work", "method", "architecture", "max m", "nodes"});
  t.row({"Heisenberg J1-J2", "Levy et al. (paper)", "U(1) DMRG",
         "Distributed Memory", "32,768", "256"});
  t.row({"Heisenberg J1-J2", "Jiang et al.", "DMRG", "not reported", "12,000", "-"});
  t.row({"Heisenberg J1-J2", "Wang et al.", "DMRG", "not reported", "12,000", "-"});
  t.row({"Triangular Hubbard", "Levy et al. (paper)", "U(1) DMRG",
         "Distributed Memory", "32,768", "256"});
  t.row({"Triangular Hubbard", "Shirakawa et al.", "DMRG", "not reported",
         "20,000", "-"});
  t.row({"Triangular Hubbard", "Szasz et al.", "U(1)+k iDMRG", "Shared Memory",
         "11,314", "-"});
  t.row({"Hubbard 1D chain", "Rincon et al.", "U(1) DMRG", "Distributed Memory",
         "1,000", "8"});
  t.row({"U-V Hubbard", "Kantian et al.", "DMRG", "Distributed Memory", "18,000",
         "180"});
  t.row({"Square Hubbard", "Yamada et al.", "s-leg DMRG", "Distributed Shared",
         "1,200", "-"});
  t.row({"Heisenberg 1D", "Vance et al.", "U(1) iDMRG", "Distributed Memory",
         "2,048", "64"});
  t.row({"Heisenberg J1", "Stoudenmire et al.", "Real-space parallel", "10 nodes",
         "2,000", "10"});

  // Our realized row: the largest m the bench ladder exercises and the
  // largest virtual cluster the cost-model sweeps price.
  const index_t max_m = bench::spin_ms().back();
  t.row({"both (this repo)", "tensortools-parallel", "U(1) DMRG x4 engines",
         "Simulated distributed", fmt_int(max_m) + " (scaled)", "256 (virtual)"});
  t.print();

  std::cout << "\nNOTE: this repository is a laptop-scale reproduction; bond\n"
               "dimensions are scaled down (set TT_BENCH_FULL=1 for larger runs)\n"
               "and distributed execution is priced by the BSP cost model.\n";
  return 0;
}

// Paper Fig 7: percentage time breakdown — SVD / load imbalance / CTF
// transposition / communication / GEMM.
//
// (a) spins with the list algorithm on Blue Waters, node counts 16..128:
//     GEMM share grows with m, communication+SVD significant but not
//     dominant.
// (b) electrons at fixed m on Blue Waters and Stampede2, list vs
//     sparse-sparse: list is dominated by communication (BW) and
//     transposition (S2); sparse-sparse spends more of its time in (sparse)
//     GEMM.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  tt::bench::print_driver_header("bench_fig7_breakdown");
  using namespace tt;
  auto spins = bench::Workload::spins();
  auto electrons = bench::Workload::electrons();
  auto mr = bench::make_metrics("bench_fig7_breakdown");

  {
    Table t("Fig 7a — spins, list, Blue Waters (16/node): % time by category");
    t.header({"m", "nodes", "GEMM", "Comm", "CTF transp", "SVD", "Imbalance"});
    const auto ms = bench::spin_ms();
    const int nodes_for[] = {16, 32, 64, 128};
    for (std::size_t i = 0; i < ms.size(); ++i) {
      auto k = bench::measure_step(spins, dmrg::EngineKind::kList, ms[i]);
      const int nodes = nodes_for[std::min<std::size_t>(i, 3)];
      auto tr = bench::replayed(k, bench::cluster(rt::blue_waters(), nodes, 16));
      auto p = bench::pct_cells(tr);
      t.row({fmt_int(k.m_actual), std::to_string(nodes), p[0], p[1], p[2], p[3],
             p[4]});
      mr.add_tracker("fig7a.m" + std::to_string(ms[i]) + ".nodes" +
                         std::to_string(nodes),
                     tr);
    }
    t.print();
    std::cout << "\n";
  }

  {
    const index_t m = bench::electron_ms().back();
    Table t("Fig 7b — electrons at m=" + fmt_int(m) +
            ": % time by category (4 BW nodes / 8 S2 nodes)");
    t.header({"machine", "engine", "GEMM", "Comm", "CTF transp", "SVD",
              "Imbalance"});
    for (auto kind : {dmrg::EngineKind::kList, dmrg::EngineKind::kSparseSparse}) {
      auto k = bench::measure_step(electrons, kind, m);
      auto bw = bench::replayed(k, bench::cluster(rt::blue_waters(), 4, 16));
      auto s2 = bench::replayed(k, bench::cluster(rt::stampede2(), 8, 64));
      auto pbw = bench::pct_cells(bw);
      auto ps2 = bench::pct_cells(s2);
      t.row({"blue-waters", dmrg::engine_name(kind), pbw[0], pbw[1], pbw[2],
             pbw[3], pbw[4]});
      t.row({"stampede2", dmrg::engine_name(kind), ps2[0], ps2[1], ps2[2], ps2[3],
             ps2[4]});
      mr.add_tracker(std::string("fig7b.blue-waters.") + dmrg::engine_name(kind),
                     bw);
      mr.add_tracker(std::string("fig7b.stampede2.") + dmrg::engine_name(kind),
                     s2);
    }
    t.print();
  }

  std::cout << "\nShapes to reproduce (paper Fig 7): GEMM share grows with m in\n"
               "(a); in (b) the list algorithm pays more communication on Blue\n"
               "Waters and more transposition on Stampede2, while sparse-sparse\n"
               "shifts time into (sparse) GEMM.\n";
  mr.write(bench::metrics_path(argc, argv));
  return 0;
}

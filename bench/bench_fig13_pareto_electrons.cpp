// Paper Fig 13: electron-system execution time and node-hour cost relative to
// the single-node baseline, for list (circles) and sparse-sparse (diamonds)
// on Blue Waters (left) and Stampede2 (right).
//
// Shapes to reproduce: on Blue Waters only the list algorithm is efficient in
// both time and cost (paper: ~8x speedup at ~1x relative rate); sparse-sparse
// buys time at a steep cost (paper: 14x rate at 4.5x cost); on Stampede2 the
// gap between the algorithms narrows.
#include <algorithm>
#include <iostream>

#include "common.hpp"

namespace {

void panel(const char* title, const tt::rt::MachineModel& machine, int ppn,
           const char* tag, tt::bench::Csv& csv) {
  using namespace tt;
  auto electrons = bench::Workload::electrons();
  const auto ms = bench::electron_ms();
  const auto base = bench::baseline(electrons, machine, ms.front());

  Table t(title);
  t.header({"engine", "m", "nodes", "rel time", "rel cost", "rate speedup"});
  for (auto kind : {dmrg::EngineKind::kList, dmrg::EngineKind::kSparseSparse}) {
    for (index_t m : ms) {
      auto k = bench::measure_step(electrons, kind, m);
      auto kr = bench::measure_step(electrons, dmrg::EngineKind::kReference, m);
      const double base_time = kr.flops / (base.gflops_rate * 1e9);
      double best_time = 1e300;
      int best_nodes = 1;
      for (int nodes : bench::node_counts(bench::full_mode() ? 32 : 8)) {
        const double secs = bench::sim_seconds(k, bench::cluster(machine, nodes, ppn));
        if (secs < best_time) {
          best_time = secs;
          best_nodes = nodes;
        }
      }
      t.row({dmrg::engine_name(kind), fmt_int(bench::m_equiv(k.m_actual)),
             std::to_string(best_nodes), fmt(best_time / base_time, 3),
             fmt(best_time * best_nodes / base_time, 2),
             fmt((k.flops / best_time) / (base.gflops_rate * 1e9), 1)});
      csv.row({"bench_fig13_pareto_electrons", electrons.name, tag,
               dmrg::engine_name(kind), std::to_string(bench::m_equiv(k.m_actual)),
               std::to_string(best_nodes), std::to_string(ppn),
               fmt_sci(best_time / base_time, 6),
               fmt_sci(best_time * best_nodes / base_time, 6),
               fmt_sci((k.flops / best_time) / (base.gflops_rate * 1e9), 6)});
    }
  }
  t.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  tt::bench::print_driver_header("bench_fig13_pareto_electrons");
  if (tt::bench::distributed_mode(argc, argv, "bench_fig13_pareto_electrons",
                                  tt::bench::Workload::electrons(),
                                  tt::bench::electron_ms()))
    return 0;
  tt::bench::Csv csv(tt::bench::csv_path(argc, argv),
                     "driver,workload,machine,engine,m_equiv,nodes,ppn,"
                     "rel_time,rel_cost,rate_speedup");
  panel("Fig 13 (left) — electrons relative time vs cost, Blue Waters (16/node)",
        tt::rt::blue_waters(), 16, "blue_waters", csv);
  panel("Fig 13 (right) — electrons relative time vs cost, Stampede2 (64/node)",
        tt::rt::stampede2(), 64, "stampede2", csv);
  std::cout << "Shape to reproduce (paper Fig 13): list is cost-efficient on\n"
               "Blue Waters; sparse-sparse reaches higher rates at higher cost;\n"
               "the cost gap narrows on Stampede2.\n";
  return 0;
}

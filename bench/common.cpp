#include "common.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "linalg/backend.hpp"
#include "support/cli.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace tt::bench {

void print_driver_header(const std::string& driver, dmrg::SweepMode mode,
                         int regions) {
  std::cout << "[" << driver << "] linalg backend: " << linalg::backend_name()
            << " | threads: " << support::num_threads()
            << " | scale factor: " << scale_factor()
            << " | sweep: " << dmrg::sweep_mode_name(mode)
            << " regions=" << regions << "\n\n";
}

std::string arg_value(int argc, char** argv, const char* flag,
                      const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  return fallback;
}

std::string csv_path(int argc, char** argv) {
  return arg_value(argc, argv, "--csv");
}

std::string metrics_path(int argc, char** argv) {
  return arg_value(argc, argv, "--metrics");
}

rt::MetricsRegistry make_metrics(const std::string& driver) {
  rt::MetricsRegistry mr(driver);
  mr.add_context("backend", std::string(linalg::backend_name()));
  mr.add_context("threads", static_cast<double>(support::num_threads()));
  mr.add_context("scale_factor", scale_factor());
  return mr;
}

std::vector<std::string> pct_cells(const rt::CostTracker& t, int decimals) {
  const auto p = t.percentages();
  std::vector<std::string> cells;
  cells.reserve(static_cast<std::size_t>(rt::kNumCategories) - 1);
  for (int c = 0; c < rt::kNumCategories - 1; ++c)  // skip trailing "Other"
    cells.push_back(fmt(p[static_cast<std::size_t>(c)], decimals));
  return cells;
}

void print_metrics_summary(const std::string& title, const rt::CostTracker& t,
                           std::ostream& os) {
  os << title << ": total " << fmt_sci(t.total_time(), 2) << " s";
  const auto p = t.percentages();
  for (int c = 0; c < rt::kNumCategories; ++c) {
    if (t.time(static_cast<rt::Category>(c)) <= 0.0) continue;
    os << " | " << rt::category_name(static_cast<rt::Category>(c)) << " "
       << fmt(p[static_cast<std::size_t>(c)], 1) << "%";
  }
  os << "\n";
}

void add_sweep_metrics(rt::MetricsRegistry& mr, const std::string& sec,
                       const dmrg::SweepRecord& rec) {
  mr.add(sec, "sweep", static_cast<double>(rec.sweep));
  mr.add(sec, "energy", rec.energy);
  mr.add(sec, "max_bond_dim", static_cast<double>(rec.max_bond_dim));
  mr.add(sec, "truncation_error", rec.truncation_error);
  mr.add(sec, "wall_s", rec.wall_seconds);
  mr.add(sec, "mode", std::string(dmrg::sweep_mode_name(rec.mode)));
  mr.add(sec, "regions", static_cast<double>(rec.regions));
  mr.add(sec, "prefetch_launched", static_cast<double>(rec.prefetch_launched));
  mr.add(sec, "prefetch_hits", static_cast<double>(rec.prefetch_hits));
  mr.add(sec, "prefetch_wait_s", rec.prefetch_wait_seconds);
  mr.add_tracker(sec, rec.costs);
}

Csv::Csv(const std::string& path, const std::string& header) {
  if (path.empty()) return;  // no --csv flag: stay inactive, don't warn
  auto out = std::make_shared<std::ofstream>(path);
  if (!*out) {
    std::cerr << "warning: cannot open --csv path '" << path << "'\n";
    return;
  }
  *out << header << "\n";
  out_ = std::move(out);
}

void Csv::row(const std::vector<std::string>& cells) {
  if (!out_) return;
  for (std::size_t i = 0; i < cells.size(); ++i)
    *out_ << (i ? "," : "") << cells[i];
  *out_ << "\n";
  out_->flush();
}

Workload Workload::spins(int lx, int ly, double j2) {
  Workload w;
  w.lat = models::square_cylinder(lx, ly, true);
  w.sites = models::spin_half_sites(w.lat.num_sites);
  w.h = models::heisenberg_mpo(w.sites, w.lat, 1.0, j2);
  w.sector = symm::QN(0);
  w.name = "spins-" + std::to_string(lx) + "x" + std::to_string(ly);
  return w;
}

Workload Workload::electrons(int lx, int ly, double u) {
  Workload w;
  w.lat = models::triangular_cylinder(lx, ly);
  w.sites = models::electron_sites(w.lat.num_sites);
  w.h = models::hubbard_mpo(w.sites, w.lat, 1.0, u);
  w.sector = symm::QN(w.lat.num_sites, 0);  // half filling, Sz = 0
  w.name = "electrons-" + std::to_string(lx) + "x" + std::to_string(ly);
  return w;
}

namespace {

std::filesystem::path cache_dir() {
  const char* env = std::getenv("TT_BENCH_CACHE");
  return env ? std::filesystem::path(env) : std::filesystem::path("bench_cache");
}

std::string cache_key(const Workload& w, dmrg::EngineKind kind, index_t m,
                      unsigned seed) {
  std::ostringstream os;
  // The backend is part of the key: wall_seconds (and hence every simulated
  // rate derived from it) depends on which kernels executed the step.
  os << "v4_" << linalg::backend_name() << "_" << w.name << "_"
     << dmrg::engine_name(kind) << "_m" << m << "_s" << seed << ".txt";
  return os.str();
}

bool load_cached(const std::filesystem::path& path, KernelMeasurement& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::size_t nrec = 0;
  in >> out.flops >> out.wall_seconds >> out.m_actual >> out.theta_blocks >>
      out.largest_block >> out.fill >> nrec;
  if (!in) return false;
  out.log.resize(nrec);
  for (auto& r : out.log) {
    int type = 0, layout = 0;
    in >> type >> layout >> r.cost.flops >> r.cost.words_a >> r.cost.words_b >>
        r.cost.words_c >> r.rows >> r.cols >> r.words;
    r.type = static_cast<dmrg::OpRecord::Type>(type);
    r.layout = static_cast<rt::Layout>(layout);
  }
  return static_cast<bool>(in);
}

void store_cached(const std::filesystem::path& path, const KernelMeasurement& k) {
  std::error_code ec;
  std::filesystem::create_directories(path.parent_path(), ec);
  std::ofstream outf(path);
  if (!outf) return;
  outf.precision(17);
  outf << k.flops << " " << k.wall_seconds << " " << k.m_actual << " "
       << k.theta_blocks << " " << k.largest_block << " " << k.fill << " "
       << k.log.size() << "\n";
  for (const auto& r : k.log)
    outf << static_cast<int>(r.type) << " " << static_cast<int>(r.layout) << " "
         << r.cost.flops << " " << r.cost.words_a << " " << r.cost.words_b << " "
         << r.cost.words_c << " " << r.rows << " " << r.cols << " " << r.words
         << "\n";
}

}  // namespace

KernelMeasurement measure_step(const Workload& w, dmrg::EngineKind kind, index_t m,
                               unsigned seed) {
  const auto path = cache_dir() / cache_key(w, kind, m, seed);
  KernelMeasurement k;
  if (load_cached(path, k)) return k;

  // Grow the state to m at the middle bond (untimed, paper §VI): a random MPS
  // with charge-path-proportional sector dims stands in for DMRG growth
  // sweeps.
  Rng rng(seed);
  mps::Mps psi = mps::Mps::random(w.sites, w.sector, m, rng);

  // Any cluster works here: only the replayable log and wall time matter.
  auto engine = dmrg::make_engine(kind, {rt::blue_waters(), 1, 16});
  dmrg::ContractionEngine* eng = engine.get();
  dmrg::Dmrg solver(std::move(psi), w.h, std::move(engine));

  const int j = solver.psi().size() / 2;
  {
    // Two-site tensor structure stats (paper Fig 2).
    symm::BlockTensor theta =
        symm::contract(solver.psi().site(j), solver.psi().site(j + 1), {{2, 0}});
    k.theta_blocks = theta.num_blocks();
    k.fill = theta.fill_fraction();
  }
  const symm::Index& bond = solver.psi().site(j).index(2);
  for (int s = 0; s < bond.num_sectors(); ++s)
    k.largest_block = std::max(k.largest_block, bond.sector(s).dim);
  k.m_actual = bond.dim();

  eng->set_logging(true);
  eng->clear_log();
  const rt::CostTracker before = eng->tracker();
  dmrg::SweepParams params;
  params.max_m = m;
  params.davidson_iter = 2;  // paper production setting
  Timer timer;
  solver.optimize_bond(j, params, /*sweep_right=*/true);
  k.wall_seconds = timer.seconds();
  k.flops = eng->tracker().diff(before).flops();
  k.log = eng->log();

  store_cached(path, k);
  return k;
}

DistMeasurement measure_step_distributed(const Workload& w, index_t m, int ranks,
                                         unsigned seed) {
  Rng rng(seed);
  mps::Mps psi = mps::Mps::random(w.sites, w.sector, m, rng);

  // Spawn the ranks before the solver builds its environment stack, from
  // quiescent context (process mode forks).
  rt::SchedulerOptions sopts;
  sopts.num_ranks = ranks;
  rt::Scheduler sched(sopts);

  auto engine = dmrg::make_engine(dmrg::EngineKind::kList, {rt::blue_waters(), 1, 16});
  engine->set_scheduler(&sched);
  dmrg::ContractionEngine* eng = engine.get();
  dmrg::Dmrg solver(std::move(psi), w.h, std::move(engine));

  const int j = solver.psi().size() / 2;
  DistMeasurement d;
  d.ranks = ranks;
  d.mode = sched.mode();
  d.m_actual = solver.psi().site(j).index(2).dim();

  sched.reset_accumulated();  // drop the untimed environment build
  const rt::CostTracker before = eng->tracker();
  dmrg::SweepParams params;
  params.max_m = m;
  params.davidson_iter = 2;  // paper production setting
  Timer timer;
  solver.optimize_bond(j, params, /*sweep_right=*/true);
  d.wall_seconds = timer.seconds();
  d.costs = eng->tracker().diff(before);
  d.dist = sched.accumulated();
  d.flops = d.costs.flops();
  return d;
}

namespace {

// One short prefetch-overlapped sweep through a `ranks`-rank scheduler: the
// full pipeline — rank-sharded contractions, async environment prefetch, and
// Davidson — in one run, so a TT_TRACE'd `--ranks` invocation records spans
// from every rank *and* the sweep-turn prefetch/Davidson overlap (the in-
// flight extension a turn bond never demands; see dmrg.cpp optimize_bond).
// Small m on purpose: this is a smoke for the timeline, not a measurement.
//
// At bench scale the prefetch engine runs locally while theta and Davidson
// pay real IPC through the scheduler, so the in-flight extension would finish
// under theta and the turn overlap — which at paper scale is a same-order
// contraction — would be invisible in the timeline. A stall of one measured
// bond-wall (same host, same load, so it tracks theta robustly) keeps the
// future alive into the Davidson window.
dmrg::SweepRecord pipeline_smoke(const Workload& w, index_t m, int ranks,
                                 double bond_wall_s) {
  Rng rng(1);
  mps::Mps psi = mps::Mps::random(w.sites, w.sector, m, rng);

  rt::SchedulerOptions sopts;
  sopts.num_ranks = ranks;
  rt::Scheduler sched(sopts);  // forks before the prefetch queue exists

  auto engine = dmrg::make_engine(dmrg::EngineKind::kList, {rt::blue_waters(), 1, 16});
  engine->set_scheduler(&sched);
  dmrg::Dmrg solver(std::move(psi), w.h, std::move(engine));

  const long delay_ms = std::min<long>(
      500, std::max<long>(50, std::lround(bond_wall_s * 1000.0)));
  solver.environments().set_prefetch_delay_for_testing(
      std::chrono::milliseconds(delay_ms));

  dmrg::SweepParams params;
  params.max_m = m;
  params.davidson_iter = 2;
  params.prefetch = true;
  return solver.sweep(params);
}

}  // namespace

bool distributed_mode(int argc, char** argv, const std::string& driver,
                      const Workload& w, const std::vector<index_t>& ms) {
  Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 0));
  if (ranks <= 0) return false;

  Csv csv(csv_path(argc, argv),
          "driver,workload,source,m_bench,m_equiv,ranks,mode,seconds,gemm_s,"
          "comm_s,imbalance_s,words_moved,bytes_moved,flops");
  rt::MetricsRegistry mr = make_metrics(driver);
  mr.add_context("workload", w.name);
  mr.add_context("ranks", static_cast<double>(ranks));
  mr.add_context("mode",
                 std::string(rt::spawn_mode_name(rt::spawn_mode_from_env())));

  Table t(driver + " — measured distributed steps, " + w.name + " list at --ranks " +
          std::to_string(ranks) + " (" + rt::spawn_mode_name(
              rt::spawn_mode_from_env()) + " mode)");
  t.header({"m(eq)", "ranks", "wall s", "gemm s", "comm s", "imb s", "MB moved",
            "bins"});
  rt::CostTracker measured_total;
  double first_step_wall = 0.0;
  for (index_t m : ms) {
    const DistMeasurement d = measure_step_distributed(w, m, ranks);
    if (first_step_wall == 0.0) first_step_wall = d.wall_seconds;
    measured_total.merge(d.costs);
    int bins = 0;
    for (const auto& r : d.dist.ranks) bins += r.bins;
    t.row({fmt_int(m_equiv(d.m_actual)), std::to_string(d.ranks),
           fmt_sci(d.wall_seconds, 2),
           fmt_sci(d.costs.time(rt::Category::kGemm), 2),
           fmt_sci(d.costs.time(rt::Category::kComm), 2),
           fmt_sci(d.costs.time(rt::Category::kImbalance), 2),
           fmt(d.dist.total_bytes() / 1e6, 2), fmt_int(bins)});
    csv.row({driver, w.name, "measured", std::to_string(m),
             std::to_string(m_equiv(d.m_actual)),
             std::to_string(d.ranks), rt::spawn_mode_name(d.mode),
             fmt_sci(d.wall_seconds, 6),
             fmt_sci(d.costs.time(rt::Category::kGemm), 6),
             fmt_sci(d.costs.time(rt::Category::kComm), 6),
             fmt_sci(d.costs.time(rt::Category::kImbalance), 6),
             fmt_sci(d.costs.words(), 6), fmt_sci(d.dist.total_bytes(), 6),
             fmt_sci(d.flops, 6)});

    const std::string sec = "measured.m" + std::to_string(m);
    mr.add(sec, "wall_s", d.wall_seconds);
    mr.add(sec, "m_equiv", static_cast<double>(m_equiv(d.m_actual)));
    mr.add_tracker(sec, d.costs);
    mr.add_dist(sec, d.dist);

    // BSP-replayed analogue at `ranks` virtual nodes, for contrast: simulated
    // seconds on a scaled virtual cluster, not this machine's wall time (see
    // docs/BENCHMARKS.md, "Measured vs replayed").
    const KernelMeasurement k = measure_step(w, dmrg::EngineKind::kList, m);
    const rt::CostTracker sim = replayed(k, cluster(rt::blue_waters(), ranks, 16));
    csv.row({driver, w.name, "replayed", std::to_string(m),
             std::to_string(m_equiv(k.m_actual)),
             std::to_string(ranks), "bsp-sim", fmt_sci(sim.total_time(), 6),
             fmt_sci(sim.time(rt::Category::kGemm), 6),
             fmt_sci(sim.time(rt::Category::kComm), 6),
             fmt_sci(sim.time(rt::Category::kImbalance), 6),
             fmt_sci(sim.words(), 6), fmt_sci(sim.words() * 8.0, 6),
             fmt_sci(sim.flops(), 6)});
    mr.add_tracker("replayed.m" + std::to_string(m), sim);
  }
  t.print();
  print_metrics_summary("\nmeasured breakdown (all steps)", measured_total);

  // Full-pipeline smoke: one prefetch-overlapped sweep through the same
  // scheduler config, so a traced run (TT_TRACE=...) shows rank-sharded
  // contraction spans AND the prefetch/Davidson overlap in one timeline.
  const index_t m_smoke = std::min<index_t>(ms.front(), 32);
  const dmrg::SweepRecord smoke =
      pipeline_smoke(w, m_smoke, ranks, first_step_wall);
  std::cout << "pipeline smoke: 1 sweep at m=" << m_smoke << ", E = "
            << fmt_sci(smoke.energy, 6) << ", prefetch "
            << smoke.prefetch_hits << "/" << smoke.prefetch_launched
            << " hits\n";
  add_sweep_metrics(mr, "pipeline_smoke", smoke);

  std::cout << "\nMeasured mode: real multi-" << rt::spawn_mode_name(
                   rt::spawn_mode_from_env())
            << " execution on this host — bytes and idle tails are transport\n"
               "measurements, not cost-model output. Replayed rows (CSV) price\n"
               "the same numerics on a scaled virtual cluster instead.\n";
  mr.write(metrics_path(argc, argv));
  return true;
}

double sim_seconds(const KernelMeasurement& k, const rt::Cluster& cluster) {
  return replayed(k, cluster).total_time();
}

rt::CostTracker replayed(const KernelMeasurement& k, const rt::Cluster& cluster) {
  return dmrg::replay_log(k.log, cluster, scaled_params());
}

Baseline baseline(const Workload& w, const rt::MachineModel& machine, index_t m,
                  unsigned seed) {
  KernelMeasurement k = measure_step(w, dmrg::EngineKind::kReference, m, seed);
  Baseline b;
  b.flops = k.flops;
  b.sim_seconds = sim_seconds(k, cluster(machine, 1, 1));
  b.gflops_rate = b.flops / b.sim_seconds / 1e9;
  return b;
}

bool full_mode() {
  const char* env = std::getenv("TT_BENCH_FULL");
  return env && std::string(env) == "1";
}

double scale_factor() {
  if (const char* env = std::getenv("TT_BENCH_SCALE")) {
    const double sf = std::atof(env);
    if (sf >= 1.0) return sf;
  }
  return 64.0;
}

rt::CostModelParams scaled_params() {
  rt::CostModelParams p;
  const double sf = scale_factor();
  // The imbalance granularity is a flop count; one bench flop stands for sf³
  // paper flops, so the threshold shrinks by the same factor.
  p.min_flops_per_proc /= sf * sf * sf;
  // SVD parallelism limits are judged at paper-equivalent matrix dimensions.
  p.svd_scale = sf;
  return p;
}

rt::Cluster cluster(const rt::MachineModel& machine, int nodes, int ppn) {
  rt::MachineModel m = machine;
  const double sf = scale_factor();
  m.node_gflops /= sf * sf * sf;          // flops shrink as m³
  m.net_bandwidth_gbs /= sf * sf;         // tensor words shrink as m²
  m.mem_bandwidth_gbs /= sf * sf;
  // Per-event costs (network latency, per-block mapping/launch) are paid per
  // event at either scale: unchanged.
  return rt::Cluster{m, nodes, ppn};
}

double gflops_equiv(double bench_flops, double sim_secs) {
  const double sf = scale_factor();
  return bench_flops * sf * sf * sf / sim_secs / 1e9;
}

index_t m_equiv(index_t m_bench) {
  return static_cast<index_t>(static_cast<double>(m_bench) * scale_factor());
}

std::vector<index_t> spin_ms() {
  if (full_mode()) return {32, 64, 128, 256, 512};
  return {32, 64, 128};
}

std::vector<index_t> electron_ms() {
  if (full_mode()) return {16, 32, 64, 128};
  return {16, 32, 64};
}

std::vector<int> node_counts(int max_nodes) {
  std::vector<int> out;
  for (int n = 1; n <= max_nodes; n *= 2) out.push_back(n);
  return out;
}

}  // namespace tt::bench

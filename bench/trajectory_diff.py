#!/usr/bin/env python3
"""Compare fresh bench CSV/metrics runs against a committed trajectory snapshot.

The committed snapshots under bench/trajectories/BENCH_*.json record CSV rows
from prior --csv bench runs (see the "notes" field of the snapshot for the
measured-vs-replayed caveats) plus tt-metrics-v1 documents from --metrics
runs. This script re-matches rows from one or more fresh CSV files against
the snapshot and flags wall-time regressions:

    python3 bench/trajectory_diff.py fig9_ranks2.csv [more.csv ...]
    python3 bench/trajectory_diff.py --baseline bench/trajectories/BENCH_2026-08-07.json \
        --threshold 0.10 fig9.csv

Rows are matched on their identity fields (driver, workload, source, engine,
node/rank counts, ...); the time-like fields of matched pairs are then
compared. A fresh time more than ``threshold`` (default 10%) above the
committed one counts as a regression and the script exits 1 — unless
``--allow-regressions`` is passed, which reports but exits 0 (the CI smoke
mode: absolute seconds are host-dependent, so shared runners only verify the
pipeline and print the drift).

Fresh inputs ending in .json are parsed as tt-metrics-v1 documents (the
--metrics output of the bench drivers). Their sections are matched against
the snapshot's ``runs[].metrics`` documents on (driver, section name), and
the per-category percentage breakdown keys (``pct.*``) are diffed: a category
share shifting by more than ``--pct-threshold`` percentage points (default
10) counts as a regression. Unlike raw seconds, the *shape* of the breakdown
transfers across hosts, so these checks stay meaningful on shared runners.
"""

import argparse
import csv
import glob
import json
import os
import sys

# Fields that identify a row; everything else is a measured value. A field
# only participates when both rows carry it.
IDENTITY_FIELDS = (
    "driver", "workload", "machine", "source", "series", "panel", "engine",
    "mode", "regions", "prefetch", "sweep", "m_bench", "m_equiv", "nodes",
    "ppn", "ranks",
)

# Time-like value fields, checked against the regression threshold.
TIME_FIELDS = ("seconds", "sim_s", "wall_s")


def default_baseline():
    here = os.path.dirname(os.path.abspath(__file__))
    snaps = sorted(glob.glob(os.path.join(here, "trajectories", "BENCH_*.json")))
    return snaps[-1] if snaps else None


def identity(row):
    return tuple((k, str(row[k])) for k in IDENTITY_FIELDS if k in row and row[k] != "")


def fail(message):
    """Exit 2 with a one-line diagnostic instead of a traceback."""
    print(f"trajectory_diff: {message}", file=sys.stderr)
    raise SystemExit(2)


def load_baseline(path):
    """Return (csv_rows, metrics_sections) from a trajectory snapshot.

    metrics_sections maps (driver, section_name) -> {key: value} from the
    snapshot's runs[].metrics tt-metrics-v1 documents.
    """
    try:
        with open(path) as f:
            snap = json.load(f)
    except OSError as e:
        fail(f"cannot read baseline snapshot '{path}': {e.strerror}")
    except json.JSONDecodeError as e:
        fail(f"baseline snapshot '{path}' is not valid JSON ({e})")
    rows = []
    sections = {}
    for run in snap.get("runs", []):
        rows.extend(run.get("rows", []))
        doc = run.get("metrics")
        if doc:
            sections.update(metrics_sections(doc))
    if not rows and not sections:
        fail(f"baseline snapshot '{path}' contains no rows or metrics "
             "(expected runs[].rows / runs[].metrics from bench runs)")
    return rows, sections


def metrics_sections(doc):
    """Flatten a tt-metrics-v1 document to {(driver, section): values}."""
    if doc.get("schema") != "tt-metrics-v1":
        fail(f"metrics document has schema {doc.get('schema')!r}, "
             "expected 'tt-metrics-v1'")
    driver = doc.get("driver", "")
    return {(driver, s["name"]): s.get("values", {})
            for s in doc.get("sections", [])}


def load_fresh_metrics(path):
    try:
        with open(path) as f:
            return metrics_sections(json.load(f))
    except OSError as e:
        fail(f"cannot read metrics '{path}': {e.strerror}")
    except json.JSONDecodeError as e:
        fail(f"'{path}' is not valid JSON ({e}) — expected a --metrics "
             "bench output")


def load_csv_rows(path):
    try:
        with open(path, newline="") as f:
            reader = csv.DictReader(f)
            if reader.fieldnames is None:
                fail(f"'{path}' is empty — expected a --csv bench output with a "
                     "header row")
            if not any(t in reader.fieldnames for t in TIME_FIELDS):
                fail(f"'{path}' has none of the time columns "
                     f"({', '.join(TIME_FIELDS)}) — is this a --csv bench output?")
            return list(reader)
    except OSError as e:
        fail(f"cannot read CSV '{path}': {e.strerror}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="+",
                    help="fresh runs: --csv outputs (*.csv) and/or "
                         "--metrics outputs (*.json)")
    ap.add_argument("--baseline", default=default_baseline(),
                    help="trajectory snapshot (default: newest bench/trajectories/BENCH_*.json)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative wall-time increase that counts as a regression")
    ap.add_argument("--pct-threshold", type=float, default=10.0,
                    help="percentage-point breakdown shift that counts as a "
                         "regression (metrics inputs)")
    ap.add_argument("--allow-regressions", action="store_true",
                    help="report regressions but exit 0 (CI smoke mode)")
    args = ap.parse_args()

    if not args.baseline or not os.path.exists(args.baseline):
        print("trajectory_diff: no baseline snapshot found", file=sys.stderr)
        return 2

    base_rows, base_sections = load_baseline(args.baseline)
    base_by_id = {}
    for row in base_rows:
        base_by_id[identity(row)] = row

    matched = 0
    unmatched = 0
    regressions = []
    for path in (p for p in args.fresh if p.endswith(".json")):
        for (driver, sec), values in load_fresh_metrics(path).items():
            base = base_sections.get((driver, sec))
            if base is None:
                unmatched += 1
                continue
            matched += 1
            for key, fresh_v in values.items():
                if not key.startswith("pct.") or key not in base:
                    continue
                try:
                    shift = float(fresh_v) - float(base[key])
                except (TypeError, ValueError):
                    fail(f"non-numeric '{key}' in '{path}' "
                         f"(fresh={fresh_v!r}, baseline={base[key]!r})")
                bad = abs(shift) > args.pct_threshold
                print(f"{'REGRESSION' if bad else 'ok':10s} "
                      f"{key}: {float(base[key]):.1f}% -> {float(fresh_v):.1f}% "
                      f"({shift:+.1f}pp)  driver={driver} section={sec}")
                if bad:
                    regressions.append((f"driver={driver} section={sec}", key,
                                        float(base[key]), float(fresh_v)))

    for path in (p for p in args.fresh if not p.endswith(".json")):
        for row in load_csv_rows(path):
            base = base_by_id.get(identity(row))
            if base is None:
                unmatched += 1
                continue
            matched += 1
            for field in TIME_FIELDS:
                if field not in row or field not in base or row[field] == "":
                    continue
                try:
                    fresh_t = float(row[field])
                    base_t = float(base[field])
                except ValueError:
                    fail(f"non-numeric '{field}' in '{path}' "
                         f"(fresh={row[field]!r}, baseline={base[field]!r})")
                if base_t <= 0.0:
                    continue
                drift = fresh_t / base_t - 1.0
                label = " ".join(f"{k}={v}" for k, v in identity(row))
                print(f"{'REGRESSION' if drift > args.threshold else 'ok':10s} "
                      f"{field}: {base_t:.3e} -> {fresh_t:.3e} ({drift:+.1%})  {label}")
                if drift > args.threshold:
                    regressions.append((label, field, base_t, fresh_t))

    print(f"\ntrajectory_diff: {matched} rows/sections matched against "
          f"{os.path.basename(args.baseline)}, {unmatched} fresh entries had "
          f"no committed counterpart, {len(regressions)} regressions "
          f"(time beyond {args.threshold:.0%} / breakdown beyond "
          f"{args.pct_threshold:.0f}pp).")
    if regressions and not args.allow_regressions:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare fresh bench CSV runs against a committed trajectory snapshot.

The committed snapshots under bench/trajectories/BENCH_*.json record CSV rows
from prior --csv bench runs (see the "notes" field of the snapshot for the
measured-vs-replayed caveats). This script re-matches rows from one or more
fresh CSV files against the snapshot and flags wall-time regressions:

    python3 bench/trajectory_diff.py fig9_ranks2.csv [more.csv ...]
    python3 bench/trajectory_diff.py --baseline bench/trajectories/BENCH_2026-08-07.json \
        --threshold 0.10 fig9.csv

Rows are matched on their identity fields (driver, workload, source, engine,
node/rank counts, ...); the time-like fields of matched pairs are then
compared. A fresh time more than ``threshold`` (default 10%) above the
committed one counts as a regression and the script exits 1 — unless
``--allow-regressions`` is passed, which reports but exits 0 (the CI smoke
mode: absolute seconds are host-dependent, so shared runners only verify the
pipeline and print the drift).
"""

import argparse
import csv
import glob
import json
import os
import sys

# Fields that identify a row; everything else is a measured value. A field
# only participates when both rows carry it.
IDENTITY_FIELDS = (
    "driver", "workload", "machine", "source", "series", "panel", "engine",
    "mode", "regions", "prefetch", "sweep", "m_bench", "m_equiv", "nodes",
    "ppn", "ranks",
)

# Time-like value fields, checked against the regression threshold.
TIME_FIELDS = ("seconds", "sim_s", "wall_s")


def default_baseline():
    here = os.path.dirname(os.path.abspath(__file__))
    snaps = sorted(glob.glob(os.path.join(here, "trajectories", "BENCH_*.json")))
    return snaps[-1] if snaps else None


def identity(row):
    return tuple((k, str(row[k])) for k in IDENTITY_FIELDS if k in row and row[k] != "")


def fail(message):
    """Exit 2 with a one-line diagnostic instead of a traceback."""
    print(f"trajectory_diff: {message}", file=sys.stderr)
    raise SystemExit(2)


def load_baseline_rows(path):
    try:
        with open(path) as f:
            snap = json.load(f)
    except OSError as e:
        fail(f"cannot read baseline snapshot '{path}': {e.strerror}")
    except json.JSONDecodeError as e:
        fail(f"baseline snapshot '{path}' is not valid JSON ({e})")
    rows = []
    for run in snap.get("runs", []):
        rows.extend(run.get("rows", []))
    if not rows:
        fail(f"baseline snapshot '{path}' contains no rows "
             "(expected runs[].rows from a --csv bench run)")
    return rows


def load_csv_rows(path):
    try:
        with open(path, newline="") as f:
            reader = csv.DictReader(f)
            if reader.fieldnames is None:
                fail(f"'{path}' is empty — expected a --csv bench output with a "
                     "header row")
            if not any(t in reader.fieldnames for t in TIME_FIELDS):
                fail(f"'{path}' has none of the time columns "
                     f"({', '.join(TIME_FIELDS)}) — is this a --csv bench output?")
            return list(reader)
    except OSError as e:
        fail(f"cannot read CSV '{path}': {e.strerror}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", nargs="+", help="CSV files from fresh --csv runs")
    ap.add_argument("--baseline", default=default_baseline(),
                    help="trajectory snapshot (default: newest bench/trajectories/BENCH_*.json)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative wall-time increase that counts as a regression")
    ap.add_argument("--allow-regressions", action="store_true",
                    help="report regressions but exit 0 (CI smoke mode)")
    args = ap.parse_args()

    if not args.baseline or not os.path.exists(args.baseline):
        print("trajectory_diff: no baseline snapshot found", file=sys.stderr)
        return 2

    base_by_id = {}
    for row in load_baseline_rows(args.baseline):
        base_by_id[identity(row)] = row

    matched = 0
    unmatched = 0
    regressions = []
    for path in args.fresh:
        for row in load_csv_rows(path):
            base = base_by_id.get(identity(row))
            if base is None:
                unmatched += 1
                continue
            matched += 1
            for field in TIME_FIELDS:
                if field not in row or field not in base or row[field] == "":
                    continue
                try:
                    fresh_t = float(row[field])
                    base_t = float(base[field])
                except ValueError:
                    fail(f"non-numeric '{field}' in '{path}' "
                         f"(fresh={row[field]!r}, baseline={base[field]!r})")
                if base_t <= 0.0:
                    continue
                drift = fresh_t / base_t - 1.0
                label = " ".join(f"{k}={v}" for k, v in identity(row))
                print(f"{'REGRESSION' if drift > args.threshold else 'ok':10s} "
                      f"{field}: {base_t:.3e} -> {fresh_t:.3e} ({drift:+.1%})  {label}")
                if drift > args.threshold:
                    regressions.append((label, field, base_t, fresh_t))

    print(f"\ntrajectory_diff: {matched} rows matched against "
          f"{os.path.basename(args.baseline)}, {unmatched} fresh rows had no "
          f"committed counterpart, {len(regressions)} wall-time regressions "
          f"beyond {args.threshold:.0%}.")
    if regressions and not args.allow_regressions:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Checkpoint/restart demo and overhead measurement: one DMRG run executed
// three ways on the same Heisenberg chain from the same product state —
//
//   baseline   uninterrupted run, no checkpointing
//   ckpt       same run snapshotting every few bonds (overhead column)
//   kill+resume  the checkpointed run killed mid-sweep through the
//              dmrg.kill_sweep fault point, then resumed from the latest
//              snapshot in a fresh solver
//
// Shape to reproduce: all three final energies are BITWISE identical (the
// restart contract of dmrg::CheckpointManager), and the ckpt column's
// overhead stays a small fraction of the sweep wall time.
//
// Flags: --checkpoint-dir <dir> (default: under TMPDIR), --csv <path>.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "dmrg/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "support/timer.hpp"

using namespace tt;

namespace {

dmrg::Dmrg make_solver(int n) {
  auto lat = models::chain(n);
  auto sites = models::spin_half_sites(n);
  auto h = models::heisenberg_mpo(sites, lat, 1.0);
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  return dmrg::Dmrg(mps::Mps::product_state(sites, neel), h,
                    dmrg::make_engine(dmrg::EngineKind::kReference,
                                      {rt::localhost(), 1, 1}));
}

std::string default_dir() {
  const char* tmp = std::getenv("TMPDIR");
  return (std::filesystem::path(tmp != nullptr ? tmp : "/tmp") /
          "tt_bench_checkpoint")
      .string();
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_driver_header("bench_checkpoint_resume");

  const int n = bench::full_mode() ? 24 : 12;
  const index_t m = bench::full_mode() ? 48 : 24;
  const int sweeps = bench::full_mode() ? 6 : 4;
  const int every = 4;  // bonds between snapshots
  const std::string dir = bench::arg_value(argc, argv, "--checkpoint-dir",
                                           default_dir());
  std::filesystem::remove_all(dir);

  std::vector<dmrg::SweepParams> schedule(static_cast<std::size_t>(sweeps));
  for (auto& p : schedule) {
    p.max_m = m;
    p.davidson_iter = 3;
    p.checkpoint_every = every;
  }
  std::vector<dmrg::SweepParams> plain = schedule;
  for (auto& p : plain) p.checkpoint_every = 0;

  // Baseline: no checkpointing.
  dmrg::Dmrg base = make_solver(n);
  Timer t0;
  const double e_base = base.run(plain);
  const double wall_base = t0.seconds();

  // Checkpointed, uninterrupted: measures the snapshot overhead.
  dmrg::CheckpointManager mgr(dir);
  dmrg::Dmrg ckpt = make_solver(n);
  ckpt.set_checkpointing(&mgr);
  Timer t1;
  const double e_ckpt = ckpt.run(schedule);
  const double wall_ckpt = t1.seconds();
  const long snapshots = mgr.sequence();

  // Kill mid-run (second sweep), then resume from the latest snapshot in a
  // fresh solver — the in-process stand-in for job preemption.
  std::filesystem::remove_all(dir);
  dmrg::CheckpointManager mgr2(dir);
  const int bonds_per_sweep = 2 * (n - 1);
  rt::FaultInjector::instance().configure(
      "dmrg.kill_sweep:nth=" + std::to_string(bonds_per_sweep + n / 2));
  double wall_killed = 0.0;
  {
    dmrg::Dmrg victim = make_solver(n);
    victim.set_checkpointing(&mgr2);
    Timer tk;
    try {
      (void)victim.run(schedule);
      std::cerr << "bench_checkpoint_resume: kill fault never fired\n";
      return 1;
    } catch (const Error&) {
      wall_killed = tk.seconds();
    }
  }
  rt::FaultInjector::instance().clear();

  dmrg::Dmrg revived = make_solver(n);
  revived.set_checkpointing(&mgr2);
  Timer t2;
  const double e_resume = revived.resume(schedule);
  const double wall_resume = t2.seconds();

  Table t("checkpoint/restart — heisenberg chain N=" + std::to_string(n) +
          ", m=" + std::to_string(m) + ", snapshot every " +
          std::to_string(every) + " bonds (dir: " + dir + ")");
  t.header({"run", "final energy", "wall s", "snapshots", "bitwise == base"});
  t.row({"baseline", fmt(e_base, 12), fmt_sci(wall_base, 2), "0", "-"});
  t.row({"checkpointed", fmt(e_ckpt, 12), fmt_sci(wall_ckpt, 2),
         std::to_string(snapshots), e_ckpt == e_base ? "yes" : "NO"});
  t.row({"kill+resume", fmt(e_resume, 12),
         fmt_sci(wall_killed + wall_resume, 2), std::to_string(mgr2.sequence()),
         e_resume == e_base ? "yes" : "NO"});
  t.print();
  std::cout << "\ncheckpoint overhead: "
            << fmt(100.0 * (wall_ckpt / wall_base - 1.0), 1)
            << "% of baseline wall time\n";

  bench::Csv csv(bench::csv_path(argc, argv),
                 "driver,workload,run,energy,wall_s,snapshots,bitwise");
  const std::string workload = "heisenberg-chain-" + std::to_string(n);
  csv.row({"bench_checkpoint_resume", workload, "baseline", fmt(e_base, 12),
           fmt_sci(wall_base, 6), "0", "1"});
  csv.row({"bench_checkpoint_resume", workload, "checkpointed", fmt(e_ckpt, 12),
           fmt_sci(wall_ckpt, 6), std::to_string(snapshots),
           e_ckpt == e_base ? "1" : "0"});
  csv.row({"bench_checkpoint_resume", workload, "kill_resume", fmt(e_resume, 12),
           fmt_sci(wall_killed + wall_resume, 6), std::to_string(mgr2.sequence()),
           e_resume == e_base ? "1" : "0"});

  auto mr = bench::make_metrics("bench_checkpoint_resume");
  mr.add_context("workload", workload);
  mr.add_context("snapshot_every_bonds", static_cast<double>(every));
  mr.add("baseline", "energy", e_base);
  mr.add("baseline", "wall_s", wall_base);
  mr.add("baseline", "snapshots", 0.0);
  mr.add("checkpointed", "energy", e_ckpt);
  mr.add("checkpointed", "wall_s", wall_ckpt);
  mr.add("checkpointed", "snapshots", static_cast<double>(snapshots));
  mr.add("checkpointed", "bitwise", e_ckpt == e_base ? 1.0 : 0.0);
  mr.add("checkpointed", "overhead_pct",
         100.0 * (wall_ckpt / wall_base - 1.0));
  mr.add("kill_resume", "energy", e_resume);
  mr.add("kill_resume", "wall_s", wall_killed + wall_resume);
  mr.add("kill_resume", "snapshots", static_cast<double>(mgr2.sequence()));
  mr.add("kill_resume", "bitwise", e_resume == e_base ? 1.0 : 0.0);
  mr.write(bench::metrics_path(argc, argv));

  if (e_ckpt != e_base || e_resume != e_base) {
    std::cerr << "bench_checkpoint_resume: BITWISE MISMATCH\n";
    return 1;
  }
  return 0;
}

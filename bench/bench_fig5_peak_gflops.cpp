// Paper Fig 5: peak performance rate (GFlop/s) vs bond dimension, annotated
// with the node count that achieves it — spins with the list algorithm
// (left panel, Blue Waters) and electrons with list + sparse-sparse (right
// panel, Stampede2 in the paper's right-panel series).
//
// Shape to reproduce: rate grows with m (bigger blocks feed the machine
// better) and the optimal node count grows with m.
#include <iostream>

#include "common.hpp"

namespace {

void panel(const char* title, const tt::bench::Workload& w,
           const std::vector<tt::dmrg::EngineKind>& kinds,
           const std::vector<tt::index_t>& ms, const tt::rt::MachineModel& machine,
           int ppn) {
  using namespace tt;
  Table t(title);
  std::vector<std::string> head{"engine", "m(eq)"};
  for (int n : bench::node_counts(256)) head.push_back(std::to_string(n) + "n");
  head.push_back("peak GF/s");
  head.push_back("@nodes");
  t.header(head);

  for (auto kind : kinds) {
    for (index_t m : ms) {
      auto k = bench::measure_step(w, kind, m);
      std::vector<std::string> row{dmrg::engine_name(kind),
                                   fmt_int(bench::m_equiv(k.m_actual))};
      double best = 0.0;
      int best_n = 1;
      for (int n : bench::node_counts(256)) {
        const double gfs = bench::gflops_equiv(
            k.flops, bench::sim_seconds(k, bench::cluster(machine, n, ppn)));
        row.push_back(fmt(gfs, 0));
        if (gfs > best) {
          best = gfs;
          best_n = n;
        }
      }
      row.push_back(fmt(best, 0));
      row.push_back(std::to_string(best_n));
      t.row(row);
    }
  }
  t.print();
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace tt;
  auto spins = bench::Workload::spins();
  auto electrons = bench::Workload::electrons();

  panel("Fig 5 (left) — spins, list, Blue Waters preset, 16/node", spins,
        {dmrg::EngineKind::kList}, bench::spin_ms(), rt::blue_waters(), 16);
  panel("Fig 5 (right) — electrons, list & sparse-sparse, Stampede2 preset, 64/node",
        electrons, {dmrg::EngineKind::kList, dmrg::EngineKind::kSparseSparse},
        bench::electron_ms(), rt::stampede2(), 64);

  std::cout << "Paper reference points: 3.1 TF/s peak on Blue Waters (spins),\n"
               "198 GF/s on Stampede2 (electrons); absolute numbers here are\n"
               "scaled with m — the shape (rate and optimal node count grow\n"
               "with m) is the reproduced claim.\n";
  return 0;
}

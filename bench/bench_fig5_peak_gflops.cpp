// Paper Fig 5: peak performance rate (GFlop/s) vs bond dimension, annotated
// with the node count that achieves it — spins with the list algorithm
// (left panel, Blue Waters) and electrons with list + sparse-sparse (right
// panel, Stampede2 in the paper's right-panel series).
//
// Shape to reproduce: rate grows with m (bigger blocks feed the machine
// better) and the optimal node count grows with m.
//
// Usage: bench_fig5_peak_gflops [--csv <path>]
// The CSV records the host GEMM peak rows (backend, m, n, k, GFLOP/s) — the
// first piece of the machine-readable artifact pipeline; the simulated panels
// stay on stdout.
#include <iostream>

#include "common.hpp"
#include "linalg/backend.hpp"
#include "linalg/gemm.hpp"
#include "support/timer.hpp"

namespace {

// Measured dgemm-equivalent throughput of this host through the active
// backend: the paper's "peak rate" denominator, and the number the ≥2×
// builtin-GEMM acceptance check reads (512³ row).
void host_gemm_peak(tt::bench::Csv& csv) {
  using namespace tt;
  Table t("Host GEMM peak (this machine, active backend)");
  t.header({"backend", "m", "n", "k", "GF/s"});
  const struct {
    index_t m, n, k;
  } sizes[] = {{256, 256, 256}, {512, 512, 512}, {1024, 1024, 512}, {512, 2048, 128}};
  for (const auto& s : sizes) {
    Rng rng(5);
    const auto a = linalg::Matrix::random(s.m, s.k, rng);
    const auto b = linalg::Matrix::random(s.k, s.n, rng);
    linalg::Matrix c(s.m, s.n);
    linalg::gemm(false, false, 1.0, a, b, 0.0, c);  // warm-up
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Timer timer;
      linalg::gemm(false, false, 1.0, a, b, 0.0, c);
      best = std::min(best, timer.seconds());
    }
    const double gfs = linalg::gemm_flops(s.m, s.n, s.k) / best / 1e9;
    t.row({linalg::backend_name(), fmt_int(s.m), fmt_int(s.n), fmt_int(s.k),
           fmt(gfs, 2)});
    csv.row({linalg::backend_name(), std::to_string(s.m), std::to_string(s.n),
             std::to_string(s.k), fmt(gfs, 3)});
  }
  t.print();
  std::cout << "\n";
}

void panel(const char* title, const tt::bench::Workload& w,
           const std::vector<tt::dmrg::EngineKind>& kinds,
           const std::vector<tt::index_t>& ms, const tt::rt::MachineModel& machine,
           int ppn) {
  using namespace tt;
  Table t(title);
  std::vector<std::string> head{"engine", "m(eq)"};
  for (int n : bench::node_counts(256)) head.push_back(std::to_string(n) + "n");
  head.push_back("peak GF/s");
  head.push_back("@nodes");
  t.header(head);

  for (auto kind : kinds) {
    for (index_t m : ms) {
      auto k = bench::measure_step(w, kind, m);
      std::vector<std::string> row{dmrg::engine_name(kind),
                                   fmt_int(bench::m_equiv(k.m_actual))};
      double best = 0.0;
      int best_n = 1;
      for (int n : bench::node_counts(256)) {
        const double gfs = bench::gflops_equiv(
            k.flops, bench::sim_seconds(k, bench::cluster(machine, n, ppn)));
        row.push_back(fmt(gfs, 0));
        if (gfs > best) {
          best = gfs;
          best_n = n;
        }
      }
      row.push_back(fmt(best, 0));
      row.push_back(std::to_string(best_n));
      t.row(row);
    }
  }
  t.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tt;
  bench::print_driver_header("bench_fig5_peak_gflops");
  const std::string csv_file = bench::csv_path(argc, argv);
  bench::Csv csv = csv_file.empty() ? bench::Csv()
                                    : bench::Csv(csv_file, "backend,m,n,k,gflops");
  host_gemm_peak(csv);

  auto spins = bench::Workload::spins();
  auto electrons = bench::Workload::electrons();

  panel("Fig 5 (left) — spins, list, Blue Waters preset, 16/node", spins,
        {dmrg::EngineKind::kList}, bench::spin_ms(), rt::blue_waters(), 16);
  panel("Fig 5 (right) — electrons, list & sparse-sparse, Stampede2 preset, 64/node",
        electrons, {dmrg::EngineKind::kList, dmrg::EngineKind::kSparseSparse},
        bench::electron_ms(), rt::stampede2(), 64);

  std::cout << "Paper reference points: 3.1 TF/s peak on Blue Waters (spins),\n"
               "198 GF/s on Stampede2 (electrons); absolute numbers here are\n"
               "scaled with m — the shape (rate and optimal node count grow\n"
               "with m) is the reproduced claim.\n";
  return 0;
}

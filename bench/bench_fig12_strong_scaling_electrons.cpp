// Paper Fig 12: strong scaling of the sparse-sparse algorithm for electrons
// at fixed m, on Blue Waters (left) and Stampede2 (right).
//
// Shape to reproduce: close to (or apparently better than) ideal speedup at
// the benchmark m on a few node doublings; the minimum usable node count is
// higher on Stampede2 because the fused sparse format costs more memory than
// the list format (paper: 4 nodes minimum vs 2 on Blue Waters).
#include <iostream>

#include "common.hpp"

namespace {

void panel(const char* title, const tt::rt::MachineModel& machine, int ppn,
           int min_nodes, const char* tag, tt::bench::Csv& csv) {
  using namespace tt;
  auto electrons = bench::Workload::electrons();
  const index_t m = bench::electron_ms().back();  // paper: m = 8192
  auto k = bench::measure_step(electrons, dmrg::EngineKind::kSparseSparse, m);

  Table t(title);
  t.header({"nodes", "sim s", "speedup", "efficiency"});
  const double t1 = bench::sim_seconds(k, bench::cluster(machine, min_nodes, ppn));
  for (int nodes = min_nodes; nodes <= (bench::full_mode() ? 32 : 16); nodes *= 2) {
    const double tn = bench::sim_seconds(k, bench::cluster(machine, nodes, ppn));
    const double speedup = t1 / tn * min_nodes;
    t.row({std::to_string(nodes), fmt_sci(tn, 2), fmt(speedup / min_nodes, 2),
           fmt(speedup / nodes, 2)});
    csv.row({"bench_fig12_strong_scaling_electrons", electrons.name, tag,
             std::to_string(bench::m_equiv(k.m_actual)), std::to_string(ppn),
             std::to_string(nodes), fmt_sci(tn, 6),
             fmt_sci(speedup / min_nodes, 6), fmt_sci(speedup / nodes, 6)});
  }
  t.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  tt::bench::print_driver_header("bench_fig12_strong_scaling_electrons");
  if (tt::bench::distributed_mode(argc, argv, "bench_fig12_strong_scaling_electrons",
                                  tt::bench::Workload::electrons(),
                                  tt::bench::electron_ms()))
    return 0;
  tt::bench::Csv csv(tt::bench::csv_path(argc, argv),
                     "driver,workload,machine,m_equiv,ppn,nodes,sim_s,speedup,"
                     "efficiency");
  panel("Fig 12 (left) — electrons sparse-sparse strong scaling at fixed m, Blue Waters",
        tt::rt::blue_waters(), 16, 2, "blue_waters", csv);
  panel("Fig 12 (right) — electrons sparse-sparse strong scaling at fixed m, Stampede2",
        tt::rt::stampede2(), 64, 4, "stampede2", csv);
  return 0;
}

// Paper Fig 8: spins weak scaling on Blue Waters with the list algorithm.
// (a) relative efficiency at fixed m/node (m doubles with the node count;
//     note the paper's point that doubling m is 8x work and 4x memory),
// (b) peak relative efficiency vs node count, 16 vs 32 processes/node.
//
// Relative efficiency = (GFlop/s per node) / (single-node baseline rate at
// the smallest m) — baseline plays the paper's ITensor role.
#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  tt::bench::print_driver_header("bench_fig8_weak_scaling_spins");
  using namespace tt;
  auto spins = bench::Workload::spins();
  const auto ms = bench::spin_ms();
  if (bench::distributed_mode(argc, argv, "bench_fig8_weak_scaling_spins",
                              spins, ms))
    return 0;
  const auto base = bench::baseline(spins, rt::blue_waters(), ms.front());
  bench::Csv csv(bench::csv_path(argc, argv),
                 "driver,workload,source,panel,m_equiv,nodes,ppn,gf_per_node,"
                 "rel_efficiency");

  {
    Table t("Fig 8a — weak scaling, fixed m/node (list, Blue Waters)");
    t.header({"m", "nodes", "ppn", "GF/s/node", "relative efficiency"});
    for (int ppn : {16, 32}) {
      int nodes = 1;
      for (index_t m : ms) {
        auto k = bench::measure_step(spins, dmrg::EngineKind::kList, m);
        const double secs = bench::sim_seconds(k, bench::cluster(rt::blue_waters(), nodes, ppn));
        const double per_node = bench::gflops_equiv(k.flops, secs) / nodes;
        const double rel =
            per_node / bench::gflops_equiv(base.flops, base.sim_seconds);
        t.row({fmt_int(bench::m_equiv(k.m_actual)), std::to_string(nodes), std::to_string(ppn),
               fmt(per_node, 1), fmt(rel, 2)});
        csv.row({"bench_fig8_weak_scaling_spins", spins.name, "replayed", "8a",
                 std::to_string(bench::m_equiv(k.m_actual)), std::to_string(nodes),
                 std::to_string(ppn), fmt(per_node, 4), fmt(rel, 4)});
        nodes *= 2;
      }
    }
    t.print();
  }

  {
    Table t("Fig 8b — peak relative efficiency vs node count");
    t.header({"nodes", "ppn", "peak rel. efficiency", "@m"});
    for (int ppn : {16, 32}) {
      for (int nodes : bench::node_counts(bench::full_mode() ? 128 : 32)) {
        double best = 0.0;
        index_t best_m = 0;
        for (index_t m : ms) {
          auto k = bench::measure_step(spins, dmrg::EngineKind::kList, m);
          const double secs = bench::sim_seconds(k, bench::cluster(rt::blue_waters(), nodes, ppn));
          const double rel = bench::gflops_equiv(k.flops, secs) / nodes /
                             bench::gflops_equiv(base.flops, base.sim_seconds);
          if (rel > best) {
            best = rel;
            best_m = bench::m_equiv(k.m_actual);
          }
        }
        t.row({std::to_string(nodes), std::to_string(ppn), fmt(best, 2),
               fmt_int(best_m)});
        csv.row({"bench_fig8_weak_scaling_spins", spins.name, "replayed", "8b",
                 std::to_string(best_m), std::to_string(nodes), std::to_string(ppn),
                 "", fmt(best, 4)});
      }
    }
    t.print();
  }

  std::cout << "\nShape to reproduce (paper Fig 8): efficiency stays near ideal\n"
               "when m doubles with the node count, and the preferred\n"
               "processes-per-node crosses from 32 to 16 at large node counts.\n";
  return 0;
}

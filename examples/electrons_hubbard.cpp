// The paper's "electrons" workload: Hubbard model on a triangular cylinder at
// half filling, t = 1, U = 8.5 (§V). Two conserved U(1) charges (N, 2Sz)
// produce the many-small-blocks regime where the sparse algorithms shine.
//
//   ./electrons_hubbard [--lx 4] [--ly 3] [--u 8.5] [--m 64] [--sweeps 4]
//                       [--engine sparse-sparse] [--machine s2]
//                       [--nodes 4] [--ppn 32] [--ed]
#include <iostream>

#include "dmrg/dmrg.hpp"
#include "ed/ed.hpp"
#include "models/electron.hpp"
#include "models/hubbard.hpp"
#include "models/lattice.hpp"
#include "mps/measure.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

tt::dmrg::EngineKind parse_engine(const std::string& s) {
  if (s == "reference") return tt::dmrg::EngineKind::kReference;
  if (s == "list") return tt::dmrg::EngineKind::kList;
  if (s == "sparse-dense") return tt::dmrg::EngineKind::kSparseDense;
  if (s == "sparse-sparse") return tt::dmrg::EngineKind::kSparseSparse;
  TT_FAIL("unknown engine '" << s << "'");
}

tt::rt::MachineModel parse_machine(const std::string& s) {
  if (s == "bw") return tt::rt::blue_waters();
  if (s == "s2") return tt::rt::stampede2();
  if (s == "local") return tt::rt::localhost();
  TT_FAIL("unknown machine '" << s << "' (bw|s2|local)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli(argc, argv);
  const int lx = static_cast<int>(cli.get_int("lx", 4));
  const int ly = static_cast<int>(cli.get_int("ly", 3));
  const double u = cli.get_double("u", 8.5);
  const index_t m = cli.get_int("m", 64);
  const int sweeps = static_cast<int>(cli.get_int("sweeps", 4));
  const auto kind = parse_engine(cli.get("engine", "sparse-sparse"));
  const rt::Cluster cluster{parse_machine(cli.get("machine", "s2")),
                            static_cast<int>(cli.get_int("nodes", 4)),
                            static_cast<int>(cli.get_int("ppn", 32))};

  auto lat = models::triangular_cylinder(lx, ly);
  std::cout << models::render(lat);
  auto sites = models::electron_sites(lat.num_sites);
  mps::Mpo h = models::hubbard_mpo(sites, lat, 1.0, u);
  std::cout << "U = " << u << ", MPO k = " << h.max_bond_dim() << ", engine "
            << dmrg::engine_name(kind) << " on " << cluster.nodes << "x"
            << cluster.procs_per_node << " " << cluster.machine.name << "\n\n";

  // Half filling, N↑ = N↓ = N/2: alternate |↑⟩ and |↓⟩.
  TT_CHECK(lat.num_sites % 2 == 0, "half filling needs an even site count");
  std::vector<int> filling;
  for (int i = 0; i < lat.num_sites; ++i) filling.push_back(i % 2 == 0 ? 1 : 2);
  dmrg::Dmrg solver(mps::Mps::product_state(sites, filling), h,
                    dmrg::make_engine(kind, cluster));

  Table table("DMRG sweeps — triangular Hubbard " + std::to_string(lx) + "x" +
              std::to_string(ly));
  table.header({"sweep", "energy", "max m", "trunc err", "wall s", "sim s",
                "GFlop"});
  for (int s = 0; s < sweeps; ++s) {
    dmrg::SweepParams p;
    p.max_m = m;
    p.davidson_iter = 4;
    p.davidson_subspace = 3;
    auto rec = solver.sweep(p);
    table.row({std::to_string(rec.sweep), fmt(rec.energy, 8),
               std::to_string(rec.max_bond_dim), fmt_sci(rec.truncation_error, 1),
               fmt(rec.wall_seconds, 2), fmt(rec.costs.total_time(), 3),
               fmt(rec.costs.flops() / 1e9, 2)});
  }
  table.print();

  // Double-occupancy profile — the quantity U suppresses.
  std::cout << "\n⟨n↑n↓⟩ per site:";
  for (int j = 0; j < lat.num_sites; ++j)
    std::cout << " " << fmt(mps::expect_local(solver.psi(), "Nupdn", j), 3);
  std::cout << "\n";

  if (cli.get_bool("ed", false)) {
    TT_CHECK(lat.num_sites <= 10, "--ed only for <= 10 electron sites");
    const double e_ed =
        ed::hubbard_ground_energy(lat, 1.0, u, lat.num_sites / 2, lat.num_sites / 2);
    std::cout << "ED oracle energy: " << fmt(e_ed, 8) << "  (DMRG "
              << fmt(solver.last_energy(), 8) << ", diff "
              << fmt_sci(solver.last_energy() - e_ed, 2) << ")\n";
  }
  return 0;
}

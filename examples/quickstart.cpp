// Quickstart: ground state of the spin-1/2 Heisenberg chain with DMRG.
//
//   ./quickstart [--n 32] [--m 64] [--sweeps 6]
//
// Demonstrates the minimal pipeline: site set → lattice → AutoMPO → MPO →
// product-state MPS → DMRG sweeps → measurements. The energy per site is
// compared against the thermodynamic-limit Bethe-ansatz value 1/4 − ln 2.
#include <cmath>
#include <iostream>

#include "dmrg/dmrg.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "mps/measure.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli(argc, argv);
  const int n = static_cast<int>(cli.get_int("n", 32));
  const index_t m = cli.get_int("m", 64);
  const int sweeps = static_cast<int>(cli.get_int("sweeps", 6));

  // 1. Local Hilbert spaces and geometry.
  auto sites = models::spin_half_sites(n);
  auto lat = models::chain(n);

  // 2. Hamiltonian as a compressed MPO (AutoMPO inserts the S·S terms).
  mps::Mpo h = models::heisenberg_mpo(sites, lat, /*J1=*/1.0);
  std::cout << "MPO bond dimension k = " << h.max_bond_dim() << "\n";

  // 3. Néel product state in the 2Sz = 0 sector.
  std::vector<int> neel;
  for (int i = 0; i < n; ++i) neel.push_back(i % 2);
  mps::Mps psi = mps::Mps::product_state(sites, neel);

  // 4. DMRG with the reference (single-node) engine.
  dmrg::Dmrg solver(std::move(psi), h,
                    dmrg::make_engine(dmrg::EngineKind::kReference,
                                      {rt::localhost(), 1, 1}));
  Table table("DMRG sweeps — Heisenberg chain, N=" + std::to_string(n));
  table.header({"sweep", "energy", "E/site", "max m", "trunc err", "wall s"});
  for (int s = 0; s < sweeps; ++s) {
    dmrg::SweepParams p;
    p.max_m = m;
    p.davidson_iter = 3;
    auto rec = solver.sweep(p);
    table.row({std::to_string(rec.sweep), fmt(rec.energy, 10),
               fmt(rec.energy / n, 8), std::to_string(rec.max_bond_dim),
               fmt_sci(rec.truncation_error, 1), fmt(rec.wall_seconds, 2)});
  }
  table.print();

  const double e_site = solver.last_energy() / n;
  const double bethe = 0.25 - std::log(2.0);
  std::cout << "\nE/site = " << fmt(e_site, 8) << "   (Bethe N→∞: " << fmt(bethe, 8)
            << ", finite-size open chain lies above)\n";

  // 5. Measurements on the optimized state.
  std::cout << "⟨Sz⟩ profile (middle 8 sites):";
  for (int j = n / 2 - 4; j < n / 2 + 4; ++j)
    std::cout << " " << fmt(mps::expect_local(solver.psi(), "Sz", j), 3);
  std::cout << "\n";
  return 0;
}

// The paper's "spins" workload: J1–J2 Heisenberg model on a square cylinder
// (§V), run with any of the four contraction engines on a virtual cluster.
//
//   ./spins_j1j2 [--lx 6] [--ly 4] [--j2 0.5] [--m 64] [--sweeps 4]
//                [--engine list|reference|sparse-dense|sparse-sparse]
//                [--machine bw|s2] [--nodes 4] [--ppn 16] [--ed]
//
// With --ed (only for small lattices) the DMRG energy is checked against the
// exact-diagonalization oracle.
#include <iostream>

#include "dmrg/dmrg.hpp"
#include "ed/ed.hpp"
#include "models/heisenberg.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace {

tt::dmrg::EngineKind parse_engine(const std::string& s) {
  if (s == "reference") return tt::dmrg::EngineKind::kReference;
  if (s == "list") return tt::dmrg::EngineKind::kList;
  if (s == "sparse-dense") return tt::dmrg::EngineKind::kSparseDense;
  if (s == "sparse-sparse") return tt::dmrg::EngineKind::kSparseSparse;
  TT_FAIL("unknown engine '" << s << "'");
}

tt::rt::MachineModel parse_machine(const std::string& s) {
  if (s == "bw") return tt::rt::blue_waters();
  if (s == "s2") return tt::rt::stampede2();
  if (s == "local") return tt::rt::localhost();
  TT_FAIL("unknown machine '" << s << "' (bw|s2|local)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli(argc, argv);
  const int lx = static_cast<int>(cli.get_int("lx", 6));
  const int ly = static_cast<int>(cli.get_int("ly", 4));
  const double j2 = cli.get_double("j2", 0.5);
  const index_t m = cli.get_int("m", 64);
  const int sweeps = static_cast<int>(cli.get_int("sweeps", 4));
  const auto kind = parse_engine(cli.get("engine", "list"));
  const rt::Cluster cluster{parse_machine(cli.get("machine", "bw")),
                            static_cast<int>(cli.get_int("nodes", 4)),
                            static_cast<int>(cli.get_int("ppn", 16))};

  auto lat = models::square_cylinder(lx, ly, /*diagonals=*/true);
  std::cout << models::render(lat);
  auto sites = models::spin_half_sites(lat.num_sites);
  mps::Mpo h = models::heisenberg_mpo(sites, lat, 1.0, j2);
  std::cout << "J2/J1 = " << j2 << ", MPO k = " << h.max_bond_dim() << ", engine "
            << dmrg::engine_name(kind) << " on " << cluster.nodes << "x"
            << cluster.procs_per_node << " " << cluster.machine.name << "\n\n";

  std::vector<int> neel;
  for (int x = 0; x < lx; ++x)
    for (int y = 0; y < ly; ++y) neel.push_back((x + y) % 2);
  dmrg::Dmrg solver(mps::Mps::product_state(sites, neel), h,
                    dmrg::make_engine(kind, cluster));

  Table table("DMRG sweeps — J1-J2 " + std::to_string(lx) + "x" + std::to_string(ly) +
              " cylinder");
  table.header({"sweep", "energy", "E/site", "max m", "trunc err", "wall s",
                "sim s", "GFlop"});
  for (int s = 0; s < sweeps; ++s) {
    dmrg::SweepParams p;
    p.max_m = m;
    p.davidson_iter = 3;
    auto rec = solver.sweep(p);
    table.row({std::to_string(rec.sweep), fmt(rec.energy, 8),
               fmt(rec.energy / lat.num_sites, 6), std::to_string(rec.max_bond_dim),
               fmt_sci(rec.truncation_error, 1), fmt(rec.wall_seconds, 2),
               fmt(rec.costs.total_time(), 3), fmt(rec.costs.flops() / 1e9, 2)});
  }
  table.print();

  // Simulated time breakdown of the final sweep (cf. paper Fig 7).
  const auto& costs = solver.records().back().costs;
  auto pct = costs.percentages();
  std::cout << "\nSimulated time breakdown of last sweep:";
  for (int c = 0; c < rt::kNumCategories; ++c)
    if (pct[static_cast<std::size_t>(c)] > 0.05)
      std::cout << "  " << rt::category_name(static_cast<rt::Category>(c)) << " "
                << fmt(pct[static_cast<std::size_t>(c)], 1) << "%";
  std::cout << "\n";

  if (cli.get_bool("ed", false)) {
    TT_CHECK(lat.num_sites <= 16, "--ed only for <= 16 sites");
    const double e_ed = ed::heisenberg_ground_energy(lat, 1.0, j2, 0);
    std::cout << "ED oracle energy: " << fmt(e_ed, 8) << "  (DMRG "
              << fmt(solver.last_energy(), 8) << ", diff "
              << fmt_sci(solver.last_energy() - e_ed, 2) << ")\n";
  }
  return 0;
}

// Side-by-side comparison of the four contraction engines on the same
// problem: identical sweep energies (the paper's "same flops as the best
// sequential algorithm" invariant), different execution profiles.
//
//   ./engines_compare [--system spins|electrons] [--m 48] [--nodes 4]
#include <iostream>

#include "dmrg/dmrg.hpp"
#include "models/electron.hpp"
#include "models/heisenberg.hpp"
#include "models/hubbard.hpp"
#include "models/lattice.hpp"
#include "models/spin_half.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace tt;
  Cli cli(argc, argv);
  const std::string system = cli.get("system", "spins");
  const index_t m = cli.get_int("m", 48);
  const int nodes = static_cast<int>(cli.get_int("nodes", 4));

  models::Lattice lat;
  mps::SiteSetPtr sites;
  mps::Mpo h;
  std::vector<int> start;
  if (system == "spins") {
    lat = models::square_cylinder(4, 3, true);
    sites = models::spin_half_sites(lat.num_sites);
    h = models::heisenberg_mpo(sites, lat, 1.0, 0.5);
    for (int i = 0; i < lat.num_sites; ++i) start.push_back(i % 2);
  } else if (system == "electrons") {
    lat = models::triangular_cylinder(3, 2);
    sites = models::electron_sites(lat.num_sites);
    h = models::hubbard_mpo(sites, lat, 1.0, 8.5);
    for (int i = 0; i < lat.num_sites; ++i) start.push_back(i % 2 == 0 ? 1 : 2);
  } else {
    TT_FAIL("--system must be spins or electrons");
  }
  std::cout << "System: " << lat.name << " (" << lat.num_sites << " sites), m = " << m
            << ", virtual cluster: " << nodes << " Blue-Waters nodes x 16\n\n";

  Table table("engine comparison — 2 sweeps each");
  table.header({"engine", "energy", "wall s", "sim s", "GFlop", "supersteps",
                "comm Mwords", "GF/s (sim)"});
  for (auto kind :
       {dmrg::EngineKind::kReference, dmrg::EngineKind::kList,
        dmrg::EngineKind::kSparseDense, dmrg::EngineKind::kSparseSparse}) {
    rt::Cluster cluster{rt::blue_waters(),
                        kind == dmrg::EngineKind::kReference ? 1 : nodes, 16};
    dmrg::Dmrg solver(mps::Mps::product_state(sites, start), h,
                      dmrg::make_engine(kind, cluster));
    dmrg::SweepParams p;
    p.max_m = m;
    p.davidson_iter = 3;
    solver.sweep(p);
    auto rec = solver.sweep(p);
    const auto& c = rec.costs;
    table.row({solver.engine().name(), fmt(rec.energy, 9), fmt(rec.wall_seconds, 2),
               fmt(c.total_time(), 3), fmt(c.flops() / 1e9, 2),
               fmt(c.supersteps(), 0), fmt(c.words() / 1e6, 2),
               fmt(c.flops() / 1e9 / std::max(1e-12, c.total_time()), 1)});
  }
  table.print();
  std::cout << "\nAll engines must report the same energy — they execute the same\n"
               "DMRG algorithm and differ only in how block sparsity is handled.\n";
  return 0;
}
